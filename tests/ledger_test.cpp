// Ledger tests: transaction encoding/validation, state transitions, contract
// atomicity, mempool ordering, chain validation, BFT consensus over the
// simulated network, and the on-chain audit registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "ledger/audit.h"
#include "ledger/chain.h"
#include "ledger/consensus.h"
#include "ledger/mempool.h"
#include "net/gossip.h"

namespace mv::ledger {
namespace {

struct Fixture {
  Rng rng{101};
  crypto::Wallet alice{rng};
  crypto::Wallet bob{rng};
  std::shared_ptr<ContractRegistry> contracts = std::make_shared<ContractRegistry>();
  LedgerState state;

  Fixture() {
    state.credit(alice.address(), 1000);
    state.credit(bob.address(), 500);
  }
};

// ---------------------------------------------------------------- tx codec

TEST(Transaction, EncodeDecodeRoundTrip) {
  Fixture f;
  const Transaction tx =
      make_transfer(f.alice, 0, f.bob.address(), 42, 1, f.rng);
  auto decoded = Transaction::decode(tx.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().encode(), tx.encode());
  EXPECT_EQ(decoded.value().digest(), tx.digest());
  EXPECT_TRUE(decoded.value().signature_valid());
}

TEST(Transaction, AuditBodyRoundTrip) {
  const AuditRecordBody body{"gaze", "avatar_animation", 77, "laplace(eps=1.0)"};
  auto decoded = AuditRecordBody::decode(body.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().data_category, "gaze");
  EXPECT_EQ(decoded.value().purpose, "avatar_animation");
  EXPECT_EQ(decoded.value().subject, 77u);
  EXPECT_EQ(decoded.value().pet_applied, "laplace(eps=1.0)");
}

TEST(Transaction, DecodeRejectsGarbage) {
  EXPECT_FALSE(Transaction::decode(Bytes{1, 2, 3}).ok());
  Fixture f;
  Bytes enc = make_transfer(f.alice, 0, f.bob.address(), 1, 0, f.rng).encode();
  enc.push_back(0x00);  // trailing byte
  EXPECT_FALSE(Transaction::decode(enc).ok());
}

TEST(Transaction, TamperedFieldBreaksSignature) {
  Fixture f;
  Transaction tx = make_transfer(f.alice, 0, f.bob.address(), 42, 1, f.rng);
  tx.fee = 0;  // sig covered fee
  EXPECT_FALSE(tx.signature_valid());
}

// ---------------------------------------------------------------- state

TEST(LedgerState, TransferMovesFunds) {
  Fixture f;
  const auto tx = make_transfer(f.alice, 0, f.bob.address(), 100, 5, f.rng);
  ASSERT_TRUE(f.state.apply(tx, *f.contracts, 0).ok());
  EXPECT_EQ(f.state.balance(f.alice.address()), 895u);  // 1000 - 100 - 5
  EXPECT_EQ(f.state.balance(f.bob.address()), 600u);
  EXPECT_EQ(f.state.nonce(f.alice.address()), 1u);
  EXPECT_EQ(f.state.burned_fees(), 5u);
}

TEST(LedgerState, RejectsWrongNonce) {
  Fixture f;
  const auto tx = make_transfer(f.alice, 5, f.bob.address(), 1, 0, f.rng);
  const auto s = f.state.apply(tx, *f.contracts, 0);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "tx.bad_nonce");
}

TEST(LedgerState, RejectsOverdraft) {
  Fixture f;
  const auto tx = make_transfer(f.alice, 0, f.bob.address(), 99999, 0, f.rng);
  const auto root_before = f.state.commitment().root;
  EXPECT_FALSE(f.state.apply(tx, *f.contracts, 0).ok());
  // apply() is atomic: a failed transaction leaves no trace.
  EXPECT_EQ(f.state.nonce(f.alice.address()), 0u);
  EXPECT_EQ(f.state.commitment().root, root_before);
}

TEST(LedgerState, RejectsBadSignature) {
  Fixture f;
  Transaction tx = make_transfer(f.alice, 0, f.bob.address(), 1, 0, f.rng);
  tx.sig.s ^= 1;
  const auto s = f.state.apply(tx, *f.contracts, 0);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "tx.bad_signature");
}

TEST(LedgerState, AuditRecordAppendsToLog) {
  Fixture f;
  const auto tx = make_audit_record(
      f.alice, 0, AuditRecordBody{"spatial_map", "navigation", 9, "none"}, 0,
      f.rng);
  ASSERT_TRUE(f.state.apply(tx, *f.contracts, 7).ok());
  ASSERT_EQ(f.state.audit_log().size(), 1u);
  EXPECT_EQ(f.state.audit_log()[0].collector, f.alice.address());
  EXPECT_EQ(f.state.audit_log()[0].body.data_category, "spatial_map");
  EXPECT_EQ(f.state.audit_log()[0].height, 7);
}

TEST(LedgerState, UnknownContractFails) {
  Fixture f;
  const auto tx = make_contract_call(f.alice, 0, "nope", "m", Bytes{}, 0, f.rng);
  const auto s = f.state.apply(tx, *f.contracts, 0);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "tx.unknown_contract");
}

/// Contract that writes a key then fails — exercises body atomicity.
class FlakyContract final : public Contract {
 public:
  [[nodiscard]] std::string name() const override { return "flaky"; }
  [[nodiscard]] Status call(CallContext& ctx, const std::string& method,
                            const Bytes&) const override {
    ctx.put("touched", Bytes{1});
    if (method == "fail") return Status::fail("flaky.boom", "requested");
    return {};
  }
};

TEST(LedgerState, ContractBodyIsAtomic) {
  Fixture f;
  f.contracts->install(std::make_shared<FlakyContract>());
  const auto bad = make_contract_call(f.alice, 0, "flaky", "fail", Bytes{}, 3, f.rng);
  EXPECT_FALSE(f.state.apply(bad, *f.contracts, 0).ok());
  // Everything rolled back: store write, fee, and nonce.
  EXPECT_EQ(f.state.find_store("flaky"), nullptr);
  EXPECT_EQ(f.state.nonce(f.alice.address()), 0u);
  EXPECT_EQ(f.state.balance(f.alice.address()), 1000u);

  const auto good = make_contract_call(f.alice, 0, "flaky", "ok", Bytes{}, 0, f.rng);
  ASSERT_TRUE(f.state.apply(good, *f.contracts, 0).ok());
  ASSERT_NE(f.state.find_store("flaky"), nullptr);
  EXPECT_TRUE(f.state.find_store("flaky")->contains("touched"));
}

TEST(LedgerState, StateRootChangesWithState) {
  Fixture f;
  const auto before = f.state.commitment().root;
  const auto tx = make_transfer(f.alice, 0, f.bob.address(), 1, 0, f.rng);
  ASSERT_TRUE(f.state.apply(tx, *f.contracts, 0).ok());
  EXPECT_NE(f.state.commitment().root, before);
}

TEST(LedgerState, StateRootDeterministicAcrossCopies) {
  Fixture f;
  LedgerState copy = f.state;
  EXPECT_EQ(copy.commitment().root, f.state.commitment().root);
}

// ---------------------------------------------------------------- mempool

TEST(Mempool, OrdersByFeeThenFifo) {
  Fixture f;
  Mempool pool;
  // Alice sends three txs with ascending nonces, fees 1, 9, 5.
  ASSERT_TRUE(pool.add(make_transfer(f.alice, 0, f.bob.address(), 1, 1, f.rng), f.state).ok());
  ASSERT_TRUE(pool.add(make_transfer(f.alice, 1, f.bob.address(), 1, 9, f.rng), f.state).ok());
  ASSERT_TRUE(pool.add(make_transfer(f.alice, 2, f.bob.address(), 1, 5, f.rng), f.state).ok());
  const auto picked = pool.select(10, f.state);
  // Nonce order must be respected even though fee order differs.
  ASSERT_EQ(picked.size(), 3u);
  EXPECT_EQ(picked[0].nonce, 0u);
  EXPECT_EQ(picked[1].nonce, 1u);
  EXPECT_EQ(picked[2].nonce, 2u);
}

TEST(Mempool, HighFeeSenderWinsSlots) {
  Fixture f;
  Mempool pool;
  ASSERT_TRUE(pool.add(make_transfer(f.alice, 0, f.bob.address(), 1, 1, f.rng), f.state).ok());
  ASSERT_TRUE(pool.add(make_transfer(f.bob, 0, f.alice.address(), 1, 50, f.rng), f.state).ok());
  const auto picked = pool.select(1, f.state);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0].sender(), f.bob.address());
}

TEST(Mempool, RejectsDuplicateAndStale) {
  Fixture f;
  Mempool pool;
  const auto tx = make_transfer(f.alice, 0, f.bob.address(), 1, 0, f.rng);
  ASSERT_TRUE(pool.add(tx, f.state).ok());
  EXPECT_EQ(pool.add(tx, f.state).error().code, "mempool.duplicate");
  ASSERT_TRUE(f.state.apply(tx, *f.contracts, 0).ok());
  const auto stale = make_transfer(f.alice, 0, f.bob.address(), 2, 0, f.rng);
  EXPECT_EQ(pool.add(stale, f.state).error().code, "mempool.stale_nonce");
}

TEST(Mempool, RemoveIncludedAndPrune) {
  Fixture f;
  Mempool pool;
  const auto tx0 = make_transfer(f.alice, 0, f.bob.address(), 1, 0, f.rng);
  const auto tx1 = make_transfer(f.alice, 1, f.bob.address(), 1, 0, f.rng);
  ASSERT_TRUE(pool.add(tx0, f.state).ok());
  ASSERT_TRUE(pool.add(tx1, f.state).ok());
  pool.remove_included({tx0});
  EXPECT_EQ(pool.size(), 1u);
  ASSERT_TRUE(f.state.apply(tx0, *f.contracts, 0).ok());
  ASSERT_TRUE(f.state.apply(tx1, *f.contracts, 0).ok());
  pool.prune(f.state);
  EXPECT_EQ(pool.size(), 0u);
}

TEST(Mempool, NonceGapBlocksSuccessors) {
  Fixture f;
  Mempool pool;
  // Nonces 0 and 2 are pending; 1 is missing. Only 0 is runnable — the
  // expensive successor behind the gap must not jump the queue.
  ASSERT_TRUE(pool.add(make_transfer(f.alice, 0, f.bob.address(), 1, 1, f.rng), f.state).ok());
  ASSERT_TRUE(pool.add(make_transfer(f.alice, 2, f.bob.address(), 1, 100, f.rng), f.state).ok());
  auto picked = pool.select(10, f.state);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0].nonce, 0u);
  // Filling the gap releases the whole prefix, still in nonce order.
  ASSERT_TRUE(pool.add(make_transfer(f.alice, 1, f.bob.address(), 1, 1, f.rng), f.state).ok());
  picked = pool.select(10, f.state);
  ASSERT_EQ(picked.size(), 3u);
  EXPECT_EQ(picked[0].nonce, 0u);
  EXPECT_EQ(picked[1].nonce, 1u);
  EXPECT_EQ(picked[2].nonce, 2u);
}

TEST(Mempool, CheapPredecessorDoesNotStarveBehindOtherSenders) {
  Fixture f;
  Mempool pool;
  // Alice: cheap nonce-0 (fee 1) gating an expensive nonce-1 (fee 100).
  // Bob: a single fee-50 tx. Priority must see only runnable heads: bob's
  // fee-50 first, then alice's fee-1, and only then the released fee-100.
  ASSERT_TRUE(pool.add(make_transfer(f.alice, 0, f.bob.address(), 1, 1, f.rng), f.state).ok());
  ASSERT_TRUE(pool.add(make_transfer(f.alice, 1, f.bob.address(), 1, 100, f.rng), f.state).ok());
  ASSERT_TRUE(pool.add(make_transfer(f.bob, 0, f.alice.address(), 1, 50, f.rng), f.state).ok());
  const auto picked = pool.select(3, f.state);
  ASSERT_EQ(picked.size(), 3u);
  EXPECT_EQ(picked[0].sender(), f.bob.address());
  EXPECT_EQ(picked[1].nonce, 0u);
  EXPECT_EQ(picked[1].sender(), f.alice.address());
  EXPECT_EQ(picked[2].nonce, 1u);
  EXPECT_EQ(picked[2].fee, 100u);
}

TEST(Mempool, ReplaceByFeeRequiresStrictlyHigherFee) {
  Fixture f;
  Mempool pool;
  ASSERT_TRUE(pool.add(make_transfer(f.alice, 0, f.bob.address(), 1, 5, f.rng), f.state).ok());
  const auto equal = make_transfer(f.alice, 0, f.bob.address(), 2, 5, f.rng);
  EXPECT_EQ(pool.add(equal, f.state).error().code, "mempool.underpriced");
  const auto lower = make_transfer(f.alice, 0, f.bob.address(), 2, 4, f.rng);
  EXPECT_EQ(pool.add(lower, f.state).error().code, "mempool.underpriced");
  const auto higher = make_transfer(f.alice, 0, f.bob.address(), 2, 6, f.rng);
  ASSERT_TRUE(pool.add(higher, f.state).ok());
  EXPECT_EQ(pool.size(), 1u);
  const auto picked = pool.select(10, f.state);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0].fee, 6u);
}

TEST(Mempool, RemovalKeepsIndexesConsistent) {
  Fixture f;
  Mempool pool;
  const auto tx0 = make_transfer(f.alice, 0, f.bob.address(), 1, 0, f.rng);
  const auto tx1 = make_transfer(f.alice, 1, f.bob.address(), 1, 0, f.rng);
  const auto tx2 = make_transfer(f.bob, 0, f.alice.address(), 1, 0, f.rng);
  ASSERT_TRUE(pool.add(tx0, f.state).ok());
  ASSERT_TRUE(pool.add(tx1, f.state).ok());
  ASSERT_TRUE(pool.add(tx2, f.state).ok());
  // Removing a tx that is not pending is a no-op.
  pool.remove_included({make_transfer(f.bob, 1, f.alice.address(), 1, 0, f.rng)});
  EXPECT_EQ(pool.size(), 3u);
  pool.remove_included({tx0, tx2});
  EXPECT_EQ(pool.size(), 1u);
  // Dedupe entries of removed txs are gone: re-admission succeeds...
  ASSERT_TRUE(pool.add(tx0, f.state).ok());
  // ...while a still-pending tx is still recognized as a duplicate.
  EXPECT_EQ(pool.add(tx1, f.state).error().code, "mempool.duplicate");
  EXPECT_EQ(pool.size(), 2u);
  // Prune drops everything below the committed nonce and clears dedupe keys.
  ASSERT_TRUE(f.state.apply(tx0, *f.contracts, 0).ok());
  ASSERT_TRUE(f.state.apply(tx1, *f.contracts, 0).ok());
  pool.prune(f.state);
  EXPECT_TRUE(pool.empty());
  EXPECT_TRUE(pool.select(10, f.state).empty());
}

// ---------------------------------------------------------------- chain

struct ChainFixture : Fixture {
  crypto::Wallet v0{rng};
  crypto::Wallet v1{rng};
  ChainConfig config;

  ChainFixture() {
    config.validators = {v0.public_key(), v1.public_key()};
    config.max_txs_per_block = 16;
  }

  [[nodiscard]] Blockchain make_chain() { return Blockchain(config, contracts, state); }
};

TEST(Blockchain, AssembleAndAppend) {
  ChainFixture f;
  Blockchain chain = f.make_chain();
  const auto tx = make_transfer(f.alice, 0, f.bob.address(), 10, 1, f.rng);
  const Block block = chain.assemble(f.v0, {tx}, 0, f.rng);
  ASSERT_EQ(block.txs.size(), 1u);
  ASSERT_TRUE(chain.append(block).ok());
  EXPECT_EQ(chain.height(), 1);
  EXPECT_EQ(chain.state().balance(f.bob.address()), 510u);
}

TEST(Blockchain, AssembleDropsInvalidTxs) {
  ChainFixture f;
  Blockchain chain = f.make_chain();
  const auto good = make_transfer(f.alice, 0, f.bob.address(), 10, 0, f.rng);
  const auto bad_nonce = make_transfer(f.alice, 7, f.bob.address(), 10, 0, f.rng);
  const auto overdraft = make_transfer(f.bob, 0, f.alice.address(), 99999, 0, f.rng);
  const Block block = chain.assemble(f.v0, {bad_nonce, good, overdraft}, 0, f.rng);
  EXPECT_EQ(block.txs.size(), 1u);
  ASSERT_TRUE(chain.append(block).ok());
}

TEST(Blockchain, RejectsWrongProposer) {
  ChainFixture f;
  Blockchain chain = f.make_chain();
  // Height 0 belongs to v0; v1 proposing must be rejected.
  const Block block = chain.assemble(f.v1, {}, 0, f.rng);
  const auto s = chain.append(block);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "block.wrong_proposer");
}

TEST(Blockchain, RoundRobinAlternatesProposers) {
  ChainFixture f;
  Blockchain chain = f.make_chain();
  ASSERT_TRUE(chain.append(chain.assemble(f.v0, {}, 0, f.rng)).ok());
  ASSERT_TRUE(chain.append(chain.assemble(f.v1, {}, 1, f.rng)).ok());
  ASSERT_TRUE(chain.append(chain.assemble(f.v0, {}, 2, f.rng)).ok());
  EXPECT_EQ(chain.height(), 3);
}

TEST(Blockchain, RejectsTamperedBlock) {
  ChainFixture f;
  Blockchain chain = f.make_chain();
  const auto tx = make_transfer(f.alice, 0, f.bob.address(), 10, 0, f.rng);
  Block block = chain.assemble(f.v0, {tx}, 0, f.rng);

  Block wrong_root = block;
  wrong_root.header.tx_root[0] ^= 1;
  EXPECT_EQ(chain.append(wrong_root).error().code, "block.bad_proposer_sig");

  Block dropped_tx = block;
  dropped_tx.txs.clear();
  EXPECT_EQ(chain.append(dropped_tx).error().code, "block.bad_tx_root");

  Block wrong_height = block;
  wrong_height.header.height = 5;
  EXPECT_FALSE(chain.append(wrong_height).ok());
}

TEST(Blockchain, RejectsReplayedBlock) {
  ChainFixture f;
  Blockchain chain = f.make_chain();
  const Block block = chain.assemble(f.v0, {}, 0, f.rng);
  ASSERT_TRUE(chain.append(block).ok());
  EXPECT_FALSE(chain.append(block).ok());
}

TEST(Blockchain, TxInclusionProof) {
  ChainFixture f;
  Blockchain chain = f.make_chain();
  std::vector<Transaction> txs;
  for (std::uint64_t i = 0; i < 5; ++i) {
    txs.push_back(make_transfer(f.alice, i, f.bob.address(), 1, 0, f.rng));
  }
  ASSERT_TRUE(chain.append(chain.assemble(f.v0, txs, 0, f.rng)).ok());
  for (std::size_t i = 0; i < 5; ++i) {
    auto proof = chain.prove_tx(0, i);
    ASSERT_TRUE(proof.ok());
    EXPECT_TRUE(chain.verify_tx_inclusion(0, txs[i].digest(), proof.value()));
    EXPECT_FALSE(chain.verify_tx_inclusion(0, txs[(i + 1) % 5].digest(), proof.value()));
  }
  EXPECT_FALSE(chain.prove_tx(3, 0).ok());
  EXPECT_FALSE(chain.prove_tx(0, 99).ok());
}

TEST(Blockchain, ExportImportReplaysIdentically) {
  ChainFixture f;
  Blockchain source = f.make_chain();
  for (int h = 0; h < 4; ++h) {
    const auto& proposer = (h % 2 == 0) ? f.v0 : f.v1;
    std::vector<Transaction> txs;
    txs.push_back(make_transfer(f.alice, static_cast<std::uint64_t>(h),
                                f.bob.address(), 5, 1, f.rng));
    ASSERT_TRUE(source.append(source.assemble(proposer, txs, h, f.rng)).ok());
  }

  Blockchain fresh = f.make_chain();
  auto imported = fresh.import_blocks(source.export_blocks());
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ(imported.value(), 4u);
  EXPECT_EQ(fresh.height(), source.height());
  EXPECT_EQ(fresh.tip_hash(), source.tip_hash());
  EXPECT_EQ(fresh.state().commitment().root, source.state().commitment().root);

  // Re-importing onto a synced node is a no-op.
  auto again = fresh.import_blocks(source.export_blocks());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 0u);
}

TEST(Blockchain, ImportRejectsTamperedArchive) {
  ChainFixture f;
  Blockchain source = f.make_chain();
  for (int h = 0; h < 3; ++h) {
    const auto& proposer = (h % 2 == 0) ? f.v0 : f.v1;
    ASSERT_TRUE(source.append(source.assemble(proposer, {}, h, f.rng)).ok());
  }
  Bytes archive = source.export_blocks();
  archive[archive.size() / 2] ^= 0xff;  // corrupt a middle block
  Blockchain fresh = f.make_chain();
  const auto imported = fresh.import_blocks(archive);
  // Either the decode fails or validation stops at the corrupt block; the
  // already-validated prefix must itself be consistent.
  EXPECT_FALSE(imported.ok());
  EXPECT_LT(fresh.height(), source.height());
  for (std::int64_t h = 0; h < fresh.height(); ++h) {
    EXPECT_EQ(fresh.blocks()[static_cast<std::size_t>(h)].header.hash(),
              source.blocks()[static_cast<std::size_t>(h)].header.hash());
  }
}

TEST(Blockchain, ImportRejectsForgedCount) {
  ChainFixture f;
  Blockchain fresh = f.make_chain();
  ByteWriter w;
  w.u32(0xffffffff);
  EXPECT_FALSE(fresh.import_blocks(w.take()).ok());
}

// ---------------------------------------------------------------- consensus

struct CommitteeFixture {
  Rng rng{202};
  SimClock clock;
  net::Network network{clock, Rng(303),
                       net::LinkParams{.base_latency = 1.0, .jitter = 1.0, .drop_rate = 0.0}};
  std::shared_ptr<ContractRegistry> contracts = std::make_shared<ContractRegistry>();
  crypto::Wallet alice{rng};
  crypto::Wallet bob{rng};
  LedgerState genesis;

  CommitteeFixture() { genesis.credit(alice.address(), 1'000'000); }
};

TEST(Consensus, CommitsAcrossAllReplicas) {
  CommitteeFixture f;
  ValidatorCommittee committee(f.network, 4, f.contracts, f.genesis, 64, f.rng);
  for (std::uint64_t i = 0; i < 10; ++i) {
    committee.submit(make_transfer(f.alice, i, f.bob.address(), 10, 1, f.rng));
  }
  ASSERT_TRUE(committee.run_round());
  EXPECT_TRUE(committee.replicas_consistent());
  EXPECT_EQ(committee.chain(0).height(), 1);
  EXPECT_EQ(committee.chain(0).state().balance(f.bob.address()), 100u);
  EXPECT_EQ(committee.stats().committed_txs, 10u);
}

TEST(Consensus, MultipleRoundsRotateLeaders) {
  CommitteeFixture f;
  ValidatorCommittee committee(f.network, 4, f.contracts, f.genesis, 8, f.rng);
  for (std::uint64_t i = 0; i < 20; ++i) {
    committee.submit(make_transfer(f.alice, i, f.bob.address(), 1, 1, f.rng));
  }
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(committee.run_round()) << "round " << round;
  }
  EXPECT_TRUE(committee.replicas_consistent());
  EXPECT_EQ(committee.chain(2).height(), 3);
  // Proposers alternate per round-robin.
  EXPECT_NE(committee.chain(0).blocks()[0].header.proposer(),
            committee.chain(0).blocks()[1].header.proposer());
}

TEST(Consensus, PartitionedMinorityCannotCommit) {
  CommitteeFixture f;
  ValidatorCommittee committee(f.network, 4, f.contracts, f.genesis, 8, f.rng);
  committee.submit(make_transfer(f.alice, 0, f.bob.address(), 1, 1, f.rng));
  // Isolate the leader of round 0 (validator 0) with one peer: 2 of 4 < quorum 3.
  f.network.set_group(committee.node(0), 1);
  f.network.set_group(committee.node(1), 1);
  EXPECT_FALSE(committee.run_round());
  EXPECT_EQ(committee.chain(0).height(), 0);
  // Heal; the same round now succeeds.
  f.network.heal();
  EXPECT_TRUE(committee.run_round());
  EXPECT_TRUE(committee.replicas_consistent());
}

TEST(Consensus, LaggardCatchesUpAfterPartitionHeals) {
  CommitteeFixture f;
  ValidatorCommittee committee(f.network, 4, f.contracts, f.genesis, 8, f.rng);
  for (std::uint64_t i = 0; i < 12; ++i) {
    committee.submit(make_transfer(f.alice, i, f.bob.address(), 1, 1, f.rng));
  }
  // Validator 3 drops off; the remaining 3 still have quorum (3 of 4).
  f.network.set_group(committee.node(3), 1);
  ASSERT_TRUE(committee.run_round());
  ASSERT_TRUE(committee.run_round());
  EXPECT_EQ(committee.chain(0).height(), 2);
  EXPECT_EQ(committee.chain(3).height(), 0);
  EXPECT_FALSE(committee.replicas_consistent());

  // Heal: the next proposals carry a height ahead of validator 3's view; it
  // pulls the missing blocks via sync_req/sync_resp and rejoins.
  f.network.heal();
  ASSERT_TRUE(committee.run_round());
  ASSERT_TRUE(committee.run_round());
  EXPECT_TRUE(committee.replicas_consistent());
  EXPECT_EQ(committee.chain(3).height(), 4);
}

TEST(Consensus, LaggingLeaderIsRescuedByPeers) {
  CommitteeFixture f;
  ValidatorCommittee committee(f.network, 4, f.contracts, f.genesis, 8, f.rng);
  // Heights 0 and 1 are led by validators 0 and 1. Isolate validator 2, run
  // two rounds, heal right before validator 2's turn as leader (height 2).
  f.network.set_group(committee.node(2), 1);
  ASSERT_TRUE(committee.run_round());
  ASSERT_TRUE(committee.run_round());
  f.network.heal();
  // Validator 2 leads from a stale height: the round fails, but peers ship
  // it the missing blocks in response to its stale proposal...
  (void)committee.run_round();
  // ...so by the following round it proposes from the right height.
  ASSERT_TRUE(committee.run_round());
  EXPECT_TRUE(committee.replicas_consistent());
  EXPECT_GE(committee.chain(2).height(), 3);
}

TEST(Consensus, SurvivesMessageLoss) {
  Rng rng(404);
  SimClock clock;
  net::Network lossy(clock, Rng(405),
                     net::LinkParams{.base_latency = 1.0, .jitter = 2.0, .drop_rate = 0.05});
  auto contracts = std::make_shared<ContractRegistry>();
  crypto::Wallet alice{rng};
  LedgerState genesis;
  genesis.credit(alice.address(), 1000);
  ValidatorCommittee committee(lossy, 7, contracts, genesis, 8, rng);
  committee.submit(make_transfer(alice, 0, crypto::Address{42}, 1, 1, rng));
  int commits = 0;
  for (int round = 0; round < 5; ++round) commits += committee.run_round();
  // With 5% loss and a 7-node committee, most rounds commit.
  EXPECT_GE(commits, 3);
}

class CommitteeSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CommitteeSizeTest, QuorumIsTwoThirdsPlusOne) {
  CommitteeFixture f;
  ValidatorCommittee committee(f.network, GetParam(), f.contracts, f.genesis, 8, f.rng);
  EXPECT_EQ(committee.quorum(), GetParam() * 2 / 3 + 1);
  EXPECT_TRUE(committee.run_round());  // empty block still commits
  EXPECT_TRUE(committee.replicas_consistent());
}

INSTANTIATE_TEST_SUITE_P(Sizes, CommitteeSizeTest, ::testing::Values(1, 2, 4, 7, 10));

TEST(Consensus, TxDisseminationViaGossipReachesAllMempools) {
  // Integration of the gossip substrate with the ledger: clients publish
  // transactions as rumors; every validator's mempool converges on the set.
  CommitteeFixture f;
  ValidatorCommittee committee(f.network, 4, f.contracts, f.genesis, 64, f.rng);
  // A gossip overlay among client relays; each delivery forwards the tx to
  // one validator (modelling one validator's RPC edge per relay).
  std::vector<NodeId> relays;
  net::Gossip gossip(f.network, Rng(55), /*fanout=*/8,
                     [&](NodeId node, const Bytes& payload) {
                       auto tx = Transaction::decode(payload);
                       if (!tx.ok()) return;
                       committee.submit(tx.value());
                       (void)node;
                     });
  for (int i = 0; i < 8; ++i) gossip.join();
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto tx = make_transfer(f.alice, i, f.bob.address(), 1, 1, f.rng);
    gossip.publish(NodeId(committee.size() + i % 8), tx.encode());
  }
  f.network.run_until_idle();
  for (std::size_t v = 0; v < committee.size(); ++v) {
    EXPECT_EQ(committee.mempool(v).size(), 5u) << "validator " << v;
  }
  ASSERT_TRUE(committee.run_round());
  EXPECT_EQ(committee.chain(0).state().balance(f.bob.address()), 5u);
}

// ---------------------------------------------------------------- audit

TEST(Audit, RecordsCommitAndQuery) {
  CommitteeFixture f;
  ValidatorCommittee committee(f.network, 4, f.contracts, f.genesis, 64, f.rng);
  AuditClient client(f.alice, f.rng);
  for (int i = 0; i < 6; ++i) {
    committee.submit(client.record(
        committee.chain(0).state(),
        AuditRecordBody{i % 2 ? "gaze" : "spatial_map", "render", 7, "none"}));
  }
  ASSERT_TRUE(committee.run_round());
  AuditQuery query(committee.chain(1));
  EXPECT_EQ(query.by_subject(7).size(), 6u);
  EXPECT_EQ(query.by_collector(f.alice.address()).size(), 6u);
  const auto profiles = query.collector_profiles();
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].by_category.at("gaze"), 3u);
  EXPECT_EQ(profiles[0].without_pet, 6u);
}

TEST(Audit, NonceSequencingSurvivesCommitsBetweenRecords) {
  // Regression: records issued across consensus rounds must keep consecutive
  // nonces (the committed nonce must not be double-counted).
  CommitteeFixture f;
  ValidatorCommittee committee(f.network, 4, f.contracts, f.genesis, 64, f.rng);
  AuditClient client(f.alice, f.rng);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      committee.submit(client.record(
          committee.chain(0).state(),
          AuditRecordBody{"gaze", "render", 1, "none"}));
    }
    ASSERT_TRUE(committee.run_round());
  }
  EXPECT_EQ(committee.chain(0).state().audit_log().size(), 12u);
  EXPECT_EQ(committee.chain(0).state().nonce(f.alice.address()), 12u);
}

TEST(Audit, MonopolyDetection) {
  Fixture f;
  ChainConfig config;
  crypto::Wallet v0{f.rng};
  config.validators = {v0.public_key()};
  Blockchain chain(config, f.contracts, f.state);

  crypto::Wallet big{f.rng}, small{f.rng};
  AuditClient big_client(big, f.rng), small_client(small, f.rng);
  std::vector<Transaction> txs;
  for (int i = 0; i < 9; ++i) {
    txs.push_back(big_client.record(chain.state(),
                                    AuditRecordBody{"gaze", "ads", 1, "none"}));
  }
  txs.push_back(small_client.record(chain.state(),
                                    AuditRecordBody{"gaze", "render", 2, "dp"}));
  ASSERT_TRUE(chain.append(chain.assemble(v0, txs, 0, f.rng)).ok());

  AuditQuery query(chain);
  EXPECT_TRUE(query.has_data_monopoly(0.5));
  EXPECT_FALSE(query.has_data_monopoly(0.95));
  EXPECT_NEAR(query.data_concentration_hhi(), 0.81 + 0.01, 1e-9);
}

// --------------------------------------------------------- state commitment

TEST(StateCommitment, IncrementalMatchesFullRehash) {
  Fixture f;
  EXPECT_EQ(f.state.commitment(), f.state.full_rehash_commitment());
  const auto tx = make_transfer(f.alice, 0, f.bob.address(), 100, 5, f.rng);
  ASSERT_TRUE(f.state.apply(tx, *f.contracts, 0).ok());
  f.state.store_put("reg", "k", Bytes{1, 2});
  f.state.append_audit(
      StoredAuditRecord{f.alice.address(), {"gaze", "ads", 1, "none"}, 0});
  const auto c = f.state.commitment();
  EXPECT_EQ(c, f.state.full_rehash_commitment());
  EXPECT_EQ(c.root, f.state.full_rehash_root());
  EXPECT_EQ(c.account_count, 2u);
  EXPECT_EQ(c.audit_count, 1u);
  EXPECT_EQ(c.burned_fees, 5u);
}

TEST(StateCommitment, SectionsIsolateWhatChanged) {
  Fixture f;
  const auto before = f.state.commitment();
  f.state.append_audit(
      StoredAuditRecord{f.alice.address(), {"gaze", "ads", 1, "none"}, 0});
  const auto after = f.state.commitment();
  EXPECT_NE(after.root, before.root);
  EXPECT_NE(after.audit_digest, before.audit_digest);
  EXPECT_EQ(after.accounts_root, before.accounts_root);  // accounts untouched
  EXPECT_EQ(after.stores_digest, before.stores_digest);  // stores untouched
}

TEST(LedgerStateOverlay, ReaderComputesCommitmentWithoutMutatingBase) {
  Fixture f;
  const auto base_before = f.state.commitment();
  auto scratch = LedgerStateOverlay::reader(f.state);
  const auto tx = make_transfer(f.alice, 0, f.bob.address(), 100, 5, f.rng);
  ASSERT_TRUE(scratch.apply(tx, *f.contracts, 0).ok());
  const auto oc = scratch.commitment();
  EXPECT_NE(oc.root, base_before.root);
  EXPECT_EQ(f.state.commitment(), base_before);  // base untouched
}

TEST(LedgerStateOverlay, WriterCommitmentPredictsPostCommitState) {
  Fixture f;
  auto scratch = LedgerStateOverlay::writer(f.state);
  const auto tx = make_transfer(f.alice, 0, f.bob.address(), 100, 5, f.rng);
  ASSERT_TRUE(scratch.apply(tx, *f.contracts, 0).ok());
  scratch.store_put("reg", "k", Bytes{9});
  const auto oc = scratch.commitment();
  scratch.commit();
  EXPECT_EQ(f.state.commitment(), oc);
  EXPECT_EQ(f.state.commitment(), f.state.full_rehash_commitment());
}

TEST(LedgerStateOverlay, NestedOverlayCommitmentValidOverUnmaterializedBase) {
  // The historical API computed a state root only on an overlay whose base
  // was the materialized LedgerState; commitment() must work at any depth.
  Fixture f;
  auto outer = LedgerStateOverlay::writer(f.state);
  ASSERT_TRUE(
      outer.apply(make_transfer(f.alice, 0, f.bob.address(), 100, 5, f.rng),
                  *f.contracts, 0)
          .ok());
  auto inner = LedgerStateOverlay::nested(outer);
  ASSERT_TRUE(
      inner.apply(make_transfer(f.bob, 0, f.alice.address(), 30, 2, f.rng),
                  *f.contracts, 0)
          .ok());
  inner.store_put("reg", "k", Bytes{1});
  inner.append_audit(
      StoredAuditRecord{f.bob.address(), {"pose", "render", 3, "none"}, 0});
  const auto nested_c = inner.commitment();
  inner.commit();
  EXPECT_EQ(outer.commitment(), nested_c);
  outer.commit();
  EXPECT_EQ(f.state.commitment(), nested_c);
  EXPECT_EQ(f.state.full_rehash_commitment(), nested_c);
}

TEST(LedgerStateOverlay, OverlayTombstoneErasesBaseStoreKey) {
  Fixture f;
  f.state.store_put("reg", "k", Bytes{1});
  auto scratch = LedgerStateOverlay::writer(f.state);
  scratch.store_erase("reg", "k");
  const auto oc = scratch.commitment();
  scratch.commit();
  EXPECT_EQ(f.state.store_get("reg", "k"), nullptr);
  EXPECT_EQ(f.state.commitment(), oc);
  EXPECT_EQ(f.state.commitment(), f.state.full_rehash_commitment());
}

TEST(LedgerState, DifferentialCommitmentMatchesFullRehashOracle) {
  // >= 10k randomized mixed operations (credits, debits, nonce bumps, store
  // writes/erases, audit appends) staged through writer overlays that are
  // committed or discarded at every "block boundary"; the incrementally
  // maintained commitment must equal the from-scratch oracle throughout.
  Rng rng(2024);
  LedgerState state;
  const auto addr = [&rng] { return crypto::Address{rng.next_below(48) + 1}; };
  const auto blob = [&rng] {
    Bytes b;
    const std::uint64_t len = rng.next_below(6);
    for (std::uint64_t i = 0; i < len; ++i) {
      b.push_back(static_cast<std::uint8_t>(rng.next_u64()));
    }
    return b;
  };
  const std::array<std::string, 3> contracts{"nft", "dao", "reg"};
  std::size_t ops = 0;
  int block = 0;
  while (ops < 10000) {
    auto scratch = LedgerStateOverlay::writer(state);
    const std::uint64_t block_ops = 1 + rng.next_below(150);
    for (std::uint64_t i = 0; i < block_ops; ++i, ++ops) {
      switch (rng.next_below(6)) {
        case 0:
          scratch.credit(addr(), rng.next_below(1000));
          break;
        case 1:
          (void)scratch.debit(addr(), rng.next_below(500));  // may fail: fine
          break;
        case 2:
          // Includes nonce -> 0 on accounts without a balance entry, which
          // must drop the account leaf entirely.
          scratch.set_nonce(addr(), rng.next_below(3));
          break;
        case 3:
          scratch.store_put(contracts[rng.next_below(3)],
                            "k" + std::to_string(rng.next_below(20)), blob());
          break;
        case 4:
          scratch.store_erase(contracts[rng.next_below(3)],
                              "k" + std::to_string(rng.next_below(20)));
          break;
        default:
          scratch.append_audit(StoredAuditRecord{
              addr(), {"gaze", "ads", rng.next_below(10), "none"},
              static_cast<Tick>(block)});
          break;
      }
    }
    const auto oc = scratch.commitment();
    if (rng.chance(0.7)) {
      scratch.commit();
      ASSERT_EQ(state.commitment(), oc) << "block " << block;
    }
    // Whether committed or discarded, the incremental sections must agree
    // with the from-scratch oracle at the boundary.
    ASSERT_EQ(state.commitment(), state.full_rehash_commitment())
        << "block " << block;
    ++block;
  }
}

// ---------------------------------------------------------- mempool TTL/cap

TEST(Mempool, SweepExpiredDropsOnlyStaleEntries) {
  Fixture f;
  Mempool pool(MempoolConfig{.ttl = 10, .max_txs = 100});
  ASSERT_TRUE(
      pool.add(make_transfer(f.alice, 0, f.bob.address(), 1, 1, f.rng), f.state, 0)
          .ok());
  ASSERT_TRUE(
      pool.add(make_transfer(f.bob, 0, f.alice.address(), 1, 1, f.rng), f.state, 8)
          .ok());
  EXPECT_EQ(pool.sweep_expired(10), 0u);  // age 10 == ttl: not yet expired
  EXPECT_EQ(pool.sweep_expired(11), 1u);  // alice's (age 11) goes, bob's stays
  EXPECT_EQ(pool.size(), 1u);
  const auto picked = pool.select(10, f.state);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0].sender(), f.bob.address());
  EXPECT_EQ(pool.sweep_expired(19), 1u);
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(pool.stats().expired, 2u);
}

TEST(Mempool, ZeroTtlDisablesExpiry) {
  Fixture f;
  Mempool pool(MempoolConfig{.ttl = 0, .max_txs = 100});
  ASSERT_TRUE(
      pool.add(make_transfer(f.alice, 0, f.bob.address(), 1, 1, f.rng), f.state, 0)
          .ok());
  EXPECT_EQ(pool.sweep_expired(1000000), 0u);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Mempool, NonceGappedTxExpiresInsteadOfPendingForever) {
  // Nonce 2 arrives but nonce 1 never does: the successor is unrunnable and
  // must eventually age out, even while fresh traffic keeps flowing.
  Fixture f;
  Mempool pool(MempoolConfig{.ttl = 10, .max_txs = 100});
  ASSERT_TRUE(
      pool.add(make_transfer(f.alice, 0, f.bob.address(), 1, 1, f.rng), f.state, 0)
          .ok());
  ASSERT_TRUE(pool
                  .add(make_transfer(f.alice, 2, f.bob.address(), 1, 100, f.rng),
                       f.state, 0)
                  .ok());
  // The runnable nonce-0 tx commits; the gapped one stays behind.
  auto picked = pool.select(10, f.state);
  ASSERT_EQ(picked.size(), 1u);
  ASSERT_TRUE(f.state.apply(picked[0], *f.contracts, 0).ok());
  pool.remove_included(picked);
  pool.prune(f.state);
  EXPECT_EQ(pool.size(), 1u);  // prune keeps it: nonce 2 is still future
  // Fresh traffic at tick 20 is untouched; the orphan (admitted at 0) ages out.
  ASSERT_TRUE(
      pool.add(make_transfer(f.bob, 0, f.alice.address(), 1, 1, f.rng), f.state, 20)
          .ok());
  EXPECT_EQ(pool.sweep_expired(20), 1u);
  picked = pool.select(10, f.state);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0].sender(), f.bob.address());
}

TEST(Mempool, AtCapacityEvictsLowestFeeOrRejects) {
  Fixture f;
  crypto::Wallet carol{f.rng}, dave{f.rng};
  f.state.credit(carol.address(), 500);
  f.state.credit(dave.address(), 500);
  Mempool pool(MempoolConfig{.ttl = 0, .max_txs = 3});
  ASSERT_TRUE(
      pool.add(make_transfer(f.alice, 0, f.bob.address(), 1, 5, f.rng), f.state, 0)
          .ok());
  ASSERT_TRUE(
      pool.add(make_transfer(f.bob, 0, f.alice.address(), 1, 10, f.rng), f.state, 0)
          .ok());
  ASSERT_TRUE(
      pool.add(make_transfer(carol, 0, f.bob.address(), 1, 15, f.rng), f.state, 0)
          .ok());
  // Full, fee 20 > floor fee 5: alice's tx is displaced.
  ASSERT_TRUE(
      pool.add(make_transfer(dave, 0, f.bob.address(), 1, 20, f.rng), f.state, 0)
          .ok());
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.stats().evicted_low_fee, 1u);
  const auto picked = pool.select(10, f.state);
  for (const auto& tx : picked) EXPECT_NE(tx.sender(), f.alice.address());
  // Full, fee 10 == new floor: rejected, pool unchanged.
  const auto cheap = make_transfer(f.alice, 0, f.bob.address(), 2, 10, f.rng);
  EXPECT_EQ(pool.add(cheap, f.state, 0).error().code, "mempool.full");
  EXPECT_EQ(pool.stats().rejected_full, 1u);
  EXPECT_EQ(pool.size(), 3u);
  // Replace-by-fee still works at capacity (pool does not grow).
  ASSERT_TRUE(
      pool.add(make_transfer(f.bob, 0, f.alice.address(), 1, 12, f.rng), f.state, 0)
          .ok());
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.stats().replaced, 1u);
}

TEST(Mempool, ReplaceByFeeAtExactCapacityNeverEvictsOthers) {
  // A same-sender+nonce replacement at exact capacity must take the
  // replacement path — substituting in place — not the eviction path, even
  // though its fee also beats the pool floor. Nobody else's tx is displaced.
  Fixture f;
  crypto::Wallet carol{f.rng}, dave{f.rng};
  f.state.credit(carol.address(), 500);
  f.state.credit(dave.address(), 500);
  Mempool pool(MempoolConfig{.ttl = 0, .max_txs = 4});
  ASSERT_TRUE(
      pool.add(make_transfer(f.alice, 0, f.bob.address(), 1, 2, f.rng), f.state, 0)
          .ok());
  ASSERT_TRUE(
      pool.add(make_transfer(f.bob, 0, f.alice.address(), 1, 5, f.rng), f.state, 0)
          .ok());
  ASSERT_TRUE(
      pool.add(make_transfer(carol, 0, f.bob.address(), 1, 7, f.rng), f.state, 0)
          .ok());
  ASSERT_TRUE(
      pool.add(make_transfer(dave, 0, f.bob.address(), 1, 9, f.rng), f.state, 0)
          .ok());
  ASSERT_EQ(pool.size(), 4u);
  // Alice re-prices her pending nonce-0 tx (fee 2 -> 20, above the floor).
  ASSERT_TRUE(
      pool.add(make_transfer(f.alice, 0, f.bob.address(), 1, 20, f.rng), f.state, 0)
          .ok());
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_EQ(pool.stats().replaced, 1u);
  EXPECT_EQ(pool.stats().evicted_low_fee, 0u);
  EXPECT_EQ(pool.stats().rejected_full, 0u);
  // An equal-fee re-replacement is underpriced — and does NOT count as a
  // capacity rejection either.
  const auto equal =
      make_transfer(f.alice, 0, f.bob.address(), 2, 20, f.rng);
  EXPECT_EQ(pool.add(equal, f.state, 0).error().code, "mempool.underpriced");
  EXPECT_EQ(pool.stats().rejected_full, 0u);
  EXPECT_EQ(pool.stats().replaced, 1u);
  EXPECT_EQ(pool.size(), 4u);
  // Everyone's original transactions (with alice's re-priced) are selectable.
  EXPECT_EQ(pool.select(10, f.state).size(), 4u);
}

TEST(Mempool, SweepExpiredFreesCapacityBeforeEviction) {
  // TTL expiry and at-cap eviction interact: a sweep opens slots so a low-fee
  // newcomer is admitted without displacing anyone; once the pool refills,
  // eviction picks the lowest-fee survivor, not an already-expired entry.
  Fixture f;
  crypto::Wallet carol{f.rng}, dave{f.rng};
  f.state.credit(carol.address(), 500);
  f.state.credit(dave.address(), 500);
  Mempool pool(MempoolConfig{.ttl = 10, .max_txs = 3});
  ASSERT_TRUE(
      pool.add(make_transfer(f.alice, 0, f.bob.address(), 1, 1, f.rng), f.state, 0)
          .ok());
  ASSERT_TRUE(
      pool.add(make_transfer(f.bob, 0, f.alice.address(), 1, 9, f.rng), f.state, 0)
          .ok());
  ASSERT_TRUE(
      pool.add(make_transfer(carol, 0, f.bob.address(), 1, 8, f.rng), f.state, 2)
          .ok());
  ASSERT_EQ(pool.size(), 3u);
  // Tick 12: the two tick-0 admissions (fees 1 and 9) age out; carol's
  // tick-2 tx survives. Expiry is by age, not fee.
  EXPECT_EQ(pool.sweep_expired(12), 2u);
  EXPECT_EQ(pool.stats().expired, 2u);
  EXPECT_EQ(pool.size(), 1u);
  // A fee-2 newcomer — far below carol's fee 8 — is admitted into the freed
  // capacity without evicting anyone.
  ASSERT_TRUE(
      pool.add(make_transfer(dave, 0, f.bob.address(), 1, 2, f.rng), f.state, 12)
          .ok());
  EXPECT_EQ(pool.stats().evicted_low_fee, 0u);
  // Refill to cap, then force an eviction: the victim is dave's fee-2 tx.
  ASSERT_TRUE(
      pool.add(make_transfer(f.alice, 0, f.bob.address(), 1, 6, f.rng), f.state, 12)
          .ok());
  ASSERT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.stats().evicted_low_fee, 0u);
  ASSERT_TRUE(
      pool.add(make_transfer(f.bob, 0, f.alice.address(), 1, 7, f.rng), f.state, 12)
          .ok());
  EXPECT_EQ(pool.stats().evicted_low_fee, 1u);
  EXPECT_EQ(pool.size(), 3u);
  const auto picked = pool.select(10, f.state);
  for (const auto& tx : picked) EXPECT_NE(tx.sender(), dave.address());
  // A newcomer that does not strictly out-pay the new floor (6) is refused.
  const auto cheap = make_transfer(dave, 0, f.bob.address(), 2, 6, f.rng);
  EXPECT_EQ(pool.add(cheap, f.state, 12).error().code, "mempool.full");
  EXPECT_EQ(pool.stats().rejected_full, 1u);
}

// -------------------------------------------- account proofs / light client

TEST(AccountProof, LightClientEndToEnd) {
  ChainFixture f;
  Blockchain chain = f.make_chain();
  ASSERT_TRUE(chain
                  .append(chain.assemble(
                      f.v0, {make_transfer(f.alice, 0, f.bob.address(), 10, 1, f.rng)},
                      0, f.rng))
                  .ok());
  ASSERT_TRUE(chain
                  .append(chain.assemble(
                      f.v1, {make_transfer(f.bob, 0, f.alice.address(), 5, 1, f.rng)},
                      1, f.rng))
                  .ok());

  // The light client sees only headers — never the LedgerState.
  LightClient lc(LightClientConfig{{f.v0.public_key(), f.v1.public_key()},
                                   chain.genesis_hash()});
  for (const Block& b : chain.blocks()) {
    ASSERT_TRUE(lc.accept_header(b.header).ok());
  }
  EXPECT_EQ(lc.height(), 2);
  EXPECT_EQ(lc.tip_hash(), chain.tip_hash());

  auto ap = chain.prove_account(f.bob.address(), 1);
  ASSERT_TRUE(ap.ok());
  // Ship it over the wire, as a full node would.
  auto decoded = AccountProof::decode(ap.value().encode());
  ASSERT_TRUE(decoded.ok());
  auto st = lc.verify_account(decoded.value());
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st.value().exists);
  EXPECT_EQ(st.value().balance, chain.state().balance(f.bob.address()));
  EXPECT_EQ(st.value().nonce, 1u);

  // Non-membership: an address that never appeared.
  auto absent = chain.prove_account(crypto::Address{0x123456}, 1);
  ASSERT_TRUE(absent.ok());
  auto ast = lc.verify_account(absent.value());
  ASSERT_TRUE(ast.ok());
  EXPECT_FALSE(ast.value().exists);

  // Historical heights inside the retention window are served too: the proof
  // at tip-1 anchors against that older header and shows the pre-transfer
  // balance.
  auto old_ap = chain.prove_account(f.bob.address(), 0);
  ASSERT_TRUE(old_ap.ok());
  auto old_decoded = AccountProof::decode(old_ap.value().encode());
  ASSERT_TRUE(old_decoded.ok());
  auto old_st = lc.verify_account(old_decoded.value());
  ASSERT_TRUE(old_st.ok());
  EXPECT_EQ(old_st.value().balance, st.value().balance + 5 + 1);  // amount + fee
  EXPECT_EQ(old_st.value().nonce, 0u);

  // Future heights are a distinct error from stale ones.
  EXPECT_EQ(chain.prove_account(f.bob.address(), 7).error().code,
            "chain.bad_height");
}

TEST(AccountProof, RetentionWindowBoundsHistoricalProofs) {
  ChainFixture f;
  f.config.state_retention = 3;
  Blockchain chain = f.make_chain();
  LightClient lc(LightClientConfig{{f.v0.public_key(), f.v1.public_key()},
                                   chain.genesis_hash()});
  // Eight blocks, each moving 1 from alice to bob, so every height has a
  // distinct bob balance to recognise historical states by.
  const std::uint64_t bob0 = chain.state().balance(f.bob.address());
  for (int h = 0; h < 8; ++h) {
    const crypto::Wallet& proposer = (h % 2 == 0) ? f.v0 : f.v1;
    ASSERT_TRUE(
        chain
            .append(chain.assemble(
                proposer,
                {make_transfer(f.alice, h, f.bob.address(), 1, 1, f.rng)},
                h, f.rng))
            .ok());
    ASSERT_TRUE(lc.accept_header(chain.blocks().back().header).ok());
  }
  const std::int64_t tip = chain.height() - 1;

  // Every height in [tip - retention, tip] verifies against its own header.
  for (std::int64_t h = tip - 3; h <= tip; ++h) {
    auto ap = chain.prove_account(f.bob.address(), h);
    ASSERT_TRUE(ap.ok()) << "height " << h;
    auto st = lc.verify_account(ap.value());
    ASSERT_TRUE(st.ok()) << "height " << h;
    EXPECT_EQ(st.value().balance, bob0 + static_cast<std::uint64_t>(h) + 1);
  }
  // One height older falls off the ring.
  EXPECT_EQ(chain.prove_account(f.bob.address(), tip - 4).error().code,
            "chain.stale_height");
  // Proving a historical height leaves the live state untouched.
  auto tip_ap = chain.prove_account(f.bob.address(), tip);
  ASSERT_TRUE(tip_ap.ok());
  EXPECT_EQ(tip_ap.value().commitment.root, chain.state().commitment().root);
}

TEST(AccountProof, TamperedProofsAreRejected) {
  ChainFixture f;
  Blockchain chain = f.make_chain();
  ASSERT_TRUE(chain.append(chain.assemble(f.v0, {}, 0, f.rng)).ok());
  LightClient lc(LightClientConfig{{f.v0.public_key(), f.v1.public_key()},
                                   chain.genesis_hash()});
  ASSERT_TRUE(lc.accept_header(chain.blocks()[0].header).ok());
  const auto honest = chain.prove_account(f.alice.address(), 0);
  ASSERT_TRUE(honest.ok());
  ASSERT_TRUE(lc.verify_account(honest.value()).ok());

  AccountProof lie = honest.value();
  lie.statement.balance += 1;
  EXPECT_EQ(lc.verify_account(lie).error().code, "proof.bad_path");

  lie = honest.value();
  lie.statement = AccountStatement{};  // deny an existing account
  EXPECT_EQ(lc.verify_account(lie).error().code, "proof.bad_path");

  lie = honest.value();
  lie.commitment.burned_fees += 1;  // sections no longer match the header
  EXPECT_EQ(lc.verify_account(lie).error().code, "proof.bad_commitment");

  lie = honest.value();
  lie.height = 3;  // no such header accepted
  EXPECT_EQ(lc.verify_account(lie).error().code, "light.unknown_height");

  lie = honest.value();
  lie.address = f.bob.address();  // someone else's proof
  EXPECT_EQ(lc.verify_account(lie).error().code, "proof.bad_path");

  // Internally inconsistent statements never reach the Merkle check.
  lie = honest.value();
  lie.statement.exists = false;
  lie.statement.has_balance = true;
  EXPECT_EQ(lc.verify_account(lie).error().code, "proof.bad_statement");
}

TEST(LightClient, RejectsBadHeaders) {
  ChainFixture f;
  Blockchain chain = f.make_chain();
  ASSERT_TRUE(chain.append(chain.assemble(f.v0, {}, 0, f.rng)).ok());
  ASSERT_TRUE(chain.append(chain.assemble(f.v1, {}, 1, f.rng)).ok());
  const BlockHeader h0 = chain.blocks()[0].header;
  const BlockHeader h1 = chain.blocks()[1].header;
  const LightClientConfig config{{f.v0.public_key(), f.v1.public_key()},
                                 chain.genesis_hash()};
  {
    LightClient lc(config);  // out-of-order height
    EXPECT_EQ(lc.accept_header(h1).error().code, "light.bad_height");
  }
  {
    LightClient lc(config);  // broken linkage
    BlockHeader bad = h0;
    bad.prev_hash[0] ^= 1;
    EXPECT_EQ(lc.accept_header(bad).error().code, "light.bad_parent");
  }
  {
    // Validator order swapped: h0 was proposed by v0, but this client
    // expects v1 at height 0.
    LightClient lc(LightClientConfig{{f.v1.public_key(), f.v0.public_key()},
                                     chain.genesis_hash()});
    EXPECT_EQ(lc.accept_header(h0).error().code, "light.wrong_proposer");
  }
  {
    LightClient lc(config);  // forged state root breaks the signature
    BlockHeader bad = h0;
    bad.state_root[0] ^= 1;
    EXPECT_EQ(lc.accept_header(bad).error().code, "light.bad_proposer_sig");
  }
  {
    LightClient lc(config);  // and the honest sequence is accepted
    ASSERT_TRUE(lc.accept_header(h0).ok());
    ASSERT_TRUE(lc.accept_header(h1).ok());
    EXPECT_EQ(lc.accept_header(h0).error().code, "light.bad_height");  // replay
  }
}

TEST(AccountProof, HundredThousandAccountChainTip) {
  // Acceptance property: at a 100k-account chain tip, every present key
  // proves, sampled absent keys non-membership-prove, and mutated
  // proofs/values/roots all fail.
  Rng rng(20260805);
  LedgerState genesis;
  std::vector<std::uint64_t> addrs;
  addrs.reserve(100000);
  while (addrs.size() < 100000) {
    const std::uint64_t a = rng.chance(0.5)
                                ? (0xACC0000000000000ull | rng.next_below(1u << 21))
                                : rng.next_u64();
    if (a == 0) continue;
    const crypto::Address addr{a};
    if (genesis.find_balance(addr).has_value()) continue;
    genesis.credit(addr, 1 + rng.next_below(1000));
    addrs.push_back(a);
  }
  crypto::Wallet validator(rng);
  ChainConfig config;
  config.validators = {validator.public_key()};
  Blockchain chain(config, std::make_shared<ContractRegistry>(), genesis);
  ASSERT_TRUE(chain.append(chain.assemble(validator, {}, 0, rng)).ok());
  const crypto::Digest state_root = chain.blocks()[0].header.state_root;
  LightClient lc(
      LightClientConfig{{validator.public_key()}, chain.genesis_hash()});
  ASSERT_TRUE(lc.accept_header(chain.blocks()[0].header).ok());

  for (const std::uint64_t a : addrs) {
    const auto ap = chain.prove_account(crypto::Address{a}, 0);
    ASSERT_TRUE(ap.ok());
    ASSERT_TRUE(ap.value().statement.exists);
    ASSERT_TRUE(verify_account_proof(ap.value(), state_root).ok())
        << "account " << a;
  }
  std::size_t absent = 0;
  while (absent < 10000) {
    const std::uint64_t a = rng.chance(0.5)
                                ? (0xACC0000000000000ull | rng.next_below(1u << 21))
                                : rng.next_u64();
    if (a == 0 || chain.state().find_balance(crypto::Address{a}).has_value()) {
      continue;
    }
    const auto ap = chain.prove_account(crypto::Address{a}, 0);
    ASSERT_TRUE(ap.ok());
    ASSERT_FALSE(ap.value().statement.exists);
    ASSERT_TRUE(verify_account_proof(ap.value(), state_root).ok())
        << "absent " << a;
    ++absent;
  }
  // Mutations: value, root, and proof bytes, over a sample of accounts.
  for (int sample = 0; sample < 64; ++sample) {
    const std::uint64_t a = addrs[rng.next_below(addrs.size())];
    const auto ap = chain.prove_account(crypto::Address{a}, 0);
    ASSERT_TRUE(ap.ok());

    AccountProof wrong_value = ap.value();
    wrong_value.statement.balance ^= 1;
    EXPECT_FALSE(verify_account_proof(wrong_value, state_root).ok());

    crypto::Digest wrong_root = state_root;
    wrong_root[rng.next_below(wrong_root.size())] ^= 0x40;
    EXPECT_FALSE(verify_account_proof(ap.value(), wrong_root).ok());

    // Mutated wire bytes go through the light client: a height mutation is
    // caught by the header lookup, everything else by the crypto.
    Bytes wire = ap.value().encode();
    wire[rng.next_below(wire.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
    const auto mutated = AccountProof::decode(wire);
    if (mutated.ok()) {
      EXPECT_FALSE(lc.verify_account(mutated.value()).ok());
    }
  }
}

// ----------------------------------------------------- overlay commit modes

TEST(LedgerStateOverlayDeathTest, CommitOnReaderAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Fixture f;
  auto overlay = LedgerStateOverlay::reader(f.state);
  overlay.credit(f.alice.address(), 1);
  // Release builds used to compile the assert out and silently drop the
  // delta; the failure must be hard in every build type.
  EXPECT_DEATH(overlay.commit(), "read-only overlay");
}

TEST(LedgerStateOverlay, CommitOnWriterFoldsDelta) {
  Fixture f;
  auto overlay = LedgerStateOverlay::writer(f.state);
  overlay.credit(f.alice.address(), 10);
  overlay.set_nonce(f.bob.address(), 3);
  overlay.add_burned_fees(7);
  overlay.commit();
  EXPECT_EQ(f.state.balance(f.alice.address()), 1010u);
  EXPECT_EQ(f.state.nonce(f.bob.address()), 3u);
  EXPECT_EQ(f.state.burned_fees(), 7u);
  // After the fold the overlay is empty: committing again is a no-op.
  overlay.commit();
  EXPECT_EQ(f.state.balance(f.alice.address()), 1010u);
}

// ------------------------------------------- overlay store-prefix vs oracle

namespace {
using StoreModel = std::map<std::string, Bytes>;

/// Flattened oracle: keys of `model` carrying `prefix`, sorted (std::map).
std::vector<std::string> oracle_keys(const StoreModel& model,
                                     const std::string& prefix) {
  std::vector<std::string> out;
  for (const auto& [key, value] : model) {
    if (key.compare(0, prefix.size(), prefix) == 0) out.push_back(key);
  }
  return out;
}

std::string random_store_key(Rng& rng) {
  const std::size_t len = 1 + rng.next_below(4);
  std::string key;
  for (std::size_t i = 0; i < len; ++i) {
    key.push_back(static_cast<char>('a' + rng.next_below(3)));
  }
  return key;
}
}  // namespace

TEST(LedgerStateOverlay, StoreKeysWithPrefixMatchesFlattenedOracle) {
  // Randomized differential test of the overlay's sorted base/delta merge:
  // tombstones over base keys, re-insert after erase, and a nested overlay,
  // all on a 3-letter alphabet so collisions are constant.
  Rng rng(424242);
  const std::string contract = "shop";
  const std::vector<std::string> prefixes = {"",   "a",  "ab", "abc",
                                             "b",  "bc", "c",  "cc"};
  for (int round = 0; round < 25; ++round) {
    LedgerState base;
    StoreModel base_model;
    for (int i = 0; i < 20; ++i) {
      const std::string key = random_store_key(rng);
      base.store_put(contract, key, Bytes{static_cast<std::uint8_t>(i)});
      base_model[key] = Bytes{static_cast<std::uint8_t>(i)};
    }
    auto o1 = LedgerStateOverlay::writer(base);
    StoreModel o1_model = base_model;
    for (int i = 0; i < 30; ++i) {
      const std::string key = random_store_key(rng);
      if (rng.chance(0.45)) {  // tombstone (often shadowing a base key)
        o1.store_erase(contract, key);
        o1_model.erase(key);
      } else {  // insert (often a re-insert over an earlier tombstone)
        o1.store_put(contract, key, Bytes{static_cast<std::uint8_t>(i)});
        o1_model[key] = Bytes{static_cast<std::uint8_t>(i)};
      }
    }
    auto o2 = LedgerStateOverlay::nested(o1);
    StoreModel o2_model = o1_model;
    for (int i = 0; i < 30; ++i) {
      const std::string key = random_store_key(rng);
      if (rng.chance(0.45)) {
        o2.store_erase(contract, key);
        o2_model.erase(key);
      } else {
        o2.store_put(contract, key, Bytes{static_cast<std::uint8_t>(100 + i)});
        o2_model[key] = Bytes{static_cast<std::uint8_t>(100 + i)};
      }
    }
    for (const std::string& prefix : prefixes) {
      ASSERT_EQ(base.store_keys_with_prefix(contract, prefix),
                oracle_keys(base_model, prefix))
          << "base, round " << round << ", prefix '" << prefix << "'";
      ASSERT_EQ(o1.store_keys_with_prefix(contract, prefix),
                oracle_keys(o1_model, prefix))
          << "o1, round " << round << ", prefix '" << prefix << "'";
      ASSERT_EQ(o2.store_keys_with_prefix(contract, prefix),
                oracle_keys(o2_model, prefix))
          << "o2 (nested), round " << round << ", prefix '" << prefix << "'";
    }
    // Commit the stack down to the base; the flattened views must agree.
    o2.commit();
    for (const std::string& prefix : prefixes) {
      ASSERT_EQ(o1.store_keys_with_prefix(contract, prefix),
                oracle_keys(o2_model, prefix))
          << "o1 after o2.commit, round " << round;
    }
    o1.commit();
    for (const std::string& prefix : prefixes) {
      ASSERT_EQ(base.store_keys_with_prefix(contract, prefix),
                oracle_keys(o2_model, prefix))
          << "base after commits, round " << round;
    }
  }
}

// ----------------------------------------------- mempool expiry edge cases

TEST(Mempool, SweepRecoversFromClockRegression) {
  // A replica restarting mid-tick can hand sweep_expired a `now` before the
  // admission stamps. The historical sweep broke on `now <= admitted`, which
  // left future-stamped entries unexpirable forever; they are now re-stamped
  // to the regressed clock and age out normally.
  Fixture f;
  Mempool pool(MempoolConfig{.ttl = 10, .max_txs = 100});
  ASSERT_TRUE(
      pool.add(make_transfer(f.alice, 0, f.bob.address(), 1, 1, f.rng), f.state, 1000)
          .ok());
  ASSERT_TRUE(
      pool.add(make_transfer(f.bob, 0, f.alice.address(), 1, 1, f.rng), f.state, 1005)
          .ok());
  EXPECT_EQ(pool.sweep_expired(5), 0u);  // regression: re-stamp, nothing drops
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_TRUE(pool.self_check());
  EXPECT_EQ(pool.sweep_expired(15), 0u);  // age 10 == ttl: still pending
  EXPECT_EQ(pool.sweep_expired(16), 2u);  // age 11 > ttl: both expire
  EXPECT_TRUE(pool.empty());
  EXPECT_TRUE(pool.self_check());
  EXPECT_EQ(pool.stats().expired, 2u);
}

TEST(Mempool, SweepMixedPastAndFutureStamps) {
  // Only the oldest stamp drives the loop: a future-stamped entry behind a
  // past one is untouched until it becomes the oldest, then re-stamped.
  Fixture f;
  Mempool pool(MempoolConfig{.ttl = 10, .max_txs = 100});
  ASSERT_TRUE(
      pool.add(make_transfer(f.alice, 0, f.bob.address(), 1, 1, f.rng), f.state, 3)
          .ok());
  ASSERT_TRUE(
      pool.add(make_transfer(f.bob, 0, f.alice.address(), 1, 1, f.rng), f.state, 1000)
          .ok());
  EXPECT_EQ(pool.sweep_expired(5), 0u);  // oldest (3) is fresh; nothing happens
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.sweep_expired(14), 1u);  // age 11: the tick-3 entry expires,
  EXPECT_EQ(pool.size(), 1u);             // and the future one re-stamps to 14
  EXPECT_TRUE(pool.self_check());
  EXPECT_EQ(pool.sweep_expired(25), 1u);  // 25 - 14 = 11 > ttl
  EXPECT_TRUE(pool.empty());
}

TEST(Mempool, SweepTickBoundaryValues) {
  Fixture f;
  Mempool pool(MempoolConfig{.ttl = 10, .max_txs = 100});
  ASSERT_TRUE(
      pool.add(make_transfer(f.alice, 0, f.bob.address(), 1, 1, f.rng), f.state, 0)
          .ok());
  EXPECT_EQ(pool.sweep_expired(0), 0u);  // age 0 at now == admitted
  // A far-future sweep must not overflow Tick arithmetic.
  EXPECT_EQ(pool.sweep_expired(std::numeric_limits<Tick>::max()), 1u);
  // An entry stamped at the Tick ceiling re-stamps on the first sane sweep.
  ASSERT_TRUE(pool
                  .add(make_transfer(f.bob, 0, f.alice.address(), 1, 1, f.rng),
                       f.state, std::numeric_limits<Tick>::max())
                  .ok());
  EXPECT_EQ(pool.sweep_expired(100), 0u);  // re-stamped to 100
  EXPECT_TRUE(pool.self_check());
  EXPECT_EQ(pool.sweep_expired(111), 1u);  // and expires 11 ticks later
  EXPECT_TRUE(pool.empty());
}

TEST(Mempool, RandomizedChurnKeepsIndexesConsistent) {
  // Churn every public mutation — admission, replace-by-fee, at-cap
  // eviction, expiry sweeps (including clock regressions), inclusion
  // removal, pruning — and audit all four indexes after each batch.
  Fixture f;
  Rng rng(777);
  std::vector<crypto::Wallet> wallets;
  for (int i = 0; i < 6; ++i) wallets.emplace_back(rng);
  Mempool pool(MempoolConfig{.ttl = 30, .max_txs = 24});
  std::vector<std::uint64_t> next_nonce(wallets.size(), 0);
  Tick now = 0;
  for (int round = 0; round < 60; ++round) {
    for (int op = 0; op < 8; ++op) {
      const std::size_t w = rng.next_below(wallets.size());
      const bool replay = rng.chance(0.2) && next_nonce[w] > 0;
      const std::uint64_t nonce =
          replay ? rng.next_below(next_nonce[w]) : next_nonce[w];
      const auto tx = make_transfer(wallets[w], nonce, f.bob.address(), 1,
                                    1 + rng.next_below(9), f.rng);
      if (pool.add(tx, f.state, now).ok() && !replay) ++next_nonce[w];
    }
    if (rng.chance(0.3)) {
      // Advance, or regress the clock to re-exercise the re-stamp path.
      now = rng.chance(0.25) ? std::max<Tick>(0, now - 40)
                             : now + static_cast<Tick>(rng.next_below(20));
      (void)pool.sweep_expired(now);
    }
    if (rng.chance(0.25)) {
      pool.remove_included(pool.select(4, f.state));
    }
    if (rng.chance(0.1)) pool.prune(f.state);
    ASSERT_TRUE(pool.self_check()) << "round " << round;
  }
  EXPECT_EQ(pool.stats().repaired, 0u);  // indexes never actually dangled
}

}  // namespace
}  // namespace mv::ledger
