// Policy tests: each rule in isolation, the GDPR/CCPA/baseline modules,
// module composition, and hot-swapping regions in the engine.
#include <gtest/gtest.h>

#include "policy/engine.h"

namespace mv::policy {
namespace {

DataFlowEvent clean_event() {
  DataFlowEvent e;
  e.id = DataFlowId(1);
  e.subject = 7;
  e.collector = "acme-verse";
  e.category = "gaze";
  e.purpose = "avatar_animation";
  e.declared_purpose = "avatar_animation";
  e.consent = true;
  e.pet_applied = true;
  e.collected_at = 0;
  e.observed_at = 10;
  return e;
}

// ------------------------------------------------------------ rules

TEST(Rules, ConsentRequired) {
  ConsentRequired rule;
  auto e = clean_event();
  EXPECT_FALSE(rule.check(e).has_value());
  e.consent = false;
  ASSERT_TRUE(rule.check(e).has_value());
  EXPECT_EQ(rule.check(e)->rule, "consent_required");
}

TEST(Rules, PurposeLimitation) {
  PurposeLimitation rule;
  auto e = clean_event();
  EXPECT_FALSE(rule.check(e).has_value());
  e.purpose = "advertising";
  EXPECT_TRUE(rule.check(e).has_value());
  // Empty declaration is NoticeRequired's concern.
  e.declared_purpose = "";
  EXPECT_FALSE(rule.check(e).has_value());
}

TEST(Rules, RetentionLimit) {
  RetentionLimit rule(100);
  auto e = clean_event();
  e.observed_at = 99;
  EXPECT_FALSE(rule.check(e).has_value());
  e.observed_at = 150;
  EXPECT_TRUE(rule.check(e).has_value());
  e.deleted = true;
  EXPECT_FALSE(rule.check(e).has_value());
}

TEST(Rules, RightToDelete) {
  RightToDelete rule(50);
  auto e = clean_event();
  EXPECT_FALSE(rule.check(e).has_value());  // nothing requested
  e.deletion_requested = true;
  e.deletion_requested_at = 10;
  e.observed_at = 30;
  EXPECT_FALSE(rule.check(e).has_value());  // clock running
  e.observed_at = 100;
  EXPECT_TRUE(rule.check(e).has_value());  // deadline blown
  e.deleted = true;
  e.deleted_at = 40;
  EXPECT_FALSE(rule.check(e).has_value());  // honoured in time
  e.deleted_at = 90;
  EXPECT_TRUE(rule.check(e).has_value());  // honoured too late
}

TEST(Rules, SaleOptOut) {
  SaleOptOut rule;
  auto e = clean_event();
  e.sold = true;
  EXPECT_FALSE(rule.check(e).has_value());  // no opt-out on file
  e.opt_out_of_sale = true;
  EXPECT_TRUE(rule.check(e).has_value());
  e.sold = false;
  EXPECT_FALSE(rule.check(e).has_value());
}

TEST(Rules, BreachNotification) {
  BreachNotification rule(72);
  auto e = clean_event();
  EXPECT_FALSE(rule.check(e).has_value());
  e.breached = true;
  e.breach_at = 100;
  e.observed_at = 150;
  EXPECT_FALSE(rule.check(e).has_value());  // window open
  e.observed_at = 200;
  EXPECT_TRUE(rule.check(e).has_value());  // window blown, never notified
  e.breach_notified = true;
  e.breach_notified_at = 160;
  EXPECT_FALSE(rule.check(e).has_value());  // 60 <= 72
  e.breach_notified_at = 190;
  EXPECT_TRUE(rule.check(e).has_value());  // 90 > 72
}

TEST(Rules, PetRequired) {
  PetRequired rule({"gaze", "heart_rate"});
  auto e = clean_event();
  EXPECT_FALSE(rule.check(e).has_value());
  e.pet_applied = false;
  EXPECT_TRUE(rule.check(e).has_value());
  e.category = "spatial_map";  // not in the critical set
  EXPECT_FALSE(rule.check(e).has_value());
}

TEST(Rules, NoticeRequired) {
  NoticeRequired rule;
  auto e = clean_event();
  EXPECT_FALSE(rule.check(e).has_value());
  e.declared_purpose = "";
  EXPECT_TRUE(rule.check(e).has_value());
}

// ------------------------------------------------------------ modules

TEST(Modules, GdprFlagsConsentlessRawGaze) {
  const auto gdpr = make_gdpr_module();
  auto e = clean_event();
  e.consent = false;
  e.pet_applied = false;
  const auto violations = gdpr->audit(e);
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].rule, "consent_required");
  EXPECT_EQ(violations[1].rule, "pet_required");
}

TEST(Modules, CcpaToleratesNoConsentButNotSaleAfterOptOut) {
  const auto ccpa = make_ccpa_module();
  auto e = clean_event();
  e.consent = false;  // CCPA is opt-out, not opt-in
  EXPECT_TRUE(ccpa->audit(e).empty());
  e.sold = true;
  e.opt_out_of_sale = true;
  const auto violations = ccpa->audit(e);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "sale_opt_out");
}

TEST(Modules, AnalogousPurposeDifferentParameters) {
  // The paper: "The purpose of these regulations is analogous... despite
  // coming from different local laws." Both modules enforce deletion, with
  // different deadlines.
  EXPECT_TRUE(make_gdpr_module()->has_rule("right_to_delete"));
  EXPECT_TRUE(make_ccpa_module()->has_rule("right_to_delete"));
  EXPECT_TRUE(make_gdpr_module()->has_rule("consent_required"));
  EXPECT_FALSE(make_ccpa_module()->has_rule("consent_required"));
}

TEST(Modules, ComposeTakesUnionOfRules) {
  const auto both = compose(make_gdpr_module(), make_ccpa_module(), "gdpr+ccpa");
  EXPECT_TRUE(both->has_rule("consent_required"));  // from GDPR
  EXPECT_TRUE(both->has_rule("sale_opt_out"));      // from CCPA
  // Dedupe: right_to_delete appears once (GDPR's instance wins).
  std::size_t delete_rules = 0;
  for (const auto& rule : both->rules()) {
    delete_rules += (rule->name() == "right_to_delete");
  }
  EXPECT_EQ(delete_rules, 1u);

  // The composed module catches at least everything each part catches.
  auto e = clean_event();
  e.consent = false;
  e.sold = true;
  e.opt_out_of_sale = true;
  const auto violations = both->audit(e);
  EXPECT_GE(violations.size(), 2u);
}

// ------------------------------------------------------------ engine

TEST(Engine, RoutesByRegionAndHotSwaps) {
  PolicyEngine engine;
  engine.set_region_module("eu", make_gdpr_module());
  engine.set_region_module("california", make_ccpa_module());

  auto e = clean_event();
  e.consent = false;
  e.pet_applied = true;
  EXPECT_FALSE(engine.audit("eu", e).empty());          // GDPR: consent missing
  EXPECT_TRUE(engine.audit("california", e).empty());   // CCPA: fine

  // Hot swap: California adopts a GDPR-style law.
  engine.set_region_module("california", make_gdpr_module());
  EXPECT_FALSE(engine.audit("california", e).empty());
  EXPECT_EQ(engine.stats().module_swaps, 1u);
}

TEST(Engine, UnmappedRegionFallsBackOrCountsGap) {
  PolicyEngine engine;
  auto e = clean_event();
  e.consent = false;
  EXPECT_TRUE(engine.audit("atlantis", e).empty());
  EXPECT_EQ(engine.unmapped_events(), 1u);
  engine.set_default_module(make_baseline_module());
  e.declared_purpose = "";
  EXPECT_FALSE(engine.audit("atlantis", e).empty());
  EXPECT_EQ(engine.unmapped_events(), 1u);  // no longer a gap
}

TEST(Engine, StatsAccumulate) {
  PolicyEngine engine;
  engine.set_region_module("eu", make_gdpr_module());
  auto good = clean_event();
  auto bad = clean_event();
  bad.consent = false;
  bad.pet_applied = false;
  (void)engine.audit("eu", good);
  (void)engine.audit("eu", bad);
  EXPECT_EQ(engine.stats().events_audited, 2u);
  EXPECT_EQ(engine.stats().violations, 2u);
  EXPECT_DOUBLE_EQ(engine.stats().compliance_rate(), 0.0);  // 2 violations / 2 events
}

}  // namespace
}  // namespace mv::policy
