// JobQueue tests: inline-mode determinism, strict priority and per-class
// FIFO under a single worker, depth/wait shedding and recovery, never-shed
// batches, stats consistency, absence of consensus starvation under a mixed
// overload, destructor abandonment, and the ledger integration (queue-routed
// block application bit-identical to serial; prove_account shed under
// overload).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "common/job_queue.h"
#include "ledger/chain.h"

namespace mv {
namespace {

using namespace std::chrono_literals;
using namespace mv::ledger;

/// Manual gate: jobs park in wait() until the test hands out tokens.
struct Gate {
  std::mutex m;
  std::condition_variable cv;
  std::size_t tokens = 0;

  void wait() {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return tokens > 0; });
    --tokens;
  }
  void release(std::size_t n = 1) {
    {
      std::lock_guard<std::mutex> lock(m);
      tokens += n;
    }
    cv.notify_all();
  }
};

/// Spin until `pred` holds (bounded; the suite runs on a single-core box, so
/// sleeps instead of raw spinning).
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

// ---------------------------------------------------------------- inline

TEST(JobQueueInline, ExecutesSynchronouslyInCallOrder) {
  JobQueue q(JobQueueConfig{});  // threads = 0
  EXPECT_EQ(q.workers(), 0u);
  std::vector<int> order;
  EXPECT_TRUE(q.submit(JobClass::kClientQuery, [&] { order.push_back(1); }));
  EXPECT_TRUE(q.run(JobClass::kConsensus, [&] { order.push_back(2); }));
  // Priority never reorders inline mode: execution is call order, exactly as
  // if the queue were not there.
  EXPECT_EQ(order, (std::vector<int>{1, 2}));

  std::vector<std::size_t> batch_order;
  q.run_batch(JobClass::kValidation, 5,
              [&](std::size_t i) { batch_order.push_back(i); });
  EXPECT_EQ(batch_order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));

  const JobQueueStats stats = q.stats();
  EXPECT_EQ(stats.submitted(), 7u);
  EXPECT_EQ(stats.completed(), 7u);
  EXPECT_EQ(stats.shed(), 0u);
  EXPECT_EQ(stats.of(JobClass::kValidation).completed, 5u);
}

TEST(JobQueueInline, DepthCeilingsNeverTrigger) {
  // Inline mode holds nothing queued, so even max_depth = 1 admits every job.
  JobQueueConfig config;
  config.limit(JobClass::kClientQuery).max_depth = 1;
  JobQueue q(config);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(q.submit(JobClass::kClientQuery, [] {}));
  }
  EXPECT_EQ(q.stats().shed(), 0u);
}

// ---------------------------------------------------------------- priority

TEST(JobQueueThreaded, StrictPriorityAndPerClassFifo) {
  JobQueueConfig config;
  config.threads = 1;  // single worker => total execution order is observable
  JobQueue q(config);

  Gate gate;
  std::atomic<bool> started{false};
  ASSERT_TRUE(q.submit(JobClass::kSnapshotServe, [&] {
    started.store(true);
    gate.wait();
  }));
  ASSERT_TRUE(eventually([&] { return started.load(); }));

  // The worker is parked; everything below lands in the queues before any of
  // it can run, in submission order: low classes first on purpose.
  std::mutex order_mu;
  std::vector<std::string> order;
  const auto mark = [&](std::string tag) {
    return [&order, &order_mu, tag = std::move(tag)] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
    };
  };
  ASSERT_TRUE(q.submit(JobClass::kClientQuery, mark("query-a")));
  ASSERT_TRUE(q.submit(JobClass::kGossipRelay, mark("gossip-a")));
  ASSERT_TRUE(q.submit(JobClass::kClientQuery, mark("query-b")));
  ASSERT_TRUE(q.submit(JobClass::kConsensus, mark("consensus")));
  ASSERT_TRUE(q.submit(JobClass::kValidation, mark("validation")));
  ASSERT_TRUE(q.submit(JobClass::kGossipRelay, mark("gossip-b")));

  gate.release();
  q.drain();

  // Highest class drains first regardless of submission order; within one
  // class, submission (FIFO) order holds.
  EXPECT_EQ(order,
            (std::vector<std::string>{"consensus", "validation", "gossip-a",
                                      "gossip-b", "query-a", "query-b"}));
}

// ---------------------------------------------------------------- shedding

TEST(JobQueueThreaded, DepthCeilingShedsAndRecovers) {
  JobQueueConfig config;
  config.threads = 1;
  config.limit(JobClass::kClientQuery).max_depth = 2;
  JobQueue q(config);

  Gate gate;
  std::atomic<bool> started{false};
  ASSERT_TRUE(q.submit(JobClass::kSnapshotServe, [&] {
    started.store(true);
    gate.wait();
  }));
  ASSERT_TRUE(eventually([&] { return started.load(); }));

  std::atomic<int> ran{0};
  EXPECT_TRUE(q.submit(JobClass::kClientQuery, [&] { ++ran; }));
  EXPECT_TRUE(q.submit(JobClass::kClientQuery, [&] { ++ran; }));
  // Third submit sees depth == max_depth: shed, fn never runs.
  EXPECT_FALSE(q.submit(JobClass::kClientQuery, [&] { ran += 100; }));
  EXPECT_EQ(q.stats().of(JobClass::kClientQuery).shed_depth, 1u);

  gate.release();
  q.drain();
  EXPECT_EQ(ran.load(), 2);

  // Backlog cleared: admission recovers immediately.
  EXPECT_TRUE(q.run(JobClass::kClientQuery, [&] { ++ran; }));
  EXPECT_EQ(ran.load(), 3);
  const JobClassStats cs = q.stats().of(JobClass::kClientQuery);
  EXPECT_EQ(cs.submitted, 3u);
  EXPECT_EQ(cs.completed, 3u);
  EXPECT_EQ(cs.shed_depth, 1u);
}

TEST(JobQueueThreaded, WaitCeilingShedsUnderBacklogAndRecoversWhenDrained) {
  JobQueueConfig config;
  config.threads = 1;
  // Any measurable queueing violates a 1us p99 ceiling; the test only relies
  // on waits being bigger than that while a real backlog exists — lenient
  // enough for the single-core CI box.
  config.limit(JobClass::kGossipRelay).max_p99_wait_us = 1.0;
  JobQueue q(config);

  Gate gate;
  constexpr int kJobs = 12;
  constexpr int kReleased = 8;  // >= kMinShedSamples dequeues, 3 left queued
  std::atomic<int> ran{0};
  for (int i = 0; i < kJobs; ++i) {
    ASSERT_TRUE(q.submit(JobClass::kGossipRelay, [&] {
      gate.wait();
      ++ran;
    }));
  }
  // Feed the worker one token at a time so every dequeued job accumulated
  // genuine wall-clock wait while parked behind its predecessors. After
  // kReleased tokens the worker sits inside job kReleased+1 (its wait
  // already sampled) and the lane still holds queued jobs behind it.
  for (int i = 0; i < kReleased; ++i) {
    gate.release();
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_TRUE(eventually([&] { return ran.load() >= kReleased; }));
  ASSERT_GE(q.stats().of(JobClass::kGossipRelay).depth, 1u);

  // The lane still holds queued work and its recent p99 wait is milliseconds:
  // a fresh submit must shed.
  EXPECT_FALSE(q.submit(JobClass::kGossipRelay, [&] { ran += 100; }));
  EXPECT_GE(q.stats().of(JobClass::kGossipRelay).shed_wait, 1u);

  gate.release(kJobs);  // drain the last job
  q.drain();
  EXPECT_EQ(ran.load(), kJobs);

  // Recovery: the wait ceiling only applies while a backlog exists, so the
  // stale p99 from the burst cannot latch the lane shut.
  EXPECT_TRUE(q.run(JobClass::kGossipRelay, [&] { ++ran; }));
  EXPECT_EQ(ran.load(), kJobs + 1);
}

TEST(JobQueueThreaded, RunBatchIsNeverShed) {
  JobQueueConfig config;
  config.threads = 2;
  config.limit(JobClass::kConsensus).max_depth = 1;  // would shed submits
  JobQueue q(config);

  constexpr std::size_t kTasks = 64;
  std::vector<std::uint64_t> out(kTasks, 0);
  q.run_batch(JobClass::kConsensus, kTasks,
              [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(out[i], i * i);

  const JobClassStats cs = q.stats().of(JobClass::kConsensus);
  EXPECT_EQ(cs.submitted, kTasks);
  EXPECT_EQ(cs.completed, kTasks);
  EXPECT_EQ(cs.shed(), 0u);
}

// ---------------------------------------------------------------- stats

TEST(JobQueueThreaded, StatsConsistentAfterDrain) {
  JobQueueConfig config;
  config.threads = 2;
  JobQueue q(config);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(q.submit(JobClass::kValidation,
                         [] { std::this_thread::sleep_for(100us); }));
  }
  q.run_batch(JobClass::kGossipRelay, 10, [](std::size_t) {});
  q.drain();

  const JobQueueStats stats = q.stats();
  EXPECT_EQ(stats.submitted(), 30u);
  EXPECT_EQ(stats.completed(), 30u);
  EXPECT_EQ(stats.shed(), 0u);
  for (const JobClassStats& cs : stats.classes) {
    EXPECT_EQ(cs.depth, 0u);
    EXPECT_EQ(cs.submitted, cs.completed + cs.abandoned);
    EXPECT_LE(cs.wait_p50_us, cs.wait_p99_us);
    EXPECT_LE(cs.wait_p99_us, cs.wait_max_us + 1e-9);
    EXPECT_LE(cs.run_p50_us, cs.run_p99_us);
    EXPECT_GE(cs.wait_mean_us, 0.0);
  }
  EXPECT_STREQ(stats.of(JobClass::kConsensus).name, "consensus");
  EXPECT_STREQ(stats.of(JobClass::kClientQuery).name, "client_query");
}

// ---------------------------------------------------------------- overload

TEST(JobQueueThreaded, ConsensusNeverStarvesUnderMixedOverload) {
  JobQueueConfig config;
  config.threads = 2;
  config.limit(JobClass::kGossipRelay).max_depth = 32;
  config.limit(JobClass::kClientQuery).max_depth = 16;
  JobQueue q(config);

  std::atomic<bool> flooding{true};
  std::atomic<std::uint64_t> low_attempts{0};
  std::thread flooder([&] {
    while (flooding.load()) {
      q.submit(JobClass::kGossipRelay,
               [] { std::this_thread::sleep_for(200us); });
      q.submit(JobClass::kClientQuery,
               [] { std::this_thread::sleep_for(200us); });
      ++low_attempts;
    }
  });

  // Every consensus job must be admitted (no ceiling on the class) and must
  // complete — the flood may only slow it down, never reject or starve it.
  std::atomic<int> consensus_done{0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(q.run(JobClass::kConsensus, [&] { ++consensus_done; }));
  }
  flooding.store(false);
  flooder.join();
  q.drain();

  EXPECT_EQ(consensus_done.load(), 50);
  const JobQueueStats stats = q.stats();
  EXPECT_EQ(stats.of(JobClass::kConsensus).completed, 50u);
  EXPECT_EQ(stats.of(JobClass::kConsensus).shed(), 0u);
  EXPECT_GT(low_attempts.load(), 0u);
  // Only the bounded lower classes may have shed.
  EXPECT_EQ(stats.shed(), stats.of(JobClass::kGossipRelay).shed() +
                              stats.of(JobClass::kClientQuery).shed());
}

// ---------------------------------------------------------------- shutdown

TEST(JobQueueThreaded, DestructorAbandonsQueuedJobsWithoutHanging) {
  Gate gate;
  std::atomic<int> ran{0};
  std::atomic<bool> started{false};
  {
    JobQueueConfig config;
    config.threads = 1;
    JobQueue q(config);
    ASSERT_TRUE(q.submit(JobClass::kSnapshotServe, [&] {
      started.store(true);
      gate.wait();
      ++ran;
    }));
    ASSERT_TRUE(eventually([&] { return started.load(); }));
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(q.submit(JobClass::kClientQuery, [&] { ++ran; }));
    }
    EXPECT_EQ(q.stats().of(JobClass::kClientQuery).depth, 5u);
    gate.release();
    // ~JobQueue: finishes the running job, abandons whatever is still queued.
  }
  EXPECT_GE(ran.load(), 1);  // the running job always completes
  EXPECT_LE(ran.load(), 6);
}

// ------------------------------------------------------------- ledger glue

ChainConfig queue_chain_config(const crypto::Wallet& proposer,
                               std::shared_ptr<JobQueue> queue) {
  ChainConfig config;
  config.validators = {proposer.public_key()};
  config.validation.min_parallel_txs = 2;
  config.validation.job_queue = std::move(queue);
  return config;
}

TEST(JobQueueLedger, QueueRoutedApplicationMatchesSerialCommitments) {
  Rng rng(404);
  auto contracts = std::make_shared<ContractRegistry>();
  crypto::Wallet proposer{rng};
  std::vector<crypto::Wallet> wallets;
  LedgerState genesis;
  for (int i = 0; i < 8; ++i) {
    wallets.emplace_back(rng);
    genesis.credit(wallets.back().address(), 1'000'000);
  }

  ChainConfig serial_config;
  serial_config.validators = {proposer.public_key()};
  Blockchain serial(serial_config, contracts, genesis);

  // Inline queue (workers() == 0) and a threaded queue: both must commit
  // bit-identical blocks to the serial chain.
  auto inline_queue = std::make_shared<JobQueue>(JobQueueConfig{});
  JobQueueConfig threaded_config;
  threaded_config.threads = 2;
  auto threaded_queue = std::make_shared<JobQueue>(threaded_config);
  Blockchain inline_chain(queue_chain_config(proposer, inline_queue),
                          contracts, genesis);
  Blockchain threaded_chain(queue_chain_config(proposer, threaded_queue),
                            contracts, genesis);

  std::vector<std::uint64_t> nonces(wallets.size(), 0);
  Rng block_rng(17);
  for (int b = 0; b < 6; ++b) {
    std::vector<Transaction> txs;
    for (int t = 0; t < 12; ++t) {
      const std::size_t w = block_rng.next_below(wallets.size());
      txs.push_back(make_transfer(
          wallets[w], nonces[w]++,
          wallets[block_rng.next_below(wallets.size())].address(),
          1 + block_rng.next_below(100), 1, block_rng));
    }
    const Block block = serial.assemble(proposer, txs, /*timestamp=*/b, rng);
    ASSERT_TRUE(serial.append(block).ok());
    ASSERT_TRUE(inline_chain.append(block).ok());
    ASSERT_TRUE(threaded_chain.append(block).ok());
  }
  EXPECT_EQ(serial.tip_hash(), inline_chain.tip_hash());
  EXPECT_EQ(serial.tip_hash(), threaded_chain.tip_hash());
  EXPECT_EQ(serial.state().commitment().root,
            threaded_chain.state().commitment().root);

  // The work really went through the queues.
  EXPECT_GT(inline_queue->stats().completed(), 0u);
  EXPECT_GT(threaded_queue->stats().completed(), 0u);
  EXPECT_GT(threaded_queue->stats().of(JobClass::kValidation).completed, 0u);
}

TEST(JobQueueLedger, ProveAccountShedsWhenClientLaneIsFull) {
  Rng rng(505);
  crypto::Wallet proposer{rng};
  crypto::Wallet user{rng};
  LedgerState genesis;
  genesis.credit(user.address(), 1000);

  JobQueueConfig qconfig;
  qconfig.threads = 1;
  qconfig.limit(JobClass::kClientQuery).max_depth = 1;
  auto queue = std::make_shared<JobQueue>(qconfig);
  Blockchain chain(queue_chain_config(proposer, queue),
                   std::make_shared<ContractRegistry>(), genesis);

  const Block block = chain.assemble(
      proposer,
      {make_transfer(user, 0, proposer.address(), 10, 1, rng)},
      /*timestamp=*/1, rng);
  ASSERT_TRUE(chain.append(block).ok());

  // Unloaded: the query runs through the queue and succeeds.
  const auto ok = chain.prove_account(user.address(), /*block_height=*/0);
  ASSERT_TRUE(ok.ok());

  // Park the worker and fill the client lane to its ceiling; the next query
  // is shed at admission and surfaces as chain.overloaded.
  Gate gate;
  std::atomic<bool> started{false};
  ASSERT_TRUE(queue->submit(JobClass::kSnapshotServe, [&] {
    started.store(true);
    gate.wait();
  }));
  ASSERT_TRUE(eventually([&] { return started.load(); }));
  ASSERT_TRUE(queue->submit(JobClass::kClientQuery, [] {}));

  const auto shed = chain.prove_account(user.address(), /*block_height=*/0);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.error().code, "chain.overloaded");

  gate.release();
  queue->drain();
  // Backlog gone: queries are admitted again.
  EXPECT_TRUE(chain.prove_account(user.address(), 0).ok());
}

}  // namespace
}  // namespace mv
