// Parallel block validation tests: partitioner invariants over randomized
// transaction sets, differential equivalence against the serial oracle and
// full_rehash_commitment(), scheduling determinism across thread counts and
// seeds, dynamic-conflict serial fallback, error parity on invalid blocks,
// and a consensus committee running every replica in parallel mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

#include "ledger/chain.h"
#include "ledger/consensus.h"
#include "ledger/parallel.h"

namespace mv::ledger {
namespace {

Bytes key_args(std::string_view key) {
  ByteWriter w;
  w.str(key);
  return w.take();
}

Bytes pay_args(crypto::Address to, std::uint64_t amount) {
  ByteWriter w;
  w.u64(to.value);
  w.u64(amount);
  return w.take();
}

/// Test contract covering the three access patterns the parallel engine must
/// get right: read-modify-write on colliding store keys ("bump"), payouts to
/// accounts named only in the arguments — invisible to the static conflict
/// footprint ("pay") — and erases ("drop").
class ScratchpadContract final : public Contract {
 public:
  [[nodiscard]] std::string name() const override { return "pad"; }
  [[nodiscard]] Status call(CallContext& ctx, const std::string& method,
                            const Bytes& args) const override {
    ByteReader r(args);
    if (method == "bump") {
      auto key = r.str();
      if (!key.ok()) return key.error();
      std::uint64_t counter = 0;
      if (const Bytes* cur = ctx.get(key.value())) {
        ByteReader vr(*cur);
        auto v = vr.u64();
        if (!v.ok()) return v.error();
        counter = v.value();
      }
      ByteWriter w;
      w.u64(counter + 1);
      ctx.put(key.value(), w.take());
      return {};
    }
    if (method == "pay") {
      auto to = r.u64();
      if (!to.ok()) return to.error();
      auto amount = r.u64();
      if (!amount.ok()) return amount.error();
      return ctx.transfer(ctx.caller(), crypto::Address{to.value()},
                          amount.value());
    }
    if (method == "drop") {
      auto key = r.str();
      if (!key.ok()) return key.error();
      ctx.erase(key.value());
      return {};
    }
    return Status::fail("pad.bad_method", method);
  }
};

struct ParallelFixture {
  Rng rng{2026};
  std::shared_ptr<ContractRegistry> contracts = std::make_shared<ContractRegistry>();
  crypto::Wallet proposer{rng};
  std::vector<crypto::Wallet> wallets;
  std::vector<std::uint64_t> nonces;
  LedgerState genesis;

  explicit ParallelFixture(std::size_t n) {
    contracts->install(std::make_shared<ScratchpadContract>());
    wallets.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      wallets.emplace_back(rng);
      genesis.credit(wallets.back().address(), 10'000'000);
    }
    nonces.assign(n, 0);
  }

  [[nodiscard]] Blockchain chain(std::size_t threads, std::uint64_t seed = 0,
                                 std::size_t max_txs = 256) const {
    ChainConfig config;
    config.validators = {proposer.public_key()};
    config.max_txs_per_block = max_txs;
    config.validation = ValidationConfig{
        .threads = threads, .min_parallel_txs = 8, .schedule_seed = seed};
    return Blockchain(config, contracts, genesis);
  }

  /// Conflict-heavy candidate mix: self-transfers, shared hot recipients,
  /// colliding store keys, dynamic contract payouts, and a sprinkle of
  /// invalid transactions that assembly must drop identically everywhere.
  /// Invalid candidates reuse the sender's current nonce without advancing
  /// it, so the sender's next valid transaction still applies.
  std::vector<Transaction> make_candidates(std::size_t count, Rng& r) {
    std::vector<Transaction> txs;
    txs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t w = r.next_below(wallets.size());
      const crypto::Wallet& sender = wallets[w];
      const std::uint64_t roll = r.next_below(100);
      if (roll < 40) {
        crypto::Address to;
        const std::uint64_t pick = r.next_below(10);
        if (pick < 3) {
          to = sender.address();  // self-transfer: sender == recipient key
        } else if (pick < 6) {
          to = wallets[r.next_below(4)].address();  // hot shared recipients
        } else {
          to = wallets[r.next_below(wallets.size())].address();
        }
        txs.push_back(make_transfer(sender, nonces[w]++, to,
                                    1 + r.next_below(50), 1 + r.next_below(4), r));
      } else if (roll < 52) {
        txs.push_back(make_audit_record(
            sender, nonces[w]++,
            AuditRecordBody{"gaze", "presence", r.next_below(1000), "none"}, 1,
            r));
      } else if (roll < 70) {
        const std::string key = "k" + std::to_string(r.next_below(8));
        txs.push_back(make_contract_call(sender, nonces[w]++, "pad", "bump",
                                         key_args(key), 1, r));
      } else if (roll < 78) {
        const crypto::Address to = wallets[r.next_below(wallets.size())].address();
        txs.push_back(make_contract_call(sender, nonces[w]++, "pad", "pay",
                                         pay_args(to, 1 + r.next_below(20)), 1,
                                         r));
      } else if (roll < 84) {
        const std::string key = "k" + std::to_string(r.next_below(8));
        txs.push_back(make_contract_call(sender, nonces[w]++, "pad", "drop",
                                         key_args(key), 1, r));
      } else if (roll < 92) {
        // Overdraft: valid signature, impossible amount.
        txs.push_back(make_transfer(sender, nonces[w], wallets[0].address(),
                                    1'000'000'000'000ULL, 1, r));
      } else {
        Transaction tx = make_transfer(sender, nonces[w], wallets[0].address(),
                                       1, 1, r);
        tx.sig.s ^= 1;  // corrupted signature
        txs.push_back(tx);
      }
    }
    return txs;
  }
};

// ----------------------------------------------------------- partitioner

TEST(ParallelPartitioner, RandomizedPartitionInvariants) {
  Rng rng(8080);
  std::vector<crypto::Wallet> wallets;
  for (int i = 0; i < 6; ++i) wallets.emplace_back(rng);
  const char* contracts[] = {"pad", "dao", "nft"};
  for (int iter = 0; iter < 1200; ++iter) {
    const std::size_t n = rng.next_below(40);
    std::vector<Transaction> txs;
    txs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Transaction tx;  // partitioning never checks signatures; leave unsigned
      tx.sender_pub = wallets[rng.next_below(wallets.size())].public_key();
      tx.nonce = rng.next_below(4);
      const std::uint64_t roll = rng.next_below(10);
      if (roll < 5) {
        tx.kind = TxKind::kTransfer;
        tx.payload =
            TransferBody{wallets[rng.next_below(wallets.size())].address(), 1}
                .encode();
      } else if (roll < 7) {
        tx.kind = TxKind::kAuditRecord;
        tx.payload = AuditRecordBody{"gaze", "presence", 1, "none"}.encode();
      } else {
        tx.kind = TxKind::kContractCall;
        tx.contract = contracts[rng.next_below(3)];
        tx.method = "m";
      }
      txs.push_back(std::move(tx));
    }

    const auto groups = partition_conflicts(txs);

    // Exact cover: every index appears in exactly one group, groups are
    // ordered by smallest member, and each group's indices are ascending.
    std::vector<std::size_t> seen;
    std::size_t prev_front = 0;
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      ASSERT_FALSE(groups[gi].empty()) << "iter " << iter;
      EXPECT_TRUE(std::is_sorted(groups[gi].begin(), groups[gi].end()));
      if (gi > 0) {
        EXPECT_GT(groups[gi].front(), prev_front) << "iter " << iter;
      }
      prev_front = groups[gi].front();
      seen.insert(seen.end(), groups[gi].begin(), groups[gi].end());
    }
    std::sort(seen.begin(), seen.end());
    std::vector<std::size_t> want(n);
    std::iota(want.begin(), want.end(), 0);
    ASSERT_EQ(seen, want) << "iter " << iter;

    // No conflict key spans two groups: a shared account or store — even
    // transitively shared — forces co-residence.
    std::map<ConflictKey, std::size_t> owner;
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      for (const std::size_t idx : groups[gi]) {
        for (const ConflictKey& key : conflict_keys(txs[idx])) {
          const auto [it, inserted] = owner.emplace(key, gi);
          EXPECT_EQ(it->second, gi)
              << "iter " << iter << ": key spans groups " << it->second
              << " and " << gi;
        }
      }
    }
  }
}

TEST(ParallelPartitioner, EmptyAndSingletonBlocks) {
  EXPECT_TRUE(partition_conflicts({}).empty());
  Rng rng(7);
  crypto::Wallet w(rng);
  std::vector<Transaction> one = {
      make_transfer(w, 0, crypto::Address{42}, 1, 1, rng)};
  const auto groups = partition_conflicts(one);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], std::vector<std::size_t>{0});
}

TEST(ParallelPartitioner, SharedKeysMergeGroups) {
  Rng rng(11);
  crypto::Wallet a(rng), b(rng), c(rng), d(rng), e(rng);
  // a->b and b->c chain through b's account; d and e bump different keys of
  // the same store, and d's self-transfer rides on d's account — so the five
  // transactions collapse into exactly two groups.
  std::vector<Transaction> txs;
  txs.push_back(make_transfer(a, 0, b.address(), 1, 1, rng));
  txs.push_back(make_transfer(b, 0, c.address(), 1, 1, rng));
  txs.push_back(make_contract_call(e, 0, "pad", "bump", key_args("k"), 1, rng));
  txs.push_back(make_contract_call(d, 0, "pad", "bump", key_args("q"), 1, rng));
  txs.push_back(make_transfer(d, 1, d.address(), 1, 1, rng));
  const auto groups = partition_conflicts(txs);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{2, 3, 4}));
}

// ----------------------------------------------------------- differential

TEST(ParallelValidation, DifferentialManyBlocksMatchSerialOracle) {
  ParallelFixture f(24);
  Blockchain serial = f.chain(1);
  std::vector<Blockchain> par;
  par.push_back(f.chain(2, 11));
  par.push_back(f.chain(4, 0));
  par.push_back(f.chain(8, 977));

  Rng workload(424242);
  std::size_t total_candidates = 0;
  for (std::int64_t b = 0; b < 50; ++b) {
    const auto candidates = f.make_candidates(110, workload);
    total_candidates += candidates.size();
    // Identically seeded per-chain assembly RNGs: the proposer signatures —
    // and so the full block encodings — must come out byte-identical.
    Rng serial_rng(7000 + static_cast<std::uint64_t>(b));
    const Block block =
        serial.assemble(f.proposer, candidates, static_cast<Tick>(b), serial_rng);
    ASSERT_GE(block.txs.size(), 80u) << "block " << b;
    for (auto& chain : par) {
      Rng pr(7000 + static_cast<std::uint64_t>(b));
      const Block pblock =
          chain.assemble(f.proposer, candidates, static_cast<Tick>(b), pr);
      ASSERT_EQ(pblock.encode(), block.encode()) << "block " << b;
    }
    ASSERT_TRUE(serial.append(block).ok()) << "block " << b;
    const StateCommitment want = serial.state().commitment();
    for (auto& chain : par) {
      ASSERT_TRUE(chain.append(block).ok()) << "block " << b;
      ASSERT_EQ(chain.state().commitment(), want) << "block " << b;
    }
  }
  EXPECT_GE(total_candidates, 5000u);

  // Incremental commitments on every replica agree with the from-scratch
  // oracle, and the parallel path actually ran.
  EXPECT_EQ(serial.state().commitment(), serial.state().full_rehash_commitment());
  EXPECT_EQ(serial.validation_stats().parallel_applies, 0u);
  for (auto& chain : par) {
    EXPECT_EQ(chain.state().commitment(), chain.state().full_rehash_commitment());
    EXPECT_GT(chain.validation_stats().parallel_applies, 0u);
  }
}

// ----------------------------------------------------------- determinism

TEST(ParallelValidation, CommitmentsBitIdenticalAcrossThreadsAndSeeds) {
  ParallelFixture f(16);
  Rng workload(5150);
  const auto candidates = f.make_candidates(120, workload);
  Blockchain serial = f.chain(1);
  Rng assemble_rng(31);
  const Block block = serial.assemble(f.proposer, candidates, 0, assemble_rng);
  ASSERT_GE(block.txs.size(), 80u);
  ASSERT_TRUE(serial.append(block).ok());
  const StateCommitment want = serial.state().commitment();
  ASSERT_EQ(want, serial.state().full_rehash_commitment());

  // Thread count, worker-schedule seed, and run repetition must all be
  // invisible in the result: every section digest, including the
  // order-sensitive audit chain hash, is bit-identical to serial.
  const std::pair<std::size_t, std::uint64_t> configs[] = {
      {2, 0}, {2, 7}, {4, 0}, {4, 99}, {4, 424242}, {8, 1}, {8, 31337}};
  for (const auto& [threads, seed] : configs) {
    for (int repeat = 0; repeat < 2; ++repeat) {
      Blockchain chain = f.chain(threads, seed);
      ASSERT_TRUE(chain.append(block).ok())
          << threads << " threads, seed " << seed << ", run " << repeat;
      const StateCommitment got = chain.state().commitment();
      EXPECT_EQ(got.audit_digest, want.audit_digest)
          << threads << " threads, seed " << seed;
      EXPECT_EQ(got, want) << threads << " threads, seed " << seed;
    }
  }
}

// ----------------------------------------------------------- fallback

TEST(ParallelValidation, DisjointTransfersRunParallelWithoutFallback) {
  ParallelFixture f(16);
  std::vector<Transaction> txs;
  for (std::size_t i = 0; i < f.wallets.size(); ++i) {
    // Fresh, pairwise-distinct recipients: fully disjoint footprints.
    txs.push_back(make_transfer(f.wallets[i], 0, crypto::Address{9'000 + i}, 10,
                                1, f.rng));
  }
  Blockchain serial = f.chain(1);
  Blockchain parallel = f.chain(4);
  Rng r1(5), r2(5);
  const Block block = serial.assemble(f.proposer, txs, 0, r1);
  ASSERT_EQ(block.encode(), parallel.assemble(f.proposer, txs, 0, r2).encode());
  ASSERT_EQ(block.txs.size(), txs.size());
  ASSERT_TRUE(serial.append(block).ok());
  ASSERT_TRUE(parallel.append(block).ok());
  EXPECT_EQ(parallel.validation_stats().serial_fallbacks, 0u);
  EXPECT_GT(parallel.validation_stats().parallel_applies, 0u);
  EXPECT_EQ(parallel.state().commitment(), serial.state().commitment());
  EXPECT_EQ(parallel.state().commitment(),
            parallel.state().full_rehash_commitment());
}

TEST(ParallelValidation, DynamicContractConflictIsRepairedInPlace) {
  ParallelFixture f(10);
  // tx0 pays wallet 9 through the contract: that credit is named only in the
  // call arguments, so tx0 and tx1 (a direct transfer to wallet 9) land in
  // different static groups while writing the same account. The tracked-run
  // interference check must catch it; the repair path re-runs just the two
  // entangled units in block order — the independent transfers' unit
  // overlays are kept, and no full serial fallback happens.
  std::vector<Transaction> txs;
  txs.push_back(make_contract_call(f.wallets[0], 0, "pad", "pay",
                                   pay_args(f.wallets[9].address(), 500), 1,
                                   f.rng));
  txs.push_back(make_transfer(f.wallets[1], 0, f.wallets[9].address(), 300, 1,
                              f.rng));
  for (std::size_t i = 2; i < 8; ++i) {
    txs.push_back(make_transfer(f.wallets[i], 0, f.wallets[i].address(), 1, 1,
                                f.rng));
  }
  Blockchain serial = f.chain(1);
  Blockchain parallel = f.chain(4);
  Rng r1(5), r2(5);
  const Block block = serial.assemble(f.proposer, txs, 0, r1);
  ASSERT_EQ(block.encode(), parallel.assemble(f.proposer, txs, 0, r2).encode());
  ASSERT_EQ(block.txs.size(), txs.size());
  ASSERT_TRUE(serial.append(block).ok());
  ASSERT_TRUE(parallel.append(block).ok());
  EXPECT_GE(parallel.validation_stats().repairs, 1u);
  EXPECT_EQ(parallel.validation_stats().serial_fallbacks, 0u);
  EXPECT_EQ(parallel.state().commitment(), serial.state().commitment());
  // Both credits landed exactly once.
  EXPECT_EQ(parallel.state().balance(f.wallets[9].address()),
            10'000'000u + 500u + 300u);
}

TEST(ParallelValidation, RepairedCommitmentsMatchSerialByteForByte) {
  // Differential oracle for the repair path: a conflict-heavy randomized
  // mix (dynamic contract payouts guarantee cross-unit entanglement) runs
  // through a serial chain and parallel chains across thread counts and
  // schedule seeds. Every appended block must leave byte-identical
  // commitments, whether the block was repaired, fully parallel, or fell
  // back — and the workload must actually exercise the repair path.
  ParallelFixture f(24);
  Blockchain serial = f.chain(1);
  Blockchain par_a = f.chain(4);
  Blockchain par_b = f.chain(8, /*seed=*/0xfeed);
  Rng candidate_rng(909);
  std::uint64_t repairs = 0;
  for (int round = 0; round < 6; ++round) {
    auto txs = f.make_candidates(48, candidate_rng);
    // Stack extra dynamic payouts aimed at hot recipients so several static
    // groups collide at run time in every round.
    for (int extra = 0; extra < 4; ++extra) {
      const std::size_t payer = extra + 16;
      txs.push_back(make_contract_call(
          f.wallets[payer], f.nonces[payer]++, "pad", "pay",
          pay_args(f.wallets[extra].address(), 10 + extra), 1, f.rng));
    }
    Rng r1(1000 + round), r2(1000 + round), r3(1000 + round);
    const Block block = serial.assemble(f.proposer, txs, round, r1);
    ASSERT_EQ(block.encode(), par_a.assemble(f.proposer, txs, round, r2).encode());
    ASSERT_EQ(block.encode(), par_b.assemble(f.proposer, txs, round, r3).encode());
    ASSERT_TRUE(serial.append(block).ok());
    ASSERT_TRUE(par_a.append(block).ok());
    ASSERT_TRUE(par_b.append(block).ok());
    ASSERT_EQ(par_a.state().commitment(), serial.state().commitment())
        << "round " << round;
    ASSERT_EQ(par_b.state().commitment(), serial.state().commitment())
        << "round " << round;
    repairs = par_a.validation_stats().repairs + par_b.validation_stats().repairs;
  }
  EXPECT_GT(repairs, 0u);
  EXPECT_EQ(par_a.state().commitment(), par_a.state().full_rehash_commitment());
}

TEST(ParallelValidation, SmallBlocksStaySerial) {
  ParallelFixture f(4);
  Blockchain chain = f.chain(4);  // min_parallel_txs = 8
  std::vector<Transaction> txs;
  for (std::size_t i = 0; i < 3; ++i) {
    txs.push_back(make_transfer(f.wallets[i], 0, crypto::Address{100 + i}, 1, 1,
                                f.rng));
  }
  Rng ar(3);
  const Block block = chain.assemble(f.proposer, txs, 0, ar);
  ASSERT_TRUE(chain.append(block).ok());
  EXPECT_GT(chain.validation_stats().applies, 0u);
  EXPECT_EQ(chain.validation_stats().parallel_applies, 0u);
  EXPECT_EQ(chain.state().commitment(), chain.state().full_rehash_commitment());
}

// ----------------------------------------------------------- error parity

TEST(ParallelValidation, InvalidBlockErrorsMatchSerialExactly) {
  ParallelFixture f(10);
  Blockchain serial = f.chain(1);
  Blockchain parallel = f.chain(4);
  // Hand-built block whose tx 5 carries a bad nonce. Validation must report
  // the same failing index, code, and message on both paths (the parallel
  // engine re-applies serially on failure precisely for this).
  std::vector<Transaction> txs;
  for (std::size_t i = 0; i < 10; ++i) {
    const std::uint64_t nonce = (i == 5) ? 3 : 0;
    txs.push_back(make_transfer(f.wallets[i], nonce,
                                f.wallets[(i + 1) % 10].address(), 5, 1, f.rng));
  }
  Block block;
  block.txs = txs;
  block.header.height = 0;
  block.header.prev_hash = serial.tip_hash();
  block.header.tx_root = Block::compute_tx_root(txs);
  block.header.state_root = {};  // never reached: the bad tx fails first
  block.header.timestamp = 0;
  block.header.proposer_pub = f.proposer.public_key();
  block.header.proposer_sig =
      f.proposer.sign(block.header.signing_bytes(), f.rng);

  const Status s1 = serial.validate(block);
  const Status s2 = parallel.validate(block);
  ASSERT_FALSE(s1.ok());
  ASSERT_FALSE(s2.ok());
  EXPECT_EQ(s1.error().code, s2.error().code);
  EXPECT_EQ(s1.error().message, s2.error().message);
  // Rejection left both chains untouched and consistent.
  EXPECT_EQ(serial.height(), 0);
  EXPECT_EQ(parallel.height(), 0);
  EXPECT_EQ(parallel.state().commitment(), serial.state().commitment());
}

// ----------------------------------------------------------- consensus

TEST(ParallelValidation, CommitteeWithParallelReplicasStaysConsistent) {
  Rng rng{909};
  SimClock clock;
  net::Network network{clock, Rng(303),
                       net::LinkParams{.base_latency = 1.0, .jitter = 1.0, .drop_rate = 0.0}};
  auto contracts = std::make_shared<ContractRegistry>();
  contracts->install(std::make_shared<ScratchpadContract>());
  std::vector<crypto::Wallet> wallets;
  LedgerState genesis;
  for (int i = 0; i < 12; ++i) {
    wallets.emplace_back(rng);
    genesis.credit(wallets.back().address(), 1'000'000);
  }
  ValidatorCommittee committee(
      network, 4, contracts, genesis, 128, rng,
      ValidationConfig{.threads = 4, .min_parallel_txs = 4});

  // Mostly-disjoint workload (distinct senders paying fresh addresses) so the
  // partitioner actually finds parallelism; the bump calls all share the
  // contract store and ride along as one group.
  std::vector<std::uint64_t> nonces(wallets.size(), 0);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) {
      const std::size_t w = static_cast<std::size_t>(i) % wallets.size();
      if (i % 5 == 0) {
        committee.submit(make_contract_call(
            wallets[w], nonces[w]++, "pad", "bump",
            key_args("k" + std::to_string(i % 3)), 1, rng));
      } else {
        const crypto::Address fresh{50'000u + static_cast<std::uint64_t>(round) * 100u +
                                    static_cast<std::uint64_t>(i)};
        committee.submit(
            make_transfer(wallets[w], nonces[w]++, fresh, 10, 1, rng));
      }
    }
    ASSERT_TRUE(committee.run_round()) << "round " << round;
  }
  EXPECT_TRUE(committee.replicas_consistent());
  EXPECT_EQ(committee.chain(0).height(), 3);
  for (std::size_t i = 0; i < committee.size(); ++i) {
    EXPECT_EQ(committee.chain(i).state().commitment(),
              committee.chain(i).state().full_rehash_commitment());
  }
  EXPECT_GT(committee.chain(0).validation_stats().parallel_applies, 0u);
}

}  // namespace
}  // namespace mv::ledger
