// Unit and property tests for the crypto substrate: SHA-256 against FIPS
// vectors, Merkle inclusion proofs, Schnorr sign/verify algebra, wallets.
#include <gtest/gtest.h>

#include <string>

#include <map>

#include "crypto/merkle.h"
#include "crypto/merkle_map.h"
#include "crypto/schnorr.h"
#include "crypto/set_hash.h"
#include "crypto/sha256.h"
#include "crypto/wallet.h"

namespace mv::crypto {
namespace {

// ---------------------------------------------------------------- SHA-256

TEST(Sha256, EmptyStringVector) {
  EXPECT_EQ(to_hex(sha256(std::string_view{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcVector) {
  EXPECT_EQ(to_hex(sha256(std::string_view{"abc"})),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockVector) {
  EXPECT_EQ(to_hex(sha256(std::string_view{
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"})),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (const char c : msg) h.update(std::string_view(&c, 1));
  EXPECT_EQ(h.finalize(), sha256(std::string_view{msg}));
}

TEST(Sha256, ReusableAfterFinalize) {
  // finalize() resets the hasher; the same instance must produce correct
  // digests for subsequent, independent messages (historically it silently
  // hashed garbage on reuse).
  Sha256 h;
  h.update(std::string_view{"abc"});
  EXPECT_EQ(to_hex(h.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(h.finalize()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  h.update(std::string_view{"abc"});
  EXPECT_EQ(h.finalize(), sha256(std::string_view{"abc"}));
}

TEST(Sha256, HashWriterMatchesByteWriterBytes) {
  // HashWriter streams the ByteWriter wire format; digests must agree.
  ByteWriter bw;
  bw.u8(7);
  bw.u32(0xdeadbeef);
  bw.u64(0x0123456789abcdefULL);
  bw.str("metaverse");
  bw.bytes(Bytes{1, 2, 3});
  HashWriter hw;
  hw.u8(7);
  hw.u32(0xdeadbeef);
  hw.u64(0x0123456789abcdefULL);
  hw.str("metaverse");
  hw.bytes(Bytes{1, 2, 3});
  EXPECT_EQ(hw.digest(), sha256(bw.take()));
}

TEST(Sha256, PrefixIsStable) {
  const Digest d = sha256(std::string_view{"abc"});
  EXPECT_EQ(digest_prefix64(d), digest_prefix64(sha256(std::string_view{"abc"})));
  EXPECT_NE(digest_prefix64(d), digest_prefix64(sha256(std::string_view{"abd"})));
}

// ---------------------------------------------------------------- Merkle

std::vector<Digest> make_leaves(std::size_t n) {
  std::vector<Digest> leaves;
  leaves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(sha256(std::string_view{"leaf" + std::to_string(i)}));
  }
  return leaves;
}

TEST(Merkle, EmptyTreeZeroRoot) {
  MerkleTree t({});
  EXPECT_EQ(t.root(), Digest{});
  EXPECT_EQ(t.leaf_count(), 0u);
}

TEST(Merkle, SingleLeafRootIsLeaf) {
  const auto leaves = make_leaves(1);
  MerkleTree t(leaves);
  EXPECT_EQ(t.root(), leaves[0]);
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  auto leaves = make_leaves(8);
  const MerkleTree t1(leaves);
  leaves[3][0] ^= 0xff;
  const MerkleTree t2(leaves);
  EXPECT_NE(t1.root(), t2.root());
}

TEST(Merkle, ProveOutOfRangeThrows) {
  MerkleTree t(make_leaves(4));
  EXPECT_THROW((void)t.prove(4), std::out_of_range);
}

class MerkleProofTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofTest, AllLeavesVerify) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  const MerkleTree tree(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    const auto proof = tree.prove(i);
    EXPECT_TRUE(MerkleTree::verify(leaves[i], proof, tree.root()))
        << "leaf " << i << " of " << n;
  }
}

TEST_P(MerkleProofTest, WrongLeafRejected) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  const MerkleTree tree(leaves);
  const Digest bogus = sha256(std::string_view{"not-a-leaf"});
  for (std::size_t i = 0; i < n; ++i) {
    if (leaves[i] == bogus) continue;
    EXPECT_FALSE(MerkleTree::verify(bogus, tree.prove(i), tree.root()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 33));

TEST(Merkle, TamperedProofRejected) {
  const auto leaves = make_leaves(8);
  const MerkleTree tree(leaves);
  auto proof = tree.prove(2);
  proof[1].sibling[5] ^= 0x01;
  EXPECT_FALSE(MerkleTree::verify(leaves[2], proof, tree.root()));
}

// ---------------------------------------------------------------- Schnorr

TEST(Schnorr, PowModKnownValues) {
  EXPECT_EQ(pow_mod(2, 10, 1'000'000'007ULL), 1024u);
  EXPECT_EQ(pow_mod(3, 0, 97), 1u);
  EXPECT_EQ(mul_mod(kFieldP - 1, kFieldP - 1, kFieldP), 1u);  // (-1)^2 = 1
}

TEST(Schnorr, SignVerifyRoundTrip) {
  Rng rng(42);
  const KeyPair kp = generate_keypair(rng);
  const std::string msg = "register data-collection activity";
  const auto m = std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size());
  const Signature sig = sign(kp.priv, m, rng);
  EXPECT_TRUE(verify(kp.pub, m, sig));
}

TEST(Schnorr, WrongKeyRejected) {
  Rng rng(43);
  const KeyPair kp1 = generate_keypair(rng);
  const KeyPair kp2 = generate_keypair(rng);
  const Bytes msg{1, 2, 3, 4};
  const Signature sig = sign(kp1.priv, msg, rng);
  EXPECT_TRUE(verify(kp1.pub, msg, sig));
  EXPECT_FALSE(verify(kp2.pub, msg, sig));
}

TEST(Schnorr, TamperedMessageRejected) {
  Rng rng(44);
  const KeyPair kp = generate_keypair(rng);
  const Bytes msg{1, 2, 3, 4};
  const Signature sig = sign(kp.priv, msg, rng);
  const Bytes other{1, 2, 3, 5};
  EXPECT_FALSE(verify(kp.pub, other, sig));
}

TEST(Schnorr, TamperedSignatureRejected) {
  Rng rng(45);
  const KeyPair kp = generate_keypair(rng);
  const Bytes msg{9, 9, 9};
  Signature sig = sign(kp.priv, msg, rng);
  sig.s = (sig.s + 1) % kGroupQ;
  EXPECT_FALSE(verify(kp.pub, msg, sig));
}

TEST(Schnorr, MalformedSignatureRejected) {
  Rng rng(46);
  const KeyPair kp = generate_keypair(rng);
  const Bytes msg{1};
  EXPECT_FALSE(verify(kp.pub, msg, Signature{0, 0}));
  EXPECT_FALSE(verify(kp.pub, msg, Signature{kGroupQ, 5}));
  EXPECT_FALSE(verify(PublicKey{0}, msg, sign(kp.priv, msg, rng)));
}

class SchnorrPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchnorrPropertyTest, RandomMessagesRoundTrip) {
  Rng rng(GetParam());
  const KeyPair kp = generate_keypair(rng);
  for (int i = 0; i < 20; ++i) {
    Bytes msg;
    const auto len = rng.next_below(64);
    for (std::uint64_t j = 0; j < len; ++j) {
      msg.push_back(static_cast<std::uint8_t>(rng.next_u64()));
    }
    const Signature sig = sign(kp.priv, msg, rng);
    EXPECT_TRUE(verify(kp.pub, msg, sig));
    if (!msg.empty()) {
      Bytes tampered = msg;
      tampered[0] ^= 0x80;
      EXPECT_FALSE(verify(kp.pub, tampered, sig));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchnorrPropertyTest,
                         ::testing::Values(1, 17, 99, 12345));

// ---------------------------------------------------------------- Wallet

TEST(Wallet, AddressDeterministicFromKey) {
  Rng rng(50);
  const Wallet w(rng);
  EXPECT_TRUE(w.address().valid());
  EXPECT_EQ(w.address(), address_of(w.public_key()));
}

TEST(Wallet, DistinctWalletsDistinctAddresses) {
  Rng rng(51);
  const Wallet a(rng), b(rng);
  EXPECT_NE(a.address(), b.address());
}

TEST(Wallet, SignaturesVerifyAgainstPublicKey) {
  Rng rng(52);
  const Wallet w(rng);
  const Bytes msg{0xde, 0xad};
  const Signature sig = w.sign(msg, rng);
  EXPECT_TRUE(verify(w.public_key(), msg, sig));
}

TEST(Wallet, AddressToStringHex) {
  Address a{0xff};
  EXPECT_EQ(a.to_string(), "0xff");
}

// ---------------------------------------------------------------- MerkleMap

namespace {
Digest value_digest(std::uint64_t x) {
  HashWriter w;
  w.u64(x);
  return w.digest();
}

Digest reference_of(const std::map<std::uint64_t, Digest>& model) {
  return merkle_map_reference_root({model.begin(), model.end()});
}
}  // namespace

TEST(MerkleMap, EmptyMapZeroRoot) {
  MerkleMap m;
  EXPECT_EQ(m.root(), Digest{});
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(merkle_map_reference_root({}), Digest{});
}

TEST(MerkleMap, SingleKeyRootIsLeafHash) {
  MerkleMap m;
  m.put(42, value_digest(1));
  EXPECT_EQ(m.root(), MerkleMap::leaf_hash(42, value_digest(1)));
}

TEST(MerkleMap, EraseRestoresPriorRoot) {
  MerkleMap m;
  m.put(1, value_digest(1));
  const Digest one = m.root();
  m.put(2, value_digest(2));
  EXPECT_NE(m.root(), one);
  m.erase(2);
  EXPECT_EQ(m.root(), one);
  m.erase(1);
  EXPECT_EQ(m.root(), Digest{});
  EXPECT_EQ(m.size(), 0u);
}

TEST(MerkleMap, DeepCopyIsIndependent) {
  MerkleMap a;
  for (std::uint64_t k = 0; k < 100; ++k) a.put(k, value_digest(k));
  MerkleMap b = a;
  const Digest before = a.root();
  b.put(7, value_digest(999));
  b.erase(50);
  EXPECT_EQ(a.root(), before);
  EXPECT_NE(b.root(), before);
}

TEST(MerkleMap, FromSortedLeavesMatchesIncrementalBuild) {
  // The bulk loader (batched leaf hashing, eager inner hashing) must be
  // bit-identical to put()-loop construction and to the structural oracle,
  // across sizes that hit every shape: single leaf, one full nibble fanout,
  // clustered low keys (deep shared prefixes), and large random spreads.
  Rng rng(4242);
  for (const std::size_t n : {1u, 2u, 15u, 16u, 17u, 100u, 1000u, 5000u}) {
    std::map<std::uint64_t, Digest> model;
    while (model.size() < n) {
      const std::uint64_t key =
          rng.chance(0.3) ? rng.next_below(256) : rng.next_u64();
      model[key] = value_digest(rng.next_u64());
    }
    const std::vector<std::pair<std::uint64_t, Digest>> leaves(model.begin(),
                                                               model.end());
    const MerkleMap bulk = MerkleMap::from_sorted_leaves(leaves);
    MerkleMap incremental;
    for (const auto& [k, v] : model) incremental.put(k, v);
    ASSERT_EQ(bulk.size(), n);
    ASSERT_EQ(bulk.root(), incremental.root()) << "n=" << n;
    ASSERT_EQ(bulk.root(), reference_of(model)) << "n=" << n;
    // Lookups traverse the bulk-built structure, not just its hashes.
    for (const auto& [k, v] : model) ASSERT_TRUE(bulk.contains(k));
  }
}

TEST(MerkleMap, MatchesReferenceOracleUnderRandomChurn) {
  // Incremental root (cached tree, dirty-path rehash) vs. the structural
  // recursion oracle, across interleaved inserts, updates, and erases.
  // Keys mix dense low values (deep shared prefixes, node splits) with
  // random 64-bit values (shallow spread).
  Rng rng(77);
  MerkleMap m;
  std::map<std::uint64_t, Digest> model;
  for (int round = 0; round < 40; ++round) {
    for (int op = 0; op < 50; ++op) {
      const std::uint64_t key =
          rng.chance(0.5) ? rng.next_below(64) : rng.next_u64();
      if (rng.chance(0.3) && !model.empty()) {
        // Erase: an existing key half the time, a probably-absent one else.
        const std::uint64_t victim =
            rng.chance(0.5) ? std::next(model.begin(),
                                        static_cast<std::ptrdiff_t>(
                                            rng.next_below(model.size())))
                                  ->first
                            : key;
        m.erase(victim);
        model.erase(victim);
      } else {
        const Digest v = value_digest(rng.next_u64());
        m.put(key, v);
        model[key] = v;
      }
    }
    ASSERT_EQ(m.size(), model.size());
    ASSERT_EQ(m.root(), reference_of(model)) << "round " << round;
  }
}

TEST(MerkleMap, RootWithMatchesMaterializedApplication) {
  Rng rng(91);
  MerkleMap base;
  std::map<std::uint64_t, Digest> model;
  for (std::uint64_t k = 0; k < 500; ++k) {
    const std::uint64_t key = rng.chance(0.5) ? k : rng.next_u64();
    const Digest v = value_digest(key);
    base.put(key, v);
    model[key] = v;
  }
  for (int round = 0; round < 20; ++round) {
    MerkleMap::Delta delta;
    auto expected = model;
    for (int op = 0; op < 30; ++op) {
      const std::uint64_t key =
          rng.chance(0.5)
              ? std::next(model.begin(), static_cast<std::ptrdiff_t>(
                                             rng.next_below(model.size())))
                    ->first
              : rng.next_u64();
      if (rng.chance(0.4)) {
        delta[key] = std::nullopt;  // tombstone (possibly of an absent key)
        expected.erase(key);
      } else {
        const Digest v = value_digest(rng.next_u64());
        delta[key] = v;
        expected[key] = v;
      }
    }
    const Digest before = base.root();
    ASSERT_EQ(base.root_with(delta), reference_of(expected)) << "round " << round;
    ASSERT_EQ(base.size_with(delta), expected.size());
    ASSERT_EQ(base.root(), before);  // root_with must not mutate the map
  }
}

// --------------------------------------------------------- MerkleMapProof

namespace {
/// Verify after an encode/decode round-trip, the way a remote verifier sees
/// the proof.
bool wire_verify(const Digest& root, std::uint64_t key,
                 const std::optional<Digest>& value, const MerkleMapProof& p) {
  const auto decoded = MerkleMapProof::decode(p.encode());
  if (!decoded.ok()) return false;
  if (!(decoded.value() == p)) return false;
  return MerkleMap::verify(root, key, value, decoded.value());
}
}  // namespace

TEST(MerkleMapProof, EmptyMapProvesNonMembership) {
  MerkleMap m;
  const MerkleMapProof p = m.prove(123);
  EXPECT_TRUE(p.steps.empty());
  EXPECT_FALSE(p.has_terminal_leaf);
  EXPECT_TRUE(wire_verify(m.root(), 123, std::nullopt, p));
  // The same proof cannot claim membership, nor verify a nonzero root.
  EXPECT_FALSE(MerkleMap::verify(m.root(), 123, value_digest(1), p));
  EXPECT_FALSE(MerkleMap::verify(value_digest(9), 123, std::nullopt, p));
}

TEST(MerkleMapProof, SingleKeyMembershipAndCollision) {
  MerkleMap m;
  m.put(42, value_digest(7));
  const MerkleMapProof member = m.prove(42);
  EXPECT_TRUE(member.steps.empty());
  EXPECT_TRUE(wire_verify(m.root(), 42, value_digest(7), member));
  EXPECT_FALSE(MerkleMap::verify(m.root(), 42, value_digest(8), member));
  // Any other key's non-membership proof is the colliding leaf itself.
  const MerkleMapProof absent = m.prove(43);
  EXPECT_TRUE(absent.has_terminal_leaf);
  EXPECT_EQ(absent.terminal_key, 42u);
  EXPECT_TRUE(wire_verify(m.root(), 43, std::nullopt, absent));
  EXPECT_FALSE(MerkleMap::verify(m.root(), 42, std::nullopt, absent));
}

TEST(MerkleMapProof, MembershipRoundTripClusteredKeys) {
  // Clustered prefixes force deep paths (shared high nibbles); the sprinkle
  // of random keys keeps the root fan-out realistic.
  Rng rng(1234);
  MerkleMap m;
  std::map<std::uint64_t, Digest> model;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::uint64_t key = 0xABCDEF0000000000ull | i;
    m.put(key, value_digest(i));
    model[key] = value_digest(i);
  }
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t key = rng.next_u64();
    m.put(key, value_digest(key));
    model[key] = value_digest(key);
  }
  const Digest root = m.root();
  for (const auto& [key, value] : model) {
    const MerkleMapProof p = m.prove(key);
    EXPECT_FALSE(p.has_terminal_leaf);
    ASSERT_TRUE(wire_verify(root, key, value, p)) << "key " << key;
    // The right proof for the wrong claim must not verify.
    EXPECT_FALSE(MerkleMap::verify(root, key, value_digest(~key), p));
    EXPECT_FALSE(MerkleMap::verify(root, key, std::nullopt, p));
    EXPECT_FALSE(MerkleMap::verify(root, key + 1, value, p));
    EXPECT_FALSE(MerkleMap::verify(value_digest(0), key, value, p));
  }
}

TEST(MerkleMapProof, NonMembershipAfterErase) {
  // Erase leaves physical count-1 inner chains behind; proofs must still
  // collapse them to the canonical shape.
  MerkleMap m;
  for (std::uint64_t i = 0; i < 32; ++i) m.put(0xF00D00ull << 8 | i, value_digest(i));
  for (std::uint64_t i = 1; i < 32; i += 2) m.erase(0xF00D00ull << 8 | i);
  const Digest root = m.root();
  for (std::uint64_t i = 0; i < 32; ++i) {
    const std::uint64_t key = 0xF00D00ull << 8 | i;
    const MerkleMapProof p = m.prove(key);
    if (i % 2 == 0) {
      ASSERT_TRUE(wire_verify(root, key, value_digest(i), p)) << i;
    } else {
      ASSERT_TRUE(wire_verify(root, key, std::nullopt, p)) << i;
      EXPECT_FALSE(MerkleMap::verify(root, key, value_digest(i), p));
    }
  }
}

TEST(MerkleMapProof, DecodeIsStrict) {
  MerkleMap m;
  for (std::uint64_t i = 0; i < 20; ++i) m.put(i * 1000003, value_digest(i));
  const Bytes wire = m.prove(5 * 1000003).encode();
  ASSERT_TRUE(MerkleMapProof::decode(wire).ok());
  {
    Bytes bad = wire;
    bad[0] = 0x02;  // unknown version
    EXPECT_EQ(MerkleMapProof::decode(bad).error().code, "proof.bad_version");
  }
  {
    Bytes bad = wire;
    bad[1] |= 0x80;  // reserved flag bit
    EXPECT_EQ(MerkleMapProof::decode(bad).error().code, "proof.bad_flags");
  }
  {
    Bytes bad = wire;
    bad[2] = 17;  // deeper than the key has nibbles
    EXPECT_EQ(MerkleMapProof::decode(bad).error().code, "proof.bad_depth");
  }
  {
    Bytes bad = wire;
    bad.push_back(0x00);  // trailing garbage
    EXPECT_EQ(MerkleMapProof::decode(bad).error().code, "proof.trailing_bytes");
  }
  {
    Bytes bad = wire;
    bad.pop_back();  // truncated
    EXPECT_FALSE(MerkleMapProof::decode(bad).ok());
  }
  EXPECT_FALSE(MerkleMapProof::decode({}).ok());
}

TEST(MerkleMapProof, ProofFuzz10kKeys) {
  // check.sh gate: every present key proves, every absent key
  // non-membership-proves, and no single-byte mutation of an encoded proof
  // survives decode + verify. 10k keys exercise every proof shape.
  Rng rng(0xF00DF00D);
  MerkleMap m;
  std::vector<std::uint64_t> keys;
  keys.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    // Half clustered (deep paths, absent-slot and colliding-leaf proofs),
    // half uniform (shallow spread).
    const std::uint64_t key = rng.chance(0.5)
                                  ? (0xDEAD000000000000ull | rng.next_below(1 << 20))
                                  : rng.next_u64();
    if (m.contains(key)) continue;
    m.put(key, value_digest(key));
    keys.push_back(key);
  }
  const Digest root = m.root();
  for (const std::uint64_t key : keys) {
    ASSERT_TRUE(MerkleMap::verify(root, key, value_digest(key), m.prove(key)))
        << "membership failed for key " << key;
  }
  std::size_t absent_checked = 0;
  while (absent_checked < 10000) {
    const std::uint64_t key = rng.chance(0.5)
                                  ? (0xDEAD000000000000ull | rng.next_below(1 << 20))
                                  : rng.next_u64();
    if (m.contains(key)) continue;
    const MerkleMapProof p = m.prove(key);
    ASSERT_TRUE(MerkleMap::verify(root, key, std::nullopt, p))
        << "non-membership failed for key " << key;
    ASSERT_FALSE(MerkleMap::verify(root, key, value_digest(key), p));
    ++absent_checked;
  }
  // Mutation sweep over a sample of proofs: flip every byte position in
  // turn; the mutant must fail decode or fail verify — no byte is inert.
  for (int sample = 0; sample < 24; ++sample) {
    const std::uint64_t key = keys[rng.next_below(keys.size())];
    const bool member = sample % 2 == 0;
    const std::uint64_t probe = member ? key : key + 1;
    const std::optional<Digest> claim =
        member ? std::optional<Digest>(value_digest(key)) : std::nullopt;
    if (!member && m.contains(probe)) continue;
    const Bytes wire = m.prove(probe).encode();
    for (std::size_t pos = 0; pos < wire.size(); ++pos) {
      Bytes mutated = wire;
      mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
      const auto decoded = MerkleMapProof::decode(mutated);
      if (!decoded.ok()) continue;  // rejected at the wire: good
      ASSERT_FALSE(MerkleMap::verify(root, probe, claim, decoded.value()))
          << "mutation at byte " << pos << " of " << wire.size()
          << " survived verification (key " << probe << ")";
    }
  }
}

// ---------------------------------------------------------------- SetHash

TEST(SetHash, OrderIndependentAndRemovable) {
  SetHash a;
  a.add(value_digest(1));
  a.add(value_digest(2));
  a.add(value_digest(3));
  SetHash b;
  b.add(value_digest(3));
  b.add(value_digest(1));
  b.add(value_digest(2));
  EXPECT_EQ(a, b);
  a.remove(value_digest(2));
  SetHash c;
  c.add(value_digest(1));
  c.add(value_digest(3));
  EXPECT_EQ(a.bytes(), c.bytes());
  a.remove(value_digest(1));
  a.remove(value_digest(3));
  EXPECT_EQ(a, SetHash{});  // empty multiset is all-zero
}

}  // namespace
}  // namespace mv::crypto
