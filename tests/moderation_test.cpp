// Moderation tests: classifier operating point, queue dynamics per staffing
// mode (the E3 shape), and the punitive/preventive community sim (E12 shape).
#include <gtest/gtest.h>

#include "moderation/community.h"
#include "moderation/contract.h"
#include "moderation/engine.h"

namespace mv::moderation {
namespace {

Report make_report(std::uint64_t id, bool violation, Tick filed_at = 0) {
  Report r;
  r.id = ReportId(id);
  r.reporter = AccountId(1000 + id);
  r.offender = AccountId(2000 + id);
  r.kind = ReportKind::kHarassment;
  r.filed_at = filed_at;
  r.is_violation = violation;
  return r;
}

// ------------------------------------------------------------ classifier

TEST(Classifier, OperatingPointMatchesConfig) {
  AiClassifier clf;
  Rng rng(1);
  int tp = 0, fn = 0, fp = 0, tn = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const bool violation = i % 2 == 0;
    const auto c = clf.classify(make_report(static_cast<std::uint64_t>(i), violation), rng);
    if (violation) {
      (c.verdict == Verdict::kUphold ? tp : fn)++;
    } else {
      (c.verdict == Verdict::kUphold ? fp : tn)++;
    }
  }
  const double recall = static_cast<double>(tp) / (tp + fn);
  const double fpr = static_cast<double>(fp) / (fp + tn);
  // mu=0.78, sigma=0.13 → P(score > 0.5) ≈ Φ(2.15) ≈ 0.984.
  EXPECT_GT(recall, 0.95);
  EXPECT_LT(fpr, 0.05);
}

TEST(Classifier, ConfidenceBandsSplitTraffic) {
  AiClassifier clf;
  Rng rng(2);
  int confident = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    confident += clf.classify(make_report(static_cast<std::uint64_t>(i), i % 2 == 0), rng).confident;
  }
  const double frac = static_cast<double>(confident) / n;
  EXPECT_GT(frac, 0.4);  // most cases are clear-cut...
  EXPECT_LT(frac, 0.95);  // ...but a real residue needs humans
}

// ------------------------------------------------------------ engine

EngineConfig config_for(StaffingMode mode) {
  EngineConfig c;
  c.mode = mode;
  c.human_moderators = 5;
  c.human_throughput = 0.1;  // 0.5 reports/tick total
  c.community_size = 10000;
  return c;
}

/// Drive `arrivals_per_tick` reports (80% true violations) for `ticks`.
EngineMetrics drive(ModerationEngine& engine, double arrivals_per_tick,
                    std::size_t ticks, Rng& rng, std::uint64_t& next_id) {
  double budget = 0.0;
  for (std::size_t t = 0; t < ticks; ++t) {
    budget += arrivals_per_tick;
    while (budget >= 1.0) {
      budget -= 1.0;
      engine.submit(make_report(next_id++, rng.chance(0.8), static_cast<Tick>(t)));
    }
    engine.step(static_cast<Tick>(t));
  }
  return engine.metrics();
}

TEST(Engine, HumanOnlyKeepsUpUnderLightLoad) {
  Rng rng(3);
  std::uint64_t id = 0;
  ModerationEngine engine(config_for(StaffingMode::kHumanOnly), Rng(4));
  const auto m = drive(engine, 0.3, 2000, rng, id);  // below 0.5 capacity
  EXPECT_LT(engine.backlog(), 10u);
  EXPECT_GT(m.accuracy(), 0.9);
}

TEST(Engine, HumanOnlyBacklogDivergesUnderHeavyLoad) {
  Rng rng(5);
  std::uint64_t id = 0;
  ModerationEngine engine(config_for(StaffingMode::kHumanOnly), Rng(6));
  (void)drive(engine, 2.0, 2000, rng, id);  // 4x capacity
  // ~1.5 unserved per tick x 2000 ticks.
  EXPECT_GT(engine.backlog(), 2000u);
}

TEST(Engine, AiAssistedAbsorbsTheSameLoad) {
  Rng rng(7);
  std::uint64_t id = 0;
  ModerationEngine engine(config_for(StaffingMode::kAiAssisted), Rng(8));
  const auto m = drive(engine, 2.0, 2000, rng, id);
  // AI auto-resolves the confident majority; humans keep up with the rest.
  EXPECT_LT(engine.backlog(), 4000u / 4);
  EXPECT_GT(m.resolved_by_ai, m.resolved_by_human);
}

TEST(Engine, JuryCapacityScalesWithCommunity) {
  Rng rng(9);
  std::uint64_t id = 0;
  auto config = config_for(StaffingMode::kCommunityJury);
  ModerationEngine engine(config, Rng(10));
  // 10000 members x 0.002 availability / 5 jurors = 4 juries per tick.
  const auto m = drive(engine, 2.0, 1000, rng, id);
  EXPECT_LT(engine.backlog(), 50u);
  EXPECT_EQ(m.resolved_by_jury, m.resolved);
}

TEST(Engine, HybridUsesBothPaths) {
  Rng rng(11);
  std::uint64_t id = 0;
  ModerationEngine engine(config_for(StaffingMode::kHybrid), Rng(12));
  const auto m = drive(engine, 2.0, 1000, rng, id);
  EXPECT_GT(m.resolved_by_ai, 0u);
  EXPECT_GT(m.resolved_by_jury, 0u);
  EXPECT_EQ(m.resolved_by_human, 0u);
}

TEST(Engine, LatencyOrderingMatchesCapacity) {
  Rng rng(13);
  std::uint64_t id_a = 0, id_b = 0;
  ModerationEngine human(config_for(StaffingMode::kHumanOnly), Rng(14));
  ModerationEngine assisted(config_for(StaffingMode::kAiAssisted), Rng(14));
  const auto mh = drive(human, 1.0, 1500, rng, id_a);
  Rng rng2(13);
  const auto ma = drive(assisted, 1.0, 1500, rng2, id_b);
  EXPECT_GT(mh.latency.percentile(90), ma.latency.percentile(90));
}

TEST(Engine, HumanAccuracyBeatsJuryOfMediocreJurors) {
  Rng rng(15);
  std::uint64_t id_a = 0, id_b = 0;
  auto human_config = config_for(StaffingMode::kHumanOnly);
  human_config.human_moderators = 50;  // enough capacity to resolve all
  auto jury_config = config_for(StaffingMode::kCommunityJury);
  jury_config.juror_accuracy = 0.7;
  ModerationEngine human(human_config, Rng(16));
  ModerationEngine jury(jury_config, Rng(16));
  const auto mh = drive(human, 1.0, 1000, rng, id_a);
  Rng rng2(15);
  const auto mj = drive(jury, 1.0, 1000, rng2, id_b);
  EXPECT_GT(mh.accuracy(), mj.accuracy());
  // But majority voting lifts the jury above a single 0.7 juror.
  EXPECT_GT(mj.accuracy(), 0.75);
}

TEST(Engine, FalsePunishmentsTracked) {
  Rng rng(17);
  std::uint64_t id = 0;
  auto config = config_for(StaffingMode::kAiOnly);
  config.classifier.mu_benign = 0.45;  // deliberately sloppy classifier
  ModerationEngine engine(config, Rng(18));
  const auto m = drive(engine, 1.0, 500, rng, id);
  EXPECT_GT(m.false_punishments, 0u);
}

TEST(Engine, CredibilityPrioritizationServesTrustedReportersFirst) {
  auto config = config_for(StaffingMode::kHumanOnly);
  config.prioritize_by_reporter_credibility = true;
  ModerationEngine engine(config, Rng(30));
  // Accounts 1..100: odd ids are high-credibility reporters.
  engine.set_credibility_oracle([](AccountId id) {
    return id.value() % 2 == 1 ? 0.9 : 0.1;
  });
  Rng rng(31);
  // Saturate: 200 reports at once against 0.5/tick capacity, then drain a
  // little and compare latencies by reporter class.
  for (std::uint64_t i = 0; i < 200; ++i) {
    Report r;
    r.id = ReportId(i);
    r.reporter = AccountId(1 + i % 100);
    r.offender = AccountId(5000 + i);
    r.filed_at = 0;
    r.is_violation = rng.chance(0.8);
    engine.submit(std::move(r));
  }
  for (Tick t = 1; t <= 200; ++t) engine.step(t);
  // ~100 resolved; they should be overwhelmingly odd-id (credible) reporters.
  std::size_t credible = 0, total = 0;
  for (const auto& r : engine.resolutions()) {
    ++total;
    credible += (r.reporter.value() % 2 == 1);
  }
  ASSERT_GT(total, 50u);
  EXPECT_GT(static_cast<double>(credible) / static_cast<double>(total), 0.9);
}

TEST(Engine, PrioritizationWithoutOracleFallsBackToFifo) {
  auto config = config_for(StaffingMode::kHumanOnly);
  config.prioritize_by_reporter_credibility = true;  // but no oracle set
  ModerationEngine engine(config, Rng(32));
  Rng rng(33);
  for (std::uint64_t i = 0; i < 10; ++i) {
    Report r;
    r.id = ReportId(i);
    r.reporter = AccountId(i);
    r.filed_at = 0;
    r.is_violation = true;
    engine.submit(std::move(r));
  }
  for (Tick t = 1; t <= 10; ++t) engine.step(t);
  const auto& resolutions = engine.resolutions();
  ASSERT_GE(resolutions.size(), 2u);
  // FIFO: report 0 resolves before report 1.
  EXPECT_EQ(resolutions[0].report, ReportId(0));
  EXPECT_EQ(resolutions[1].report, ReportId(1));
  (void)rng;
}

// ------------------------------------------------------------ appeals

TEST(Appeals, InnocentsGetOverturnedMoreOftenThanGuilty) {
  auto config = config_for(StaffingMode::kAiOnly);
  config.classifier.mu_benign = 0.45;  // sloppy: many false punishments
  ModerationEngine engine(config, Rng(40));
  Rng rng(41);
  std::uint64_t id = 0;
  (void)drive(engine, 1.0, 1000, rng, id);
  ASSERT_GT(engine.metrics().false_punishments, 0u);

  // Every punished party appeals.
  const auto resolutions = engine.resolutions();
  std::size_t innocent_overturned = 0, innocent_appeals = 0;
  std::size_t guilty_overturned = 0, guilty_appeals = 0;
  const auto before_false = engine.metrics().false_punishments;
  for (const auto& r : resolutions) {
    if (r.verdict != Verdict::kUphold) continue;
    auto verdict = engine.appeal(r.report, 2000);
    ASSERT_TRUE(verdict.ok());
    // r.correct == true means the uphold matched ground truth (guilty).
    if (r.correct) {
      ++guilty_appeals;
      guilty_overturned += (verdict.value() == Verdict::kDismiss);
    } else {
      ++innocent_appeals;
      innocent_overturned += (verdict.value() == Verdict::kDismiss);
    }
  }
  ASSERT_GT(innocent_appeals, 0u);
  ASSERT_GT(guilty_appeals, 0u);
  // The 0.9-accurate 11-member jury overturns most wrongful verdicts and
  // few correct ones.
  EXPECT_GT(static_cast<double>(innocent_overturned) / static_cast<double>(innocent_appeals), 0.8);
  EXPECT_LT(static_cast<double>(guilty_overturned) / static_cast<double>(guilty_appeals), 0.2);
  EXPECT_LT(engine.metrics().false_punishments, before_false);
  EXPECT_EQ(engine.metrics().appeals, innocent_appeals + guilty_appeals);
}

TEST(Appeals, OnlyUpheldAndOnlyOnce) {
  ModerationEngine engine(config_for(StaffingMode::kAiOnly), Rng(42));
  engine.submit(make_report(1, true, 0));
  engine.submit(make_report(2, false, 0));  // likely dismissed
  engine.step(1);
  ASSERT_EQ(engine.metrics().resolved, 2u);

  // Find an upheld and a dismissed case.
  std::optional<ReportId> upheld, dismissed;
  for (const auto& r : engine.resolutions()) {
    (r.verdict == Verdict::kUphold ? upheld : dismissed) = r.report;
  }
  if (dismissed.has_value()) {
    EXPECT_EQ(engine.appeal(*dismissed, 10).error().code,
              "moderation.not_appealable");
  }
  if (upheld.has_value()) {
    ASSERT_TRUE(engine.appeal(*upheld, 10).ok());
    EXPECT_EQ(engine.appeal(*upheld, 11).error().code,
              "moderation.already_appealed");
  }
  EXPECT_EQ(engine.appeal(ReportId(999), 10).error().code,
            "moderation.not_appealable");
}

// ------------------------------------------------------------ community

CommunityConfig community_config(PolicyMix mix) {
  CommunityConfig c;
  c.agents = 1500;
  c.rounds = 60;
  c.mix = mix;
  return c;
}

TEST(Community, BaselineIsStable) {
  CommunitySim sim(community_config(PolicyMix::kNone), Rng(19));
  const auto m = sim.run();
  EXPECT_GT(m.positive_actions, 0u);
  EXPECT_GT(m.negative_actions, 0u);
  EXPECT_EQ(m.sanctions, 0u);
  EXPECT_EQ(m.rewards, 0u);
  EXPECT_EQ(sim.positive_share_series().size(), 60u);
}

TEST(Community, PunitiveCutsNegativeActions) {
  CommunitySim none(community_config(PolicyMix::kNone), Rng(20));
  CommunitySim punitive(community_config(PolicyMix::kPunitiveOnly), Rng(20));
  const auto mn = none.run();
  const auto mp = punitive.run();
  EXPECT_LT(mp.negative_actions, mn.negative_actions);
  EXPECT_GT(mp.mutes, 0u);
}

TEST(Community, PreventiveRaisesPositiveShareOverTime) {
  CommunitySim sim(community_config(PolicyMix::kPreventiveOnly), Rng(21));
  const auto m = sim.run();
  const auto& series = sim.positive_share_series();
  // Behaviour shifts: the tail beats the head.
  EXPECT_GT(series.back(), series.front() + 0.05);
  EXPECT_GT(m.rewards, 0u);
}

class MixSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MixSeedTest, MixedBeatsEitherAlone) {
  // §III-D: communities need punitive AND preventive tools. Final positive
  // share must order mixed > preventive-only > punitive-only > none.
  CommunitySim none(community_config(PolicyMix::kNone), Rng(GetParam()));
  CommunitySim punitive(community_config(PolicyMix::kPunitiveOnly), Rng(GetParam()));
  CommunitySim preventive(community_config(PolicyMix::kPreventiveOnly), Rng(GetParam()));
  CommunitySim mixed(community_config(PolicyMix::kMixed), Rng(GetParam()));
  const double s_none = none.run().final_positive_share;
  const double s_pun = punitive.run().final_positive_share;
  const double s_prev = preventive.run().final_positive_share;
  const double s_mixed = mixed.run().final_positive_share;
  EXPECT_GT(s_pun, s_none);
  EXPECT_GT(s_prev, s_pun - 0.05);  // both single tools help
  EXPECT_GT(s_mixed, s_pun);
  EXPECT_GT(s_mixed, s_prev);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixSeedTest, ::testing::Values(31, 32, 33));

// ------------------------------------------------- on-chain contract

struct ContractFixture {
  Rng rng{606};
  std::shared_ptr<ledger::ContractRegistry> contracts =
      std::make_shared<ledger::ContractRegistry>();
  crypto::Wallet moderator{rng}, reporter{rng}, offender{rng};
  ledger::LedgerState state;
  ModerationContractConfig config;

  ContractFixture() {
    config.moderator = moderator.address();
    contracts->install(std::make_shared<ModerationContract>(config));
    state.credit(moderator.address(), 1000);
    state.credit(reporter.address(), 1000);
    state.credit(offender.address(), 1000);
  }

  Status call(const crypto::Wallet& w, const std::string& method, Bytes args,
              std::int64_t height = 0) {
    const auto tx = ledger::make_contract_call(
        w, state.nonce(w.address()), config.name, method, std::move(args), 0,
        rng);
    return state.apply(tx, *contracts, height);
  }
};

TEST(ModerationContract, ReportFilesAnOpenRecord) {
  ContractFixture f;
  ASSERT_TRUE(f.call(f.reporter, "report",
                     ModerationContract::encode_report(
                         f.offender.address(), 1, "spatial harassment"),
                     7).ok());
  EXPECT_EQ(ModerationContract::report_count(f.state, f.config.name), 1u);
  EXPECT_EQ(ModerationContract::open_count(f.state, f.config.name), 1u);
  auto view = ModerationContract::report(f.state, f.config.name, 0);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value().reporter, f.reporter.address());
  EXPECT_EQ(view.value().offender, f.offender.address());
  EXPECT_EQ(view.value().kind, 1u);
  EXPECT_EQ(view.value().filed_height, 7);
  EXPECT_EQ(view.value().status, ReportStatus::kOpen);
}

TEST(ModerationContract, SelfReportAndBadKindRejected) {
  ContractFixture f;
  EXPECT_EQ(f.call(f.reporter, "report",
                   ModerationContract::encode_report(f.reporter.address(), 0,
                                                     "me"))
                .error().code,
            errc::kModSelfReport);
  EXPECT_EQ(f.call(f.reporter, "report",
                   ModerationContract::encode_report(
                       f.offender.address(),
                       static_cast<std::uint8_t>(f.config.max_kind + 1), "x"))
                .error().code,
            errc::kModBadArgs);
}

TEST(ModerationContract, OnlyModeratorResolvesAndOnlyOnce) {
  ContractFixture f;
  ASSERT_TRUE(f.call(f.reporter, "report",
                     ModerationContract::encode_report(f.offender.address(), 2,
                                                       "scam listing")).ok());
  EXPECT_EQ(f.call(f.reporter, "resolve",
                   ModerationContract::encode_resolve(0, true))
                .error().code,
            errc::kModNotModerator);
  ASSERT_TRUE(f.call(f.moderator, "resolve",
                     ModerationContract::encode_resolve(0, true)).ok());
  EXPECT_EQ(ModerationContract::open_count(f.state, f.config.name), 0u);
  EXPECT_EQ(ModerationContract::upheld_count(f.state, f.config.name), 1u);
  EXPECT_EQ(ModerationContract::report(f.state, f.config.name, 0)
                .value().status,
            ReportStatus::kUpheld);
  EXPECT_EQ(f.call(f.moderator, "resolve",
                   ModerationContract::encode_resolve(0, false))
                .error().code,
            errc::kModAlreadyResolved);
}

TEST(ModerationContract, DismissalClosesWithoutUpholding) {
  ContractFixture f;
  ASSERT_TRUE(f.call(f.reporter, "report",
                     ModerationContract::encode_report(f.offender.address(), 0,
                                                       "noise")).ok());
  ASSERT_TRUE(f.call(f.moderator, "resolve",
                     ModerationContract::encode_resolve(0, false)).ok());
  EXPECT_EQ(ModerationContract::open_count(f.state, f.config.name), 0u);
  EXPECT_EQ(ModerationContract::upheld_count(f.state, f.config.name), 0u);
  EXPECT_EQ(ModerationContract::report(f.state, f.config.name, 0)
                .value().status,
            ReportStatus::kDismissed);
  EXPECT_EQ(f.call(f.moderator, "resolve",
                   ModerationContract::encode_resolve(9, true))
                .error().code,
            errc::kModNoSuchReport);
}

}  // namespace
}  // namespace mv::moderation
