// Core integration tests: the assembled Metaverse — user lifecycle across
// every subsystem, sensor→PET→ledger audit flow, moderation→reputation flow,
// governance-gated policy swaps, on-chain economy, and the ethics audit.
#include <gtest/gtest.h>

#include "core/metaverse.h"
#include "core/portability.h"
#include "privacy/sensors.h"

namespace mv::core {
namespace {

MetaverseConfig test_config() {
  MetaverseConfig c;
  c.seed = 7;
  c.validators = 4;
  c.governance.module_config =
      dao::DaoConfig{0.2, 0.5, 50, std::make_shared<dao::OneMemberOneVote>()};
  c.governance.global_config =
      dao::DaoConfig{0.1, 0.5, 50, std::make_shared<dao::OneMemberOneVote>()};
  c.moderation.mode = moderation::StaffingMode::kAiAssisted;
  c.moderation.human_moderators = 5;
  c.moderation.human_throughput = 1.0;
  return c;
}

TEST(Metaverse, RegisterUserTouchesEverySubsystem) {
  Metaverse mv(test_config());
  const UserHandle u = mv.register_user("eu");
  EXPECT_EQ(mv.user_count(), 1u);
  // World: primary avatar exists.
  ASSERT_NE(mv.world().avatar(u.avatar), nullptr);
  EXPECT_EQ(mv.world().avatar(u.avatar)->owner, u.user_id);
  // Governance: enrolled.
  EXPECT_NE(mv.governance().global().members().find(u.account), nullptr);
  // Reputation: registered.
  EXPECT_TRUE(mv.reputation().known(u.account));
  // Privacy: critical sensors are consent-gated by default.
  EXPECT_FALSE(mv.pipeline(u.user_id)
                   .policy(privacy::SensorType::kGaze)
                   ->consent_given);
  // Ledger: the genesis grant lands with the next consensus round.
  ASSERT_TRUE(mv.run_consensus_round());
  EXPECT_EQ(mv.chain().state().balance(u.address), mv.config().genesis_grant);
}

TEST(Metaverse, IngestFilesOnChainAuditRecords) {
  Metaverse mv(test_config());
  const UserHandle u = mv.register_user("eu");
  mv.pipeline(u.user_id).set_consent(privacy::SensorType::kGaze, true);

  privacy::SensorSim sensors{Rng(9)};
  const auto traits = [&] {
    privacy::SensorSim s{Rng(10)};
    return s.sample_traits();
  }();
  std::size_t released = 0;
  for (int i = 0; i < 16; ++i) {
    released += mv.ingest(u.user_id, sensors.gaze(u.user_id, traits, i)).has_value();
  }
  EXPECT_GT(released, 0u);
  ASSERT_TRUE(mv.run_consensus_round());

  ledger::AuditQuery query(mv.chain());
  const auto records = query.by_subject(u.user_id);
  ASSERT_EQ(records.size(), released);
  EXPECT_EQ(records[0].collector, mv.device_address(u.user_id));
  EXPECT_EQ(records[0].body.data_category, "gaze");
  // The PET chain is on the record — regulators can see what was applied.
  EXPECT_NE(records[0].body.pet_applied, "none");
}

TEST(Metaverse, ModerationVerdictFeedsReputation) {
  auto config = test_config();
  config.reputation.pair_cooldown = 1;
  Metaverse mv(config);
  const UserHandle victim = mv.register_user("eu");
  const UserHandle troll = mv.register_user("us");
  const double before = mv.reputation().score(troll.account);

  // Several reports; AI-assisted moderation resolves them within a few ticks.
  for (int i = 0; i < 5; ++i) {
    mv.report_misbehaviour(victim.user_id, troll.user_id,
                           moderation::ReportKind::kHarassment);
  }
  for (int t = 0; t < 20; ++t) mv.tick();
  EXPECT_GT(mv.moderation().metrics().resolved, 0u);
  EXPECT_LT(mv.reputation().score(troll.account), before);
}

TEST(Metaverse, GovernanceGatedPolicySwap) {
  Metaverse mv(test_config());
  std::vector<UserHandle> users;
  for (int i = 0; i < 5; ++i) users.push_back(mv.register_user("eu"));

  // Before: no regulation for "eu" → violations pass silently.
  policy::DataFlowEvent event;
  event.id = DataFlowId(1);
  event.category = "gaze";
  event.consent = false;
  event.observed_at = 0;
  EXPECT_TRUE(mv.policy().audit("eu", event).empty());

  auto proposal = mv.propose_policy_swap(users[0].user_id, "eu",
                                         policy::make_gdpr_module());
  ASSERT_TRUE(proposal.ok());
  for (const auto& u : users) {
    ASSERT_TRUE(mv.governance()
                    .cast_vote(proposal.value(), u.account,
                               dao::VoteChoice::kYes, mv.clock().now())
                    .ok());
  }
  for (int t = 0; t < 60; ++t) mv.tick();  // voting period elapses
  auto outcome = mv.finalize_governance(proposal.value());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().status, dao::ProposalStatus::kPassed);

  // After: the code enforces what governance decided (§III-A).
  EXPECT_FALSE(mv.policy().audit("eu", event).empty());
  EXPECT_EQ(mv.policy().region_module("eu")->name(), "gdpr");
}

TEST(Metaverse, RejectedSwapChangesNothing) {
  Metaverse mv(test_config());
  std::vector<UserHandle> users;
  for (int i = 0; i < 4; ++i) users.push_back(mv.register_user("us"));
  auto proposal = mv.propose_policy_swap(users[0].user_id, "us",
                                         policy::make_ccpa_module());
  ASSERT_TRUE(proposal.ok());
  for (const auto& u : users) {
    ASSERT_TRUE(mv.governance()
                    .cast_vote(proposal.value(), u.account, dao::VoteChoice::kNo,
                               mv.clock().now())
                    .ok());
  }
  for (int t = 0; t < 60; ++t) mv.tick();
  auto outcome = mv.finalize_governance(proposal.value());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().status, dao::ProposalStatus::kRejected);
  EXPECT_EQ(mv.policy().region_module("us"), nullptr);
}

TEST(Metaverse, OnChainEconomyEndToEnd) {
  Metaverse mv(test_config());
  const UserHandle artist = mv.register_user("eu");
  const UserHandle fan = mv.register_user("eu");
  ASSERT_TRUE(mv.run_consensus_round());  // genesis grants land

  Rng rng(77);
  const auto& artist_wallet = mv.wallet(artist.user_id);
  const auto& fan_wallet = mv.wallet(fan.user_id);
  auto nonce_of = [&](const crypto::Wallet& w) {
    return mv.chain().state().nonce(w.address());
  };

  mv.submit_tx(ledger::make_contract_call(
      artist_wallet, nonce_of(artist_wallet), "nft", "mint",
      nft::NftContract::encode_mint("mv://gallery/sunrise", 1000), 1, rng));
  ASSERT_TRUE(mv.run_consensus_round());
  mv.submit_tx(ledger::make_contract_call(
      artist_wallet, nonce_of(artist_wallet), "nft", "list",
      nft::NftContract::encode_list(0, 500), 1, rng));
  ASSERT_TRUE(mv.run_consensus_round());
  mv.submit_tx(ledger::make_contract_call(fan_wallet, nonce_of(fan_wallet),
                                          "nft", "buy",
                                          nft::NftContract::encode_token(0), 1,
                                          rng));
  ASSERT_TRUE(mv.run_consensus_round());

  const auto token = nft::NftContract::token(mv.chain().state(), 0);
  ASSERT_TRUE(token.ok());
  EXPECT_EQ(token.value().owner, fan.address);
  EXPECT_EQ(token.value().creator, artist.address);
  EXPECT_EQ(mv.chain().state().balance(artist.address),
            mv.config().genesis_grant + 500 - 2);  // sale proceeds minus fees
}

TEST(Metaverse, NftGatedLandFollowsOnChainOwnership) {
  Metaverse mv(test_config());
  const UserHandle landlord = mv.register_user("eu");
  const UserHandle buyer = mv.register_user("eu");
  ASSERT_TRUE(mv.run_consensus_round());

  Rng rng(88);
  auto call = [&](const UserHandle& who, const std::string& method, Bytes args) {
    const auto& w = mv.wallet(who.user_id);
    mv.submit_tx(ledger::make_contract_call(
        w, mv.chain().state().nonce(w.address()), "nft", method,
        std::move(args), 1, rng));
    ASSERT_TRUE(mv.run_consensus_round());
  };

  // Landlord mints LAND token 0 and gates a new estate behind it.
  call(landlord, "mint", nft::NftContract::encode_mint("land://estate-1", 0));
  const SpaceId estate = mv.world().create_space(30, 30);
  mv.world().set_space_access(estate, false, 0);

  EXPECT_TRUE(mv.world().enter(landlord.avatar, estate, {1, 1}).ok());
  EXPECT_EQ(mv.world().enter(buyer.avatar, estate, {2, 2}).error().code,
            "world.land_gated");

  // The LAND sells on chain; access follows ownership, no world-side change.
  call(landlord, "list", nft::NftContract::encode_list(0, 100));
  call(buyer, "buy", nft::NftContract::encode_token(0));
  EXPECT_TRUE(mv.world().enter(buyer.avatar, estate, {2, 2}).ok());
  EXPECT_EQ(mv.world().enter(landlord.avatar, estate, {1, 1}).error().code,
            "world.land_gated");
}

TEST(Metaverse, EthicsAuditReflectsConfiguration) {
  Metaverse good(test_config());
  (void)good.register_user("eu");
  good.governance().create_module("privacy");
  good.policy().set_region_module("eu", policy::make_gdpr_module());
  const EthicsReport gr = good.ethics_audit();
  EXPECT_DOUBLE_EQ(gr.layer_score(EthicalLayer::kHumanRights), 1.0);
  EXPECT_DOUBLE_EQ(gr.layer_score(EthicalLayer::kHumanEffort), 1.0);
  EXPECT_TRUE(gr.layer_supported(EthicalLayer::kHumanExperience));

  // A platform with invite-only admission, no safety, no incentives, no
  // regulation mapping scores visibly worse.
  auto bad_config = test_config();
  bad_config.market_admission = nft::AdmissionPolicy::kInviteOnly;
  bad_config.safety_interventions_enabled = false;
  bad_config.positive_incentives_enabled = false;
  Metaverse bad(bad_config);
  const EthicsReport br = bad.ethics_audit();
  EXPECT_LT(br.layer_score(EthicalLayer::kHumanRights), 1.0);
  EXPECT_LT(br.overall_score(), gr.overall_score());
  EXPECT_FALSE(br.layer_supported(EthicalLayer::kHumanExperience));
  const auto missing = br.missing(EthicalLayer::kHumanRights);
  EXPECT_FALSE(missing.empty());
}

TEST(Portability, PackRoundTripsAndApplies) {
  // Platform A: two governance concerns, two regulated regions.
  Metaverse a(test_config());
  a.governance().create_module("privacy");
  a.governance().create_module("economy");
  a.policy().set_region_module("eu", policy::make_gdpr_module());
  a.policy().set_region_module("california", policy::make_ccpa_module());

  const GovernancePack pack = export_governance_pack(a);
  EXPECT_EQ(pack.governance_modules,
            (std::vector<std::string>{"privacy", "economy"}));
  EXPECT_EQ(pack.region_regulations.at("eu"), "gdpr");

  // Wire round trip.
  auto decoded = GovernancePack::decode(pack.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), pack);

  // Platform B adopts A's governance layout (§III-C portability).
  Metaverse b(test_config());
  ASSERT_TRUE(apply_governance_pack(b, decoded.value()).ok());
  EXPECT_EQ(b.governance().module_count(), 2u);
  EXPECT_EQ(b.policy().region_module("eu")->name(), "gdpr");
  EXPECT_EQ(b.policy().region_module("california")->name(), "ccpa");

  // Re-applying is idempotent (no duplicate concerns).
  ASSERT_TRUE(apply_governance_pack(b, decoded.value()).ok());
  EXPECT_EQ(b.governance().module_count(), 2u);
}

TEST(Portability, ComposedRegulationNamesResolve) {
  auto composed = regulation_by_name("gdpr+ccpa");
  ASSERT_TRUE(composed.ok());
  EXPECT_TRUE(composed.value()->has_rule("consent_required"));
  EXPECT_TRUE(composed.value()->has_rule("sale_opt_out"));
  EXPECT_FALSE(regulation_by_name("napoleonic_code").ok());
}

TEST(Portability, ApplyIsAllOrNothing) {
  Metaverse mv(test_config());
  GovernancePack pack;
  pack.region_regulations["eu"] = "gdpr";
  pack.region_regulations["mars"] = "not_a_regulation";
  EXPECT_FALSE(apply_governance_pack(mv, pack).ok());
  // Nothing was bound: the resolvable region must not have been applied.
  EXPECT_EQ(mv.policy().region_count(), 0u);
}

TEST(Portability, DecodeRejectsGarbageAndTampering) {
  EXPECT_FALSE(GovernancePack::decode(Bytes{1, 2, 3}).ok());
  GovernancePack pack;
  pack.governance_modules = {"privacy"};
  Bytes enc = pack.encode();
  enc.push_back(0x7);  // trailing byte
  EXPECT_FALSE(GovernancePack::decode(enc).ok());
}

TEST(EthicsReport, EmptyReportIsVacuouslyPerfect) {
  EthicsReport r;
  EXPECT_DOUBLE_EQ(r.overall_score(), 1.0);
  EXPECT_DOUBLE_EQ(r.layer_score(EthicalLayer::kHumanRights), 1.0);
}

TEST(Metaverse, IrbGatesUnapprovedPurposes) {
  auto config = test_config();
  config.require_irb_approval = true;
  Metaverse mv(config);
  std::vector<UserHandle> users;
  for (int i = 0; i < 4; ++i) users.push_back(mv.register_user("eu"));
  mv.set_consent(users[0].user_id, privacy::SensorType::kGaze, true);

  privacy::SensorSim sensors{Rng(5)};
  const auto traits = sensors.sample_traits();
  // Consent alone is not enough: the purpose lacks IRB approval.
  EXPECT_FALSE(mv.ingest(users[0].user_id, sensors.gaze(users[0].user_id, traits, 0))
                   .has_value());
  EXPECT_EQ(mv.irb_blocked(), 1u);

  // The community's review board approves the purpose by vote.
  const std::string purpose =
      mv.pipeline(users[0].user_id).policy(privacy::SensorType::kGaze)->purpose;
  auto proposal = mv.propose_purpose_approval(users[0].user_id, purpose);
  ASSERT_TRUE(proposal.ok());
  for (const auto& u : users) {
    ASSERT_TRUE(mv.governance()
                    .cast_vote(proposal.value(), u.account, dao::VoteChoice::kYes,
                               mv.clock().now())
                    .ok());
  }
  for (int t = 0; t < 110; ++t) mv.tick();
  ASSERT_TRUE(mv.finalize_governance(proposal.value()).ok());
  EXPECT_TRUE(mv.purpose_approved(purpose));

  // Subsampling PET (1/4) suppresses some, but releases now happen.
  int released = 0;
  for (int i = 0; i < 8; ++i) {
    released += mv.ingest(users[0].user_id,
                          sensors.gaze(users[0].user_id, traits, 10 + i))
                    .has_value();
  }
  EXPECT_GT(released, 0);
}

TEST(Metaverse, IrbOffApprovesEverything) {
  Metaverse mv(test_config());  // require_irb_approval = false
  EXPECT_TRUE(mv.purpose_approved("anything_at_all"));
}

TEST(Metaverse, ConsentChangesLeaveOnChainReceipts) {
  Metaverse mv(test_config());
  const UserHandle u = mv.register_user("eu");
  mv.set_consent(u.user_id, privacy::SensorType::kGaze, true);
  mv.set_consent(u.user_id, privacy::SensorType::kGaze, false);
  mv.set_consent(9999, privacy::SensorType::kGaze, true);  // unknown: no-op
  ASSERT_TRUE(mv.run_consensus_round());
  ledger::AuditQuery query(mv.chain());
  const auto records = query.by_subject(u.user_id);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].body.purpose, "consent_granted");
  EXPECT_EQ(records[1].body.purpose, "consent_withdrawn");
  // The pipeline actually honours the final (withdrawn) state.
  EXPECT_FALSE(mv.pipeline(u.user_id).policy(privacy::SensorType::kGaze)->consent_given);
}

TEST(Metaverse, PrivacyEpochsResetDpBudgets) {
  auto config = test_config();
  config.privacy_epoch = 10;
  Metaverse mv(config);
  const UserHandle u = mv.register_user("eu");
  // Meter the gaze channel tightly: budget for exactly one eps=1 release.
  auto policy = *mv.pipeline(u.user_id).policy(privacy::SensorType::kGaze);
  policy.consent_given = true;
  policy.transforms = {std::make_shared<privacy::LaplaceNoise>(1.0, 0.5)};
  policy.epsilon_budget = 1.0;
  mv.pipeline(u.user_id).set_policy(privacy::SensorType::kGaze, policy);

  privacy::SensorSim sensors{Rng(12)};
  const auto traits = sensors.sample_traits();
  int released = 0;
  for (int i = 0; i < 5; ++i) {
    released += mv.ingest(u.user_id, sensors.gaze(u.user_id, traits, i)).has_value();
  }
  EXPECT_EQ(released, 1);  // budget exhausted after one release
  for (int t = 0; t < 10; ++t) mv.tick();  // epoch boundary passes
  EXPECT_TRUE(mv.ingest(u.user_id, sensors.gaze(u.user_id, traits, 100)).has_value());
}

TEST(Metaverse, SealedGovernanceThroughFederatedDao) {
  auto config = test_config();
  config.governance.global_config.commit_reveal = true;
  config.governance.global_config.reveal_period = 30;
  Metaverse mv(config);
  std::vector<UserHandle> users;
  for (int i = 0; i < 4; ++i) users.push_back(mv.register_user("eu"));
  auto proposal = mv.propose_policy_swap(users[0].user_id, "eu",
                                         policy::make_gdpr_module());
  ASSERT_TRUE(proposal.ok());
  // Commit phase: nobody's choice is visible anywhere.
  std::vector<std::uint64_t> salts{11, 22, 33, 44};
  for (std::size_t i = 0; i < users.size(); ++i) {
    ASSERT_TRUE(mv.governance()
                    .commit_vote(proposal.value(), users[i].account,
                                 dao::Dao::make_commitment(dao::VoteChoice::kYes,
                                                           salts[i],
                                                           users[i].account),
                                 mv.clock().now())
                    .ok());
  }
  for (int t = 0; t < 55; ++t) mv.tick();  // voting window (50) closes
  for (std::size_t i = 0; i < users.size(); ++i) {
    ASSERT_TRUE(mv.governance()
                    .reveal_vote(proposal.value(), users[i].account,
                                 dao::VoteChoice::kYes, salts[i], mv.clock().now())
                    .ok());
  }
  for (int t = 0; t < 35; ++t) mv.tick();  // reveal window closes
  auto outcome = mv.finalize_governance(proposal.value());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().status, dao::ProposalStatus::kPassed);
  EXPECT_EQ(mv.policy().region_module("eu")->name(), "gdpr");
}

TEST(Metaverse, AuditFlowRoutesByUserRegion) {
  Metaverse mv(test_config());
  const UserHandle eu_user = mv.register_user("eu");
  const UserHandle us_user = mv.register_user("california");
  mv.policy().set_region_module("eu", policy::make_gdpr_module());
  mv.policy().set_region_module("california", policy::make_ccpa_module());

  policy::DataFlowEvent event;
  event.id = DataFlowId(1);
  event.category = "gaze";
  event.consent = false;  // GDPR violation, CCPA-tolerated
  event.pet_applied = true;
  event.declared_purpose = "service";
  event.purpose = "service";
  EXPECT_FALSE(mv.audit_flow(eu_user.user_id, event).empty());
  EXPECT_TRUE(mv.audit_flow(us_user.user_id, event).empty());
  EXPECT_TRUE(mv.audit_flow(9999, event).empty());  // unknown user: no-op
}

TEST(Metaverse, SnapshotAggregatesAcrossModules) {
  Metaverse mv(test_config());
  const auto empty = mv.snapshot();
  EXPECT_EQ(empty.users, 0u);
  EXPECT_EQ(empty.chain_height, 0);

  const UserHandle a = mv.register_user("eu");
  const UserHandle b = mv.register_user("eu");
  ASSERT_TRUE(mv.run_consensus_round());
  mv.report_misbehaviour(a.user_id, b.user_id, moderation::ReportKind::kSpam);
  for (int t = 0; t < 10; ++t) mv.tick();

  const auto s = mv.snapshot();
  EXPECT_EQ(s.users, 2u);
  EXPECT_EQ(s.chain_height, 1);
  EXPECT_GE(s.committed_txs, 2u);  // the two genesis grants
  EXPECT_GT(s.avg_reputation, 0.0);
  EXPECT_GE(s.moderation_resolved, 1u);
  EXPECT_GT(s.ethics_score, 0.0);
  EXPECT_EQ(s.now, mv.clock().now());
}

TEST(Metaverse, BusDeliversResolutionEvents) {
  Metaverse mv(test_config());
  const UserHandle a = mv.register_user("eu");
  const UserHandle b = mv.register_user("eu");
  int seen = 0;
  mv.bus().subscribe<moderation::Resolution>(
      [&](const moderation::Resolution&) { ++seen; });
  mv.report_misbehaviour(a.user_id, b.user_id, moderation::ReportKind::kSpam);
  for (int t = 0; t < 10; ++t) mv.tick();
  EXPECT_GE(seen, 1);
}

}  // namespace
}  // namespace mv::core
