// Snapshot sync tests: the verified-snapshot codec (strict decode, mutation
// fuzz), historical export through the retention ring, snapshot install +
// suffix replay on a fresh replica, the chunked transfer protocol under a
// lossy network, and the verified-signature cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "crypto/digest_lru.h"
#include "ledger/chain.h"
#include "ledger/mempool.h"
#include "ledger/snapshot.h"
#include "ledger/snapshot_sync.h"
#include "net/snapshot_transfer.h"

namespace mv::ledger {
namespace {

/// KV contract: method "put" writes the key named by the payload, "del"
/// erases it — exercises contract stores (including emptied ones) through
/// snapshots and the retention ring's undo path.
class KvContract final : public Contract {
 public:
  [[nodiscard]] std::string name() const override { return "kv"; }
  [[nodiscard]] Status call(CallContext& ctx, const std::string& method,
                            const Bytes& arg) const override {
    const std::string key(arg.begin(), arg.end());
    if (method == "put") {
      ctx.put(key, Bytes{0xAB, static_cast<std::uint8_t>(key.size())});
      return {};
    }
    if (method == "del") {
      ctx.erase(key);
      return {};
    }
    return Status::fail("kv.bad_method", method);
  }
};

/// A state with every section populated: balance-only, nonce-only and mixed
/// accounts, audit records, a populated store, an emptied store, burned fees.
LedgerState rich_state(std::size_t accounts = 16) {
  LedgerState s;
  for (std::size_t i = 0; i < accounts; ++i) {
    const crypto::Address a{0x1000 + i * 7};
    s.credit(a, 10 + i);
    if (i % 3 == 0) s.set_nonce(a, i + 1);
  }
  s.set_nonce(crypto::Address{0x9999}, 42);  // nonce-only account
  s.append_audit(StoredAuditRecord{
      crypto::Address{0x1000},
      AuditRecordBody{"gaze", "avatar_animation", 7, "laplace(eps=1.0)"}, 3});
  s.append_audit(StoredAuditRecord{
      crypto::Address{0x1007},
      AuditRecordBody{"spatial_map", "navigation", 9, "none"}, 5});
  s.store_put("kv", "alpha", Bytes{1, 2, 3});
  s.store_put("kv", "beta", Bytes{});
  s.store_put("drained", "gone", Bytes{4});
  s.store_erase("drained", "gone");  // empty store must survive the codec
  s.add_burned_fees(321);
  return s;
}

struct SyncFixture {
  Rng rng{4242};
  crypto::Wallet v0{rng};
  crypto::Wallet v1{rng};
  crypto::Wallet alice{rng};
  crypto::Wallet bob{rng};
  std::shared_ptr<ContractRegistry> contracts =
      std::make_shared<ContractRegistry>();
  ChainConfig config;
  LedgerState genesis;

  SyncFixture() {
    contracts->install(std::make_shared<KvContract>());
    config.validators = {v0.public_key(), v1.public_key()};
    config.state_retention = 8;
    genesis.credit(alice.address(), 1'000'000);
    genesis.credit(bob.address(), 500'000);
  }

  [[nodiscard]] Blockchain make_chain() {
    return Blockchain(config, contracts, genesis);
  }

  /// Append `blocks` blocks mixing transfers, contract puts/erases, and
  /// audit records, so every snapshot section changes block over block.
  void grow(Blockchain& chain, int blocks) {
    for (int b = 0; b < blocks; ++b) {
      const std::int64_t h = chain.height();
      const crypto::Wallet& proposer = (h % 2 == 0) ? v0 : v1;
      std::vector<Transaction> txs;
      txs.push_back(make_transfer(alice, chain.state().nonce(alice.address()),
                                  bob.address(), 3, 1, rng));
      const std::uint64_t bn = chain.state().nonce(bob.address());
      const std::string key = "k" + std::to_string(h % 5);
      const Bytes arg(key.begin(), key.end());
      switch (h % 3) {
        case 0:
          txs.push_back(make_contract_call(bob, bn, "kv", "put", arg, 1, rng));
          break;
        case 1:
          txs.push_back(make_contract_call(bob, bn, "kv", "del", arg, 1, rng));
          break;
        default:
          txs.push_back(make_audit_record(
              bob, bn, AuditRecordBody{"pose", "presence", 5, "none"}, 1, rng));
          break;
      }
      ASSERT_TRUE(
          chain.append(chain.assemble(proposer, txs, h, rng)).ok())
          << "block " << h;
    }
  }
};

// ---------------------------------------------------------- payload codec

TEST(SnapshotCodec, PayloadRoundTripReproducesCommitment) {
  const LedgerState state = rich_state();
  const Bytes payload = encode_snapshot_payload(state);
  auto decoded = decode_snapshot_payload(payload);
  ASSERT_TRUE(decoded.ok());
  // The differential oracle: the decoded state's incremental commitment must
  // equal a from-scratch rehash of the original.
  EXPECT_EQ(decoded.value().commitment(), state.full_rehash_commitment());
  // Decode/encode is the identity on canonical payloads.
  EXPECT_EQ(encode_snapshot_payload(decoded.value()), payload);
  // Structure survived, not just digests.
  EXPECT_EQ(decoded.value().audit_log().size(), 2u);
  ASSERT_NE(decoded.value().find_store("drained"), nullptr);
  EXPECT_TRUE(decoded.value().find_store("drained")->empty());
}

TEST(SnapshotCodec, EmptyStateRoundTrips) {
  LedgerState empty;
  auto decoded = decode_snapshot_payload(encode_snapshot_payload(empty));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().commitment(), empty.full_rehash_commitment());
}

TEST(SnapshotCodec, StrictDecodeBattery) {
  const auto code_of = [](const Bytes& payload) {
    auto r = decode_snapshot_payload(payload);
    return r.ok() ? std::string{} : r.error().code;
  };

  {  // unknown domain tag
    ByteWriter w;
    w.str("mv.snapshot.v2");
    EXPECT_EQ(code_of(w.take()), "snapshot.bad_tag");
  }
  {  // account count that cannot fit the remaining buffer
    ByteWriter w;
    w.str("mv.snapshot.v1");
    w.u64(1u << 30);
    EXPECT_EQ(code_of(w.take()), "snapshot.bad_count");
  }
  {  // flags outside {0,1}
    ByteWriter w;
    w.str("mv.snapshot.v1");
    w.u64(1);
    w.u64(7);  // addr
    w.u8(2);   // flags
    w.u64(0);  // nonce
    w.u64(0);  // audit count
    w.u32(0);  // contract count
    w.u64(0);  // burned
    EXPECT_EQ(code_of(w.take()), "snapshot.bad_flags");
  }
  {  // a leafless account entry is semantically inert — not canonical
    ByteWriter w;
    w.str("mv.snapshot.v1");
    w.u64(1);
    w.u64(7);
    w.u8(0);   // no balance
    w.u64(0);  // no nonce either
    w.u64(0);
    w.u32(0);
    w.u64(0);
    EXPECT_EQ(code_of(w.take()), "snapshot.bad_entry");
  }
  {  // addresses must be strictly ascending
    ByteWriter w;
    w.str("mv.snapshot.v1");
    w.u64(2);
    w.u64(9);
    w.u8(1);
    w.u64(5);
    w.u64(0);
    w.u64(7);  // out of order
    w.u8(1);
    w.u64(5);
    w.u64(0);
    w.u64(0);
    w.u32(0);
    w.u64(0);
    EXPECT_EQ(code_of(w.take()), "snapshot.bad_order");
  }
  {  // trailing bytes after a fully valid payload
    Bytes payload = encode_snapshot_payload(rich_state());
    payload.push_back(0x00);
    EXPECT_EQ(code_of(payload), "snapshot.trailing_bytes");
  }
  {  // truncation anywhere is an error, never a partial state
    const Bytes payload = encode_snapshot_payload(rich_state());
    Bytes truncated(payload.begin(), payload.end() - 1);
    EXPECT_FALSE(decode_snapshot_payload(truncated).ok());
  }
}

// ---------------------------------------------------------- manifest codec

TEST(SnapshotManifestCodec, RoundTripAndChunkRoot) {
  const LedgerState state = rich_state();
  const Snapshot snap = build_snapshot(state, 11, 64);
  ASSERT_GT(snap.manifest.chunk_count(), 2u);
  auto decoded = SnapshotManifest::decode(snap.manifest.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().height, 11);
  EXPECT_EQ(decoded.value().commitment, state.commitment());
  EXPECT_EQ(decoded.value().chunk_digests, snap.manifest.chunk_digests);
  EXPECT_EQ(decoded.value().chunk_root(), snap.manifest.chunk_root());
  EXPECT_EQ(decoded.value().encode(), snap.manifest.encode());
}

TEST(SnapshotManifestCodec, StrictDecodeBattery) {
  const Snapshot snap = build_snapshot(rich_state(), 5, 64);
  const auto code_of = [](const Bytes& bytes) {
    auto r = SnapshotManifest::decode(bytes);
    return r.ok() ? std::string{} : r.error().code;
  };

  {  // unknown version byte
    Bytes enc = snap.manifest.encode();
    enc[0] = 9;
    EXPECT_EQ(code_of(enc), "snapshot.bad_version");
  }
  {  // negative height
    SnapshotManifest m = snap.manifest;
    m.height = -1;
    EXPECT_EQ(code_of(m.encode()), "snapshot.bad_height");
  }
  {  // zero chunk size breaks the geometry invariant
    SnapshotManifest m = snap.manifest;
    m.chunk_size = 0;
    EXPECT_EQ(code_of(m.encode()), "snapshot.bad_geometry");
  }
  {  // chunk count no longer matches ceil(total/chunk_size)
    SnapshotManifest m = snap.manifest;
    m.chunk_digests.pop_back();
    EXPECT_EQ(code_of(m.encode()), "snapshot.bad_geometry");
  }
  {  // total_bytes inconsistent with the digest list
    SnapshotManifest m = snap.manifest;
    m.total_bytes += m.chunk_size;
    EXPECT_EQ(code_of(m.encode()), "snapshot.bad_geometry");
  }
  {  // trailing bytes
    Bytes enc = snap.manifest.encode();
    enc.push_back(0);
    EXPECT_EQ(code_of(enc), "snapshot.trailing_bytes");
  }
  {  // truncation
    Bytes enc = snap.manifest.encode();
    enc.pop_back();
    EXPECT_FALSE(SnapshotManifest::decode(enc).ok());
  }
}

TEST(SnapshotManifestCodec, EveryByteMutationIsCaughtSomewhere) {
  // The full trust chain, adversarially: flip each manifest byte in turn.
  // Every mutation must be stopped by one of the gates a syncing replica
  // runs — strict decode, the header binding (commitment root / height), or
  // chunk verification during assembly. No byte may be semantically inert.
  const Snapshot snap = build_snapshot(rich_state(), 5, 64);
  const Bytes enc = snap.manifest.encode();
  for (std::size_t i = 0; i < enc.size(); ++i) {
    Bytes mutated = enc;
    mutated[i] ^= 0x01;
    auto decoded = SnapshotManifest::decode(mutated);
    if (!decoded.ok()) continue;  // gate 1: strict decode
    const bool header_binding_catches =
        decoded.value().commitment.root != snap.manifest.commitment.root ||
        decoded.value().height != snap.manifest.height;
    const bool assembly_catches =
        !assemble_snapshot(decoded.value(), snap.chunks).ok();
    EXPECT_TRUE(header_binding_catches || assembly_catches)
        << "byte " << i << " mutated without consequence";
  }
}

// ---------------------------------------------------------- chunk assembly

TEST(SnapshotAssembly, VerifiesAndDecodes) {
  const LedgerState state = rich_state();
  const Snapshot snap = build_snapshot(state, 3, 128);
  auto assembled = assemble_snapshot(snap.manifest, snap.chunks);
  ASSERT_TRUE(assembled.ok());
  EXPECT_EQ(assembled.value().commitment(), state.full_rehash_commitment());
}

TEST(SnapshotAssembly, RejectsWrongChunkSets) {
  const Snapshot snap = build_snapshot(rich_state(), 3, 64);
  ASSERT_GT(snap.chunks.size(), 2u);

  {  // missing chunk
    std::vector<Bytes> chunks(snap.chunks.begin(), snap.chunks.end() - 1);
    EXPECT_EQ(assemble_snapshot(snap.manifest, chunks).error().code,
              "snapshot.bad_chunk_count");
  }
  {  // two chunks swapped: index is hashed into the digest, so a valid chunk
     // replayed at another position cannot pass
    std::vector<Bytes> chunks = snap.chunks;
    std::swap(chunks[0], chunks[1]);
    EXPECT_EQ(assemble_snapshot(snap.manifest, chunks).error().code,
              "snapshot.bad_chunk");
  }
  {  // wrong length
    std::vector<Bytes> chunks = snap.chunks;
    chunks[0].push_back(0);
    EXPECT_EQ(assemble_snapshot(snap.manifest, chunks).error().code,
              "snapshot.bad_chunk_size");
  }
  {  // corrupted byte
    std::vector<Bytes> chunks = snap.chunks;
    chunks[1][0] ^= 0xFF;
    EXPECT_EQ(assemble_snapshot(snap.manifest, chunks).error().code,
              "snapshot.bad_chunk");
  }
}

TEST(SnapshotAssembly, TenThousandAccountMutationFuzz) {
  // Every single-byte mutation of a large snapshot must be rejected before
  // any state is installed. The per-chunk digest is the first gate: sweep
  // every byte against it, then drive a sampled subset through the full
  // assemble path (and one through init_from_snapshot) end to end.
  LedgerState state;
  for (std::size_t i = 0; i < 10'000; ++i) {
    state.credit(crypto::Address{0x10000 + i * 3}, 1 + (i % 97));
  }
  const Snapshot snap = build_snapshot(state, 0, 4096);
  ASSERT_GT(snap.chunks.size(), 10u);

  std::size_t swept = 0;
  for (std::uint32_t c = 0; c < snap.chunks.size(); ++c) {
    Bytes chunk = snap.chunks[c];
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      const std::uint8_t original = chunk[i];
      chunk[i] ^= 0xFF;
      ASSERT_NE(snapshot_chunk_digest(c, chunk), snap.manifest.chunk_digests[c])
          << "chunk " << c << " byte " << i;
      chunk[i] = original;
      ++swept;
    }
  }
  EXPECT_EQ(swept, snap.manifest.total_bytes);

  // Sampled end-to-end confirmation that the digest mismatch is fatal.
  for (std::size_t pos = 0; pos < snap.manifest.total_bytes; pos += 4099) {
    std::vector<Bytes> chunks = snap.chunks;
    chunks[pos / 4096][pos % 4096] ^= 0x01;
    EXPECT_EQ(assemble_snapshot(snap.manifest, chunks).error().code,
              "snapshot.bad_chunk");
  }
}

TEST(SnapshotAssembly, PayloadMutationsHaveNoInertBytes) {
  // Below the chunk layer: even if an attacker could forge chunk digests,
  // the payload itself has no semantically inert bytes — any flip either
  // fails strict decode or changes the commitment (and then fails the
  // manifest binding).
  const LedgerState state = rich_state();
  const Bytes payload = encode_snapshot_payload(state);
  const StateCommitment original = state.commitment();
  for (std::size_t i = 0; i < payload.size(); ++i) {
    Bytes mutated = payload;
    mutated[i] ^= 0x01;
    auto decoded = decode_snapshot_payload(mutated);
    if (!decoded.ok()) continue;
    EXPECT_NE(decoded.value().commitment(), original)
        << "payload byte " << i << " is inert";
  }
}

// ------------------------------------------------- historical state access

TEST(SnapshotExport, ServesRetainedHeightsExactly) {
  SyncFixture f;
  Blockchain chain = f.make_chain();
  f.grow(chain, 12);
  const std::int64_t tip = chain.height() - 1;

  for (std::int64_t h = tip - 8; h <= tip; ++h) {
    auto snap = chain.export_snapshot(h, 256);
    ASSERT_TRUE(snap.ok()) << "height " << h;
    EXPECT_EQ(snap.value().manifest.height, h);
    auto state = assemble_snapshot(snap.value().manifest, snap.value().chunks);
    ASSERT_TRUE(state.ok()) << "height " << h;
    // The exported commitment must be the one retained when the block
    // committed (absent only at the very edge of the ring).
    if (const StateCommitment* expected = chain.commitment_at(h)) {
      EXPECT_EQ(state.value().commitment(), *expected) << "height " << h;
    }
    // Must match the header the block chain itself committed to.
    EXPECT_EQ(snap.value().manifest.commitment.root,
              chain.block_at(h)->header.state_root);
  }
  EXPECT_EQ(chain.export_snapshot(tip - 9).error().code, "chain.stale_height");
  EXPECT_EQ(chain.export_snapshot(chain.height()).error().code,
            "chain.bad_height");
  EXPECT_EQ(chain.export_snapshot(-1).error().code, "chain.bad_height");
  // Historical export leaves the live chain untouched.
  EXPECT_EQ(chain.state().commitment(), *chain.commitment_at(tip));
}

TEST(SnapshotExport, RetentionZeroKeepsTipOnlyBehaviour) {
  SyncFixture f;
  f.config.state_retention = 0;
  Blockchain chain = f.make_chain();
  f.grow(chain, 4);
  const std::int64_t tip = chain.height() - 1;
  EXPECT_TRUE(chain.export_snapshot(tip).ok());
  EXPECT_EQ(chain.export_snapshot(tip - 1).error().code, "chain.stale_height");
  EXPECT_EQ(chain.prove_account(f.alice.address(), tip - 1).error().code,
            "chain.stale_height");
}

// ------------------------------------------------- install + suffix replay

TEST(SnapshotInstall, FreshReplicaReachesIdenticalCommitment) {
  SyncFixture f;
  Blockchain source = f.make_chain();
  f.grow(source, 12);
  const std::int64_t snap_height = source.height() - 3;
  auto snap = source.export_snapshot(snap_height, 512);
  ASSERT_TRUE(snap.ok());

  Blockchain replica = f.make_chain();
  const BlockHeader& anchor = source.block_at(snap_height)->header;
  ASSERT_TRUE(
      replica.init_from_snapshot(snap.value().manifest, snap.value().chunks,
                                 anchor)
          .ok());
  EXPECT_EQ(replica.base_height(), snap_height + 1);
  EXPECT_EQ(replica.height(), snap_height + 1);
  EXPECT_EQ(replica.tip_hash(), anchor.hash());

  // Replay only the suffix; the replica must land byte-identical to the
  // source tip (the acceptance oracle for the whole feature).
  auto applied = replica.import_blocks(source.export_blocks_from(replica.height()));
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value(), 2u);  // blocks snap_height+1 .. tip
  EXPECT_EQ(replica.height(), source.height());
  EXPECT_EQ(replica.tip_hash(), source.tip_hash());
  EXPECT_EQ(replica.state().commitment(), source.state().commitment());
  EXPECT_EQ(replica.state().commitment(),
            source.state().full_rehash_commitment());

  // The snapshot-initialized replica keeps growing and serving proofs.
  f.grow(replica, 2);
  EXPECT_TRUE(replica.prove_account(f.alice.address(), replica.height() - 1).ok());
  // Blocks below the base are pruned, not silently wrong.
  EXPECT_EQ(replica.block_at(0), nullptr);
  EXPECT_EQ(replica.prove_tx(0, 0).error().code, "chain.pruned_height");
}

TEST(SnapshotInstall, RejectsBadAnchorsAndCorruptChunks) {
  SyncFixture f;
  Blockchain source = f.make_chain();
  f.grow(source, 6);
  const std::int64_t snap_height = source.height() - 2;
  auto snap = source.export_snapshot(snap_height, 512);
  ASSERT_TRUE(snap.ok());
  const BlockHeader& anchor = source.block_at(snap_height)->header;

  {  // a header from another height fails the manifest binding
    Blockchain replica = f.make_chain();
    EXPECT_EQ(replica
                  .init_from_snapshot(snap.value().manifest, snap.value().chunks,
                                      source.block_at(snap_height - 1)->header)
                  .error()
                  .code,
              "chain.bad_anchor");
  }
  {  // a tampered anchor signature is rejected before any state installs
    Blockchain replica = f.make_chain();
    BlockHeader forged = anchor;
    forged.proposer_sig.s ^= 1;
    EXPECT_EQ(replica
                  .init_from_snapshot(snap.value().manifest, snap.value().chunks,
                                      forged)
                  .error()
                  .code,
              "chain.bad_anchor");
  }
  {  // a corrupted chunk dies at the digest gate
    Blockchain replica = f.make_chain();
    std::vector<Bytes> chunks = snap.value().chunks;
    chunks.back()[0] ^= 0x10;
    EXPECT_EQ(
        replica.init_from_snapshot(snap.value().manifest, chunks, anchor)
            .error()
            .code,
        "snapshot.bad_chunk");
    EXPECT_EQ(replica.height(), 0);  // nothing installed
  }
  {  // a chain that already holds blocks refuses installation
    Blockchain replica = f.make_chain();
    f.grow(replica, 1);
    EXPECT_EQ(replica
                  .init_from_snapshot(snap.value().manifest, snap.value().chunks,
                                      anchor)
                  .error()
                  .code,
              "chain.not_fresh");
  }
}

// ------------------------------------------------------ transfer protocol

struct NetFixture {
  SyncFixture ledger;
  SimClock clock;
  net::Network net;
  Blockchain source;
  Blockchain replica;
  LightClient lc;

  explicit NetFixture(double drop_rate, int source_blocks = 12)
      : net(clock, Rng(777), net::LinkParams{1.0, 0.5, drop_rate}),
        source(ledger.make_chain()),
        replica(ledger.make_chain()),
        lc(LightClientConfig{{ledger.v0.public_key(), ledger.v1.public_key()},
                             source.genesis_hash()}) {
    ledger.grow(source, source_blocks);
    for (const Block& b : source.blocks()) {
      EXPECT_TRUE(lc.accept_header(b.header).ok());
    }
  }

  /// Drive the simulation until the catch-up finishes or `max_ticks` pass.
  void run(SnapshotCatchup& catchup, Tick max_ticks = 20000) {
    for (Tick t = 0; t < max_ticks && !catchup.done() && !catchup.failed();
         ++t) {
      clock.advance(1);
      net.step();
      catchup.tick();
    }
  }
};

TEST(SnapshotTransfer, LossyNetworkCatchUpConverges) {
  NetFixture f(/*drop_rate=*/0.12);
  const std::int64_t snap_height = f.source.height() - 3;

  net::SnapshotServer server(f.net,
                             make_snapshot_source(f.source, /*chunk_size=*/512));
  SnapshotCatchup catchup(f.net, f.replica, f.lc,
                          net::SnapshotTransferConfig{4, 8, 8, 4});
  const NodeId server_node =
      f.net.add_node([&](const net::Message& m) { server.handle(m); });
  const NodeId client_node =
      f.net.add_node([&](const net::Message& m) { catchup.handle(m); });
  server.bind(server_node);
  catchup.bind(client_node);

  ASSERT_TRUE(catchup.start(server_node, snap_height).ok());
  f.run(catchup);
  ASSERT_TRUE(catchup.done())
      << (catchup.failure() ? catchup.failure()->to_string() : "timed out");

  // The replica converged byte-identically to the source tip...
  EXPECT_EQ(f.replica.height(), f.source.height());
  EXPECT_EQ(f.replica.tip_hash(), f.source.tip_hash());
  EXPECT_EQ(f.replica.state().commitment(), f.source.state().commitment());
  // ...and identically to a replica that replayed the full history.
  Blockchain full_replay = f.ledger.make_chain();
  ASSERT_TRUE(full_replay.import_blocks(f.source.export_blocks()).ok());
  EXPECT_EQ(f.replica.state().commitment(), full_replay.state().commitment());

  // The network was genuinely lossy and the protocol genuinely retried.
  const net::NetworkStats& stats = f.net.stats();
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.snapshot_retries, 0u);
  EXPECT_EQ(stats.snapshot_chunks_verified, catchup.chunks_received());
  EXPECT_EQ(stats.snapshot_syncs_completed, 1u);
  EXPECT_EQ(stats.snapshot_syncs_failed, 0u);
}

TEST(SnapshotTransfer, QueueServedChunksConvergeAndShedRecoversViaRetry) {
  // Chunk serving runs as kSnapshotServe jobs on a worker. The lane's depth
  // ceiling is tighter than the client's request window, so bursts may be
  // shed — a shed serve answers a cheap busy NACK the client absorbs by
  // deferring and re-asking, and the sync must converge regardless.
  NetFixture f(/*drop_rate=*/0.0);
  const std::int64_t snap_height = f.source.height() - 2;

  JobQueueConfig qconfig;
  qconfig.threads = 1;
  qconfig.limit(JobClass::kSnapshotServe).max_depth = 2;
  JobQueue queue(qconfig);
  net::SnapshotServer server(f.net, make_snapshot_source(f.source, 512),
                             &queue);
  SnapshotCatchup catchup(f.net, f.replica, f.lc,
                          net::SnapshotTransferConfig{4, 8, 8, 4});
  const NodeId server_node =
      f.net.add_node([&](const net::Message& m) { server.handle(m); });
  const NodeId client_node =
      f.net.add_node([&](const net::Message& m) { catchup.handle(m); });
  server.bind(server_node);
  catchup.bind(client_node);

  ASSERT_TRUE(catchup.start(server_node, snap_height).ok());
  for (Tick t = 0; t < 20000 && !catchup.done() && !catchup.failed(); ++t) {
    f.clock.advance(1);
    f.net.step();
    // Let admitted serves answer before the client scans for timeouts; shed
    // ones stay unanswered on purpose.
    queue.drain();
    catchup.tick();
  }
  ASSERT_TRUE(catchup.done())
      << (catchup.failure() ? catchup.failure()->to_string() : "timed out");
  queue.drain();  // no serve may outlive the server it references
  EXPECT_EQ(f.replica.height(), f.source.height());
  EXPECT_EQ(f.replica.tip_hash(), f.source.tip_hash());
  EXPECT_EQ(f.replica.state().commitment(), f.source.state().commitment());
  EXPECT_GT(queue.stats().of(JobClass::kSnapshotServe).completed, 0u);
}

TEST(SnapshotBusyNack, DefersWithoutBurningRetryBudget) {
  // A saturated serve lane answers chunk requests with an explicit busy
  // NACK. The client must park those requests on a backoff timer — not
  // charge its retry budget (that bounds loss/corruption, and "busy" is
  // neither) and not let its timeout machinery double-fire on them — and
  // the sync must complete once the server frees up.
  NetFixture f(/*drop_rate=*/0.0);
  const std::int64_t snap_height = f.source.height() - 2;

  JobQueueConfig qconfig;
  qconfig.threads = 1;
  qconfig.limit(JobClass::kSnapshotServe).max_depth = 1;
  JobQueue queue(qconfig);
  net::SnapshotServer server(f.net, make_snapshot_source(f.source, 512),
                             &queue);
  SnapshotCatchup catchup(f.net, f.replica, f.lc,
                          net::SnapshotTransferConfig{4, 8, 6, 4});
  const NodeId server_node =
      f.net.add_node([&](const net::Message& m) { server.handle(m); });
  const NodeId client_node =
      f.net.add_node([&](const net::Message& m) { catchup.handle(m); });
  server.bind(server_node);
  catchup.bind(client_node);

  // Pin the single worker, then fill the lane's depth allowance: every chunk
  // request from here until release is answered busy, deterministically.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ASSERT_TRUE(queue.submit(JobClass::kSnapshotServe, [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  }));
  while (queue.stats().of(JobClass::kSnapshotServe).depth > 0) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(queue.submit(JobClass::kSnapshotServe, [] {}));

  ASSERT_TRUE(catchup.start(server_node, snap_height).ok());
  bool released = false;
  for (Tick t = 0; t < 20000 && !catchup.done() && !catchup.failed(); ++t) {
    f.clock.advance(1);
    f.net.step();
    if (t == 60) {
      {
        std::lock_guard<std::mutex> lock(mu);
        release = true;
      }
      cv.notify_all();
      released = true;
    }
    if (released) queue.drain();
    catchup.tick();
  }
  ASSERT_TRUE(catchup.done())
      << (catchup.failure() ? catchup.failure()->to_string() : "timed out");
  queue.drain();

  EXPECT_EQ(f.replica.height(), f.source.height());
  EXPECT_EQ(f.replica.tip_hash(), f.source.tip_hash());
  const net::NetworkStats& stats = f.net.stats();
  // The busy window really happened, and it cost deferrals, not retries:
  // every NACKed request was parked and re-sent, never timed out.
  EXPECT_GT(stats.snapshot_busy_nacks, 0u);
  EXPECT_EQ(stats.snapshot_retries, 0u);
  EXPECT_EQ(stats.snapshot_syncs_completed, 1u);
  EXPECT_GT(queue.stats().of(JobClass::kSnapshotServe).shed(), 0u);
}

TEST(SnapshotTransfer, CorruptedChunksAreReRequested) {
  NetFixture f(/*drop_rate=*/0.0);
  const std::int64_t snap_height = f.source.height() - 1;

  net::SnapshotServer server(f.net, make_snapshot_source(f.source, 512));
  // The first two servings of chunk 0 arrive corrupted (after the manifest
  // digests were computed) — in-flight corruption the client must detect,
  // count, and survive by re-requesting.
  int faults_left = 2;
  server.set_chunk_fault([&](std::uint32_t index, Bytes& data) {
    if (index == 0 && faults_left > 0) {
      --faults_left;
      data[0] ^= 0xFF;
    }
  });
  SnapshotCatchup catchup(f.net, f.replica, f.lc,
                          net::SnapshotTransferConfig{4, 8, 8, 4});
  const NodeId server_node =
      f.net.add_node([&](const net::Message& m) { server.handle(m); });
  const NodeId client_node =
      f.net.add_node([&](const net::Message& m) { catchup.handle(m); });
  server.bind(server_node);
  catchup.bind(client_node);

  ASSERT_TRUE(catchup.start(server_node, snap_height).ok());
  f.run(catchup);
  ASSERT_TRUE(catchup.done())
      << (catchup.failure() ? catchup.failure()->to_string() : "timed out");
  EXPECT_EQ(f.replica.state().commitment(), f.source.state().commitment());

  const net::NetworkStats& stats = f.net.stats();
  EXPECT_EQ(stats.snapshot_chunks_rejected, 2u);
  EXPECT_EQ(stats.snapshot_retries, 2u);
  EXPECT_EQ(stats.snapshot_syncs_completed, 1u);
}

TEST(SnapshotTransfer, PersistentCorruptionExhaustsRetriesAndFails) {
  NetFixture f(/*drop_rate=*/0.0);
  const std::int64_t snap_height = f.source.height() - 1;

  net::SnapshotServer server(f.net, make_snapshot_source(f.source, 512));
  server.set_chunk_fault([](std::uint32_t index, Bytes& data) {
    if (index == 0) data[0] ^= 0xFF;  // always corrupt chunk 0
  });
  SnapshotCatchup catchup(f.net, f.replica, f.lc,
                          net::SnapshotTransferConfig{4, 8, 3, 4});
  const NodeId server_node =
      f.net.add_node([&](const net::Message& m) { server.handle(m); });
  const NodeId client_node =
      f.net.add_node([&](const net::Message& m) { catchup.handle(m); });
  server.bind(server_node);
  catchup.bind(client_node);

  ASSERT_TRUE(catchup.start(server_node, snap_height).ok());
  f.run(catchup);
  ASSERT_TRUE(catchup.failed());
  EXPECT_EQ(catchup.failure()->code, "snapshot.timeout");
  // Nothing was installed: the replica is still fresh.
  EXPECT_EQ(f.replica.height(), 0);
  EXPECT_EQ(f.net.stats().snapshot_syncs_failed, 1u);
  EXPECT_GE(f.net.stats().snapshot_chunks_rejected, 3u);
}

TEST(SnapshotTransfer, ServedManifestForWrongStateIsRefused) {
  // A lying server: serves a manifest whose commitment does not match the
  // header the light client verified. The client must refuse before
  // requesting a single chunk.
  NetFixture f(/*drop_rate=*/0.0);
  const std::int64_t snap_height = f.source.height() - 1;

  // Tamper with the served manifest bytes: burned_fees +1 changes the
  // recombined root, which no longer matches the verified header.
  auto source_cb = make_snapshot_source(f.source, 512);
  net::SnapshotServer::Source lying = source_cb;
  lying.manifest = [&f](std::int64_t height) -> Bytes {
    auto exported = f.source.export_snapshot(height, 512);
    if (!exported.ok()) return {};
    SnapshotManifest forged = exported.value().manifest;
    forged.commitment.burned_fees += 1;
    return forged.encode();
  };
  net::SnapshotServer server(f.net, lying);
  SnapshotCatchup catchup(f.net, f.replica, f.lc, {});
  const NodeId server_node =
      f.net.add_node([&](const net::Message& m) { server.handle(m); });
  const NodeId client_node =
      f.net.add_node([&](const net::Message& m) { catchup.handle(m); });
  server.bind(server_node);
  catchup.bind(client_node);

  ASSERT_TRUE(catchup.start(server_node, snap_height).ok());
  f.run(catchup);
  ASSERT_TRUE(catchup.failed());
  EXPECT_EQ(catchup.failure()->code, "snapshot.untrusted_manifest");
  EXPECT_EQ(catchup.chunks_received(), 0u);
}

TEST(SnapshotTransfer, StartRequiresVerifiedHeader) {
  NetFixture f(/*drop_rate=*/0.0);
  SnapshotCatchup catchup(f.net, f.replica, f.lc, {});
  EXPECT_EQ(catchup.start(NodeId::invalid(), f.source.height() + 5).error().code,
            "snapshot.unknown_header");
}

TEST(SnapshotTransfer, StartRequiresPeers) {
  NetFixture f(/*drop_rate=*/0.0);
  SnapshotCatchup catchup(f.net, f.replica, f.lc, {});
  EXPECT_EQ(catchup.start(std::vector<NodeId>{}, f.source.height() - 1)
                .error()
                .code,
            "snapshot.no_peers");
}

// ------------------------------------------------------- swarm catch-up

/// NetFixture plus N servers sharing the source chain, each with a pinned
/// export cache (the swarm-serving configuration).
struct SwarmFixture : NetFixture {
  std::vector<std::unique_ptr<SnapshotExportCache>> caches;
  std::vector<std::unique_ptr<net::SnapshotServer>> servers;
  std::vector<NodeId> server_nodes;

  SwarmFixture(double drop_rate, std::size_t n_servers, int source_blocks = 12,
               std::size_t chunk_size = 256)
      : NetFixture(drop_rate, source_blocks) {
    for (std::size_t i = 0; i < n_servers; ++i) {
      caches.push_back(std::make_unique<SnapshotExportCache>());
      servers.push_back(std::make_unique<net::SnapshotServer>(
          net,
          make_snapshot_source(source, chunk_size, caches.back().get())));
      net::SnapshotServer& server = *servers.back();
      server_nodes.push_back(
          net.add_node([&server](const net::Message& m) { server.handle(m); }));
      servers.back()->bind(server_nodes.back());
    }
  }
};

TEST(SnapshotSwarm, StripedLossyCatchUpConvergesAcrossPeers) {
  // Four replicas advertise the snapshot; chunk requests stripe across all
  // of them under a per-peer in-flight cap, through 12% iid loss, and the
  // result is byte-identical to a full replay.
  SwarmFixture f(/*drop_rate=*/0.12, /*n_servers=*/4);
  const std::int64_t snap_height = f.source.height() - 3;

  SnapshotCatchup catchup(
      f.net, f.replica, f.lc,
      net::SnapshotTransferConfig{16, 8, 8, 4, /*per_peer_inflight=*/4});
  const NodeId client_node =
      f.net.add_node([&](const net::Message& m) { catchup.handle(m); });
  catchup.bind(client_node);

  ASSERT_TRUE(catchup.start(f.server_nodes, snap_height).ok());
  f.run(catchup);
  ASSERT_TRUE(catchup.done())
      << (catchup.failure() ? catchup.failure()->to_string() : "timed out");

  EXPECT_EQ(f.replica.height(), f.source.height());
  EXPECT_EQ(f.replica.tip_hash(), f.source.tip_hash());
  EXPECT_EQ(f.replica.state().commitment(), f.source.state().commitment());
  Blockchain full_replay = f.ledger.make_chain();
  ASSERT_TRUE(full_replay.import_blocks(f.source.export_blocks()).ok());
  EXPECT_EQ(f.replica.state().commitment(), full_replay.state().commitment());

  // The stripe genuinely spread: more than one peer served verified chunks
  // (a peer whose manifest response was lost sits the stripe out — that is
  // allowed, the rest carry it).
  std::size_t serving_peers = 0;
  std::size_t total_served = 0;
  for (const auto& p : catchup.peers()) {
    if (p.served > 0) ++serving_peers;
    total_served += p.served;
  }
  EXPECT_GT(serving_peers, 1u);
  EXPECT_EQ(total_served, catchup.chunks_received());
  EXPECT_GT(f.net.stats().dropped, 0u);
  EXPECT_EQ(f.net.stats().snapshot_syncs_completed, 1u);
}

TEST(SnapshotSwarm, ByzantinePeerIsDemotedWhileSyncCompletes) {
  // One of three replicas serves corrupt bytes for every chunk. Each bad
  // chunk is rejected at the digest gate and re-requested from a different
  // peer; the corrupt peer collects strikes until it is demoted, and the
  // sync still converges byte-identically off the honest peers.
  // 24 blocks at tiny chunks => enough chunks that the corrupt peer's
  // initial stripe alone crosses the demotion threshold.
  SwarmFixture f(/*drop_rate=*/0.0, /*n_servers=*/3, /*source_blocks=*/24,
                 /*chunk_size=*/64);
  const std::int64_t snap_height = f.source.height() - 2;
  f.servers[0]->set_chunk_fault(
      [](std::uint32_t, Bytes& data) { data[0] ^= 0xFF; });

  SnapshotCatchup catchup(
      f.net, f.replica, f.lc,
      net::SnapshotTransferConfig{12, 8, 8, 4, /*per_peer_inflight=*/8});
  const NodeId client_node =
      f.net.add_node([&](const net::Message& m) { catchup.handle(m); });
  catchup.bind(client_node);

  ASSERT_TRUE(catchup.start(f.server_nodes, snap_height).ok());
  f.run(catchup);
  ASSERT_TRUE(catchup.done())
      << (catchup.failure() ? catchup.failure()->to_string() : "timed out");

  EXPECT_EQ(f.replica.height(), f.source.height());
  EXPECT_EQ(f.replica.state().commitment(), f.source.state().commitment());
  // The byzantine peer was demoted and served nothing that verified; the
  // honest peers carried the sync.
  const auto& peers = catchup.peers();
  EXPECT_TRUE(peers[0].demoted);
  EXPECT_EQ(peers[0].served, 0u);
  EXPECT_FALSE(peers[1].demoted);
  EXPECT_FALSE(peers[2].demoted);
  EXPECT_EQ(peers[1].served + peers[2].served, catchup.chunks_received());
  const net::NetworkStats& stats = f.net.stats();
  EXPECT_GE(stats.snapshot_peers_demoted, 1u);
  EXPECT_GT(stats.snapshot_chunks_rejected, 0u);
  EXPECT_EQ(stats.snapshot_syncs_completed, 1u);
}

TEST(SnapshotSwarm, DemotedPeerRecoversAndIsPromotedBack) {
  // Regression for permanent demotion: a peer that hits one transient rough
  // patch (its first few chunk serves corrupt in flight) is demoted, then
  // serves clean chunks as last-resort capacity; after promote_after
  // consecutive clean serves it is promoted back to full duty instead of
  // carrying the demotion for the rest of the sync.
  SwarmFixture f(/*drop_rate=*/0.0, /*n_servers=*/2, /*source_blocks=*/24,
                 /*chunk_size=*/64);
  const std::int64_t snap_height = f.source.height() - 2;
  std::size_t faults_left = 2;
  f.servers[0]->set_chunk_fault([&](std::uint32_t, Bytes& data) {
    if (faults_left > 0) {
      --faults_left;
      data[0] ^= 0xFF;
    }
  });

  net::SnapshotTransferConfig cfg{12, 8, 8, 4, /*per_peer_inflight=*/4};
  cfg.demote_after = 2;
  cfg.promote_after = 3;
  SnapshotCatchup catchup(f.net, f.replica, f.lc, cfg);
  const NodeId client_node =
      f.net.add_node([&](const net::Message& m) { catchup.handle(m); });
  catchup.bind(client_node);

  ASSERT_TRUE(catchup.start(f.server_nodes, snap_height).ok());
  f.run(catchup);
  ASSERT_TRUE(catchup.done())
      << (catchup.failure() ? catchup.failure()->to_string() : "timed out");
  EXPECT_EQ(f.replica.height(), f.source.height());
  EXPECT_EQ(f.replica.state().commitment(), f.source.state().commitment());

  // The transiently-faulty peer was demoted, recovered through clean
  // serves, and finished the sync in good standing with real contributions.
  const auto& peers = catchup.peers();
  EXPECT_FALSE(peers[0].demoted);
  EXPECT_EQ(peers[0].strikes, 0u);
  EXPECT_GT(peers[0].served, cfg.promote_after);
  const net::NetworkStats& stats = f.net.stats();
  EXPECT_GE(stats.snapshot_peers_demoted, 1u);
  EXPECT_GE(stats.snapshot_peers_promoted, 1u);
  EXPECT_EQ(stats.snapshot_syncs_completed, 1u);
}

TEST(SnapshotSwarm, BusyPeerReroutesInsteadOfFailing) {
  // Regression for the single-peer dead end: when a server's busy-defer
  // budget ran out the old client failed the sync outright. With a peer
  // set, a busy NACK re-aims the request at another peer and the sync
  // completes without charging the retry budget.
  SwarmFixture f(/*drop_rate=*/0.0, /*n_servers=*/1);
  const std::int64_t snap_height = f.source.height() - 2;

  // Server 0 is wrapped in a saturated queue: its worker is pinned and the
  // lane is full, so every chunk request it sees is answered with a busy
  // NACK for the whole test.
  JobQueueConfig qconfig;
  qconfig.threads = 1;
  qconfig.limit(JobClass::kSnapshotServe).max_depth = 1;
  JobQueue queue(qconfig);
  SnapshotExportCache busy_cache;
  net::SnapshotServer busy_server(
      f.net, make_snapshot_source(f.source, 256, &busy_cache), &queue);
  const NodeId busy_node =
      f.net.add_node([&](const net::Message& m) { busy_server.handle(m); });
  busy_server.bind(busy_node);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ASSERT_TRUE(queue.submit(JobClass::kSnapshotServe, [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  }));
  while (queue.stats().of(JobClass::kSnapshotServe).depth > 0) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(queue.submit(JobClass::kSnapshotServe, [] {}));

  SnapshotCatchup catchup(
      f.net, f.replica, f.lc,
      net::SnapshotTransferConfig{8, 8, 6, 4, /*per_peer_inflight=*/8});
  const NodeId client_node =
      f.net.add_node([&](const net::Message& m) { catchup.handle(m); });
  catchup.bind(client_node);

  ASSERT_TRUE(
      catchup.start(std::vector<NodeId>{busy_node, f.server_nodes[0]},
                    snap_height)
          .ok());
  f.run(catchup);
  ASSERT_TRUE(catchup.done())
      << (catchup.failure() ? catchup.failure()->to_string() : "timed out");
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  queue.drain();  // no serve may outlive the server it references

  EXPECT_EQ(f.replica.height(), f.source.height());
  EXPECT_EQ(f.replica.state().commitment(), f.source.state().commitment());
  const net::NetworkStats& stats = f.net.stats();
  // Busy answers were re-aimed at the healthy peer — never parked into the
  // retry budget, never fatal.
  EXPECT_GT(stats.snapshot_busy_nacks, 0u);
  EXPECT_GT(stats.snapshot_busy_reroutes, 0u);
  EXPECT_EQ(stats.snapshot_retries, 0u);
  EXPECT_EQ(stats.snapshot_syncs_failed, 0u);
  EXPECT_EQ(catchup.peers()[0].served, 0u);
  EXPECT_EQ(catchup.peers()[1].served, catchup.chunks_received());
}

TEST(SnapshotSwarm, SinglePersistentlyBusyPeerIsStillADeadEnd) {
  // The busy-defer cap keeps its original meaning when there is nowhere to
  // reroute: one peer, permanently saturated, must fail the sync instead of
  // deferring forever.
  NetFixture f(/*drop_rate=*/0.0);
  const std::int64_t snap_height = f.source.height() - 2;

  JobQueueConfig qconfig;
  qconfig.threads = 1;
  qconfig.limit(JobClass::kSnapshotServe).max_depth = 1;
  JobQueue queue(qconfig);
  net::SnapshotServer server(f.net, make_snapshot_source(f.source, 512),
                             &queue);
  const NodeId server_node =
      f.net.add_node([&](const net::Message& m) { server.handle(m); });
  server.bind(server_node);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ASSERT_TRUE(queue.submit(JobClass::kSnapshotServe, [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  }));
  while (queue.stats().of(JobClass::kSnapshotServe).depth > 0) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(queue.submit(JobClass::kSnapshotServe, [] {}));

  SnapshotCatchup catchup(f.net, f.replica, f.lc,
                          net::SnapshotTransferConfig{4, 8, 6, 4});
  const NodeId client_node =
      f.net.add_node([&](const net::Message& m) { catchup.handle(m); });
  catchup.bind(client_node);

  ASSERT_TRUE(catchup.start(server_node, snap_height).ok());
  f.run(catchup);
  ASSERT_TRUE(catchup.failed());
  EXPECT_EQ(catchup.failure()->code, "snapshot.server_busy");
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  queue.drain();
  EXPECT_EQ(f.replica.height(), 0);
  EXPECT_EQ(f.net.stats().snapshot_syncs_failed, 1u);
}

// --------------------------------------------------------- diff snapshots

TEST(SnapshotDiff, FetchesOnlyChangedChunksAndInstallsIdentically) {
  // A replica holding an older snapshot re-syncs to a newer height. Chunks
  // whose digests already match the target manifest are reused from the
  // local base; exactly the changed ones cross the wire, and the installed
  // state is byte-identical to the source.
  // The snapshot byte stream is fixed-width, so a bulky append-only audit
  // log sandwiched between the constant-size account section and the
  // mutating store tail keeps both its offsets and its bytes across a few
  // blocks of ordinary traffic — that middle run is what the diff reuses.
  SwarmFixture f(/*drop_rate=*/0.0, /*n_servers=*/2, /*source_blocks=*/2);
  const std::size_t headers_seen = f.source.blocks().size();
  const std::string blob(48, 'x');
  for (int b = 0; b < 8; ++b) {
    const std::int64_t h = f.source.height();
    const crypto::Wallet& proposer = (h % 2 == 0) ? f.ledger.v0 : f.ledger.v1;
    std::vector<Transaction> txs;
    std::uint64_t nonce = f.source.state().nonce(f.ledger.alice.address());
    for (int i = 0; i < 3; ++i) {
      txs.push_back(make_audit_record(
          f.ledger.alice, nonce++,
          AuditRecordBody{"pose." + blob, "presence." + blob, 5,
                          "laplace." + blob},
          1, f.ledger.rng));
    }
    ASSERT_TRUE(
        f.source.append(f.source.assemble(proposer, txs, h, f.ledger.rng))
            .ok());
  }
  auto base = f.source.export_snapshot(f.source.height() - 1, 256);
  ASSERT_TRUE(base.ok()) << base.error().to_string();

  // A few blocks of ordinary traffic on top: the delta the diff must fetch.
  f.ledger.grow(f.source, 4);
  for (std::size_t i = headers_seen; i < f.source.blocks().size(); ++i) {
    ASSERT_TRUE(f.lc.accept_header(f.source.blocks()[i].header).ok());
  }
  const std::int64_t snap_height = f.source.height() - 2;
  auto target = f.source.export_snapshot(snap_height, 256);
  ASSERT_TRUE(target.ok());
  // The delta must be real but strictly smaller than the snapshot.
  std::size_t expected_reused = 0;
  const auto& base_digests = base.value().manifest.chunk_digests;
  const auto& target_digests = target.value().manifest.chunk_digests;
  for (std::size_t i = 0;
       i < std::min(base_digests.size(), target_digests.size()); ++i) {
    if (base_digests[i] == target_digests[i]) ++expected_reused;
  }
  ASSERT_GT(expected_reused, 0u) << "base shares no chunks; weaken the test";
  ASSERT_LT(expected_reused, target_digests.size());

  SnapshotCatchup catchup(
      f.net, f.replica, f.lc,
      net::SnapshotTransferConfig{8, 8, 8, 4, /*per_peer_inflight=*/4});
  const NodeId client_node =
      f.net.add_node([&](const net::Message& m) { catchup.handle(m); });
  catchup.bind(client_node);
  catchup.set_diff_base(std::move(base).value());

  ASSERT_TRUE(catchup.start(f.server_nodes, snap_height).ok());
  f.run(catchup);
  ASSERT_TRUE(catchup.done())
      << (catchup.failure() ? catchup.failure()->to_string() : "timed out");

  EXPECT_EQ(f.replica.height(), f.source.height());
  EXPECT_EQ(f.replica.tip_hash(), f.source.tip_hash());
  EXPECT_EQ(f.replica.state().commitment(), f.source.state().commitment());

  // The fetch count is exact: every matching chunk was reused, every
  // changed one was served, nothing twice (no loss in this test).
  const net::NetworkStats& stats = f.net.stats();
  EXPECT_EQ(stats.snapshot_diff_chunks_reused, expected_reused);
  EXPECT_EQ(stats.snapshot_chunks_served,
            target_digests.size() - expected_reused);
  EXPECT_EQ(catchup.chunks_received(), target_digests.size());
}

TEST(SnapshotDiff, StaleBaseDegradesToFullFetch) {
  // A diff base with a different chunk geometry shares no digests: nothing
  // prefills, everything is fetched, and the sync still converges.
  SwarmFixture f(/*drop_rate=*/0.0, /*n_servers=*/1);
  const std::int64_t snap_height = f.source.height() - 2;
  auto base = f.source.export_snapshot(snap_height - 3, 128);  // other size
  ASSERT_TRUE(base.ok());

  SnapshotCatchup catchup(f.net, f.replica, f.lc,
                          net::SnapshotTransferConfig{4, 8, 8, 4});
  const NodeId client_node =
      f.net.add_node([&](const net::Message& m) { catchup.handle(m); });
  catchup.bind(client_node);
  catchup.set_diff_base(std::move(base).value());

  ASSERT_TRUE(catchup.start(f.server_nodes, snap_height).ok());
  f.run(catchup);
  ASSERT_TRUE(catchup.done());
  EXPECT_EQ(f.net.stats().snapshot_diff_chunks_reused, 0u);
  EXPECT_EQ(f.replica.state().commitment(), f.source.state().commitment());
}

// ------------------------------------------------------ pinned export cache

TEST(SnapshotExportCachePinning, ServesConsistentlyPastRetention) {
  // A sync that started inside the retention window keeps being served from
  // the pinned export while the chain commits past it — the direct export
  // is already stale, the cached one is not.
  SyncFixture f;
  Blockchain chain = f.make_chain();
  f.grow(chain, 12);
  const std::int64_t snap_height = chain.height() - 1;

  SnapshotExportCache cache(/*capacity=*/2);
  auto source = make_snapshot_source(chain, 256, &cache);
  const Bytes manifest_bytes = source.manifest(snap_height);
  ASSERT_FALSE(manifest_bytes.empty());
  const Bytes chunk0 = source.chunk(snap_height, 0);
  ASSERT_FALSE(chunk0.empty());
  EXPECT_EQ(cache.stats().misses, 1u);

  // Commit far past the retention ring (retention = 8).
  f.grow(chain, 10);
  ASSERT_EQ(chain.export_snapshot(snap_height).error().code,
            "chain.stale_height");

  // The pinned export still answers, byte-identically.
  EXPECT_EQ(source.manifest(snap_height), manifest_bytes);
  EXPECT_EQ(source.chunk(snap_height, 0), chunk0);
  EXPECT_GE(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // LRU bound: filling past capacity evicts the oldest entry.
  ASSERT_FALSE(source.manifest(chain.height() - 1).empty());
  ASSERT_FALSE(source.manifest(chain.height() - 2).empty());
  EXPECT_EQ(cache.size(), 2u);
}

// ------------------------------------------------------------- sig cache

TEST(DigestLru, InsertContainsAndTouch) {
  crypto::DigestLruSet cache(3);
  const auto d = [](int i) { return crypto::sha256(std::string(1, char(i))); };
  EXPECT_FALSE(cache.contains_and_touch(d(1)));
  cache.insert(d(1));
  cache.insert(d(2));
  cache.insert(d(3));
  EXPECT_TRUE(cache.contains_and_touch(d(1)));
  EXPECT_EQ(cache.size(), 3u);
  // 1 was just touched; inserting 4 evicts the least recently used: 2.
  cache.insert(d(4));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_TRUE(cache.contains_and_touch(d(1)));
  EXPECT_FALSE(cache.contains_and_touch(d(2)));
  EXPECT_TRUE(cache.contains_and_touch(d(3)));
  EXPECT_TRUE(cache.contains_and_touch(d(4)));
  // Re-inserting an existing digest does not grow the set.
  cache.insert(d(4));
  EXPECT_EQ(cache.size(), 3u);
}

TEST(SigCache, ValidateThenAppendVerifiesEachSignatureOnce) {
  SyncFixture f;
  f.config.validation.sig_cache = std::make_shared<crypto::DigestLruSet>();
  Blockchain chain = f.make_chain();
  std::vector<Transaction> txs;
  for (int i = 0; i < 3; ++i) {
    txs.push_back(make_transfer(f.alice, static_cast<std::uint64_t>(i),
                                f.bob.address(), 1, 1, f.rng));
  }
  const Block block = chain.assemble(f.v0, txs, 0, f.rng);
  const ValidationStats& vs = chain.validation_stats();
  // Assembly verified (and remembered) each signature once...
  EXPECT_EQ(vs.sig_cache_misses, 3u);
  EXPECT_EQ(vs.sig_cache_hits, 0u);
  // ...validation and commit both ride the cache.
  ASSERT_TRUE(chain.validate(block).ok());
  EXPECT_EQ(vs.sig_cache_hits, 3u);
  EXPECT_EQ(vs.sig_cache_misses, 3u);
  ASSERT_TRUE(chain.append(block).ok());
  EXPECT_EQ(vs.sig_cache_hits, 6u);
  EXPECT_EQ(vs.sig_cache_misses, 3u);
  EXPECT_EQ(chain.state().nonce(f.alice.address()), 3u);
}

TEST(SigCache, MempoolAdmissionFeedsBlockValidation) {
  SyncFixture f;
  auto cache = std::make_shared<crypto::DigestLruSet>();
  f.config.validation.sig_cache = cache;
  Blockchain chain = f.make_chain();
  MempoolConfig mc;
  mc.sig_cache = cache;
  Mempool pool(mc);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.add(make_transfer(f.alice, static_cast<std::uint64_t>(i),
                                       f.bob.address(), 1, 1, f.rng),
                         chain.state())
                    .ok());
  }
  EXPECT_EQ(cache->size(), 4u);
  const auto candidates = pool.select(16, chain.state());
  const Block block = chain.assemble(f.v0, candidates, 0, f.rng);
  // Admission already verified every signature: assembly is all hits.
  EXPECT_EQ(chain.validation_stats().sig_cache_hits, 4u);
  EXPECT_EQ(chain.validation_stats().sig_cache_misses, 0u);
  ASSERT_TRUE(chain.append(block).ok());
  EXPECT_EQ(chain.validation_stats().sig_cache_hits, 8u);
  EXPECT_EQ(chain.validation_stats().sig_cache_misses, 0u);
}

TEST(SigCache, TamperingMissesTheCache) {
  SyncFixture f;
  auto cache = std::make_shared<crypto::DigestLruSet>();
  MempoolConfig mc;
  mc.sig_cache = cache;
  Mempool pool(mc);
  Blockchain chain = f.make_chain();
  Transaction tx = make_transfer(f.alice, 0, f.bob.address(), 1, 5, f.rng);
  ASSERT_TRUE(pool.add(tx, chain.state()).ok());
  ASSERT_TRUE(cache->contains_and_touch(tx.digest()));
  // The digest covers the signed fields: tampering changes it, so the
  // cached verification cannot vouch for the mutated transaction.
  Transaction forged = tx;
  forged.fee = 0;
  EXPECT_FALSE(cache->contains_and_touch(forged.digest()));
  EXPECT_EQ(pool.add(forged, chain.state()).error().code,
            "mempool.bad_signature");
}

}  // namespace
}  // namespace mv::ledger
