// Trust tests: graph generators, cascade mechanics, and the E5 shape —
// reputation weighting and flagging incentives shrink misinformation spread.
#include <gtest/gtest.h>

#include "trust/misinformation.h"

namespace mv::trust {
namespace {

// ------------------------------------------------------------ graphs

TEST(SocialGraph, AddEdgeIgnoresLoopsAndDuplicates) {
  SocialGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 2);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(2, 2));
}

TEST(SocialGraph, WattsStrogatzDegreeAndEdgeCount) {
  Rng rng(1);
  const auto g = SocialGraph::watts_strogatz(200, 6, 0.1, rng);
  EXPECT_EQ(g.size(), 200u);
  // Lattice has n*k/2 edges; rewiring preserves (or slightly reduces) count.
  EXPECT_LE(g.edge_count(), 600u);
  EXPECT_GE(g.edge_count(), 540u);
  std::size_t degree_sum = 0;
  for (std::size_t v = 0; v < g.size(); ++v) degree_sum += g.neighbors(v).size();
  EXPECT_EQ(degree_sum, 2 * g.edge_count());
}

TEST(SocialGraph, BarabasiAlbertIsSkewed) {
  Rng rng(2);
  const auto g = SocialGraph::barabasi_albert(500, 3, rng);
  EXPECT_EQ(g.size(), 500u);
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  for (std::size_t v = 0; v < g.size(); ++v) {
    max_degree = std::max(max_degree, g.neighbors(v).size());
    mean_degree += static_cast<double>(g.neighbors(v).size());
  }
  mean_degree /= 500.0;
  // Scale-free: hubs far above the mean.
  EXPECT_GT(static_cast<double>(max_degree), 5.0 * mean_degree);
}

// ------------------------------------------------------------ cascades

PropagationConfig base_config() {
  PropagationConfig c;
  c.base_share_probability = 0.2;
  c.seeds = 5;
  return c;
}

TEST(MisinfoSim, CascadeSpreadsOnConnectedGraph) {
  Rng rng(3);
  const auto g = SocialGraph::watts_strogatz(2000, 8, 0.1, rng);
  MisinfoSim sim(g, base_config(), Rng(4));
  const auto r = sim.run();
  EXPECT_GT(r.infected, 100u);  // p=0.2 on degree-8 graph is supercritical
  EXPECT_GT(r.rounds, 1u);
}

TEST(MisinfoSim, ZeroShareProbabilityStopsAtSeeds) {
  Rng rng(5);
  const auto g = SocialGraph::watts_strogatz(500, 6, 0.1, rng);
  auto config = base_config();
  config.base_share_probability = 0.0;
  MisinfoSim sim(g, config, Rng(6));
  const auto r = sim.run();
  EXPECT_LE(r.infected, config.seeds);
}

TEST(MisinfoSim, CredibilityIsBimodal) {
  Rng rng(7);
  const auto g = SocialGraph::watts_strogatz(2000, 6, 0.1, rng);
  MisinfoSim sim(g, base_config(), Rng(8));
  int low = 0, high = 0;
  for (std::size_t v = 0; v < g.size(); ++v) {
    if (sim.credibility(v) < 0.4) ++low;
    if (sim.credibility(v) > 0.5) ++high;
  }
  EXPECT_GT(low, 100);
  EXPECT_GT(high, 1200);
}

class DefenceSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DefenceSeedTest, ReputationWeightingShrinksCascades) {
  Rng rng(GetParam());
  const auto g = SocialGraph::watts_strogatz(3000, 8, 0.1, rng);
  double base = 0, weighted = 0;
  for (int i = 0; i < 10; ++i) {
    MisinfoSim plain(g, base_config(), Rng(GetParam() * 100 + i));
    auto config = base_config();
    config.reputation_weighted = true;
    MisinfoSim defended(g, config, Rng(GetParam() * 100 + i));
    base += plain.run().spread_fraction(g.size());
    weighted += defended.run().spread_fraction(g.size());
  }
  EXPECT_LT(weighted, base * 0.8);
}

TEST_P(DefenceSeedTest, FlaggingIncentivesShrinkCascades) {
  Rng rng(GetParam());
  const auto g = SocialGraph::watts_strogatz(3000, 8, 0.1, rng);
  double base = 0, flagged = 0;
  for (int i = 0; i < 10; ++i) {
    MisinfoSim plain(g, base_config(), Rng(GetParam() * 200 + i));
    auto config = base_config();
    config.flagging_incentives = true;
    MisinfoSim defended(g, config, Rng(GetParam() * 200 + i));
    base += plain.run().spread_fraction(g.size());
    flagged += defended.run().spread_fraction(g.size());
  }
  EXPECT_LT(flagged, base * 0.9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DefenceSeedTest, ::testing::Values(11, 13));

TEST(MisinfoSim, CombinedDefencesStackOnScaleFreeGraph) {
  Rng rng(17);
  const auto g = SocialGraph::barabasi_albert(3000, 4, rng);
  double base = 0, both = 0;
  for (int i = 0; i < 10; ++i) {
    MisinfoSim plain(g, base_config(), Rng(300 + i));
    auto config = base_config();
    config.reputation_weighted = true;
    config.flagging_incentives = true;
    MisinfoSim defended(g, config, Rng(300 + i));
    base += plain.run().spread_fraction(g.size());
    both += defended.run().spread_fraction(g.size());
  }
  EXPECT_LT(both, base * 0.6);
}

TEST(MisinfoSim, FlagsOnlyAccumulateWithIncentives) {
  Rng rng(18);
  const auto g = SocialGraph::watts_strogatz(1000, 8, 0.1, rng);
  MisinfoSim plain(g, base_config(), Rng(19));
  EXPECT_EQ(plain.run().flags, 0u);
  auto config = base_config();
  config.flagging_incentives = true;
  MisinfoSim defended(g, config, Rng(19));
  EXPECT_GT(defended.run().flags, 0u);
}

}  // namespace
}  // namespace mv::trust
