// Robustness and failure-injection tests: decoder fuzzing (random and
// mutated inputs must fail cleanly, never crash), Byzantine message floods
// against the consensus committee, and adversarial mempool input.
#include <gtest/gtest.h>

#include "ledger/consensus.h"

namespace mv::ledger {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes out;
  const std::size_t len = rng.next_below(max_len + 1);
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<std::uint8_t>(rng.next_u64()));
  }
  return out;
}

// ---------------------------------------------------------------- fuzz

class DecoderFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderFuzzTest, RandomBytesNeverCrashDecoders) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const Bytes junk = random_bytes(rng, 256);
    // Decoders must return an error or a value — never crash or hang.
    (void)Transaction::decode(junk);
    (void)Block::decode(junk);
    (void)TransferBody::decode(junk);
    (void)AuditRecordBody::decode(junk);
  }
  SUCCEED();
}

TEST_P(DecoderFuzzTest, MutatedTransactionsFailOrFailSignature) {
  Rng rng(GetParam());
  crypto::Wallet wallet(rng);
  const Transaction tx =
      make_transfer(wallet, 0, crypto::Address{42}, 100, 1, rng);
  const Bytes valid = tx.encode();
  for (int i = 0; i < 500; ++i) {
    Bytes mutated = valid;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    auto decoded = Transaction::decode(mutated);
    if (!decoded.ok()) continue;  // structural break: fine
    // Structurally valid mutants must not carry a valid signature unless the
    // mutation only touched the signature's own redundancy — which Schnorr
    // does not have, so any accepted mutant must equal the original.
    if (decoded.value().signature_valid()) {
      EXPECT_EQ(decoded.value().encode(), valid);
    }
  }
}

TEST_P(DecoderFuzzTest, MutatedBlocksNeverValidate) {
  Rng rng(GetParam());
  crypto::Wallet validator(rng), alice(rng);
  ChainConfig config;
  config.validators = {validator.public_key()};
  LedgerState genesis;
  genesis.credit(alice.address(), 1000);
  auto contracts = std::make_shared<ContractRegistry>();
  Blockchain chain(config, contracts, genesis);
  const Block block = chain.assemble(
      validator, {make_transfer(alice, 0, crypto::Address{7}, 5, 0, rng)}, 0, rng);
  const Bytes valid = block.encode();
  for (int i = 0; i < 300; ++i) {
    Bytes mutated = valid;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    if (mutated == valid) continue;
    auto decoded = Block::decode(mutated);
    if (!decoded.ok()) continue;
    // A decodable mutant must fail chain validation (any header/tx bit is
    // covered by a hash or signature).
    EXPECT_FALSE(chain.validate(decoded.value()).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 42u));

TEST(Fuzz, ByteReaderHandlesArbitraryTruncation) {
  ByteWriter w;
  w.u64(1);
  w.str("hello world");
  w.bytes(Bytes{1, 2, 3, 4, 5});
  w.f64(3.14);
  const Bytes full = w.take();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Bytes truncated(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut));
    ByteReader r(truncated);
    // Read the whole schema; each step either succeeds or fails cleanly.
    (void)r.u64();
    (void)r.str();
    (void)r.bytes();
    (void)r.f64();
  }
  SUCCEED();
}

// ---------------------------------------------------------------- byzantine

struct ByzantineFixture {
  Rng rng{7777};
  SimClock clock;
  net::Network network{clock, Rng(7778),
                       net::LinkParams{.base_latency = 1.0, .jitter = 1.0, .drop_rate = 0.0}};
  std::shared_ptr<ContractRegistry> contracts = std::make_shared<ContractRegistry>();
  crypto::Wallet alice{rng};
  LedgerState genesis;

  ByzantineFixture() { genesis.credit(alice.address(), 1'000'000); }
};

TEST(Byzantine, GarbageFloodDoesNotStopConsensus) {
  ByzantineFixture f;
  ValidatorCommittee committee(f.network, 4, f.contracts, f.genesis, 32, f.rng);
  // A rogue node joins the network and sprays garbage at every validator on
  // every consensus topic.
  Rng attacker_rng(666);
  const NodeId rogue = f.network.add_node([](const net::Message&) {});
  auto spray = [&] {
    for (std::size_t v = 0; v < committee.size(); ++v) {
      for (const char* topic : {"propose", "vote", "sync_req", "sync_resp"}) {
        f.network.send(rogue, committee.node(v), topic,
                       random_bytes(attacker_rng, 128));
      }
    }
  };
  for (std::uint64_t i = 0; i < 10; ++i) {
    committee.submit(make_transfer(f.alice, i, crypto::Address{9}, 1, 1, f.rng));
  }
  spray();
  ASSERT_TRUE(committee.run_round());
  spray();
  ASSERT_TRUE(committee.run_round());
  EXPECT_TRUE(committee.replicas_consistent());
  EXPECT_EQ(committee.chain(0).state().balance(crypto::Address{9}), 10u);
}

TEST(Byzantine, ForgedVotesFromOutsiderAreIgnored) {
  ByzantineFixture f;
  ValidatorCommittee committee(f.network, 4, f.contracts, f.genesis, 32, f.rng);
  // The attacker crafts structurally valid votes signed by a NON-committee
  // key for a bogus block hash, trying to trip early commits.
  Rng attacker_rng(667);
  crypto::Wallet outsider(attacker_rng);
  const NodeId rogue = f.network.add_node([](const net::Message&) {});

  ByteWriter vote;
  vote.i64(0);  // height
  crypto::Digest bogus_hash{};
  bogus_hash[0] = 0xde;
  vote.raw(bogus_hash);
  vote.u64(outsider.public_key().y);
  ByteWriter signing;
  signing.str("vote");
  signing.i64(0);
  signing.raw(bogus_hash);
  const auto sig = outsider.sign(signing.data(), attacker_rng);
  vote.u64(sig.e);
  vote.u64(sig.s);
  for (int copies = 0; copies < 10; ++copies) {
    for (std::size_t v = 0; v < committee.size(); ++v) {
      f.network.send(rogue, committee.node(v), "vote", vote.data());
    }
  }
  committee.submit(make_transfer(f.alice, 0, crypto::Address{5}, 1, 1, f.rng));
  ASSERT_TRUE(committee.run_round());
  EXPECT_TRUE(committee.replicas_consistent());
  EXPECT_EQ(committee.chain(0).height(), 1);
}

TEST(Byzantine, EquivocatingProposerCannotSplitTheCommittee) {
  // The round leader proposes two different blocks to different halves.
  // Votes are per block hash, so at most one can reach quorum; replicas that
  // commit must agree.
  ByzantineFixture f;
  ValidatorCommittee committee(f.network, 4, f.contracts, f.genesis, 32, f.rng);
  // Build two competing valid blocks for height 0 from the leader's keys.
  // We cannot reach into the committee's private wallet, so emulate: two
  // different tx sets submitted to different replicas would be rejected by
  // tx-root checks anyway. Instead verify the weaker but crucial property:
  // after any single round, replicas never diverge.
  for (std::uint64_t i = 0; i < 6; ++i) {
    committee.submit(make_transfer(f.alice, i, crypto::Address{5}, 1, 1, f.rng));
  }
  ASSERT_TRUE(committee.run_round());
  EXPECT_TRUE(committee.replicas_consistent());
}

// ---------------------------------------------------------------- mempool

TEST(MempoolRobustness, AdversarialNonceGapsDoNotStall) {
  Rng rng(11);
  crypto::Wallet alice(rng), mallory(rng);
  LedgerState state;
  state.credit(alice.address(), 1000);
  state.credit(mallory.address(), 1000);
  Mempool pool;
  // Mallory floods far-future nonces (valid signatures, never executable).
  for (std::uint64_t n = 50; n < 80; ++n) {
    ASSERT_TRUE(pool.add(make_transfer(mallory, n, crypto::Address{3}, 1, 99, rng), state).ok());
  }
  // Alice submits a normal sequence at lower fees.
  for (std::uint64_t n = 0; n < 5; ++n) {
    ASSERT_TRUE(pool.add(make_transfer(alice, n, crypto::Address{4}, 1, 1, rng), state).ok());
  }
  const auto picked = pool.select(16, state);
  // Only executable transactions are selected, in nonce order.
  ASSERT_EQ(picked.size(), 5u);
  for (std::uint64_t n = 0; n < 5; ++n) {
    EXPECT_EQ(picked[n].sender(), alice.address());
    EXPECT_EQ(picked[n].nonce, n);
  }
}

}  // namespace
}  // namespace mv::ledger
