// Digital-twin tests: state hashing, sync strategies, divergence/bandwidth
// accounting, and the ledger-anchor hook.
#include <gtest/gtest.h>

#include "twin/twin.h"

namespace mv::twin {
namespace {

SyncConfig config_for(SyncStrategy strategy) {
  SyncConfig c;
  c.strategy = strategy;
  c.period = 20;
  c.delta_threshold = 0.5;
  return c;
}

TEST(TwinState, DigestChangesWithStateAndTime) {
  TwinState a{{1.0, 2.0}, 0};
  TwinState b{{1.0, 2.0}, 0};
  EXPECT_EQ(state_digest(a), state_digest(b));
  b.values[0] = 1.5;
  EXPECT_NE(state_digest(a), state_digest(b));
  b = a;
  b.updated_at = 1;
  EXPECT_NE(state_digest(a), state_digest(b));
}

TEST(TwinState, DistanceIsL2) {
  TwinState a{{0.0, 0.0}, 0};
  TwinState b{{3.0, 4.0}, 0};
  EXPECT_DOUBLE_EQ(state_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(state_distance(a, a), 0.0);
}

TEST(TwinSim, StartsInSync) {
  TwinSim sim(10, 3, config_for(SyncStrategy::kPeriodic), Rng(1));
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(state_distance(sim.physical(i), sim.digital(i)), 0.0);
  }
}

TEST(TwinSim, PeriodicSyncSendsAtFixedRate) {
  TwinSim sim(50, 3, config_for(SyncStrategy::kPeriodic), Rng(2));
  sim.run(400);
  // 400 ticks / period 20 = 20 syncs per twin.
  EXPECT_EQ(sim.metrics().sync_messages, 50u * 20u);
}

TEST(TwinSim, ThresholdSyncBoundsDivergence) {
  auto config = config_for(SyncStrategy::kThreshold);
  TwinSim sim(50, 3, config, Rng(3));
  sim.run(1000);
  // Divergence can exceed the threshold only by one tick's worth of drift
  // plus at most one event jump before the next sync catches it.
  EXPECT_LT(sim.metrics().avg_divergence(), config.delta_threshold);
}

TEST(TwinSim, OnEventSyncsExactlyOnEvents) {
  TwinSim sim(50, 3, config_for(SyncStrategy::kOnEvent), Rng(4));
  sim.run(1000);
  // One sync per event (events never queue: sync clears the pending flag the
  // same tick the event happens).
  EXPECT_EQ(sim.metrics().sync_messages, sim.metrics().events);
  // But drift between events goes uncorrected.
  EXPECT_GT(sim.metrics().avg_divergence(), 0.0);
}

TEST(TwinSim, ThresholdDominatesPeriodicOnTheFrontier) {
  // E11's shape: at comparable bandwidth, threshold sync achieves lower
  // divergence than periodic sync.
  auto periodic = config_for(SyncStrategy::kPeriodic);
  periodic.period = 50;
  TwinSim p(100, 3, periodic, Rng(5));
  p.run(2000);

  // Tune threshold to land at (or below) the same message rate.
  auto threshold = config_for(SyncStrategy::kThreshold);
  threshold.delta_threshold = 0.45;
  TwinSim t(100, 3, threshold, Rng(5));
  t.run(2000);

  const double rate_p = p.metrics().message_rate(100, 2000);
  const double rate_t = t.metrics().message_rate(100, 2000);
  EXPECT_LE(rate_t, rate_p * 1.1);
  EXPECT_LT(t.metrics().avg_divergence(), p.metrics().avg_divergence());
}

TEST(TwinSim, AnchorHookSeesEverySync) {
  TwinSim sim(5, 2, config_for(SyncStrategy::kPeriodic), Rng(6));
  std::uint64_t anchored = 0;
  sim.set_anchor_hook([&](TwinId, const crypto::Digest& digest, Tick) {
    EXPECT_NE(digest, crypto::Digest{});
    ++anchored;
  });
  sim.run(100);
  EXPECT_EQ(anchored, sim.metrics().sync_messages);
}

class StrategyTest : public ::testing::TestWithParam<SyncStrategy> {};

TEST_P(StrategyTest, MetricsAreConsistent) {
  TwinSim sim(20, 4, config_for(GetParam()), Rng(7));
  sim.run(500);
  const auto& m = sim.metrics();
  EXPECT_EQ(m.divergence_samples, 20u * 500u);
  EXPECT_GE(m.max_divergence, 0.0);
  EXPECT_GE(m.avg_divergence(), 0.0);
  EXPECT_LE(m.avg_divergence(), m.max_divergence);
}

INSTANTIATE_TEST_SUITE_P(Strategies, StrategyTest,
                         ::testing::Values(SyncStrategy::kPeriodic,
                                           SyncStrategy::kThreshold,
                                           SyncStrategy::kOnEvent));

}  // namespace
}  // namespace mv::twin
