// Tests for the simulated network: delivery semantics, latency, loss,
// partitions, and gossip coverage.
#include <gtest/gtest.h>

#include "common/job_queue.h"
#include "net/gossip.h"
#include "net/network.h"

namespace mv::net {
namespace {

struct Harness {
  SimClock clock;
  Network net;
  std::vector<std::vector<Message>> inboxes;

  explicit Harness(LinkParams lp = {}, std::uint64_t seed = 1)
      : net(clock, Rng(seed), lp) {}

  NodeId add() {
    const auto idx = inboxes.size();
    inboxes.emplace_back();
    return net.add_node([this, idx](const Message& m) { inboxes[idx].push_back(m); });
  }
};

TEST(Network, DeliversAfterLatency) {
  Harness h(LinkParams{.base_latency = 3.0, .jitter = 0.0, .drop_rate = 0.0});
  const NodeId a = h.add();
  const NodeId b = h.add();
  ASSERT_TRUE(h.net.send(a, b, "t", Bytes{1}));
  h.net.step();
  EXPECT_TRUE(h.inboxes[1].empty());  // not yet due
  h.clock.advance(3);
  h.net.step();
  ASSERT_EQ(h.inboxes[1].size(), 1u);
  EXPECT_EQ(h.inboxes[1][0].from, a);
  EXPECT_EQ(h.inboxes[1][0].topic, "t");
  EXPECT_EQ(h.inboxes[1][0].payload(), Bytes{1});
}

TEST(Network, FifoForEqualDeliveryTick) {
  Harness h(LinkParams{.base_latency = 1.0, .jitter = 0.0, .drop_rate = 0.0});
  const NodeId a = h.add();
  const NodeId b = h.add();
  for (std::uint8_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(h.net.send(a, b, "t", Bytes{i}));
  }
  h.clock.advance(1);
  h.net.step();
  ASSERT_EQ(h.inboxes[1].size(), 10u);
  for (std::uint8_t i = 0; i < 10; ++i) {
    EXPECT_EQ(h.inboxes[1][i].payload()[0], i);
  }
}

TEST(Network, BroadcastSkipsSender) {
  Harness h;
  const NodeId a = h.add();
  h.add();
  h.add();
  h.net.broadcast(a, "t", Bytes{7});
  h.net.run_until_idle();
  EXPECT_TRUE(h.inboxes[0].empty());
  EXPECT_EQ(h.inboxes[1].size(), 1u);
  EXPECT_EQ(h.inboxes[2].size(), 1u);
}

TEST(Network, BroadcastRecipientsShareOnePayloadBuffer) {
  Harness h;
  const NodeId a = h.add();
  h.add();
  h.add();
  h.add();
  h.net.broadcast(a, "t", Bytes{1, 2, 3});
  h.net.run_until_idle();
  ASSERT_EQ(h.inboxes[1].size(), 1u);
  ASSERT_EQ(h.inboxes[2].size(), 1u);
  ASSERT_EQ(h.inboxes[3].size(), 1u);
  const Bytes expected{1, 2, 3};
  EXPECT_EQ(h.inboxes[1][0].payload(), expected);
  EXPECT_EQ(h.inboxes[2][0].payload(), expected);
  EXPECT_EQ(h.inboxes[3][0].payload(), expected);
  // Same buffer, not equal copies: broadcast must not duplicate the bytes.
  EXPECT_EQ(h.inboxes[1][0].payload_buf.get(), h.inboxes[2][0].payload_buf.get());
  EXPECT_EQ(h.inboxes[1][0].payload_buf.get(), h.inboxes[3][0].payload_buf.get());
}

TEST(Network, UnknownDestinationRefusedAndCounted) {
  Harness h;
  const NodeId a = h.add();
  EXPECT_FALSE(h.net.send(a, NodeId(99), "t", Bytes{1}));
  EXPECT_EQ(h.net.stats().invalid_dest, 1u);
  EXPECT_EQ(h.net.stats().sent, 0u);  // refused before accounting
  EXPECT_TRUE(h.net.idle());
}

TEST(Network, EmptyPayloadAccessorIsSafe) {
  // A default-constructed Message has no buffer; payload() must still return
  // a valid (empty) reference.
  Message m;
  EXPECT_TRUE(m.payload().empty());
}

TEST(Network, DropRateLosesRoughlyThatFraction) {
  Harness h(LinkParams{.base_latency = 1.0, .jitter = 0.0, .drop_rate = 0.3}, 9);
  const NodeId a = h.add();
  const NodeId b = h.add();
  for (int i = 0; i < 2000; ++i) h.net.send(a, b, "t", Bytes{});
  h.net.run_until_idle();
  const double loss = static_cast<double>(h.net.stats().dropped) / 2000.0;
  EXPECT_NEAR(loss, 0.3, 0.04);
  EXPECT_EQ(h.inboxes[1].size(), 2000u - h.net.stats().dropped);
}

TEST(Network, PartitionBlocksCrossGroupAndHeals) {
  Harness h;
  const NodeId a = h.add();
  const NodeId b = h.add();
  h.net.set_group(a, 0);
  h.net.set_group(b, 1);
  EXPECT_FALSE(h.net.send(a, b, "t", Bytes{}));
  EXPECT_EQ(h.net.stats().partitioned, 1u);
  h.net.heal();
  EXPECT_TRUE(h.net.send(a, b, "t", Bytes{}));
  h.net.run_until_idle();
  EXPECT_EQ(h.inboxes[1].size(), 1u);
}

TEST(Network, PerLinkOverride) {
  Harness h(LinkParams{.base_latency = 1.0, .jitter = 0.0, .drop_rate = 0.0});
  const NodeId a = h.add();
  const NodeId b = h.add();
  h.net.set_link(a, b, LinkParams{.base_latency = 10.0, .jitter = 0.0, .drop_rate = 0.0});
  h.net.send(a, b, "t", Bytes{});
  h.clock.advance(9);
  h.net.step();
  EXPECT_TRUE(h.inboxes[1].empty());
  h.clock.advance(1);
  h.net.step();
  EXPECT_EQ(h.inboxes[1].size(), 1u);
}

TEST(Network, HandlerMaySendReentrantly) {
  SimClock clock;
  Network net(clock, Rng(3), LinkParams{.base_latency = 1.0, .jitter = 0.0, .drop_rate = 0.0});
  int b_got = 0, c_got = 0;
  const NodeId a(0);
  NodeId c_id(2);
  // b forwards to c on reception.
  net.add_node([](const Message&) {});
  const NodeId b = net.add_node([&](const Message&) {
    ++b_got;
    net.send(NodeId(1), c_id, "fwd", Bytes{});
  });
  c_id = net.add_node([&](const Message&) { ++c_got; });
  net.send(a, b, "t", Bytes{});
  net.run_until_idle();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 1);
}

TEST(Network, RunUntilIdleBoundsTicks) {
  Harness h(LinkParams{.base_latency = 50.0, .jitter = 0.0, .drop_rate = 0.0});
  const NodeId a = h.add();
  const NodeId b = h.add();
  h.net.send(a, b, "t", Bytes{});
  EXPECT_EQ(h.net.run_until_idle(10), 10);  // gave up before delivery
  EXPECT_FALSE(h.net.idle());
}

// ---------------------------------------------------------------- Gossip

class GossipCoverageTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GossipCoverageTest, FloodReachesEveryoneOnLosslessNet) {
  const std::size_t n = GetParam();
  SimClock clock;
  Network net(clock, Rng(7), LinkParams{.base_latency = 1.0, .jitter = 1.0, .drop_rate = 0.0});
  std::size_t delivered = 0;
  // Fanout >= n-1 = flood: full coverage is guaranteed, not just likely.
  Gossip gossip(net, Rng(8), n, [&](NodeId, const Bytes&) { ++delivered; });
  for (std::size_t i = 0; i < n; ++i) gossip.join();
  gossip.publish(NodeId(0), Bytes{42});
  net.run_until_idle();
  EXPECT_EQ(delivered, n);
  EXPECT_DOUBLE_EQ(gossip.coverage(Bytes{42}), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GossipCoverageTest,
                         ::testing::Values(2u, 10u, 50u, 200u));

TEST(Gossip, BoundedFanoutCoversMostNodes) {
  // Classic push gossip with fanout f plateaus near 1 - e^-f, not at 1.0.
  SimClock clock;
  Network net(clock, Rng(7), LinkParams{.base_latency = 1.0, .jitter = 1.0, .drop_rate = 0.0});
  std::size_t delivered = 0;
  Gossip gossip(net, Rng(8), 4, [&](NodeId, const Bytes&) { ++delivered; });
  for (std::size_t i = 0; i < 200; ++i) gossip.join();
  gossip.publish(NodeId(0), Bytes{42});
  net.run_until_idle();
  EXPECT_GT(gossip.coverage(Bytes{42}), 0.85);
  // Message complexity must be far below flood's O(n^2).
  EXPECT_LT(net.stats().sent, 200u * 199u / 4);
}

TEST(Gossip, DeliversOncePerNode) {
  SimClock clock;
  Network net(clock, Rng(11));
  std::unordered_map<std::uint64_t, int> per_node;
  Gossip gossip(net, Rng(12), 4, [&](NodeId node, const Bytes&) {
    ++per_node[node.value()];
  });
  for (int i = 0; i < 30; ++i) gossip.join();
  gossip.publish(NodeId(5), Bytes{1, 2, 3});
  net.run_until_idle();
  for (const auto& [node, count] : per_node) {
    EXPECT_EQ(count, 1) << "node " << node;
  }
}

TEST(Gossip, DistinctRumorsTrackedSeparately) {
  SimClock clock;
  Network net(clock, Rng(13));
  Gossip gossip(net, Rng(14), 20, [](NodeId, const Bytes&) {});
  for (int i = 0; i < 20; ++i) gossip.join();
  gossip.publish(NodeId(0), Bytes{1});
  net.run_until_idle();
  EXPECT_DOUBLE_EQ(gossip.coverage(Bytes{1}), 1.0);
  EXPECT_DOUBLE_EQ(gossip.coverage(Bytes{2}), 0.0);
}

TEST(Gossip, ShardRoutingStaysInsideInterestedSubset) {
  // 30 nodes: 12 follow world 0, 12 follow world 1, 6 follow both. A rumor
  // tagged with world 0 floods the 18 interested nodes and never touches the
  // 12 that only follow world 1.
  SimClock clock;
  Network net(clock, Rng(41), LinkParams{.base_latency = 1.0, .jitter = 1.0, .drop_rate = 0.0});
  std::unordered_map<std::uint64_t, int> delivered_to;
  Gossip gossip(net, Rng(42), 30, [&](NodeId node, const Bytes& payload) {
    ++delivered_to[node.value()];
    EXPECT_EQ(payload, (Bytes{7, 7, 7}));  // tag stripped before delivery
  });
  std::vector<NodeId> world0, world1_only;
  for (int i = 0; i < 12; ++i) world0.push_back(gossip.join({0}));
  for (int i = 0; i < 12; ++i) world1_only.push_back(gossip.join({1}));
  for (int i = 0; i < 6; ++i) world0.push_back(gossip.join({0, 1}));

  gossip.publish(world0.front(), 0, Bytes{7, 7, 7});
  net.run_until_idle();

  EXPECT_DOUBLE_EQ(gossip.coverage(0, Bytes{7, 7, 7}), 1.0);
  for (const NodeId n : world0) EXPECT_EQ(delivered_to[n.value()], 1);
  for (const NodeId n : world1_only) EXPECT_EQ(delivered_to.count(n.value()), 0u);
  // An identical untagged payload is a distinct rumor with zero coverage.
  EXPECT_DOUBLE_EQ(gossip.coverage(Bytes{7, 7, 7}), 0.0);
}

TEST(Gossip, ShardAndPlainRumorsCoexist) {
  SimClock clock;
  Network net(clock, Rng(43), LinkParams{.base_latency = 1.0, .jitter = 1.0, .drop_rate = 0.0});
  std::size_t delivered = 0;
  Gossip gossip(net, Rng(44), 20, [&](NodeId, const Bytes&) { ++delivered; });
  for (int i = 0; i < 10; ++i) gossip.join({static_cast<std::uint32_t>(i % 2)});
  for (int i = 0; i < 10; ++i) gossip.join();  // interest-less: follow all

  // Plain rumors still flood every member regardless of interests.
  gossip.publish(NodeId(0), Bytes{1});
  net.run_until_idle();
  EXPECT_DOUBLE_EQ(gossip.coverage(Bytes{1}), 1.0);
  EXPECT_EQ(delivered, 20u);

  // A world-1 rumor reaches its 5 followers plus the 10 follow-all nodes.
  delivered = 0;
  gossip.publish(NodeId(1), 1, Bytes{2});
  net.run_until_idle();
  EXPECT_DOUBLE_EQ(gossip.coverage(1, Bytes{2}), 1.0);
  EXPECT_EQ(delivered, 15u);
}

TEST(Gossip, SurvivesModerateLoss) {
  SimClock clock;
  Network net(clock, Rng(15), LinkParams{.base_latency = 1.0, .jitter = 1.0, .drop_rate = 0.1});
  Gossip gossip(net, Rng(16), 6, [](NodeId, const Bytes&) {});
  for (int i = 0; i < 100; ++i) gossip.join();
  gossip.publish(NodeId(0), Bytes{9});
  net.run_until_idle();
  EXPECT_GT(gossip.coverage(Bytes{9}), 0.9);
}

TEST(Gossip, BackpressureBoundsInflightRelaysAndDrains) {
  // High-latency links keep relays in flight; a burst of rumors from one
  // origin must hit the high-water mark instead of queueing an unbounded
  // fan-out, and the withheld relays must show up in the network stats.
  SimClock clock;
  Network net(clock, Rng(21),
              LinkParams{.base_latency = 50.0, .jitter = 0.0, .drop_rate = 0.0});
  Gossip gossip(net, Rng(22), 6, [](NodeId, const Bytes&) {},
                /*relay_high_water=*/4);
  for (int i = 0; i < 40; ++i) gossip.join();
  for (std::uint8_t r = 0; r < 10; ++r) gossip.publish(NodeId(0), Bytes{r});
  EXPECT_LE(gossip.inflight(NodeId(0)), 4u);
  EXPECT_GT(net.stats().backpressure_dropped, 0u);
  // Deliveries release in-flight slots: once the mesh drains, the origin's
  // count is back to zero (nothing leaked).
  net.run_until_idle();
  EXPECT_EQ(gossip.inflight(NodeId(0)), 0u);
}

TEST(Gossip, QueueRoutedRelaysStillCoverTheMesh) {
  // Relays run as kGossipRelay jobs on a worker thread instead of inline.
  // Flood mode guarantees coverage, so the only question is whether the
  // offloaded fan-outs actually happen and the mesh still converges.
  constexpr std::size_t kNodes = 30;
  SimClock clock;
  Network net(clock, Rng(31),
              LinkParams{.base_latency = 1.0, .jitter = 1.0, .drop_rate = 0.0});
  JobQueueConfig qconfig;
  qconfig.threads = 1;
  JobQueue queue(qconfig);
  std::size_t delivered = 0;  // deliver_ only fires on the simulation thread
  Gossip gossip(net, Rng(32), kNodes, [&](NodeId, const Bytes&) { ++delivered; },
                /*relay_high_water=*/64, &queue);
  for (std::size_t i = 0; i < kNodes; ++i) gossip.join();
  gossip.publish(NodeId(0), Bytes{42});
  // run_until_idle alone is not enough: an empty network queue may just mean
  // the relays are still parked in the job queue. Drain it between steps.
  for (int t = 0; t < 10000; ++t) {
    queue.drain();
    if (net.idle()) break;
    clock.advance(1);
    net.step();
  }
  queue.drain();
  EXPECT_EQ(delivered, kNodes);
  EXPECT_DOUBLE_EQ(gossip.coverage(Bytes{42}), 1.0);
  EXPECT_GT(queue.stats().of(JobClass::kGossipRelay).completed, 0u);
  EXPECT_EQ(queue.stats().shed(), 0u);
}

TEST(Gossip, ZeroHighWaterDisablesBackpressure) {
  SimClock clock;
  Network net(clock, Rng(23),
              LinkParams{.base_latency = 50.0, .jitter = 0.0, .drop_rate = 0.0});
  Gossip gossip(net, Rng(24), 6, [](NodeId, const Bytes&) {},
                /*relay_high_water=*/0);
  for (int i = 0; i < 40; ++i) gossip.join();
  for (std::uint8_t r = 0; r < 10; ++r) gossip.publish(NodeId(0), Bytes{r});
  EXPECT_EQ(net.stats().backpressure_dropped, 0u);
}

}  // namespace
}  // namespace mv::net
