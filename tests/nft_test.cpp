// NFT tests: on-chain token lifecycle (mint/transfer/list/buy with
// royalties) and the admission-policy market simulation (E4 shape).
#include <gtest/gtest.h>

#include "ledger/chain.h"
#include "nft/contract.h"
#include "nft/market.h"

namespace mv::nft {
namespace {

struct Fixture {
  Rng rng{808};
  std::shared_ptr<ledger::ContractRegistry> contracts =
      std::make_shared<ledger::ContractRegistry>();
  crypto::Wallet creator{rng}, collector{rng}, other{rng};
  ledger::LedgerState state;

  Fixture() {
    contracts->install(std::make_shared<NftContract>());
    state.credit(creator.address(), 1000);
    state.credit(collector.address(), 1000);
    state.credit(other.address(), 1000);
  }

  Status call(const crypto::Wallet& w, const std::string& method, Bytes args) {
    const auto tx = ledger::make_contract_call(
        w, state.nonce(w.address()), "nft", method, std::move(args), 0, rng);
    return state.apply(tx, *contracts, 0);
  }
};

TEST(NftContract, MintAssignsOwnershipAndMetadata) {
  Fixture f;
  ASSERT_TRUE(f.call(f.creator, "mint",
                     NftContract::encode_mint("ipfs://avatar-hat", 500)).ok());
  EXPECT_EQ(NftContract::token_count(f.state), 1u);
  auto token = NftContract::token(f.state, 0);
  ASSERT_TRUE(token.ok());
  EXPECT_EQ(token.value().owner, f.creator.address());
  EXPECT_EQ(token.value().creator, f.creator.address());
  EXPECT_EQ(token.value().uri, "ipfs://avatar-hat");
  EXPECT_EQ(token.value().royalty_bps, 500u);
}

TEST(NftContract, RoyaltyCapEnforced) {
  Fixture f;
  EXPECT_FALSE(f.call(f.creator, "mint", NftContract::encode_mint("x", 6000)).ok());
}

TEST(NftContract, TransferRequiresOwnership) {
  Fixture f;
  ASSERT_TRUE(f.call(f.creator, "mint", NftContract::encode_mint("x", 0)).ok());
  EXPECT_EQ(f.call(f.other, "transfer",
                   NftContract::encode_transfer(0, f.other.address()))
                .error()
                .code,
            "nft.not_owner");
  ASSERT_TRUE(f.call(f.creator, "transfer",
                     NftContract::encode_transfer(0, f.collector.address())).ok());
  EXPECT_EQ(NftContract::token(f.state, 0).value().owner, f.collector.address());
  EXPECT_FALSE(f.call(f.creator, "transfer",
                      NftContract::encode_transfer(9, f.collector.address())).ok());
}

TEST(NftContract, BuyPaysSellerAndCreatorRoyalty) {
  Fixture f;
  // Creator mints with 10% royalty, sells to collector, collector resells.
  ASSERT_TRUE(f.call(f.creator, "mint", NftContract::encode_mint("art", 1000)).ok());
  ASSERT_TRUE(f.call(f.creator, "list", NftContract::encode_list(0, 100)).ok());
  EXPECT_EQ(NftContract::listing_price(f.state, 0), 100u);
  ASSERT_TRUE(f.call(f.collector, "buy", NftContract::encode_token(0)).ok());
  // First sale: creator is also seller → gets the full 100 (90 + 10 royalty).
  EXPECT_EQ(f.state.balance(f.creator.address()), 1100u);
  EXPECT_EQ(f.state.balance(f.collector.address()), 900u);

  // Resale: collector lists at 200; creator share is 20.
  ASSERT_TRUE(f.call(f.collector, "list", NftContract::encode_list(0, 200)).ok());
  ASSERT_TRUE(f.call(f.other, "buy", NftContract::encode_token(0)).ok());
  EXPECT_EQ(f.state.balance(f.collector.address()), 900u + 180u);
  EXPECT_EQ(f.state.balance(f.creator.address()), 1100u + 20u);
  EXPECT_EQ(f.state.balance(f.other.address()), 800u);
  EXPECT_EQ(NftContract::token(f.state, 0).value().owner, f.other.address());
  // Listing consumed.
  EXPECT_EQ(NftContract::listing_price(f.state, 0), 0u);
}

TEST(NftContract, BuyRequiresFundsAndIsAtomic) {
  Fixture f;
  crypto::Wallet broke{f.rng};
  f.state.credit(broke.address(), 5);
  ASSERT_TRUE(f.call(f.creator, "mint", NftContract::encode_mint("x", 1000)).ok());
  ASSERT_TRUE(f.call(f.creator, "list", NftContract::encode_list(0, 100)).ok());
  const auto root = f.state.commitment().root;
  EXPECT_FALSE(f.call(broke, "buy", NftContract::encode_token(0)).ok());
  EXPECT_EQ(f.state.commitment().root, root);  // nothing moved
}

TEST(NftContract, SelfPurchaseAndListedTransferRejected) {
  Fixture f;
  ASSERT_TRUE(f.call(f.creator, "mint", NftContract::encode_mint("x", 0)).ok());
  ASSERT_TRUE(f.call(f.creator, "list", NftContract::encode_list(0, 50)).ok());
  EXPECT_EQ(f.call(f.creator, "buy", NftContract::encode_token(0)).error().code,
            "nft.self_purchase");
  EXPECT_EQ(f.call(f.creator, "transfer",
                   NftContract::encode_transfer(0, f.other.address()))
                .error()
                .code,
            "nft.listed");
  ASSERT_TRUE(f.call(f.creator, "cancel", NftContract::encode_token(0)).ok());
  EXPECT_TRUE(f.call(f.creator, "transfer",
                     NftContract::encode_transfer(0, f.other.address())).ok());
}

TEST(NftContract, TokensOfEnumeratesOwnership) {
  Fixture f;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(f.call(f.creator, "mint", NftContract::encode_mint("x", 0)).ok());
  }
  ASSERT_TRUE(f.call(f.creator, "transfer",
                     NftContract::encode_transfer(1, f.collector.address())).ok());
  EXPECT_EQ(NftContract::tokens_of(f.state, f.creator.address()),
            (std::vector<std::uint64_t>{0, 2}));
  EXPECT_EQ(NftContract::tokens_of(f.state, f.collector.address()),
            (std::vector<std::uint64_t>{1}));
}

// ------------------------------------------------------------ market sim

MarketConfig small_market() {
  MarketConfig c;
  c.creators = 400;
  c.scammer_fraction = 0.1;
  c.rounds = 12;
  c.buyers = 600;
  return c;
}

TEST(MarketSim, OpenAdmitsEveryone) {
  MarketSim sim(small_market(), AdmissionPolicy::kOpen, Rng(1));
  const auto m = sim.run();
  EXPECT_DOUBLE_EQ(m.honest_inclusion(), 1.0);
  EXPECT_GT(m.scam_sale_rate(), 0.04);  // scams flow freely
  EXPECT_GT(m.total_sales, 0u);
}

TEST(MarketSim, InviteOnlyCutsScamsButExcludesHonest) {
  MarketSim open(small_market(), AdmissionPolicy::kOpen, Rng(2));
  MarketSim invite(small_market(), AdmissionPolicy::kInviteOnly, Rng(2));
  const auto mo = open.run();
  const auto mi = invite.run();
  EXPECT_LT(mi.scam_sale_rate(), mo.scam_sale_rate());
  // The openness cost: most honest creators never get in.
  EXPECT_LT(mi.honest_inclusion(), 0.3);
}

TEST(MarketSim, ReputationGatingKeepsInclusionAndCutsScams) {
  MarketSim open(small_market(), AdmissionPolicy::kOpen, Rng(3));
  MarketSim gated(small_market(), AdmissionPolicy::kReputationGated, Rng(3));
  const auto mo = open.run();
  const auto mg = gated.run();
  // The paper's proposed balance: everyone enters...
  EXPECT_DOUBLE_EQ(mg.honest_inclusion(), 1.0);
  // ...and scammers are expelled as reports land.
  EXPECT_LT(mg.scam_sale_rate(), mo.scam_sale_rate());
  EXPECT_GT(mg.scammers_delisted, 0u);
}

class MarketSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MarketSeedTest, PolicyOrderingHoldsAcrossSeeds) {
  // The E4 headline: scam rate open > gated, inclusion invite << gated = open.
  MarketSim open(small_market(), AdmissionPolicy::kOpen, Rng(GetParam()));
  MarketSim invite(small_market(), AdmissionPolicy::kInviteOnly, Rng(GetParam()));
  MarketSim gated(small_market(), AdmissionPolicy::kReputationGated, Rng(GetParam()));
  const auto mo = open.run();
  const auto mi = invite.run();
  const auto mg = gated.run();
  EXPECT_GT(mo.scam_sale_rate(), mg.scam_sale_rate());
  EXPECT_LT(mi.honest_inclusion(), mg.honest_inclusion());
  EXPECT_DOUBLE_EQ(mg.honest_inclusion(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarketSeedTest, ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace mv::nft
