// DAO tests: membership/delegation, every voting scheme, proposal lifecycle,
// federated routing and escalation, and the on-chain DAO contract.
#include <gtest/gtest.h>

#include "dao/contract.h"
#include "dao/dao.h"
#include "dao/federated.h"
#include "ledger/chain.h"
#include "ledger/consensus.h"

namespace mv::dao {
namespace {

Member make_member(std::uint64_t id, std::uint64_t tokens = 1,
                   double reputation = 1.0) {
  Member m;
  m.id = AccountId(id);
  m.tokens = tokens;
  m.reputation = reputation;
  return m;
}

// ------------------------------------------------------------ members

TEST(MemberRegistry, AddAndFind) {
  MemberRegistry reg;
  ASSERT_TRUE(reg.add(make_member(1)).ok());
  EXPECT_EQ(reg.add(make_member(1)).error().code, "dao.duplicate_member");
  EXPECT_NE(reg.find(AccountId(1)), nullptr);
  EXPECT_EQ(reg.find(AccountId(2)), nullptr);
  EXPECT_FALSE(reg.add(Member{}).ok());  // invalid id
}

TEST(MemberRegistry, DelegationChainResolves) {
  MemberRegistry reg;
  for (std::uint64_t i = 1; i <= 4; ++i) ASSERT_TRUE(reg.add(make_member(i)).ok());
  reg.set_delegate(AccountId(1), AccountId(2));
  reg.set_delegate(AccountId(2), AccountId(3));
  EXPECT_EQ(reg.resolve_delegate(AccountId(1)), AccountId(3));
  EXPECT_EQ(reg.resolve_delegate(AccountId(3)), AccountId(3));
  EXPECT_EQ(reg.resolve_delegate(AccountId(4)), AccountId(4));
}

TEST(MemberRegistry, DelegationCycleFallsBackToSelf) {
  MemberRegistry reg;
  for (std::uint64_t i = 1; i <= 3; ++i) ASSERT_TRUE(reg.add(make_member(i)).ok());
  reg.set_delegate(AccountId(1), AccountId(2));
  reg.set_delegate(AccountId(2), AccountId(1));
  EXPECT_EQ(reg.resolve_delegate(AccountId(1)), AccountId(1));
}

TEST(MemberRegistry, BrokenDelegateFallsBackToSelf) {
  MemberRegistry reg;
  ASSERT_TRUE(reg.add(make_member(1)).ok());
  reg.set_delegate(AccountId(1), AccountId(99));  // not a member
  EXPECT_EQ(reg.resolve_delegate(AccountId(1)), AccountId(1));
}

// ------------------------------------------------------------ flat dao

struct DaoFixture {
  DaoConfig config;
  Dao dao;

  explicit DaoFixture(std::shared_ptr<const VotingScheme> scheme =
                          std::make_shared<OneMemberOneVote>(),
                      double quorum = 0.2)
      : config(DaoConfig{quorum, 0.5, 100, std::move(scheme)}),
        dao(config, Rng(42)) {
    for (std::uint64_t i = 1; i <= 10; ++i) {
      EXPECT_TRUE(dao.members().add(make_member(i, /*tokens=*/i,
                                                /*reputation=*/static_cast<double>(i)))
                      .ok());
    }
  }
};

TEST(Dao, ProposalLifecyclePasses) {
  DaoFixture f;
  auto id = f.dao.propose(AccountId(1), ModuleId(0), "enable privacy bubble", 0);
  ASSERT_TRUE(id.ok());
  for (std::uint64_t i = 1; i <= 6; ++i) {
    ASSERT_TRUE(f.dao.cast_vote(id.value(), AccountId(i), VoteChoice::kYes, 10).ok());
  }
  ASSERT_TRUE(f.dao.cast_vote(id.value(), AccountId(7), VoteChoice::kNo, 10).ok());
  auto status = f.dao.finalize(id.value(), 100);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value(), ProposalStatus::kPassed);
  const Proposal* p = f.dao.find(id.value());
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->tally.yes, 6.0);
  EXPECT_DOUBLE_EQ(p->tally.no, 1.0);
  EXPECT_DOUBLE_EQ(p->tally.eligible_weight, 10.0);
}

TEST(Dao, FailsQuorum) {
  DaoFixture f(std::make_shared<OneMemberOneVote>(), /*quorum=*/0.5);
  auto id = f.dao.propose(AccountId(1), ModuleId(0), "low turnout", 0);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(f.dao.cast_vote(id.value(), AccountId(1), VoteChoice::kYes, 1).ok());
  EXPECT_EQ(f.dao.finalize(id.value(), 100).value(), ProposalStatus::kRejected);
}

TEST(Dao, RejectsDoubleVoteAndNonMember) {
  DaoFixture f;
  auto id = f.dao.propose(AccountId(1), ModuleId(0), "x", 0);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(f.dao.cast_vote(id.value(), AccountId(2), VoteChoice::kYes, 1).ok());
  EXPECT_EQ(f.dao.cast_vote(id.value(), AccountId(2), VoteChoice::kNo, 2).error().code,
            "dao.double_vote");
  EXPECT_EQ(f.dao.cast_vote(id.value(), AccountId(99), VoteChoice::kNo, 2).error().code,
            "dao.not_a_member");
  EXPECT_FALSE(f.dao.propose(AccountId(99), ModuleId(0), "x", 0).ok());
}

TEST(Dao, VotingWindowEnforced) {
  DaoFixture f;
  auto id = f.dao.propose(AccountId(1), ModuleId(0), "x", 0);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(f.dao.finalize(id.value(), 50).error().code, "dao.voting_open");
  EXPECT_EQ(f.dao.cast_vote(id.value(), AccountId(1), VoteChoice::kYes, 100).error().code,
            "dao.voting_closed");
  ASSERT_TRUE(f.dao.finalize(id.value(), 100).ok());
  EXPECT_EQ(f.dao.finalize(id.value(), 101).error().code, "dao.already_finalized");
}

TEST(Dao, ExecutorRunsOnPass) {
  DaoFixture f;
  int executed = 0;
  f.dao.set_executor([&](const Proposal&) { ++executed; });
  auto id = f.dao.propose(AccountId(1), ModuleId(0), "x", 0);
  ASSERT_TRUE(id.ok());
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(f.dao.cast_vote(id.value(), AccountId(i), VoteChoice::kYes, 1).ok());
  }
  EXPECT_EQ(f.dao.finalize(id.value(), 100).value(), ProposalStatus::kExecuted);
  EXPECT_EQ(executed, 1);
}

TEST(Dao, FinalizeDueSweepsAll) {
  DaoFixture f;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(f.dao.propose(AccountId(1), ModuleId(0), "p", 0).ok());
  }
  EXPECT_EQ(f.dao.finalize_due(50), 0u);
  EXPECT_EQ(f.dao.finalize_due(100), 5u);
}

// ------------------------------------------------------------ schemes

TEST(VotingSchemes, TokenWeightedFavorsWhales) {
  DaoFixture f(std::make_shared<TokenWeighted>());
  auto id = f.dao.propose(AccountId(1), ModuleId(0), "whale wins", 0);
  ASSERT_TRUE(id.ok());
  // Members 1..7 (weight 28) vote no; members 9+10 (weight 19) vote yes.
  for (std::uint64_t i = 1; i <= 7; ++i) {
    ASSERT_TRUE(f.dao.cast_vote(id.value(), AccountId(i), VoteChoice::kNo, 1).ok());
  }
  ASSERT_TRUE(f.dao.cast_vote(id.value(), AccountId(9), VoteChoice::kYes, 1).ok());
  ASSERT_TRUE(f.dao.cast_vote(id.value(), AccountId(10), VoteChoice::kYes, 1).ok());
  EXPECT_EQ(f.dao.finalize(id.value(), 100).value(), ProposalStatus::kRejected);
  const Proposal* p = f.dao.find(id.value());
  EXPECT_DOUBLE_EQ(p->tally.yes, 19.0);
  EXPECT_DOUBLE_EQ(p->tally.no, 28.0);
  // Same ballots under 1m1v would have rejected even harder; under tokens the
  // whales almost flipped it — the plutocracy lever is visible in the tally.
}

TEST(VotingSchemes, QuadraticChargesSquaredCost) {
  DaoFixture f(std::make_shared<QuadraticVoting>());
  auto a = f.dao.propose(AccountId(1), ModuleId(0), "a", 0);
  ASSERT_TRUE(a.ok());
  // Intensity 6 costs 36 of the default 100 credits.
  ASSERT_TRUE(f.dao.cast_vote(a.value(), AccountId(2), VoteChoice::kYes, 1, 6.0).ok());
  EXPECT_NEAR(f.dao.members().find(AccountId(2))->voice_credits, 64.0, 1e-9);
  // Another intensity-9 ballot needs 81 > 64 and must fail.
  auto b = f.dao.propose(AccountId(1), ModuleId(0), "b", 0);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(f.dao.cast_vote(b.value(), AccountId(2), VoteChoice::kYes, 1, 9.0).error().code,
            "dao.no_credits");
  EXPECT_EQ(f.dao.cast_vote(b.value(), AccountId(2), VoteChoice::kYes, 1, -1.0).error().code,
            "dao.bad_intensity");
}

TEST(VotingSchemes, ReputationWeighted) {
  DaoFixture f(std::make_shared<ReputationWeighted>());
  auto id = f.dao.propose(AccountId(1), ModuleId(0), "rep", 0);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(f.dao.cast_vote(id.value(), AccountId(10), VoteChoice::kYes, 1).ok());
  ASSERT_TRUE(f.dao.cast_vote(id.value(), AccountId(1), VoteChoice::kNo, 1).ok());
  ASSERT_TRUE(f.dao.finalize(id.value(), 100).ok());
  const Proposal* p = f.dao.find(id.value());
  EXPECT_DOUBLE_EQ(p->tally.yes, 10.0);
  EXPECT_DOUBLE_EQ(p->tally.no, 1.0);
}

TEST(VotingSchemes, DelegatedWeightFlowsToVoter) {
  DaoFixture f(std::make_shared<DelegatedVoting>());
  // 1..4 delegate (transitively) to 5, who votes yes; 6 votes no.
  f.dao.members().set_delegate(AccountId(1), AccountId(2));
  f.dao.members().set_delegate(AccountId(2), AccountId(5));
  f.dao.members().set_delegate(AccountId(3), AccountId(5));
  f.dao.members().set_delegate(AccountId(4), AccountId(5));
  auto id = f.dao.propose(AccountId(5), ModuleId(0), "liquid", 0);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(f.dao.cast_vote(id.value(), AccountId(5), VoteChoice::kYes, 1).ok());
  ASSERT_TRUE(f.dao.cast_vote(id.value(), AccountId(6), VoteChoice::kNo, 1).ok());
  ASSERT_TRUE(f.dao.finalize(id.value(), 100).ok());
  const Proposal* p = f.dao.find(id.value());
  // 5's own vote + 4 delegated units = 5 yes; 1 no.
  EXPECT_DOUBLE_EQ(p->tally.yes, 5.0);
  EXPECT_DOUBLE_EQ(p->tally.no, 1.0);
}

TEST(VotingSchemes, DelegatorWhoVotesDirectlyKeepsOwnWeight) {
  DaoFixture f(std::make_shared<DelegatedVoting>());
  f.dao.members().set_delegate(AccountId(1), AccountId(5));
  auto id = f.dao.propose(AccountId(5), ModuleId(0), "override", 0);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(f.dao.cast_vote(id.value(), AccountId(5), VoteChoice::kYes, 1).ok());
  // 1 overrides their delegation by voting no directly.
  ASSERT_TRUE(f.dao.cast_vote(id.value(), AccountId(1), VoteChoice::kNo, 1).ok());
  ASSERT_TRUE(f.dao.finalize(id.value(), 100).ok());
  const Proposal* p = f.dao.find(id.value());
  EXPECT_DOUBLE_EQ(p->tally.yes, 1.0);
  EXPECT_DOUBLE_EQ(p->tally.no, 1.0);
}

TEST(VotingSchemes, SortitionJuryRestrictsVoters) {
  DaoFixture f(std::make_shared<SortitionJury>(3));
  auto id = f.dao.propose(AccountId(1), ModuleId(0), "jury duty", 0);
  ASSERT_TRUE(id.ok());
  const Proposal* p = f.dao.find(id.value());
  ASSERT_EQ(p->jury.size(), 3u);
  std::size_t accepted = 0, rejected = 0;
  for (std::uint64_t i = 1; i <= 10; ++i) {
    const auto s = f.dao.cast_vote(id.value(), AccountId(i), VoteChoice::kYes, 1);
    if (s.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(s.error().code, "dao.not_on_jury");
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 3u);
  EXPECT_EQ(rejected, 7u);
  ASSERT_TRUE(f.dao.finalize(id.value(), 100).ok());
  EXPECT_DOUBLE_EQ(f.dao.find(id.value())->tally.eligible_weight, 3.0);
}

// Property: no scheme ever double-counts, and turnout never exceeds 1.
class SchemeInvariantTest
    : public ::testing::TestWithParam<std::shared_ptr<const VotingScheme>> {};

TEST_P(SchemeInvariantTest, TurnoutBoundedAndBallotsMatchVoters) {
  DaoConfig config{0.0, 0.5, 100, GetParam()};
  Dao dao(config, Rng(7));
  Rng rng(99);
  for (std::uint64_t i = 1; i <= 50; ++i) {
    ASSERT_TRUE(dao.members()
                    .add(make_member(i, 1 + rng.next_below(20),
                                     rng.uniform(0.0, 5.0)))
                    .ok());
  }
  auto id = dao.propose(AccountId(1), ModuleId(0), "p", 0);
  ASSERT_TRUE(id.ok());
  std::size_t cast = 0;
  for (std::uint64_t i = 1; i <= 50; ++i) {
    const auto choice = static_cast<VoteChoice>(rng.next_below(3));
    if (dao.cast_vote(id.value(), AccountId(i), choice, 1).ok()) ++cast;
  }
  ASSERT_TRUE(dao.finalize(id.value(), 100).ok());
  const Proposal* p = dao.find(id.value());
  EXPECT_EQ(p->ballots.size(), cast);
  EXPECT_LE(p->tally.turnout(), 1.0 + 1e-9);
  EXPECT_GE(p->tally.yes, 0.0);
  EXPECT_GE(p->tally.no, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SchemeInvariantTest,
    ::testing::Values(std::make_shared<OneMemberOneVote>(),
                      std::make_shared<TokenWeighted>(),
                      std::make_shared<QuadraticVoting>(),
                      std::make_shared<ReputationWeighted>(),
                      std::make_shared<SortitionJury>(10)));

// ------------------------------------------------------------ commit-reveal

struct SealedFixture {
  Dao dao;

  SealedFixture()
      : dao(make_config(), Rng(77)) {
    for (std::uint64_t i = 1; i <= 10; ++i) {
      EXPECT_TRUE(dao.members().add(make_member(i)).ok());
    }
  }

  static DaoConfig make_config() {
    DaoConfig c;
    c.voting_period = 100;
    c.commit_reveal = true;
    c.reveal_period = 50;
    return c;
  }
};

TEST(CommitReveal, FullSealedLifecycle) {
  SealedFixture f;
  auto id = f.dao.propose(AccountId(1), ModuleId(0), "sealed", 0);
  ASSERT_TRUE(id.ok());
  // Commit window: voters file commitments; direct casting is rejected.
  EXPECT_EQ(f.dao.cast_vote(id.value(), AccountId(1), VoteChoice::kYes, 1).error().code,
            "dao.sealed_ballots");
  for (std::uint64_t i = 1; i <= 6; ++i) {
    const auto c = Dao::make_commitment(VoteChoice::kYes, 1000 + i, AccountId(i));
    ASSERT_TRUE(f.dao.commit_vote(id.value(), AccountId(i), c, 10).ok());
  }
  const auto c7 = Dao::make_commitment(VoteChoice::kNo, 7777, AccountId(7));
  ASSERT_TRUE(f.dao.commit_vote(id.value(), AccountId(7), c7, 10).ok());

  // Reveals are rejected while the commit window is still open.
  EXPECT_EQ(f.dao.reveal_vote(id.value(), AccountId(1), VoteChoice::kYes, 1001, 50)
                .error()
                .code,
            "dao.reveal_closed");
  // Finalize is rejected until the reveal window closes.
  EXPECT_EQ(f.dao.finalize(id.value(), 120).error().code, "dao.voting_open");

  // Reveal window: matching reveals count; a mismatched salt is rejected.
  for (std::uint64_t i = 1; i <= 6; ++i) {
    ASSERT_TRUE(f.dao.reveal_vote(id.value(), AccountId(i), VoteChoice::kYes,
                                  1000 + i, 110).ok());
  }
  EXPECT_EQ(f.dao.reveal_vote(id.value(), AccountId(7), VoteChoice::kNo, 1, 110)
                .error()
                .code,
            "dao.bad_reveal");
  // Lying about the choice also fails (choice is inside the hash).
  EXPECT_EQ(f.dao.reveal_vote(id.value(), AccountId(7), VoteChoice::kYes, 7777, 110)
                .error()
                .code,
            "dao.bad_reveal");

  auto status = f.dao.finalize(id.value(), 150);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value(), ProposalStatus::kPassed);
  const Proposal* p = f.dao.find(id.value());
  // Only the 6 revealed ballots count; 7's unrevealed commitment is void.
  EXPECT_DOUBLE_EQ(p->tally.yes, 6.0);
  EXPECT_DOUBLE_EQ(p->tally.no, 0.0);
}

TEST(CommitReveal, GuardsWindowsAndMembership) {
  SealedFixture f;
  auto id = f.dao.propose(AccountId(1), ModuleId(0), "sealed", 0);
  ASSERT_TRUE(id.ok());
  const auto c = Dao::make_commitment(VoteChoice::kYes, 5, AccountId(2));
  // Non-member cannot commit.
  EXPECT_EQ(f.dao.commit_vote(id.value(), AccountId(99), c, 10).error().code,
            "dao.not_a_member");
  ASSERT_TRUE(f.dao.commit_vote(id.value(), AccountId(2), c, 10).ok());
  // Double commitment rejected.
  EXPECT_EQ(f.dao.commit_vote(id.value(), AccountId(2), c, 11).error().code,
            "dao.double_vote");
  // Commit after the voting window is rejected.
  EXPECT_EQ(f.dao.commit_vote(id.value(), AccountId(3), c, 100).error().code,
            "dao.voting_closed");
  // Reveal without a commitment is rejected.
  EXPECT_EQ(f.dao.reveal_vote(id.value(), AccountId(3), VoteChoice::kYes, 5, 110)
                .error()
                .code,
            "dao.no_commitment");
  // Reveal after the reveal window is rejected.
  EXPECT_EQ(f.dao.reveal_vote(id.value(), AccountId(2), VoteChoice::kYes, 5, 160)
                .error()
                .code,
            "dao.reveal_closed");
}

TEST(CommitReveal, PlainDaoRejectsSealedCalls) {
  DaoFixture f;  // plain voting
  auto id = f.dao.propose(AccountId(1), ModuleId(0), "plain", 0);
  ASSERT_TRUE(id.ok());
  const auto c = Dao::make_commitment(VoteChoice::kYes, 5, AccountId(2));
  EXPECT_EQ(f.dao.commit_vote(id.value(), AccountId(2), c, 10).error().code,
            "dao.not_sealed");
  EXPECT_EQ(f.dao.reveal_vote(id.value(), AccountId(2), VoteChoice::kYes, 5, 110)
                .error()
                .code,
            "dao.not_sealed");
}

TEST(CommitReveal, CommitmentBindsVoterIdentity) {
  // The same (choice, salt) hashes differently for different voters, so a
  // copied commitment cannot be replayed by another member.
  const auto a = Dao::make_commitment(VoteChoice::kYes, 42, AccountId(1));
  const auto b = Dao::make_commitment(VoteChoice::kYes, 42, AccountId(2));
  EXPECT_NE(a, b);

  SealedFixture f;
  auto id = f.dao.propose(AccountId(1), ModuleId(0), "replay", 0);
  ASSERT_TRUE(id.ok());
  // Member 2 copies member 1's commitment...
  ASSERT_TRUE(f.dao.commit_vote(id.value(), AccountId(1), a, 10).ok());
  ASSERT_TRUE(f.dao.commit_vote(id.value(), AccountId(2), a, 10).ok());
  // ...but cannot produce a matching reveal for it.
  EXPECT_TRUE(f.dao.reveal_vote(id.value(), AccountId(1), VoteChoice::kYes, 42, 110).ok());
  EXPECT_EQ(f.dao.reveal_vote(id.value(), AccountId(2), VoteChoice::kYes, 42, 110)
                .error()
                .code,
            "dao.bad_reveal");
}

// ------------------------------------------------------------ federated

struct FederatedFixture {
  FederatedConfig config;
  FederatedDao fed;
  ModuleId privacy;
  ModuleId economy;

  FederatedFixture() : fed(make_config(), Rng(11)) {
    privacy = fed.create_module("privacy");
    economy = fed.create_module("economy");
    for (std::uint64_t i = 1; i <= 20; ++i) {
      EXPECT_TRUE(fed.enroll(make_member(i)).ok());
    }
    // Members 1..5 sit on the privacy committee, 6..10 on economy.
    for (std::uint64_t i = 1; i <= 5; ++i) {
      EXPECT_TRUE(fed.subscribe(AccountId(i), privacy).ok());
    }
    for (std::uint64_t i = 6; i <= 10; ++i) {
      EXPECT_TRUE(fed.subscribe(AccountId(i), economy).ok());
    }
  }

  static FederatedConfig make_config() {
    FederatedConfig c;
    c.module_config = DaoConfig{0.2, 0.5, 100, std::make_shared<OneMemberOneVote>()};
    c.global_config = DaoConfig{0.1, 0.5, 100, std::make_shared<OneMemberOneVote>()};
    c.escalation_margin = 0.25;
    return c;
  }
};

TEST(FederatedDao, RoutesToModuleCommittee) {
  FederatedFixture f;
  auto id = f.fed.propose(AccountId(1), f.privacy, "tighten PETs", 0);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(f.fed.is_module_scoped(id.value()));
  // Only committee members may vote.
  EXPECT_TRUE(f.fed.cast_vote(id.value(), AccountId(2), VoteChoice::kYes, 1).ok());
  EXPECT_EQ(f.fed.cast_vote(id.value(), AccountId(7), VoteChoice::kYes, 1).error().code,
            "dao.not_a_member");
}

TEST(FederatedDao, NonSubscriberProposalsGoGlobal) {
  FederatedFixture f;
  // Member 15 is enrolled but on no committee.
  auto id = f.fed.propose(AccountId(15), f.privacy, "outsider", 0);
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(f.fed.is_module_scoped(id.value()));
  // Everyone enrolled can vote on a global proposal.
  EXPECT_TRUE(f.fed.cast_vote(id.value(), AccountId(19), VoteChoice::kYes, 1).ok());
}

TEST(FederatedDao, ClearModuleDecisionDoesNotEscalate) {
  FederatedFixture f;
  auto id = f.fed.propose(AccountId(1), f.privacy, "clear", 0);
  ASSERT_TRUE(id.ok());
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(f.fed.cast_vote(id.value(), AccountId(i), VoteChoice::kYes, 1).ok());
  }
  auto outcome = f.fed.finalize(id.value(), 100);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().status, ProposalStatus::kPassed);
  EXPECT_FALSE(outcome.value().escalated_to.has_value());
  EXPECT_EQ(f.fed.escalations(), 0u);
}

TEST(FederatedDao, ContestedModuleDecisionEscalates) {
  FederatedFixture f;
  auto id = f.fed.propose(AccountId(1), f.privacy, "contested", 0);
  ASSERT_TRUE(id.ok());
  // 3 yes vs 2 no → margin 0.2 < 0.25 → escalate.
  for (std::uint64_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(f.fed.cast_vote(id.value(), AccountId(i), VoteChoice::kYes, 1).ok());
  }
  for (std::uint64_t i = 4; i <= 5; ++i) {
    ASSERT_TRUE(f.fed.cast_vote(id.value(), AccountId(i), VoteChoice::kNo, 1).ok());
  }
  auto outcome = f.fed.finalize(id.value(), 100);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome.value().escalated_to.has_value());
  EXPECT_EQ(f.fed.escalations(), 1u);
  const ProposalId global_id = *outcome.value().escalated_to;
  EXPECT_FALSE(f.fed.is_module_scoped(global_id));
  // The escalated proposal accepts votes from any enrolled member.
  EXPECT_TRUE(f.fed.cast_vote(global_id, AccountId(17), VoteChoice::kNo, 101).ok());
}

TEST(FederatedDao, PerMemberLoadBelowFlatEquivalent) {
  // The E2 claim in miniature: with proposals spread over two 5-member
  // committees, ballot requests per enrolled member stay far below a flat
  // DAO that asks all 20 members for every proposal.
  FederatedFixture f;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(f.fed.propose(AccountId(1), f.privacy, "p", 0).ok());
    ASSERT_TRUE(f.fed.propose(AccountId(6), f.economy, "e", 0).ok());
  }
  // Flat equivalent: 20 proposals x 20 members = 400 requests, 20 per member.
  // Federated: 20 proposals x 5-member committees = 100 requests, 5 per member.
  EXPECT_EQ(f.fed.total_ballot_requests(), 100u);
  EXPECT_DOUBLE_EQ(f.fed.avg_requests_per_member(), 5.0);
}

// ------------------------------------------------------------ contract

struct ContractFixture {
  Rng rng{55};
  std::shared_ptr<ledger::ContractRegistry> contracts =
      std::make_shared<ledger::ContractRegistry>();
  crypto::Wallet w0{rng}, w1{rng}, w2{rng};
  ledger::LedgerState state;
  DaoContractConfig config;

  ContractFixture() {
    config.voting_period_blocks = 10;
    contracts->install(std::make_shared<DaoContract>(config));
    for (const auto* w : {&w0, &w1, &w2}) state.credit(w->address(), 100);
  }

  Status call(const crypto::Wallet& w, const std::string& method, Bytes args,
              Tick height) {
    const auto tx = ledger::make_contract_call(
        w, state.nonce(w.address()), "dao", method, std::move(args), 0, rng);
    return state.apply(tx, *contracts, height);
  }
};

TEST(DaoContract, FullLifecycleOnChain) {
  ContractFixture f;
  ASSERT_TRUE(f.call(f.w0, "join", {}, 0).ok());
  ASSERT_TRUE(f.call(f.w1, "join", {}, 0).ok());
  ASSERT_TRUE(f.call(f.w2, "join", {}, 0).ok());
  EXPECT_EQ(DaoContract::member_count(f.state, "dao"), 3u);

  ASSERT_TRUE(f.call(f.w0, "propose", DaoContract::encode_propose("mint cap"), 1).ok());
  EXPECT_EQ(DaoContract::proposal_count(f.state, "dao"), 1u);

  ASSERT_TRUE(f.call(f.w0, "vote", DaoContract::encode_vote(0, 0), 2).ok());
  ASSERT_TRUE(f.call(f.w1, "vote", DaoContract::encode_vote(0, 0), 3).ok());
  ASSERT_TRUE(f.call(f.w2, "vote", DaoContract::encode_vote(0, 1), 3).ok());

  // Too early to finalize.
  EXPECT_EQ(f.call(f.w0, "finalize", DaoContract::encode_finalize(0), 5).error().code,
            "dao.voting_open");
  ASSERT_TRUE(f.call(f.w0, "finalize", DaoContract::encode_finalize(0), 11).ok());

  auto view = DaoContract::proposal(f.state, "dao", 0);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value().status, OnChainStatus::kPassed);
  EXPECT_EQ(view.value().yes, 2u);
  EXPECT_EQ(view.value().no, 1u);
  EXPECT_EQ(view.value().author, f.w0.address());
}

TEST(DaoContract, GuardsMembershipAndDoubleVotes) {
  ContractFixture f;
  ASSERT_TRUE(f.call(f.w0, "join", {}, 0).ok());
  EXPECT_EQ(f.call(f.w0, "join", {}, 0).error().code, "dao.already_member");
  EXPECT_EQ(f.call(f.w1, "propose", DaoContract::encode_propose("x"), 0).error().code,
            "dao.not_a_member");
  ASSERT_TRUE(f.call(f.w0, "propose", DaoContract::encode_propose("x"), 0).ok());
  ASSERT_TRUE(f.call(f.w0, "vote", DaoContract::encode_vote(0, 2), 1).ok());
  EXPECT_EQ(f.call(f.w0, "vote", DaoContract::encode_vote(0, 0), 1).error().code,
            "dao.double_vote");
  EXPECT_EQ(f.call(f.w0, "vote", DaoContract::encode_vote(9, 0), 1).error().code,
            "dao.no_such_proposal");
}

TEST(DaoContract, VotingClosesAfterPeriod) {
  ContractFixture f;
  ASSERT_TRUE(f.call(f.w0, "join", {}, 0).ok());
  ASSERT_TRUE(f.call(f.w0, "propose", DaoContract::encode_propose("x"), 0).ok());
  EXPECT_EQ(f.call(f.w0, "vote", DaoContract::encode_vote(0, 0), 10).error().code,
            "dao.voting_closed");
}

TEST(DaoContract, FailedCallLeavesNoTrace) {
  ContractFixture f;
  ASSERT_TRUE(f.call(f.w0, "join", {}, 0).ok());
  const auto root = f.state.commitment().root;
  EXPECT_FALSE(f.call(f.w0, "vote", DaoContract::encode_vote(0, 0), 1).ok());
  EXPECT_EQ(f.state.commitment().root, root);
}

TEST(DaoContract, TokenWeightedBallotsFollowBalances) {
  Rng rng(66);
  auto contracts = std::make_shared<ledger::ContractRegistry>();
  DaoContractConfig config;
  config.name = "tdao";
  config.voting_period_blocks = 10;
  config.quorum = 0.2;
  config.token_weighted = true;
  contracts->install(std::make_shared<DaoContract>(config));

  crypto::Wallet whale(rng), minnow1(rng), minnow2(rng);
  ledger::LedgerState state;
  state.credit(whale.address(), 10'000);
  state.credit(minnow1.address(), 100);
  state.credit(minnow2.address(), 100);

  auto call = [&](const crypto::Wallet& w, const std::string& method,
                  Bytes args, Tick height) {
    const auto tx = ledger::make_contract_call(
        w, state.nonce(w.address()), "tdao", method, std::move(args), 0, rng);
    return state.apply(tx, *contracts, height);
  };
  ASSERT_TRUE(call(whale, "join", {}, 0).ok());
  ASSERT_TRUE(call(minnow1, "join", {}, 0).ok());
  ASSERT_TRUE(call(minnow2, "join", {}, 0).ok());
  ASSERT_TRUE(call(whale, "propose", DaoContract::encode_propose("plutocracy"), 1).ok());
  // Whale yes vs two minnows no: token weight decides.
  ASSERT_TRUE(call(whale, "vote", DaoContract::encode_vote(0, 0), 2).ok());
  ASSERT_TRUE(call(minnow1, "vote", DaoContract::encode_vote(0, 1), 2).ok());
  ASSERT_TRUE(call(minnow2, "vote", DaoContract::encode_vote(0, 1), 2).ok());
  ASSERT_TRUE(call(whale, "finalize", DaoContract::encode_finalize(0), 11).ok());

  const auto view = DaoContract::proposal(state, "tdao", 0).value();
  EXPECT_EQ(view.status, OnChainStatus::kPassed);
  EXPECT_EQ(view.yes, 10'000u);
  EXPECT_EQ(view.no, 200u);
  // The same ballots under flat 1m1v (ContractFixture's "dao") would reject:
  // that contrast is the §III-B plutocracy concern, executable.
}

TEST(DaoContract, WorksThroughConsensus) {
  // End-to-end: DAO actions as transactions through the BFT committee.
  ContractFixture f;
  SimClock clock;
  net::Network network(clock, Rng(77),
                       net::LinkParams{.base_latency = 1.0, .jitter = 1.0, .drop_rate = 0.0});
  ledger::ValidatorCommittee committee(network, 4, f.contracts, f.state, 32, f.rng);

  auto submit = [&](const crypto::Wallet& w, const std::string& method,
                    Bytes args, std::uint64_t nonce) {
    committee.submit(ledger::make_contract_call(w, nonce, "dao", method,
                                                std::move(args), 0, f.rng));
  };
  submit(f.w0, "join", {}, 0);
  submit(f.w1, "join", {}, 0);
  ASSERT_TRUE(committee.run_round());
  submit(f.w0, "propose", DaoContract::encode_propose("on-chain"), 1);
  ASSERT_TRUE(committee.run_round());
  submit(f.w0, "vote", DaoContract::encode_vote(0, 0), 2);
  submit(f.w1, "vote", DaoContract::encode_vote(0, 0), 1);
  ASSERT_TRUE(committee.run_round());
  EXPECT_TRUE(committee.replicas_consistent());
  auto view = DaoContract::proposal(committee.chain(3).state(), "dao", 0);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value().yes, 2u);
}

}  // namespace
}  // namespace mv::dao
