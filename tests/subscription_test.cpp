// Subscription read-path tests: CommitPush/request codecs, the end-to-end
// push pipeline (commit hook -> publisher -> zero-copy fan-out -> verifying
// feed), lifecycle edge cases (unsubscribe with pushes in flight, late
// subscriber resync, slow-subscriber eviction, stale rejection), gap
// recovery through the retained ring after partitions and load shedding,
// the mixed-flood isolation guarantee (consensus never sheds while pushes
// do), and the ClientApi facade's error taxonomy and wire envelope.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ledger/chain.h"
#include "ledger/client_api.h"
#include "ledger/subscription.h"
#include "net/subscription.h"

namespace mv::ledger {
namespace {

/// KV contract: "put" writes the key named by the payload — gives blocks
/// store writes so store-event pushes have something to carry.
class KvContract final : public Contract {
 public:
  [[nodiscard]] std::string name() const override { return "kv"; }
  [[nodiscard]] Status call(CallContext& ctx, const std::string& method,
                            const Bytes& arg) const override {
    const std::string key(arg.begin(), arg.end());
    if (method == "put") {
      ctx.put(key, Bytes{0xCD, static_cast<std::uint8_t>(key.size())});
      return {};
    }
    return Status::fail("kv.bad_method", method);
  }
};

struct SubFixture {
  Rng rng{20260809};
  crypto::Wallet v0{rng};
  crypto::Wallet v1{rng};
  crypto::Wallet alice{rng};
  crypto::Wallet bob{rng};
  std::shared_ptr<ContractRegistry> contracts =
      std::make_shared<ContractRegistry>();
  ChainConfig config;
  LedgerState genesis;
  SimClock clock;
  net::Network net{clock, Rng(7),
                   net::LinkParams{.base_latency = 1.0, .jitter = 0.0,
                                   .drop_rate = 0.0}};

  SubFixture() {
    contracts->install(std::make_shared<KvContract>());
    config.validators = {v0.public_key(), v1.public_key()};
    config.state_retention = 8;
    genesis.credit(alice.address(), 1'000'000);
    genesis.credit(bob.address(), 500'000);
  }

  [[nodiscard]] Blockchain make_chain() {
    return Blockchain(config, contracts, genesis);
  }

  [[nodiscard]] LightClientConfig lc_config(const Blockchain& chain) const {
    return LightClientConfig{config.validators, chain.genesis_hash()};
  }

  /// Every block transfers from alice (touches her balance and nonce) and
  /// writes one kv key (a store event).
  void grow(Blockchain& chain, int blocks) {
    for (int b = 0; b < blocks; ++b) {
      const std::int64_t h = chain.height();
      const crypto::Wallet& proposer = (h % 2 == 0) ? v0 : v1;
      std::vector<Transaction> txs;
      txs.push_back(make_transfer(alice, chain.state().nonce(alice.address()),
                                  bob.address(), 3, 1, rng));
      const std::string key = "k" + std::to_string(h % 3);
      txs.push_back(make_contract_call(bob, chain.state().nonce(bob.address()),
                                       "kv", "put",
                                       Bytes(key.begin(), key.end()), 1, rng));
      ASSERT_TRUE(chain.append(chain.assemble(proposer, txs, h, rng)).ok())
          << "block " << h;
    }
  }
};

/// Full push stack: chain + publisher + server on one node, verifying feed
/// on another.
struct FeedHarness {
  SubFixture& f;
  Blockchain& chain;
  net::SubscriptionServer& server;
  SubscriptionPublisher publisher;
  SubscriptionFeed feed;
  NodeId server_node;
  NodeId feed_node;

  FeedHarness(SubFixture& fixture, Blockchain& c, net::SubscriptionServer& s)
      : f(fixture),
        chain(c),
        server(s),
        publisher(chain, server),
        feed(f.net, SubscriptionFeedConfig{f.lc_config(chain),
                                           {f.alice.address()},
                                           {"kv"}}) {
    server_node =
        f.net.add_node([this](const net::Message& m) { server.handle(m); });
    feed_node =
        f.net.add_node([this](const net::Message& m) { feed.handle(m); });
    server.bind(server_node);
    feed.bind(feed_node);
  }
};

// ---------------------------------------------------------------- codecs

TEST(SubscriptionWire, RequestAndResponseCodecsAreStrict) {
  net::SubscriptionRequest req;
  req.from_height = 4;
  req.headers = true;
  req.accounts = {1, 0xFFFF'FFFF'FFFF'FFFFull, 42};
  req.stores = {"kv", "governance"};
  const Bytes bytes = req.encode();
  const auto back = net::SubscriptionRequest::decode(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, net::kSubWireVersion);
  EXPECT_EQ(back->from_height, 4);
  EXPECT_TRUE(back->headers);
  EXPECT_EQ(back->accounts, req.accounts);
  EXPECT_EQ(back->stores, req.stores);

  Bytes trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(net::SubscriptionRequest::decode(trailing).has_value());

  // A forged element count larger than the remaining payload is rejected
  // before any allocation.
  ByteWriter w;
  w.u32(net::kSubWireVersion);
  w.i64(0);
  w.u8(1);
  w.u32(0x00FF'FFFF);
  EXPECT_FALSE(net::SubscriptionRequest::decode(w.take()).has_value());

  net::SubscriptionResponse resp;
  resp.code = errc::kSubStaleFrom;
  resp.earliest = 9;
  resp.tip = 12;
  const auto resp_back = net::SubscriptionResponse::decode(resp.encode());
  ASSERT_TRUE(resp_back.has_value());
  EXPECT_FALSE(resp_back->ok());
  EXPECT_EQ(resp_back->code, errc::kSubStaleFrom);
  EXPECT_EQ(resp_back->earliest, 9);
  EXPECT_EQ(resp_back->tip, 12);
}

TEST(SubscriptionWire, CommitPushCodecRoundTripsAndRejectsMutations) {
  SubFixture f;
  Blockchain chain = f.make_chain();
  f.grow(chain, 2);

  CommitPush push;
  push.header = chain.block_at(1)->header;
  auto proof = chain.prove_account(f.alice.address(), 1);
  ASSERT_TRUE(proof.ok());
  push.proofs.push_back(proof.value());
  push.events.push_back(StoreEvent{"kv", "k1"});

  const Bytes bytes = push.encode();
  auto back = CommitPush::decode(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().header.hash(), push.header.hash());
  ASSERT_EQ(back.value().proofs.size(), 1u);
  EXPECT_EQ(back.value().proofs[0].address, f.alice.address());
  EXPECT_EQ(back.value().events, push.events);
  // Decode/encode is the identity on canonical pushes.
  EXPECT_EQ(back.value().encode(), bytes);

  Bytes bad_version = bytes;
  bad_version[0] ^= 0xFF;
  const auto rejected = CommitPush::decode(bad_version);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, errc::kSubBadVersion);

  Bytes trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(CommitPush::decode(trailing).ok());

  Bytes truncated = bytes;
  truncated.pop_back();
  EXPECT_FALSE(CommitPush::decode(truncated).ok());
}

// ------------------------------------------------------------ happy path

TEST(SubscriptionStream, CommitsArriveAsVerifiedHeadersProofsAndEvents) {
  SubFixture f;
  Blockchain chain = f.make_chain();
  net::SubscriptionServer server(f.net);
  FeedHarness h(f, chain, server);

  int headers = 0;
  int accounts = 0;
  int events = 0;
  std::uint64_t last_balance = 0;
  h.feed.on_header = [&](const BlockHeader&) { ++headers; };
  h.feed.on_account = [&](const AccountStatement& st, const AccountProof& ap) {
    ++accounts;
    EXPECT_EQ(ap.address, f.alice.address());
    last_balance = st.balance;
  };
  h.feed.on_store_event = [&](const StoreEvent& e) {
    ++events;
    EXPECT_EQ(e.contract, "kv");
  };

  h.feed.subscribe(h.server_node);
  f.net.run_until_idle();
  ASSERT_TRUE(server.subscribed(h.feed_node));

  f.grow(chain, 5);
  f.net.run_until_idle();

  // Every commit became one push the feed verified: contiguous headers, a
  // proof for the watched (touched) account each block, store events.
  EXPECT_EQ(headers, 5);
  EXPECT_EQ(accounts, 5);
  EXPECT_EQ(events, 5);
  EXPECT_EQ(h.feed.next_height(), chain.height());
  EXPECT_EQ(h.feed.light_client().tip_hash(), chain.tip_hash());
  EXPECT_EQ(h.feed.rejected(), 0u);
  EXPECT_EQ(h.feed.gaps_detected(), 0u);
  EXPECT_EQ(last_balance, chain.state().balance(f.alice.address()));

  const auto stats = server.stats();
  EXPECT_EQ(stats.commits_published, 5u);
  EXPECT_EQ(stats.pushes_sent, 5u);
  EXPECT_EQ(stats.acks, 5u);
  EXPECT_EQ(stats.evicted_slow, 0u);
  EXPECT_EQ(stats.subscribers, 1u);
}

// -------------------------------------------------------------- lifecycle

TEST(SubscriptionLifecycle, LateSubscriberResyncsFromRetainedRing) {
  SubFixture f;
  Blockchain chain = f.make_chain();
  net::SubscriptionServer server(f.net);
  FeedHarness h(f, chain, server);

  // Commits happen before anyone subscribes; the ring retains their pushes.
  f.grow(chain, 3);
  f.net.run_until_idle();

  int headers = 0;
  h.feed.on_header = [&](const BlockHeader&) { ++headers; };
  h.feed.subscribe(h.server_node);
  f.net.run_until_idle();

  // The subscribe itself replayed heights 0..2 out of the ring.
  EXPECT_EQ(headers, 3);
  EXPECT_EQ(h.feed.next_height(), chain.height());
  EXPECT_EQ(server.stats().resync_pushes, 3u);

  // And the live path continues seamlessly after the resync.
  f.grow(chain, 2);
  f.net.run_until_idle();
  EXPECT_EQ(headers, 5);
  EXPECT_EQ(h.feed.light_client().tip_hash(), chain.tip_hash());
}

TEST(SubscriptionLifecycle, SubscribeBelowTheRingIsRejectedStale) {
  SubFixture f;
  Blockchain chain = f.make_chain();
  net::SubscriptionServer server(f.net,
                                 net::SubscriptionConfig{.per_client_cap = 64,
                                                         .retain = 2});
  FeedHarness h(f, chain, server);

  f.grow(chain, 5);
  f.net.run_until_idle();

  // The ring holds only heights 3..4; a feed needing height 0 cannot be
  // resynced and must bootstrap from a snapshot instead.
  h.feed.subscribe(h.server_node);
  f.net.run_until_idle();
  EXPECT_TRUE(h.feed.stale());
  EXPECT_EQ(h.feed.server_earliest(), 3);
  EXPECT_EQ(h.feed.next_height(), 0);
  EXPECT_EQ(server.subscriber_count(), 0u);
  EXPECT_EQ(server.stats().rejected_stale, 1u);
}

TEST(SubscriptionLifecycle, UnsubscribeWithPushInFlightAndLateAckAreSafe) {
  SubFixture f;
  net::SubscriptionServer server(f.net);
  std::vector<net::Message> inbox;
  const NodeId server_node =
      f.net.add_node([&](const net::Message& m) { server.handle(m); });
  const NodeId sub_node =
      f.net.add_node([&](const net::Message& m) { inbox.push_back(m); });
  server.bind(server_node);

  net::SubscriptionRequest req;
  req.headers = true;
  ASSERT_TRUE(f.net.send(sub_node, server_node, net::kSubSubscribeReq,
                         req.encode()));
  f.net.run_until_idle();
  ASSERT_TRUE(server.subscribed(sub_node));

  // A push goes into flight, and the unsubscribe races it.
  const auto payload = std::make_shared<const Bytes>(Bytes{0xAA, 0xBB});
  server.publish(0, payload);
  ASSERT_TRUE(f.net.send(sub_node, server_node, net::kSubUnsubscribeReq,
                         Bytes{}));
  f.net.run_until_idle();

  // The in-flight push still arrived; the registration is gone.
  const auto pushes = [&] {
    int n = 0;
    for (const auto& m : inbox) n += m.topic == net::kSubPush ? 1 : 0;
    return n;
  };
  EXPECT_EQ(pushes(), 1);
  EXPECT_EQ(server.subscriber_count(), 0u);
  EXPECT_EQ(server.stats().unsubscribed, 1u);

  // The late ack for that push is ignored, not misapplied.
  ASSERT_TRUE(f.net.send(sub_node, server_node, net::kSubAck,
                         net::encode_sub_ack(0)));
  f.net.run_until_idle();
  EXPECT_EQ(server.stats().acks, 0u);

  // And later commits no longer reach the departed subscriber.
  server.publish(1, payload);
  f.net.run_until_idle();
  EXPECT_EQ(pushes(), 1);

  // Server-side drop of a node without a subscription says so.
  const Status s = server.drop(sub_node);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, errc::kSubNotSubscribed);
}

TEST(SubscriptionLifecycle, SlowSubscriberIsEvictedAtThePerClientCap) {
  SubFixture f;
  net::SubscriptionServer server(f.net,
                                 net::SubscriptionConfig{.per_client_cap = 2,
                                                         .retain = 8});
  std::vector<net::Message> inbox;
  const NodeId server_node =
      f.net.add_node([&](const net::Message& m) { server.handle(m); });
  const NodeId sub_node =
      f.net.add_node([&](const net::Message& m) { inbox.push_back(m); });
  server.bind(server_node);

  net::SubscriptionRequest req;
  req.headers = true;
  ASSERT_TRUE(f.net.send(sub_node, server_node, net::kSubSubscribeReq,
                         req.encode()));
  f.net.run_until_idle();

  // The subscriber never acks: two pushes fill its allowance, the third
  // publish evicts it instead of growing an unbounded backlog.
  const auto payload = std::make_shared<const Bytes>(Bytes{0x01});
  server.publish(0, payload);
  server.publish(1, payload);
  server.publish(2, payload);
  f.net.run_until_idle();

  const auto stats = server.stats();
  EXPECT_EQ(stats.pushes_sent, 2u);
  EXPECT_EQ(stats.evicted_slow, 1u);
  EXPECT_EQ(server.subscriber_count(), 0u);
  EXPECT_EQ(f.net.stats().subscribers_evicted, 1u);

  // Eviction is not a ban: a resubscribe (the recovered client's move)
  // reinstates it and resyncs the missed heights from the ring.
  req.from_height = 0;
  ASSERT_TRUE(f.net.send(sub_node, server_node, net::kSubSubscribeReq,
                         req.encode()));
  f.net.run_until_idle();
  EXPECT_EQ(server.subscriber_count(), 1u);
  EXPECT_EQ(server.stats().resync_pushes, 3u);
}

// ---------------------------------------------------------- gap recovery

TEST(SubscriptionGap, PartitionLosesPushesButContinuityRecoversFromRing) {
  SubFixture f;
  Blockchain chain = f.make_chain();
  net::SubscriptionServer server(f.net);
  FeedHarness h(f, chain, server);

  int headers = 0;
  h.feed.on_header = [&](const BlockHeader&) { ++headers; };
  h.feed.subscribe(h.server_node);
  f.net.run_until_idle();
  f.grow(chain, 1);
  f.net.run_until_idle();
  ASSERT_EQ(headers, 1);

  // Partition the feed; two commits' pushes are lost on the floor.
  f.net.set_group(h.feed_node, 1);
  f.grow(chain, 2);
  f.net.run_until_idle();
  f.net.heal();
  EXPECT_EQ(headers, 1);

  // The next live push arrives ahead of the feed's height: gap detected,
  // resubscribe, and the ring replays the missed commits in order.
  f.grow(chain, 1);
  f.net.run_until_idle();
  EXPECT_GE(h.feed.gaps_detected(), 1u);
  EXPECT_GE(h.feed.resubscribes(), 1u);
  EXPECT_EQ(headers, 4);
  EXPECT_EQ(h.feed.next_height(), chain.height());
  EXPECT_EQ(h.feed.light_client().tip_hash(), chain.tip_hash());
  EXPECT_EQ(h.feed.rejected(), 0u);
}

// ------------------------------------------------------------ mixed flood

TEST(SubscriptionFlood, PushesShedGracefullyWhileConsensusNeverSheds) {
  SubFixture f;
  Blockchain chain = f.make_chain();

  JobQueueConfig qconfig;
  qconfig.threads = 1;
  qconfig.limit(JobClass::kClientQuery).max_depth = 1;
  JobQueue queue(qconfig);
  net::SubscriptionServer server(f.net, net::SubscriptionConfig{}, &queue);
  FeedHarness h(f, chain, server);

  h.feed.subscribe(h.server_node);
  f.net.run_until_idle();
  ASSERT_TRUE(server.subscribed(h.feed_node));

  // Pin the single worker, then fill the client lane's depth allowance, so
  // every subsequent fan-out submit is shed at admission — a deterministic
  // stand-in for a subscriber storm saturating the lane.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ASSERT_TRUE(queue.submit(JobClass::kClientQuery, [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  }));
  while (queue.stats().of(JobClass::kClientQuery).depth > 0) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(queue.submit(JobClass::kClientQuery, [] {}));

  // The flood: commits keep coming, and consensus-class work interleaves.
  std::atomic<int> consensus_done{0};
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(queue.submit(JobClass::kConsensus, [&] { ++consensus_done; }));
    f.grow(chain, 1);
  }
  EXPECT_EQ(server.stats().commits_shed, 4u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  queue.drain();
  f.net.run_until_idle();

  // The isolation guarantee: every shed was a subscriber push, none was
  // consensus.
  const auto qstats = queue.stats();
  EXPECT_EQ(qstats.of(JobClass::kConsensus).shed(), 0u);
  EXPECT_EQ(consensus_done.load(), 4);
  EXPECT_GT(qstats.of(JobClass::kClientQuery).shed(), 0u);
  EXPECT_GE(f.net.stats().subscription_sheds, 4u);

  // Shed pushes never broke continuity: the next live push exposes the gap
  // and the retained ring (which kept every commit, shed or not) resyncs
  // the feed to the tip with a contiguous header chain.
  f.grow(chain, 1);
  queue.drain();
  f.net.run_until_idle();
  EXPECT_GE(h.feed.gaps_detected(), 1u);
  EXPECT_EQ(h.feed.next_height(), chain.height());
  EXPECT_EQ(h.feed.light_client().tip_hash(), chain.tip_hash());
}

// -------------------------------------------------------------- ClientApi

TEST(ClientApiFacade, TypedReadsMapSubsystemErrorsIntoApiTaxonomy) {
  SubFixture f;
  f.config.state_retention = 2;
  Blockchain chain = f.make_chain();
  f.grow(chain, 6);
  ClientApi api(chain);

  EXPECT_EQ(api.tip_height(), 5);

  auto header = api.header(1);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().hash(), chain.block_at(1)->header.hash());
  EXPECT_EQ(api.header(99).error().code, errc::kApiBadHeight);
  EXPECT_EQ(api.header(-1).error().code, errc::kApiBadHeight);

  auto proof = api.account_proof(f.alice.address(), 5);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(verify_account_proof(proof.value(),
                                   chain.block_at(5)->header.state_root)
                  .ok());
  // Retention is 2: height 0 is readable as a header but stale as state.
  EXPECT_EQ(api.account_proof(f.alice.address(), 0).error().code,
            errc::kApiStaleHeight);
  EXPECT_EQ(api.account_proof(f.alice.address(), 99).error().code,
            errc::kApiBadHeight);
  EXPECT_EQ(api.snapshot_at(0).error().code, errc::kApiStaleHeight);
  EXPECT_TRUE(api.snapshot_at(5).ok());

  // Without a subscription service the whole admin surface says so.
  EXPECT_EQ(api.subscription_stats().error().code,
            errc::kApiNoSubscriptionService);
  EXPECT_EQ(api.drop_subscriber(NodeId{}).error().code,
            errc::kApiNoSubscriptionService);

  // The retry contract is part of the taxonomy.
  EXPECT_TRUE(errc::is_transient(errc::kApiOverloaded));
  EXPECT_TRUE(errc::is_transient(errc::kSnapshotServerBusy));
  EXPECT_FALSE(errc::is_transient(errc::kApiStaleHeight));
  EXPECT_FALSE(errc::is_transient(errc::kApiBadHeight));
  EXPECT_FALSE(errc::is_transient(errc::kMempoolUnderpriced));
}

TEST(ClientApiFacade, SubscriptionAdminSurface) {
  SubFixture f;
  Blockchain chain = f.make_chain();
  net::SubscriptionServer server(f.net);
  FeedHarness h(f, chain, server);
  ClientApi api(chain, &server);

  h.feed.subscribe(h.server_node);
  f.net.run_until_idle();

  auto stats = api.subscription_stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().subscribers, 1u);

  EXPECT_EQ(api.drop_subscriber(h.server_node).error().code,
            errc::kApiUnknownSubscription);
  EXPECT_TRUE(api.drop_subscriber(h.feed_node).ok());
  EXPECT_EQ(server.subscriber_count(), 0u);
}

namespace {
struct Parsed {
  bool ok = false;
  Bytes payload;
  std::string code;
};

Parsed parse_response(const Bytes& response) {
  Parsed out;
  ByteReader r(response);
  const auto version = r.u32();
  const auto ok = r.u8();
  EXPECT_TRUE(version.ok() && ok.ok());
  EXPECT_EQ(version.value(), kClientApiVersion);
  out.ok = ok.value() == 1;
  if (out.ok) {
    auto payload = r.bytes();
    EXPECT_TRUE(payload.ok());
    out.payload = std::move(payload).value();
  } else {
    auto code = r.str();
    auto message = r.str();
    EXPECT_TRUE(code.ok() && message.ok());
    out.code = std::move(code).value();
  }
  EXPECT_TRUE(r.exhausted());
  return out;
}
}  // namespace

TEST(ClientApiFacade, DispatchEnvelopeRoundTripsAndRejectsBadRequests) {
  SubFixture f;
  Blockchain chain = f.make_chain();
  f.grow(chain, 3);
  ClientApi api(chain);

  {  // tip
    ByteWriter w;
    w.u32(kClientApiVersion);
    w.u8(static_cast<std::uint8_t>(ClientRequest::kTip));
    const Parsed resp = parse_response(api.dispatch(w.take()));
    ASSERT_TRUE(resp.ok);
    ByteReader r(resp.payload);
    EXPECT_EQ(r.i64().value(), 2);
  }
  {  // header
    ByteWriter w;
    w.u32(kClientApiVersion);
    w.u8(static_cast<std::uint8_t>(ClientRequest::kHeader));
    w.i64(1);
    const Parsed resp = parse_response(api.dispatch(w.take()));
    ASSERT_TRUE(resp.ok);
    auto header = BlockHeader::decode(resp.payload);
    ASSERT_TRUE(header.ok());
    EXPECT_EQ(header.value().hash(), chain.block_at(1)->header.hash());
  }
  {  // account proof, verified against the served header's state root
    ByteWriter w;
    w.u32(kClientApiVersion);
    w.u8(static_cast<std::uint8_t>(ClientRequest::kAccountProof));
    w.u64(f.alice.address().value);
    w.i64(2);
    const Parsed resp = parse_response(api.dispatch(w.take()));
    ASSERT_TRUE(resp.ok);
    auto proof = AccountProof::decode(resp.payload);
    ASSERT_TRUE(proof.ok());
    EXPECT_TRUE(verify_account_proof(proof.value(),
                                     chain.block_at(2)->header.state_root)
                    .ok());
  }
  {  // version skew is an explicit answer, not silence
    ByteWriter w;
    w.u32(kClientApiVersion + 1);
    w.u8(static_cast<std::uint8_t>(ClientRequest::kTip));
    const Parsed resp = parse_response(api.dispatch(w.take()));
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.code, errc::kApiBadVersion);
  }
  {  // malformed: truncated, trailing, unknown kind, subsystem error mapped
    EXPECT_EQ(parse_response(api.dispatch(Bytes{})).code, errc::kApiBadRequest);
    ByteWriter trailing;
    trailing.u32(kClientApiVersion);
    trailing.u8(static_cast<std::uint8_t>(ClientRequest::kTip));
    trailing.u8(0);
    EXPECT_EQ(parse_response(api.dispatch(trailing.take())).code,
              errc::kApiBadRequest);
    ByteWriter unknown;
    unknown.u32(kClientApiVersion);
    unknown.u8(200);
    EXPECT_EQ(parse_response(api.dispatch(unknown.take())).code,
              errc::kApiBadRequest);
    ByteWriter bad_height;
    bad_height.u32(kClientApiVersion);
    bad_height.u8(static_cast<std::uint8_t>(ClientRequest::kHeader));
    bad_height.i64(42);
    EXPECT_EQ(parse_response(api.dispatch(bad_height.take())).code,
              errc::kApiBadHeight);
  }
}

}  // namespace
}  // namespace mv::ledger
