// World tests: spaces/avatars, privacy-bubble semantics (interactions and
// visibility), secondary avatars, and the behavioural linkage attack.
#include <gtest/gtest.h>

#include "world/crowd.h"
#include "world/equality.h"
#include "world/linkage.h"
#include "world/world.h"

namespace mv::world {
namespace {

struct Fixture {
  World world{Rng(5)};
  SpaceId plaza;
  AvatarId alice, bob, mallory;

  Fixture() {
    plaza = world.create_space(50, 50);
    alice = world.spawn_primary(1, plaza, {10, 10});
    bob = world.spawn_primary(2, plaza, {11, 10});
    mallory = world.spawn_primary(3, plaza, {10.5, 10.5});
  }
};

TEST(World, SpawnAndQuery) {
  Fixture f;
  EXPECT_EQ(f.world.avatar_count(), 3u);
  ASSERT_NE(f.world.avatar(f.alice), nullptr);
  EXPECT_EQ(f.world.avatar(f.alice)->owner, 1u);
  EXPECT_FALSE(f.world.avatar(f.alice)->secondary);
  EXPECT_EQ(f.world.avatar(AvatarId(99)), nullptr);
  ASSERT_NE(f.world.space(f.plaza), nullptr);
  EXPECT_DOUBLE_EQ(f.world.space(f.plaza)->width, 50.0);
}

TEST(World, SecondaryAvatarSharesOwnerButIsDistinct) {
  Fixture f;
  auto clone = f.world.spawn_secondary(f.alice, {20, 20});
  ASSERT_TRUE(clone.ok());
  const Avatar* c = f.world.avatar(clone.value());
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->secondary);
  EXPECT_EQ(c->owner, 1u);
  EXPECT_NE(c->id, f.alice);
  EXPECT_FALSE(f.world.spawn_secondary(AvatarId(99), {0, 0}).ok());
}

TEST(World, InteractionRequiresProximity) {
  Fixture f;
  EXPECT_TRUE(f.world.interact(f.alice, f.bob, InteractionKind::kChat, 0).ok());
  f.world.move(f.bob, {40, 40});
  const auto s = f.world.interact(f.alice, f.bob, InteractionKind::kChat, 1);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "world.out_of_range");
  EXPECT_EQ(f.world.stats().blocked_by_range, 1u);
}

TEST(World, BubbleVetoesStrangersButNotFriends) {
  Fixture f;
  f.world.set_bubble(f.alice, true, 2.0);
  // Mallory is 0.7 away — inside the bubble, not allowed.
  const auto blocked = f.world.interact(f.mallory, f.alice, InteractionKind::kHarass, 0);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.error().code, "world.bubble");
  // Bob is a friend.
  f.world.allow_in_bubble(f.alice, f.bob);
  EXPECT_TRUE(f.world.interact(f.bob, f.alice, InteractionKind::kChat, 1).ok());
  EXPECT_EQ(f.world.stats().blocked_by_bubble, 1u);
}

TEST(World, BubbleOffRestoresAccess) {
  Fixture f;
  f.world.set_bubble(f.alice, true, 2.0);
  EXPECT_FALSE(f.world.interact(f.mallory, f.alice, InteractionKind::kChat, 0).ok());
  f.world.set_bubble(f.alice, false);
  EXPECT_TRUE(f.world.interact(f.mallory, f.alice, InteractionKind::kChat, 1).ok());
}

TEST(World, VisibilityRespectsBubble) {
  Fixture f;
  // Everyone sees everyone at first (range 10).
  EXPECT_EQ(f.world.visible_to(f.mallory, 10.0).size(), 2u);
  f.world.set_bubble(f.alice, true, 2.0);
  // Mallory stands inside Alice's bubble → loses visual access to her.
  const auto visible = f.world.visible_to(f.mallory, 10.0);
  ASSERT_EQ(visible.size(), 1u);
  EXPECT_EQ(visible[0], f.bob);
  // Bob (1.0 + ~0.7 away from Alice... also inside 2.0) — friend him in.
  f.world.allow_in_bubble(f.alice, f.bob);
  EXPECT_EQ(f.world.visible_to(f.bob, 10.0).size(), 2u);
}

TEST(World, LogRecordsDeliveredOnly) {
  Fixture f;
  f.world.set_bubble(f.alice, true, 2.0);
  (void)f.world.interact(f.mallory, f.alice, InteractionKind::kHarass, 0);
  ASSERT_TRUE(f.world.interact(f.mallory, f.bob, InteractionKind::kChat, 1).ok());
  ASSERT_EQ(f.world.log().size(), 1u);
  EXPECT_EQ(f.world.log()[0].kind, InteractionKind::kChat);
  EXPECT_EQ(f.world.log()[0].to, f.bob);
}

TEST(World, WanderStaysInBounds) {
  Fixture f;
  for (int i = 0; i < 200; ++i) {
    f.world.wander(f.alice);
    const Vec2 p = f.world.avatar(f.alice)->pos;
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 50.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 50.0);
  }
}

TEST(World, LandGatingRespectsOracle) {
  Fixture f;
  const SpaceId estate = f.world.create_space(20, 20);
  f.world.set_space_access(estate, /*public_access=*/false, /*land_token=*/7);
  // No oracle wired: every gate is closed.
  EXPECT_EQ(f.world.enter(f.alice, estate, {1, 1}).error().code, "world.land_gated");
  // Oracle: owner 1 (Alice) holds token 7.
  f.world.set_access_oracle([](std::uint64_t user, std::uint64_t token) {
    return user == 1 && token == 7;
  });
  EXPECT_TRUE(f.world.enter(f.alice, estate, {1, 1}).ok());
  EXPECT_EQ(f.world.avatar(f.alice)->space, estate);
  EXPECT_EQ(f.world.enter(f.bob, estate, {1, 2}).error().code, "world.land_gated");
  // Reopening the space admits everyone.
  f.world.set_space_access(estate, true);
  EXPECT_TRUE(f.world.enter(f.bob, estate, {1, 2}).ok());
  // Unknown ids fail cleanly.
  EXPECT_FALSE(f.world.enter(AvatarId(99), estate, {0, 0}).ok());
  EXPECT_FALSE(f.world.enter(f.alice, SpaceId(99), {0, 0}).ok());
}

TEST(World, EavesdroppersHearNearbyInteractions) {
  Fixture f;
  // Mallory stands 0.7 from Alice; Bob is 1.0 away. Alice chats with Bob;
  // Mallory overhears.
  const auto listeners = f.world.eavesdroppers(f.alice, f.bob, 2.0);
  ASSERT_EQ(listeners.size(), 1u);
  EXPECT_EQ(listeners[0], f.mallory);
  // Move Mallory out of earshot.
  f.world.move(f.mallory, {40, 40});
  EXPECT_TRUE(f.world.eavesdroppers(f.alice, f.bob, 2.0).empty());
}

TEST(World, BubbleDoesNotStopEavesdropping) {
  // The paper's residual risk: bubbles restrict access, not observation.
  Fixture f;
  f.world.set_bubble(f.alice, true, 2.0);
  f.world.allow_in_bubble(f.alice, f.bob);
  ASSERT_TRUE(f.world.interact(f.bob, f.alice, InteractionKind::kChat, 0).ok());
  // Mallory, vetoed from interacting, still observes the metadata.
  const auto listeners = f.world.eavesdroppers(f.bob, f.alice, 2.0);
  ASSERT_EQ(listeners.size(), 1u);
  EXPECT_EQ(listeners[0], f.mallory);
}

TEST(World, EavesdropperReconstructsSocialGraph) {
  // A stationary observer in a busy plaza harvests "who talks to whom" from
  // interaction metadata alone.
  World world{Rng(77)};
  Rng rng(78);
  const SpaceId plaza = world.create_space(10, 10);
  const AvatarId observer = world.spawn_primary(0, plaza, {5, 5});
  std::vector<AvatarId> people;
  for (std::uint64_t i = 1; i <= 6; ++i) {
    people.push_back(world.spawn_primary(i, plaza, {4.0 + 0.3 * static_cast<double>(i), 5.0}));
  }
  // Ground-truth friendship: i talks to i+1.
  std::map<std::pair<std::uint64_t, std::uint64_t>, int> harvested;
  for (int round = 0; round < 20; ++round) {
    for (std::size_t i = 0; i + 1 < people.size(); i += 2) {
      if (world.interact(people[i], people[i + 1], InteractionKind::kChat, round).ok()) {
        const auto listeners = world.eavesdroppers(people[i], people[i + 1], 5.0);
        if (std::find(listeners.begin(), listeners.end(), observer) != listeners.end()) {
          ++harvested[{i, i + 1}];
        }
      }
    }
    (void)rng;
  }
  // The observer saw every pair repeatedly — behavioural metadata leaked
  // without any sensor access at all.
  EXPECT_EQ(harvested.size(), 3u);
  for (const auto& [pair, count] : harvested) EXPECT_EQ(count, 20);
}

// ------------------------------------------------------------ linkage

TEST(Linkage, ProfilesNormalized) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const InterestProfile p = sample_profile(rng);
    double sum = 0.0;
    for (const double v : p) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Linkage, SessionCountsMatchActions) {
  Rng rng(7);
  const InterestProfile p = sample_profile(rng);
  const SessionTrace t = play_session(AvatarId(1), p, 500, 0.0, rng);
  std::uint32_t total = 0;
  for (const auto c : t.counts) total += c;
  EXPECT_EQ(total, 500u);
}

TEST(Linkage, SimilarityBounds) {
  Rng rng(8);
  const InterestProfile a = sample_profile(rng);
  const InterestProfile b = sample_profile(rng);
  EXPECT_NEAR(profile_similarity(a, a), 1.0, 1e-9);
  const double s = profile_similarity(a, b);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0 + 1e-9);
}

TEST(Linkage, CloneWithoutNoiseIsLinkable) {
  Rng rng(9);
  const std::size_t users = 100;
  std::vector<InterestProfile> latent, enrolled;
  for (std::size_t u = 0; u < users; ++u) {
    latent.push_back(sample_profile(rng));
    // The attacker enrolls each primary avatar's observed histogram.
    enrolled.push_back(trace_histogram(
        play_session(AvatarId(u), latent.back(), 200, 0.0, rng)));
  }
  std::size_t linked = 0;
  for (std::size_t u = 0; u < users; ++u) {
    const auto clone_trace =
        play_session(AvatarId(1000 + u), latent[u], 200, 0.0, rng);
    linked += (link_to_primary(trace_histogram(clone_trace), enrolled) == u);
  }
  // Undefended clones are trivially linkable — the paper's implicit premise.
  EXPECT_GT(static_cast<double>(linked) / users, 0.8);
}

class LinkageNoiseTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinkageNoiseTest, BehaviourNoiseDefeatsLinkage) {
  Rng rng(GetParam());
  const std::size_t users = 80;
  std::vector<InterestProfile> latent, enrolled;
  for (std::size_t u = 0; u < users; ++u) {
    latent.push_back(sample_profile(rng));
    enrolled.push_back(trace_histogram(
        play_session(AvatarId(u), latent.back(), 150, 0.0, rng)));
  }
  auto accuracy_at = [&](double noise) {
    std::size_t linked = 0;
    for (std::size_t u = 0; u < users; ++u) {
      const auto t = play_session(AvatarId(1000 + u), latent[u], 150, noise, rng);
      linked += (link_to_primary(trace_histogram(t), enrolled) == u);
    }
    return static_cast<double>(linked) / users;
  };
  const double none = accuracy_at(0.0);
  const double heavy = accuracy_at(0.95);
  EXPECT_GT(none, 0.7);
  EXPECT_LT(heavy, none - 0.3);  // blending toward uniform breaks the match
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkageNoiseTest, ::testing::Values(21, 42, 63));

// ------------------------------------------------------------ crowd

TEST(Crowd, GridMatchesBruteForceNeighbourhood) {
  CrowdConfig config;
  config.arena_width = 50;
  config.arena_height = 50;
  config.aoi_radius = 8.0;
  config.render_cap = 1000;  // cap off: pure range query
  CrowdSim sim(120, config, Rng(70));
  sim.run(3);
  // Verify interest sets against brute force for a few clients. We can't
  // reach positions directly, so compare set sizes via a second simulation?
  // interest_set is the API under test: check symmetry + radius soundness
  // through pairwise containment consistency.
  for (std::size_t i = 0; i < 20; ++i) {
    const auto set_i = sim.interest_set(i);
    for (const std::size_t j : set_i) {
      const auto set_j = sim.interest_set(j);
      // AOI is symmetric when the cap is off.
      EXPECT_NE(std::find(set_j.begin(), set_j.end(), i), set_j.end())
          << i << " sees " << j << " but not vice versa";
    }
  }
}

TEST(Crowd, RenderCapBoundsInterestSet) {
  CrowdConfig config;
  config.arena_width = 20;  // dense crush
  config.arena_height = 20;
  config.aoi_radius = 15.0;
  config.render_cap = 16;
  CrowdSim sim(300, config, Rng(71));
  sim.run(2);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_LE(sim.interest_set(i).size(), 16u);
  }
  EXPECT_GT(sim.metrics().capped_clients, 0u);
}

TEST(Crowd, NaiveBroadcastCountsAllPairs) {
  CrowdConfig config;
  config.mode = DisseminationMode::kNaiveBroadcast;
  CrowdSim sim(100, config, Rng(72));
  sim.run(5);
  EXPECT_EQ(sim.metrics().updates_delivered, 5u * 100u * 99u);
}

TEST(Crowd, InterestGridBoundsPerClientLoadUnderConstantDensity) {
  // Same density, 4x the attendance → per-client updates stay ~flat while
  // naive grows 4x. This is E15's shape as a unit test.
  auto run_grid = [](std::size_t n) {
    CrowdConfig config;
    const double side = std::sqrt(8.0 * static_cast<double>(n));
    config.arena_width = side;
    config.arena_height = side;
    CrowdSim sim(n, config, Rng(73));
    sim.run(10);
    return sim.metrics().updates_per_client_tick(n);
  };
  const double small = run_grid(1000);
  const double large = run_grid(4000);
  EXPECT_NEAR(large, small, small * 0.25 + 2.0);
}

// ------------------------------------------------------------ equality

TEST(Equality, PhysicalWorldShowsGroupGap) {
  EqualityConfig config;
  config.people = 1500;
  EqualitySim sim(config, Rng(91));
  const auto m = sim.run(PresentationRegime::kPhysical);
  EXPECT_GT(m.group_outcome_gap, 0.1);   // structural bias is visible
  EXPECT_GT(m.talent_correlation, 0.3);  // talent still matters somewhat
}

TEST(Equality, DefaultAvatarsImportTheBias) {
  EqualityConfig config;
  config.people = 1500;
  EqualitySim physical(config, Rng(92));
  EqualitySim mirrored(config, Rng(92));
  const auto mp = physical.run(PresentationRegime::kPhysical);
  const auto mm = mirrored.run(PresentationRegime::kDefaultAvatars);
  // Mirroring avatars change nothing: same gap (same seed, same draws).
  EXPECT_NEAR(mm.group_outcome_gap, mp.group_outcome_gap, 0.05);
}

class EqualitySeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EqualitySeedTest, CustomAvatarsCollapseTheGapAndLiftTalent) {
  EqualityConfig config;
  config.people = 1500;
  EqualitySim a(config, Rng(GetParam()));
  EqualitySim b(config, Rng(GetParam()));
  const auto physical = a.run(PresentationRegime::kPhysical);
  const auto custom = b.run(PresentationRegime::kCustomAvatars);
  // The §IV-B claim: the group gap collapses...
  EXPECT_LT(custom.group_outcome_gap, physical.group_outcome_gap * 0.4);
  // ...while talent remains the dominant predictor. (Bias noise is
  // *redistributed*, not removed, so the correlation does not rise — it just
  // stops being stratified by group.)
  EXPECT_GT(custom.talent_correlation, 0.85);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EqualitySeedTest, ::testing::Values(93, 94, 95));

}  // namespace
}  // namespace mv::world
