// Sharded ledger tests: beacon codec + anchor proofs, account partitioning,
// single-shard byte-identity with the plain chain, thread-count determinism,
// cross-shard lock-and-mint end to end, replay/stale-root/foreign-root
// rejection, receipt codec mutation fuzz, and composed account proofs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <vector>

#include "ledger/beacon.h"
#include "ledger/shard.h"

namespace mv::ledger {
namespace {

/// Generate a wallet whose address lives on `target` of `num_shards`.
crypto::Wallet wallet_on_shard(Rng& rng, std::uint32_t target,
                               std::size_t num_shards) {
  while (true) {
    crypto::Wallet w(rng);
    if (shard_of(w.address(), num_shards) == target) return w;
  }
}

std::uint64_t store_u64(const LedgerState& state, const char* key) {
  const Bytes* bytes = state.store_get(kXShardContractName, key);
  if (bytes == nullptr) return 0;
  ByteReader r(*bytes);
  auto v = r.u64();
  return v.ok() ? v.value() : 0;
}

ShardAnchor anchor_of(const crypto::Digest& state_root,
                      const crypto::Digest& receipts_root) {
  ShardAnchor a;
  a.state_root = state_root;
  a.receipts_root = receipts_root;
  return a;
}

crypto::Digest digest_of(std::uint8_t fill) {
  crypto::Digest d{};
  d.fill(fill);
  return d;
}

// ---------------------------------------------------------------- beacon

TEST(Beacon, HeaderCodecRoundTrip) {
  Rng rng(7);
  crypto::Wallet proposer(rng);
  BeaconHeader h;
  h.height = 3;
  h.prev_hash = digest_of(0xaa);
  h.timestamp = 42;
  h.shards = {anchor_of(digest_of(1), digest_of(2)),
              anchor_of(digest_of(3), digest_of(4))};
  h.beacon_root = combine_beacon_root(h.shards);
  h.proposer_pub = proposer.public_key();
  h.proposer_sig = proposer.sign(h.signing_bytes(), rng);

  auto decoded = BeaconHeader::decode(h.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().height, h.height);
  EXPECT_EQ(decoded.value().prev_hash, h.prev_hash);
  EXPECT_EQ(decoded.value().shards, h.shards);
  EXPECT_EQ(decoded.value().beacon_root, h.beacon_root);
  EXPECT_EQ(decoded.value().hash(), h.hash());
  EXPECT_EQ(decoded.value().encode(), h.encode());
}

TEST(Beacon, DecodeRejectsTrailingBytes) {
  BeaconHeader h;
  h.shards = {anchor_of(digest_of(1), digest_of(2))};
  h.beacon_root = combine_beacon_root(h.shards);
  Bytes enc = h.encode();
  enc.push_back(0);
  const auto decoded = BeaconHeader::decode(enc);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, errc::kBeaconTrailing);
}

TEST(Beacon, DecodeRejectsTamperedAnchor) {
  BeaconHeader h;
  h.shards = {anchor_of(digest_of(1), digest_of(2)),
              anchor_of(digest_of(3), digest_of(4))};
  h.beacon_root = combine_beacon_root(h.shards);
  Bytes enc = h.encode();
  // Flip one bit somewhere inside the anchor roots; the recomputed beacon
  // root no longer matches the encoded one.
  enc[enc.size() / 2] ^= 0x01;
  const auto decoded = BeaconHeader::decode(enc);
  EXPECT_FALSE(decoded.ok());
}

TEST(Beacon, DecodeRejectsGarbage) {
  EXPECT_FALSE(BeaconHeader::decode(Bytes{1, 2, 3}).ok());
  EXPECT_FALSE(BeaconHeader::decode(Bytes{}).ok());
}

TEST(Beacon, ShardAnchorProofVerifies) {
  std::vector<ShardAnchor> anchors;
  for (std::uint8_t i = 0; i < 5; ++i) {
    anchors.push_back(anchor_of(digest_of(i), digest_of(0x10 + i)));
  }
  const crypto::Digest root = combine_beacon_root(anchors);
  for (std::uint32_t i = 0; i < anchors.size(); ++i) {
    const auto proof = prove_shard_anchor(anchors, i);
    EXPECT_TRUE(verify_shard_anchor(root, i, anchors[i], proof));
    // Same anchor claimed at the wrong index fails.
    EXPECT_FALSE(verify_shard_anchor(root, (i + 1) % anchors.size(),
                                     anchors[i], proof));
  }
  // A tampered anchor fails against an honest proof.
  auto proof0 = prove_shard_anchor(anchors, 0);
  ShardAnchor forged = anchors[0];
  forged.state_root = digest_of(0xff);
  EXPECT_FALSE(verify_shard_anchor(root, 0, forged, proof0));
}

TEST(Beacon, ArchiveServesAnchors) {
  BeaconArchive archive;
  EXPECT_EQ(archive.size(), 0);
  EXPECT_FALSE(archive.anchor(0, 0).has_value());

  BeaconHeader h;
  h.height = 0;
  h.shards = {anchor_of(digest_of(1), digest_of(2)),
              anchor_of(digest_of(3), digest_of(4))};
  archive.push(h);
  ASSERT_EQ(archive.size(), 1);
  const auto a = archive.anchor(0, 1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->state_root, digest_of(3));
  EXPECT_FALSE(archive.anchor(0, 2).has_value());  // shard out of range
  EXPECT_FALSE(archive.anchor(1, 0).has_value());  // height not archived
  EXPECT_FALSE(archive.anchor(-1, 0).has_value());
}

// ------------------------------------------------------------ partitioning

TEST(Shard, ShardOfStableAndInRange) {
  Rng rng(11);
  std::map<std::uint32_t, int> histogram;
  for (int i = 0; i < 200; ++i) {
    crypto::Wallet w(rng);
    const std::uint32_t s = shard_of(w.address(), 4);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(s, shard_of(w.address(), 4));  // stable
    EXPECT_EQ(shard_of(w.address(), 1), 0u);
    ++histogram[s];
  }
  // The mix should spread 200 addresses over all 4 shards.
  EXPECT_EQ(histogram.size(), 4u);
}

TEST(Shard, PartitionGenesisConservesBalances) {
  Rng rng(13);
  LedgerState genesis;
  std::uint64_t total = 0;
  std::vector<crypto::Address> addrs;
  for (int i = 0; i < 50; ++i) {
    crypto::Wallet w(rng);
    genesis.credit(w.address(), 100 + static_cast<std::uint64_t>(i));
    total += 100 + static_cast<std::uint64_t>(i);
    addrs.push_back(w.address());
  }
  const auto parts = partition_genesis(genesis, 4);
  ASSERT_EQ(parts.size(), 4u);
  std::uint64_t sum = 0;
  for (const auto& part : parts) {
    for (const auto& [addr, bal] : part.balances()) sum += bal;
  }
  EXPECT_EQ(sum, total);
  for (const auto addr : addrs) {
    EXPECT_EQ(parts[shard_of(addr, 4)].balance(addr), genesis.balance(addr));
  }
}

// ------------------------------------------ single-shard byte-identity

TEST(ShardedLedger, SingleShardMatchesPlainChain) {
  Rng rng(17);
  crypto::Wallet proposer(rng);
  crypto::Wallet alice(rng);
  crypto::Wallet bob(rng);
  LedgerState genesis;
  genesis.credit(alice.address(), 10'000);
  genesis.credit(bob.address(), 10'000);

  ShardConfig config;
  config.num_shards = 1;
  config.validators = {proposer.public_key()};
  ShardedLedger sharded(config, genesis);

  ChainConfig chain_config;
  chain_config.validators = config.validators;
  Blockchain plain(chain_config, std::make_shared<ContractRegistry>(),
                   LedgerState(genesis));

  Rng txrng(18);
  Rng signing(19);
  for (int round = 0; round < 4; ++round) {
    std::vector<Transaction> txs;
    txs.push_back(make_transfer(alice, static_cast<std::uint64_t>(round),
                                bob.address(), 10 + round, 1, txrng));
    txs.push_back(make_transfer(bob, static_cast<std::uint64_t>(round),
                                alice.address(), 5, 1, txrng));
    for (const auto& tx : txs) {
      ASSERT_TRUE(sharded.submit(tx).ok());
    }
    const auto beacon = sharded.commit_round(proposer, round);
    ASSERT_TRUE(beacon.ok());

    const Block block = plain.assemble(proposer, txs, round, signing);
    ASSERT_TRUE(plain.append(block).ok());

    // The shard's state commitment is byte-identical to the single-chain
    // path, and the beacon anchors exactly that root.
    const auto* sc = sharded.shard(0).commitment_at(round);
    const auto* pc = plain.commitment_at(round);
    ASSERT_NE(sc, nullptr);
    ASSERT_NE(pc, nullptr);
    EXPECT_EQ(sc->root, pc->root);
    EXPECT_EQ(sc->accounts_root, pc->accounts_root);
    EXPECT_EQ(beacon.value().shards[0].state_root, pc->root);
  }
}

// ------------------------------------------------- thread determinism

std::vector<crypto::Digest> run_sharded_workload(std::size_t queue_threads) {
  Rng rng(23);
  crypto::Wallet proposer(rng);
  const std::size_t kShards = 4;
  std::vector<crypto::Wallet> wallets;
  LedgerState genesis;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    for (int i = 0; i < 3; ++i) {
      wallets.push_back(wallet_on_shard(rng, s, kShards));
      genesis.credit(wallets.back().address(), 50'000);
    }
  }

  ShardConfig config;
  config.num_shards = kShards;
  config.validators = {proposer.public_key()};
  config.validation.sig_cache = std::make_shared<crypto::DigestLruSet>();
  JobQueueConfig qc;
  qc.threads = queue_threads;
  config.validation.job_queue = std::make_shared<JobQueue>(qc);
  ShardedLedger ledger(config, genesis);

  std::vector<crypto::Digest> roots;
  Rng txrng(29);
  std::vector<std::uint64_t> nonces(wallets.size(), 0);
  for (int round = 0; round < 5; ++round) {
    for (std::size_t i = 0; i < wallets.size(); ++i) {
      const std::size_t peer = (i + 1 + static_cast<std::size_t>(round)) %
                               wallets.size();
      if (peer == i) continue;
      const auto tx = make_transfer(wallets[i], nonces[i]++,
                                    wallets[peer].address(), 7, 1, txrng);
      EXPECT_TRUE(ledger.submit(tx).ok());
    }
    const auto beacon = ledger.commit_round(proposer, round);
    EXPECT_TRUE(beacon.ok());
    roots.push_back(beacon.value().beacon_root);
  }
  return roots;
}

TEST(ShardedLedger, BeaconRootsStableAcrossThreadCounts) {
  const auto inline_roots = run_sharded_workload(0);
  const auto threaded_roots = run_sharded_workload(4);
  EXPECT_EQ(inline_roots, threaded_roots);
}

// --------------------------------------------------- cross-shard transfer

struct CrossShardFixture {
  Rng rng{31};
  crypto::Wallet proposer{rng};
  crypto::Wallet alice;  ///< shard 0
  crypto::Wallet bob;    ///< shard 1
  ShardConfig config;
  std::unique_ptr<ShardedLedger> ledger;

  CrossShardFixture()
      : alice(wallet_on_shard(rng, 0, 2)), bob(wallet_on_shard(rng, 1, 2)) {
    LedgerState genesis;
    genesis.credit(alice.address(), 10'000);
    genesis.credit(bob.address(), 1'000);
    config.num_shards = 2;
    config.validators = {proposer.public_key()};
    ledger = std::make_unique<ShardedLedger>(config, genesis);
  }

  std::uint64_t total_balances() const {
    std::uint64_t sum = 0;
    for (std::uint32_t s = 0; s < 2; ++s) {
      for (const auto& [addr, bal] : ledger->state(s).balances()) sum += bal;
    }
    return sum;
  }

  std::uint64_t conserved_total() const {
    std::uint64_t sum = total_balances();
    for (std::uint32_t s = 0; s < 2; ++s) {
      sum += ledger->state(s).burned_fees();
      sum += store_u64(ledger->state(s), kXShardLockedTotalKey);
      sum -= store_u64(ledger->state(s), kXShardMintedTotalKey);
    }
    return sum;
  }
};

TEST(CrossShard, LockProveMintEndToEnd) {
  CrossShardFixture f;
  const std::uint64_t supply = f.total_balances();

  // Round 0: alice locks 300 on shard 0 for bob on shard 1.
  Rng txrng(37);
  ASSERT_TRUE(
      f.ledger
          ->submit(make_xshard_lock(f.alice, 0, 1, f.bob.address(), 300, 2,
                                    txrng))
          .ok());
  const auto beacon0 = f.ledger->commit_round(f.proposer, 0);
  ASSERT_TRUE(beacon0.ok());
  EXPECT_EQ(f.ledger->receipt_count(0), 1u);
  EXPECT_EQ(f.ledger->state(0).balance(f.alice.address()), 10'000u - 300 - 2);
  EXPECT_EQ(store_u64(f.ledger->state(0), kXShardLockedTotalKey), 300u);
  EXPECT_EQ(f.conserved_total(), supply);

  // The receipt is provable against the beacon-anchored receipts root.
  const auto bundle = f.ledger->prove_receipt(0, 0);
  ASSERT_TRUE(bundle.ok());
  EXPECT_EQ(bundle.value().beacon_height, 0);
  auto receipt = CrossShardReceipt::decode(bundle.value().receipt);
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(receipt.value().from, f.alice.address());
  EXPECT_EQ(receipt.value().to, f.bob.address());
  EXPECT_EQ(receipt.value().amount, 300u);

  // Round 1: bob presents the proof on shard 1 and mints.
  ASSERT_TRUE(
      f.ledger->submit(make_xshard_mint(f.bob, 0, bundle.value(), 1, txrng))
          .ok());
  const auto beacon1 = f.ledger->commit_round(f.proposer, 1);
  ASSERT_TRUE(beacon1.ok());
  EXPECT_EQ(f.ledger->state(1).balance(f.bob.address()), 1'000u + 300 - 1);
  EXPECT_EQ(store_u64(f.ledger->state(1), kXShardMintedTotalKey), 300u);
  EXPECT_EQ(f.conserved_total(), supply);

  // Round 2: presenting the same receipt again is rejected at application —
  // the tx is dropped from the block and bob's balance does not change.
  ASSERT_TRUE(
      f.ledger->submit(make_xshard_mint(f.bob, 1, bundle.value(), 1, txrng))
          .ok());
  const auto beacon2 = f.ledger->commit_round(f.proposer, 2);
  ASSERT_TRUE(beacon2.ok());
  EXPECT_EQ(f.ledger->state(1).balance(f.bob.address()), 1'000u + 300 - 1);
  EXPECT_EQ(store_u64(f.ledger->state(1), kXShardMintedTotalKey), 300u);
  EXPECT_EQ(f.conserved_total(), supply);
}

TEST(CrossShard, LockRejectsBadDestAndOverdraft) {
  CrossShardFixture f;
  Rng txrng(41);
  // Self-shard destination: tx admitted to the mempool but dropped at apply.
  ASSERT_TRUE(
      f.ledger
          ->submit(make_xshard_lock(f.alice, 0, 0, f.bob.address(), 10, 1,
                                    txrng))
          .ok());
  // Out-of-range destination.
  ASSERT_TRUE(
      f.ledger
          ->submit(make_xshard_lock(f.bob, 0, 7, f.alice.address(), 10, 1,
                                    txrng))
          .ok());
  const auto beacon = f.ledger->commit_round(f.proposer, 0);
  ASSERT_TRUE(beacon.ok());
  EXPECT_EQ(f.ledger->receipt_count(0), 0u);
  EXPECT_EQ(f.ledger->receipt_count(1), 0u);
  EXPECT_EQ(f.ledger->state(0).balance(f.alice.address()), 10'000u);
  EXPECT_EQ(f.ledger->state(1).balance(f.bob.address()), 1'000u);
}

/// Direct-application harness around the mint path: a hand-built archive
/// lets each rejection case target one specific check.
struct MintFixture {
  Rng rng{43};
  crypto::Wallet alice;  ///< locker on shard 0
  crypto::Wallet bob;    ///< recipient on shard 1
  CrossShardReceipt receipt;
  crypto::MerkleMap tree;       ///< shard 0's receipt tree, with the receipt
  crypto::MerkleMap old_tree;   ///< shard 0's receipt tree, before the lock
  std::shared_ptr<BeaconArchive> archive = std::make_shared<BeaconArchive>();
  std::shared_ptr<ContractRegistry> contracts =
      std::make_shared<ContractRegistry>();
  LedgerState dest;  ///< shard 1's state

  MintFixture()
      : alice(wallet_on_shard(rng, 0, 2)), bob(wallet_on_shard(rng, 1, 2)) {
    receipt = CrossShardReceipt{0, 0, 1, alice.address(), bob.address(), 500};
    tree.put(receipt.id, crypto::sha256(receipt.encode()));

    // Beacon 0 predates the lock (empty receipt tree); beacon 1 anchors it.
    BeaconHeader h0;
    h0.height = 0;
    h0.shards = {anchor_of(digest_of(1), old_tree.root()),
                 anchor_of(digest_of(2), digest_of(0))};
    archive->push(h0);
    BeaconHeader h1;
    h1.height = 1;
    h1.shards = {anchor_of(digest_of(3), tree.root()),
                 anchor_of(digest_of(4), digest_of(0))};
    archive->push(h1);

    contracts->install(std::make_shared<XShardContract>(1, 2, archive));
    dest.credit(bob.address(), 1'000);
  }

  [[nodiscard]] ReceiptProofBundle bundle() const {
    ReceiptProofBundle b;
    b.beacon_height = 1;
    b.source_shard = 0;
    b.receipt = receipt.encode();
    b.proof = tree.prove(receipt.id);
    return b;
  }

  [[nodiscard]] Status mint_with(const ReceiptProofBundle& b,
                                 std::uint64_t nonce) {
    Rng txrng(47);
    return dest.apply(make_xshard_mint(bob, nonce, b, 1, txrng), *contracts, 0);
  }
};

TEST(CrossShard, MintAcceptsThenRejectsReplay) {
  MintFixture f;
  ASSERT_TRUE(f.mint_with(f.bundle(), 0).ok());
  EXPECT_EQ(f.dest.balance(f.bob.address()), 1'000u + 500 - 1);
  const auto replay = f.mint_with(f.bundle(), 1);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.error().code, errc::kXShardReceiptSpent);
  EXPECT_EQ(f.dest.balance(f.bob.address()), 1'000u + 500 - 1);
}

TEST(CrossShard, MintRejectsStaleRoot) {
  MintFixture f;
  // Proof is valid for beacon 1's tree but presented against beacon 0's
  // (pre-lock) root: the anchored root does not contain the receipt.
  auto b = f.bundle();
  b.beacon_height = 0;
  const auto s = f.mint_with(b, 0);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, errc::kXShardBadProof);
}

TEST(CrossShard, MintRejectsForeignShardRoot) {
  MintFixture f;
  // Claiming the wrong source shard: the receipt's own source field wins,
  // so a mismatched claim is bad args...
  auto b = f.bundle();
  b.source_shard = 1;
  const auto s = f.mint_with(b, 0);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, errc::kXShardBadArgs);
  // ...a receipt destined for some other shard is refused outright...
  CrossShardReceipt foreign = f.receipt;
  foreign.dest_shard = 0;
  foreign.source_shard = 1;
  crypto::MerkleMap foreign_tree;
  foreign_tree.put(foreign.id, crypto::sha256(foreign.encode()));
  ReceiptProofBundle fb;
  fb.beacon_height = 1;
  fb.source_shard = 1;
  fb.receipt = foreign.encode();
  fb.proof = foreign_tree.prove(foreign.id);
  const auto wrong = f.mint_with(fb, 0);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.error().code, errc::kXShardWrongShard);
  // ...and a genuine receipt presented with a proof rooted in a tree that is
  // NOT the anchored one (an attacker-built side tree) fails the root check.
  crypto::MerkleMap side_tree;
  side_tree.put(f.receipt.id, crypto::sha256(f.receipt.encode()));
  side_tree.put(99, digest_of(0x99));  // diverges from the anchored root
  auto forged_bundle = f.bundle();
  forged_bundle.proof = side_tree.prove(f.receipt.id);
  const auto s2 = f.mint_with(forged_bundle, 0);
  ASSERT_FALSE(s2.ok());
  EXPECT_EQ(s2.error().code, errc::kXShardBadProof);
}

TEST(CrossShard, MintRejectsUnknownBeacon) {
  MintFixture f;
  auto b = f.bundle();
  b.beacon_height = 99;
  const auto s = f.mint_with(b, 0);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, errc::kXShardUnknownBeacon);
}

// -------------------------------------------------------- codec fuzzing

TEST(CrossShard, ReceiptCodecRoundTrip) {
  const CrossShardReceipt r{7, 2, 5, crypto::Address{111}, crypto::Address{222},
                            9'999};
  const auto decoded = CrossShardReceipt::decode(r.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), r);
}

TEST(CrossShard, ReceiptCodecRejectsInvalidFields) {
  CrossShardReceipt r{0, 2, 2, crypto::Address{1}, crypto::Address{2}, 10};
  EXPECT_FALSE(CrossShardReceipt::decode(r.encode()).ok());  // src == dest
  r.dest_shard = 3;
  r.amount = 0;
  EXPECT_FALSE(CrossShardReceipt::decode(r.encode()).ok());  // zero amount
  r.amount = 10;
  r.to = crypto::Address{0};
  EXPECT_FALSE(CrossShardReceipt::decode(r.encode()).ok());  // null recipient
}

TEST(CrossShard, ReceiptCodecMutationFuzz) {
  const CrossShardReceipt r{3, 0, 1, crypto::Address{0xabcd},
                            crypto::Address{0xef01}, 1'234};
  const Bytes wire = r.encode();
  // Every truncation fails.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    Bytes cut(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(CrossShardReceipt::decode(cut).ok()) << "len=" << len;
  }
  // Every single-byte mutation either fails to decode or decodes to a
  // receipt that differs from the original — no mutation is silently
  // absorbed, so sha256(wire) binding the exact bytes is sound.
  Rng rng(53);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    Bytes mutated = wire;
    mutated[i] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    const auto decoded = CrossShardReceipt::decode(mutated);
    if (decoded.ok()) {
      EXPECT_NE(decoded.value(), r) << "mutation at byte " << i;
      EXPECT_EQ(decoded.value().encode(), mutated);
    }
  }
}

// ------------------------------------------------- composed account proof

TEST(ShardedLedger, ComposedAccountProofVerifies) {
  CrossShardFixture f;
  Rng txrng(59);
  ASSERT_TRUE(
      f.ledger
          ->submit(make_transfer(f.alice, 0, f.bob.address(), 100, 1, txrng))
          .ok());
  ASSERT_TRUE(f.ledger->commit_round(f.proposer, 0).ok());

  const auto proof = f.ledger->prove_account(f.alice.address());
  ASSERT_TRUE(proof.ok());
  const auto* beacon = f.ledger->beacon_at(proof.value().beacon_height);
  ASSERT_NE(beacon, nullptr);
  EXPECT_TRUE(
      verify_sharded_account_proof(proof.value(), beacon->beacon_root).ok());

  // Tampering with the anchor or claiming the wrong shard breaks the chain.
  auto tampered = proof.value();
  tampered.anchor.state_root = digest_of(0x77);
  EXPECT_FALSE(
      verify_sharded_account_proof(tampered, beacon->beacon_root).ok());
  auto wrong_shard = proof.value();
  wrong_shard.shard ^= 1;
  EXPECT_FALSE(
      verify_sharded_account_proof(wrong_shard, beacon->beacon_root).ok());
}

TEST(ShardedLedger, ProveReceiptErrors) {
  CrossShardFixture f;
  EXPECT_EQ(f.ledger->prove_receipt(9, 0).error().code, errc::kShardBadConfig);
  EXPECT_EQ(f.ledger->prove_receipt(0, 0).error().code,
            errc::kShardUnknownReceipt);
  Rng txrng(61);
  ASSERT_TRUE(
      f.ledger
          ->submit(make_xshard_lock(f.alice, 0, 1, f.bob.address(), 10, 1,
                                    txrng))
          .ok());
  ASSERT_TRUE(f.ledger->commit_round(f.proposer, 0).ok());
  EXPECT_TRUE(f.ledger->prove_receipt(0, 0).ok());
  EXPECT_EQ(f.ledger->prove_receipt(0, 5).error().code,
            errc::kShardUnknownReceipt);
}

}  // namespace
}  // namespace mv::ledger
