// Safety tests: kinematics, collision accounting, and the E6 shape — every
// intervention cuts collisions relative to occluded walking.
#include <gtest/gtest.h>

#include "safety/room.h"

namespace mv::safety {
namespace {

RoomConfig base_config(Intervention intervention) {
  RoomConfig c;
  c.users = 4;
  c.obstacles = 6;
  c.intervention = intervention;
  return c;
}

SafetyMetrics run_with(Intervention intervention, std::uint64_t seed,
                       std::size_t ticks = 3000) {
  RoomSim sim(base_config(intervention), Rng(seed));
  sim.run(ticks);
  return sim.metrics();
}

TEST(TimeToCollision, HeadOnAndMissAndReceding) {
  using world::Vec2;
  // Head-on: 10m apart, closing at 2 m/tick, radii 0.5 each → gap 9m → t=4.5.
  EXPECT_NEAR(time_to_collision({0, 0}, {1, 0}, 0.5, {10, 0}, {-1, 0}, 0.5),
              4.5, 1e-9);
  // Parallel tracks far apart never collide.
  EXPECT_LT(time_to_collision({0, 0}, {1, 0}, 0.3, {0, 5}, {1, 0}, 0.3), 0.0);
  // Receding.
  EXPECT_LT(time_to_collision({0, 0}, {-1, 0}, 0.3, {5, 0}, {1, 0}, 0.3), 0.0);
  // Already overlapping → 0.
  EXPECT_DOUBLE_EQ(
      time_to_collision({0, 0}, {0, 0}, 0.5, {0.4, 0}, {0, 0}, 0.5), 0.0);
  // Stationary pair apart → never.
  EXPECT_LT(time_to_collision({0, 0}, {0, 0}, 0.3, {5, 0}, {0, 0}, 0.3), 0.0);
}

TEST(RoomSim, UsersStayInRoom) {
  RoomSim sim(base_config(Intervention::kNone), Rng(1));
  sim.run(2000);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto p = sim.user_position(i);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 10.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 10.0);
  }
}

TEST(RoomSim, WalkingAccumulatesDistance) {
  RoomSim sim(base_config(Intervention::kNone), Rng(2));
  sim.run(1000);
  // 4 users x 1000 ticks x 0.14 m = 560 m, minus chaperone stops (none here).
  EXPECT_NEAR(sim.metrics().distance_walked, 560.0, 1.0);
  EXPECT_EQ(sim.metrics().ticks, 1000u);
}

TEST(RoomSim, OccludedWalkersCollide) {
  const auto m = run_with(Intervention::kNone, 3);
  EXPECT_GT(m.total_collisions(), 10u);  // blind walking in a cluttered room
  EXPECT_GT(m.user_obstacle_collisions, 0u);
  EXPECT_DOUBLE_EQ(m.disruption, 0.0);  // nothing ever pops into view
}

TEST(RoomSim, EveryInterventionReducesCollisions) {
  // Average over seeds to keep the comparison stable.
  double none = 0, shadow = 0, redirect = 0, chaperone = 0;
  const int seeds = 5;
  for (int s = 0; s < seeds; ++s) {
    none += run_with(Intervention::kNone, 100 + s).collisions_per_100m();
    shadow += run_with(Intervention::kShadowAvatars, 100 + s).collisions_per_100m();
    redirect += run_with(Intervention::kRedirectedWalking, 100 + s).collisions_per_100m();
    chaperone += run_with(Intervention::kChaperone, 100 + s).collisions_per_100m();
  }
  EXPECT_LT(redirect, none * 0.5);
  EXPECT_LT(chaperone, none * 0.5);
  EXPECT_LT(shadow, none);  // shadows only reveal users, not furniture
}

TEST(RoomSim, ShadowAvatarsOnlyHelpAgainstUsers) {
  double none_uu = 0, shadow_uu = 0;
  for (int s = 0; s < 5; ++s) {
    none_uu += static_cast<double>(
        run_with(Intervention::kNone, 200 + s).user_user_collisions);
    shadow_uu += static_cast<double>(
        run_with(Intervention::kShadowAvatars, 200 + s).user_user_collisions);
  }
  EXPECT_LT(shadow_uu, none_uu);
}

TEST(RoomSim, InterventionsCostImmersion) {
  const auto shadow = run_with(Intervention::kShadowAvatars, 7);
  const auto redirect = run_with(Intervention::kRedirectedWalking, 7);
  const auto chaperone = run_with(Intervention::kChaperone, 7);
  EXPECT_GT(shadow.disruption, 0.0);
  EXPECT_GT(redirect.disruption, 0.0);
  EXPECT_GT(chaperone.disruption, 0.0);
}

TEST(RoomSim, EmptyRoomNoObstacleCollisions) {
  RoomConfig c = base_config(Intervention::kNone);
  c.users = 1;
  c.obstacles = 0;
  RoomSim sim(c, Rng(8));
  sim.run(3000);
  EXPECT_EQ(sim.metrics().user_user_collisions, 0u);
  EXPECT_EQ(sim.metrics().user_obstacle_collisions, 0u);
}

class InterventionSeedTest
    : public ::testing::TestWithParam<std::tuple<Intervention, std::uint64_t>> {};

TEST_P(InterventionSeedTest, MetricsAreSane) {
  const auto [intervention, seed] = GetParam();
  const auto m = run_with(intervention, seed, 1500);
  EXPECT_EQ(m.ticks, 1500u);
  EXPECT_GT(m.distance_walked, 0.0);
  EXPECT_GE(m.disruption, 0.0);
  EXPECT_LT(m.collisions_per_100m(), 100.0);  // sanity ceiling
}

INSTANTIATE_TEST_SUITE_P(
    Grid, InterventionSeedTest,
    ::testing::Combine(::testing::Values(Intervention::kNone,
                                         Intervention::kShadowAvatars,
                                         Intervention::kRedirectedWalking,
                                         Intervention::kChaperone),
                       ::testing::Values(11u, 22u)));

}  // namespace
}  // namespace mv::safety
