// Unit tests for the common kernel: ids, Result, RNG, serialization, event
// bus, statistics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <set>
#include <thread>
#include <unordered_set>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/event_bus.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace mv {
namespace {

// ---------------------------------------------------------------- StrongId

TEST(StrongId, DefaultIsInvalid) {
  AvatarId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, AvatarId::invalid());
}

TEST(StrongId, ComparesByValue) {
  AvatarId a(1), b(2), a2(1);
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
}

TEST(StrongId, HashableInUnorderedSet) {
  std::unordered_set<AvatarId> set;
  set.insert(AvatarId(1));
  set.insert(AvatarId(2));
  set.insert(AvatarId(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(IdAllocator, Monotonic) {
  IdAllocator<ProposalId> alloc;
  EXPECT_EQ(alloc.next(), ProposalId(0));
  EXPECT_EQ(alloc.next(), ProposalId(1));
  EXPECT_EQ(alloc.issued(), 2u);
}

// ---------------------------------------------------------------- Result

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = make_error("x.y", "boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "x.y");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOnErrorThrows) {
  Result<int> r = make_error("x.y", "boom");
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_FALSE(Status::fail("a", "b").ok());
}

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicFromSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(2);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit
}

TEST(Rng, NormalMoments) {
  Rng rng(3);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(Rng, LaplaceMeanZeroScaled) {
  Rng rng(4);
  RunningStats s;
  const double scale = 2.0;
  for (int i = 0; i < 50000; ++i) s.add(rng.laplace(scale));
  EXPECT_NEAR(s.mean(), 0.0, 0.1);
  // Var(Laplace(b)) = 2 b^2 = 8
  EXPECT_NEAR(s.variance(), 8.0, 0.6);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(5);
  RunningStats small, large;
  for (int i = 0; i < 20000; ++i) small.add(rng.poisson(3.0));
  for (int i = 0; i < 20000; ++i) large.add(rng.poisson(50.0));
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 50.0, 0.5);
}

TEST(Rng, ExponentialMean) {
  Rng rng(6);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, ZipfSkewsTowardLowIndices) {
  Rng rng(7);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(100, 1.2)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20000 / 100);  // far above uniform share
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(8);
  for (std::size_t k : {0u, 1u, 5u, 50u, 100u}) {
    const auto idx = rng.sample_indices(100, k);
    EXPECT_EQ(idx.size(), k);
    std::set<std::size_t> uniq(idx.begin(), idx.end());
    EXPECT_EQ(uniq.size(), k);
    for (const auto i : idx) EXPECT_LT(i, 100u);
  }
}

TEST(Rng, ForkIndependent) {
  Rng a(9);
  Rng b = a.fork();
  // The fork and the parent should not produce the same stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(10);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

// ---------------------------------------------------------------- bytes

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.14159);
  w.str("hello");
  const Bytes payload{1, 2, 3};
  w.bytes(payload);

  ByteReader r(w.data());
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64().value(), -42);
  EXPECT_DOUBLE_EQ(r.f64().value(), 3.14159);
  EXPECT_EQ(r.str().value(), "hello");
  EXPECT_EQ(r.bytes().value(), payload);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, TruncatedReadFails) {
  ByteWriter w;
  w.u32(5);
  ByteReader r(w.data());
  EXPECT_TRUE(r.u32().ok());
  auto fail = r.u64();
  ASSERT_FALSE(fail.ok());
  EXPECT_EQ(fail.error().code, "bytes.truncated");
}

TEST(Bytes, TruncatedStringFails) {
  ByteWriter w;
  w.u32(100);  // declares 100 bytes that are not there
  ByteReader r(w.data());
  EXPECT_FALSE(r.str().ok());
}

TEST(Bytes, HexEncoding) {
  const Bytes data{0x00, 0xff, 0x10};
  EXPECT_EQ(to_hex(data), "00ff10");
}

// ---------------------------------------------------------------- clock

TEST(SimClock, AdvancesAndResets) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance();
  clock.advance(10);
  EXPECT_EQ(clock.now(), 11);
  clock.reset();
  EXPECT_EQ(clock.now(), 0);
}

// ---------------------------------------------------------------- event bus

struct PingEvent {
  int value;
};
struct OtherEvent {
  int value;
};

TEST(EventBus, DeliversToSubscribers) {
  EventBus bus;
  int sum = 0;
  bus.subscribe<PingEvent>([&](const PingEvent& e) { sum += e.value; });
  bus.subscribe<PingEvent>([&](const PingEvent& e) { sum += 10 * e.value; });
  bus.publish(PingEvent{3});
  EXPECT_EQ(sum, 33);
}

TEST(EventBus, TypeIsolation) {
  EventBus bus;
  int pings = 0, others = 0;
  bus.subscribe<PingEvent>([&](const PingEvent&) { ++pings; });
  bus.subscribe<OtherEvent>([&](const OtherEvent&) { ++others; });
  bus.publish(PingEvent{1});
  bus.publish(PingEvent{1});
  bus.publish(OtherEvent{1});
  EXPECT_EQ(pings, 2);
  EXPECT_EQ(others, 1);
}

TEST(EventBus, Unsubscribe) {
  EventBus bus;
  int count = 0;
  const auto id = bus.subscribe<PingEvent>([&](const PingEvent&) { ++count; });
  bus.publish(PingEvent{1});
  bus.unsubscribe<PingEvent>(id);
  bus.publish(PingEvent{1});
  EXPECT_EQ(count, 1);
}

TEST(EventBus, ReentrantSubscribeIsSafe) {
  EventBus bus;
  int count = 0;
  bus.subscribe<PingEvent>([&](const PingEvent&) {
    ++count;
    if (count == 1) {
      bus.subscribe<PingEvent>([&](const PingEvent&) { count += 100; });
    }
  });
  bus.publish(PingEvent{1});  // new handler must not fire during this publish
  EXPECT_EQ(count, 1);
  bus.publish(PingEvent{1});
  EXPECT_EQ(count, 102);
}

// ---------------------------------------------------------------- stats

TEST(RunningStats, Basic) {
  RunningStats s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(11);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Percentiles, ExactOnKnownData) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_NEAR(p.median(), 50.5, 1e-9);
  EXPECT_NEAR(p.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(p.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(p.percentile(99), 99.01, 0.02);
}

// Regression: add() after a percentile() query used to leave sorted_ set, so
// later queries interpolated over a partially-unsorted vector. Interleave
// adds and queries and check every query against a freshly-built oracle.
TEST(Percentiles, InterleavedAddAndQueryMatchesOracle) {
  Rng rng(77);
  Percentiles p;
  std::vector<double> seen;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(0.0, 100.0);
    p.add(x);
    seen.push_back(x);
    if (i % 7 == 0) {
      Percentiles oracle;
      for (const double s : seen) oracle.add(s);
      for (const double q : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
        EXPECT_DOUBLE_EQ(p.percentile(q), oracle.percentile(q))
            << "after " << seen.size() << " samples, p" << q;
      }
    }
  }
}

// Regression: out-of-range p produced a negative rank cast to size_t (UB /
// out-of-bounds read). Out-of-range queries now clamp to the extremes.
TEST(Percentiles, QueryClampsOutOfRangeP) {
  Percentiles p;
  for (int i = 1; i <= 10; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.percentile(-5.0), p.percentile(0.0));
  EXPECT_DOUBLE_EQ(p.percentile(150.0), p.percentile(100.0));
  EXPECT_DOUBLE_EQ(p.percentile(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(150.0), 10.0);
}

TEST(Histogram, BinsInRangeAndCountsOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 9
  h.add(-5.0);  // below lo: underflow, not clamped into bin 0
  h.add(50.0);  // at/above hi: overflow, not clamped into bin 9
  h.add(10.0);  // hi itself is exclusive
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.dropped(), 0u);
  EXPECT_EQ(h.sparkline().size() > 0, true);
}

TEST(Histogram, DropsNonFiniteSamples) {
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.dropped(), 3u);
  h.add(5.0);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.dropped(), 3u);
  // Finite but astronomically out-of-range samples are accounted as
  // under/overflow (they used to be clamped into the edge bins, silently
  // skewing the tails).
  h.add(1e300);
  h.add(-1e300);
  EXPECT_EQ(h.bin_count(9), 0u);
  EXPECT_EQ(h.bin_count(0), 0u);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.dropped(), 3u);
}

// Property sweep: RNG uniformity chi-square sanity across seeds.
class RngUniformityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformityTest, ChiSquareWithinBound) {
  Rng rng(GetParam());
  constexpr int kBins = 16;
  constexpr int kDraws = 16000;
  std::array<int, kBins> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBins)];
  const double expected = static_cast<double>(kDraws) / kBins;
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 15 dof, 99.9% critical value ~= 37.7
  EXPECT_LT(chi2, 37.7) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngUniformityTest,
                         ::testing::Values(1, 2, 3, 42, 1000, 0xdeadbeef));

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  std::vector<int> hits(1000, 0);
  pool.parallel(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "task " << i;
  }
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int batch = 0; batch < 50; ++batch) {
    std::vector<std::size_t> out(7, 0);
    pool.parallel(out.size(), [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
  pool.parallel(0, [](std::size_t) { FAIL() << "no tasks, no calls"; });
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  std::vector<int> hits(16, 0);
  pool.parallel(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

// Regression: destroying the pool while another thread's parallel() batch was
// in flight could strand the caller — workers honored stop_ before finishing
// the batch, so completed_ never reached tasks_ and the caller waited on
// done_cv_ forever. The destructor now serializes with in-flight batches and
// workers drain the current batch before exiting.
TEST(ThreadPool, DestructorDrainsInFlightBatch) {
  std::vector<std::atomic<int>> hits(64);
  std::atomic<bool> batch_done{false};
  std::thread caller;
  {
    ThreadPool pool(3);
    std::atomic<bool> started{false};
    caller = std::thread([&] {
      pool.parallel(hits.size(), [&](std::size_t i) {
        started.store(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        hits[i].fetch_add(1);
      });
      batch_done.store(true);
    });
    while (!started.load()) std::this_thread::yield();
    // ~ThreadPool runs here, mid-batch.
  }
  caller.join();
  EXPECT_TRUE(batch_done.load());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace mv
