// Capstone integration scenario: one deterministic end-to-end run exercising
// every subsystem of the assembled platform together — the executable version
// of the paper's Figure 3 story. Kept as a ctest so a regression anywhere in
// the cross-module wiring fails loudly.
#include <gtest/gtest.h>

#include "core/metaverse.h"
#include "privacy/sensors.h"

namespace mv::core {
namespace {

TEST(Scenario, AFullDayInTheMetaverse) {
  MetaverseConfig config;
  config.seed = 20220707;
  config.validators = 4;
  config.moderation.mode = moderation::StaffingMode::kHybrid;
  config.moderation.community_size = 500;
  config.moderation.juror_availability = 0.05;
  config.reputation.pair_cooldown = 1;
  config.governance.module_config =
      dao::DaoConfig{0.2, 0.5, 40, std::make_shared<dao::OneMemberOneVote>()};
  config.governance.global_config =
      dao::DaoConfig{0.1, 0.5, 40, std::make_shared<dao::OneMemberOneVote>()};
  config.privacy_epoch = 500;
  Metaverse mv(config);

  // --- morning: 12 citizens and one troll join; grants commit ---
  std::vector<UserHandle> citizens;
  for (int i = 0; i < 12; ++i) citizens.push_back(mv.register_user(i < 6 ? "eu" : "us"));
  const UserHandle troll = mv.register_user("us");
  ASSERT_TRUE(mv.run_consensus_round());
  ASSERT_TRUE(mv.committee().replicas_consistent());
  for (const auto& c : citizens) {
    ASSERT_EQ(mv.chain().state().balance(c.address), config.genesis_grant);
  }

  // --- sensors stream; consent receipts and audit records hit the chain ---
  privacy::SensorSim sensors{Rng(1)};
  const auto traits = sensors.sample_traits();
  std::size_t released_first = 0;
  for (int u = 0; u < 3; ++u) {
    mv.set_consent(citizens[static_cast<std::size_t>(u)].user_id,
                   privacy::SensorType::kGaze, true);
  }
  for (int t = 0; t < 20; ++t) {
    for (int u = 0; u < 3; ++u) {
      const auto& c = citizens[static_cast<std::size_t>(u)];
      const bool out =
          mv.ingest(c.user_id, sensors.gaze(c.user_id, traits, t)).has_value();
      if (u == 0) released_first += out;
    }
    mv.tick();
  }
  EXPECT_GT(released_first, 0u);
  ASSERT_TRUE(mv.run_consensus_round());
  ledger::AuditQuery audit(mv.chain());
  // Consent receipt + PET'd releases, all attributed to the same subject.
  EXPECT_GE(audit.by_subject(citizens[0].user_id).size(), released_first + 1);
  // Three devices share the log roughly evenly: no data monopoly (§II-D).
  EXPECT_FALSE(mv.chain().state().audit_log().empty());
  EXPECT_FALSE(audit.has_data_monopoly());

  // --- afternoon: the troll misbehaves; bubbles + moderation + reputation ---
  auto& world = mv.world();
  world.move(troll.avatar, world.avatar(citizens[1].avatar)->pos + world::Vec2{0.4, 0});
  ASSERT_TRUE(world
                  .interact(troll.avatar, citizens[1].avatar,
                            world::InteractionKind::kHarass, mv.clock().now())
                  .ok());
  world.set_bubble(citizens[1].avatar, true, 2.0);
  EXPECT_FALSE(world
                   .interact(troll.avatar, citizens[1].avatar,
                             world::InteractionKind::kHarass, mv.clock().now())
                   .ok());
  const double troll_rep_before = mv.reputation().score(troll.account);
  for (int i = 0; i < 4; ++i) {
    mv.report_misbehaviour(citizens[static_cast<std::size_t>(i)].user_id,
                           troll.user_id, moderation::ReportKind::kHarassment);
  }
  for (int t = 0; t < 25; ++t) mv.tick();
  EXPECT_GT(mv.moderation().metrics().resolved, 0u);
  EXPECT_LT(mv.reputation().score(troll.account), troll_rep_before);

  // --- evening: economy (royalty NFT sale) and governance (GDPR adoption) ---
  Rng rng(2);
  auto call = [&](const UserHandle& who, const std::string& method, Bytes args) {
    const auto& w = mv.wallet(who.user_id);
    mv.submit_tx(ledger::make_contract_call(
        w, mv.chain().state().nonce(w.address()), "nft", method,
        std::move(args), 1, rng));
    ASSERT_TRUE(mv.run_consensus_round());
  };
  call(citizens[2], "mint", nft::NftContract::encode_mint("mv://drop/1", 1000));
  call(citizens[2], "list", nft::NftContract::encode_list(0, 400));
  call(citizens[3], "buy", nft::NftContract::encode_token(0));
  EXPECT_EQ(nft::NftContract::token(mv.chain().state(), 0).value().owner,
            citizens[3].address);

  auto proposal =
      mv.propose_policy_swap(citizens[0].user_id, "eu", policy::make_gdpr_module());
  ASSERT_TRUE(proposal.ok());
  for (const auto& c : citizens) {
    ASSERT_TRUE(mv.governance()
                    .cast_vote(proposal.value(), c.account, dao::VoteChoice::kYes,
                               mv.clock().now())
                    .ok());
  }
  for (int t = 0; t < 45; ++t) mv.tick();
  ASSERT_TRUE(mv.finalize_governance(proposal.value()).ok());
  ASSERT_NE(mv.policy().region_module("eu"), nullptr);
  EXPECT_EQ(mv.policy().region_module("eu")->name(), "gdpr");

  // EU users are now audited under GDPR; US users are not (frontier).
  policy::DataFlowEvent flow;
  flow.id = DataFlowId(1);
  flow.category = "gaze";
  flow.consent = false;
  flow.pet_applied = true;
  flow.declared_purpose = "svc";
  flow.purpose = "svc";
  EXPECT_FALSE(mv.audit_flow(citizens[0].user_id, flow).empty());
  EXPECT_TRUE(mv.audit_flow(citizens[7].user_id, flow).empty());

  // --- night: the books balance and the audit passes ---
  mv.governance().create_module("community-safety");
  const auto snap = mv.snapshot();
  EXPECT_EQ(snap.users, 13u);
  EXPECT_GE(snap.chain_height, 5);
  EXPECT_GT(snap.audit_records, 0u);
  EXPECT_GT(snap.moderation_resolved, 0u);
  EXPECT_TRUE(mv.committee().replicas_consistent());

  const EthicsReport report = mv.ethics_audit();
  EXPECT_DOUBLE_EQ(report.overall_score(), 1.0);
  EXPECT_TRUE(report.layer_supported(EthicalLayer::kHumanExperience));
}

}  // namespace
}  // namespace mv::core

// ---------------------------------------------------------------------------
// Macro-workload harness: event-sourced city-at-scale scenarios with
// deterministic replay (src/scenario/, DESIGN.md §12).
// ---------------------------------------------------------------------------
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "scenario/harness.h"
#include "scenario/invariants.h"
#include "scenario/shard_harness.h"

namespace mv::scenario {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig config;
  config.mix = "mixed_city";
  config.seed = 5;
  config.avatars = 120;
  config.rounds = 8;
  config.txs_per_round = 60;
  return config;
}

Trace small_trace() {
  auto rec = record(small_config());
  EXPECT_TRUE(rec.ok()) << (rec.ok() ? "" : rec.error().to_string());
  return std::move(rec).value().trace;
}

/// Recompute the trailing integrity digest after deliberate byte surgery, so
/// tests can reach the strict per-field decode layers *behind* the checksum.
Bytes reseal(Bytes bytes) {
  bytes.resize(bytes.size() - 32);
  crypto::Sha256 h;
  h.update(std::string_view(kTraceDomain));
  h.update(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  const crypto::Digest d = h.finalize();
  bytes.insert(bytes.end(), d.begin(), d.end());
  return bytes;
}

// ------------------------------------------------------------ trace codec

TEST(ScenarioTrace, CodecRoundTripsByteIdentically) {
  const Trace trace = small_trace();
  const Bytes encoded = trace.encode();
  auto decoded = Trace::decode(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded.value().encode(), encoded);
  EXPECT_EQ(decoded.value().header.scenario, trace.header.scenario);
  EXPECT_EQ(decoded.value().rounds.size(), trace.rounds.size());
  EXPECT_EQ(decoded.value().total_txs(), trace.total_txs());
}

TEST(ScenarioTrace, EveryByteMutationIsRejected) {
  ScenarioConfig config = small_config();
  config.avatars = 8;   // smallest legal population: keeps the stream tiny
  config.rounds = 2;
  config.txs_per_round = 12;
  auto rec = record(config);
  ASSERT_TRUE(rec.ok()) << rec.error().to_string();
  const Bytes bytes = rec.value().trace.encode();
  ASSERT_TRUE(Trace::decode(bytes).ok());
  // No semantically-inert bytes: flipping any single byte — header,
  // provenance fields, tx payloads, recorded roots, or the checksum itself —
  // must fail decode (the trailing digest covers everything before it).
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    Bytes mutated = bytes;
    mutated[i] ^= 0x5a;
    EXPECT_FALSE(Trace::decode(mutated).ok()) << "byte " << i;
  }
}

TEST(ScenarioTrace, EveryTruncationIsRejected) {
  ScenarioConfig config = small_config();
  config.avatars = 8;
  config.rounds = 1;
  config.txs_per_round = 8;
  auto rec = record(config);
  ASSERT_TRUE(rec.ok());
  const Bytes bytes = rec.value().trace.encode();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const Bytes prefix(bytes.begin(),
                       bytes.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(Trace::decode(prefix).ok()) << "length " << len;
  }
}

TEST(ScenarioTrace, ChecksumFlipNamesBadChecksum) {
  const Bytes bytes = small_trace().encode();
  Bytes mutated = bytes;
  mutated.back() ^= 0x01;
  EXPECT_EQ(Trace::decode(mutated).error().code, errc::kTraceBadChecksum);
}

TEST(ScenarioTrace, ResealedTamperingCaughtByStrictFieldDecode) {
  const Trace trace = small_trace();
  const Bytes bytes = trace.encode();
  const std::size_t slen = trace.header.scenario.size();
  const std::size_t off_validators = 4 + 4 + slen + 8 + 8;
  const std::size_t off_rounds = off_validators + 4 + 8 + 4 + 32;

  {  // future version, checksum made valid again
    Bytes b = bytes;
    b[0] = 0x7f;
    EXPECT_EQ(Trace::decode(reseal(std::move(b))).error().code,
              errc::kTraceBadVersion);
  }
  {  // zeroed validator set
    Bytes b = bytes;
    for (std::size_t i = 0; i < 4; ++i) b[off_validators + i] = 0;
    EXPECT_EQ(Trace::decode(reseal(std::move(b))).error().code,
              errc::kTraceBadCount);
  }
  {  // forged round count far beyond the stream (pre-allocation bound)
    Bytes b = bytes;
    for (std::size_t i = 0; i < 4; ++i) b[off_rounds + i] = 0xff;
    EXPECT_EQ(Trace::decode(reseal(std::move(b))).error().code,
              errc::kTraceBadCount);
  }
  {  // junk between the last round and the checksum
    Bytes b = bytes;
    b.insert(b.end() - 32, 0xee);
    EXPECT_EQ(Trace::decode(reseal(std::move(b))).error().code,
              errc::kTraceBadCount);
  }
}

TEST(ScenarioTrace, MissingFileFailsCleanly) {
  EXPECT_FALSE(load_trace("/nonexistent/dir/ghost.trace").ok());
}

// --------------------------------------------------- golden-trace regression

const char* kTraceDir = MV_TRACE_DIR;

TEST(ScenarioGolden, MarketRushReplaysByteIdentically) {
  auto trace = load_trace(std::string(kTraceDir) + "/market_rush_1k.trace");
  ASSERT_TRUE(trace.ok()) << trace.error().to_string();
  EXPECT_EQ(trace.value().header.avatars, 1000u);
  EXPECT_EQ(trace.value().rounds.size(), 50u);
  EXPECT_EQ(trace.value().total_txs(), 10000u);
  auto run = replay(trace.value());
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  EXPECT_EQ(run.value().mismatched_blocks, 0u);
  EXPECT_TRUE(run.value().violations.empty());
  EXPECT_EQ(run.value().committed_txs, 10000u);
  EXPECT_EQ(crypto::to_hex(trace.value().rounds.back().commitment_root),
            "6c43883703b218366a8817522db86b5f259a6d11527fac6ea54c3897b037e445");
}

TEST(ScenarioGolden, GovernanceWaveReplaysByteIdentically) {
  auto trace = load_trace(std::string(kTraceDir) + "/governance_wave_1k.trace");
  ASSERT_TRUE(trace.ok()) << trace.error().to_string();
  auto run = replay(trace.value());
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  EXPECT_EQ(run.value().mismatched_blocks, 0u);
  EXPECT_TRUE(run.value().violations.empty());
  EXPECT_EQ(run.value().committed_txs, 10000u);
  EXPECT_EQ(crypto::to_hex(trace.value().rounds.back().commitment_root),
            "16feefe7223775685d888a6f803c6b275213b3093b46d405527c3f8b5ac006d5");
}

TEST(ScenarioGolden, SameSeedSameTraceDifferentSeedDifferentTrace) {
  const ScenarioConfig config = small_config();
  auto a = record(config);
  auto b = record(config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().trace.encode(), b.value().trace.encode());

  ScenarioConfig other = config;
  other.seed = config.seed + 1;
  auto c = record(other);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a.value().trace.rounds.back().commitment_root,
            c.value().trace.rounds.back().commitment_root);
}

TEST(ScenarioGolden, DeterminismSweepAcrossStackConfigurations) {
  auto rec = record(small_config());
  ASSERT_TRUE(rec.ok()) << rec.error().to_string();
  const Trace& trace = rec.value().trace;
  const auto& baseline = rec.value().run.commitments;
  ASSERT_EQ(baseline.size(), trace.rounds.size());

  // serial / parallel validation × inline / threaded queue × subscribers:
  // every configuration must reproduce the recorded commitment sequence.
  std::vector<ReplayOptions> sweep;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    ReplayOptions o;
    o.validation_threads = threads;
    o.schedule_seed = 0xfeed + threads;
    sweep.push_back(o);
  }
  for (const std::size_t workers : {std::size_t{0}, std::size_t{2}, std::size_t{4}}) {
    ReplayOptions o;
    o.use_job_queue = true;
    o.queue_workers = workers;
    sweep.push_back(o);
  }
  {
    ReplayOptions o;
    o.use_job_queue = true;
    o.queue_workers = 2;
    o.subscribers = 4;
    o.client_queries_per_round = 4;
    sweep.push_back(o);
  }

  for (std::size_t i = 0; i < sweep.size(); ++i) {
    auto run = replay(trace, sweep[i]);
    ASSERT_TRUE(run.ok()) << "config " << i << ": " << run.error().to_string();
    EXPECT_EQ(run.value().mismatched_blocks, 0u) << "config " << i;
    ASSERT_EQ(run.value().commitments.size(), baseline.size()) << "config " << i;
    for (std::size_t r = 0; r < baseline.size(); ++r) {
      ASSERT_TRUE(run.value().commitments[r] == baseline[r])
          << "config " << i << " diverged at block " << r;
    }
  }
}

// -------------------------------------------------------------- invariants

TEST(ScenarioInvariant, CleanRunEveryBlockNoViolations) {
  ReplayOptions opts;
  opts.invariant_every = 1;  // audit after every replayed block
  auto rec = record(small_config(), opts);
  ASSERT_TRUE(rec.ok()) << rec.error().to_string();
  EXPECT_TRUE(rec.value().run.violations.empty())
      << rec.value().run.violations.front();
}

TEST(ScenarioInvariant, ConservationViolationDetected) {
  Rng rng(1);
  crypto::Wallet w(rng);
  ledger::LedgerState state;
  state.credit(w.address(), 100);
  InvariantOptions opts;
  opts.total_supply = 50;  // lie about the genesis supply
  opts.check_full_rehash = false;
  const auto violations = check_invariants(state, opts);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("conservation"), std::string::npos);
}

TEST(ScenarioInvariant, ReputationBoundViolationDetected) {
  Rng rng(2);
  crypto::Wallet rater(rng), subject(rng);
  auto contracts = std::make_shared<ledger::ContractRegistry>();
  reputation::ReputationContractConfig rc;
  rc.cooldown_blocks = 0;
  rc.max_score = 500;  // permissive contract...
  contracts->install(std::make_shared<reputation::ReputationContract>(rc));
  ledger::LedgerState state;
  state.credit(rater.address(), 100);
  for (int i = 0; i < 3; ++i) {
    const auto tx = ledger::make_contract_call(
        rater, state.nonce(rater.address()), rc.name, "rate",
        reputation::ReputationContract::encode_rate(subject.address(), 5), 0,
        rng);
    ASSERT_TRUE(state.apply(tx, *contracts, i).ok());
  }
  InvariantOptions opts;
  opts.total_supply = 100;
  opts.check_full_rehash = false;
  opts.rep_max = 10;  // ...audited against a tighter bound
  const auto violations = check_invariants(state, opts);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("reputation"), std::string::npos);
}

// ---------------------------------------------------------------- harness

TEST(ScenarioHarness, AllValidDisciplineCommitsEverySubmittedTx) {
  auto rec = record(small_config());
  ASSERT_TRUE(rec.ok());
  const auto& run = rec.value().run;
  EXPECT_EQ(run.submitted_txs, run.committed_txs);
  EXPECT_EQ(run.submitted_txs,
            static_cast<std::size_t>(small_config().rounds) *
                small_config().txs_per_round);
}

TEST(ScenarioHarness, ScamPatternsLandOnChain) {
  ScenarioConfig config;
  config.mix = "market_rush";
  config.seed = 3;
  config.avatars = 200;
  config.rounds = 30;
  config.txs_per_round = 150;
  auto rec = record(config);
  ASSERT_TRUE(rec.ok()) << rec.error().to_string();
  const auto& g = rec.value().generated;
  EXPECT_GT(g.scam_txs, 0u);
  EXPECT_GT(g.wash_trades, 0u);   // completed wash buy-back legs
  EXPECT_GT(g.rug_pulls, 0u);     // completed mint-list-abandon exits
  EXPECT_GT(g.mints, 0u);
  EXPECT_GT(g.buys, 0u);
  // Scams are protocol-valid: everything still committed.
  EXPECT_EQ(rec.value().run.submitted_txs, rec.value().run.committed_txs);
}

TEST(ScenarioHarness, TamperedCommitmentRootIsReported) {
  Trace trace = small_trace();
  trace.rounds.back().commitment_root[0] ^= 0x01;
  auto run = replay(trace);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  EXPECT_EQ(run.value().mismatched_blocks, 1u);
}

TEST(ScenarioHarness, DroppedTransactionDivergesReplay) {
  Trace trace = small_trace();
  ASSERT_GT(trace.rounds[2].txs.size(), 1u);
  trace.rounds[2].txs.erase(trace.rounds[2].txs.begin());
  auto run = replay(trace);
  // Either the stack refuses the nonce-gapped round outright, or the state
  // drifts and the recorded roots stop matching — silence is not an option.
  if (run.ok()) {
    EXPECT_GT(run.value().mismatched_blocks, 0u);
  } else {
    EXPECT_EQ(run.error().code, errc::kTraceReplayDiverged);
  }
}

TEST(ScenarioHarness, GenesisDriftIsRefusedBeforeReplay) {
  Trace trace = small_trace();
  trace.header.seed += 1;  // derives a different population
  auto run = replay(trace);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.error().code, errc::kTraceGenesisMismatch);
}

TEST(ScenarioHarness, SubscribersFollowEveryCommit) {
  ReplayOptions opts;
  opts.use_job_queue = true;
  opts.queue_workers = 0;  // inline: deterministic fan-out, nothing shed
  opts.subscribers = 6;
  opts.client_queries_per_round = 8;
  auto rec = record(small_config(), opts);
  ASSERT_TRUE(rec.ok()) << rec.error().to_string();
  const auto& run = rec.value().run;
  EXPECT_EQ(run.subscriptions.commits_published,
            static_cast<std::uint64_t>(small_config().rounds));
  EXPECT_EQ(run.subscriptions.subscribers, 6u);
  EXPECT_GT(run.feed_pushes_consumed, 0u);
  EXPECT_EQ(run.feed_gaps_detected, 0u);
  EXPECT_GT(run.queries_served, 0u);
  EXPECT_EQ(run.queries_shed, 0u);
}

TEST(ScenarioHarness, ClientQueriesShedUnderTightLimitWithoutStateDrift) {
  const Trace trace = small_trace();
  const std::uint32_t kJammedRound = 2;
  const std::size_t kQueriesPerRound = 4;

  JobQueueConfig qc;
  qc.threads = 1;
  qc.limit(JobClass::kClientQuery).max_depth = 1;
  auto queue = std::make_shared<JobQueue>(qc);

  // Deterministic lane pressure: in one round, park the single worker on a
  // lower-priority job and fill the client lane to its depth ceiling right
  // before the harness issues its queries. Every query that round must be
  // shed at admission; the gate opens before the end-of-round drain.
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<bool> parked{false};

  ReplayOptions opts;
  opts.job_queue = queue;
  opts.client_queries_per_round = kQueriesPerRound;
  opts.before_queries = [&](std::uint32_t round) {
    if (round != kJammedRound) return;
    ASSERT_TRUE(queue->submit(JobClass::kSnapshotServe, [&] {
      parked.store(true);
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return open; });
    }));
    while (!parked.load()) std::this_thread::yield();
    ASSERT_TRUE(queue->submit(JobClass::kClientQuery, [] {}));
  };
  opts.after_queries = [&](std::uint32_t round) {
    if (round != kJammedRound) return;
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  };

  auto run = replay(trace, opts);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  // All queries in the jammed round rejected as chain.overloaded ...
  EXPECT_EQ(run.value().queries_shed, kQueriesPerRound);
  EXPECT_GE(run.value().queue.of(JobClass::kClientQuery).shed_depth,
            kQueriesPerRound);
  // ... every other round served normally through the same lane ...
  EXPECT_EQ(run.value().queries_served,
            (trace.rounds.size() - 1) * kQueriesPerRound);
  // ... and load shedding on the query lane never perturbs consensus state.
  EXPECT_EQ(run.value().mismatched_blocks, 0u);
  EXPECT_TRUE(run.value().violations.empty());
}

TEST(ScenarioHarness, UnknownMixAndBadPopulationRejected) {
  ScenarioConfig config = small_config();
  config.mix = "metaverse_apocalypse";
  EXPECT_FALSE(record(config).ok());

  config = small_config();
  config.avatars = 4;  // below the documented floor of 8
  auto rec = record(config);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.error().code, errc::kTraceBadCount);
}

// ------------------------------------------------------------ multi-world

MultiWorldConfig small_worlds() {
  MultiWorldConfig config;
  config.num_shards = 3;
  config.seed = 42;
  config.avatars = 24;
  config.validators = 3;
  config.rounds = 6;
  config.intra_per_round = 6;
  config.cross_per_round = 3;
  return config;
}

TEST(MultiWorldShard, RecordDrivesCrossShardTrafficCleanly) {
  auto rec = record_multi_world(small_worlds());
  ASSERT_TRUE(rec.ok()) << rec.error().to_string();
  EXPECT_EQ(rec.value().trace.header.scenario, "multi_world:3");
  EXPECT_EQ(rec.value().trace.rounds.size(), 6u);
  EXPECT_GT(rec.value().committed_txs, 0u);
  // Locks produced receipts that minted on their destination worlds.
  EXPECT_GT(rec.value().cross_transfers, 0u);
  // check_sharded_invariants ran over the final fleet state: conservation
  // across shards, receipt ledger shape, spent-marker integrity.
  EXPECT_TRUE(rec.value().violations.empty())
      << rec.value().violations.front();
}

TEST(MultiWorldShard, TraceCodecRoundTripsAndReplaysByteIdentically) {
  auto rec = record_multi_world(small_worlds());
  ASSERT_TRUE(rec.ok()) << rec.error().to_string();

  // The multi-world trace rides the unmodified mv.trace.v1 codec.
  const Bytes encoded = rec.value().trace.encode();
  auto decoded = Trace::decode(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded.value().encode(), encoded);

  // Replay from the decoded bytes: every beacon root must match, serial and
  // fanned out across JobQueue worker counts alike.
  for (const std::size_t workers : {0u, 2u, 4u}) {
    MultiWorldOptions opts;
    opts.queue_workers = workers;
    auto run = replay_multi_world(decoded.value(), opts);
    ASSERT_TRUE(run.ok()) << run.error().to_string();
    EXPECT_EQ(run.value().mismatched_rounds, 0u) << "workers=" << workers;
    EXPECT_EQ(run.value().beacon_roots, rec.value().beacon_roots);
    EXPECT_TRUE(run.value().violations.empty())
        << run.value().violations.front();
  }
}

TEST(MultiWorldShard, SameSeedSameTraceDifferentSeedDifferentTrace) {
  auto a = record_multi_world(small_worlds());
  auto b = record_multi_world(small_worlds());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().trace.encode(), b.value().trace.encode());

  MultiWorldConfig other = small_worlds();
  other.seed = 43;
  auto c = record_multi_world(other);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(c.value().trace.encode(), a.value().trace.encode());
}

TEST(MultiWorldShard, TamperedBeaconRootIsReported) {
  auto rec = record_multi_world(small_worlds());
  ASSERT_TRUE(rec.ok());
  Trace trace = rec.value().trace;
  trace.rounds[2].commitment_root[0] ^= 0x01;
  auto run = replay_multi_world(trace);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  EXPECT_EQ(run.value().mismatched_rounds, 1u);
}

TEST(MultiWorldShard, ForeignAndMalformedTracesRefused) {
  // A plain single-chain trace is not a multi-world trace.
  auto run = replay_multi_world(small_trace());
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.error().code, errc::kShardBadConfig);

  // Genesis drift (tampered header) is refused before any round replays.
  auto rec = record_multi_world(small_worlds());
  ASSERT_TRUE(rec.ok());
  Trace trace = rec.value().trace;
  trace.header.genesis_root[0] ^= 0x01;
  auto drift = replay_multi_world(trace);
  ASSERT_FALSE(drift.ok());
  EXPECT_EQ(drift.error().code, errc::kTraceGenesisMismatch);
}

}  // namespace
}  // namespace mv::scenario
