// Capstone integration scenario: one deterministic end-to-end run exercising
// every subsystem of the assembled platform together — the executable version
// of the paper's Figure 3 story. Kept as a ctest so a regression anywhere in
// the cross-module wiring fails loudly.
#include <gtest/gtest.h>

#include "core/metaverse.h"
#include "privacy/sensors.h"

namespace mv::core {
namespace {

TEST(Scenario, AFullDayInTheMetaverse) {
  MetaverseConfig config;
  config.seed = 20220707;
  config.validators = 4;
  config.moderation.mode = moderation::StaffingMode::kHybrid;
  config.moderation.community_size = 500;
  config.moderation.juror_availability = 0.05;
  config.reputation.pair_cooldown = 1;
  config.governance.module_config =
      dao::DaoConfig{0.2, 0.5, 40, std::make_shared<dao::OneMemberOneVote>()};
  config.governance.global_config =
      dao::DaoConfig{0.1, 0.5, 40, std::make_shared<dao::OneMemberOneVote>()};
  config.privacy_epoch = 500;
  Metaverse mv(config);

  // --- morning: 12 citizens and one troll join; grants commit ---
  std::vector<UserHandle> citizens;
  for (int i = 0; i < 12; ++i) citizens.push_back(mv.register_user(i < 6 ? "eu" : "us"));
  const UserHandle troll = mv.register_user("us");
  ASSERT_TRUE(mv.run_consensus_round());
  ASSERT_TRUE(mv.committee().replicas_consistent());
  for (const auto& c : citizens) {
    ASSERT_EQ(mv.chain().state().balance(c.address), config.genesis_grant);
  }

  // --- sensors stream; consent receipts and audit records hit the chain ---
  privacy::SensorSim sensors{Rng(1)};
  const auto traits = sensors.sample_traits();
  std::size_t released_first = 0;
  for (int u = 0; u < 3; ++u) {
    mv.set_consent(citizens[static_cast<std::size_t>(u)].user_id,
                   privacy::SensorType::kGaze, true);
  }
  for (int t = 0; t < 20; ++t) {
    for (int u = 0; u < 3; ++u) {
      const auto& c = citizens[static_cast<std::size_t>(u)];
      const bool out =
          mv.ingest(c.user_id, sensors.gaze(c.user_id, traits, t)).has_value();
      if (u == 0) released_first += out;
    }
    mv.tick();
  }
  EXPECT_GT(released_first, 0u);
  ASSERT_TRUE(mv.run_consensus_round());
  ledger::AuditQuery audit(mv.chain());
  // Consent receipt + PET'd releases, all attributed to the same subject.
  EXPECT_GE(audit.by_subject(citizens[0].user_id).size(), released_first + 1);
  // Three devices share the log roughly evenly: no data monopoly (§II-D).
  EXPECT_FALSE(mv.chain().state().audit_log().empty());
  EXPECT_FALSE(audit.has_data_monopoly());

  // --- afternoon: the troll misbehaves; bubbles + moderation + reputation ---
  auto& world = mv.world();
  world.move(troll.avatar, world.avatar(citizens[1].avatar)->pos + world::Vec2{0.4, 0});
  ASSERT_TRUE(world
                  .interact(troll.avatar, citizens[1].avatar,
                            world::InteractionKind::kHarass, mv.clock().now())
                  .ok());
  world.set_bubble(citizens[1].avatar, true, 2.0);
  EXPECT_FALSE(world
                   .interact(troll.avatar, citizens[1].avatar,
                             world::InteractionKind::kHarass, mv.clock().now())
                   .ok());
  const double troll_rep_before = mv.reputation().score(troll.account);
  for (int i = 0; i < 4; ++i) {
    mv.report_misbehaviour(citizens[static_cast<std::size_t>(i)].user_id,
                           troll.user_id, moderation::ReportKind::kHarassment);
  }
  for (int t = 0; t < 25; ++t) mv.tick();
  EXPECT_GT(mv.moderation().metrics().resolved, 0u);
  EXPECT_LT(mv.reputation().score(troll.account), troll_rep_before);

  // --- evening: economy (royalty NFT sale) and governance (GDPR adoption) ---
  Rng rng(2);
  auto call = [&](const UserHandle& who, const std::string& method, Bytes args) {
    const auto& w = mv.wallet(who.user_id);
    mv.submit_tx(ledger::make_contract_call(
        w, mv.chain().state().nonce(w.address()), "nft", method,
        std::move(args), 1, rng));
    ASSERT_TRUE(mv.run_consensus_round());
  };
  call(citizens[2], "mint", nft::NftContract::encode_mint("mv://drop/1", 1000));
  call(citizens[2], "list", nft::NftContract::encode_list(0, 400));
  call(citizens[3], "buy", nft::NftContract::encode_token(0));
  EXPECT_EQ(nft::NftContract::token(mv.chain().state(), 0).value().owner,
            citizens[3].address);

  auto proposal =
      mv.propose_policy_swap(citizens[0].user_id, "eu", policy::make_gdpr_module());
  ASSERT_TRUE(proposal.ok());
  for (const auto& c : citizens) {
    ASSERT_TRUE(mv.governance()
                    .cast_vote(proposal.value(), c.account, dao::VoteChoice::kYes,
                               mv.clock().now())
                    .ok());
  }
  for (int t = 0; t < 45; ++t) mv.tick();
  ASSERT_TRUE(mv.finalize_governance(proposal.value()).ok());
  ASSERT_NE(mv.policy().region_module("eu"), nullptr);
  EXPECT_EQ(mv.policy().region_module("eu")->name(), "gdpr");

  // EU users are now audited under GDPR; US users are not (frontier).
  policy::DataFlowEvent flow;
  flow.id = DataFlowId(1);
  flow.category = "gaze";
  flow.consent = false;
  flow.pet_applied = true;
  flow.declared_purpose = "svc";
  flow.purpose = "svc";
  EXPECT_FALSE(mv.audit_flow(citizens[0].user_id, flow).empty());
  EXPECT_TRUE(mv.audit_flow(citizens[7].user_id, flow).empty());

  // --- night: the books balance and the audit passes ---
  mv.governance().create_module("community-safety");
  const auto snap = mv.snapshot();
  EXPECT_EQ(snap.users, 13u);
  EXPECT_GE(snap.chain_height, 5);
  EXPECT_GT(snap.audit_records, 0u);
  EXPECT_GT(snap.moderation_resolved, 0u);
  EXPECT_TRUE(mv.committee().replicas_consistent());

  const EthicsReport report = mv.ethics_audit();
  EXPECT_DOUBLE_EQ(report.overall_score(), 1.0);
  EXPECT_TRUE(report.layer_supported(EthicalLayer::kHumanExperience));
}

}  // namespace
}  // namespace mv::core
