// Reputation tests: score dynamics, credibility weighting, cooldowns, decay,
// and resistance to Sybil / collusion attacks.
#include <gtest/gtest.h>

#include "reputation/attacks.h"
#include "reputation/contract.h"
#include "reputation/reputation.h"

namespace mv::reputation {
namespace {

struct Fixture {
  ReputationConfig config;
  ReputationSystem system;

  Fixture() : system(make_config()) {
    // Two established, staked accounts (created at tick 0) and one newbie.
    EXPECT_TRUE(system.register_account(AccountId(1), 0, /*stake=*/100).ok());
    EXPECT_TRUE(system.register_account(AccountId(2), 0, /*stake=*/100).ok());
  }

  static ReputationConfig make_config() {
    ReputationConfig c;
    c.age_ramp = 100;
    c.pair_cooldown = 10;
    return c;
  }
};

TEST(Reputation, RegisterAndDefaults) {
  Fixture f;
  EXPECT_TRUE(f.system.known(AccountId(1)));
  EXPECT_FALSE(f.system.known(AccountId(9)));
  EXPECT_DOUBLE_EQ(f.system.score(AccountId(1)), 1.0);
  EXPECT_DOUBLE_EQ(f.system.score(AccountId(9)), 0.0);
  EXPECT_EQ(f.system.register_account(AccountId(1), 0).error().code,
            "rep.duplicate_account");
  EXPECT_FALSE(f.system.register_account(AccountId::invalid(), 0).ok());
}

TEST(Reputation, EndorseRaisesReportLowers) {
  Fixture f;
  const Tick now = 200;  // both accounts fully aged
  ASSERT_TRUE(f.system.endorse(AccountId(1), AccountId(2), now).ok());
  EXPECT_GT(f.system.score(AccountId(2)), 1.0);
  const double after_endorse = f.system.score(AccountId(2));
  ASSERT_TRUE(f.system.report(AccountId(1), AccountId(2), 1.0, now + 20).ok());
  EXPECT_LT(f.system.score(AccountId(2)), after_endorse);
}

TEST(Reputation, ScoreNeverNegativeNorAboveMax) {
  Fixture f;
  Tick now = 200;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(f.system.report(AccountId(1), AccountId(2), 1.0, now).ok());
    now += f.config.pair_cooldown + 10;
  }
  EXPECT_GE(f.system.score(AccountId(2)), 0.0);
  now += 1000;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(f.system.endorse(AccountId(1), AccountId(2), now).ok());
    now += f.config.pair_cooldown + 10;
  }
  EXPECT_LE(f.system.score(AccountId(2)), f.config.max_score);
}

TEST(Reputation, SelfActionAndUnknownRejected) {
  Fixture f;
  EXPECT_EQ(f.system.endorse(AccountId(1), AccountId(1), 0).error().code,
            "rep.self_action");
  EXPECT_EQ(f.system.endorse(AccountId(1), AccountId(9), 0).error().code,
            "rep.unknown_account");
  EXPECT_EQ(f.system.report(AccountId(1), AccountId(2), 0.0, 0).error().code,
            "rep.bad_severity");
  EXPECT_EQ(f.system.report(AccountId(1), AccountId(2), 1.5, 0).error().code,
            "rep.bad_severity");
}

TEST(Reputation, PairCooldownBlocksSpam) {
  Fixture f;
  ASSERT_TRUE(f.system.endorse(AccountId(1), AccountId(2), 100).ok());
  EXPECT_EQ(f.system.endorse(AccountId(1), AccountId(2), 105).error().code,
            "rep.pair_cooldown");
  // Reverse direction is a different pair.
  EXPECT_TRUE(f.system.endorse(AccountId(2), AccountId(1), 105).ok());
  // After the cooldown it works again.
  EXPECT_TRUE(f.system.endorse(AccountId(1), AccountId(2), 111).ok());
}

TEST(Reputation, CredibilityGrowsWithAgeAndStake) {
  ReputationSystem sys(Fixture::make_config());
  ASSERT_TRUE(sys.register_account(AccountId(1), 0, /*stake=*/0).ok());
  ASSERT_TRUE(sys.register_account(AccountId(2), 0, /*stake=*/200).ok());
  // Age: same account, later observation time → higher credibility.
  EXPECT_GT(sys.credibility(AccountId(1), 100), sys.credibility(AccountId(1), 10));
  // Stake: same age, staked beats unstaked.
  EXPECT_GT(sys.credibility(AccountId(2), 100), sys.credibility(AccountId(1), 100));
  // Fresh account has (almost) no credibility.
  ASSERT_TRUE(sys.register_account(AccountId(3), 100, 0).ok());
  EXPECT_NEAR(sys.credibility(AccountId(3), 100), 0.0, 1e-12);
}

TEST(Reputation, DecayRelaxesTowardBaseline) {
  Fixture f;
  ASSERT_TRUE(f.system.endorse(AccountId(1), AccountId(2), 200).ok());
  const double boosted = f.system.score(AccountId(2));
  ASSERT_GT(boosted, 1.0);
  for (int i = 0; i < 500; ++i) f.system.decay_epoch();
  EXPECT_NEAR(f.system.score(AccountId(2)), 1.0, 0.01);
  EXPECT_LT(f.system.score(AccountId(2)), boosted);
}

TEST(Reputation, EventSinkSeesAppliedEvents) {
  Fixture f;
  std::vector<ReputationEvent> events;
  f.system.set_event_sink([&](const ReputationEvent& e) { events.push_back(e); });
  ASSERT_TRUE(f.system.endorse(AccountId(1), AccountId(2), 200).ok());
  ASSERT_TRUE(f.system.report(AccountId(2), AccountId(1), 0.5, 200).ok());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kEndorse);
  EXPECT_GT(events[0].applied_delta, 0.0);
  EXPECT_EQ(events[1].kind, EventKind::kReport);
  EXPECT_LT(events[1].applied_delta, 0.0);
}

TEST(Reputation, LeaderboardOrdersByScore) {
  Fixture f;
  ASSERT_TRUE(f.system.register_account(AccountId(3), 0, 100).ok());
  ASSERT_TRUE(f.system.endorse(AccountId(1), AccountId(3), 200).ok());
  const auto top = f.system.leaderboard(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, AccountId(3));
  EXPECT_GE(top[0].second, top[1].second);
}

// ------------------------------------------------------------ attacks

TEST(Attacks, SybilInflationIsBlunted) {
  Fixture f;
  // Honest endorsement by an aged, staked account for comparison.
  ReputationSystem honest(Fixture::make_config());
  ASSERT_TRUE(honest.register_account(AccountId(1), 0, 100).ok());
  ASSERT_TRUE(honest.register_account(AccountId(2), 0, 100).ok());
  ASSERT_TRUE(honest.endorse(AccountId(1), AccountId(2), 200).ok());
  const double honest_gain = honest.score(AccountId(2)) - 1.0;

  // 100 fresh Sybils endorse the target at the same instant they are created.
  const auto outcome =
      run_sybil_inflation(f.system, AccountId(2), 100, 1000, 200);
  // A hundred Sybils move the target less than one honest endorsement.
  EXPECT_LT(outcome.inflation(), honest_gain);
  EXPECT_NEAR(outcome.inflation(), 0.0, 1e-9);
}

TEST(Attacks, AgedSybilsStillWeakWithoutStake) {
  ReputationSystem sys(Fixture::make_config());
  ASSERT_TRUE(sys.register_account(AccountId(2), 0, 100).ok());
  // Sybils created at tick 0 but acting at tick 1000 (fully aged, no stake).
  for (std::uint64_t i = 100; i < 150; ++i) {
    ASSERT_TRUE(sys.register_account(AccountId(i), 0, 0).ok());
  }
  const double before = sys.score(AccountId(2));
  for (std::uint64_t i = 100; i < 150; ++i) {
    ASSERT_TRUE(sys.endorse(AccountId(i), AccountId(2), 1000).ok());
  }
  const double inflation = sys.score(AccountId(2)) - before;
  // The stake floor (0.1) keeps them non-zero but each is worth ~10x less
  // than a staked endorser; 50 aged sybils ≈ 5 honest endorsements.
  EXPECT_LT(inflation, 50 * 0.2 * 1.0);
}

TEST(Attacks, CollusionRingGainsBoundedByCooldownAndDecay) {
  ReputationConfig config = Fixture::make_config();
  ReputationSystem sys(config);
  std::vector<AccountId> ring;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(sys.register_account(AccountId(i), 0, 10).ok());
    ring.push_back(AccountId(i));
  }
  const auto outcome = run_collusion_ring(sys, ring, 20, 200, config.pair_cooldown);
  EXPECT_GT(outcome.inflation(), 0.0);  // collusion does inflate...
  // ...but 20 rounds of mutual pumping cannot reach anywhere near max score.
  EXPECT_LT(outcome.target_score_after, config.max_score / 3);
}

class SybilScaleTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SybilScaleTest, InflationSublinearInSybilCount) {
  ReputationSystem sys(Fixture::make_config());
  ASSERT_TRUE(sys.register_account(AccountId(1), 0, 100).ok());
  const auto outcome =
      run_sybil_inflation(sys, AccountId(1), GetParam(), 1000, 500);
  // Zero-age sybils have zero age factor: inflation stays ~0 at any scale.
  EXPECT_NEAR(outcome.inflation(), 0.0, 1e-9) << GetParam() << " sybils";
}

INSTANTIATE_TEST_SUITE_P(Scales, SybilScaleTest,
                         ::testing::Values(1, 10, 100, 1000));

// ------------------------------------------------- on-chain contract

struct ContractFixture {
  Rng rng{909};
  std::shared_ptr<ledger::ContractRegistry> contracts =
      std::make_shared<ledger::ContractRegistry>();
  crypto::Wallet alice{rng}, bob{rng}, carol{rng};
  ledger::LedgerState state;
  ReputationContractConfig config;

  ContractFixture() {
    config.cooldown_blocks = 3;
    contracts->install(std::make_shared<ReputationContract>(config));
    state.credit(alice.address(), 1000);
    state.credit(bob.address(), 1000);
    state.credit(carol.address(), 1000);
  }

  Status rate(const crypto::Wallet& w, crypto::Address subject,
              std::int64_t delta, std::int64_t height) {
    const auto tx = ledger::make_contract_call(
        w, state.nonce(w.address()), config.name, "rate",
        ReputationContract::encode_rate(subject, delta), 0, rng);
    return state.apply(tx, *contracts, height);
  }
};

TEST(ReputationContract, RateAccumulatesOnLedger) {
  ContractFixture f;
  ASSERT_TRUE(f.rate(f.alice, f.bob.address(), 4, 0).ok());
  EXPECT_EQ(ReputationContract::score(f.state, f.config.name, f.bob.address()), 4);
  ASSERT_TRUE(f.rate(f.carol, f.bob.address(), -2, 0).ok());
  EXPECT_EQ(ReputationContract::score(f.state, f.config.name, f.bob.address()), 2);
  EXPECT_EQ(ReputationContract::rated_count(f.state, f.config.name), 1u);
}

TEST(ReputationContract, SelfRatingAndOversizedDeltaRejected) {
  ContractFixture f;
  EXPECT_EQ(f.rate(f.alice, f.alice.address(), 1, 0).error().code,
            errc::kRepSelfRating);
  EXPECT_EQ(f.rate(f.alice, f.bob.address(), f.config.max_abs_delta + 1, 0)
                .error().code,
            errc::kRepDeltaTooLarge);
  EXPECT_EQ(f.rate(f.alice, f.bob.address(), 0, 0).error().code,
            errc::kRepBadArgs);
}

TEST(ReputationContract, PairCooldownEnforcedByHeight) {
  ContractFixture f;
  ASSERT_TRUE(f.rate(f.alice, f.bob.address(), 1, 10).ok());
  EXPECT_EQ(f.rate(f.alice, f.bob.address(), 1, 11).error().code,
            errc::kRepCooldown);
  // A different pair is unaffected; the same pair clears after the window.
  ASSERT_TRUE(f.rate(f.carol, f.bob.address(), 1, 11).ok());
  ASSERT_TRUE(f.rate(f.alice, f.bob.address(), 1, 13).ok());
}

TEST(ReputationContract, ScoreSaturatesAtBounds) {
  ContractFixture f;
  std::int64_t height = 0;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(f.rate(f.alice, f.bob.address(), f.config.max_abs_delta,
                       height).ok());
    height += f.config.cooldown_blocks;
  }
  EXPECT_EQ(ReputationContract::score(f.state, f.config.name, f.bob.address()),
            f.config.max_score);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(f.rate(f.alice, f.bob.address(), -f.config.max_abs_delta,
                       height).ok());
    height += f.config.cooldown_blocks;
  }
  EXPECT_EQ(ReputationContract::score(f.state, f.config.name, f.bob.address()),
            f.config.min_score);
}

TEST(ReputationContract, UnknownMethodRejected) {
  ContractFixture f;
  const auto tx = ledger::make_contract_call(
      f.alice, f.state.nonce(f.alice.address()), f.config.name, "boost",
      Bytes{}, 0, f.rng);
  EXPECT_EQ(f.state.apply(tx, *f.contracts, 0).error().code,
            errc::kRepUnknownMethod);
}

}  // namespace
}  // namespace mv::reputation
