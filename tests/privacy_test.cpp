// Privacy pipeline tests: sensors, PET transforms, Figure-2 pipeline gating
// (switches, consent, LED), and the inference attackers that quantify leakage.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "privacy/inference.h"
#include "privacy/pipeline.h"

namespace mv::privacy {
namespace {

// ------------------------------------------------------------ sensors

TEST(Sensors, TraitsInRange) {
  SensorSim sim(Rng(1));
  for (int i = 0; i < 200; ++i) {
    const UserTraits t = sim.sample_traits();
    EXPECT_GE(t.preference_class, 0);
    EXPECT_LT(t.preference_class, kPreferenceClasses);
    EXPECT_GE(t.gait_frequency, 0.8);
    EXPECT_LE(t.gait_frequency, 2.2);
  }
}

TEST(Sensors, GazeClustersAroundPreferenceCentroid) {
  SensorSim sim(Rng(2));
  UserTraits t = sim.sample_traits();
  t.preference_class = 3;
  const auto [cx, cy] = preference_centroid(3);
  RunningStats dx, dy;
  for (int i = 0; i < 2000; ++i) {
    const auto r = sim.gaze(1, t, i);
    ASSERT_EQ(r.values.size(), 2u);
    dx.add(r.values[0] - cx);
    dy.add(r.values[1] - cy);
  }
  EXPECT_NEAR(dx.mean(), 0.0, 0.02);
  EXPECT_NEAR(dy.mean(), 0.0, 0.02);
}

TEST(Sensors, SpatialMapContainsBystanderClusterWhenForced) {
  SensorSim sim(Rng(3));
  const auto r = sim.spatial_map(1, 0, 64, /*bystander_rate=*/1.0);
  EXPECT_EQ(r.values.size(), 64u * 3u);
}

TEST(Sensors, SensitivityDefaults) {
  EXPECT_EQ(default_sensitivity(SensorType::kGaze), Sensitivity::kCritical);
  EXPECT_EQ(default_sensitivity(SensorType::kHeadPose), Sensitivity::kHigh);
  EXPECT_EQ(default_sensitivity(SensorType::kMicrophone), Sensitivity::kCritical);
}

// ------------------------------------------------------------ PETs

SensorReading make_reading(std::vector<double> values) {
  SensorReading r;
  r.type = SensorType::kGaze;
  r.subject = 1;
  r.at = 0;
  r.values = std::move(values);
  return r;
}

TEST(Pets, LaplaceIsUnbiasedWithCorrectScale) {
  LaplaceNoise pet(/*epsilon=*/1.0, /*sensitivity=*/1.0);
  Rng rng(4);
  RunningStats s;
  for (int i = 0; i < 30000; ++i) {
    const auto out = pet.apply(make_reading({5.0}), rng);
    ASSERT_TRUE(out.has_value());
    s.add(out->values[0]);
  }
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  // Var(Laplace(b=1)) = 2.
  EXPECT_NEAR(s.variance(), 2.0, 0.15);
}

TEST(Pets, LowerEpsilonMeansMoreNoise) {
  Rng rng(5);
  RunningStats strong, weak;
  LaplaceNoise eps01(0.1, 1.0), eps10(10.0, 1.0);
  for (int i = 0; i < 5000; ++i) {
    strong.add(eps01.apply(make_reading({0.0}), rng)->values[0]);
    weak.add(eps10.apply(make_reading({0.0}), rng)->values[0]);
  }
  EXPECT_GT(strong.stddev(), 5.0 * weak.stddev());
}

TEST(Pets, SubsampleKeepsExactlyOneInN) {
  Subsample pet(4);
  Rng rng(6);
  int kept = 0;
  for (int i = 0; i < 100; ++i) {
    kept += pet.apply(make_reading({1.0}), rng).has_value();
  }
  EXPECT_EQ(kept, 25);
}

TEST(Pets, SubsampleOfOnePassesEverything) {
  Subsample pet(1);
  Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(pet.apply(make_reading({1.0}), rng).has_value());
  }
}

TEST(Pets, SpatialGeneralizeQuantizesToCellCentre) {
  SpatialGeneralize pet(0.5);
  Rng rng(7);
  const auto out = pet.apply(make_reading({0.6, 1.9, -0.2}), rng);
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ(out->values[0], 0.75);
  EXPECT_DOUBLE_EQ(out->values[1], 1.75);
  EXPECT_DOUBLE_EQ(out->values[2], -0.25);
}

TEST(Pets, ClampRange) {
  ClampRange pet(0.0, 1.0);
  Rng rng(8);
  const auto out = pet.apply(make_reading({-5.0, 0.5, 7.0}), rng);
  EXPECT_EQ(out->values, (std::vector<double>{0.0, 0.5, 1.0}));
}

TEST(Pets, BystanderRedactionRemovesPersonCluster) {
  SensorSim sim(Rng(9));
  BystanderRedaction pet;
  Rng rng(10);
  // Average over scans: with a forced bystander the redacted scan must show
  // (nearly) no person-height cluster while keeping most room points.
  double exposure_raw = 0.0, exposure_redacted = 0.0;
  int scans = 30;
  for (int i = 0; i < scans; ++i) {
    // Re-generate until values known; use fixed cluster via manual reading.
    SensorReading r;
    r.type = SensorType::kSpatialMap;
    Rng gen(100 + i);
    const double bx = 2.5, by = 2.5;
    for (int p = 0; p < 48; ++p) {
      if (p < 12) {  // bystander blob
        r.values.push_back(bx + gen.normal(0.0, 0.1));
        r.values.push_back(by + gen.normal(0.0, 0.1));
        r.values.push_back(gen.uniform(0.3, 1.7));
      } else {  // room
        r.values.push_back(gen.uniform(0.0, 5.0));
        r.values.push_back(gen.uniform(0.0, 5.0));
        r.values.push_back(gen.uniform(0.0, 2.5));
      }
    }
    exposure_raw += bystander_exposure(r, bx, by);
    const auto redacted = pet.apply(r, rng);
    ASSERT_TRUE(redacted.has_value());
    exposure_redacted += bystander_exposure(*redacted, bx, by);
    // At least half the scan survives (blob + a small halo may go).
    EXPECT_GE(redacted->values.size(), r.values.size() / 2);
  }
  EXPECT_GT(exposure_raw / scans, 0.2);
  EXPECT_LT(exposure_redacted / scans, 0.05 * exposure_raw / scans + 0.02);
}

TEST(Pets, MicroAggregateReleasesCohortMean) {
  MicroAggregate pet(4);
  Rng rng(30);
  int released = 0;
  std::optional<SensorReading> last;
  for (int i = 1; i <= 8; ++i) {
    auto out = pet.apply(make_reading({static_cast<double>(i), 10.0 * i}), rng);
    if (out.has_value()) {
      ++released;
      last = out;
    }
  }
  EXPECT_EQ(released, 2);  // one release per cohort of 4
  ASSERT_TRUE(last.has_value());
  // Second cohort: inputs 5..8 → mean 6.5 (and 65.0).
  EXPECT_DOUBLE_EQ(last->values[0], 6.5);
  EXPECT_DOUBLE_EQ(last->values[1], 65.0);
}

TEST(Pets, MicroAggregateOfOnePassesThrough) {
  MicroAggregate pet(1);
  Rng rng(31);
  const auto out = pet.apply(make_reading({3.0}), rng);
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ(out->values[0], 3.0);
}

TEST(Pets, EpsilonCostsReflectDpMechanisms) {
  EXPECT_DOUBLE_EQ(LaplaceNoise(1.5, 0.5).epsilon_cost(), 1.5);
  EXPECT_DOUBLE_EQ(GaussianNoise(0.1).epsilon_cost(), 0.0);
  EXPECT_DOUBLE_EQ(Subsample(4).epsilon_cost(), 0.0);
}

// ------------------------------------------------------------ pipeline

struct PipelineFixture {
  PrivacyPipeline pipeline{Rng(11)};
  std::vector<SensorReading> local, cloud;

  PipelineFixture() {
    pipeline.set_local_sink([this](const SensorReading& r) { local.push_back(r); });
    pipeline.set_cloud_sink([this](const SensorReading& r) { cloud.push_back(r); });
  }

  SensorReading gaze_at(Tick at) {
    SensorReading r;
    r.type = SensorType::kGaze;
    r.subject = 7;
    r.at = at;
    r.values = {0.5, 0.5};
    return r;
  }
};

TEST(Pipeline, NoPolicyMeansNothingLeaves) {
  PipelineFixture f;
  EXPECT_FALSE(f.pipeline.process(f.gaze_at(0)).has_value());
  EXPECT_TRUE(f.local.empty());
  EXPECT_TRUE(f.cloud.empty());
  EXPECT_EQ(f.pipeline.stats().blocked_switch, 1u);
}

TEST(Pipeline, SwitchBlocksEverything) {
  PipelineFixture f;
  ChannelPolicy policy;
  policy.consent_given = true;
  f.pipeline.set_policy(SensorType::kGaze, policy);
  f.pipeline.set_switch(SensorType::kGaze, false);
  EXPECT_FALSE(f.pipeline.process(f.gaze_at(0)).has_value());
  EXPECT_TRUE(f.local.empty());  // switch kills even local processing
}

TEST(Pipeline, ConsentGatesCloudNotLocal) {
  PipelineFixture f;
  ChannelPolicy policy;
  policy.consent_given = false;
  f.pipeline.set_policy(SensorType::kGaze, policy);
  EXPECT_FALSE(f.pipeline.process(f.gaze_at(0)).has_value());
  EXPECT_EQ(f.local.size(), 1u);  // on-device processing still works
  EXPECT_TRUE(f.cloud.empty());
  EXPECT_EQ(f.pipeline.stats().blocked_consent, 1u);

  f.pipeline.set_consent(SensorType::kGaze, true);
  EXPECT_TRUE(f.pipeline.process(f.gaze_at(1)).has_value());
  EXPECT_EQ(f.cloud.size(), 1u);
}

TEST(Pipeline, PetChainAppliedInOrder) {
  PipelineFixture f;
  ChannelPolicy policy;
  policy.consent_given = true;
  policy.transforms = {std::make_shared<ClampRange>(0.0, 1.0),
                       std::make_shared<SpatialGeneralize>(1.0)};
  f.pipeline.set_policy(SensorType::kGaze, policy);
  auto out = f.pipeline.process(f.gaze_at(0));
  ASSERT_TRUE(out.has_value());
  // Clamp(0..1) then generalize(cell=1) → cell centre 0.5.
  EXPECT_DOUBLE_EQ(out->values[0], 0.5);
  EXPECT_EQ(f.pipeline.pet_chain_description(SensorType::kGaze),
            "clamp(0.000000,1.000000)+generalize(cell=1.000000)");
}

TEST(Pipeline, SuppressionCountsAndStopsChain) {
  PipelineFixture f;
  ChannelPolicy policy;
  policy.consent_given = true;
  policy.transforms = {std::make_shared<Subsample>(2)};
  f.pipeline.set_policy(SensorType::kGaze, policy);
  int released = 0;
  for (int i = 0; i < 10; ++i) {
    released += f.pipeline.process(f.gaze_at(i)).has_value();
  }
  EXPECT_EQ(released, 5);
  EXPECT_EQ(f.pipeline.stats().suppressed_by_pet, 5u);
}

TEST(Pipeline, IndicatorTracksCloudReleases) {
  PipelineFixture f;
  ChannelPolicy policy;
  policy.consent_given = true;
  f.pipeline.set_policy(SensorType::kGaze, policy);
  EXPECT_FALSE(f.pipeline.indicator_on(0));
  ASSERT_TRUE(f.pipeline.process(f.gaze_at(100)).has_value());
  EXPECT_TRUE(f.pipeline.indicator_on(105));
  EXPECT_FALSE(f.pipeline.indicator_on(200));
}

TEST(Pipeline, AuditHookFiresPerCloudRelease) {
  PipelineFixture f;
  ChannelPolicy policy;
  policy.consent_given = true;
  policy.purpose = "foveated_rendering";
  policy.transforms = {std::make_shared<LaplaceNoise>(1.0, 0.5)};
  f.pipeline.set_policy(SensorType::kGaze, policy);
  std::vector<std::pair<std::string, std::string>> audits;
  f.pipeline.set_audit_hook([&](const SensorReading&, const std::string& chain,
                                const std::string& purpose) {
    audits.emplace_back(chain, purpose);
  });
  ASSERT_TRUE(f.pipeline.process(f.gaze_at(0)).has_value());
  ASSERT_EQ(audits.size(), 1u);
  EXPECT_EQ(audits[0].first, "laplace(eps=1.000000)");
  EXPECT_EQ(audits[0].second, "foveated_rendering");
}

TEST(Pipeline, EpsilonBudgetBlocksWhenExhausted) {
  PipelineFixture f;
  ChannelPolicy policy;
  policy.consent_given = true;
  policy.transforms = {std::make_shared<LaplaceNoise>(1.0, 0.5)};
  policy.epsilon_budget = 3.0;  // three releases of eps=1 each
  f.pipeline.set_policy(SensorType::kGaze, policy);
  int released = 0;
  for (int i = 0; i < 10; ++i) {
    released += f.pipeline.process(f.gaze_at(i)).has_value();
  }
  EXPECT_EQ(released, 3);
  EXPECT_EQ(f.pipeline.stats().blocked_budget, 7u);
  EXPECT_DOUBLE_EQ(f.pipeline.epsilon_spent(SensorType::kGaze), 3.0);

  // A new epoch restores the budget.
  f.pipeline.reset_budgets();
  EXPECT_TRUE(f.pipeline.process(f.gaze_at(100)).has_value());
  EXPECT_DOUBLE_EQ(f.pipeline.epsilon_spent(SensorType::kGaze), 1.0);
}

TEST(Pipeline, ChainCostIsSequentialComposition) {
  PipelineFixture f;
  ChannelPolicy policy;
  policy.consent_given = true;
  policy.transforms = {std::make_shared<LaplaceNoise>(1.0, 0.5),
                       std::make_shared<LaplaceNoise>(0.5, 0.5)};
  f.pipeline.set_policy(SensorType::kGaze, policy);
  ASSERT_TRUE(f.pipeline.process(f.gaze_at(0)).has_value());
  EXPECT_DOUBLE_EQ(f.pipeline.epsilon_spent(SensorType::kGaze), 1.5);
}

TEST(Pipeline, UnmeteredChannelNeverBlocksOnBudget) {
  PipelineFixture f;
  ChannelPolicy policy;
  policy.consent_given = true;
  policy.transforms = {std::make_shared<LaplaceNoise>(10.0, 0.5)};
  f.pipeline.set_policy(SensorType::kGaze, policy);  // default budget = inf
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(f.pipeline.process(f.gaze_at(i)).has_value());
  }
  EXPECT_EQ(f.pipeline.stats().blocked_budget, 0u);
}

TEST(Pipeline, RecommendedPoliciesMatchSensitivity) {
  const auto gaze = recommended_policy(SensorType::kGaze);
  EXPECT_FALSE(gaze.consent_given);
  EXPECT_FALSE(gaze.transforms.empty());
  const auto map = recommended_policy(SensorType::kSpatialMap);
  EXPECT_EQ(map.transforms.size(), 2u);
}

// ------------------------------------------------------------ inference

TEST(Inference, PreferenceRecoveredFromRawGaze) {
  SensorSim sim(Rng(13));
  int correct = 0;
  const int users = 200;
  for (int u = 0; u < users; ++u) {
    const UserTraits t = sim.sample_traits();
    std::vector<SensorReading> session;
    for (int i = 0; i < 30; ++i) session.push_back(sim.gaze(u, t, i));
    correct += (infer_preference(session) == t.preference_class);
  }
  // Raw gaze leaks the preference class almost perfectly.
  EXPECT_GT(static_cast<double>(correct) / users, 0.95);
}

TEST(Inference, StrongDpNoiseDrivesAttackTowardChance) {
  SensorSim sim(Rng(14));
  Rng rng(15);
  LaplaceNoise pet(/*epsilon=*/0.05, /*sensitivity=*/0.5);
  int correct = 0;
  const int users = 200;
  for (int u = 0; u < users; ++u) {
    const UserTraits t = sim.sample_traits();
    std::vector<SensorReading> session;
    for (int i = 0; i < 30; ++i) {
      session.push_back(*pet.apply(sim.gaze(u, t, i), rng));
    }
    correct += (infer_preference(session) == t.preference_class);
  }
  const double accuracy = static_cast<double>(correct) / users;
  // Chance is 1/8; allow generous slack but demand the leak is mostly gone.
  EXPECT_LT(accuracy, 0.35);
}

TEST(Inference, GaitReidentificationAndDefence) {
  SensorSim sim(Rng(16));
  Rng rng(17);
  const int users = 100;
  std::vector<UserTraits> traits;
  std::vector<GaitProfile> enrolled;
  for (int u = 0; u < users; ++u) {
    traits.push_back(sim.sample_traits());
    enrolled.push_back(GaitProfile{static_cast<std::uint64_t>(u),
                                   traits.back().gait_frequency,
                                   traits.back().gait_amplitude});
  }
  int correct_raw = 0, correct_noised = 0;
  GaussianNoise pet(0.5);
  for (int u = 0; u < users; ++u) {
    std::vector<SensorReading> raw, noised;
    for (int i = 0; i < 20; ++i) {
      auto r = sim.head_pose(static_cast<std::uint64_t>(u), traits[static_cast<std::size_t>(u)], i);
      noised.push_back(*pet.apply(r, rng));
      raw.push_back(std::move(r));
    }
    correct_raw += (identify_gait(summarize_gait(static_cast<std::uint64_t>(u), raw), enrolled) ==
                    static_cast<std::uint64_t>(u));
    correct_noised +=
        (identify_gait(summarize_gait(static_cast<std::uint64_t>(u), noised), enrolled) ==
         static_cast<std::uint64_t>(u));
  }
  EXPECT_GT(correct_raw, 70);              // raw gait is identifying
  EXPECT_LT(correct_noised, correct_raw);  // noise helps
}

TEST(Inference, VoiceprintReidentificationAndMasking) {
  SensorSim sim{Rng(60)};
  Rng rng(61);
  const int users = 100;
  std::vector<UserTraits> traits;
  std::vector<VoiceProfile> enrolled;
  for (int u = 0; u < users; ++u) {
    traits.push_back(sim.sample_traits());
    enrolled.push_back(VoiceProfile{static_cast<std::uint64_t>(u),
                                    traits.back().voice_pitch,
                                    traits.back().voice_formant});
  }
  int correct_raw = 0, correct_masked = 0;
  for (int u = 0; u < users; ++u) {
    // Persona-specific mask: shift depends on the user's session persona.
    VoiceMask mask(40.0 + 10.0 * (u % 7), 0.2);
    std::vector<SensorReading> raw, masked;
    for (int i = 0; i < 15; ++i) {
      auto frame = sim.microphone(static_cast<std::uint64_t>(u),
                                  traits[static_cast<std::size_t>(u)], i);
      masked.push_back(*mask.apply(frame, rng));
      raw.push_back(std::move(frame));
    }
    correct_raw += (identify_voice(summarize_voice(static_cast<std::uint64_t>(u), raw),
                                   enrolled) == static_cast<std::uint64_t>(u));
    correct_masked +=
        (identify_voice(summarize_voice(static_cast<std::uint64_t>(u), masked),
                        enrolled) == static_cast<std::uint64_t>(u));
  }
  EXPECT_GT(correct_raw, 85);               // raw voice is a fingerprint
  EXPECT_LT(correct_masked, correct_raw / 2);  // masking breaks the match
}

TEST(Pets, VoiceMaskLeavesOtherSensorsAlone) {
  VoiceMask mask(50.0);
  Rng rng(62);
  auto gaze = make_reading({0.5, 0.5});  // type kGaze
  const auto out = mask.apply(gaze, rng);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->values, gaze.values);
}

TEST(Inference, UtilityDecreasesWithNoiseAndSuppression) {
  SensorSim sim(Rng(18));
  Rng rng(19);
  const UserTraits t = sim.sample_traits();
  std::vector<SensorReading> raw;
  for (int i = 0; i < 100; ++i) raw.push_back(sim.gaze(1, t, i));

  const double u_identity = stream_utility(raw, raw);
  EXPECT_DOUBLE_EQ(u_identity, 1.0);

  LaplaceNoise light(10.0, 0.5), heavy(0.1, 0.5);
  std::vector<SensorReading> light_rel, heavy_rel, sparse_rel;
  Subsample sub(4);
  for (const auto& r : raw) {
    light_rel.push_back(*light.apply(r, rng));
    heavy_rel.push_back(*heavy.apply(r, rng));
    if (auto kept = sub.apply(r, rng); kept.has_value()) sparse_rel.push_back(*kept);
  }
  const double u_light = stream_utility(raw, light_rel);
  const double u_heavy = stream_utility(raw, heavy_rel);
  const double u_sparse = stream_utility(raw, sparse_rel);
  EXPECT_GT(u_light, u_heavy);
  EXPECT_NEAR(u_sparse, 0.25, 0.02);  // kept 1 in 4, unmodified values
  EXPECT_LT(u_heavy, 0.25);
}

TEST(Inference, EmptySessionsHandled) {
  EXPECT_EQ(infer_preference({}), -1);
  EXPECT_DOUBLE_EQ(stream_utility({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(infer_resting_hr({}), 0.0);
  EXPECT_FALSE(screen_elevated_hr({}));
}

TEST(Inference, HealthScreeningFromRawHeartRateAndDpDefence) {
  SensorSim sim{Rng(70)};
  Rng rng(71);
  const int users = 200;
  int correct_raw = 0, correct_noised = 0, positives = 0;
  LaplaceNoise pet(0.1, 5.0);  // strong DP on a high-sensitivity signal
  for (int u = 0; u < users; ++u) {
    const UserTraits t = sim.sample_traits();
    const bool truly_elevated = t.resting_hr >= 80.0;
    positives += truly_elevated;
    std::vector<SensorReading> raw, noised;
    for (int i = 0; i < 20; ++i) {
      auto r = sim.heart_rate(static_cast<std::uint64_t>(u), t, i);
      noised.push_back(*pet.apply(r, rng));
      raw.push_back(std::move(r));
    }
    correct_raw += (screen_elevated_hr(raw) == truly_elevated);
    correct_noised += (screen_elevated_hr(noised) == truly_elevated);
  }
  ASSERT_GT(positives, 20);  // both classes present
  // Raw HR screens health status well above chance; strong DP noise on the
  // min-statistic wrecks the attack.
  EXPECT_GT(static_cast<double>(correct_raw) / users, 0.85);
  EXPECT_LT(static_cast<double>(correct_noised) / users,
            static_cast<double>(correct_raw) / users - 0.2);
}

// Property sweep: E1's monotone shape — attacker accuracy falls as epsilon
// drops, across seeds.
class EpsilonSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EpsilonSweepTest, AccuracyMonotoneInEpsilon) {
  SensorSim sim{Rng(GetParam())};
  Rng rng(GetParam() + 1);
  const int users = 150;
  std::vector<UserTraits> traits;
  for (int u = 0; u < users; ++u) traits.push_back(sim.sample_traits());

  auto accuracy_at = [&](double epsilon) {
    LaplaceNoise pet(epsilon, 0.5);
    int correct = 0;
    for (int u = 0; u < users; ++u) {
      std::vector<SensorReading> session;
      for (int i = 0; i < 25; ++i) {
        session.push_back(*pet.apply(
            sim.gaze(static_cast<std::uint64_t>(u), traits[static_cast<std::size_t>(u)], i), rng));
      }
      correct += (infer_preference(session) == traits[static_cast<std::size_t>(u)].preference_class);
    }
    return static_cast<double>(correct) / users;
  };

  const double high = accuracy_at(10.0);
  const double low = accuracy_at(0.05);
  EXPECT_GT(high, 0.85);
  EXPECT_LT(low, high - 0.3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpsilonSweepTest, ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace mv::privacy
