// Golden-trace recorder: records a named scenario and writes the trace file
// the regression tests replay (tests/data/*.trace). Prints the per-class
// generator stats and the final commitment root so the expected constants in
// scenario_test.cpp can be refreshed alongside the file.
//
//   record_trace <mix> <seed> <avatars> <rounds> <txs_per_round> <out.trace>
//
// After writing, the trace is read back and replayed through a fresh stack
// as a self-check: a trace that does not round-trip is not written home.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "scenario/harness.h"

int main(int argc, char** argv) {
  if (argc != 7) {
    std::fprintf(stderr,
                 "usage: %s <mix> <seed> <avatars> <rounds> <txs_per_round> "
                 "<out.trace>\n  mixes:",
                 argv[0]);
    for (const auto& name : mv::scenario::mix_catalog()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  mv::scenario::ScenarioConfig config;
  config.mix = argv[1];
  config.seed = std::strtoull(argv[2], nullptr, 10);
  config.avatars = std::strtoull(argv[3], nullptr, 10);
  config.rounds = static_cast<std::uint32_t>(std::strtoul(argv[4], nullptr, 10));
  config.txs_per_round =
      static_cast<std::uint32_t>(std::strtoul(argv[5], nullptr, 10));
  const std::string out_path = argv[6];

  auto recorded = mv::scenario::record(config);
  if (!recorded.ok()) {
    std::fprintf(stderr, "record failed: %s\n",
                 recorded.error().to_string().c_str());
    return 1;
  }
  const auto& rec = recorded.value();
  if (!rec.run.violations.empty()) {
    for (const auto& v : rec.run.violations) {
      std::fprintf(stderr, "invariant violation: %s\n", v.c_str());
    }
    return 1;
  }
  if (auto saved = mv::scenario::save_trace(rec.trace, out_path); !saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.error().to_string().c_str());
    return 1;
  }

  // Round-trip self-check: load the file we just wrote and replay it.
  auto loaded = mv::scenario::load_trace(out_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "reload failed: %s\n",
                 loaded.error().to_string().c_str());
    return 1;
  }
  auto replayed = mv::scenario::replay(loaded.value());
  if (!replayed.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 replayed.error().to_string().c_str());
    return 1;
  }
  if (replayed.value().mismatched_blocks != 0) {
    std::fprintf(stderr, "replay diverged on %zu blocks\n",
                 replayed.value().mismatched_blocks);
    return 1;
  }

  const auto& g = rec.generated;
  std::printf("trace      %s (%zu bytes)\n", out_path.c_str(),
              rec.trace.encode().size());
  std::printf("scenario   %s seed=%llu avatars=%llu rounds=%zu txs=%zu\n",
              config.mix.c_str(),
              static_cast<unsigned long long>(config.seed),
              static_cast<unsigned long long>(config.avatars),
              rec.trace.rounds.size(), rec.trace.total_txs());
  std::printf(
      "classes    transfer=%llu audit=%llu mint=%llu list=%llu buy=%llu "
      "cancel=%llu move=%llu\n",
      static_cast<unsigned long long>(g.transfers),
      static_cast<unsigned long long>(g.audits),
      static_cast<unsigned long long>(g.mints),
      static_cast<unsigned long long>(g.lists),
      static_cast<unsigned long long>(g.buys),
      static_cast<unsigned long long>(g.cancels),
      static_cast<unsigned long long>(g.token_moves));
  std::printf(
      "           join=%llu propose=%llu vote=%llu finalize=%llu "
      "report=%llu resolve=%llu rate=%llu\n",
      static_cast<unsigned long long>(g.joins),
      static_cast<unsigned long long>(g.proposals),
      static_cast<unsigned long long>(g.votes),
      static_cast<unsigned long long>(g.finalizes),
      static_cast<unsigned long long>(g.reports),
      static_cast<unsigned long long>(g.resolves),
      static_cast<unsigned long long>(g.ratings));
  std::printf("scams      scam_txs=%llu wash_trades=%llu rug_pulls=%llu\n",
              static_cast<unsigned long long>(g.scam_txs),
              static_cast<unsigned long long>(g.wash_trades),
              static_cast<unsigned long long>(g.rug_pulls));
  std::printf("final_root %s\n",
              mv::crypto::to_hex(
                  rec.trace.rounds.back().commitment_root).c_str());
  std::printf("wall       %.2fs record, %.2fs replay\n", rec.run.wall_seconds,
              replayed.value().wall_seconds);
  return 0;
}
