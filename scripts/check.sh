#!/usr/bin/env bash
# Build and test both configurations: the normal RelWithDebInfo build and the
# ASan+UBSan build. Run from the repository root. Exits non-zero on the first
# failing build or test.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

echo "== configure + build: default (RelWithDebInfo) =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "${jobs}"

echo "== ctest: default =="
ctest --test-dir build --output-on-failure -j "${jobs}"

echo "== configure + build: asan-ubsan =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMV_SANITIZE=ON
cmake --build build-asan -j "${jobs}"

echo "== ctest: asan-ubsan =="
ctest --test-dir build-asan --output-on-failure -j "${jobs}"

echo "All checks passed."
