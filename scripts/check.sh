#!/usr/bin/env bash
# Build and test three configurations: the normal RelWithDebInfo build, the
# ASan+UBSan build, and a ThreadSanitizer build that runs the suites
# exercising the parallel block-validation engine. Also emits ledger
# benchmark medians to BENCH_ledger.json. Run from the repository root.
# Exits non-zero on the first failing build, test, or missing gate.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

echo "== configure + build: default (RelWithDebInfo) =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "${jobs}"

echo "== ctest: default =="
ctest --test-dir build --output-on-failure -j "${jobs}"

echo "== gate: differential commitment test must run (not be skipped) =="
# The incremental-vs-full-rehash differential test is the commitment format's
# safety net; --no-tests=error fails if a rename makes the filter match
# nothing, and the grep fails if gtest reports it skipped.
diff_out="$(ctest --test-dir build -R 'Differential' --no-tests=error --output-on-failure 2>&1)" || {
  echo "${diff_out}"
  echo "FAIL: differential commitment test did not run or did not pass"
  exit 1
}
if echo "${diff_out}" | grep -qi 'skipped'; then
  echo "${diff_out}"
  echo "FAIL: differential commitment test was skipped"
  exit 1
fi

echo "== gate: proof fuzz (10k keys + mutation sweep) must run (not be skipped) =="
# Every present key must prove, every absent key must non-membership-prove,
# and no single-byte mutation of an encoded proof may survive verification.
fuzz_out="$(ctest --test-dir build -R 'ProofFuzz' --no-tests=error --output-on-failure 2>&1)" || {
  echo "${fuzz_out}"
  echo "FAIL: proof fuzz test did not run or did not pass"
  exit 1
}
if echo "${fuzz_out}" | grep -qi 'skipped'; then
  echo "${fuzz_out}"
  echo "FAIL: proof fuzz test was skipped"
  exit 1
fi

echo "== gate: snapshot differential + mutation fuzz must run (not be skipped) =="
# The snapshot codec's safety net: decode must reproduce the commitment
# byte-identically (differential vs full_rehash_commitment) and no
# single-byte mutation of a manifest or chunk may survive the trust chain.
snap_out="$(ctest --test-dir build -R 'Snapshot(Codec|ManifestCodec|Assembly)' --no-tests=error --output-on-failure 2>&1)" || {
  echo "${snap_out}"
  echo "FAIL: snapshot codec/mutation tests did not run or did not pass"
  exit 1
}
if echo "${snap_out}" | grep -qi 'skipped'; then
  echo "${snap_out}"
  echo "FAIL: snapshot codec/mutation tests were skipped"
  exit 1
fi

echo "== gate: job queue battery (priority, shedding, determinism) must run =="
# The queue is the scheduler under every subsystem; its suite must never be
# silently renamed away or skipped.
jq_out="$(ctest --test-dir build -R 'JobQueue' --no-tests=error --output-on-failure 2>&1)" || {
  echo "${jq_out}"
  echo "FAIL: job queue tests did not run or did not pass"
  exit 1
}
if echo "${jq_out}" | grep -qi 'skipped'; then
  echo "${jq_out}"
  echo "FAIL: job queue tests were skipped"
  exit 1
fi

echo "== gate: subscription read path + client API taxonomy must run =="
# The streaming read path's contract: lifecycle edge cases (eviction,
# unsubscribe-during-push, stale rejection), flood isolation (consensus
# never sheds while pushes do), gap recovery, the ClientApi error taxonomy,
# and the snapshot server's busy-NACK backoff.
sub_out="$(ctest --test-dir build -R 'Subscription|ClientApi|SnapshotBusyNack' --no-tests=error --output-on-failure 2>&1)" || {
  echo "${sub_out}"
  echo "FAIL: subscription/client-api tests did not run or did not pass"
  exit 1
}
if echo "${sub_out}" | grep -qi 'skipped'; then
  echo "${sub_out}"
  echo "FAIL: subscription/client-api tests were skipped"
  exit 1
fi

echo "== gate: swarm catch-up (striping, byzantine demotion, diff snapshots) =="
# The multi-peer transfer's contract: striped fetch over a lossy network must
# converge byte-identically, a corrupt peer must be demoted while the sync
# still completes, busy NACKs must reroute instead of dead-ending, and diff
# snapshots must fetch exactly the changed chunks.
swarm_out="$(ctest --test-dir build -R 'SnapshotSwarm|SnapshotDiff|SnapshotExportCachePinning' --no-tests=error --output-on-failure 2>&1)" || {
  echo "${swarm_out}"
  echo "FAIL: swarm catch-up tests did not run or did not pass"
  exit 1
}
if echo "${swarm_out}" | grep -qi 'skipped'; then
  echo "${swarm_out}"
  echo "FAIL: swarm catch-up tests were skipped"
  exit 1
fi

echo "== gate: scenario replay regression (golden traces, codec fuzz, invariants) =="
# The macro-workload harness (DESIGN.md §12): checked-in golden traces must
# replay byte-identically, every single-byte trace mutation must be rejected,
# the determinism sweep must agree across stack configurations, and the
# cross-module invariant checker must pass on every replayed block.
scen_out="$(ctest --test-dir build -R 'Scenario(Trace|Golden|Invariant|Harness)' --no-tests=error --output-on-failure 2>&1)" || {
  echo "${scen_out}"
  echo "FAIL: scenario replay-regression tests did not run or did not pass"
  exit 1
}
if echo "${scen_out}" | grep -qi 'skipped'; then
  echo "${scen_out}"
  echo "FAIL: scenario replay-regression tests were skipped"
  exit 1
fi

echo "== gate: sharded ledger (beacon anchors, cross-shard receipts, multi-world) =="
# The shard split's contract: N=1 byte-identity with the plain chain, beacon
# roots stable across thread counts, lock-and-mint receipts with replay and
# stale/foreign-root rejection, the receipt-codec mutation fuzz, and the
# multi-world trace replaying byte-identically through the sharded harness.
shard_out="$(ctest --test-dir build -R 'Shard|Beacon|CrossShard|MultiWorld' --no-tests=error --output-on-failure 2>&1)" || {
  echo "${shard_out}"
  echo "FAIL: sharded ledger tests did not run or did not pass"
  exit 1
}
if echo "${shard_out}" | grep -qi 'skipped'; then
  echo "${shard_out}"
  echo "FAIL: sharded ledger tests were skipped"
  exit 1
fi

echo "== bench: e2e macro workloads -> BENCH_e2e.json =="
MV_BENCH_NO_TABLE=1 ./build/bench/bench_e2e \
  --benchmark_out=BENCH_e2e.json \
  --benchmark_out_format=json

echo "== bench: ledger microbenchmarks -> BENCH_ledger.json (median of 3) =="
MV_BENCH_NO_TABLE=1 ./build/bench/bench_ledger \
  --benchmark_filter='BM_BlockAssembleValidate|BM_ParallelBlockValidate|BM_CommitmentAfterTouch|BM_TxApplyTransfer|BM_MempoolSelectRemove|BM_AccountProofRoundTrip|BM_CatchUp|BM_DiffSnapshot|BM_SnapshotExportImport|BM_BlockValidateSigCache|BM_JobQueue|BM_SubscriptionFanout|BM_ShardedPipeline' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_out=BENCH_ledger.json \
  --benchmark_out_format=json

echo "== configure + build: asan-ubsan =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMV_SANITIZE=ON
cmake --build build-asan -j "${jobs}"

echo "== ctest: asan-ubsan =="
ctest --test-dir build-asan --output-on-failure -j "${jobs}"

echo "== configure + build: tsan =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMV_TSAN=ON
cmake --build build-tsan -j "${jobs}" --target \
  common_test job_queue_test crypto_test parallel_test ledger_test snapshot_test subscription_test net_test scenario_test shard_test

echo "== tsan: suites touching the parallel validation engine =="
# halt_on_error turns the first data race into a non-zero exit instead of a
# warning that scrolls past; the suites below cover the thread pool, the job
# queue (priority/shedding under real workers, destructor-during-batch), the
# parallel apply/merge paths, consensus replicas in parallel mode, the
# queue-routed gossip/snapshot paths, the subscription fan-out (worker-thread
# pushes racing subscribe/ack handling), and the end-to-end scenarios.
for t in common_test job_queue_test crypto_test parallel_test ledger_test snapshot_test subscription_test net_test scenario_test shard_test; do
  echo "-- tsan: ${t}"
  TSAN_OPTIONS="halt_on_error=1" "./build-tsan/tests/${t}"
done

echo "All checks passed."
