# Empty dependencies file for nft_bazaar.
# This may be replaced when dependencies are built.
