file(REMOVE_RECURSE
  "CMakeFiles/nft_bazaar.dir/nft_bazaar.cpp.o"
  "CMakeFiles/nft_bazaar.dir/nft_bazaar.cpp.o.d"
  "nft_bazaar"
  "nft_bazaar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nft_bazaar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
