file(REMOVE_RECURSE
  "CMakeFiles/safety_playroom.dir/safety_playroom.cpp.o"
  "CMakeFiles/safety_playroom.dir/safety_playroom.cpp.o.d"
  "safety_playroom"
  "safety_playroom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safety_playroom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
