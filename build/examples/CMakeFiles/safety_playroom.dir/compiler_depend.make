# Empty compiler generated dependencies file for safety_playroom.
# This may be replaced when dependencies are built.
