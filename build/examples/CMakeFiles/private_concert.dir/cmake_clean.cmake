file(REMOVE_RECURSE
  "CMakeFiles/private_concert.dir/private_concert.cpp.o"
  "CMakeFiles/private_concert.dir/private_concert.cpp.o.d"
  "private_concert"
  "private_concert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_concert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
