# Empty compiler generated dependencies file for private_concert.
# This may be replaced when dependencies are built.
