file(REMOVE_RECURSE
  "CMakeFiles/governance_town.dir/governance_town.cpp.o"
  "CMakeFiles/governance_town.dir/governance_town.cpp.o.d"
  "governance_town"
  "governance_town.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/governance_town.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
