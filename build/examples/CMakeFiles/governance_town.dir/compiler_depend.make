# Empty compiler generated dependencies file for governance_town.
# This may be replaced when dependencies are built.
