# Empty compiler generated dependencies file for twin_gallery.
# This may be replaced when dependencies are built.
