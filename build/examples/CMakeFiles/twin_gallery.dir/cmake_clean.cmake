file(REMOVE_RECURSE
  "CMakeFiles/twin_gallery.dir/twin_gallery.cpp.o"
  "CMakeFiles/twin_gallery.dir/twin_gallery.cpp.o.d"
  "twin_gallery"
  "twin_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twin_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
