file(REMOVE_RECURSE
  "CMakeFiles/bench_frontiers.dir/bench_frontiers.cpp.o"
  "CMakeFiles/bench_frontiers.dir/bench_frontiers.cpp.o.d"
  "bench_frontiers"
  "bench_frontiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_frontiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
