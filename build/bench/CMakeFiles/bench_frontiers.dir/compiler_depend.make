# Empty compiler generated dependencies file for bench_frontiers.
# This may be replaced when dependencies are built.
