file(REMOVE_RECURSE
  "CMakeFiles/bench_privacy_pipeline.dir/bench_privacy_pipeline.cpp.o"
  "CMakeFiles/bench_privacy_pipeline.dir/bench_privacy_pipeline.cpp.o.d"
  "bench_privacy_pipeline"
  "bench_privacy_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_privacy_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
