# Empty dependencies file for bench_privacy_pipeline.
# This may be replaced when dependencies are built.
