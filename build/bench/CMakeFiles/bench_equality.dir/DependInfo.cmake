
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_equality.cpp" "bench/CMakeFiles/bench_equality.dir/bench_equality.cpp.o" "gcc" "bench/CMakeFiles/bench_equality.dir/bench_equality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dao/CMakeFiles/mv_dao.dir/DependInfo.cmake"
  "/root/repo/build/src/moderation/CMakeFiles/mv_moderation.dir/DependInfo.cmake"
  "/root/repo/build/src/nft/CMakeFiles/mv_nft.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/mv_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/mv_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/mv_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/reputation/CMakeFiles/mv_reputation.dir/DependInfo.cmake"
  "/root/repo/build/src/safety/CMakeFiles/mv_safety.dir/DependInfo.cmake"
  "/root/repo/build/src/trust/CMakeFiles/mv_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/twin/CMakeFiles/mv_twin.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mv_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/mv_world.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
