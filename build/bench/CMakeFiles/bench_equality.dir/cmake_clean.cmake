file(REMOVE_RECURSE
  "CMakeFiles/bench_equality.dir/bench_equality.cpp.o"
  "CMakeFiles/bench_equality.dir/bench_equality.cpp.o.d"
  "bench_equality"
  "bench_equality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_equality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
