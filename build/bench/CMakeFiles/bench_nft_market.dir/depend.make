# Empty dependencies file for bench_nft_market.
# This may be replaced when dependencies are built.
