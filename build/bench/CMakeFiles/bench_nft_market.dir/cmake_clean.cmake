file(REMOVE_RECURSE
  "CMakeFiles/bench_nft_market.dir/bench_nft_market.cpp.o"
  "CMakeFiles/bench_nft_market.dir/bench_nft_market.cpp.o.d"
  "bench_nft_market"
  "bench_nft_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nft_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
