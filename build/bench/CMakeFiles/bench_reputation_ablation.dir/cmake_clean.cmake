file(REMOVE_RECURSE
  "CMakeFiles/bench_reputation_ablation.dir/bench_reputation_ablation.cpp.o"
  "CMakeFiles/bench_reputation_ablation.dir/bench_reputation_ablation.cpp.o.d"
  "bench_reputation_ablation"
  "bench_reputation_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reputation_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
