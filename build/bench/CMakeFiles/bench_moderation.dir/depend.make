# Empty dependencies file for bench_moderation.
# This may be replaced when dependencies are built.
