file(REMOVE_RECURSE
  "CMakeFiles/bench_moderation.dir/bench_moderation.cpp.o"
  "CMakeFiles/bench_moderation.dir/bench_moderation.cpp.o.d"
  "bench_moderation"
  "bench_moderation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_moderation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
