file(REMOVE_RECURSE
  "CMakeFiles/bench_social_good.dir/bench_social_good.cpp.o"
  "CMakeFiles/bench_social_good.dir/bench_social_good.cpp.o.d"
  "bench_social_good"
  "bench_social_good.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_social_good.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
