# Empty compiler generated dependencies file for bench_social_good.
# This may be replaced when dependencies are built.
