# Empty dependencies file for bench_misinformation.
# This may be replaced when dependencies are built.
