file(REMOVE_RECURSE
  "CMakeFiles/bench_misinformation.dir/bench_misinformation.cpp.o"
  "CMakeFiles/bench_misinformation.dir/bench_misinformation.cpp.o.d"
  "bench_misinformation"
  "bench_misinformation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_misinformation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
