# Empty dependencies file for bench_ledger.
# This may be replaced when dependencies are built.
