# Empty compiler generated dependencies file for bench_dao_scalability.
# This may be replaced when dependencies are built.
