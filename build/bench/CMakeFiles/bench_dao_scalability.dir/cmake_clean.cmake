file(REMOVE_RECURSE
  "CMakeFiles/bench_dao_scalability.dir/bench_dao_scalability.cpp.o"
  "CMakeFiles/bench_dao_scalability.dir/bench_dao_scalability.cpp.o.d"
  "bench_dao_scalability"
  "bench_dao_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dao_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
