file(REMOVE_RECURSE
  "CMakeFiles/bench_digital_twins.dir/bench_digital_twins.cpp.o"
  "CMakeFiles/bench_digital_twins.dir/bench_digital_twins.cpp.o.d"
  "bench_digital_twins"
  "bench_digital_twins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_digital_twins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
