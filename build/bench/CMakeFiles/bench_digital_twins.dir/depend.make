# Empty dependencies file for bench_digital_twins.
# This may be replaced when dependencies are built.
