file(REMOVE_RECURSE
  "CMakeFiles/bench_privacy_bubble.dir/bench_privacy_bubble.cpp.o"
  "CMakeFiles/bench_privacy_bubble.dir/bench_privacy_bubble.cpp.o.d"
  "bench_privacy_bubble"
  "bench_privacy_bubble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_privacy_bubble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
