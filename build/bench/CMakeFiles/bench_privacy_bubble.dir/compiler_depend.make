# Empty compiler generated dependencies file for bench_privacy_bubble.
# This may be replaced when dependencies are built.
