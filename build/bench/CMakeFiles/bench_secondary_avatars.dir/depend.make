# Empty dependencies file for bench_secondary_avatars.
# This may be replaced when dependencies are built.
