file(REMOVE_RECURSE
  "CMakeFiles/bench_secondary_avatars.dir/bench_secondary_avatars.cpp.o"
  "CMakeFiles/bench_secondary_avatars.dir/bench_secondary_avatars.cpp.o.d"
  "bench_secondary_avatars"
  "bench_secondary_avatars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secondary_avatars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
