file(REMOVE_RECURSE
  "CMakeFiles/bench_mass_event.dir/bench_mass_event.cpp.o"
  "CMakeFiles/bench_mass_event.dir/bench_mass_event.cpp.o.d"
  "bench_mass_event"
  "bench_mass_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mass_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
