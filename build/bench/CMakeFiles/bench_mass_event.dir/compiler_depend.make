# Empty compiler generated dependencies file for bench_mass_event.
# This may be replaced when dependencies are built.
