# Empty dependencies file for bench_policy_engine.
# This may be replaced when dependencies are built.
