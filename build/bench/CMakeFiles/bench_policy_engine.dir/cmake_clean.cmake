file(REMOVE_RECURSE
  "CMakeFiles/bench_policy_engine.dir/bench_policy_engine.cpp.o"
  "CMakeFiles/bench_policy_engine.dir/bench_policy_engine.cpp.o.d"
  "bench_policy_engine"
  "bench_policy_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policy_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
