file(REMOVE_RECURSE
  "libmv_dao.a"
)
