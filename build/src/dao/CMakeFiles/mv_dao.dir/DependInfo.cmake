
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dao/contract.cpp" "src/dao/CMakeFiles/mv_dao.dir/contract.cpp.o" "gcc" "src/dao/CMakeFiles/mv_dao.dir/contract.cpp.o.d"
  "/root/repo/src/dao/dao.cpp" "src/dao/CMakeFiles/mv_dao.dir/dao.cpp.o" "gcc" "src/dao/CMakeFiles/mv_dao.dir/dao.cpp.o.d"
  "/root/repo/src/dao/federated.cpp" "src/dao/CMakeFiles/mv_dao.dir/federated.cpp.o" "gcc" "src/dao/CMakeFiles/mv_dao.dir/federated.cpp.o.d"
  "/root/repo/src/dao/member.cpp" "src/dao/CMakeFiles/mv_dao.dir/member.cpp.o" "gcc" "src/dao/CMakeFiles/mv_dao.dir/member.cpp.o.d"
  "/root/repo/src/dao/voting.cpp" "src/dao/CMakeFiles/mv_dao.dir/voting.cpp.o" "gcc" "src/dao/CMakeFiles/mv_dao.dir/voting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/mv_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mv_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
