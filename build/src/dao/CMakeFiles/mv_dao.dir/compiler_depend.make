# Empty compiler generated dependencies file for mv_dao.
# This may be replaced when dependencies are built.
