file(REMOVE_RECURSE
  "CMakeFiles/mv_dao.dir/contract.cpp.o"
  "CMakeFiles/mv_dao.dir/contract.cpp.o.d"
  "CMakeFiles/mv_dao.dir/dao.cpp.o"
  "CMakeFiles/mv_dao.dir/dao.cpp.o.d"
  "CMakeFiles/mv_dao.dir/federated.cpp.o"
  "CMakeFiles/mv_dao.dir/federated.cpp.o.d"
  "CMakeFiles/mv_dao.dir/member.cpp.o"
  "CMakeFiles/mv_dao.dir/member.cpp.o.d"
  "CMakeFiles/mv_dao.dir/voting.cpp.o"
  "CMakeFiles/mv_dao.dir/voting.cpp.o.d"
  "libmv_dao.a"
  "libmv_dao.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_dao.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
