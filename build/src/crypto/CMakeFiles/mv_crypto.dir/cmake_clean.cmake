file(REMOVE_RECURSE
  "CMakeFiles/mv_crypto.dir/merkle.cpp.o"
  "CMakeFiles/mv_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/mv_crypto.dir/schnorr.cpp.o"
  "CMakeFiles/mv_crypto.dir/schnorr.cpp.o.d"
  "CMakeFiles/mv_crypto.dir/sha256.cpp.o"
  "CMakeFiles/mv_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/mv_crypto.dir/wallet.cpp.o"
  "CMakeFiles/mv_crypto.dir/wallet.cpp.o.d"
  "libmv_crypto.a"
  "libmv_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
