file(REMOVE_RECURSE
  "libmv_crypto.a"
)
