# Empty compiler generated dependencies file for mv_crypto.
# This may be replaced when dependencies are built.
