file(REMOVE_RECURSE
  "CMakeFiles/mv_moderation.dir/classifier.cpp.o"
  "CMakeFiles/mv_moderation.dir/classifier.cpp.o.d"
  "CMakeFiles/mv_moderation.dir/community.cpp.o"
  "CMakeFiles/mv_moderation.dir/community.cpp.o.d"
  "CMakeFiles/mv_moderation.dir/engine.cpp.o"
  "CMakeFiles/mv_moderation.dir/engine.cpp.o.d"
  "libmv_moderation.a"
  "libmv_moderation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_moderation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
