file(REMOVE_RECURSE
  "libmv_moderation.a"
)
