
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/moderation/classifier.cpp" "src/moderation/CMakeFiles/mv_moderation.dir/classifier.cpp.o" "gcc" "src/moderation/CMakeFiles/mv_moderation.dir/classifier.cpp.o.d"
  "/root/repo/src/moderation/community.cpp" "src/moderation/CMakeFiles/mv_moderation.dir/community.cpp.o" "gcc" "src/moderation/CMakeFiles/mv_moderation.dir/community.cpp.o.d"
  "/root/repo/src/moderation/engine.cpp" "src/moderation/CMakeFiles/mv_moderation.dir/engine.cpp.o" "gcc" "src/moderation/CMakeFiles/mv_moderation.dir/engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
