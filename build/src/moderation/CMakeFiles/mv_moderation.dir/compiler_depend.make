# Empty compiler generated dependencies file for mv_moderation.
# This may be replaced when dependencies are built.
