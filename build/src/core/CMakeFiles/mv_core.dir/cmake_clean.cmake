file(REMOVE_RECURSE
  "CMakeFiles/mv_core.dir/ethics.cpp.o"
  "CMakeFiles/mv_core.dir/ethics.cpp.o.d"
  "CMakeFiles/mv_core.dir/metaverse.cpp.o"
  "CMakeFiles/mv_core.dir/metaverse.cpp.o.d"
  "CMakeFiles/mv_core.dir/portability.cpp.o"
  "CMakeFiles/mv_core.dir/portability.cpp.o.d"
  "libmv_core.a"
  "libmv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
