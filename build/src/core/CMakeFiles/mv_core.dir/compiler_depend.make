# Empty compiler generated dependencies file for mv_core.
# This may be replaced when dependencies are built.
