file(REMOVE_RECURSE
  "libmv_core.a"
)
