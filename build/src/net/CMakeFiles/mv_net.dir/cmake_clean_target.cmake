file(REMOVE_RECURSE
  "libmv_net.a"
)
