file(REMOVE_RECURSE
  "CMakeFiles/mv_net.dir/gossip.cpp.o"
  "CMakeFiles/mv_net.dir/gossip.cpp.o.d"
  "CMakeFiles/mv_net.dir/network.cpp.o"
  "CMakeFiles/mv_net.dir/network.cpp.o.d"
  "libmv_net.a"
  "libmv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
