# Empty dependencies file for mv_net.
# This may be replaced when dependencies are built.
