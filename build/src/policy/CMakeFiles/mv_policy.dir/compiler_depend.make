# Empty compiler generated dependencies file for mv_policy.
# This may be replaced when dependencies are built.
