file(REMOVE_RECURSE
  "CMakeFiles/mv_policy.dir/engine.cpp.o"
  "CMakeFiles/mv_policy.dir/engine.cpp.o.d"
  "CMakeFiles/mv_policy.dir/rules.cpp.o"
  "CMakeFiles/mv_policy.dir/rules.cpp.o.d"
  "libmv_policy.a"
  "libmv_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
