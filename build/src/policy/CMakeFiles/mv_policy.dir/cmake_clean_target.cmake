file(REMOVE_RECURSE
  "libmv_policy.a"
)
