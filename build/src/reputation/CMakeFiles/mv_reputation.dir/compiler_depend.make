# Empty compiler generated dependencies file for mv_reputation.
# This may be replaced when dependencies are built.
