file(REMOVE_RECURSE
  "CMakeFiles/mv_reputation.dir/attacks.cpp.o"
  "CMakeFiles/mv_reputation.dir/attacks.cpp.o.d"
  "CMakeFiles/mv_reputation.dir/reputation.cpp.o"
  "CMakeFiles/mv_reputation.dir/reputation.cpp.o.d"
  "libmv_reputation.a"
  "libmv_reputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_reputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
