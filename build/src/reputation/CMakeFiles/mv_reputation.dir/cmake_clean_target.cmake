file(REMOVE_RECURSE
  "libmv_reputation.a"
)
