file(REMOVE_RECURSE
  "libmv_ledger.a"
)
