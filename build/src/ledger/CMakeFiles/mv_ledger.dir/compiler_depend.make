# Empty compiler generated dependencies file for mv_ledger.
# This may be replaced when dependencies are built.
