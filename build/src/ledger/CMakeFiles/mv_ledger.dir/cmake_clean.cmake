file(REMOVE_RECURSE
  "CMakeFiles/mv_ledger.dir/audit.cpp.o"
  "CMakeFiles/mv_ledger.dir/audit.cpp.o.d"
  "CMakeFiles/mv_ledger.dir/block.cpp.o"
  "CMakeFiles/mv_ledger.dir/block.cpp.o.d"
  "CMakeFiles/mv_ledger.dir/chain.cpp.o"
  "CMakeFiles/mv_ledger.dir/chain.cpp.o.d"
  "CMakeFiles/mv_ledger.dir/consensus.cpp.o"
  "CMakeFiles/mv_ledger.dir/consensus.cpp.o.d"
  "CMakeFiles/mv_ledger.dir/mempool.cpp.o"
  "CMakeFiles/mv_ledger.dir/mempool.cpp.o.d"
  "CMakeFiles/mv_ledger.dir/state.cpp.o"
  "CMakeFiles/mv_ledger.dir/state.cpp.o.d"
  "CMakeFiles/mv_ledger.dir/transaction.cpp.o"
  "CMakeFiles/mv_ledger.dir/transaction.cpp.o.d"
  "libmv_ledger.a"
  "libmv_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
