file(REMOVE_RECURSE
  "CMakeFiles/mv_nft.dir/contract.cpp.o"
  "CMakeFiles/mv_nft.dir/contract.cpp.o.d"
  "CMakeFiles/mv_nft.dir/market.cpp.o"
  "CMakeFiles/mv_nft.dir/market.cpp.o.d"
  "libmv_nft.a"
  "libmv_nft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_nft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
