# Empty dependencies file for mv_nft.
# This may be replaced when dependencies are built.
