file(REMOVE_RECURSE
  "libmv_nft.a"
)
