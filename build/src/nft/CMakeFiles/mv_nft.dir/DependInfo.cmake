
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nft/contract.cpp" "src/nft/CMakeFiles/mv_nft.dir/contract.cpp.o" "gcc" "src/nft/CMakeFiles/mv_nft.dir/contract.cpp.o.d"
  "/root/repo/src/nft/market.cpp" "src/nft/CMakeFiles/mv_nft.dir/market.cpp.o" "gcc" "src/nft/CMakeFiles/mv_nft.dir/market.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/mv_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/reputation/CMakeFiles/mv_reputation.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mv_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
