file(REMOVE_RECURSE
  "CMakeFiles/mv_safety.dir/room.cpp.o"
  "CMakeFiles/mv_safety.dir/room.cpp.o.d"
  "libmv_safety.a"
  "libmv_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
