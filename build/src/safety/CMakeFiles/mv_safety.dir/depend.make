# Empty dependencies file for mv_safety.
# This may be replaced when dependencies are built.
