
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/safety/room.cpp" "src/safety/CMakeFiles/mv_safety.dir/room.cpp.o" "gcc" "src/safety/CMakeFiles/mv_safety.dir/room.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/mv_world.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
