file(REMOVE_RECURSE
  "libmv_safety.a"
)
