file(REMOVE_RECURSE
  "CMakeFiles/mv_common.dir/bytes.cpp.o"
  "CMakeFiles/mv_common.dir/bytes.cpp.o.d"
  "CMakeFiles/mv_common.dir/logging.cpp.o"
  "CMakeFiles/mv_common.dir/logging.cpp.o.d"
  "CMakeFiles/mv_common.dir/rng.cpp.o"
  "CMakeFiles/mv_common.dir/rng.cpp.o.d"
  "CMakeFiles/mv_common.dir/stats.cpp.o"
  "CMakeFiles/mv_common.dir/stats.cpp.o.d"
  "libmv_common.a"
  "libmv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
