file(REMOVE_RECURSE
  "libmv_common.a"
)
