file(REMOVE_RECURSE
  "libmv_twin.a"
)
