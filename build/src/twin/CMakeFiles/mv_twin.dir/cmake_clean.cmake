file(REMOVE_RECURSE
  "CMakeFiles/mv_twin.dir/twin.cpp.o"
  "CMakeFiles/mv_twin.dir/twin.cpp.o.d"
  "libmv_twin.a"
  "libmv_twin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_twin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
