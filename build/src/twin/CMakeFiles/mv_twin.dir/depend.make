# Empty dependencies file for mv_twin.
# This may be replaced when dependencies are built.
