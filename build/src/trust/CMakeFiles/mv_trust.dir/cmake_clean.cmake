file(REMOVE_RECURSE
  "CMakeFiles/mv_trust.dir/graph.cpp.o"
  "CMakeFiles/mv_trust.dir/graph.cpp.o.d"
  "CMakeFiles/mv_trust.dir/misinformation.cpp.o"
  "CMakeFiles/mv_trust.dir/misinformation.cpp.o.d"
  "libmv_trust.a"
  "libmv_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
