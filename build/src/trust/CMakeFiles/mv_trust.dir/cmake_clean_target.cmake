file(REMOVE_RECURSE
  "libmv_trust.a"
)
