# Empty dependencies file for mv_trust.
# This may be replaced when dependencies are built.
