
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privacy/inference.cpp" "src/privacy/CMakeFiles/mv_privacy.dir/inference.cpp.o" "gcc" "src/privacy/CMakeFiles/mv_privacy.dir/inference.cpp.o.d"
  "/root/repo/src/privacy/pets.cpp" "src/privacy/CMakeFiles/mv_privacy.dir/pets.cpp.o" "gcc" "src/privacy/CMakeFiles/mv_privacy.dir/pets.cpp.o.d"
  "/root/repo/src/privacy/pipeline.cpp" "src/privacy/CMakeFiles/mv_privacy.dir/pipeline.cpp.o" "gcc" "src/privacy/CMakeFiles/mv_privacy.dir/pipeline.cpp.o.d"
  "/root/repo/src/privacy/sensors.cpp" "src/privacy/CMakeFiles/mv_privacy.dir/sensors.cpp.o" "gcc" "src/privacy/CMakeFiles/mv_privacy.dir/sensors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
