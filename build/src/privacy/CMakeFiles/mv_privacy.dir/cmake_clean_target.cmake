file(REMOVE_RECURSE
  "libmv_privacy.a"
)
