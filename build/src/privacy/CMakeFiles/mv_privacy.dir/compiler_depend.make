# Empty compiler generated dependencies file for mv_privacy.
# This may be replaced when dependencies are built.
