file(REMOVE_RECURSE
  "CMakeFiles/mv_privacy.dir/inference.cpp.o"
  "CMakeFiles/mv_privacy.dir/inference.cpp.o.d"
  "CMakeFiles/mv_privacy.dir/pets.cpp.o"
  "CMakeFiles/mv_privacy.dir/pets.cpp.o.d"
  "CMakeFiles/mv_privacy.dir/pipeline.cpp.o"
  "CMakeFiles/mv_privacy.dir/pipeline.cpp.o.d"
  "CMakeFiles/mv_privacy.dir/sensors.cpp.o"
  "CMakeFiles/mv_privacy.dir/sensors.cpp.o.d"
  "libmv_privacy.a"
  "libmv_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
