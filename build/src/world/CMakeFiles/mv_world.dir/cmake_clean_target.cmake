file(REMOVE_RECURSE
  "libmv_world.a"
)
