
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/world/crowd.cpp" "src/world/CMakeFiles/mv_world.dir/crowd.cpp.o" "gcc" "src/world/CMakeFiles/mv_world.dir/crowd.cpp.o.d"
  "/root/repo/src/world/equality.cpp" "src/world/CMakeFiles/mv_world.dir/equality.cpp.o" "gcc" "src/world/CMakeFiles/mv_world.dir/equality.cpp.o.d"
  "/root/repo/src/world/linkage.cpp" "src/world/CMakeFiles/mv_world.dir/linkage.cpp.o" "gcc" "src/world/CMakeFiles/mv_world.dir/linkage.cpp.o.d"
  "/root/repo/src/world/world.cpp" "src/world/CMakeFiles/mv_world.dir/world.cpp.o" "gcc" "src/world/CMakeFiles/mv_world.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
