# Empty compiler generated dependencies file for mv_world.
# This may be replaced when dependencies are built.
