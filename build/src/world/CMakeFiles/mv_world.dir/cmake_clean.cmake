file(REMOVE_RECURSE
  "CMakeFiles/mv_world.dir/crowd.cpp.o"
  "CMakeFiles/mv_world.dir/crowd.cpp.o.d"
  "CMakeFiles/mv_world.dir/equality.cpp.o"
  "CMakeFiles/mv_world.dir/equality.cpp.o.d"
  "CMakeFiles/mv_world.dir/linkage.cpp.o"
  "CMakeFiles/mv_world.dir/linkage.cpp.o.d"
  "CMakeFiles/mv_world.dir/world.cpp.o"
  "CMakeFiles/mv_world.dir/world.cpp.o.d"
  "libmv_world.a"
  "libmv_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
