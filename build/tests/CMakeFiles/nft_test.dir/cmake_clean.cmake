file(REMOVE_RECURSE
  "CMakeFiles/nft_test.dir/nft_test.cpp.o"
  "CMakeFiles/nft_test.dir/nft_test.cpp.o.d"
  "nft_test"
  "nft_test.pdb"
  "nft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
