# Empty compiler generated dependencies file for nft_test.
# This may be replaced when dependencies are built.
