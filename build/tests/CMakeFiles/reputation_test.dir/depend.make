# Empty dependencies file for reputation_test.
# This may be replaced when dependencies are built.
