file(REMOVE_RECURSE
  "CMakeFiles/dao_test.dir/dao_test.cpp.o"
  "CMakeFiles/dao_test.dir/dao_test.cpp.o.d"
  "dao_test"
  "dao_test.pdb"
  "dao_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dao_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
