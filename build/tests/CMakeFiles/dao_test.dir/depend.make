# Empty dependencies file for dao_test.
# This may be replaced when dependencies are built.
