# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/ledger_test[1]_include.cmake")
include("/root/repo/build/tests/dao_test[1]_include.cmake")
include("/root/repo/build/tests/reputation_test[1]_include.cmake")
include("/root/repo/build/tests/nft_test[1]_include.cmake")
include("/root/repo/build/tests/privacy_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/world_test[1]_include.cmake")
include("/root/repo/build/tests/safety_test[1]_include.cmake")
include("/root/repo/build/tests/moderation_test[1]_include.cmake")
include("/root/repo/build/tests/trust_test[1]_include.cmake")
include("/root/repo/build/tests/twin_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
