add_test([=[Scenario.AFullDayInTheMetaverse]=]  /root/repo/build/tests/scenario_test [==[--gtest_filter=Scenario.AFullDayInTheMetaverse]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Scenario.AFullDayInTheMetaverse]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  scenario_test_TESTS Scenario.AFullDayInTheMetaverse)
