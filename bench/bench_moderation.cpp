// E3 — moderation staffing vs community growth (§III intro).
//
// "Online communities present several challenges when these grow in size and
// moderators... cannot keep up with the demand." Report arrivals scale with
// community size; the human pool stays fixed. Measured per mode: backlog at
// the end of the horizon, p50/p95 resolution latency, accuracy.
// Paper shape: human-only backlog diverges with N; AI-assisted, community
// juries (capacity ∝ N), and the hybrid keep latency bounded.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "moderation/engine.h"

namespace {

using namespace mv;
using namespace mv::moderation;

constexpr std::size_t kTicks = 2000;
constexpr double kReportsPerMemberPerTick = 0.0005;

struct Row {
  std::size_t backlog = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double accuracy = 0.0;
};

Row run(StaffingMode mode, std::size_t community, std::uint64_t seed) {
  EngineConfig config;
  config.mode = mode;
  config.human_moderators = 8;
  config.human_throughput = 0.05;  // 0.4 reports/tick fixed capacity
  config.community_size = community;
  ModerationEngine engine(config, Rng(seed));
  Rng rng(seed + 1);
  std::uint64_t id = 0;
  double budget = 0.0;
  for (std::size_t t = 0; t < kTicks; ++t) {
    budget += kReportsPerMemberPerTick * static_cast<double>(community);
    while (budget >= 1.0) {
      budget -= 1.0;
      Report r;
      r.id = ReportId(id++);
      r.reporter = AccountId(1);
      r.offender = AccountId(2);
      r.filed_at = static_cast<Tick>(t);
      r.is_violation = rng.chance(0.8);
      engine.submit(std::move(r));
    }
    engine.step(static_cast<Tick>(t));
  }
  Row row;
  row.backlog = engine.backlog();
  row.p50 = engine.metrics().latency.percentile(50);
  row.p95 = engine.metrics().latency.percentile(95);
  row.accuracy = engine.metrics().accuracy();
  return row;
}

void print_table() {
  std::printf("=== E3: moderation backlog vs community size ===\n");
  std::printf("%zu ticks, arrivals = %.4f/member/tick, 8 human moderators fixed\n\n",
              kTicks, kReportsPerMemberPerTick);
  std::printf("%-18s %10s %10s %10s %10s %10s\n", "mode", "members", "backlog",
              "p50 lat", "p95 lat", "accuracy");
  for (const auto mode :
       {StaffingMode::kHumanOnly, StaffingMode::kAiAssisted,
        StaffingMode::kCommunityJury, StaffingMode::kHybrid}) {
    for (const std::size_t n : {500u, 2000u, 10000u}) {
      const Row row = run(mode, n, 99);
      std::printf("%-18s %10zu %10zu %10.0f %10.0f %10.3f\n", to_string(mode),
                  n, row.backlog, row.p50, row.p95, row.accuracy);
    }
  }
  std::printf("\nshape: human-only backlog diverges once arrivals exceed the\n"
              "fixed 0.4/tick capacity; AI-assisted and jury modes scale.\n\n");
}

void BM_ClassifierClassify(benchmark::State& state) {
  AiClassifier clf;
  Rng rng(1);
  Report r;
  r.is_violation = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.classify(r, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClassifierClassify);

void BM_EngineTickUnderLoad(benchmark::State& state) {
  EngineConfig config;
  config.mode = StaffingMode::kAiAssisted;
  ModerationEngine engine(config, Rng(2));
  Rng rng(3);
  std::uint64_t id = 0;
  Tick now = 0;
  for (auto _ : state) {
    for (int i = 0; i < 10; ++i) {
      Report r;
      r.id = ReportId(id++);
      r.filed_at = now;
      r.is_violation = rng.chance(0.8);
      engine.submit(std::move(r));
    }
    engine.step(now++);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10);
}
BENCHMARK(BM_EngineTickUnderLoad);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
