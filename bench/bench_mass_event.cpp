// E15 — mass-event feasibility: interest management vs broadcast
// (§IV-B "Accessibility").
//
// "The metaverse can enable many social events that are not possible
// physically — for example, concerts with millions of people worldwide."
// The enabling mechanism is interest management: with naive broadcast every
// client's bandwidth grows with attendance (N-1 streams); with an AOI grid
// and a render cap, per-client load is bounded by local density regardless
// of total attendance. That bound is what makes the million-user concert an
// engineering possibility rather than a marketing line.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "net/network.h"
#include "world/crowd.h"

namespace {

using namespace mv;
using namespace mv::world;

void print_table() {
  std::printf("=== E15: mass-event dissemination — broadcast vs interest grid ===\n");
  CrowdConfig base;
  std::printf("AOI radius %.0f m, render cap %zu, arena scaled to keep density\n"
              "constant (1 avatar / 8 m^2), 50 ticks\n\n",
              base.aoi_radius, base.render_cap);
  std::printf("%10s %-18s %22s %20s %12s\n", "attendees", "mode",
              "updates/client/tick", "pairs examined", "capped");
  for (const std::size_t n : {1000u, 5000u, 20000u, 100000u}) {
    for (const auto mode :
         {DisseminationMode::kNaiveBroadcast, DisseminationMode::kInterestGrid}) {
      CrowdConfig config = base;
      config.mode = mode;
      // Constant density: arena area = 8 m^2 per avatar.
      const double side = std::sqrt(8.0 * static_cast<double>(n));
      config.arena_width = side;
      config.arena_height = side;
      CrowdSim sim(n, config, Rng(2025));
      sim.run(50);
      std::printf("%10zu %-18s %22.1f %20llu %12llu\n", n, to_string(mode),
                  sim.metrics().updates_per_client_tick(n),
                  static_cast<unsigned long long>(sim.metrics().pairs_examined),
                  static_cast<unsigned long long>(sim.metrics().capped_clients));
    }
  }
  std::printf("\nshape: naive per-client load grows as N-1 (100k attendees =\n"
              "100k streams per headset — impossible); the interest grid holds\n"
              "it at the local-density bound (~40) at every scale.\n\n");
}

void BM_CrowdStepGrid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  CrowdConfig config;
  const double side = std::sqrt(8.0 * static_cast<double>(n));
  config.arena_width = side;
  config.arena_height = side;
  CrowdSim sim(n, config, Rng(1));
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_CrowdStepGrid)->Arg(1000)->Arg(10000)->Arg(100000);

// Announcement fan-out on the simulated network: one 1 KiB payload broadcast
// to N nodes and delivered. Recipients share a single payload buffer, so the
// cost is queue churn, not N-1 kilobyte copies.
void BM_NetworkBroadcast1KiB(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  SimClock clock;
  net::Network network(clock, Rng(7),
                       net::LinkParams{.base_latency = 1.0, .jitter = 0.0, .drop_rate = 0.0});
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < n; ++i) {
    network.add_node([&delivered](const net::Message&) { ++delivered; });
  }
  const Bytes payload(1024, 0xAB);
  for (auto _ : state) {
    network.broadcast(NodeId(0), "announce", payload);
    network.run_until_idle();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n - 1));
}
BENCHMARK(BM_NetworkBroadcast1KiB)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
