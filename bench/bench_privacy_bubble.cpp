// E9 — privacy bubbles vs harassment (§II-B, §III-A).
//
// "Developers configure a privacy-bubble mode where users can set their
// private space (bubble) and restrict access (e.g., interactions such as
// chat)." A plaza where harassers approach chosen victims directly and
// ordinary users chat (mostly with friends, who are allow-listed inside the
// bubble). Bubble adoption is swept 0..100%. Paper shape: harassment received
// per avatar falls ~linearly with adoption (bubbles protect their adopters);
// friend chat survives because of allow-lists, stranger chat pays the cost.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "world/world.h"

namespace {

using namespace mv;
using namespace mv::world;

constexpr std::size_t kAvatars = 600;
constexpr double kHarasserFraction = 0.05;
constexpr std::size_t kRounds = 40;
constexpr std::size_t kFriends = 5;

struct Row {
  double harass_per_avatar = 0.0;      ///< deliveries per avatar over the run
  double harass_on_adopters = 0.0;     ///< deliveries per bubbled avatar
  double friend_chat_rate = 0.0;       ///< delivered / attempted
  double stranger_chat_rate = 0.0;
};

Row run(double adoption, std::uint64_t seed) {
  World world{Rng(seed)};
  Rng rng(seed + 1);
  const SpaceId plaza = world.create_space(60, 60);
  std::vector<AvatarId> avatars;
  std::vector<bool> harasser, bubbled;
  for (std::size_t i = 0; i < kAvatars; ++i) {
    const AvatarId id = world.spawn_primary(i, plaza, {0, 0});
    world.wander(id);
    avatars.push_back(id);
    harasser.push_back(rng.chance(kHarasserFraction));
    bubbled.push_back(rng.chance(adoption));
    if (bubbled.back()) world.set_bubble(id, true, 2.5);
  }
  // Friends: a ring neighbourhood, allow-listed inside the bubble (§II-B).
  for (std::size_t i = 0; i < kAvatars; ++i) {
    for (std::size_t f = 1; f <= kFriends; ++f) {
      world.allow_in_bubble(avatars[i], avatars[(i + f) % kAvatars]);
    }
  }

  std::uint64_t harass_ok = 0, harass_on_bubbled = 0;
  std::uint64_t friend_attempts = 0, friend_ok = 0;
  std::uint64_t stranger_attempts = 0, stranger_ok = 0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::size_t i = 0; i < kAvatars; ++i) world.wander(avatars[i]);
    for (std::size_t i = 0; i < kAvatars; ++i) {
      if (harasser[i]) {
        // Harassers hunt: pick a victim and move right next to them.
        const std::size_t victim = rng.next_below(kAvatars);
        if (victim == i) continue;
        world.move(avatars[i],
                   world.avatar(avatars[victim])->pos + Vec2{0.4, 0.0});
        const bool ok = world
                            .interact(avatars[i], avatars[victim],
                                      InteractionKind::kHarass,
                                      static_cast<Tick>(round))
                            .ok();
        harass_ok += ok;
        harass_on_bubbled += ok && bubbled[victim];
      } else {
        // Ordinary users chat: 80% with a friend, 20% with a stranger.
        const bool with_friend = rng.chance(0.8);
        // Avatar j allow-lists j+1..j+kFriends, so i's "friends who let i
        // in" are i-kFriends..i-1.
        const std::size_t target =
            with_friend
                ? (i + kAvatars - 1 - rng.next_below(kFriends)) % kAvatars
                : rng.next_below(kAvatars);
        if (target == i) continue;
        world.move(avatars[i],
                   world.avatar(avatars[target])->pos + Vec2{0.4, 0.0});
        const bool ok = world
                            .interact(avatars[i], avatars[target],
                                      InteractionKind::kChat,
                                      static_cast<Tick>(round))
                            .ok();
        if (with_friend) {
          ++friend_attempts;
          friend_ok += ok;
        } else {
          ++stranger_attempts;
          stranger_ok += ok;
        }
      }
    }
  }

  const auto bubbled_count = static_cast<double>(
      std::count(bubbled.begin(), bubbled.end(), true));
  Row row;
  row.harass_per_avatar = static_cast<double>(harass_ok) / kAvatars;
  row.harass_on_adopters =
      bubbled_count > 0 ? static_cast<double>(harass_on_bubbled) / bubbled_count : 0.0;
  row.friend_chat_rate =
      friend_attempts ? static_cast<double>(friend_ok) / static_cast<double>(friend_attempts) : 0.0;
  row.stranger_chat_rate =
      stranger_attempts ? static_cast<double>(stranger_ok) / static_cast<double>(stranger_attempts) : 0.0;
  return row;
}

void print_table() {
  std::printf("=== E9: privacy-bubble adoption vs harassment ===\n");
  std::printf("%zu avatars (%.0f%% harassers), %zu rounds, %zu allow-listed friends\n\n",
              kAvatars, 100 * kHarasserFraction, kRounds, kFriends);
  std::printf("%10s %18s %20s %14s %16s\n", "adoption", "harass/avatar",
              "harass/adopter", "friend chat", "stranger chat");
  for (const double adoption : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const Row row = run(adoption, 777);
    std::printf("%9.0f%% %18.3f %20.3f %14.3f %16.3f\n", adoption * 100,
                row.harass_per_avatar, row.harass_on_adopters,
                row.friend_chat_rate, row.stranger_chat_rate);
  }
  std::printf("\nshape: harassment received falls ~linearly with adoption and is\n"
              "~0 for adopters; friend chat survives via allow-lists; stranger\n"
              "chat pays the openness cost — the §II-B trade-off, quantified.\n\n");
}

void BM_VisibilityQuery(benchmark::State& state) {
  World world{Rng(1)};
  const SpaceId plaza = world.create_space(60, 60);
  std::vector<AvatarId> avatars;
  for (int i = 0; i < state.range(0); ++i) {
    const AvatarId id = world.spawn_primary(static_cast<std::uint64_t>(i), plaza, {0, 0});
    world.wander(id);
    avatars.push_back(id);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.visible_to(avatars[i++ % avatars.size()], 3.0));
  }
}
BENCHMARK(BM_VisibilityQuery)->Arg(500)->Arg(5000);

void BM_Interact(benchmark::State& state) {
  World world{Rng(2)};
  const SpaceId plaza = world.create_space(10, 10);
  const AvatarId a = world.spawn_primary(1, plaza, {1, 1});
  const AvatarId b = world.spawn_primary(2, plaza, {1.5, 1});
  world.set_bubble(b, true, 2.0);
  Tick now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.interact(a, b, InteractionKind::kChat, now++));
  }
}
BENCHMARK(BM_Interact);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
