// E4 — NFT admission policies: scam rate vs creator inclusion (§IV-A).
//
// "Several trading platforms of NFT are using 'invite-only' policies...
// This kind of policy diminishes the advantages of NFTs as an open-access
// content creation tool. A possible solution can be seen in using DAOs and
// users of the platform to implement a reputation-based system."
// Paper shape: open = high inclusion + high scam rate; invite-only = low
// scam + low inclusion; reputation-gated = open's inclusion with a scam rate
// at or below invite-only's.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ledger/state.h"
#include "nft/contract.h"
#include "nft/market.h"

namespace {

using namespace mv;
using namespace mv::nft;

void print_table() {
  std::printf("=== E4: NFT market admission policies ===\n");
  MarketConfig config;
  config.creators = 5000;
  config.buyers = 8000;
  config.rounds = 20;
  std::printf("%zu creators (%.0f%% scammers), %zu buyers, %zu rounds, 5 seeds\n\n",
              config.creators, 100 * config.scammer_fraction, config.buyers,
              config.rounds);
  std::printf("%-20s %12s %12s %14s %12s\n", "policy", "scam rate",
              "inclusion", "earning rate", "delisted");
  for (const auto policy :
       {AdmissionPolicy::kOpen, AdmissionPolicy::kInviteOnly,
        AdmissionPolicy::kReputationGated}) {
    double scam = 0, inclusion = 0, earning = 0, delisted = 0;
    const int seeds = 5;
    for (int s = 0; s < seeds; ++s) {
      MarketSim sim(config, policy, Rng(static_cast<std::uint64_t>(100 + s)));
      const auto m = sim.run();
      scam += m.scam_sale_rate();
      inclusion += m.honest_inclusion();
      earning += m.honest_earning_rate();
      delisted += static_cast<double>(m.scammers_delisted);
    }
    std::printf("%-20s %12.3f %12.3f %14.3f %12.0f\n", to_string(policy),
                scam / seeds, inclusion / seeds, earning / seeds,
                delisted / seeds);
  }
  std::printf("\nshape: reputation gating keeps open-level inclusion while\n"
              "pushing the scam rate below invite-only's.\n\n");
}

void BM_ContractMint(benchmark::State& state) {
  Rng rng(1);
  auto contracts = std::make_shared<ledger::ContractRegistry>();
  contracts->install(std::make_shared<NftContract>());
  crypto::Wallet wallet(rng);
  ledger::LedgerState ledger_state;
  ledger_state.credit(wallet.address(), 1'000'000'000);
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    const auto tx = ledger::make_contract_call(
        wallet, nonce++, "nft", "mint", NftContract::encode_mint("uri", 100), 0,
        rng);
    benchmark::DoNotOptimize(ledger_state.apply(tx, *contracts, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ContractMint);

void BM_MarketRound(benchmark::State& state) {
  MarketConfig config;
  config.creators = 1000;
  config.buyers = 1000;
  config.rounds = 1;
  for (auto _ : state) {
    MarketSim sim(config, AdmissionPolicy::kReputationGated, Rng(7));
    benchmark::DoNotOptimize(sim.run());
  }
}
BENCHMARK(BM_MarketRound);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
