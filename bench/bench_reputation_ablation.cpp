// A1 (ablation) — which credibility factor blunts which attack? (§IV-C)
//
// DESIGN.md calls the credibility product (score x age x stake) a design
// choice; this ablation removes one factor at a time and measures the two
// canonical attacks from reputation/attacks.h. Expected: the age factor is
// what kills fresh-Sybil floods; the stake factor is what keeps *aged* Sybil
// farms cheap to discount; the score factor mainly bounds bootstrap speed.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "reputation/attacks.h"

namespace {

using namespace mv;
using namespace mv::reputation;

ReputationConfig base_config() {
  ReputationConfig c;
  c.age_ramp = 500;
  c.pair_cooldown = 10;
  return c;
}

struct Row {
  double fresh_sybil = 0.0;  ///< inflation from 200 just-created sybils
  double aged_sybil = 0.0;   ///< inflation from 200 old, stakeless sybils
  double collusion = 0.0;    ///< mean inflation of a staked 5-ring, 20 rounds
};

Row run(ReputationConfig config, std::uint64_t seed) {
  Row row;
  {
    ReputationSystem sys(config);
    (void)sys.register_account(AccountId(1), 0, 100.0);
    row.fresh_sybil = run_sybil_inflation(sys, AccountId(1), 200, 1000, 600).inflation();
  }
  {
    ReputationSystem sys(config);
    (void)sys.register_account(AccountId(1), 0, 100.0);
    for (std::uint64_t i = 1000; i < 1200; ++i) {
      (void)sys.register_account(AccountId(i), 0, 0.0);  // aged, no stake
    }
    const double before = sys.score(AccountId(1));
    for (std::uint64_t i = 1000; i < 1200; ++i) {
      (void)sys.endorse(AccountId(i), AccountId(1), 600);
    }
    row.aged_sybil = sys.score(AccountId(1)) - before;
  }
  {
    ReputationSystem sys(config);
    std::vector<AccountId> ring;
    for (std::uint64_t i = 1; i <= 5; ++i) {
      (void)sys.register_account(AccountId(i), 0, 10.0);
      ring.push_back(AccountId(i));
    }
    row.collusion =
        run_collusion_ring(sys, ring, 20, 600, config.pair_cooldown).inflation();
  }
  (void)seed;
  return row;
}

void print_table() {
  std::printf("=== A1 (ablation): credibility factors vs reputation attacks ===\n");
  std::printf("inflation of the target's score (capped at 100); lower = more robust\n\n");
  std::printf("%-26s %14s %14s %12s\n", "credibility factors",
              "fresh sybils", "aged sybils", "collusion");
  struct Case {
    const char* name;
    bool score, age, stake;
  };
  for (const Case c : {Case{"score x age x stake", true, true, true},
                       Case{"no score factor", false, true, true},
                       Case{"no age factor", true, false, true},
                       Case{"no stake factor", true, true, false},
                       Case{"none (flat weight 1)", false, false, false}}) {
    ReputationConfig config = base_config();
    config.use_score_factor = c.score;
    config.use_age_factor = c.age;
    config.use_stake_factor = c.stake;
    const Row row = run(config, 1);
    std::printf("%-26s %14.2f %14.2f %12.2f\n", c.name, row.fresh_sybil,
                row.aged_sybil, row.collusion);
  }
  std::printf("\nshape: dropping the age factor lets fresh Sybils inflate freely;\n"
              "dropping the stake factor lets aged Sybil farms through; with no\n"
              "factors a 200-Sybil flood pins the target at the score cap.\n\n");
}

void BM_Credibility(benchmark::State& state) {
  ReputationSystem sys(base_config());
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    (void)sys.register_account(AccountId(i), 0, static_cast<double>(i % 50));
  }
  std::uint64_t i = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.credibility(AccountId(1 + i++ % 1000), 600));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Credibility);

void BM_Endorse(benchmark::State& state) {
  ReputationConfig config = base_config();
  config.pair_cooldown = 0;
  ReputationSystem sys(config);
  (void)sys.register_account(AccountId(1), 0, 100.0);
  (void)sys.register_account(AccountId(2), 0, 100.0);
  Tick now = 600;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.endorse(AccountId(1), AccountId(2), now++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Endorse);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
