// E12 — punitive vs preventive community governance (§III-D).
//
// Reproduces the actionable finding of the youth-Minecraft study [20]:
// "online platforms should consider tools to deal with players' misbehaviour
// (i.e., punitive approaches) and tools for encouraging positive behaviours
// (i.e., preventive approaches)". Agent-based community, 60 rounds. Paper
// shape: punitive-only suppresses negativity but barely raises positivity;
// preventive-only shifts behaviour up over time; the mix dominates.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/stats.h"
#include "moderation/community.h"

namespace {

using namespace mv;
using namespace mv::moderation;

CommunityConfig config_for(PolicyMix mix) {
  CommunityConfig c;
  c.agents = 5000;
  c.rounds = 60;
  c.mix = mix;
  return c;
}

void print_table() {
  std::printf("=== E12: punitive vs preventive community tools ===\n");
  std::printf("5000 agents (8%% toxic, 25%% prosocial), 60 rounds, 3 seeds\n\n");
  std::printf("%-22s %12s %12s %10s %10s %10s   %s\n", "policy mix",
              "final pos%%", "neg actions", "sanctions", "mutes", "rewards",
              "pos-share trend");
  for (const auto mix :
       {PolicyMix::kNone, PolicyMix::kPunitiveOnly, PolicyMix::kPreventiveOnly,
        PolicyMix::kMixed}) {
    double final_pos = 0;
    double negatives = 0, sanctions = 0, mutes = 0, rewards = 0;
    Histogram trend(0, 60, 30);
    std::vector<double> series;
    for (std::uint64_t s = 0; s < 3; ++s) {
      CommunitySim sim(config_for(mix), Rng(500 + s));
      const auto m = sim.run();
      final_pos += m.final_positive_share / 3;
      negatives += static_cast<double>(m.negative_actions) / 3;
      sanctions += static_cast<double>(m.sanctions) / 3;
      mutes += static_cast<double>(m.mutes) / 3;
      rewards += static_cast<double>(m.rewards) / 3;
      if (s == 0) series = sim.positive_share_series();
    }
    // Sparkline of the positive-share time series (first seed).
    Histogram spark(0.0, 1.0, 1);
    (void)spark;
    std::string line;
    for (std::size_t i = 0; i < series.size(); i += 2) {
      static const char* kLevels[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
      const auto level = static_cast<std::size_t>(series[i] * 7.999);
      line += kLevels[std::min<std::size_t>(level, 7)];
    }
    std::printf("%-22s %11.1f%% %12.0f %10.0f %10.0f %10.0f   %s\n",
                to_string(mix), 100 * final_pos, negatives, sanctions, mutes,
                rewards, line.c_str());
  }
  std::printf("\nshape: punitive-only cuts negative actions (mutes) without\n"
              "raising positivity much; preventive-only climbs over time; the\n"
              "mix ends highest — the study's 'both tools' recommendation.\n\n");
}

void BM_CommunityRound(benchmark::State& state) {
  auto config = config_for(PolicyMix::kMixed);
  config.agents = static_cast<std::size_t>(state.range(0));
  config.rounds = 1;
  for (auto _ : state) {
    CommunitySim sim(config, Rng(7));
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_CommunityRound)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
