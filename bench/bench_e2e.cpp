// E16 — city-at-scale macro workloads through the whole stack (DESIGN.md §12).
//
// Each named mix drives the scenario generator's avatars — NFT churn with
// scam-pattern injection, DAO proposal/ballot waves, moderation report
// storms, reputation updates, privacy-audit records — through real Mempool
// admission, Blockchain assembly/append (parallel validation), JobQueue
// lanes, and subscription fan-out. The table records end-to-end throughput
// plus the queue/fan-out observability the paper's governance story depends
// on; every recording is then replayed serial+inline and must reproduce the
// per-block commitment roots bit for bit (the §12 determinism contract).
//
// The timed benchmarks re-run the same mixes at a reduced round count and
// export throughput, per-class queue p50/p99 waits, shed rates, and fan-out
// latency as counters into BENCH_e2e.json (scripts/check.sh).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "scenario/harness.h"
#include "scenario/shard_harness.h"

namespace {

using namespace mv;
using namespace mv::scenario;

constexpr const char* kMixes[] = {"market_rush", "governance_wave",
                                  "report_storm", "mixed_city"};

ScenarioConfig city_config(const std::string& mix, std::uint64_t avatars,
                           std::uint32_t rounds, std::uint32_t txs_per_round) {
  ScenarioConfig config;
  config.mix = mix;
  config.seed = 2022;
  config.avatars = avatars;
  config.rounds = rounds;
  config.txs_per_round = txs_per_round;
  config.max_txs_per_block = txs_per_round;
  return config;
}

/// The full stack: parallel validation, threaded queue lanes, push-fed
/// subscribers, and per-round proof queries. The O(n) full-rehash
/// cross-check is a test-only safety net, off here so the numbers measure
/// the pipeline, not the auditor.
ReplayOptions city_stack() {
  ReplayOptions opts;
  opts.validation_threads = 4;
  opts.schedule_seed = 0x653136;  // "e16"
  opts.use_job_queue = true;
  opts.queue_workers = 4;
  opts.subscribers = 64;
  opts.client_queries_per_round = 64;
  opts.check_full_rehash = false;
  return opts;
}

void print_row(const char* label, const RecordResult& rec, bool replay_ok) {
  const ReplayResult& run = rec.run;
  const auto& client = run.queue.of(JobClass::kClientQuery);
  const double txs_per_sec =
      run.wall_seconds > 0.0
          ? static_cast<double>(run.committed_txs) / run.wall_seconds
          : 0.0;
  const std::uint64_t query_attempts = run.queries_served + run.queries_shed;
  const double shed_rate =
      query_attempts > 0
          ? static_cast<double>(run.queries_shed) /
                static_cast<double>(query_attempts)
          : 0.0;
  std::printf("%-16s %8zu %10.0f %9.1f %9.1f %9.3f %9.1f %9.1f %7zu %s\n",
              label, run.committed_txs, txs_per_sec, client.wait_p50_us,
              client.wait_p99_us, shed_rate, run.subscriptions.fanout_p50_us,
              run.subscriptions.fanout_p99_us, rec.generated.scam_txs,
              replay_ok ? "ok" : "DIVERGED");
}

void print_table() {
  std::printf("=== E16: city-at-scale macro workloads (src/scenario/) ===\n");
  std::printf(
      "full stack: 4 validation threads, 4 queue workers, 64 subscribers,\n"
      "64 proof queries/round; every trace replayed serial+inline and\n"
      "compared block-by-block against the recording.\n\n");
  std::printf("%-16s %8s %10s %9s %9s %9s %9s %9s %7s %s\n", "mix", "txs",
              "txs/sec", "q_p50us", "q_p99us", "shed", "fan_p50", "fan_p99",
              "scams", "replay");

  auto run_mix = [&](const char* label, const ScenarioConfig& config) {
    auto rec = record(config, city_stack());
    if (!rec.ok()) {
      std::printf("%-16s FAILED: %s\n", label, rec.error().to_string().c_str());
      return;
    }
    // The §12 contract: a serial, inline, subscriber-free replay of the same
    // trace must land on the identical per-block commitment roots.
    auto check = replay(rec.value().trace, ReplayOptions{});
    const bool ok = check.ok() && check.value().mismatched_blocks == 0 &&
                    check.value().violations.empty();
    print_row(label, rec.value(), ok);
  };

  for (const char* mix : kMixes) {
    run_mix(mix, city_config(mix, 10'000, 50, 512));
  }
  run_mix("mixed_city@1e5", city_config("mixed_city", 100'000, 20, 512));
  std::printf(
      "\nshape: tens of thousands of avatars clear the pipeline at\n"
      "ledger speed; queue waits stay bounded, fan-out tracks commits,\n"
      "and every mix replays byte-identically.\n\n");
}

// ------------------------------------------------------------- timed runs

/// One full record() per iteration at reduced depth; counters export the
/// queue/fan-out observability into BENCH_e2e.json.
void BM_E2ERecord(benchmark::State& state, const char* mix) {
  const ScenarioConfig config = city_config(mix, 10'000, 10, 256);
  const ReplayOptions opts = city_stack();
  std::size_t committed = 0;
  RecordResult last;
  for (auto _ : state) {
    auto rec = record(config, opts);
    if (!rec.ok()) {
      state.SkipWithError(rec.error().to_string().c_str());
      return;
    }
    committed += rec.value().run.committed_txs;
    last = std::move(rec).value();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(committed));
  const ReplayResult& run = last.run;
  for (const auto cls : {JobClass::kConsensus, JobClass::kValidation,
                         JobClass::kClientQuery}) {
    const auto& cs = run.queue.of(cls);
    if (cs.submitted == 0 && cs.shed() == 0) continue;
    const std::string name = cs.name;
    state.counters[name + "_wait_p50_us"] = cs.wait_p50_us;
    state.counters[name + "_wait_p99_us"] = cs.wait_p99_us;
    const double attempts = static_cast<double>(cs.submitted + cs.shed());
    state.counters[name + "_shed_rate"] =
        attempts > 0 ? static_cast<double>(cs.shed()) / attempts : 0.0;
  }
  state.counters["fanout_p50_us"] = run.subscriptions.fanout_p50_us;
  state.counters["fanout_p99_us"] = run.subscriptions.fanout_p99_us;
  state.counters["queries_shed"] =
      static_cast<double>(run.queries_shed);
}
BENCHMARK_CAPTURE(BM_E2ERecord, market_rush, "market_rush")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_E2ERecord, governance_wave, "governance_wave")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_E2ERecord, report_storm, "report_storm")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_E2ERecord, mixed_city, "mixed_city")
    ->Unit(benchmark::kMillisecond);

/// Replay cost of a pre-recorded trace across stack configurations — the
/// regression oracle's own overhead. Arg 0: serial+inline; 1: 4-thread
/// validation; 2: 4-thread validation + 4 queue workers + subscribers.
void BM_E2EReplay(benchmark::State& state) {
  auto rec = record(city_config("mixed_city", 10'000, 10, 256));
  if (!rec.ok()) {
    state.SkipWithError(rec.error().to_string().c_str());
    return;
  }
  const Trace trace = std::move(rec).value().trace;
  ReplayOptions opts;
  opts.check_full_rehash = false;
  if (state.range(0) >= 1) {
    opts.validation_threads = 4;
    opts.schedule_seed = 0x653136;
  }
  if (state.range(0) >= 2) {
    opts.use_job_queue = true;
    opts.queue_workers = 4;
    opts.subscribers = 64;
    opts.client_queries_per_round = 64;
  }
  std::size_t committed = 0;
  for (auto _ : state) {
    auto run = replay(trace, opts);
    if (!run.ok()) {
      state.SkipWithError(run.error().to_string().c_str());
      return;
    }
    if (run.value().mismatched_blocks != 0) {
      state.SkipWithError("replay diverged from recording");
      return;
    }
    committed += run.value().committed_txs;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(committed));
}
BENCHMARK(BM_E2EReplay)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

/// Cross-shard-heavy multi-world mix through the sharded harness: 4 worlds,
/// every round carries lock-and-mint receipt traffic alongside intra-world
/// transfers, and each iteration replays the recorded trace end to end
/// (beacon roots verified against the recording). Arg = JobQueue workers
/// fanning the per-shard commits out (0 = serial). Single-core container:
/// worker counts > 0 price the fan-out, not wall-clock speedup.
void BM_E2EMultiWorldReplay(benchmark::State& state) {
  MultiWorldConfig config;
  config.num_shards = 4;
  config.seed = 2022;
  config.avatars = 64;
  config.validators = 3;
  config.rounds = 10;
  config.intra_per_round = 16;
  config.cross_per_round = 8;
  auto rec = record_multi_world(config);
  if (!rec.ok()) {
    state.SkipWithError(rec.error().to_string().c_str());
    return;
  }
  MultiWorldOptions opts;
  opts.queue_workers = static_cast<std::size_t>(state.range(0));
  opts.check_invariants = false;  // measure the pipeline, not the auditor
  std::size_t committed = 0;
  for (auto _ : state) {
    auto run = replay_multi_world(rec.value().trace, opts);
    if (!run.ok()) {
      state.SkipWithError(run.error().to_string().c_str());
      return;
    }
    if (run.value().mismatched_rounds != 0) {
      state.SkipWithError("multi-world replay diverged from recording");
      return;
    }
    committed += run.value().committed_txs;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(committed));
  state.counters["cross_transfers"] =
      static_cast<double>(rec.value().cross_transfers);
}
BENCHMARK(BM_E2EMultiWorldReplay)->Arg(0)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // The 10^4–10^5-avatar table takes several seconds; timed CI emission
  // (scripts/check.sh) skips it, as with the other experiment binaries.
  if (std::getenv("MV_BENCH_NO_TABLE") == nullptr) print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
