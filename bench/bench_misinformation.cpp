// E5 — misinformation cascades vs trust defences (§IV-B Trust).
//
// "A reputation-based system under the Blockchain will enable the metaverse
// with a tool to... limit the spread of misinformation. Incentive systems to
// share trust among avatars will be key functionality to reduce the sharing
// of misinformation."
// Independent cascades from low-credibility seeds on Watts-Strogatz and
// Barabasi-Albert graphs. Paper shape: reputation weighting and flagging
// incentives each shrink the spread; combined they stack.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "trust/misinformation.h"

namespace {

using namespace mv;
using namespace mv::trust;

constexpr std::size_t kNodes = 20000;
constexpr int kCascades = 20;

double mean_spread(const SocialGraph& graph, bool reputation, bool flagging,
                   std::uint64_t seed) {
  PropagationConfig config;
  config.reputation_weighted = reputation;
  config.flagging_incentives = flagging;
  double total = 0.0;
  for (int c = 0; c < kCascades; ++c) {
    MisinfoSim sim(graph, config, Rng(seed + static_cast<std::uint64_t>(c)));
    total += sim.run().spread_fraction(graph.size());
  }
  return total / kCascades;
}

void print_table() {
  std::printf("=== E5: misinformation spread vs trust defences ===\n");
  std::printf("n=%zu, %d cascades per cell, 0.5%% low-credibility seeds=5\n\n",
              kNodes, kCascades);
  Rng gen(11);
  const auto ws = SocialGraph::watts_strogatz(kNodes, 8, 0.1, gen);
  const auto ba = SocialGraph::barabasi_albert(kNodes, 4, gen);
  std::printf("%-18s %14s %14s %14s %14s\n", "graph", "no defence",
              "rep-weighted", "flagging", "both");
  struct Case { const char* name; const SocialGraph& g; };
  for (const Case c : {Case{"watts-strogatz", ws}, Case{"barabasi-albert", ba}}) {
    std::printf("%-18s %14.3f %14.3f %14.3f %14.3f\n", c.name,
                mean_spread(c.g, false, false, 100),
                mean_spread(c.g, true, false, 100),
                mean_spread(c.g, false, true, 100),
                mean_spread(c.g, true, true, 100));
  }
  std::printf("\nshape: each defence shrinks the cascade; combined they stack;\n"
              "hubs (BA) spread harder, making the defences matter more.\n\n");
}

void BM_CascadeWS(benchmark::State& state) {
  Rng gen(12);
  const auto g = SocialGraph::watts_strogatz(
      static_cast<std::size_t>(state.range(0)), 8, 0.1, gen);
  PropagationConfig config;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    MisinfoSim sim(g, config, Rng(seed++));
    benchmark::DoNotOptimize(sim.run());
  }
}
BENCHMARK(BM_CascadeWS)->Arg(2000)->Arg(20000);

void BM_GraphGeneration(benchmark::State& state) {
  Rng gen(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SocialGraph::barabasi_albert(static_cast<std::size_t>(state.range(0)), 4, gen));
  }
}
BENCHMARK(BM_GraphGeneration)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
