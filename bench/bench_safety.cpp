// E6 — HMD occlusion vs safety interventions (§II-C).
//
// Reproduces the §II-C comparison: occluded walking collides; shadow avatars
// [12] remove user-user collisions only; potential-field redirected walking
// [13] removes nearly all collisions at a continuous low-grade immersion
// cost; a chaperone grid trades hard stops for safety. Swept over user count.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "safety/room.h"

namespace {

using namespace mv;
using namespace mv::safety;

constexpr std::size_t kTicks = 2500;
constexpr int kSeeds = 15;

struct Row {
  double per100 = 0.0;
  double user_user = 0.0;
  double obstacle = 0.0;
  double disruption = 0.0;
};

Row run(Intervention intervention, std::size_t users) {
  Row row;
  for (int s = 0; s < kSeeds; ++s) {
    RoomConfig config;
    config.users = users;
    config.intervention = intervention;
    RoomSim sim(config, Rng(static_cast<std::uint64_t>(3000 + s)));
    sim.run(kTicks);
    const auto& m = sim.metrics();
    row.per100 += m.collisions_per_100m() / kSeeds;
    row.user_user += static_cast<double>(m.user_user_collisions) / kSeeds;
    row.obstacle += static_cast<double>(m.user_obstacle_collisions) / kSeeds;
    row.disruption += m.disruption / kSeeds;
  }
  return row;
}

void print_table() {
  std::printf("=== E6: collision rate vs intervention (10x10m room, 6 obstacles) ===\n");
  std::printf("%zu ticks x %d seeds\n\n", kTicks, kSeeds);
  std::printf("%-22s %6s %12s %12s %12s %12s\n", "intervention", "users",
              "coll/100m", "user-user", "obstacle", "disruption");
  for (const auto intervention :
       {Intervention::kNone, Intervention::kShadowAvatars,
        Intervention::kRedirectedWalking, Intervention::kChaperone}) {
    for (const std::size_t users : {2u, 4u, 8u}) {
      const Row row = run(intervention, users);
      std::printf("%-22s %6zu %12.2f %12.1f %12.1f %12.1f\n",
                  to_string(intervention), users, row.per100, row.user_user,
                  row.obstacle, row.disruption);
    }
  }
  std::printf("\nshape: collisions grow with co-located users; every intervention\n"
              "cuts them; shadow avatars fix only user-user; redirected walking\n"
              "dominates on collisions-per-disruption.\n\n");
}

void BM_RoomStep(benchmark::State& state) {
  RoomConfig config;
  config.users = static_cast<std::size_t>(state.range(0));
  config.intervention = Intervention::kRedirectedWalking;
  RoomSim sim(config, Rng(1));
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RoomStep)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
