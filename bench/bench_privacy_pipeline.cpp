// E1 — Figure 2 reproduction: the privacy/utility frontier of the
// data-centric PET pipeline (§II-A).
//
// Sweeps the Laplace budget ε and temporal subsampling, reporting what the
// §II-A attackers recover (preference-class accuracy from gaze, gait re-id
// accuracy from head pose) against the application utility of the released
// stream. Paper shape: stronger PETs drive both attacks toward chance while
// utility degrades gracefully; chance floors are 1/8 (preference) and 1/N
// (re-identification).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "privacy/inference.h"
#include "privacy/pipeline.h"

namespace {

using namespace mv;
using namespace mv::privacy;

constexpr int kUsers = 400;
constexpr int kSamples = 30;

struct Row {
  double preference_accuracy = 0.0;
  double gait_accuracy = 0.0;
  double utility = 0.0;
};

Row evaluate(double epsilon, std::size_t keep_one_in) {
  SensorSim sim{Rng(42)};
  Rng rng(43);
  std::vector<UserTraits> traits;
  std::vector<GaitProfile> enrolled;
  for (int u = 0; u < kUsers; ++u) {
    traits.push_back(sim.sample_traits());
    enrolled.push_back(GaitProfile{static_cast<std::uint64_t>(u),
                                   traits.back().gait_frequency,
                                   traits.back().gait_amplitude});
  }

  Row row;
  int pref_ok = 0, gait_ok = 0;
  double utility_sum = 0.0;
  for (int u = 0; u < kUsers; ++u) {
    const auto& t = traits[static_cast<std::size_t>(u)];
    // Independent PET instances per user (subsample keeps a counter).
    LaplaceNoise noise(epsilon, 0.5);
    Subsample sub(keep_one_in);
    std::vector<SensorReading> raw_gaze, rel_gaze, rel_pose;
    for (int i = 0; i < kSamples; ++i) {
      auto gaze = sim.gaze(static_cast<std::uint64_t>(u), t, i);
      raw_gaze.push_back(gaze);
      if (auto kept = sub.apply(gaze, rng); kept.has_value()) {
        rel_gaze.push_back(*noise.apply(std::move(*kept), rng));
      }
      auto pose = sim.head_pose(static_cast<std::uint64_t>(u), t, i);
      rel_pose.push_back(*noise.apply(std::move(pose), rng));
    }
    pref_ok += (infer_preference(rel_gaze) == t.preference_class);
    gait_ok += (identify_gait(summarize_gait(static_cast<std::uint64_t>(u), rel_pose),
                              enrolled) == static_cast<std::uint64_t>(u));
    utility_sum += stream_utility(raw_gaze, rel_gaze);
  }
  row.preference_accuracy = static_cast<double>(pref_ok) / kUsers;
  row.gait_accuracy = static_cast<double>(gait_ok) / kUsers;
  row.utility = utility_sum / kUsers;
  return row;
}

void print_table() {
  std::printf("=== E1: PET privacy/utility frontier (Fig. 2 pipeline) ===\n");
  std::printf("%d users, %d samples each; chance: preference 0.125, gait %.4f\n\n",
              kUsers, kSamples, 1.0 / kUsers);
  std::printf("%-12s %-12s %14s %12s %10s\n", "epsilon", "subsample",
              "pref-attack", "gait-reid", "utility");
  const double epsilons[] = {1e9, 10.0, 1.0, 0.5, 0.1, 0.05};
  const char* eps_names[] = {"inf(raw)", "10", "1", "0.5", "0.1", "0.05"};
  for (int e = 0; e < 6; ++e) {
    const Row row = evaluate(epsilons[e], 1);
    std::printf("%-12s %-12s %14.3f %12.3f %10.3f\n", eps_names[e], "1/1",
                row.preference_accuracy, row.gait_accuracy, row.utility);
  }
  for (const std::size_t keep : {4u, 16u}) {
    const Row row = evaluate(1.0, keep);
    std::printf("%-12s 1/%-10zu %14.3f %12.3f %10.3f\n", "1", keep,
                row.preference_accuracy, row.gait_accuracy, row.utility);
  }
  std::printf("\nshape: attacks fall toward chance as eps shrinks / subsampling\n"
              "grows; utility falls smoothly — the Fig. 2 control knob works.\n\n");
}

void BM_PipelineProcess(benchmark::State& state) {
  PrivacyPipeline pipeline{Rng(1)};
  pipeline.set_policy(SensorType::kGaze, recommended_policy(SensorType::kGaze));
  pipeline.set_consent(SensorType::kGaze, true);
  SensorSim sim{Rng(2)};
  const UserTraits t = sim.sample_traits();
  Tick at = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.process(sim.gaze(1, t, at++)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PipelineProcess);

void BM_BystanderRedaction(benchmark::State& state) {
  SensorSim sim{Rng(3)};
  BystanderRedaction pet;
  Rng rng(4);
  const auto scan = sim.spatial_map(1, 0, 128, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pet.apply(scan, rng));
  }
}
BENCHMARK(BM_BystanderRedaction);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
