// E7 — ledger throughput and the on-chain audit registry (§II-D, §III-B).
//
// "A distributed ledger (Blockchain) can register any party's data collection
// and processing activities in the metaverse." Feasibility = the BFT
// committee sustains audit-record throughput comparable to plain transfers,
// and inclusion proofs stay logarithmic. Swept over committee size and tx mix.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "common/job_queue.h"
#include "ledger/audit.h"
#include "ledger/consensus.h"
#include "ledger/light_client.h"
#include "ledger/shard.h"
#include "ledger/snapshot.h"
#include "ledger/snapshot_sync.h"
#include "net/snapshot_transfer.h"
#include "net/subscription.h"

namespace {

using namespace mv;
using namespace mv::ledger;

struct Row {
  double txs_per_round = 0.0;
  double commit_ticks = 0.0;
  double failed = 0.0;
};

Row run(std::size_t validators, double audit_fraction, std::size_t rounds) {
  Rng rng(2024);
  SimClock clock;
  net::Network network(clock, Rng(77),
                       net::LinkParams{.base_latency = 1.0, .jitter = 2.0, .drop_rate = 0.0});
  auto contracts = std::make_shared<ContractRegistry>();
  crypto::Wallet alice(rng);
  crypto::Wallet device(rng);
  LedgerState genesis;
  genesis.credit(alice.address(), 100'000'000);
  genesis.credit(device.address(), 100'000'000);  // audit fees
  ValidatorCommittee committee(network, validators, contracts, genesis, 256, rng);

  std::uint64_t alice_nonce = 0, device_nonce = 0;
  AuditClient audit_client(device, rng);
  for (std::size_t r = 0; r < rounds; ++r) {
    for (int i = 0; i < 200; ++i) {
      if (rng.uniform() < audit_fraction) {
        committee.submit(make_audit_record(
            device, device_nonce++,
            AuditRecordBody{"gaze", "render", 7, "laplace(eps=1.0)"}, 1, rng));
      } else {
        committee.submit(
            make_transfer(alice, alice_nonce++, crypto::Address{9}, 1, 1, rng));
      }
    }
    (void)committee.run_round();
  }
  Row row;
  const auto& stats = committee.stats();
  row.txs_per_round = stats.committed_blocks
                          ? static_cast<double>(stats.committed_txs) /
                                static_cast<double>(stats.committed_blocks)
                          : 0.0;
  row.commit_ticks = stats.avg_commit_ticks();
  row.failed = static_cast<double>(stats.failed_rounds);
  return row;
}

void print_table() {
  std::printf("=== E7: BFT ledger throughput & audit-record overhead ===\n");
  std::printf("200 txs submitted per round, 10 rounds, block cap 256\n\n");
  std::printf("%12s %12s %16s %14s %8s\n", "validators", "audit mix",
              "txs/block", "commit ticks", "failed");
  for (const std::size_t v : {4u, 7u, 10u, 16u}) {
    for (const double mix : {0.0, 0.5, 1.0}) {
      const Row row = run(v, mix, 10);
      std::printf("%12zu %11.0f%% %16.1f %14.1f %8.0f\n", v, mix * 100,
                  row.txs_per_round, row.commit_ticks, row.failed);
    }
  }
  std::printf("\nshape: throughput is flat in the audit mix (audit records cost\n"
              "what transfers cost); commit latency grows mildly with committee\n"
              "size (quorum fan-in), not with the record type.\n\n");
}

void BM_Sha256_1KiB(benchmark::State& state) {
  Bytes data(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_SchnorrSign(benchmark::State& state) {
  Rng rng(1);
  const auto kp = crypto::generate_keypair(rng);
  const Bytes msg(64, 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sign(kp.priv, msg, rng));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  Rng rng(2);
  const auto kp = crypto::generate_keypair(rng);
  const Bytes msg(64, 0x11);
  const auto sig = crypto::sign(kp.priv, msg, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::verify(kp.pub, msg, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

void BM_TxApplyTransfer(benchmark::State& state) {
  Rng rng(3);
  ContractRegistry contracts;
  crypto::Wallet alice(rng);
  LedgerState ledger_state;
  ledger_state.credit(alice.address(), 1'000'000'000);
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    const auto tx = make_transfer(alice, nonce++, crypto::Address{5}, 1, 0, rng);
    benchmark::DoNotOptimize(ledger_state.apply(tx, contracts, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TxApplyTransfer);

// Hot path of block production: assemble a 256-tx block on top of a ledger
// with `range(0)` funded accounts, then fully validate it. The per-block cost
// must track block size, not world size (the seed deep-copied the whole
// account map twice per block).
void BM_BlockAssembleValidate(benchmark::State& state) {
  const auto accounts = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kTxs = 256;
  Rng rng(9);
  auto contracts = std::make_shared<ContractRegistry>();
  crypto::Wallet validator(rng);
  LedgerState genesis;
  for (std::size_t i = 0; i < accounts; ++i) {
    genesis.credit(crypto::Address{0x100000 + i}, 1);
  }
  std::vector<crypto::Wallet> senders;
  senders.reserve(kTxs);
  std::vector<Transaction> candidates;
  candidates.reserve(kTxs);
  for (std::size_t i = 0; i < kTxs; ++i) {
    senders.emplace_back(rng);
    genesis.credit(senders.back().address(), 1'000'000);
    candidates.push_back(
        make_transfer(senders.back(), 0, crypto::Address{7}, 1, 1, rng));
  }
  ChainConfig config;
  config.validators = {validator.public_key()};
  config.max_txs_per_block = kTxs;
  Blockchain chain(config, contracts, genesis);
  for (auto _ : state) {
    const Block block = chain.assemble(validator, candidates, 0, rng);
    benchmark::DoNotOptimize(chain.validate(block));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTxs));
}
BENCHMARK(BM_BlockAssembleValidate)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Parallel block validation: fully validate a 512-tx low-conflict block
// (distinct senders, distinct recipients) over a world of `range(0)` funded
// accounts with `range(1)` worker threads. threads == 1 is the serial
// baseline; the speedup at 4-8 threads is the tentpole claim of the parallel
// engine. The candidate set and the block are built once outside the timed
// loop, so the measurement isolates validation (signature pre-verification,
// partitioning, group execution, merge).
void BM_ParallelBlockValidate(benchmark::State& state) {
  const auto accounts = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kTxs = 512;
  Rng rng(13);
  auto contracts = std::make_shared<ContractRegistry>();
  crypto::Wallet validator(rng);
  LedgerState genesis;
  for (std::size_t i = 0; i < accounts; ++i) {
    genesis.credit(crypto::Address{0x100000 + i}, 1);
  }
  std::vector<crypto::Wallet> senders;
  senders.reserve(kTxs);
  std::vector<Transaction> candidates;
  candidates.reserve(kTxs);
  for (std::size_t i = 0; i < kTxs; ++i) {
    senders.emplace_back(rng);
    genesis.credit(senders.back().address(), 1'000'000);
    candidates.push_back(make_transfer(senders.back(), 0,
                                       crypto::Address{0x900000 + i}, 1, 1, rng));
  }
  ChainConfig config;
  config.validators = {validator.public_key()};
  config.max_txs_per_block = kTxs;
  config.validation.threads = threads;
  Blockchain chain(config, contracts, genesis);
  const Block block = chain.assemble(validator, candidates, 0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.validate(block));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTxs));
}
BENCHMARK(BM_ParallelBlockValidate)
    ->ArgsProduct({{1000, 100000}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

// Incremental commitment after touching a handful of accounts in a world of
// `range(0)`: cost must track the touched set (O(touched · log n)), not the
// world ("the seed re-hashed every account, store entry, and audit record
// per state_root() call").
void BM_CommitmentAfterTouch(benchmark::State& state) {
  const auto accounts = static_cast<std::size_t>(state.range(0));
  LedgerState ledger_state;
  for (std::size_t i = 0; i < accounts; ++i) {
    ledger_state.credit(crypto::Address{0x100000 + i}, 1);
  }
  benchmark::DoNotOptimize(ledger_state.commitment());  // warm the tree
  std::uint64_t tick = 0;
  for (auto _ : state) {
    auto scratch = LedgerStateOverlay::reader(ledger_state);
    for (std::uint64_t i = 0; i < 16; ++i) {
      scratch.credit(crypto::Address{0x100000 + (tick * 16 + i) % accounts}, 1);
    }
    ++tick;
    benchmark::DoNotOptimize(scratch.commitment());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_CommitmentAfterTouch)
    ->Arg(1000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

// Mempool admission/selection/eviction at pool size `range(0)`: select a
// 256-tx block worth and evict it. Cost must scale with the selected txs,
// not with the pool size.
void BM_MempoolSelectRemove(benchmark::State& state) {
  const auto pool_size = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBlock = 256;
  Rng rng(11);
  LedgerState ledger_state;
  // Few senders with deep nonce queues plus many one-shot senders.
  std::vector<crypto::Wallet> wallets;
  const std::size_t deep = 16;
  for (std::size_t i = 0; i < deep; ++i) {
    wallets.emplace_back(rng);
    ledger_state.credit(wallets.back().address(), 1'000'000);
  }
  std::vector<Transaction> txs;
  txs.reserve(pool_size);
  const std::size_t per_sender = pool_size / 2 / deep;
  for (std::size_t i = 0; i < deep; ++i) {
    for (std::size_t n = 0; n < per_sender; ++n) {
      txs.push_back(make_transfer(wallets[i], n, crypto::Address{3}, 1,
                                  1 + (i + n) % 7, rng));
    }
  }
  while (txs.size() < pool_size) {
    wallets.emplace_back(rng);
    ledger_state.credit(wallets.back().address(), 1'000'000);
    txs.push_back(make_transfer(wallets.back(), 0, crypto::Address{3}, 1,
                                1 + txs.size() % 7, rng));
  }
  Mempool pool;
  for (const auto& tx : txs) (void)pool.add(tx, ledger_state);
  for (auto _ : state) {
    const auto picked = pool.select(kBlock, ledger_state);
    pool.remove_included(picked);
    state.PauseTiming();
    for (const auto& tx : picked) (void)pool.add(tx, ledger_state);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBlock));
}
BENCHMARK(BM_MempoolSelectRemove)->Arg(1024)->Arg(16384)->Unit(benchmark::kMicrosecond);

// Account proof round trip at a `range(0)`-account tip: full node builds the
// proof (prove_account), light client checks it against the header's state
// root. Both sides must stay logarithmic in the account count.
void BM_AccountProofRoundTrip(benchmark::State& state) {
  const auto accounts = static_cast<std::size_t>(state.range(0));
  Rng rng(31337);
  LedgerState genesis;
  std::vector<std::uint64_t> addrs;
  addrs.reserve(accounts);
  for (std::size_t i = 0; i < accounts; ++i) {
    const std::uint64_t a = 0x100000 + i;
    genesis.credit(crypto::Address{a}, 1 + i % 997);
    addrs.push_back(a);
  }
  crypto::Wallet validator(rng);
  ChainConfig config;
  config.validators = {validator.public_key()};
  Blockchain chain(config, std::make_shared<ContractRegistry>(), genesis);
  if (!chain.append(chain.assemble(validator, {}, 0, rng)).ok()) {
    state.SkipWithError("genesis block append failed");
    return;
  }
  const crypto::Digest state_root = chain.blocks()[0].header.state_root;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto ap = chain.prove_account(crypto::Address{addrs[i++ % accounts]}, 0);
    if (!ap.ok() || !verify_account_proof(ap.value(), state_root).ok()) {
      state.SkipWithError("account proof did not verify");
      return;
    }
    benchmark::DoNotOptimize(ap);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AccountProofRoundTrip)
    ->Arg(1000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

// ---- snapshot sync: O(state) catch-up vs O(history) replay ----

// A committed source chain, built once per (accounts, history) combination
// and cached across benchmark registrations: constructing a 100k-account,
// 1000-block history dominates the wall clock otherwise.
struct CatchUpFixture {
  ChainConfig config;
  std::shared_ptr<ContractRegistry> contracts =
      std::make_shared<ContractRegistry>();
  /// Shared across replicas (lazy-materialization constructor): replica
  /// construction stops costing an O(state) genesis clone, which would
  /// otherwise dwarf the catch-up path under measurement at 100k accounts.
  std::shared_ptr<const LedgerState> genesis;
  std::unique_ptr<Blockchain> source;
  /// Serving side of the suffix bench: a real server exports once and then
  /// answers every replica from the pinned entry, so iterations measure the
  /// replica's install + replay, not a per-sync re-export.
  SnapshotExportCache export_cache;
};

CatchUpFixture& catchup_fixture(std::size_t accounts, std::size_t history) {
  static std::map<std::pair<std::size_t, std::size_t>,
                  std::unique_ptr<CatchUpFixture>>
      cache;
  auto& slot = cache[{accounts, history}];
  if (slot != nullptr) return *slot;

  auto f = std::make_unique<CatchUpFixture>();
  Rng rng(71);
  crypto::Wallet validator(rng);
  f->config.validators = {validator.public_key()};
  f->config.max_txs_per_block = 64;
  // Retain enough history to export the snapshot the suffix bench needs.
  f->config.state_retention = history / 10 + 1;
  LedgerState genesis;
  for (std::size_t i = 0; i < accounts; ++i) {
    genesis.credit(crypto::Address{0x100000 + i}, 1 + i % 97);
  }
  constexpr std::size_t kSenders = 32;
  std::vector<crypto::Wallet> senders;
  senders.reserve(kSenders);
  for (std::size_t i = 0; i < kSenders; ++i) {
    senders.emplace_back(rng);
    genesis.credit(senders.back().address(), 100'000'000);
  }
  f->genesis = std::make_shared<const LedgerState>(std::move(genesis));
  f->source = std::make_unique<Blockchain>(f->config, f->contracts, f->genesis);
  std::vector<std::uint64_t> nonces(kSenders, 0);
  for (std::size_t h = 0; h < history; ++h) {
    std::vector<Transaction> txs;
    for (std::size_t j = 0; j < 4; ++j) {
      const std::size_t s = (h * 4 + j) % kSenders;
      txs.push_back(make_transfer(senders[s], nonces[s]++,
                                  crypto::Address{0x100000 + (h + j) % accounts},
                                  1, 1, rng));
    }
    if (!f->source->append(f->source->assemble(validator, txs,
                                               static_cast<Tick>(h), rng))
             .ok()) {
      std::abort();  // fixture invariant, not a measured failure
    }
  }
  slot = std::move(f);
  return *slot;
}

// Baseline: a fresh replica catches up by replaying the full block history.
// O(history · txs) signature checks and applies.
void BM_CatchUpFullReplay(benchmark::State& state) {
  const auto accounts = static_cast<std::size_t>(state.range(0));
  const auto history = static_cast<std::size_t>(state.range(1));
  CatchUpFixture& f = catchup_fixture(accounts, history);
  for (auto _ : state) {
    Blockchain replica(f.config, f.contracts, f.genesis);
    const auto n = replica.import_blocks(f.source->export_blocks());
    if (!n.ok() || replica.tip_hash() != f.source->tip_hash()) {
      state.SkipWithError("full replay did not converge");
      return;
    }
    benchmark::DoNotOptimize(replica.state().commitment());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(history));
}
BENCHMARK(BM_CatchUpFullReplay)
    ->ArgsProduct({{1000, 100000}, {100, 1000}})
    ->Unit(benchmark::kMillisecond);

// Snapshot sync: the source exports a verified snapshot at tip − history/10,
// the replica installs it and replays only the suffix. O(state) for the
// snapshot plus O(suffix · txs) for the tail — the tentpole claim is the
// gap to BM_CatchUpFullReplay at deep histories.
void BM_CatchUpSnapshotSuffix(benchmark::State& state) {
  const auto accounts = static_cast<std::size_t>(state.range(0));
  const auto history = static_cast<std::size_t>(state.range(1));
  CatchUpFixture& f = catchup_fixture(accounts, history);
  const std::int64_t suffix = static_cast<std::int64_t>(history) / 10;
  const std::int64_t snap_height = f.source->height() - 1 - suffix;
  for (auto _ : state) {
    const auto snap =
        f.export_cache.get_or_export(*f.source, snap_height, kSnapshotChunkSize);
    if (snap == nullptr) {
      state.SkipWithError("snapshot export failed");
      return;
    }
    Blockchain replica(f.config, f.contracts, f.genesis);
    if (!replica
             .init_from_snapshot(snap->manifest, snap->chunks,
                                 f.source->block_at(snap_height)->header)
             .ok()) {
      state.SkipWithError("snapshot install failed");
      return;
    }
    const auto n =
        replica.import_blocks(f.source->export_blocks_from(replica.height()));
    if (!n.ok() || replica.tip_hash() != f.source->tip_hash()) {
      state.SkipWithError("suffix replay did not converge");
      return;
    }
    benchmark::DoNotOptimize(replica.state().commitment());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(history));
}
BENCHMARK(BM_CatchUpSnapshotSuffix)
    ->ArgsProduct({{1000, 100000}, {100, 1000}})
    ->Unit(benchmark::kMillisecond);

// ---- swarm catch-up: striped multi-peer transfer and diff snapshots ----

// Source chain + per-replica export caches for the simulated-network catch-up
// benches. Built once; the measured quantity is simulated ticks, which are
// deterministic and independent of wall-clock noise.
struct SwarmBenchFixture {
  static constexpr std::size_t kAccounts = 1000;
  static constexpr std::size_t kChunkSize = 256;
  static constexpr std::size_t kHistory = 24;

  Rng rng{911};
  crypto::Wallet validator{rng};
  ChainConfig config;
  std::shared_ptr<ContractRegistry> contracts =
      std::make_shared<ContractRegistry>();
  std::shared_ptr<const LedgerState> genesis;
  std::unique_ptr<Blockchain> source;
  std::vector<std::unique_ptr<SnapshotExportCache>> caches;

  SwarmBenchFixture() {
    config.validators = {validator.public_key()};
    config.max_txs_per_block = 64;
    config.state_retention = 8;
    LedgerState g;
    for (std::size_t i = 0; i < kAccounts; ++i) {
      g.credit(crypto::Address{0x100000 + i}, 1 + i % 97);
    }
    crypto::Wallet sender(rng);
    g.credit(sender.address(), 100'000'000);
    genesis = std::make_shared<const LedgerState>(std::move(g));
    source = std::make_unique<Blockchain>(config, contracts, genesis);
    std::uint64_t nonce = 0;
    for (std::size_t h = 0; h < kHistory; ++h) {
      std::vector<Transaction> txs;
      for (std::size_t j = 0; j < 4; ++j) {
        txs.push_back(make_transfer(
            sender, nonce++, crypto::Address{0x100000 + (h * 4 + j) % kAccounts},
            1, 1, rng));
      }
      if (!source->append(
                 source->assemble(validator, txs, static_cast<Tick>(h), rng))
               .ok()) {
        std::abort();  // fixture invariant, not a measured failure
      }
    }
    for (std::size_t i = 0; i < 8; ++i) {
      caches.push_back(std::make_unique<SnapshotExportCache>());
    }
  }
};

SwarmBenchFixture& swarm_fixture() {
  static SwarmBenchFixture f;
  return f;
}

/// One full simulated catch-up; returns the tick count, or 0 on failure
/// (reported via SkipWithError by the caller). `diff_base`, when non-null,
/// is installed as the replica's local diff base before starting.
Tick run_swarm_sync(benchmark::State& state, std::size_t n_peers,
                    net::SnapshotTransferConfig cfg, const Snapshot* diff_base,
                    std::uint64_t* chunks_fetched, std::uint64_t* chunks_reused,
                    std::uint64_t* chunks_received) {
  SwarmBenchFixture& f = swarm_fixture();
  const std::int64_t snap_height = f.source->height() - 2;
  SimClock clock;
  net::Network net(clock, Rng(7), net::LinkParams{2.0, 0.0, 0.0});
  std::vector<std::unique_ptr<net::SnapshotServer>> servers;
  std::vector<NodeId> server_nodes;
  for (std::size_t i = 0; i < n_peers; ++i) {
    servers.push_back(std::make_unique<net::SnapshotServer>(
        net, make_snapshot_source(*f.source, SwarmBenchFixture::kChunkSize,
                                  f.caches[i].get())));
    net::SnapshotServer& server = *servers.back();
    server_nodes.push_back(
        net.add_node([&server](const net::Message& m) { server.handle(m); }));
    servers.back()->bind(server_nodes.back());
  }
  LightClient lc(LightClientConfig{{f.validator.public_key()},
                                   f.source->genesis_hash()});
  for (const Block& b : f.source->blocks()) {
    if (!lc.accept_header(b.header).ok()) {
      state.SkipWithError("header rejected");
      return 0;
    }
  }
  Blockchain replica(f.config, f.contracts, f.genesis);
  SnapshotCatchup catchup(net, replica, lc, cfg);
  const NodeId client =
      net.add_node([&](const net::Message& m) { catchup.handle(m); });
  catchup.bind(client);
  if (diff_base != nullptr) catchup.set_diff_base(*diff_base);
  if (!catchup.start(server_nodes, snap_height).ok()) {
    state.SkipWithError("catch-up start failed");
    return 0;
  }
  Tick ticks = 0;
  while (!catchup.done() && !catchup.failed() && ticks < 100000) {
    clock.advance(1);
    net.step();
    catchup.tick();
    ++ticks;
  }
  if (!catchup.done() || replica.tip_hash() != f.source->tip_hash()) {
    state.SkipWithError("simulated catch-up did not converge");
    return 0;
  }
  const net::NetworkStats stats = net.stats();
  if (chunks_fetched != nullptr) *chunks_fetched = stats.snapshot_chunks_served;
  if (chunks_reused != nullptr) *chunks_reused = stats.snapshot_diff_chunks_reused;
  if (chunks_received != nullptr) *chunks_received = catchup.chunks_received();
  return ticks;
}

// Striped swarm catch-up over a lossless simulated network with a fixed
// per-hop latency. Reported (manual) time is simulated ticks, 1 tick = 1µs
// of reported time: with a 32-request window capped at 4 per peer, in-flight
// capacity scales with the peer set, so more replicas = a deeper transfer
// pipeline and fewer round-trip serializations.
void BM_CatchUpStriped(benchmark::State& state) {
  const auto n_peers = static_cast<std::size_t>(state.range(0));
  net::SnapshotTransferConfig cfg;
  cfg.window = 32;
  cfg.per_peer_inflight = 4;
  std::uint64_t chunks = 0;
  for (auto _ : state) {
    const Tick ticks =
        run_swarm_sync(state, n_peers, cfg, nullptr, nullptr, nullptr, &chunks);
    if (ticks == 0) return;
    state.SetIterationTime(static_cast<double>(ticks) * 1e-6);
  }
  state.counters["chunks"] = static_cast<double>(chunks);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunks));
}
BENCHMARK(BM_CatchUpStriped)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(5)
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond);

// Diff snapshot vs full fetch, same simulated network. Arg(0) fetches every
// chunk; Arg(1) holds a snapshot from four blocks earlier and prefills the
// chunks whose digests still match, so only the changed ones cross the wire.
void BM_DiffSnapshot(benchmark::State& state) {
  const bool use_diff = state.range(0) != 0;
  SwarmBenchFixture& f = swarm_fixture();
  const std::int64_t snap_height = f.source->height() - 2;
  const auto base =
      f.source->export_snapshot(snap_height - 4, SwarmBenchFixture::kChunkSize);
  if (!base.ok()) {
    state.SkipWithError("base export failed");
    return;
  }
  net::SnapshotTransferConfig cfg;
  cfg.window = 16;
  std::uint64_t fetched = 0;
  std::uint64_t reused = 0;
  std::uint64_t received = 0;
  for (auto _ : state) {
    const Tick ticks =
        run_swarm_sync(state, 1, cfg, use_diff ? &base.value() : nullptr,
                       &fetched, &reused, &received);
    if (ticks == 0) return;
    state.SetIterationTime(static_cast<double>(ticks) * 1e-6);
  }
  state.counters["chunks_fetched"] = static_cast<double>(fetched);
  state.counters["chunks_reused"] = static_cast<double>(reused);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(received));
}
BENCHMARK(BM_DiffSnapshot)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(5)
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond);

// Snapshot codec round trip in isolation: encode + chunk + digest a
// `range(0)`-account state, then verify + reassemble + decode it.
void BM_SnapshotExportImport(benchmark::State& state) {
  const auto accounts = static_cast<std::size_t>(state.range(0));
  LedgerState ledger_state;
  for (std::size_t i = 0; i < accounts; ++i) {
    ledger_state.credit(crypto::Address{0x100000 + i}, 1 + i % 97);
  }
  benchmark::DoNotOptimize(ledger_state.commitment());  // warm the tree
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const Snapshot snap = build_snapshot(ledger_state, 0);
    auto decoded = assemble_snapshot(snap.manifest, snap.chunks);
    if (!decoded.ok()) {
      state.SkipWithError("snapshot round trip failed");
      return;
    }
    bytes += snap.manifest.total_bytes;
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_SnapshotExportImport)
    ->Arg(1000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Steady-state block validation with the verified-signature cache off
// (range(0) == 0) vs on (1). With the cache, every signature in a re-validated
// block is a digest-keyed hit, so the per-block cost drops to the apply path.
void BM_BlockValidateSigCache(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  constexpr std::size_t kTxs = 256;
  Rng rng(17);
  auto contracts = std::make_shared<ContractRegistry>();
  crypto::Wallet validator(rng);
  LedgerState genesis;
  std::vector<crypto::Wallet> senders;
  senders.reserve(kTxs);
  std::vector<Transaction> candidates;
  candidates.reserve(kTxs);
  for (std::size_t i = 0; i < kTxs; ++i) {
    senders.emplace_back(rng);
    genesis.credit(senders.back().address(), 1'000'000);
    candidates.push_back(
        make_transfer(senders.back(), 0, crypto::Address{7}, 1, 1, rng));
  }
  ChainConfig config;
  config.validators = {validator.public_key()};
  config.max_txs_per_block = kTxs;
  if (cached) config.validation.sig_cache = std::make_shared<crypto::DigestLruSet>();
  Blockchain chain(config, contracts, genesis);
  const Block block = chain.assemble(validator, candidates, 0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.validate(block));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTxs));
}
BENCHMARK(BM_BlockValidateSigCache)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// One sharded commit round — per-shard select/assemble/append fanned out on
// a JobQueue (one worker per shard), then receipt-tree refresh and beacon
// assembly — over `range(0)` shards, 10k background accounts, 256 transfers
// per round. Client-side work (signing, mempool admission) is untimed: the
// measured region is exactly the pipeline the shard split parallelizes.
// Single-core container: higher shard counts price the fan-out bookkeeping
// rather than showing wall-clock speedup; the per-shard pipeline shrinking
// (flat-ish total time as shards grow) is the scaling evidence available
// here.
void BM_ShardedPipeline(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kAccounts = 10'000;
  constexpr std::size_t kTxsPerRound = 256;
  Rng rng(23);
  crypto::Wallet validator(rng);
  LedgerState genesis;
  for (std::size_t i = 0; i < kAccounts; ++i) {
    genesis.credit(crypto::Address{0x200000 + i}, 1);
  }
  std::vector<crypto::Wallet> senders;
  senders.reserve(kTxsPerRound);
  for (std::size_t i = 0; i < kTxsPerRound; ++i) {
    senders.emplace_back(rng);
    genesis.credit(senders.back().address(), 1'000'000'000);
  }
  ShardConfig config;
  config.num_shards = shards;
  config.validators = {validator.public_key()};
  config.max_txs_per_block = kTxsPerRound;
  config.seed = 23;
  JobQueueConfig qc;
  qc.threads = shards > 1 ? shards : 0;
  config.validation.job_queue = std::make_shared<JobQueue>(qc);
  ShardedLedger ledger(config, genesis);
  std::vector<std::uint64_t> nonces(kTxsPerRound, 0);
  Tick tick = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < kTxsPerRound; ++i) {
      const auto status = ledger.submit(make_transfer(
          senders[i], nonces[i]++, crypto::Address{0x200000 + i}, 1, 1, rng));
      if (!status.ok()) {
        state.SkipWithError(status.error().to_string().c_str());
        return;
      }
    }
    state.ResumeTiming();
    const auto beacon = ledger.commit_round(validator, ++tick);
    if (!beacon.ok()) {
      state.SkipWithError(beacon.error().to_string().c_str());
      return;
    }
    benchmark::DoNotOptimize(beacon.value().beacon_root);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTxsPerRound));
}
BENCHMARK(BM_ShardedPipeline)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Raw job-queue dispatch cost: a 256-task batch of near-empty jobs through
// `range(0)` workers. 0 = inline mode (the floor: admission + telemetry,
// no synchronization hop); higher counts price the queue/wake/complete
// round-trip. Single-core container: threads > 1 measures contention, not
// speedup.
void BM_JobQueueDispatch(benchmark::State& state) {
  JobQueueConfig config;
  config.threads = static_cast<std::size_t>(state.range(0));
  JobQueue queue(config);
  constexpr std::size_t kJobs = 256;
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    queue.run_batch(JobClass::kValidation, kJobs, [&](std::size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kJobs));
}
BENCHMARK(BM_JobQueueDispatch)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond);

// Mixed-priority overload: each iteration floods the three lowest classes
// past their depth ceilings while a consensus batch pushes through, the
// shape the admission shedding exists for. Emits the shed rate and
// per-class p50/p99 queue-waits as counters (into BENCH_ledger.json):
// consensus wait must stay near the front of the line while the flooded
// classes absorb the shedding.
void BM_JobQueueMixedOverload(benchmark::State& state) {
  JobQueueConfig config;
  config.threads = static_cast<std::size_t>(state.range(0));
  config.limit(JobClass::kGossipRelay).max_depth = 64;
  config.limit(JobClass::kSnapshotServe).max_depth = 32;
  config.limit(JobClass::kClientQuery).max_depth = 16;
  JobQueue queue(config);
  std::atomic<std::uint64_t> sink{0};
  const auto spin = [&] {
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    for (int i = 0; i < 400; ++i) x = x * 0x2545f4914f6cdd1dULL + 1;
    sink.fetch_add(x, std::memory_order_relaxed);
  };
  std::uint64_t attempts = 0;
  for (auto _ : state) {
    for (int i = 0; i < 48; ++i) {
      queue.submit(JobClass::kGossipRelay, spin);
      queue.submit(JobClass::kSnapshotServe, spin);
      queue.submit(JobClass::kClientQuery, spin);
      attempts += 3;
    }
    queue.run_batch(JobClass::kConsensus, 16, [&](std::size_t) { spin(); });
    attempts += 16;
  }
  queue.drain();
  const JobQueueStats stats = queue.stats();
  state.counters["shed_rate"] =
      attempts ? static_cast<double>(stats.shed()) / static_cast<double>(attempts)
               : 0.0;
  const auto wait_counters = [&](JobClass cls, const char* tag) {
    const JobClassStats& cs = stats.of(cls);
    state.counters[std::string(tag) + "_wait_p50_us"] = cs.wait_p50_us;
    state.counters[std::string(tag) + "_wait_p99_us"] = cs.wait_p99_us;
  };
  wait_counters(JobClass::kConsensus, "consensus");
  wait_counters(JobClass::kGossipRelay, "gossip");
  wait_counters(JobClass::kClientQuery, "client");
  state.SetItemsProcessed(static_cast<std::int64_t>(stats.completed()));
}
BENCHMARK(BM_JobQueueMixedOverload)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Streaming fan-out: one commit push, serialized once, shared by pointer
// across N subscribers — the zero-copy claim the subscription read path
// makes. Each iteration publishes one commit and delivers every resulting
// push; the counters surface the server's per-commit fan-out wall time
// (mean/p50/p99/max over recent commits). Cost must scale linearly in
// subscriber count with no per-subscriber re-encoding anywhere.
void BM_SubscriptionFanout(benchmark::State& state) {
  const std::size_t subscribers = static_cast<std::size_t>(state.range(0));
  SimClock clock;
  net::Network network(clock, Rng(99),
                       net::LinkParams{.base_latency = 1.0,
                                       .jitter = 0.0,
                                       .drop_rate = 0.0});
  // Unlimited per-client backlog: subscribers here are sinks that never ack,
  // and eviction is not what this benchmark measures.
  net::SubscriptionServer server(
      network, net::SubscriptionConfig{.per_client_cap = 0, .retain = 4});
  const NodeId server_node =
      network.add_node([&](const net::Message& m) { server.handle(m); });
  server.bind(server_node);

  std::uint64_t received = 0;
  std::vector<NodeId> nodes;
  nodes.reserve(subscribers);
  for (std::size_t i = 0; i < subscribers; ++i) {
    nodes.push_back(network.add_node([&](const net::Message& m) {
      received += m.topic == net::kSubPush ? 1 : 0;
    }));
  }
  net::SubscriptionRequest req;
  req.headers = true;
  const Bytes req_bytes = req.encode();
  for (const NodeId n : nodes) {
    (void)network.send(n, server_node, net::kSubSubscribeReq, req_bytes);
  }
  network.run_until_idle();

  // Sized like a small CommitPush (header + one account proof).
  const auto payload = std::make_shared<const Bytes>(Bytes(512, 0x5A));
  std::int64_t height = 0;
  for (auto _ : state) {
    server.publish(height++, payload);
    network.run_until_idle();
  }

  const net::SubscriptionStats stats = server.stats();
  if (received != stats.pushes_sent) state.SkipWithError("pushes lost");
  state.counters["push_mean_us"] = stats.fanout_mean_us;
  state.counters["push_p50_us"] = stats.fanout_p50_us;
  state.counters["push_p99_us"] = stats.fanout_p99_us;
  state.counters["push_max_us"] = stats.fanout_max_us;
  state.SetItemsProcessed(static_cast<std::int64_t>(stats.pushes_sent));
}
BENCHMARK(BM_SubscriptionFanout)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_MerkleProof256(benchmark::State& state) {
  std::vector<crypto::Digest> leaves;
  for (int i = 0; i < 256; ++i) {
    leaves.push_back(crypto::sha256(std::string_view{"leaf" + std::to_string(i)}));
  }
  const crypto::MerkleTree tree(leaves);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.prove(i++ % 256));
  }
}
BENCHMARK(BM_MerkleProof256);

}  // namespace

int main(int argc, char** argv) {
  // The committee sweep takes far longer than the microbenchmarks; CI runs
  // (scripts/check.sh) skip it to keep the timed JSON emission fast.
  if (std::getenv("MV_BENCH_NO_TABLE") == nullptr) print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
