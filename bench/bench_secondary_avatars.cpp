// E8 — secondary (clone) avatars vs behavioural linkage (§II-B).
//
// "Other avatars in the metaverse cannot recognise the real owner of this
// secondary avatar and, therefore, cannot infer any behavioural information."
// Tested: a nearest-profile attacker links each clone session to a primary.
// Swept over behaviour noise (blending toward the population average) and
// session length. Paper shape: undefended clones are trivially linkable;
// behaviour noise pushes the attack toward the 1/N chance floor — the clone
// defence only works when the clone also *behaves* differently.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "world/linkage.h"

namespace {

using namespace mv;
using namespace mv::world;

constexpr std::size_t kUsers = 300;

double linkage_accuracy(double noise, std::size_t actions, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<InterestProfile> latent, enrolled;
  for (std::size_t u = 0; u < kUsers; ++u) {
    latent.push_back(sample_profile(rng));
    enrolled.push_back(trace_histogram(
        play_session(AvatarId(u), latent.back(), actions, 0.0, rng)));
  }
  std::size_t linked = 0;
  for (std::size_t u = 0; u < kUsers; ++u) {
    const auto trace = play_session(AvatarId(10000 + u), latent[u], actions, noise, rng);
    linked += (link_to_primary(trace_histogram(trace), enrolled) == u);
  }
  return static_cast<double>(linked) / kUsers;
}

void print_table() {
  std::printf("=== E8: clone-avatar linkage attack ===\n");
  std::printf("%zu users; chance floor %.4f\n\n", kUsers, 1.0 / kUsers);
  std::printf("%16s %12s %16s\n", "behaviour noise", "actions", "link accuracy");
  for (const double noise : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    for (const std::size_t actions : {50u, 200u}) {
      std::printf("%16.2f %12zu %16.3f\n", noise, actions,
                  linkage_accuracy(noise, actions, 42));
    }
  }
  std::printf("\nshape: accuracy near 1.0 undefended (longer sessions leak more);\n"
              "blending toward uniform drives it toward the 1/N floor.\n\n");
}

void BM_PlaySession(benchmark::State& state) {
  Rng rng(1);
  const auto profile = sample_profile(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        play_session(AvatarId(1), profile, static_cast<std::size_t>(state.range(0)), 0.5, rng));
  }
}
BENCHMARK(BM_PlaySession)->Arg(100)->Arg(1000);

void BM_LinkToPrimary(benchmark::State& state) {
  Rng rng(2);
  std::vector<InterestProfile> enrolled;
  for (int i = 0; i < state.range(0); ++i) enrolled.push_back(sample_profile(rng));
  const auto probe = sample_profile(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(link_to_primary(probe, enrolled));
  }
}
BENCHMARK(BM_LinkToPrimary)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
