// E13 — "a version of the metaverse with frontiers" (§III-E).
//
// "Then, the question is how the users from other geographical locations will
// be treated... We could end up with a version of the metaverse with
// frontiers, in which the regulations are applied differently."
// Each region's regulation module dictates the pipeline configuration its
// users run (consent default, PET strength). The same workload then yields
// different privacy (attacker accuracy) and different experience (utility,
// release rate) per region — the fragmentation the paper warns about — while
// the strictest-common-denominator composed module (§II-D's "homogeneous
// policy") removes the frontier at the strict end.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "privacy/inference.h"
#include "privacy/pipeline.h"

namespace {

using namespace mv;
using namespace mv::privacy;

constexpr int kUsersPerRegion = 250;
constexpr int kSamples = 30;

struct RegionRegime {
  const char* region;
  const char* regulation;
  double consent_rate;  ///< fraction of users whose data may reach the cloud
  PetPtr pet;           ///< mandated obfuscation (nullptr = raw)
};

struct Row {
  double release_rate = 0.0;  ///< fraction of samples reaching the cloud
  double attack_accuracy = 0.0;
  double utility = 0.0;
};

Row run(const RegionRegime& regime, std::uint64_t seed) {
  SensorSim sim{Rng(seed)};
  Rng rng(seed + 1);
  Row row;
  std::size_t released_total = 0, raw_total = 0;
  int attacked_ok = 0, with_data = 0;
  double utility_sum = 0.0;
  int utility_users = 0;
  for (int u = 0; u < kUsersPerRegion; ++u) {
    const UserTraits traits = sim.sample_traits();
    const bool consented = rng.chance(regime.consent_rate);
    std::vector<SensorReading> raw, released;
    for (int i = 0; i < kSamples; ++i) {
      auto reading = sim.gaze(static_cast<std::uint64_t>(u), traits, i);
      raw.push_back(reading);
      ++raw_total;
      if (!consented) continue;
      if (regime.pet != nullptr) {
        auto out = regime.pet->apply(std::move(reading), rng);
        if (!out.has_value()) continue;
        released.push_back(std::move(*out));
      } else {
        released.push_back(std::move(reading));
      }
      ++released_total;
    }
    if (!released.empty()) {
      ++with_data;
      attacked_ok += (infer_preference(released) == traits.preference_class);
      utility_sum += stream_utility(raw, released);
      ++utility_users;
    }
  }
  row.release_rate = raw_total ? static_cast<double>(released_total) /
                                     static_cast<double>(raw_total)
                               : 0.0;
  row.attack_accuracy =
      with_data ? static_cast<double>(attacked_ok) / with_data : 0.0;
  row.utility = utility_users ? utility_sum / utility_users : 0.0;
  return row;
}

void print_table() {
  std::printf("=== E13: regulation frontiers — per-region privacy & experience ===\n");
  std::printf("%d users/region, %d gaze samples each; chance accuracy 0.125\n\n",
              kUsersPerRegion, kSamples);
  // Regimes derived from the policy modules: GDPR = opt-in consent (30%%
  // opted in) + strong mandated PET; CCPA = opt-out (85%% still in) + light
  // PET; baseline = notice only; frontier-free = composed strictest rules
  // applied globally.
  const RegionRegime regimes[] = {
      {"eu", "gdpr", 0.30, std::make_shared<LaplaceNoise>(1.0, 0.5)},
      {"california", "ccpa", 0.85, std::make_shared<GaussianNoise>(0.1)},
      {"atlantis", "baseline", 1.00, nullptr},
      {"(global)", "gdpr+ccpa", 0.30, std::make_shared<LaplaceNoise>(1.0, 0.5)},
  };
  std::printf("%-12s %-12s %14s %16s %10s\n", "region", "regulation",
              "release rate", "attack accuracy", "utility");
  double min_attack = 1.0, max_attack = 0.0;
  for (const auto& regime : regimes) {
    const Row row = run(regime, 2022);
    std::printf("%-12s %-12s %14.3f %16.3f %10.3f\n", regime.region,
                regime.regulation, row.release_rate, row.attack_accuracy,
                row.utility);
    // The composed global row is excluded from the frontier-gap statistic.
    if (std::string(regime.region) != "(global)") {
      min_attack = std::min(min_attack, row.attack_accuracy);
      max_attack = std::max(max_attack, row.attack_accuracy);
    }
  }
  std::printf("\nfrontier gap (max-min attacker accuracy across regions): %.3f\n",
              max_attack - min_attack);
  std::printf("shape: under per-region modules, identical users get unequal\n"
              "protection purely by geography — the paper's 'frontiers'. The\n"
              "composed global module gives every region the strict profile,\n"
              "at the strict region's utility cost.\n\n");
}

void BM_RegimeEvaluation(benchmark::State& state) {
  const RegionRegime regime{"eu", "gdpr", 0.3,
                            std::make_shared<LaplaceNoise>(1.0, 0.5)};
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(regime, seed++));
  }
}
BENCHMARK(BM_RegimeEvaluation);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
