// E2 — flat vs modular (federated) DAO scalability (§III-B, §III-C, §IV-C).
//
// "The flat-based design of several DAOs can hinder the members' involvement
// ... as the number of voting sessions can become cumbersome. We believe that
// DAOs can solve the scalability problems when those are spread across
// (modular approach) different features of the metaverse."
//
// Workload: proposal arrivals proportional to community size (1 proposal per
// 10 members per epoch), 8 governance concerns, each member subscribed to 2.
// Measured: ballot requests per member (the "cumbersome" load) and total
// requests. Paper shape: flat load grows linearly with N; modular load stays
// ~flat at (committee share) x (proposals per member).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "dao/federated.h"

namespace {

using namespace mv;
using namespace mv::dao;

constexpr std::size_t kModules = 8;
/// Committee size cap: modular politics [17] runs concerns through bounded
/// working groups of volunteers, not all-member assemblies.
constexpr std::size_t kCommitteeCap = 100;

DaoConfig fast_config() {
  return DaoConfig{0.1, 0.5, 10, std::make_shared<OneMemberOneVote>()};
}

struct Load {
  double per_member = 0.0;
  std::uint64_t total = 0;
  std::uint64_t escalations = 0;
};

Load run_flat(std::size_t members, std::size_t proposals) {
  Dao dao(fast_config(), Rng(1));
  for (std::size_t i = 1; i <= members; ++i) {
    Member m;
    m.id = AccountId(i);
    (void)dao.members().add(m);
  }
  for (std::size_t p = 0; p < proposals; ++p) {
    (void)dao.propose(AccountId(1 + p % members), ModuleId(0), "p", 0);
  }
  Load load;
  load.per_member = dao.stats().avg_requests_per_member(members);
  load.total = dao.stats().eligible_ballot_requests;
  return load;
}

Load run_modular(std::size_t members, std::size_t proposals, Rng rng) {
  FederatedConfig config;
  config.module_config = fast_config();
  config.global_config = fast_config();
  FederatedDao fed(config, rng.fork());
  std::vector<ModuleId> modules;
  for (std::size_t m = 0; m < kModules; ++m) {
    modules.push_back(fed.create_module("concern-" + std::to_string(m)));
  }
  for (std::size_t i = 1; i <= members; ++i) {
    Member m;
    m.id = AccountId(i);
    (void)fed.enroll(m);
  }
  // Each concern's committee is a bounded random sample of volunteers.
  std::vector<std::vector<AccountId>> committees(kModules);
  const std::size_t committee_size = std::min(kCommitteeCap, members);
  for (std::size_t m = 0; m < kModules; ++m) {
    for (const auto pick : rng.sample_indices(members, committee_size)) {
      const AccountId id(1 + pick);
      (void)fed.subscribe(id, modules[m]);
      committees[m].push_back(id);
    }
  }
  for (std::size_t p = 0; p < proposals; ++p) {
    const std::size_t m = p % kModules;
    // Concerns are raised inside the committee that owns them.
    const AccountId author = committees[m][rng.next_below(committees[m].size())];
    (void)fed.propose(author, modules[m], "p", 0);
  }
  Load load;
  load.per_member = fed.avg_requests_per_member();
  load.total = fed.total_ballot_requests();
  load.escalations = fed.escalations();
  return load;
}

void print_table() {
  std::printf("=== E2: flat vs modular DAO voting load ===\n");
  std::printf("%zu concerns, committees capped at %zu volunteers, proposals = N/10\n\n",
              kModules, kCommitteeCap);
  std::printf("%10s %12s %18s %18s %14s\n", "members", "proposals",
              "flat req/member", "modular req/member", "reduction");
  for (const std::size_t n : {50u, 200u, 1000u, 5000u, 20000u}) {
    const std::size_t proposals = n / 10;
    const Load flat = run_flat(n, proposals);
    const Load modular = run_modular(n, proposals, Rng(7));
    std::printf("%10zu %12zu %18.1f %18.2f %13.1fx\n", n, proposals,
                flat.per_member, modular.per_member,
                modular.per_member > 0 ? flat.per_member / modular.per_member : 0.0);
  }
  std::printf("\nshape: flat load grows ~N/10 (linear, 'cumbersome'); modular\n"
              "load stays ~flat; the gap widens with community size.\n\n");
}

void BM_CastVoteFlat(benchmark::State& state) {
  Dao dao(fast_config(), Rng(2));
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 1; i <= n; ++i) {
    Member m;
    m.id = AccountId(i);
    (void)dao.members().add(m);
  }
  const auto id = dao.propose(AccountId(1), ModuleId(0), "p", 0).value();
  std::uint64_t voter = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dao.cast_vote(id, AccountId(1 + voter++ % n), VoteChoice::kYes, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CastVoteFlat)->Arg(1000)->Arg(100000);

void BM_TallyDelegated(benchmark::State& state) {
  DaoConfig config{0.0, 0.5, 10, std::make_shared<DelegatedVoting>()};
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Dao dao(config, Rng(3));
    for (std::size_t i = 1; i <= n; ++i) {
      Member m;
      m.id = AccountId(i);
      (void)dao.members().add(m);
      if (i > 1) dao.members().set_delegate(AccountId(i), AccountId(1 + i / 2));
    }
    const auto id = dao.propose(AccountId(1), ModuleId(0), "p", 0).value();
    (void)dao.cast_vote(id, AccountId(1), VoteChoice::kYes, 1);
    state.ResumeTiming();
    benchmark::DoNotOptimize(dao.finalize(id, 10));
  }
}
BENCHMARK(BM_TallyDelegated)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
