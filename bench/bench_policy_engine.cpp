// E10 — Figure 3 reproduction: modular regulation with hot-swap (§II-D,
// §III-E).
//
// "If the metaverse is required to follow the local rules, the modules will
// swap accordingly." 10k data-flow events across three regions; halfway
// through, 'california' hot-swaps CCPA → GDPR. Measured: violations caught
// per (region, phase), swap cost, and composed-module coverage.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "policy/engine.h"

namespace {

using namespace mv;
using namespace mv::policy;

DataFlowEvent random_event(Rng& rng, std::uint64_t id) {
  DataFlowEvent e;
  e.id = DataFlowId(id);
  e.subject = rng.next_below(1000);
  e.collector = "platform";
  const char* categories[] = {"gaze", "heart_rate", "spatial_map", "chat"};
  e.category = categories[rng.next_below(4)];
  e.declared_purpose = rng.chance(0.9) ? "service" : "";
  e.purpose = rng.chance(0.85) ? "service" : "advertising";
  e.consent = rng.chance(0.7);
  e.pet_applied = rng.chance(0.6);
  e.sold = rng.chance(0.2);
  e.opt_out_of_sale = rng.chance(0.3);
  e.collected_at = 0;
  e.observed_at = static_cast<Tick>(rng.next_below(24 * 400));
  if (rng.chance(0.1)) {
    e.deletion_requested = true;
    e.deletion_requested_at = e.observed_at / 2;
  }
  if (rng.chance(0.05)) {
    e.breached = true;
    e.breach_at = e.observed_at / 2;
    e.breach_notified = rng.chance(0.5);
    e.breach_notified_at = e.breach_at + static_cast<Tick>(rng.next_below(144));
  }
  return e;
}

void print_table() {
  std::printf("=== E10: modular regulation engine with hot-swap ===\n");
  std::printf("10000 events, 3 regions; at event 5000 'california' swaps ccpa->gdpr\n\n");

  PolicyEngine engine;
  engine.set_region_module("eu", make_gdpr_module());
  engine.set_region_module("california", make_ccpa_module());
  engine.set_default_module(make_baseline_module());

  Rng rng(31337);
  const char* regions[] = {"eu", "california", "atlantis"};
  struct Cell { std::uint64_t events = 0, violations = 0; };
  Cell before[3], after[3];

  const auto swap_start = std::chrono::steady_clock::now();
  std::chrono::nanoseconds swap_cost{0};
  for (std::uint64_t i = 0; i < 10000; ++i) {
    if (i == 5000) {
      const auto t0 = std::chrono::steady_clock::now();
      engine.set_region_module("california", make_gdpr_module());
      swap_cost = std::chrono::steady_clock::now() - t0;
    }
    const std::size_t r = rng.next_below(3);
    const auto violations = engine.audit(regions[r], random_event(rng, i));
    Cell& cell = (i < 5000 ? before : after)[r];
    ++cell.events;
    cell.violations += violations.size();
  }
  (void)swap_start;

  std::printf("%-12s %-10s %10s %14s %18s\n", "region", "phase", "events",
              "violations", "violations/event");
  for (int r = 0; r < 3; ++r) {
    std::printf("%-12s %-10s %10llu %14llu %18.3f\n", regions[r], "before",
                static_cast<unsigned long long>(before[r].events),
                static_cast<unsigned long long>(before[r].violations),
                before[r].events ? static_cast<double>(before[r].violations) /
                                       static_cast<double>(before[r].events)
                                 : 0.0);
    std::printf("%-12s %-10s %10llu %14llu %18.3f\n", regions[r], "after",
                static_cast<unsigned long long>(after[r].events),
                static_cast<unsigned long long>(after[r].violations),
                after[r].events ? static_cast<double>(after[r].violations) /
                                      static_cast<double>(after[r].events)
                                : 0.0);
  }
  std::printf("\nhot-swap cost: %lld ns; module swaps recorded: %llu\n",
              static_cast<long long>(swap_cost.count()),
              static_cast<unsigned long long>(engine.stats().module_swaps));

  // Composition: the "homogeneous policy" catches everything either catches.
  const auto composed = compose(make_gdpr_module(), make_ccpa_module(), "gdpr+ccpa");
  Rng rng2(99);
  std::uint64_t gdpr_v = 0, ccpa_v = 0, both_v = 0;
  const auto gdpr = make_gdpr_module();
  const auto ccpa = make_ccpa_module();
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const auto e = random_event(rng2, i);
    gdpr_v += gdpr->audit(e).size();
    ccpa_v += ccpa->audit(e).size();
    both_v += composed->audit(e).size();
  }
  std::printf("composition over 2000 events: gdpr=%llu ccpa=%llu gdpr+ccpa=%llu"
              " (>= max of parts)\n\n",
              static_cast<unsigned long long>(gdpr_v),
              static_cast<unsigned long long>(ccpa_v),
              static_cast<unsigned long long>(both_v));
  std::printf("shape: california's violation rate jumps to eu's after the swap\n"
              "(GDPR flags consentless collection CCPA tolerated); the unmapped\n"
              "region runs the baseline floor; swap cost is O(1) pointer work.\n\n");
}

void BM_AuditGdpr(benchmark::State& state) {
  const auto gdpr = make_gdpr_module();
  Rng rng(1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gdpr->audit(random_event(rng, i++)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AuditGdpr);

void BM_HotSwap(benchmark::State& state) {
  PolicyEngine engine;
  const auto a = make_gdpr_module();
  const auto b = make_ccpa_module();
  bool flip = false;
  for (auto _ : state) {
    engine.set_region_module("x", flip ? a : b);
    flip = !flip;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HotSwap);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
