// E14 — avatar customization as an equaliser (§IV-B "Equality").
//
// "The metaverse can be seen as an equaliser where gender, race, disability,
// and social status are eliminated. Users can customise their avatars...
// This feature will allow the metaverse to build a fair and more sustainable
// society in the virtual world."
// Measured: outcome gap between attribute groups and the talent-outcome
// correlation under three presentation regimes. Paper shape: with custom
// avatars the group gap collapses and talent becomes the dominant predictor;
// default (mirroring) avatars merely import the physical world's bias.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "world/equality.h"

namespace {

using namespace mv;
using namespace mv::world;

void print_table() {
  std::printf("=== E14: avatar customization as an equaliser ===\n");
  EqualityConfig config;
  std::printf("%zu people, %zu granters (%.0f%% biased, %.0f%% out-group discount), "
              "%zu rounds, 3 seeds\n\n",
              config.people, config.granters, 100 * config.biased_fraction,
              100 * config.bias, config.rounds);
  std::printf("%-18s %18s %20s %14s\n", "regime", "group gap",
              "talent correlation", "mean outcome");
  for (const auto regime :
       {PresentationRegime::kPhysical, PresentationRegime::kDefaultAvatars,
        PresentationRegime::kCustomAvatars}) {
    double gap = 0, talent = 0, mean = 0;
    const int seeds = 3;
    for (int s = 0; s < seeds; ++s) {
      EqualitySim sim(config, Rng(static_cast<std::uint64_t>(900 + s)));
      const auto m = sim.run(regime);
      gap += m.group_outcome_gap / seeds;
      talent += m.talent_correlation / seeds;
      mean += m.mean_outcome / seeds;
    }
    std::printf("%-18s %18.3f %20.3f %14.2f\n", to_string(regime), gap, talent,
                mean);
  }
  std::printf("\nshape: default avatars reproduce the physical gap; custom\n"
              "avatars collapse the group gap toward 0 while talent stays the\n"
              "dominant predictor — the same bias exists but is no longer\n"
              "stratified by who people are.\n\n");
}

void BM_EqualityRound(benchmark::State& state) {
  EqualityConfig config;
  config.people = static_cast<std::size_t>(state.range(0));
  config.rounds = 1;
  for (auto _ : state) {
    EqualitySim sim(config, Rng(7));
    benchmark::DoNotOptimize(sim.run(PresentationRegime::kCustomAvatars));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EqualityRound)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
