// E11 — digital-twin synchronization frontier (§IV-A "Digital twins").
//
// "The metaverse will be then an evolving world that is synchronized with the
// physical one." 1000 twins with drifting + jumping physical state; sync
// strategies swept along their knob (period / threshold). Reported as the
// divergence-vs-bandwidth frontier. Paper shape: threshold (delta) sync
// dominates periodic; on-event sync is cheapest but leaves drift uncorrected.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "twin/twin.h"

namespace {

using namespace mv;
using namespace mv::twin;

constexpr std::size_t kTwins = 1000;
constexpr std::uint64_t kTicks = 2000;

void run_and_print(const char* label, SyncConfig config, std::uint64_t seed) {
  TwinSim sim(kTwins, 3, config, Rng(seed));
  sim.run(kTicks);
  const auto& m = sim.metrics();
  std::printf("%-12s %-14s %16.4f %14.4f %12.3f\n", to_string(config.strategy),
              label, m.message_rate(kTwins, kTicks), m.avg_divergence(),
              m.max_divergence);
}

void print_table() {
  std::printf("=== E11: twin sync — divergence vs bandwidth frontier ===\n");
  std::printf("%zu twins, %llu ticks, drift sigma 0.02, events 1%%/tick @ 2.0\n\n",
              kTwins, static_cast<unsigned long long>(kTicks));
  std::printf("%-12s %-14s %16s %14s %12s\n", "strategy", "knob",
              "msgs/twin/tick", "avg diverg", "max diverg");
  for (const Tick period : {5, 20, 50, 200}) {
    SyncConfig c;
    c.strategy = SyncStrategy::kPeriodic;
    c.period = period;
    run_and_print(("period=" + std::to_string(period)).c_str(), c, 42);
  }
  for (const double threshold : {0.1, 0.3, 0.6, 1.2}) {
    SyncConfig c;
    c.strategy = SyncStrategy::kThreshold;
    c.delta_threshold = threshold;
    run_and_print(("delta=" + std::to_string(threshold).substr(0, 3)).c_str(), c, 42);
  }
  {
    SyncConfig c;
    c.strategy = SyncStrategy::kOnEvent;
    run_and_print("-", c, 42);
  }
  std::printf("\nshape: at matched message rates, threshold sync sits strictly\n"
              "below periodic on average divergence (it spends messages where\n"
              "the state actually moved); on-event misses slow drift entirely.\n\n");
}

void BM_TwinStep(benchmark::State& state) {
  SyncConfig config;
  config.strategy = SyncStrategy::kThreshold;
  TwinSim sim(static_cast<std::size_t>(state.range(0)), 3, config, Rng(1));
  Tick now = 0;
  for (auto _ : state) sim.step(++now);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_TwinStep)->Arg(100)->Arg(1000)->Arg(10000);

void BM_StateDigest(benchmark::State& state) {
  TwinState s;
  s.values.resize(16, 1.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(state_digest(s));
  }
}
BENCHMARK(BM_StateDigest);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
