// Digital twins (§IV-A "Digital twins", bench E11).
//
// "We can define digital twins as virtual objects that are created to reflect
// physical objects... The metaverse will be then an evolving world that is
// synchronized with the physical one." A physical object's state drifts
// (random walk) and occasionally jumps (events: a chair is moved, a photo is
// taken). The twin registry mirrors each object's state under a sync
// strategy, trading synchronization messages (bandwidth) against divergence
// (how stale the virtual copy is). Twin authenticity/origin is anchored by
// hashing states and recording the digest externally (the ledger), per the
// paper's "most straightforward approach... using a digital ledger".
#pragma once

#include <functional>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/stats.h"
#include "crypto/sha256.h"

namespace mv::twin {

struct TwinState {
  std::vector<double> values;
  Tick updated_at = 0;
};

/// Canonical digest of a state — the ledger-anchored authenticity record.
[[nodiscard]] crypto::Digest state_digest(const TwinState& state);

/// L2 distance between two states (same dimensionality).
[[nodiscard]] double state_distance(const TwinState& a, const TwinState& b);

enum class SyncStrategy : std::uint8_t {
  kPeriodic,   ///< push every `period` ticks, changed or not
  kThreshold,  ///< push when divergence exceeds `delta_threshold`
  kOnEvent,    ///< push only when a discrete event (jump) occurred
};

[[nodiscard]] const char* to_string(SyncStrategy strategy);

struct SyncConfig {
  SyncStrategy strategy = SyncStrategy::kPeriodic;
  Tick period = 20;
  double delta_threshold = 0.5;
};

struct TwinMetrics {
  std::uint64_t sync_messages = 0;
  std::uint64_t events = 0;
  double divergence_sum = 0.0;  ///< summed per twin per tick
  std::uint64_t divergence_samples = 0;
  double max_divergence = 0.0;

  [[nodiscard]] double avg_divergence() const {
    return divergence_samples
               ? divergence_sum / static_cast<double>(divergence_samples)
               : 0.0;
  }
  /// Messages per twin per tick — the bandwidth axis of E11.
  [[nodiscard]] double message_rate(std::size_t twins, std::uint64_t ticks) const {
    const double denom = static_cast<double>(twins) * static_cast<double>(ticks);
    return denom > 0 ? static_cast<double>(sync_messages) / denom : 0.0;
  }
};

class TwinSim {
 public:
  using AnchorHook = std::function<void(TwinId, const crypto::Digest&, Tick)>;

  TwinSim(std::size_t twins, std::size_t dims, SyncConfig config, Rng rng,
          double drift_sigma = 0.02, double event_rate = 0.01,
          double event_magnitude = 2.0);

  /// Mirror every sync to an external anchor (e.g. an on-ledger audit record).
  void set_anchor_hook(AnchorHook hook) { anchor_ = std::move(hook); }

  void step(Tick now);
  void run(std::uint64_t ticks);

  [[nodiscard]] const TwinMetrics& metrics() const { return metrics_; }
  [[nodiscard]] std::size_t twin_count() const { return physical_.size(); }
  [[nodiscard]] const TwinState& physical(std::size_t i) const { return physical_[i]; }
  [[nodiscard]] const TwinState& digital(std::size_t i) const { return digital_[i]; }

 private:
  void sync(std::size_t i, Tick now);

  SyncConfig config_;
  Rng rng_;
  double drift_sigma_;
  double event_rate_;
  double event_magnitude_;
  std::vector<TwinState> physical_;
  std::vector<TwinState> digital_;
  std::vector<bool> event_pending_;
  AnchorHook anchor_;
  TwinMetrics metrics_;
  std::uint64_t ticks_run_ = 0;
};

}  // namespace mv::twin
