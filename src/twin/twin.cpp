#include "twin/twin.h"

#include <algorithm>
#include <cmath>

#include "common/bytes.h"

namespace mv::twin {

crypto::Digest state_digest(const TwinState& state) {
  ByteWriter w;
  w.i64(state.updated_at);
  for (const double v : state.values) w.f64(v);
  return crypto::sha256(w.data());
}

double state_distance(const TwinState& a, const TwinState& b) {
  const std::size_t dims = std::min(a.values.size(), b.values.size());
  double sq = 0.0;
  for (std::size_t d = 0; d < dims; ++d) {
    const double diff = a.values[d] - b.values[d];
    sq += diff * diff;
  }
  return std::sqrt(sq);
}

const char* to_string(SyncStrategy strategy) {
  switch (strategy) {
    case SyncStrategy::kPeriodic: return "periodic";
    case SyncStrategy::kThreshold: return "threshold";
    case SyncStrategy::kOnEvent: return "on-event";
  }
  return "?";
}

TwinSim::TwinSim(std::size_t twins, std::size_t dims, SyncConfig config,
                 Rng rng, double drift_sigma, double event_rate,
                 double event_magnitude)
    : config_(config),
      rng_(rng),
      drift_sigma_(drift_sigma),
      event_rate_(event_rate),
      event_magnitude_(event_magnitude) {
  physical_.resize(twins);
  digital_.resize(twins);
  event_pending_.resize(twins, false);
  for (std::size_t i = 0; i < twins; ++i) {
    physical_[i].values.resize(dims);
    for (auto& v : physical_[i].values) v = rng_.uniform(-1.0, 1.0);
    digital_[i] = physical_[i];  // registered in-sync
  }
}

void TwinSim::sync(std::size_t i, Tick now) {
  digital_[i] = physical_[i];
  digital_[i].updated_at = now;
  ++metrics_.sync_messages;
  event_pending_[i] = false;
  if (anchor_) anchor_(TwinId(i), state_digest(digital_[i]), now);
}

void TwinSim::step(Tick now) {
  ++ticks_run_;
  for (std::size_t i = 0; i < physical_.size(); ++i) {
    // Physical evolution: drift plus occasional discrete events.
    for (auto& v : physical_[i].values) v += rng_.normal(0.0, drift_sigma_);
    if (rng_.chance(event_rate_)) {
      ++metrics_.events;
      event_pending_[i] = true;
      const std::size_t dim = rng_.next_below(physical_[i].values.size());
      physical_[i].values[dim] +=
          rng_.chance(0.5) ? event_magnitude_ : -event_magnitude_;
    }
    physical_[i].updated_at = now;

    switch (config_.strategy) {
      case SyncStrategy::kPeriodic:
        if (config_.period > 0 && now % config_.period == 0) sync(i, now);
        break;
      case SyncStrategy::kThreshold:
        if (state_distance(physical_[i], digital_[i]) > config_.delta_threshold) {
          sync(i, now);
        }
        break;
      case SyncStrategy::kOnEvent:
        if (event_pending_[i]) sync(i, now);
        break;
    }

    const double divergence = state_distance(physical_[i], digital_[i]);
    metrics_.divergence_sum += divergence;
    ++metrics_.divergence_samples;
    metrics_.max_divergence = std::max(metrics_.max_divergence, divergence);
  }
}

void TwinSim::run(std::uint64_t ticks) {
  for (std::uint64_t t = 0; t < ticks; ++t) step(static_cast<Tick>(t + 1));
}

}  // namespace mv::twin
