#include "trust/misinformation.h"

#include <algorithm>

namespace mv::trust {

MisinfoSim::MisinfoSim(const SocialGraph& graph, PropagationConfig config,
                       Rng rng, double low_fraction)
    : graph_(graph), config_(config), rng_(rng) {
  credibility_.resize(graph_.size());
  skeptic_.resize(graph_.size());
  for (std::size_t v = 0; v < graph_.size(); ++v) {
    if (rng_.chance(low_fraction)) {
      credibility_[v] = std::clamp(rng_.normal(0.2, 0.08), 0.01, 1.0);
      low_cred_nodes_.push_back(v);
    } else {
      credibility_[v] = std::clamp(rng_.normal(0.7, 0.12), 0.01, 1.0);
    }
    skeptic_[v] = rng_.chance(config_.skeptic_fraction);
  }
  if (low_cred_nodes_.empty()) low_cred_nodes_.push_back(0);
}

CascadeResult MisinfoSim::run() {
  CascadeResult result;
  std::vector<bool> infected(graph_.size(), false);
  std::vector<std::size_t> frontier;

  for (std::size_t s = 0; s < config_.seeds; ++s) {
    const std::size_t seed =
        low_cred_nodes_[rng_.next_below(low_cred_nodes_.size())];
    if (!infected[seed]) {
      infected[seed] = true;
      frontier.push_back(seed);
      ++result.infected;
    }
  }

  int flags = 0;
  bool labeled = false;
  while (!frontier.empty()) {
    ++result.rounds;
    std::vector<std::size_t> next;
    for (const std::size_t v : frontier) {
      double p = config_.base_share_probability;
      if (config_.reputation_weighted) {
        // A rumor reshared by a disreputable avatar is less believable —
        // the receiving client weighs the testimony by the source's score.
        p *= credibility_[v];
      }
      if (labeled) p *= config_.labeled_damping;
      for (const std::size_t u : graph_.neighbors(v)) {
        if (infected[u]) continue;
        if (!rng_.chance(p)) continue;
        infected[u] = true;
        ++result.infected;
        next.push_back(u);
        if (config_.flagging_incentives && skeptic_[u] &&
            rng_.chance(config_.flag_probability)) {
          ++flags;
          ++result.flags;
          if (!labeled && flags >= config_.flags_to_label) {
            labeled = true;  // platform labels the rumor; spread is damped
          }
        }
      }
    }
    frontier = std::move(next);
  }
  result.labeled = labeled;
  return result;
}

}  // namespace mv::trust
