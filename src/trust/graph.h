// Social graphs for propagation experiments (§IV-B Trust).
//
// Two standard generators: Watts-Strogatz (high clustering, short paths —
// friend circles) and Barabasi-Albert (scale-free — influencer hubs). Both
// are undirected simple graphs.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace mv::trust {

class SocialGraph {
 public:
  explicit SocialGraph(std::size_t n) : adjacency_(n) {}

  [[nodiscard]] std::size_t size() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_; }
  [[nodiscard]] const std::vector<std::size_t>& neighbors(std::size_t v) const {
    return adjacency_[v];
  }

  /// Add an undirected edge (ignores self-loops and duplicates).
  void add_edge(std::size_t a, std::size_t b);
  [[nodiscard]] bool has_edge(std::size_t a, std::size_t b) const;

  /// Ring lattice with k nearest neighbours, rewired with probability beta.
  [[nodiscard]] static SocialGraph watts_strogatz(std::size_t n, std::size_t k,
                                                  double beta, Rng& rng);
  /// Preferential attachment, m edges per arriving node.
  [[nodiscard]] static SocialGraph barabasi_albert(std::size_t n, std::size_t m,
                                                   Rng& rng);

 private:
  std::vector<std::vector<std::size_t>> adjacency_;
  std::size_t edges_ = 0;
};

}  // namespace mv::trust
