// Misinformation propagation and trust-based countermeasures (§IV-B Trust,
// bench E5).
//
// "In the metaverse, testimonies and trust will play an even more critical
// role... Incentive systems to share trust among avatars will be key
// functionality to reduce the sharing of misinformation."
//
// Independent-cascade model over a social graph. Each avatar carries a
// credibility score (from the reputation system; misinformation seeds sit in
// the low-credibility tail). Two defences, separately switchable:
//  - reputation weighting: a reshare from a low-credibility avatar is less
//    likely to be believed (edge activation scaled by source credibility);
//  - flagging incentives: skeptical avatars are rewarded for flagging; after
//    enough flags the platform labels the content and all further spread is
//    damped.
#pragma once

#include "common/stats.h"
#include "trust/graph.h"

namespace mv::trust {

struct PropagationConfig {
  double base_share_probability = 0.2;
  bool reputation_weighted = false;
  bool flagging_incentives = false;
  double skeptic_fraction = 0.2;     ///< avatars who may flag on exposure
  double flag_probability = 0.4;     ///< per exposed skeptic
  int flags_to_label = 3;            ///< platform labels after this many flags
  double labeled_damping = 0.25;     ///< share-prob multiplier once labeled
  std::size_t seeds = 5;             ///< initial spreaders (low credibility)
};

struct CascadeResult {
  std::size_t infected = 0;
  std::size_t rounds = 0;
  std::size_t flags = 0;
  bool labeled = false;

  [[nodiscard]] double spread_fraction(std::size_t n) const {
    return n ? static_cast<double>(infected) / static_cast<double>(n) : 0.0;
  }
};

class MisinfoSim {
 public:
  /// Credibilities: bimodal population — most avatars are ordinary (around
  /// 0.7), a `low_fraction` tail is disreputable (around 0.2). Seeds for
  /// cascades are drawn from the tail.
  MisinfoSim(const SocialGraph& graph, PropagationConfig config, Rng rng,
             double low_fraction = 0.15);

  /// Run one independent cascade from `config.seeds` low-credibility seeds.
  [[nodiscard]] CascadeResult run();

  [[nodiscard]] double credibility(std::size_t v) const { return credibility_[v]; }

 private:
  const SocialGraph& graph_;
  PropagationConfig config_;
  Rng rng_;
  std::vector<double> credibility_;
  std::vector<bool> skeptic_;
  std::vector<std::size_t> low_cred_nodes_;
};

}  // namespace mv::trust
