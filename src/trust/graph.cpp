#include "trust/graph.h"

#include <algorithm>

namespace mv::trust {

void SocialGraph::add_edge(std::size_t a, std::size_t b) {
  if (a == b || a >= size() || b >= size() || has_edge(a, b)) return;
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  ++edges_;
}

bool SocialGraph::has_edge(std::size_t a, std::size_t b) const {
  if (a >= size()) return false;
  return std::find(adjacency_[a].begin(), adjacency_[a].end(), b) !=
         adjacency_[a].end();
}

SocialGraph SocialGraph::watts_strogatz(std::size_t n, std::size_t k,
                                        double beta, Rng& rng) {
  SocialGraph g(n);
  // Ring lattice: each node connects to k/2 neighbours on each side.
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t j = 1; j <= k / 2; ++j) {
      g.add_edge(v, (v + j) % n);
    }
  }
  // Rewire each lattice edge with probability beta.
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t j = 1; j <= k / 2; ++j) {
      if (!rng.chance(beta)) continue;
      const std::size_t old_target = (v + j) % n;
      const std::size_t new_target = rng.next_below(n);
      if (new_target == v || g.has_edge(v, new_target)) continue;
      // Remove (v, old_target) and add (v, new_target).
      auto& av = g.adjacency_[v];
      auto& at = g.adjacency_[old_target];
      const auto iv = std::find(av.begin(), av.end(), old_target);
      const auto it = std::find(at.begin(), at.end(), v);
      if (iv == av.end() || it == at.end()) continue;
      av.erase(iv);
      at.erase(it);
      --g.edges_;
      g.add_edge(v, new_target);
    }
  }
  return g;
}

SocialGraph SocialGraph::barabasi_albert(std::size_t n, std::size_t m, Rng& rng) {
  SocialGraph g(n);
  if (n == 0) return g;
  const std::size_t seed_size = std::max<std::size_t>(m, 2);
  // Seed clique.
  for (std::size_t a = 0; a < std::min(seed_size, n); ++a) {
    for (std::size_t b = a + 1; b < std::min(seed_size, n); ++b) {
      g.add_edge(a, b);
    }
  }
  // Degree-proportional attachment via the endpoint-list trick.
  std::vector<std::size_t> endpoints;
  for (std::size_t v = 0; v < std::min(seed_size, n); ++v) {
    for (const auto u : g.neighbors(v)) {
      (void)u;
      endpoints.push_back(v);
    }
  }
  for (std::size_t v = seed_size; v < n; ++v) {
    std::size_t added = 0;
    std::size_t guard = 0;
    while (added < m && guard++ < 100 * m) {
      const std::size_t target =
          endpoints.empty() ? rng.next_below(v)
                            : endpoints[rng.next_below(endpoints.size())];
      if (target == v || g.has_edge(v, target)) continue;
      g.add_edge(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
      ++added;
    }
  }
  return g;
}

}  // namespace mv::trust
