#include "world/world.h"

namespace mv::world {

const char* to_string(InteractionKind kind) {
  switch (kind) {
    case InteractionKind::kChat: return "chat";
    case InteractionKind::kGesture: return "gesture";
    case InteractionKind::kTrade: return "trade";
    case InteractionKind::kHarass: return "harass";
  }
  return "?";
}

SpaceId World::create_space(double width, double height) {
  const SpaceId id = space_ids_.next();
  spaces_.emplace(id, Space{id, width, height});
  return id;
}

const Space* World::space(SpaceId id) const {
  const auto it = spaces_.find(id);
  return it == spaces_.end() ? nullptr : &it->second;
}

void World::set_space_access(SpaceId id, bool public_access,
                             std::uint64_t land_token) {
  const auto it = spaces_.find(id);
  if (it == spaces_.end()) return;
  it->second.public_access = public_access;
  it->second.land_token = land_token;
}

Status World::enter(AvatarId avatar_id, SpaceId space_id, Vec2 pos) {
  Avatar* a = avatar_mutable(avatar_id);
  if (a == nullptr) {
    return Status::fail("world.no_such_avatar", "unknown avatar");
  }
  const Space* s = space(space_id);
  if (s == nullptr) {
    return Status::fail("world.no_such_space", "unknown space");
  }
  if (!s->public_access) {
    if (!oracle_ || !oracle_(a->owner, s->land_token)) {
      return Status::fail("world.land_gated",
                          "owner does not hold the land token");
    }
  }
  a->space = space_id;
  a->pos = pos;
  return {};
}

AvatarId World::spawn_primary(std::uint64_t owner, SpaceId space, Vec2 pos) {
  const AvatarId id = avatar_ids_.next();
  Avatar a;
  a.id = id;
  a.owner = owner;
  a.space = space;
  a.pos = pos;
  avatars_.emplace(id, std::move(a));
  return id;
}

Result<AvatarId> World::spawn_secondary(AvatarId primary, Vec2 pos) {
  const Avatar* base = avatar(primary);
  if (base == nullptr) {
    return make_error("world.no_such_avatar", "unknown primary avatar");
  }
  const AvatarId id = avatar_ids_.next();
  Avatar a;
  a.id = id;
  a.owner = base->owner;
  a.secondary = true;
  a.space = base->space;
  a.pos = pos;
  avatars_.emplace(id, std::move(a));
  return id;
}

const Avatar* World::avatar(AvatarId id) const {
  const auto it = avatars_.find(id);
  return it == avatars_.end() ? nullptr : &it->second;
}

Avatar* World::avatar_mutable(AvatarId id) {
  const auto it = avatars_.find(id);
  return it == avatars_.end() ? nullptr : &it->second;
}

void World::move(AvatarId id, Vec2 pos) {
  if (Avatar* a = avatar_mutable(id); a != nullptr) a->pos = pos;
}

void World::wander(AvatarId id) {
  Avatar* a = avatar_mutable(id);
  if (a == nullptr) return;
  const Space* s = space(a->space);
  if (s == nullptr) return;
  a->pos = {rng_.uniform(0.0, s->width), rng_.uniform(0.0, s->height)};
}

void World::set_bubble(AvatarId id, bool on, double radius) {
  if (Avatar* a = avatar_mutable(id); a != nullptr) {
    a->bubble_on = on;
    a->bubble_radius = radius;
  }
}

void World::allow_in_bubble(AvatarId id, AvatarId friend_id) {
  if (Avatar* a = avatar_mutable(id); a != nullptr) {
    a->bubble_allow.insert(friend_id);
  }
}

bool World::bubble_blocks(const Avatar& target, const Avatar& actor) const {
  if (!target.bubble_on) return false;
  if (target.bubble_allow.contains(actor.id)) return false;
  return distance(target.pos, actor.pos) <= target.bubble_radius;
}

std::vector<AvatarId> World::visible_to(AvatarId viewer, double range) const {
  std::vector<AvatarId> out;
  const Avatar* v = avatar(viewer);
  if (v == nullptr) return out;
  for (const auto& [id, a] : avatars_) {
    if (id == viewer || a.space != v->space) continue;
    if (distance(a.pos, v->pos) > range) continue;
    // Inside someone's bubble you don't get visual access to them (§II-B).
    if (bubble_blocks(a, *v)) continue;
    out.push_back(id);
  }
  return out;
}

std::vector<AvatarId> World::eavesdroppers(AvatarId from, AvatarId to,
                                           double earshot) const {
  std::vector<AvatarId> out;
  const Avatar* speaker = avatar(from);
  if (speaker == nullptr) return out;
  for (const auto& [id, a] : avatars_) {
    if (id == from || id == to || a.space != speaker->space) continue;
    if (distance(a.pos, speaker->pos) <= earshot) out.push_back(id);
  }
  return out;
}

Status World::interact(AvatarId from, AvatarId to, InteractionKind kind,
                       Tick now, double reach) {
  ++stats_.interactions_attempted;
  const Avatar* actor = avatar(from);
  const Avatar* target = avatar(to);
  if (actor == nullptr || target == nullptr) {
    return Status::fail("world.no_such_avatar", "unknown avatar");
  }
  if (actor->space != target->space ||
      distance(actor->pos, target->pos) > reach) {
    ++stats_.blocked_by_range;
    return Status::fail("world.out_of_range", "target not nearby");
  }
  if (bubble_blocks(*target, *actor)) {
    ++stats_.blocked_by_bubble;
    return Status::fail("world.bubble", "target's privacy bubble vetoed this");
  }
  log_.push_back(Interaction{from, to, kind, now});
  ++stats_.interactions_delivered;
  return {};
}

}  // namespace mv::world
