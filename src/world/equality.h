// The equality experiment (§IV-B "Equality", bench E14).
//
// "The metaverse can be seen as an equaliser where gender, race, disability,
// and social status are eliminated. Users can customise their avatars, where
// their imagination is the limit."
//
// Agent model: each person carries immutable real-world attributes and a
// talent score (independent of attributes). Opportunity granters (employers,
// collaborators, audiences) are biased: they discount candidates whose
// *visible* attributes differ from their own in-group. Three presentation
// regimes are compared on the same population:
//  - kPhysical        real attributes are always visible (offline baseline)
//  - kDefaultAvatars  avatars mirror their owners (biased metaverse)
//  - kCustomAvatars   avatars are freely chosen → visible attributes carry
//                     no information about real ones (the paper's equaliser)
// Measured: how much of outcome variance is explained by attributes vs by
// talent (correlations), and the outcome gap between attribute groups.
#pragma once

#include <vector>

#include "common/rng.h"

namespace mv::world {

enum class PresentationRegime : std::uint8_t {
  kPhysical,
  kDefaultAvatars,
  kCustomAvatars,
};

[[nodiscard]] const char* to_string(PresentationRegime regime);

struct EqualityConfig {
  std::size_t people = 2000;
  std::size_t granters = 200;
  std::size_t rounds = 30;
  /// Attribute groups (a flattened proxy for the paper's gender/race/
  /// disability/status axes).
  std::size_t groups = 4;
  /// Out-group discount applied by a biased granter in [0,1).
  double bias = 0.5;
  /// Fraction of granters who are biased at all.
  double biased_fraction = 0.7;
};

struct EqualityMetrics {
  /// Pearson correlation of outcomes with talent and with group membership
  /// (group encoded as in-group share of granters — the structural axis).
  double talent_correlation = 0.0;
  double group_outcome_gap = 0.0;  ///< (best group mean - worst) / overall mean
  double mean_outcome = 0.0;
};

class EqualitySim {
 public:
  EqualitySim(EqualityConfig config, Rng rng);

  [[nodiscard]] EqualityMetrics run(PresentationRegime regime);

 private:
  struct Person {
    std::size_t group = 0;          ///< real-world attribute group
    std::size_t visible_group = 0;  ///< what granters see (regime-dependent)
    double talent = 0.5;
    double outcome = 0.0;
  };

  struct Granter {
    std::size_t group = 0;
    bool biased = false;
  };

  EqualityConfig config_;
  Rng rng_;
  std::vector<Person> people_;
  std::vector<Granter> granters_;
};

}  // namespace mv::world
