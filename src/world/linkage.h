// Behavioural linkage attack on secondary avatars (§II-B, bench E8).
//
// "Other avatars in the metaverse cannot recognise the real owner of this
// secondary avatar and, therefore, cannot infer any behavioural information"
// — that is the *claim*; this attacker tests it. Each user has a latent
// interest profile over K activity categories. Sessions played through an
// avatar produce an activity histogram. The attacker observes per-avatar
// histograms (public traces) and matches each secondary avatar to the
// primary whose behaviour looks most similar. Users can defend by blending
// their clone's behaviour toward the population average (behaviour_noise).
#pragma once

#include <array>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace mv::world {

inline constexpr std::size_t kActivityCategories = 12;

using InterestProfile = std::array<double, kActivityCategories>;  // sums to 1

/// Dirichlet-ish sparse interest profile.
[[nodiscard]] InterestProfile sample_profile(Rng& rng);

struct SessionTrace {
  AvatarId avatar;
  std::array<std::uint32_t, kActivityCategories> counts{};
};

/// Simulate a session of `actions` activities through an avatar.
/// `noise` in [0,1] blends the sampling distribution toward uniform —
/// the §II-B defence of hiding one's behaviour when using a clone.
[[nodiscard]] SessionTrace play_session(AvatarId avatar,
                                        const InterestProfile& profile,
                                        std::size_t actions, double noise,
                                        Rng& rng);

/// Normalized histogram of a trace.
[[nodiscard]] InterestProfile trace_histogram(const SessionTrace& trace);

/// Cosine similarity of two profiles.
[[nodiscard]] double profile_similarity(const InterestProfile& a,
                                        const InterestProfile& b);

/// The attack: for a probe histogram (a secondary avatar's trace), return the
/// index of the most similar enrolled histogram (primary avatars).
[[nodiscard]] std::size_t link_to_primary(
    const InterestProfile& probe, const std::vector<InterestProfile>& primaries);

}  // namespace mv::world
