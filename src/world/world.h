// The virtual world: avatars, spaces, proximity interactions, privacy
// bubbles, and secondary (clone) avatars (§II-B).
//
// Two §II-B defences are first-class citizens:
//  - privacy bubbles "restrict visual access with other avatars outside the
//    bubble" — here they also veto unsolicited proximity interactions from
//    non-authorized avatars (the Horizon Worlds design);
//  - secondary avatars let a user act without the actions accruing to their
//    primary identity; the world keeps the owner mapping as ground truth but
//    never exposes it through the public query API (linkage.h plays the
//    attacker who tries to reconstruct it).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/rng.h"
#include "world/geometry.h"

namespace mv::world {

enum class InteractionKind : std::uint8_t { kChat, kGesture, kTrade, kHarass };

[[nodiscard]] const char* to_string(InteractionKind kind);

struct Interaction {
  AvatarId from;
  AvatarId to;
  InteractionKind kind = InteractionKind::kChat;
  Tick at = 0;
};

struct Avatar {
  AvatarId id;
  std::uint64_t owner = 0;  ///< ground truth; not exposed via public queries
  bool secondary = false;
  SpaceId space;
  Vec2 pos;
  bool bubble_on = false;
  double bubble_radius = 1.5;
  std::set<AvatarId> bubble_allow;  ///< friends allowed inside the bubble
};

struct Space {
  SpaceId id;
  double width = 50.0;
  double height = 50.0;
  /// §IV-A: "Decentraland uses NFTs to manage the game's virtual lands."
  /// A gated space admits only avatars whose owner holds `land_token`
  /// (checked through the access oracle — typically the NFT registry).
  bool public_access = true;
  std::uint64_t land_token = 0;
};

struct WorldStats {
  std::uint64_t interactions_attempted = 0;
  std::uint64_t interactions_delivered = 0;
  std::uint64_t blocked_by_bubble = 0;
  std::uint64_t blocked_by_range = 0;
};

class World {
 public:
  explicit World(Rng rng) : rng_(rng) {}

  SpaceId create_space(double width, double height);
  [[nodiscard]] const Space* space(SpaceId id) const;

  /// Ownership oracle: does `user` hold `land_token`? Wired to the NFT
  /// registry by the platform (core::Metaverse); unset = all gates closed.
  using AccessOracle = std::function<bool(std::uint64_t user, std::uint64_t land_token)>;
  void set_access_oracle(AccessOracle oracle) { oracle_ = std::move(oracle); }

  /// Gate a space behind a land token (or reopen it).
  void set_space_access(SpaceId id, bool public_access, std::uint64_t land_token = 0);

  /// Move an avatar into a space; gated spaces require the oracle to confirm
  /// the avatar's owner holds the land token.
  [[nodiscard]] Status enter(AvatarId avatar, SpaceId space, Vec2 pos);

  /// Create a user's primary avatar in a space at a position.
  AvatarId spawn_primary(std::uint64_t owner, SpaceId space, Vec2 pos);
  /// Create a clone avatar for the same owner (§II-B "secondary avatars").
  [[nodiscard]] Result<AvatarId> spawn_secondary(AvatarId primary, Vec2 pos);

  [[nodiscard]] const Avatar* avatar(AvatarId id) const;
  [[nodiscard]] Avatar* avatar_mutable(AvatarId id);
  [[nodiscard]] std::size_t avatar_count() const { return avatars_.size(); }

  void move(AvatarId id, Vec2 pos);
  /// Uniform random reposition within the avatar's space.
  void wander(AvatarId id);

  void set_bubble(AvatarId id, bool on, double radius = 1.5);
  void allow_in_bubble(AvatarId id, AvatarId friend_id);

  /// Avatars visible to `viewer`: same space, within `range`, and not hidden
  /// from the viewer by an active privacy bubble.
  [[nodiscard]] std::vector<AvatarId> visible_to(AvatarId viewer, double range) const;

  /// Attempt a proximity interaction. Fails when out of range (> reach) or
  /// vetoed by the target's privacy bubble.
  [[nodiscard]] Status interact(AvatarId from, AvatarId to, InteractionKind kind,
                                Tick now, double reach = 2.0);

  /// Interactions delivered to or sent by an avatar (its public trace —
  /// what an eavesdropper in the same space can reconstruct).
  [[nodiscard]] const std::vector<Interaction>& log() const { return log_; }

  /// §II-B: "the metadata inherent in any social interaction with other
  /// avatars (e.g., conversations, reactions) presents privacy risks."
  /// Returns the third parties within `earshot` of the speaker who observe
  /// that `from` interacted with `to`. Privacy bubbles do NOT hide a public
  /// interaction from bystanders outside the bubble — they restrict access,
  /// not observation; this is the residual leak the paper warns about.
  [[nodiscard]] std::vector<AvatarId> eavesdroppers(AvatarId from, AvatarId to,
                                                    double earshot) const;

  [[nodiscard]] const WorldStats& stats() const { return stats_; }

 private:
  [[nodiscard]] bool bubble_blocks(const Avatar& target, const Avatar& actor) const;

  Rng rng_;
  AccessOracle oracle_;
  std::map<AvatarId, Avatar> avatars_;
  std::map<SpaceId, Space> spaces_;
  IdAllocator<AvatarId> avatar_ids_;
  IdAllocator<SpaceId> space_ids_;
  std::vector<Interaction> log_;
  WorldStats stats_;
};

}  // namespace mv::world
