// Mass-event crowd dissemination (§IV-B "Accessibility", bench E15).
//
// "The metaverse can enable many social events that are not possible
// physically — for example, concerts with millions of people worldwide."
// What makes that *possible* is interest management: no client can receive
// (or render) a million avatar streams. This substrate compares
//  - naive broadcast: every client receives every other avatar's update;
//  - interest grid: a spatial hash delivers only avatars inside the client's
//    area of interest, capped at the client's render budget (nearest-first).
// Measured: updates per client per tick (client bandwidth) and candidate
// pairs examined (server work).
#pragma once

#include <vector>

#include "common/rng.h"
#include "world/geometry.h"

namespace mv::world {

enum class DisseminationMode : std::uint8_t { kNaiveBroadcast, kInterestGrid };

[[nodiscard]] const char* to_string(DisseminationMode mode);

struct CrowdConfig {
  double arena_width = 200.0;
  double arena_height = 200.0;
  double aoi_radius = 10.0;      ///< area-of-interest radius
  std::size_t render_cap = 64;   ///< max avatar streams a client renders
  double walk_speed = 0.5;
  DisseminationMode mode = DisseminationMode::kInterestGrid;
};

struct CrowdMetrics {
  std::uint64_t ticks = 0;
  std::uint64_t updates_delivered = 0;  ///< avatar updates sent to clients
  std::uint64_t pairs_examined = 0;     ///< server-side candidate checks
  std::uint64_t capped_clients = 0;     ///< clients that hit the render cap

  [[nodiscard]] double updates_per_client_tick(std::size_t clients) const {
    const double denom = static_cast<double>(clients) * static_cast<double>(ticks);
    return denom > 0 ? static_cast<double>(updates_delivered) / denom : 0.0;
  }
};

class CrowdSim {
 public:
  CrowdSim(std::size_t attendees, CrowdConfig config, Rng rng);

  void step();
  void run(std::size_t ticks);

  [[nodiscard]] const CrowdMetrics& metrics() const { return metrics_; }
  [[nodiscard]] std::size_t size() const { return positions_.size(); }

  /// Avatars delivered to client `i` this tick (post-cap) — exposed for
  /// verification against brute force in tests.
  [[nodiscard]] std::vector<std::size_t> interest_set(std::size_t client) const;

 private:
  void rebuild_grid();
  [[nodiscard]] std::vector<std::size_t> grid_candidates(std::size_t client) const;

  CrowdConfig config_;
  Rng rng_;
  std::vector<Vec2> positions_;
  std::vector<Vec2> waypoints_;
  // Spatial hash: cell size = aoi radius; cells_[cy * cols + cx] = indices.
  std::size_t cols_ = 0;
  std::size_t rows_ = 0;
  std::vector<std::vector<std::size_t>> cells_;
  CrowdMetrics metrics_;
};

}  // namespace mv::world
