#include "world/equality.h"

#include <algorithm>
#include <cmath>

namespace mv::world {

const char* to_string(PresentationRegime regime) {
  switch (regime) {
    case PresentationRegime::kPhysical: return "physical";
    case PresentationRegime::kDefaultAvatars: return "default-avatars";
    case PresentationRegime::kCustomAvatars: return "custom-avatars";
  }
  return "?";
}

EqualitySim::EqualitySim(EqualityConfig config, Rng rng)
    : config_(config), rng_(rng) {
  people_.resize(config_.people);
  // Group sizes are deliberately unequal (majority/minority structure).
  for (auto& p : people_) {
    const double u = rng_.uniform();
    p.group = u < 0.5 ? 0 : (u < 0.75 ? 1 : (u < 0.9 ? 2 : 3));
    p.group = std::min(p.group, config_.groups - 1);
    p.talent = rng_.uniform();
  }
  granters_.resize(config_.granters);
  for (auto& g : granters_) {
    // Granter demographics mirror the majority structure — that is what
    // makes out-group discounting structural rather than symmetric.
    const double u = rng_.uniform();
    g.group = u < 0.6 ? 0 : (u < 0.85 ? 1 : 2);
    g.group = std::min(g.group, config_.groups - 1);
    g.biased = rng_.chance(config_.biased_fraction);
  }
}

EqualityMetrics EqualitySim::run(PresentationRegime regime) {
  // Reset outcomes and assign visible identity per regime.
  for (auto& p : people_) {
    p.outcome = 0.0;
    switch (regime) {
      case PresentationRegime::kPhysical:
      case PresentationRegime::kDefaultAvatars:
        // Default avatars mirror their owner — §IV-B's missed opportunity.
        p.visible_group = p.group;
        break;
      case PresentationRegime::kCustomAvatars:
        // Free customization: visible identity is the user's choice and
        // carries no information about real attributes ("they can be a cat").
        p.visible_group = rng_.next_below(config_.groups);
        break;
    }
  }

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    for (auto& p : people_) {
      const Granter& g = granters_[rng_.next_below(granters_.size())];
      double score = p.talent + rng_.normal(0.0, 0.1);
      if (g.biased && g.group != p.visible_group) {
        score *= (1.0 - config_.bias);
      }
      if (score > 0.45) p.outcome += 1.0;  // opportunity granted
    }
  }

  // Metrics.
  EqualityMetrics m;
  double mean_outcome = 0.0, mean_talent = 0.0;
  for (const auto& p : people_) {
    mean_outcome += p.outcome;
    mean_talent += p.talent;
  }
  mean_outcome /= static_cast<double>(people_.size());
  mean_talent /= static_cast<double>(people_.size());
  m.mean_outcome = mean_outcome;

  double cov = 0.0, var_o = 0.0, var_t = 0.0;
  for (const auto& p : people_) {
    cov += (p.outcome - mean_outcome) * (p.talent - mean_talent);
    var_o += (p.outcome - mean_outcome) * (p.outcome - mean_outcome);
    var_t += (p.talent - mean_talent) * (p.talent - mean_talent);
  }
  m.talent_correlation =
      (var_o > 0 && var_t > 0) ? cov / std::sqrt(var_o * var_t) : 0.0;

  std::vector<double> group_sum(config_.groups, 0.0);
  std::vector<std::size_t> group_n(config_.groups, 0);
  for (const auto& p : people_) {
    group_sum[p.group] += p.outcome;
    ++group_n[p.group];
  }
  double best = 0.0, worst = 1e18;
  for (std::size_t g = 0; g < config_.groups; ++g) {
    if (group_n[g] == 0) continue;
    const double avg = group_sum[g] / static_cast<double>(group_n[g]);
    best = std::max(best, avg);
    worst = std::min(worst, avg);
  }
  m.group_outcome_gap = mean_outcome > 0 ? (best - worst) / mean_outcome : 0.0;
  return m;
}

}  // namespace mv::world
