// Minimal 2D geometry shared by the world and safety modules.
#pragma once

#include <cmath>

namespace mv::world {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double s) { return {a.x * s, a.y * s}; }
  friend constexpr Vec2 operator*(double s, Vec2 a) { return a * s; }

  [[nodiscard]] double norm() const { return std::sqrt(x * x + y * y); }
  [[nodiscard]] Vec2 normalized() const {
    const double n = norm();
    return n > 1e-12 ? Vec2{x / n, y / n} : Vec2{};
  }
};

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

}  // namespace mv::world
