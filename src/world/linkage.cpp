#include "world/linkage.h"

#include <cmath>

namespace mv::world {

InterestProfile sample_profile(Rng& rng) {
  // Sparse interests: exponential weights renormalized; a few categories
  // dominate, which is what makes behaviour identifying.
  InterestProfile p{};
  double sum = 0.0;
  for (auto& v : p) {
    v = std::pow(rng.uniform(), 3.0);  // skew toward small with a heavy head
    sum += v;
  }
  for (auto& v : p) v /= sum;
  return p;
}

SessionTrace play_session(AvatarId avatar, const InterestProfile& profile,
                          std::size_t actions, double noise, Rng& rng) {
  SessionTrace trace;
  trace.avatar = avatar;
  const double uniform = 1.0 / static_cast<double>(kActivityCategories);
  // Blended categorical distribution.
  InterestProfile blended{};
  for (std::size_t k = 0; k < kActivityCategories; ++k) {
    blended[k] = (1.0 - noise) * profile[k] + noise * uniform;
  }
  for (std::size_t a = 0; a < actions; ++a) {
    double u = rng.uniform();
    std::size_t k = 0;
    while (k + 1 < kActivityCategories && u > blended[k]) {
      u -= blended[k];
      ++k;
    }
    ++trace.counts[k];
  }
  return trace;
}

InterestProfile trace_histogram(const SessionTrace& trace) {
  InterestProfile h{};
  double total = 0.0;
  for (const auto c : trace.counts) total += c;
  if (total == 0.0) return h;
  for (std::size_t k = 0; k < kActivityCategories; ++k) {
    h[k] = static_cast<double>(trace.counts[k]) / total;
  }
  return h;
}

double profile_similarity(const InterestProfile& a, const InterestProfile& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t k = 0; k < kActivityCategories; ++k) {
    dot += a[k] * b[k];
    na += a[k] * a[k];
    nb += b[k] * b[k];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

std::size_t link_to_primary(const InterestProfile& probe,
                            const std::vector<InterestProfile>& primaries) {
  std::size_t best = 0;
  double best_sim = -1.0;
  for (std::size_t i = 0; i < primaries.size(); ++i) {
    const double sim = profile_similarity(probe, primaries[i]);
    if (sim > best_sim) {
      best_sim = sim;
      best = i;
    }
  }
  return best;
}

}  // namespace mv::world
