#include "world/crowd.h"

#include <algorithm>
#include <cmath>

namespace mv::world {

const char* to_string(DisseminationMode mode) {
  switch (mode) {
    case DisseminationMode::kNaiveBroadcast: return "naive-broadcast";
    case DisseminationMode::kInterestGrid: return "interest-grid";
  }
  return "?";
}

CrowdSim::CrowdSim(std::size_t attendees, CrowdConfig config, Rng rng)
    : config_(config), rng_(rng) {
  positions_.resize(attendees);
  waypoints_.resize(attendees);
  for (std::size_t i = 0; i < attendees; ++i) {
    positions_[i] = {rng_.uniform(0.0, config_.arena_width),
                     rng_.uniform(0.0, config_.arena_height)};
    waypoints_[i] = {rng_.uniform(0.0, config_.arena_width),
                     rng_.uniform(0.0, config_.arena_height)};
  }
  cols_ = static_cast<std::size_t>(
              std::ceil(config_.arena_width / config_.aoi_radius)) +
          1;
  rows_ = static_cast<std::size_t>(
              std::ceil(config_.arena_height / config_.aoi_radius)) +
          1;
  cells_.resize(cols_ * rows_);
}

void CrowdSim::rebuild_grid() {
  for (auto& cell : cells_) cell.clear();
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const auto cx = static_cast<std::size_t>(positions_[i].x / config_.aoi_radius);
    const auto cy = static_cast<std::size_t>(positions_[i].y / config_.aoi_radius);
    cells_[std::min(cy, rows_ - 1) * cols_ + std::min(cx, cols_ - 1)].push_back(i);
  }
}

std::vector<std::size_t> CrowdSim::grid_candidates(std::size_t client) const {
  std::vector<std::size_t> out;
  const auto cx = static_cast<std::ptrdiff_t>(positions_[client].x / config_.aoi_radius);
  const auto cy = static_cast<std::ptrdiff_t>(positions_[client].y / config_.aoi_radius);
  for (std::ptrdiff_t dy = -1; dy <= 1; ++dy) {
    for (std::ptrdiff_t dx = -1; dx <= 1; ++dx) {
      const std::ptrdiff_t x = cx + dx;
      const std::ptrdiff_t y = cy + dy;
      if (x < 0 || y < 0 || x >= static_cast<std::ptrdiff_t>(cols_) ||
          y >= static_cast<std::ptrdiff_t>(rows_)) {
        continue;
      }
      const auto& cell = cells_[static_cast<std::size_t>(y) * cols_ +
                                static_cast<std::size_t>(x)];
      out.insert(out.end(), cell.begin(), cell.end());
    }
  }
  return out;
}

std::vector<std::size_t> CrowdSim::interest_set(std::size_t client) const {
  std::vector<std::pair<double, std::size_t>> in_range;
  for (const std::size_t j : grid_candidates(client)) {
    if (j == client) continue;
    const double d = distance(positions_[client], positions_[j]);
    if (d <= config_.aoi_radius) in_range.emplace_back(d, j);
  }
  if (in_range.size() > config_.render_cap) {
    std::nth_element(in_range.begin(),
                     in_range.begin() + static_cast<std::ptrdiff_t>(config_.render_cap),
                     in_range.end());
    in_range.resize(config_.render_cap);
  }
  std::vector<std::size_t> out;
  out.reserve(in_range.size());
  for (const auto& [d, j] : in_range) out.push_back(j);
  return out;
}

void CrowdSim::step() {
  ++metrics_.ticks;
  // Movement: waypoint walk.
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    if (distance(positions_[i], waypoints_[i]) < 1.0) {
      waypoints_[i] = {rng_.uniform(0.0, config_.arena_width),
                       rng_.uniform(0.0, config_.arena_height)};
    }
    positions_[i] =
        positions_[i] +
        (waypoints_[i] - positions_[i]).normalized() * config_.walk_speed;
  }

  const std::size_t n = positions_.size();
  if (config_.mode == DisseminationMode::kNaiveBroadcast) {
    // Every client receives every other avatar's update; the server touches
    // every ordered pair. Counted in closed form — actually enumerating
    // 10^9 pairs would only prove the point slowly.
    metrics_.updates_delivered += static_cast<std::uint64_t>(n) * (n - 1);
    metrics_.pairs_examined += static_cast<std::uint64_t>(n) * (n - 1);
    return;
  }

  rebuild_grid();
  for (std::size_t i = 0; i < n; ++i) {
    const auto candidates = grid_candidates(i);
    metrics_.pairs_examined += candidates.size();
    std::size_t delivered = 0;
    // Count in-range neighbours up to the render cap (nearest-first
    // selection only matters when the cap binds).
    std::vector<double> distances;
    for (const std::size_t j : candidates) {
      if (j == i) continue;
      const double d = distance(positions_[i], positions_[j]);
      if (d <= config_.aoi_radius) distances.push_back(d);
    }
    if (distances.size() > config_.render_cap) {
      ++metrics_.capped_clients;
      delivered = config_.render_cap;
    } else {
      delivered = distances.size();
    }
    metrics_.updates_delivered += delivered;
  }
}

void CrowdSim::run(std::size_t ticks) {
  for (std::size_t t = 0; t < ticks; ++t) step();
}

}  // namespace mv::world
