#include "safety/room.h"

#include <algorithm>
#include <cmath>

namespace mv::safety {

const char* to_string(Intervention intervention) {
  switch (intervention) {
    case Intervention::kNone: return "none";
    case Intervention::kShadowAvatars: return "shadow_avatars";
    case Intervention::kRedirectedWalking: return "redirected_walking";
    case Intervention::kChaperone: return "chaperone";
  }
  return "?";
}

double time_to_collision(Vec2 pos_a, Vec2 vel_a, double ra, Vec2 pos_b,
                         Vec2 vel_b, double rb) {
  // Solve |(p + v t)| = R for the relative motion, R = ra + rb.
  const Vec2 p = pos_b - pos_a;
  const Vec2 v = vel_b - vel_a;
  const double radius = ra + rb;
  const double c = p.x * p.x + p.y * p.y - radius * radius;
  if (c <= 0.0) return 0.0;  // already overlapping
  const double a = v.x * v.x + v.y * v.y;
  if (a < 1e-12) return -1.0;  // no relative motion
  const double b = 2.0 * (p.x * v.x + p.y * v.y);
  const double disc = b * b - 4.0 * a * c;
  if (disc < 0.0) return -1.0;  // paths never meet
  const double t = (-b - std::sqrt(disc)) / (2.0 * a);
  return t >= 0.0 ? t : -1.0;  // negative root = receding
}

RoomSim::RoomSim(RoomConfig config, Rng rng)
    : config_(config), rng_(rng) {
  users_.resize(config_.users);
  for (auto& u : users_) {
    u.pos = {rng_.uniform(1.0, config_.width - 1.0),
             rng_.uniform(1.0, config_.height - 1.0)};
    pick_waypoint(u);
  }
  obstacles_.reserve(config_.obstacles);
  for (std::size_t i = 0; i < config_.obstacles; ++i) {
    obstacles_.push_back(Obstacle{{rng_.uniform(1.0, config_.width - 1.0),
                                   rng_.uniform(1.0, config_.height - 1.0)},
                                  config_.obstacle_radius});
  }
}

void RoomSim::pick_waypoint(User& user) {
  user.waypoint = {rng_.uniform(0.5, config_.width - 0.5),
                   rng_.uniform(0.5, config_.height - 0.5)};
}

Vec2 RoomSim::steering(std::size_t self) const {
  const User& u = users_[self];
  const Vec2 desired = (u.waypoint - u.pos).normalized();
  if (config_.intervention == Intervention::kNone ||
      config_.intervention == Intervention::kChaperone) {
    // HMD fully occludes the room; the user walks blind toward the target.
    // (Chaperone acts as a hard stop in step(), not as steering.)
    return desired;
  }

  Vec2 repulsion{};
  const auto add_repulsion = [&](Vec2 hazard, double hazard_radius, double range) {
    const Vec2 away = u.pos - hazard;
    const double d = away.norm() - hazard_radius - config_.user_radius;
    if (d < range && d > -0.5) {
      const double strength =
          config_.repulsion_gain * (1.0 / std::max(d, 0.05) - 1.0 / range);
      repulsion = repulsion + away.normalized() * std::max(0.0, strength);
    }
  };

  if (config_.intervention == Intervention::kShadowAvatars) {
    // Only other *users* become visible (they are rendered as shadows);
    // furniture stays occluded — exactly the scope of [12].
    for (std::size_t j = 0; j < users_.size(); ++j) {
      if (j == self) continue;
      if (world::distance(u.pos, users_[j].pos) <= config_.shadow_range) {
        add_repulsion(users_[j].pos, config_.user_radius, config_.shadow_range);
      }
    }
  } else {  // kRedirectedWalking: full potential field [13]
    for (std::size_t j = 0; j < users_.size(); ++j) {
      if (j == self) continue;
      add_repulsion(users_[j].pos, config_.user_radius, config_.repulsion_range);
    }
    for (const auto& ob : obstacles_) {
      add_repulsion(ob.pos, ob.radius, config_.repulsion_range);
    }
    // Walls as four half-plane repulsors.
    add_repulsion({0.0, u.pos.y}, 0.0, config_.repulsion_range);
    add_repulsion({config_.width, u.pos.y}, 0.0, config_.repulsion_range);
    add_repulsion({u.pos.x, 0.0}, 0.0, config_.repulsion_range);
    add_repulsion({u.pos.x, config_.height}, 0.0, config_.repulsion_range);
  }
  return (desired + repulsion).normalized();
}

void RoomSim::detect_collisions(std::size_t self) {
  User& u = users_[self];
  if (u.collision_cooldown > 0) {
    --u.collision_cooldown;
    return;
  }
  bool collided = false;
  for (std::size_t j = self + 1; j < users_.size(); ++j) {
    if (world::distance(u.pos, users_[j].pos) < 2.0 * config_.user_radius) {
      ++metrics_.user_user_collisions;
      collided = true;
      break;
    }
  }
  if (!collided) {
    for (const auto& ob : obstacles_) {
      if (world::distance(u.pos, ob.pos) < config_.user_radius + ob.radius) {
        ++metrics_.user_obstacle_collisions;
        collided = true;
        break;
      }
    }
  }
  if (!collided) {
    if (u.pos.x < config_.user_radius || u.pos.x > config_.width - config_.user_radius ||
        u.pos.y < config_.user_radius || u.pos.y > config_.height - config_.user_radius) {
      ++metrics_.wall_hits;
      collided = true;
    }
  }
  if (collided) {
    // A real bump: the user notices, stops, and re-orients. Cooldown keeps
    // one physical event from counting on every subsequent tick.
    u.collision_cooldown = 20;
    pick_waypoint(u);
  }
}

void RoomSim::step() {
  ++metrics_.ticks;
  for (std::size_t i = 0; i < users_.size(); ++i) {
    User& u = users_[i];
    if (world::distance(u.pos, u.waypoint) < 0.3) pick_waypoint(u);

    // Shadow-avatar pop-in accounting (edge detection).
    if (config_.intervention == Intervention::kShadowAvatars) {
      bool visible = false;
      for (std::size_t j = 0; j < users_.size(); ++j) {
        if (j != i &&
            world::distance(u.pos, users_[j].pos) <= config_.shadow_range) {
          visible = true;
          break;
        }
      }
      if (visible && !u.shadow_visible) metrics_.disruption += 1.0;
      u.shadow_visible = visible;
    }

    if (config_.intervention == Intervention::kChaperone) {
      // Hard stop when any hazard is inside the chaperone range.
      bool hazard = false;
      for (std::size_t j = 0; j < users_.size() && !hazard; ++j) {
        hazard = j != i && world::distance(u.pos, users_[j].pos) <
                               config_.chaperone_range + 2.0 * config_.user_radius;
      }
      for (const auto& ob : obstacles_) {
        if (hazard) break;
        hazard = world::distance(u.pos, ob.pos) <
                 config_.chaperone_range + config_.user_radius + ob.radius;
      }
      if (!hazard) {
        hazard = u.pos.x < config_.chaperone_range ||
                 u.pos.x > config_.width - config_.chaperone_range ||
                 u.pos.y < config_.chaperone_range ||
                 u.pos.y > config_.height - config_.chaperone_range;
      }
      if (hazard) {
        if (!u.stopped) {
          metrics_.disruption += 1.0;  // the grid popped up
          pick_waypoint(u);            // user turns elsewhere
        }
        u.stopped = true;
        continue;  // no movement this tick
      }
      u.stopped = false;
    }

    const Vec2 desired = (u.waypoint - u.pos).normalized();
    const Vec2 heading = steering(i);
    if (config_.intervention == Intervention::kRedirectedWalking) {
      // Continuous disruption: how far the field bent the intended path.
      const double dot = std::clamp(
          desired.x * heading.x + desired.y * heading.y, -1.0, 1.0);
      metrics_.disruption += std::acos(dot) / 50.0;  // radians, scaled per tick
    }
    u.pos = u.pos + heading * config_.walk_speed;
    u.pos.x = std::clamp(u.pos.x, 0.0, config_.width);
    u.pos.y = std::clamp(u.pos.y, 0.0, config_.height);
    metrics_.distance_walked += config_.walk_speed;

    detect_collisions(i);
  }
}

void RoomSim::run(std::size_t ticks) {
  for (std::size_t t = 0; t < ticks; ++t) step();
}

}  // namespace mv::safety
