// Physical-safety simulation (§II-C, bench E6).
//
// SUBSTITUTION NOTE (DESIGN.md §4): no physical rooms or humans, so this is a
// 2D kinematic simulation of co-located VR users. Users walk between virtual
// waypoints while their HMD occludes the physical room (they do NOT see
// obstacles or each other). Interventions are the actual algorithms the paper
// cites:
//  - Shadow avatars (Langbehn et al. [12]): nearby physical users pop into
//    the virtual view as ghosts; the walker steers around them.
//  - Redirected walking via artificial potential fields (Bachmann et
//    al. [13]): continuous repulsive forces from walls, obstacles, and other
//    users bend the walking path.
//  - Chaperone grid: a hard proximity warning that stops the user.
// Each intervention trades collisions against immersion disruption, which is
// exactly the comparison bench E6 reports.
#pragma once

#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "world/geometry.h"

namespace mv::safety {

using world::Vec2;

struct Obstacle {
  Vec2 pos;
  double radius = 0.4;
};

enum class Intervention : std::uint8_t {
  kNone,
  kShadowAvatars,
  kRedirectedWalking,
  kChaperone,
};

[[nodiscard]] const char* to_string(Intervention intervention);

/// Time (in ticks) until two constant-velocity discs of radii ra/rb first
/// touch, or a negative value when they never will. The predictive primitive
/// behind proactive warnings ("display the physical objects in the virtual
/// world in case of possible collisions", §II-C).
[[nodiscard]] double time_to_collision(Vec2 pos_a, Vec2 vel_a, double ra,
                                       Vec2 pos_b, Vec2 vel_b, double rb);

struct RoomConfig {
  double width = 10.0;
  double height = 10.0;
  std::size_t users = 4;
  std::size_t obstacles = 6;
  double user_radius = 0.3;
  double obstacle_radius = 0.4;
  double walk_speed = 0.14;  ///< metres per tick (1.4 m/s at 10 Hz)
  Intervention intervention = Intervention::kNone;
  /// Shadow avatars: distance at which another user becomes visible.
  double shadow_range = 1.5;
  /// Potential fields: repulsion influence range and gain.
  double repulsion_range = 1.5;
  double repulsion_gain = 0.8;
  /// Chaperone: hard-stop distance to any hazard.
  double chaperone_range = 0.6;
};

struct SafetyMetrics {
  std::uint64_t ticks = 0;
  std::uint64_t user_user_collisions = 0;
  std::uint64_t user_obstacle_collisions = 0;
  std::uint64_t wall_hits = 0;
  double distance_walked = 0.0;
  /// Immersion disruption: shadow pop-ins (1.0 each), chaperone stops (1.0
  /// each), and accumulated redirection angle (radians, continuous).
  double disruption = 0.0;

  [[nodiscard]] std::uint64_t total_collisions() const {
    return user_user_collisions + user_obstacle_collisions + wall_hits;
  }
  /// Collisions per 100 m walked — the headline E6 number.
  [[nodiscard]] double collisions_per_100m() const {
    return distance_walked > 0.0
               ? static_cast<double>(total_collisions()) * 100.0 / distance_walked
               : 0.0;
  }
};

class RoomSim {
 public:
  RoomSim(RoomConfig config, Rng rng);

  /// Advance one tick (all users move once).
  void step();
  void run(std::size_t ticks);

  [[nodiscard]] const SafetyMetrics& metrics() const { return metrics_; }
  [[nodiscard]] const RoomConfig& config() const { return config_; }
  [[nodiscard]] Vec2 user_position(std::size_t i) const { return users_[i].pos; }

 private:
  struct User {
    Vec2 pos;
    Vec2 waypoint;
    Tick collision_cooldown = 0;
    bool shadow_visible = false;  ///< edge-detect pop-ins
    bool stopped = false;         ///< chaperone hold
  };

  void pick_waypoint(User& user);
  [[nodiscard]] Vec2 steering(std::size_t self) const;
  void detect_collisions(std::size_t self);

  RoomConfig config_;
  Rng rng_;
  std::vector<User> users_;
  std::vector<Obstacle> obstacles_;
  SafetyMetrics metrics_;
};

}  // namespace mv::safety
