// Voting schemes (§III-B, §III-C).
//
// The paper surveys DAO voting as "usually flat and fully democratized" and
// points at scalability and involvement problems. The scheme is a strategy
// object so a Dao (or a module of a federated DAO) can swap it: one person one
// vote, token-weighted, quadratic, reputation-weighted, liquid delegation, and
// sortition juries.
#pragma once

#include <memory>
#include <string>

#include "common/rng.h"
#include "dao/member.h"
#include "dao/proposal.h"

namespace mv::dao {

class VotingScheme {
 public:
  virtual ~VotingScheme() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Weight a ballot of the given intensity contributes. May mutate the
  /// member (quadratic voting spends voice credits). Fails when the member
  /// cannot cast the ballot (e.g. credits exhausted).
  [[nodiscard]] virtual Result<double> ballot_weight(Member& member,
                                                     double intensity) const = 0;

  /// Weight a member contributes to the quorum denominator.
  [[nodiscard]] virtual double base_weight(const Member& member) const = 0;

  /// Sortition hook: pick the jury for a new proposal; empty = everyone.
  [[nodiscard]] virtual std::set<AccountId> select_jury(
      const MemberRegistry& members, Rng& rng) const {
    (void)members;
    (void)rng;
    return {};
  }

  /// Liquid-democracy hook: when true, the tally routes non-voters' weight
  /// along delegation chains.
  [[nodiscard]] virtual bool supports_delegation() const { return false; }
};

/// Flat, fully democratized: one member, one vote.
class OneMemberOneVote final : public VotingScheme {
 public:
  [[nodiscard]] std::string name() const override { return "1m1v"; }
  [[nodiscard]] Result<double> ballot_weight(Member&, double) const override {
    return 1.0;
  }
  [[nodiscard]] double base_weight(const Member&) const override { return 1.0; }
};

/// Plutocratic: weight equals governance-token holdings.
class TokenWeighted final : public VotingScheme {
 public:
  [[nodiscard]] std::string name() const override { return "token"; }
  [[nodiscard]] Result<double> ballot_weight(Member& m, double) const override {
    return static_cast<double>(m.tokens);
  }
  [[nodiscard]] double base_weight(const Member& m) const override {
    return static_cast<double>(m.tokens);
  }
};

/// Quadratic voting: casting intensity v costs v^2 voice credits.
class QuadraticVoting final : public VotingScheme {
 public:
  [[nodiscard]] std::string name() const override { return "quadratic"; }
  [[nodiscard]] Result<double> ballot_weight(Member& m, double intensity) const override;
  [[nodiscard]] double base_weight(const Member&) const override { return 1.0; }
};

/// Reputation-weighted (the paper's §IV-C reputation system feeding votes).
class ReputationWeighted final : public VotingScheme {
 public:
  [[nodiscard]] std::string name() const override { return "reputation"; }
  [[nodiscard]] Result<double> ballot_weight(Member& m, double) const override {
    return std::max(0.0, m.reputation);
  }
  [[nodiscard]] double base_weight(const Member& m) const override {
    return std::max(0.0, m.reputation);
  }
};

/// Liquid democracy: non-voters' unit weight flows along delegation chains.
class DelegatedVoting final : public VotingScheme {
 public:
  [[nodiscard]] std::string name() const override { return "delegated"; }
  [[nodiscard]] Result<double> ballot_weight(Member&, double) const override {
    return 1.0;  // direct ballots count once; delegated weight added at tally
  }
  [[nodiscard]] double base_weight(const Member&) const override { return 1.0; }
  [[nodiscard]] bool supports_delegation() const override { return true; }
};

/// Sortition: a random jury of fixed size decides on behalf of everyone —
/// the paper's "juries, formal debates" processes from modular politics [17].
class SortitionJury final : public VotingScheme {
 public:
  explicit SortitionJury(std::size_t jury_size) : jury_size_(jury_size) {}
  [[nodiscard]] std::string name() const override { return "sortition"; }
  [[nodiscard]] Result<double> ballot_weight(Member&, double) const override {
    return 1.0;
  }
  [[nodiscard]] double base_weight(const Member&) const override { return 1.0; }
  [[nodiscard]] std::set<AccountId> select_jury(const MemberRegistry& members,
                                                Rng& rng) const override;

 private:
  std::size_t jury_size_;
};

}  // namespace mv::dao
