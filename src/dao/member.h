// DAO membership registry.
//
// Members carry the resources the different voting schemes weigh: governance
// tokens (token-weighted), voice credits (quadratic), reputation
// (reputation-weighted), and an optional standing delegate (liquid
// democracy).
#pragma once

#include <map>
#include <optional>

#include "common/ids.h"
#include "common/result.h"

namespace mv::dao {

struct Member {
  AccountId id;
  std::uint64_t tokens = 1;
  double voice_credits = 100.0;  ///< quadratic-voting budget
  double reputation = 1.0;
  std::optional<AccountId> delegate;  ///< standing delegation target
};

class MemberRegistry {
 public:
  /// Add a member; fails on duplicate id.
  [[nodiscard]] Status add(Member member);
  [[nodiscard]] const Member* find(AccountId id) const;
  [[nodiscard]] Member* find_mutable(AccountId id);
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] const std::map<AccountId, Member>& all() const { return members_; }

  /// Resolve a delegation chain to its terminal delegatee. Cycles and broken
  /// links resolve to the starting member (self-representation fallback).
  [[nodiscard]] AccountId resolve_delegate(AccountId id) const;

  void set_delegate(AccountId who, std::optional<AccountId> target);

 private:
  std::map<AccountId, Member> members_;
};

}  // namespace mv::dao
