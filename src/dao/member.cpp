#include "dao/member.h"

#include <unordered_set>

namespace mv::dao {

Status MemberRegistry::add(Member member) {
  if (!member.id.valid()) {
    return Status::fail("dao.invalid_member", "member id is invalid");
  }
  const auto [it, inserted] = members_.emplace(member.id, member);
  (void)it;
  if (!inserted) {
    return Status::fail("dao.duplicate_member", "member already registered");
  }
  return {};
}

const Member* MemberRegistry::find(AccountId id) const {
  const auto it = members_.find(id);
  return it == members_.end() ? nullptr : &it->second;
}

Member* MemberRegistry::find_mutable(AccountId id) {
  const auto it = members_.find(id);
  return it == members_.end() ? nullptr : &it->second;
}

AccountId MemberRegistry::resolve_delegate(AccountId id) const {
  std::unordered_set<AccountId> visited;
  AccountId current = id;
  while (true) {
    if (!visited.insert(current).second) return id;  // cycle → self
    const Member* m = find(current);
    if (m == nullptr) return id;  // broken link → self
    if (!m->delegate.has_value()) return current;
    current = *m->delegate;
  }
}

void MemberRegistry::set_delegate(AccountId who, std::optional<AccountId> target) {
  if (Member* m = find_mutable(who); m != nullptr) m->delegate = target;
}

}  // namespace mv::dao
