// DaoContract: governance as a smart contract hosted on the ledger.
//
// "Decentralized autonomous organizations (DAOs) are based on Blockchain and
// smart contract technologies" (§III-B). This contract keeps membership,
// proposals, and ballots in on-chain contract storage, so governance actions
// are ordinary signed transactions: transparent, replicated, and auditable by
// every platform member. One member, one vote (the "flat, fully
// democratized" baseline).
//
// Methods (args are ByteWriter-encoded):
//   join()                         — register the caller as a member
//   propose(title: str)            — open a proposal; returns id via store
//   vote(id: u64, choice: u8)      — cast yes(0)/no(1)/abstain(2)
//   finalize(id: u64)              — close after the voting period elapsed
#pragma once

#include <string>

#include "ledger/state.h"

namespace mv::dao {

struct DaoContractConfig {
  std::string name = "dao";
  std::int64_t voting_period_blocks = 10;
  double quorum = 0.2;
  double pass_threshold = 0.5;
  /// Token-weighted mode: a ballot weighs the caller's on-chain balance at
  /// vote time (the plutocratic DAO the paper contrasts with flat 1m1v).
  /// Quorum is then measured against total weight cast rather than members.
  bool token_weighted = false;
};

enum class OnChainStatus : std::uint8_t { kVoting = 0, kPassed = 1, kRejected = 2 };

class DaoContract final : public ledger::Contract {
 public:
  explicit DaoContract(DaoContractConfig config) : config_(std::move(config)) {}

  [[nodiscard]] std::string name() const override { return config_.name; }
  [[nodiscard]] Status call(ledger::CallContext& ctx, const std::string& method,
                            const Bytes& args) const override;

  // ---- read-side helpers (inspect a committed state) ----
  [[nodiscard]] static std::uint64_t member_count(const ledger::LedgerState& state,
                                                  const std::string& contract);
  [[nodiscard]] static std::uint64_t proposal_count(const ledger::LedgerState& state,
                                                    const std::string& contract);
  struct ProposalView {
    std::string title;
    crypto::Address author;
    std::int64_t created_height = 0;
    OnChainStatus status = OnChainStatus::kVoting;
    std::uint64_t yes = 0;
    std::uint64_t no = 0;
    std::uint64_t abstain = 0;
  };
  [[nodiscard]] static Result<ProposalView> proposal(
      const ledger::LedgerState& state, const std::string& contract,
      std::uint64_t id);

  // ---- argument encoders for clients ----
  [[nodiscard]] static Bytes encode_propose(const std::string& title);
  [[nodiscard]] static Bytes encode_vote(std::uint64_t id, std::uint8_t choice);
  [[nodiscard]] static Bytes encode_finalize(std::uint64_t id);

 private:
  Status do_join(ledger::CallContext& ctx) const;
  Status do_propose(ledger::CallContext& ctx, const Bytes& args) const;
  Status do_vote(ledger::CallContext& ctx, const Bytes& args) const;
  Status do_finalize(ledger::CallContext& ctx, const Bytes& args) const;

  DaoContractConfig config_;
};

}  // namespace mv::dao
