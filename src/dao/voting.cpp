#include "dao/voting.h"

#include <vector>

namespace mv::dao {

Result<double> QuadraticVoting::ballot_weight(Member& m, double intensity) const {
  if (intensity <= 0.0) {
    return make_error("dao.bad_intensity", "intensity must be positive");
  }
  const double cost = intensity * intensity;
  if (m.voice_credits < cost) {
    return make_error("dao.no_credits",
                      "quadratic cost " + std::to_string(cost) +
                          " exceeds remaining credits");
  }
  m.voice_credits -= cost;
  return intensity;
}

std::set<AccountId> SortitionJury::select_jury(const MemberRegistry& members,
                                               Rng& rng) const {
  std::vector<AccountId> ids;
  ids.reserve(members.size());
  for (const auto& [id, member] : members.all()) ids.push_back(id);
  if (ids.size() <= jury_size_) return {ids.begin(), ids.end()};
  std::set<AccountId> jury;
  for (const auto idx : rng.sample_indices(ids.size(), jury_size_)) {
    jury.insert(ids[idx]);
  }
  return jury;
}

}  // namespace mv::dao
