#include "dao/dao.h"

namespace mv::dao {

Dao::Dao(DaoConfig config, Rng rng)
    : config_(std::move(config)), rng_(rng) {}

Result<ProposalId> Dao::propose(AccountId author, ModuleId scope,
                                std::string title, Tick now) {
  if (members_.find(author) == nullptr) {
    return make_error("dao.not_a_member", "author is not a member");
  }
  Proposal p;
  p.id = proposal_ids_.next();
  p.scope = scope;
  p.author = author;
  p.title = std::move(title);
  p.created_at = now;
  p.voting_ends = now + config_.voting_period;
  if (config_.commit_reveal) {
    p.reveal_ends = p.voting_ends + config_.reveal_period;
  }
  p.jury = config_.scheme->select_jury(members_, rng_);

  ++stats_.proposals_created;
  stats_.eligible_ballot_requests +=
      p.jury.empty() ? members_.size() : p.jury.size();

  const ProposalId id = p.id;
  proposals_.emplace(id, std::move(p));
  return id;
}

Status Dao::record_ballot(Proposal& p, AccountId voter, VoteChoice choice,
                          Tick now, double intensity) {
  Member* member = members_.find_mutable(voter);
  if (member == nullptr) {
    return Status::fail("dao.not_a_member", "voter is not a member");
  }
  if (!p.jury.empty() && !p.jury.contains(voter)) {
    return Status::fail("dao.not_on_jury", "sortition jury excludes voter");
  }
  if (p.ballots.contains(voter)) {
    return Status::fail("dao.double_vote", "ballot already cast");
  }
  auto weight = config_.scheme->ballot_weight(*member, intensity);
  if (!weight.ok()) return Status::fail(weight.error().code, weight.error().message);

  p.ballots.emplace(voter, Ballot{choice, weight.value(), now});
  ++stats_.ballots_cast;
  return {};
}

Status Dao::cast_vote(ProposalId id, AccountId voter, VoteChoice choice,
                      Tick now, double intensity) {
  if (config_.commit_reveal) {
    return Status::fail("dao.sealed_ballots",
                        "this DAO runs commit/reveal voting");
  }
  const auto it = proposals_.find(id);
  if (it == proposals_.end()) {
    return Status::fail("dao.no_such_proposal", "unknown proposal");
  }
  Proposal& p = it->second;
  if (!p.open(now)) {
    return Status::fail("dao.voting_closed", "proposal is not open");
  }
  return record_ballot(p, voter, choice, now, intensity);
}

crypto::Digest Dao::make_commitment(VoteChoice choice, std::uint64_t salt,
                                    AccountId voter) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(choice));
  w.u64(salt);
  w.u64(voter.value());
  return crypto::sha256(w.data());
}

Status Dao::commit_vote(ProposalId id, AccountId voter,
                        const crypto::Digest& commitment, Tick now) {
  if (!config_.commit_reveal) {
    return Status::fail("dao.not_sealed", "this DAO runs plain voting");
  }
  const auto it = proposals_.find(id);
  if (it == proposals_.end()) {
    return Status::fail("dao.no_such_proposal", "unknown proposal");
  }
  Proposal& p = it->second;
  if (!p.open(now)) {
    return Status::fail("dao.voting_closed", "commit window is over");
  }
  if (members_.find(voter) == nullptr) {
    return Status::fail("dao.not_a_member", "voter is not a member");
  }
  if (!p.jury.empty() && !p.jury.contains(voter)) {
    return Status::fail("dao.not_on_jury", "sortition jury excludes voter");
  }
  if (p.commitments.contains(voter)) {
    return Status::fail("dao.double_vote", "commitment already filed");
  }
  p.commitments.emplace(voter, commitment);
  return {};
}

Status Dao::reveal_vote(ProposalId id, AccountId voter, VoteChoice choice,
                        std::uint64_t salt, Tick now, double intensity) {
  if (!config_.commit_reveal) {
    return Status::fail("dao.not_sealed", "this DAO runs plain voting");
  }
  const auto it = proposals_.find(id);
  if (it == proposals_.end()) {
    return Status::fail("dao.no_such_proposal", "unknown proposal");
  }
  Proposal& p = it->second;
  if (p.status != ProposalStatus::kVoting || now < p.voting_ends) {
    return Status::fail("dao.reveal_closed", "reveal window not open yet");
  }
  if (now >= p.reveal_ends) {
    return Status::fail("dao.reveal_closed", "reveal window is over");
  }
  const auto commitment = p.commitments.find(voter);
  if (commitment == p.commitments.end()) {
    return Status::fail("dao.no_commitment", "no sealed ballot on file");
  }
  if (make_commitment(choice, salt, voter) != commitment->second) {
    return Status::fail("dao.bad_reveal", "reveal does not match commitment");
  }
  return record_ballot(p, voter, choice, now, intensity);
}

double Dao::eligible_weight(const Proposal& p) const {
  double total = 0.0;
  if (!p.jury.empty()) {
    for (const AccountId id : p.jury) {
      if (const Member* m = members_.find(id); m != nullptr) {
        total += config_.scheme->base_weight(*m);
      }
    }
    return total;
  }
  for (const auto& [id, member] : members_.all()) {
    total += config_.scheme->base_weight(member);
  }
  return total;
}

void Dao::tally_delegations(Proposal& p) const {
  // Route each non-voter's unit weight along their delegation chain; it lands
  // on the terminal delegatee's ballot if that delegatee voted directly.
  for (const auto& [id, member] : members_.all()) {
    if (p.ballots.contains(id)) continue;
    const AccountId rep = members_.resolve_delegate(id);
    if (rep == id) continue;
    const auto ballot = p.ballots.find(rep);
    if (ballot == p.ballots.end()) continue;
    switch (ballot->second.choice) {
      case VoteChoice::kYes: p.tally.yes += 1.0; break;
      case VoteChoice::kNo: p.tally.no += 1.0; break;
      case VoteChoice::kAbstain: p.tally.abstain += 1.0; break;
    }
  }
}

Result<ProposalStatus> Dao::finalize(ProposalId id, Tick now) {
  const auto it = proposals_.find(id);
  if (it == proposals_.end()) {
    return make_error("dao.no_such_proposal", "unknown proposal");
  }
  Proposal& p = it->second;
  if (p.status != ProposalStatus::kVoting) {
    return make_error("dao.already_finalized", "proposal is closed");
  }
  const Tick closes = config_.commit_reveal ? p.reveal_ends : p.voting_ends;
  if (now < closes) {
    return make_error("dao.voting_open", "voting/reveal window not over");
  }

  p.tally = Tally{};
  p.tally.eligible_weight = eligible_weight(p);
  for (const auto& [voter, ballot] : p.ballots) {
    switch (ballot.choice) {
      case VoteChoice::kYes: p.tally.yes += ballot.weight; break;
      case VoteChoice::kNo: p.tally.no += ballot.weight; break;
      case VoteChoice::kAbstain: p.tally.abstain += ballot.weight; break;
    }
  }
  if (config_.scheme->supports_delegation()) tally_delegations(p);

  const bool quorate = p.tally.turnout() >= config_.quorum;
  const bool majority = p.tally.yes_share() > config_.pass_threshold;
  p.status = (quorate && majority) ? ProposalStatus::kPassed
                                   : ProposalStatus::kRejected;
  if (p.status == ProposalStatus::kPassed && executor_) {
    executor_(p);
    p.status = ProposalStatus::kExecuted;
  }
  return p.status;
}

std::size_t Dao::finalize_due(Tick now) {
  std::size_t done = 0;
  for (auto& [id, p] : proposals_) {
    const Tick closes = config_.commit_reveal ? p.reveal_ends : p.voting_ends;
    if (p.status == ProposalStatus::kVoting && now >= closes) {
      if (finalize(id, now).ok()) ++done;
    }
  }
  return done;
}

const Proposal* Dao::find(ProposalId id) const {
  const auto it = proposals_.find(id);
  return it == proposals_.end() ? nullptr : &it->second;
}

}  // namespace mv::dao
