#include "dao/contract.h"

#include <cmath>

namespace mv::dao {

namespace {

std::string member_key(crypto::Address a) {
  return "member/" + std::to_string(a.value);
}
std::string meta_key(std::uint64_t id) {
  return "prop/" + std::to_string(id) + "/meta";
}
std::string vote_prefix(std::uint64_t id) {
  return "prop/" + std::to_string(id) + "/vote/";
}
std::string vote_key(std::uint64_t id, crypto::Address a) {
  return vote_prefix(id) + std::to_string(a.value);
}

Bytes encode_u64(std::uint64_t v) {
  ByteWriter w;
  w.u64(v);
  return w.take();
}

std::uint64_t read_u64(const Bytes* bytes, std::uint64_t fallback = 0) {
  if (bytes == nullptr) return fallback;
  ByteReader r(*bytes);
  auto v = r.u64();
  return v.ok() ? v.value() : fallback;
}

struct Meta {
  std::string title;
  std::uint64_t author = 0;
  std::int64_t created_height = 0;
  std::uint8_t status = 0;

  [[nodiscard]] Bytes encode() const {
    ByteWriter w;
    w.str(title);
    w.u64(author);
    w.i64(created_height);
    w.u8(status);
    return w.take();
  }

  [[nodiscard]] static Result<Meta> decode(const Bytes& bytes) {
    ByteReader r(bytes);
    Meta m;
    auto title = r.str();
    if (!title.ok()) return title.error();
    m.title = title.value();
    auto author = r.u64();
    if (!author.ok()) return author.error();
    m.author = author.value();
    auto height = r.i64();
    if (!height.ok()) return height.error();
    m.created_height = height.value();
    auto status = r.u8();
    if (!status.ok()) return status.error();
    m.status = status.value();
    return m;
  }
};

struct BallotRecord {
  std::uint8_t choice = 0;
  std::uint64_t weight = 1;
};

std::optional<BallotRecord> decode_ballot(const Bytes& bytes) {
  ByteReader r(bytes);
  auto choice = r.u8();
  if (!choice.ok() || choice.value() > 2) return std::nullopt;
  BallotRecord record;
  record.choice = choice.value();
  if (auto weight = r.u64(); weight.ok()) record.weight = weight.value();
  return record;
}

}  // namespace

Status DaoContract::call(ledger::CallContext& ctx, const std::string& method,
                         const Bytes& args) const {
  if (method == "join") return do_join(ctx);
  if (method == "propose") return do_propose(ctx, args);
  if (method == "vote") return do_vote(ctx, args);
  if (method == "finalize") return do_finalize(ctx, args);
  return Status::fail(errc::kDaoUnknownMethod, method);
}

Status DaoContract::do_join(ledger::CallContext& ctx) const {
  const std::string key = member_key(ctx.caller());
  if (ctx.get(key) != nullptr) {
    return Status::fail(errc::kDaoAlreadyMember, "caller already joined");
  }
  ctx.put(key, encode_u64(1));
  ctx.put("member_count", encode_u64(read_u64(ctx.get("member_count")) + 1));
  return {};
}

Status DaoContract::do_propose(ledger::CallContext& ctx, const Bytes& args) const {
  if (ctx.get(member_key(ctx.caller())) == nullptr) {
    return Status::fail(errc::kDaoNotAMember, "join first");
  }
  ByteReader r(args);
  auto title = r.str();
  if (!title.ok()) return Status::fail(errc::kDaoBadArgs, "missing title");

  const std::uint64_t id = read_u64(ctx.get("next_id"));
  ctx.put("next_id", encode_u64(id + 1));

  Meta meta;
  meta.title = title.value();
  meta.author = ctx.caller().value;
  meta.created_height = ctx.height();
  meta.status = static_cast<std::uint8_t>(OnChainStatus::kVoting);
  ctx.put(meta_key(id), meta.encode());
  return {};
}

Status DaoContract::do_vote(ledger::CallContext& ctx, const Bytes& args) const {
  if (ctx.get(member_key(ctx.caller())) == nullptr) {
    return Status::fail(errc::kDaoNotAMember, "join first");
  }
  ByteReader r(args);
  auto id = r.u64();
  auto choice = r.u8();
  if (!id.ok() || !choice.ok() || choice.value() > 2) {
    return Status::fail(errc::kDaoBadArgs, "vote(id: u64, choice: 0|1|2)");
  }
  const Bytes* meta_bytes = ctx.get(meta_key(id.value()));
  if (meta_bytes == nullptr) {
    return Status::fail(errc::kDaoNoSuchProposal, "unknown proposal");
  }
  auto meta = Meta::decode(*meta_bytes);
  if (!meta.ok()) return Status::fail(errc::kDaoCorruptMeta, "meta undecodable");
  if (meta.value().status != static_cast<std::uint8_t>(OnChainStatus::kVoting)) {
    return Status::fail(errc::kDaoVotingClosed, "proposal finalized");
  }
  if (ctx.height() >= meta.value().created_height + config_.voting_period_blocks) {
    return Status::fail(errc::kDaoVotingClosed, "voting period elapsed");
  }
  const std::string key = vote_key(id.value(), ctx.caller());
  if (ctx.get(key) != nullptr) {
    return Status::fail(errc::kDaoDoubleVote, "ballot already cast");
  }
  // Ballot record: choice + weight. Weight is the caller's balance at vote
  // time under token weighting, 1 otherwise.
  const std::uint64_t weight =
      config_.token_weighted ? std::max<std::uint64_t>(1, ctx.balance(ctx.caller()))
                             : 1;
  ByteWriter w;
  w.u8(choice.value());
  w.u64(weight);
  ctx.put(key, w.take());
  return {};
}

Status DaoContract::do_finalize(ledger::CallContext& ctx, const Bytes& args) const {
  ByteReader r(args);
  auto id = r.u64();
  if (!id.ok()) return Status::fail(errc::kDaoBadArgs, "finalize(id: u64)");
  const Bytes* meta_bytes = ctx.get(meta_key(id.value()));
  if (meta_bytes == nullptr) {
    return Status::fail(errc::kDaoNoSuchProposal, "unknown proposal");
  }
  auto meta_result = Meta::decode(*meta_bytes);
  if (!meta_result.ok()) return Status::fail(errc::kDaoCorruptMeta, "meta undecodable");
  Meta meta = meta_result.value();
  if (meta.status != static_cast<std::uint8_t>(OnChainStatus::kVoting)) {
    return Status::fail(errc::kDaoAlreadyFinalized, "proposal closed");
  }
  if (ctx.height() < meta.created_height + config_.voting_period_blocks) {
    return Status::fail(errc::kDaoVotingOpen, "voting period not over");
  }

  double counts[3] = {0, 0, 0};
  std::uint64_t voters = 0;
  for (const auto& key : ctx.keys_with_prefix(vote_prefix(id.value()))) {
    const Bytes* ballot = ctx.get(key);
    if (ballot == nullptr) continue;
    const auto record = decode_ballot(*ballot);
    if (!record.has_value()) continue;
    counts[record->choice] += static_cast<double>(record->weight);
    ++voters;
  }
  // Turnout: head-count fraction of members (weight-independent, so whales
  // cannot manufacture quorum on their own under token weighting).
  const double members =
      static_cast<double>(std::max<std::uint64_t>(1, read_u64(ctx.get("member_count"))));
  const double turnout = static_cast<double>(voters) / members;
  const double decisive = counts[0] + counts[1];
  const double yes_share = decisive > 0.0 ? counts[0] / decisive : 0.0;

  meta.status = static_cast<std::uint8_t>(
      (turnout >= config_.quorum && yes_share > config_.pass_threshold)
          ? OnChainStatus::kPassed
          : OnChainStatus::kRejected);
  ctx.put(meta_key(id.value()), meta.encode());
  return {};
}

std::uint64_t DaoContract::member_count(const ledger::LedgerState& state,
                                        const std::string& contract) {
  const auto* store = state.find_store(contract);
  if (store == nullptr) return 0;
  const auto it = store->find("member_count");
  return it == store->end() ? 0 : read_u64(&it->second);
}

std::uint64_t DaoContract::proposal_count(const ledger::LedgerState& state,
                                          const std::string& contract) {
  const auto* store = state.find_store(contract);
  if (store == nullptr) return 0;
  const auto it = store->find("next_id");
  return it == store->end() ? 0 : read_u64(&it->second);
}

Result<DaoContract::ProposalView> DaoContract::proposal(
    const ledger::LedgerState& state, const std::string& contract,
    std::uint64_t id) {
  const auto* store = state.find_store(contract);
  if (store == nullptr) return make_error(errc::kDaoNoStore, "contract has no state");
  const auto meta_it = store->find(meta_key(id));
  if (meta_it == store->end()) {
    return make_error(errc::kDaoNoSuchProposal, "unknown proposal");
  }
  auto meta = Meta::decode(meta_it->second);
  if (!meta.ok()) return meta.error();

  ProposalView view;
  view.title = meta.value().title;
  view.author = crypto::Address{meta.value().author};
  view.created_height = meta.value().created_height;
  view.status = static_cast<OnChainStatus>(meta.value().status);
  const std::string prefix = vote_prefix(id);
  for (auto it = store->lower_bound(prefix); it != store->end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    const auto record = decode_ballot(it->second);
    if (!record.has_value()) continue;
    switch (record->choice) {
      case 0: view.yes += record->weight; break;
      case 1: view.no += record->weight; break;
      case 2: view.abstain += record->weight; break;
      default: break;
    }
  }
  return view;
}

Bytes DaoContract::encode_propose(const std::string& title) {
  ByteWriter w;
  w.str(title);
  return w.take();
}

Bytes DaoContract::encode_vote(std::uint64_t id, std::uint8_t choice) {
  ByteWriter w;
  w.u64(id);
  w.u8(choice);
  return w.take();
}

Bytes DaoContract::encode_finalize(std::uint64_t id) {
  ByteWriter w;
  w.u64(id);
  return w.take();
}

}  // namespace mv::dao
