// Federated (modular) governance — the paper's §III-C / §IV-C design.
//
// "We believe that DAOs can solve the scalability problems when those are
// spread across (modular approach) different features of the metaverse."
// Each governance concern (privacy rules, moderation, economy, ...) gets its
// own committee DAO; members subscribe only to the concerns they care about.
// Proposals route to their module's committee; contested outcomes (small
// decision margin) escalate to the global DAO, so modules stay "connected to
// other decision modules" as in Figure 3.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dao/dao.h"

namespace mv::dao {

struct FederatedConfig {
  DaoConfig module_config;
  DaoConfig global_config;
  /// Module outcomes with decision margin below this escalate to the global
  /// DAO for a platform-wide re-vote.
  double escalation_margin = 0.1;
};

struct FederatedOutcome {
  ProposalStatus status = ProposalStatus::kRejected;
  /// Set when the module outcome was contested and re-proposed globally.
  std::optional<ProposalId> escalated_to;
};

class FederatedDao {
 public:
  FederatedDao(FederatedConfig config, Rng rng);

  /// Create a governance module (concern) with its own committee DAO.
  ModuleId create_module(std::string name);
  [[nodiscard]] std::size_t module_count() const { return modules_.size(); }
  [[nodiscard]] const std::string& module_name(ModuleId id) const;

  /// Platform-wide enrollment (joins the global DAO).
  [[nodiscard]] Status enroll(Member member);
  /// Join a module's committee (the member must be enrolled).
  [[nodiscard]] Status subscribe(AccountId member, ModuleId module);

  /// Open a proposal. Scoped proposals go to the module committee; proposals
  /// with an invalid scope (or an empty committee) go to the global DAO.
  [[nodiscard]] Result<ProposalId> propose(AccountId author, ModuleId scope,
                                           std::string title, Tick now);

  [[nodiscard]] Status cast_vote(ProposalId id, AccountId voter,
                                 VoteChoice choice, Tick now,
                                 double intensity = 1.0);

  /// Sealed-ballot passthroughs (active when the routed DAO's config has
  /// commit_reveal set).
  [[nodiscard]] Status commit_vote(ProposalId id, AccountId voter,
                                   const crypto::Digest& commitment, Tick now);
  [[nodiscard]] Status reveal_vote(ProposalId id, AccountId voter,
                                   VoteChoice choice, std::uint64_t salt,
                                   Tick now, double intensity = 1.0);

  [[nodiscard]] Result<FederatedOutcome> finalize(ProposalId id, Tick now);

  /// True when the proposal routed to a module committee (vs the global DAO).
  [[nodiscard]] bool is_module_scoped(ProposalId id) const;
  [[nodiscard]] const Proposal* find(ProposalId id) const;

  [[nodiscard]] Dao& global() { return global_; }
  [[nodiscard]] const Dao& global() const { return global_; }
  [[nodiscard]] const Dao& module_dao(ModuleId id) const;
  [[nodiscard]] Dao* module_dao_mutable(ModuleId id);

  /// Aggregate ballot requests per enrolled member across all committees —
  /// the federated counterpart of Dao::ParticipationStats (bench E2).
  [[nodiscard]] double avg_requests_per_member() const;
  [[nodiscard]] std::uint64_t total_ballot_requests() const;
  [[nodiscard]] std::uint64_t escalations() const { return escalations_; }

 private:
  struct Route {
    std::optional<ModuleId> module;  ///< nullopt = global
    ProposalId local;
  };

  struct ModuleEntry {
    std::string name;
    Dao dao;
  };

  [[nodiscard]] Dao& dao_for(const Route& route);
  [[nodiscard]] const Dao& dao_for(const Route& route) const;

  FederatedConfig config_;
  Rng rng_;
  Dao global_;
  std::vector<ModuleEntry> modules_;
  std::unordered_map<ProposalId, Route> routes_;
  IdAllocator<ProposalId> handle_ids_;
  std::uint64_t escalations_ = 0;
};

}  // namespace mv::dao
