// Governance proposals and ballots.
#pragma once

#include <cmath>
#include <map>
#include <set>
#include <string>

#include "common/clock.h"
#include "common/ids.h"
#include "crypto/sha256.h"

namespace mv::dao {

enum class VoteChoice : std::uint8_t { kYes, kNo, kAbstain };

enum class ProposalStatus : std::uint8_t {
  kVoting,
  kPassed,
  kRejected,
  kExecuted,
};

struct Ballot {
  VoteChoice choice = VoteChoice::kAbstain;
  double weight = 0.0;
  Tick cast_at = 0;
};

struct Tally {
  double yes = 0.0;
  double no = 0.0;
  double abstain = 0.0;
  double eligible_weight = 0.0;  ///< denominator for quorum

  [[nodiscard]] double turnout() const {
    return eligible_weight > 0.0 ? (yes + no + abstain) / eligible_weight : 0.0;
  }
  /// Yes share among decisive (non-abstain) votes.
  [[nodiscard]] double yes_share() const {
    const double decisive = yes + no;
    return decisive > 0.0 ? yes / decisive : 0.0;
  }
  /// Margin of the decision in [0,1]; small margins mark contested outcomes.
  [[nodiscard]] double margin() const {
    const double decisive = yes + no;
    return decisive > 0.0 ? std::abs(yes - no) / decisive : 0.0;
  }
};

struct Proposal {
  ProposalId id;
  ModuleId scope;  ///< governance concern this proposal belongs to
  AccountId author;
  std::string title;
  Tick created_at = 0;
  Tick voting_ends = 0;
  ProposalStatus status = ProposalStatus::kVoting;
  std::map<AccountId, Ballot> ballots;
  /// Sealed-ballot mode: commitments filed during the voting window,
  /// opened during the reveal window. Unrevealed commitments never count.
  std::map<AccountId, crypto::Digest> commitments;
  Tick reveal_ends = 0;  ///< 0 = plain (non-sealed) voting
  /// Non-empty for sortition: only these members may vote.
  std::set<AccountId> jury;
  Tally tally;  ///< filled by finalize()

  [[nodiscard]] bool open(Tick now) const {
    return status == ProposalStatus::kVoting && now < voting_ends;
  }
};

}  // namespace mv::dao
