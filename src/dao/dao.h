// The DAO engine: proposals, ballots, tallies, execution.
//
// "Generally, DAOs are usually flat and fully democratized, where each member
// can participate in the voting system to implement any changes in the
// platform." (§III-B). This class is that flat DAO; FederatedDao composes
// many of them into the paper's modular alternative.
#pragma once

#include <functional>
#include <unordered_map>

#include "common/rng.h"
#include "dao/voting.h"

namespace mv::dao {

struct DaoConfig {
  double quorum = 0.2;          ///< minimum turnout fraction of eligible weight
  double pass_threshold = 0.5;  ///< yes share (exclusive) required to pass
  Tick voting_period = 100;
  std::shared_ptr<const VotingScheme> scheme =
      std::make_shared<OneMemberOneVote>();
  /// Sealed ballots (§II-B behavioural privacy applied to governance):
  /// voters commit H(choice || salt || voter) during the voting window and
  /// open the commitment during a reveal window; nobody — including the
  /// platform — learns running tallies or who voted how before the close.
  bool commit_reveal = false;
  Tick reveal_period = 50;
};

/// Per-member participation telemetry — the measurements behind the paper's
/// "voting sessions can become cumbersome" claim (bench E2).
struct ParticipationStats {
  std::uint64_t proposals_created = 0;
  std::uint64_t ballots_cast = 0;
  /// Summed over members: proposals each member was eligible to vote on.
  std::uint64_t eligible_ballot_requests = 0;

  [[nodiscard]] double avg_requests_per_member(std::size_t members) const {
    return members ? static_cast<double>(eligible_ballot_requests) /
                         static_cast<double>(members)
                   : 0.0;
  }
};

class Dao {
 public:
  using Executor = std::function<void(const Proposal&)>;

  Dao(DaoConfig config, Rng rng);

  [[nodiscard]] MemberRegistry& members() { return members_; }
  [[nodiscard]] const MemberRegistry& members() const { return members_; }
  [[nodiscard]] const DaoConfig& config() const { return config_; }

  /// Runs when a proposal passes; registered by the platform module that
  /// owns this DAO (e.g. policy swap, moderation rule change).
  void set_executor(Executor executor) { executor_ = std::move(executor); }

  /// Open a proposal; voting starts immediately.
  [[nodiscard]] Result<ProposalId> propose(AccountId author, ModuleId scope,
                                           std::string title, Tick now);

  /// Cast a ballot. `intensity` only matters for quadratic voting.
  /// Rejected when the DAO runs sealed ballots (use commit/reveal).
  [[nodiscard]] Status cast_vote(ProposalId id, AccountId voter,
                                 VoteChoice choice, Tick now,
                                 double intensity = 1.0);

  /// Sealed ballots: the commitment voters file during the voting window.
  [[nodiscard]] static crypto::Digest make_commitment(VoteChoice choice,
                                                      std::uint64_t salt,
                                                      AccountId voter);
  /// File a sealed ballot (voting window).
  [[nodiscard]] Status commit_vote(ProposalId id, AccountId voter,
                                   const crypto::Digest& commitment, Tick now);
  /// Open a sealed ballot (reveal window); must match the commitment.
  [[nodiscard]] Status reveal_vote(ProposalId id, AccountId voter,
                                   VoteChoice choice, std::uint64_t salt,
                                   Tick now, double intensity = 1.0);

  /// Close and tally a proposal whose voting window has ended.
  [[nodiscard]] Result<ProposalStatus> finalize(ProposalId id, Tick now);

  /// Finalize everything whose window ended; returns number finalized.
  std::size_t finalize_due(Tick now);

  [[nodiscard]] const Proposal* find(ProposalId id) const;
  [[nodiscard]] std::size_t proposal_count() const { return proposals_.size(); }
  [[nodiscard]] const ParticipationStats& stats() const { return stats_; }

 private:
  [[nodiscard]] double eligible_weight(const Proposal& p) const;
  void tally_delegations(Proposal& p) const;
  /// Shared tail of cast_vote / reveal_vote: eligibility + weight + record.
  [[nodiscard]] Status record_ballot(Proposal& p, AccountId voter,
                                     VoteChoice choice, Tick now,
                                     double intensity);

  DaoConfig config_;
  Rng rng_;
  MemberRegistry members_;
  std::unordered_map<ProposalId, Proposal> proposals_;
  IdAllocator<ProposalId> proposal_ids_;
  Executor executor_;
  ParticipationStats stats_;
};

}  // namespace mv::dao
