#include "dao/federated.h"

#include <stdexcept>

namespace mv::dao {

FederatedDao::FederatedDao(FederatedConfig config, Rng rng)
    : config_(config), rng_(rng), global_(config.global_config, rng_.fork()) {}

ModuleId FederatedDao::create_module(std::string name) {
  const ModuleId id(modules_.size());
  modules_.push_back(ModuleEntry{std::move(name), Dao(config_.module_config, rng_.fork())});
  return id;
}

const std::string& FederatedDao::module_name(ModuleId id) const {
  return modules_.at(id.value()).name;
}

Status FederatedDao::enroll(Member member) { return global_.members().add(member); }

Status FederatedDao::subscribe(AccountId member, ModuleId module) {
  const Member* m = global_.members().find(member);
  if (m == nullptr) {
    return Status::fail("dao.not_enrolled", "subscribe requires enrollment");
  }
  if (module.value() >= modules_.size()) {
    return Status::fail("dao.no_such_module", "unknown module");
  }
  return modules_[module.value()].dao.members().add(*m);
}

Result<ProposalId> FederatedDao::propose(AccountId author, ModuleId scope,
                                         std::string title, Tick now) {
  Route route;
  if (scope.valid() && scope.value() < modules_.size() &&
      modules_[scope.value()].dao.members().find(author) != nullptr) {
    route.module = scope;
  }
  Dao& dao = route.module ? modules_[route.module->value()].dao : global_;
  auto local = dao.propose(author, scope, std::move(title), now);
  if (!local.ok()) return local.error();
  route.local = local.value();
  const ProposalId handle = handle_ids_.next();
  routes_.emplace(handle, route);
  return handle;
}

Dao& FederatedDao::dao_for(const Route& route) {
  return route.module ? modules_[route.module->value()].dao : global_;
}

const Dao& FederatedDao::dao_for(const Route& route) const {
  return route.module ? modules_[route.module->value()].dao : global_;
}

Status FederatedDao::cast_vote(ProposalId id, AccountId voter, VoteChoice choice,
                               Tick now, double intensity) {
  const auto it = routes_.find(id);
  if (it == routes_.end()) {
    return Status::fail("dao.no_such_proposal", "unknown handle");
  }
  return dao_for(it->second).cast_vote(it->second.local, voter, choice, now, intensity);
}

Status FederatedDao::commit_vote(ProposalId id, AccountId voter,
                                 const crypto::Digest& commitment, Tick now) {
  const auto it = routes_.find(id);
  if (it == routes_.end()) {
    return Status::fail("dao.no_such_proposal", "unknown handle");
  }
  return dao_for(it->second).commit_vote(it->second.local, voter, commitment, now);
}

Status FederatedDao::reveal_vote(ProposalId id, AccountId voter,
                                 VoteChoice choice, std::uint64_t salt,
                                 Tick now, double intensity) {
  const auto it = routes_.find(id);
  if (it == routes_.end()) {
    return Status::fail("dao.no_such_proposal", "unknown handle");
  }
  return dao_for(it->second)
      .reveal_vote(it->second.local, voter, choice, salt, now, intensity);
}

Result<FederatedOutcome> FederatedDao::finalize(ProposalId id, Tick now) {
  const auto it = routes_.find(id);
  if (it == routes_.end()) {
    return make_error("dao.no_such_proposal", "unknown handle");
  }
  Dao& dao = dao_for(it->second);
  auto status = dao.finalize(it->second.local, now);
  if (!status.ok()) return status.error();

  FederatedOutcome outcome;
  outcome.status = status.value();

  // Contested module outcomes escalate to the whole platform (§III-C:
  // modules "interact with other governance systems").
  if (it->second.module.has_value()) {
    const Proposal* p = dao.find(it->second.local);
    if (p != nullptr && p->tally.margin() < config_.escalation_margin) {
      auto global_handle = propose(p->author, ModuleId::invalid(),
                                   "[escalated] " + p->title, now);
      if (global_handle.ok()) {
        ++escalations_;
        outcome.escalated_to = global_handle.value();
      }
    }
  }
  return outcome;
}

bool FederatedDao::is_module_scoped(ProposalId id) const {
  const auto it = routes_.find(id);
  return it != routes_.end() && it->second.module.has_value();
}

const Proposal* FederatedDao::find(ProposalId id) const {
  const auto it = routes_.find(id);
  if (it == routes_.end()) return nullptr;
  return dao_for(it->second).find(it->second.local);
}

const Dao& FederatedDao::module_dao(ModuleId id) const {
  return modules_.at(id.value()).dao;
}

Dao* FederatedDao::module_dao_mutable(ModuleId id) {
  return id.value() < modules_.size() ? &modules_[id.value()].dao : nullptr;
}

std::uint64_t FederatedDao::total_ballot_requests() const {
  std::uint64_t total = global_.stats().eligible_ballot_requests;
  for (const auto& entry : modules_) {
    total += entry.dao.stats().eligible_ballot_requests;
  }
  return total;
}

double FederatedDao::avg_requests_per_member() const {
  const std::size_t members = global_.members().size();
  return members ? static_cast<double>(total_ballot_requests()) /
                       static_cast<double>(members)
                 : 0.0;
}

}  // namespace mv::dao
