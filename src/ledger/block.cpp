#include "ledger/block.h"

namespace mv::ledger {

Bytes BlockHeader::signing_bytes() const {
  ByteWriter w;
  w.i64(height);
  w.raw(prev_hash);
  w.raw(tx_root);
  w.raw(state_root);
  w.i64(timestamp);
  w.u64(proposer_pub.y);
  return w.take();
}

Bytes BlockHeader::encode() const {
  ByteWriter w;
  w.raw(signing_bytes());
  w.u64(proposer_sig.e);
  w.u64(proposer_sig.s);
  return w.take();
}

crypto::Digest BlockHeader::hash() const { return crypto::sha256(encode()); }

Result<BlockHeader> BlockHeader::decode(const Bytes& bytes) {
  ByteReader r(bytes);
  BlockHeader header;
  auto height = r.i64();
  if (!height.ok()) return height.error();
  header.height = height.value();
  auto prev = r.raw(32);
  if (!prev.ok()) return prev.error();
  std::copy(prev.value().begin(), prev.value().end(), header.prev_hash.begin());
  auto tx_root = r.raw(32);
  if (!tx_root.ok()) return tx_root.error();
  std::copy(tx_root.value().begin(), tx_root.value().end(),
            header.tx_root.begin());
  auto state_root = r.raw(32);
  if (!state_root.ok()) return state_root.error();
  std::copy(state_root.value().begin(), state_root.value().end(),
            header.state_root.begin());
  auto ts = r.i64();
  if (!ts.ok()) return ts.error();
  header.timestamp = ts.value();
  auto pub = r.u64();
  if (!pub.ok()) return pub.error();
  header.proposer_pub.y = pub.value();
  auto e = r.u64();
  if (!e.ok()) return e.error();
  auto s = r.u64();
  if (!s.ok()) return s.error();
  header.proposer_sig = crypto::Signature{e.value(), s.value()};
  if (!r.exhausted()) {
    return make_error("block.trailing_bytes", "unparsed trailing header data");
  }
  return header;
}

Bytes Block::encode() const {
  ByteWriter w;
  w.bytes(header.encode());
  w.u32(static_cast<std::uint32_t>(txs.size()));
  for (const auto& tx : txs) w.bytes(tx.encode());
  return w.take();
}

Result<Block> Block::decode(const Bytes& bytes) {
  ByteReader r(bytes);
  auto header_bytes = r.bytes();
  if (!header_bytes.ok()) return header_bytes.error();

  Block block;
  auto header = BlockHeader::decode(header_bytes.value());
  if (!header.ok()) return header.error();
  block.header = std::move(header).value();

  auto count = r.u32();
  if (!count.ok()) return count.error();
  // Every encoded tx costs at least its 4-byte length prefix; a count beyond
  // that bound is forged (and must not drive a huge reserve()).
  if (count.value() > r.remaining() / 4) {
    return make_error("block.bad_tx_count", "tx count exceeds payload size");
  }
  block.txs.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto tx_bytes = r.bytes();
    if (!tx_bytes.ok()) return tx_bytes.error();
    auto tx = Transaction::decode(tx_bytes.value());
    if (!tx.ok()) return tx.error();
    block.txs.push_back(std::move(tx).value());
  }
  if (!r.exhausted()) {
    return make_error("block.trailing_bytes", "unparsed trailing data");
  }
  return block;
}

crypto::Digest Block::compute_tx_root(const std::vector<Transaction>& txs) {
  std::vector<crypto::Digest> leaves;
  leaves.reserve(txs.size());
  for (const auto& tx : txs) leaves.push_back(tx.digest());
  return crypto::MerkleTree(std::move(leaves)).root();
}

crypto::MerkleTree Block::tx_tree() const {
  std::vector<crypto::Digest> leaves;
  leaves.reserve(txs.size());
  for (const auto& tx : txs) leaves.push_back(tx.digest());
  return crypto::MerkleTree(std::move(leaves));
}

}  // namespace mv::ledger
