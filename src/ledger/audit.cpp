#include "ledger/audit.h"

namespace mv::ledger {

Transaction AuditClient::record(const LedgerState& state, AuditRecordBody body,
                                std::uint64_t fee) {
  next_nonce_ = std::max(next_nonce_, state.nonce(wallet_.address()));
  return make_audit_record(wallet_, next_nonce_++, std::move(body), fee, rng_);
}

std::vector<StoredAuditRecord> AuditQuery::by_subject(std::uint64_t subject) const {
  std::vector<StoredAuditRecord> out;
  for (const auto& rec : chain_.state().audit_log()) {
    if (rec.body.subject == subject) out.push_back(rec);
  }
  return out;
}

std::vector<StoredAuditRecord> AuditQuery::by_collector(
    crypto::Address collector) const {
  std::vector<StoredAuditRecord> out;
  for (const auto& rec : chain_.state().audit_log()) {
    if (rec.collector == collector) out.push_back(rec);
  }
  return out;
}

std::vector<CollectorProfile> AuditQuery::collector_profiles() const {
  std::map<crypto::Address, CollectorProfile> profiles;
  for (const auto& rec : chain_.state().audit_log()) {
    auto& p = profiles[rec.collector];
    p.collector = rec.collector;
    ++p.records;
    ++p.by_category[rec.body.data_category];
    if (rec.body.pet_applied == "none") ++p.without_pet;
  }
  std::vector<CollectorProfile> out;
  out.reserve(profiles.size());
  for (auto& [addr, p] : profiles) out.push_back(std::move(p));
  return out;
}

double AuditQuery::data_concentration_hhi() const {
  const auto profiles = collector_profiles();
  std::uint64_t total = 0;
  for (const auto& p : profiles) total += p.records;
  if (total == 0) return 0.0;
  double hhi = 0.0;
  for (const auto& p : profiles) {
    const double share = static_cast<double>(p.records) / static_cast<double>(total);
    hhi += share * share;
  }
  return hhi;
}

bool AuditQuery::has_data_monopoly(double threshold) const {
  const auto profiles = collector_profiles();
  std::uint64_t total = 0;
  for (const auto& p : profiles) total += p.records;
  if (total == 0) return false;
  for (const auto& p : profiles) {
    if (static_cast<double>(p.records) / static_cast<double>(total) > threshold) {
      return true;
    }
  }
  return false;
}

}  // namespace mv::ledger
