// ClientApi: the one versioned facade for everything a client asks a node.
//
// Before this existed, client-facing reads were scattered per-subsystem
// entry points with per-subsystem error vocabularies: prove_account on the
// chain ("chain.*"), snapshot export on the chain, subscription admin on the
// server. ClientApi fronts them all behind a uniform Result-based taxonomy —
// every error a client can see is an "api.*" code from common/result.h
// (errc), with errc::is_transient() telling it whether to retry — plus an
// explicit wire version, so client and node can disagree about software age
// without disagreeing about bytes.
//
// Two surfaces, same semantics:
//   - typed methods (header / account_proof / snapshot_at / subscription
//     admin) for in-process callers and tests;
//   - dispatch(): a versioned request/response envelope for remote callers,
//     carrying the same payload encodings the rest of the system uses
//     (BlockHeader::encode, AccountProof::encode). A request with the wrong
//     version is answered with api.bad_version, a malformed one with
//     api.bad_request — never silence.
//
// Streaming reads (subscriptions) ride net/subscription.h; this facade
// exposes their admin/observability side. Error taxonomy table: DESIGN.md
// §11.
#pragma once

#include <optional>

#include "ledger/chain.h"
#include "net/subscription.h"

namespace mv::ledger {

/// Client API wire version (the envelope's; payload encodings version
/// independently, e.g. CommitPush).
inline constexpr std::uint32_t kClientApiVersion = 1;

/// dispatch() request kinds.
enum class ClientRequest : std::uint8_t {
  kTip = 0,           ///< no args; answers i64 tip height (-1 when empty)
  kHeader = 1,        ///< i64 height; answers BlockHeader::encode()
  kAccountProof = 2,  ///< u64 address, i64 height; answers AccountProof::encode()
};

class ClientApi {
 public:
  /// `subscriptions` may be null (node without a streaming read path); the
  /// subscription surface then answers api.no_subscription_service.
  explicit ClientApi(const Blockchain& chain,
                     net::SubscriptionServer* subscriptions = nullptr)
      : chain_(chain), subscriptions_(subscriptions) {}

  /// Newest committed height; -1 while the chain is empty.
  [[nodiscard]] std::int64_t tip_height() const { return chain_.height() - 1; }

  /// Committed header at `height` (api.bad_height out of range,
  /// api.pruned_height below a snapshot-initialized chain's base).
  [[nodiscard]] Result<BlockHeader> header(std::int64_t height) const;

  /// One-shot account proof at `height`; the streaming equivalent is a
  /// subscription. chain.* failures surface as their api.* mappings
  /// (api.stale_height beyond retention, api.overloaded when the query lane
  /// shed — the transient one).
  [[nodiscard]] Result<AccountProof> account_proof(crypto::Address address,
                                                   std::int64_t height) const;

  /// Verified snapshot for bootstrap (same height rules as account_proof).
  [[nodiscard]] Result<Snapshot> snapshot_at(std::int64_t height) const;

  // --- subscription administration (api.no_subscription_service without a
  // --- server; subscribing itself is wire-level: net/subscription.h).
  [[nodiscard]] Result<net::SubscriptionStats> subscription_stats() const;
  /// Forcibly remove `node`'s subscription (api.unknown_subscription when it
  /// holds none).
  [[nodiscard]] Status drop_subscriber(NodeId node);

  /// Serve one encoded request (u32 version, u8 kind, args). Always answers:
  /// u32 version, u8 ok, then payload bytes (ok=1) or code + message strings
  /// (ok=0). Malformed input answers api.bad_request, a version mismatch
  /// api.bad_version.
  [[nodiscard]] Bytes dispatch(const Bytes& request) const;

 private:
  /// Fold a subsystem error into the api.* taxonomy (passthrough when no
  /// mapping applies — api codes stay a superset, never a lossy rename).
  [[nodiscard]] static Error to_api_error(Error e);

  const Blockchain& chain_;
  net::SubscriptionServer* subscriptions_;
};

}  // namespace mv::ledger
