// Simulated PoA/BFT consensus over the message network.
//
// A fixed validator committee takes turns proposing (round-robin). A round:
//   1. the leader assembles a block from its mempool and broadcasts PROPOSE;
//   2. every validator that finds the block valid broadcasts VOTE;
//   3. a validator that has the block and a quorum (> 2/3) of distinct valid
//      votes commits the block to its replica.
// Catch-up: a validator that sees a proposal ahead of its own height pulls
// the missing blocks from the proposer (SYNC_REQ/SYNC_RESP), so replicas
// that missed commits (partition, loss) converge once connectivity returns.
// Delivery order, jitter, loss, and partitions come from net::Network, so the
// same code exercises both happy-path throughput (bench E7) and fault cases
// (tests: partitioned committee cannot commit; healed laggards catch up).
#pragma once

#include <map>
#include <optional>
#include <set>

#include "ledger/chain.h"
#include "ledger/mempool.h"
#include "net/network.h"

namespace mv::ledger {

struct ConsensusStats {
  std::uint64_t rounds = 0;
  std::uint64_t committed_blocks = 0;
  std::uint64_t committed_txs = 0;
  std::uint64_t failed_rounds = 0;
  double total_commit_ticks = 0;  ///< summed leader-observed commit latency

  [[nodiscard]] double avg_commit_ticks() const {
    return committed_blocks ? total_commit_ticks / static_cast<double>(committed_blocks) : 0.0;
  }
};

class ValidatorCommittee {
 public:
  /// Creates `n` validators with fresh wallets, replicas of the same genesis,
  /// and nodes on `network`. `validation` configures parallel block
  /// application on every replica (ledger/parallel.h); the default keeps the
  /// serial path.
  ValidatorCommittee(net::Network& network, std::size_t n,
                     std::shared_ptr<const ContractRegistry> contracts,
                     const LedgerState& genesis, std::size_t max_txs_per_block,
                     Rng& rng, ValidationConfig validation = {});

  /// Client entry point: deliver a transaction to every validator's mempool
  /// (models the RPC edge; gossip of txs is exercised separately).
  void submit(const Transaction& tx);

  /// Drive one consensus round to completion or timeout. Returns true when a
  /// quorum committed the leader's block on every connected replica.
  bool run_round(Tick timeout = 1000);

  [[nodiscard]] std::size_t size() const { return validators_.size(); }
  [[nodiscard]] const Blockchain& chain(std::size_t i) const { return validators_[i].chain; }
  [[nodiscard]] const Mempool& mempool(std::size_t i) const { return validators_[i].mempool; }
  [[nodiscard]] const crypto::Wallet& wallet(std::size_t i) const { return validators_[i].wallet; }
  [[nodiscard]] NodeId node(std::size_t i) const { return validators_[i].node; }
  [[nodiscard]] const ConsensusStats& stats() const { return stats_; }

  /// Votes needed to commit: floor(2n/3) + 1.
  [[nodiscard]] std::size_t quorum() const { return validators_.size() * 2 / 3 + 1; }

  /// True when every validator's chain is at the same height with equal tips.
  [[nodiscard]] bool replicas_consistent() const;

 private:
  struct Validator {
    crypto::Wallet wallet;
    Blockchain chain;
    Mempool mempool;
    NodeId node;
    Rng rng;
    // Round-local: pending proposal and votes keyed by (height, block hash).
    std::optional<Block> pending;
    std::map<std::pair<std::int64_t, std::uint64_t>, std::set<std::uint64_t>> votes;
  };

  void on_message(std::size_t validator_index, const net::Message& msg);
  void handle_propose(Validator& v, const net::Message& msg);
  void handle_vote(Validator& v, const Bytes& payload);
  void handle_sync_request(Validator& v, const net::Message& msg);
  void handle_sync_response(Validator& v, const Bytes& payload);
  void serve_blocks(Validator& v, NodeId to, std::int64_t from_height);
  void try_commit(Validator& v);
  void broadcast_vote(Validator& v, const Block& block);

  net::Network& network_;
  std::vector<Validator> validators_;
  ConsensusStats stats_;
};

}  // namespace mv::ledger
