// Beacon chain: the anchor tying per-shard roots into one signed digest.
//
// A sharded world ledger (ledger/shard.h) commits every shard's block for a
// round, then folds the resulting per-shard anchors — state commitment root
// plus cross-shard receipt tree root — into a single beacon root: a
// crypto::MerkleMap keyed by shard index whose leaf values are domain-tagged
// anchor digests. The beacon header carries the ordered anchor vector, the
// derived beacon root, and a round-robin PoA proposer signature, exactly
// mirroring BlockHeader's trust chain.
//
// Verification composes with the existing proof machinery (DESIGN.md §8/§14):
//   account proof   -> shard state root        (verify_account_proof)
//   shard anchor    -> beacon root             (MerkleMapProof over the index)
//   beacon root     -> signed beacon header    (proposer schedule + signature)
// so a light client holding only beacon headers can audit any account on any
// shard, and a destination shard can check a cross-shard receipt against a
// source-shard receipt root it never shared mutable state with.
#pragma once

#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/result.h"
#include "crypto/merkle_map.h"
#include "crypto/schnorr.h"
#include "crypto/sha256.h"

namespace mv::ledger {

/// What the beacon anchors per shard per round: the shard's post-block state
/// commitment root and the root of its cross-shard receipt tree.
struct ShardAnchor {
  crypto::Digest state_root{};
  crypto::Digest receipts_root{};

  [[nodiscard]] bool operator==(const ShardAnchor&) const = default;
};

/// Leaf value committed for one shard: sha256("mv.shard.anchor.v1" ||
/// state_root || receipts_root). Domain-tagged so an anchor digest can never
/// collide with a raw state root served in some other context.
[[nodiscard]] crypto::Digest shard_anchor_digest(const ShardAnchor& anchor);

/// Combine the ordered anchor vector into the beacon root: the root of a
/// MerkleMap mapping shard index -> shard_anchor_digest. The section-
/// combination idea of combine_commitment_root generalized to a variable
/// number of sections — and, because it is a MerkleMap, each section is
/// individually provable (prove_shard_anchor).
[[nodiscard]] crypto::Digest combine_beacon_root(
    const std::vector<ShardAnchor>& anchors);

/// Inclusion proof of shard `index`'s anchor under combine_beacon_root.
[[nodiscard]] crypto::MerkleMapProof prove_shard_anchor(
    const std::vector<ShardAnchor>& anchors, std::uint32_t index);

/// Verify that `anchor` is shard `index`'s entry under `beacon_root`.
[[nodiscard]] bool verify_shard_anchor(const crypto::Digest& beacon_root,
                                       std::uint32_t index,
                                       const ShardAnchor& anchor,
                                       const crypto::MerkleMapProof& proof);

/// One beacon round: the ordered per-shard anchors for the shard blocks at
/// `height`, hash-chained to the previous beacon and signed by the
/// round-robin proposer for `height`.
struct BeaconHeader {
  std::int64_t height = 0;
  crypto::Digest prev_hash{};
  Tick timestamp = 0;
  std::vector<ShardAnchor> shards;
  /// Derived: combine_beacon_root(shards). Recomputed on decode, never read
  /// off the wire, so a served root that disagrees with its anchors cannot
  /// survive the codec.
  crypto::Digest beacon_root{};
  crypto::PublicKey proposer_pub{};
  crypto::Signature proposer_sig{};

  /// Canonical bytes covered by the proposer signature (everything above it).
  [[nodiscard]] Bytes signing_bytes() const;
  [[nodiscard]] Bytes encode() const;
  /// Strict decode: bounded shard count, beacon_root recomputed, exhausted
  /// check. Every failure names a beacon.* code.
  [[nodiscard]] static Result<BeaconHeader> decode(const Bytes& bytes);
  /// sha256 over the full encoding (the next beacon's prev_hash).
  [[nodiscard]] crypto::Digest hash() const;
};

/// Append-only archive of finalized beacon headers, shared read-only with
/// the per-shard xshard contracts so a destination shard can resolve "the
/// source shard's anchor at beacon height h" deterministically during block
/// application. Reads may come from validation worker threads while the
/// driver appends between rounds; a shared_mutex keeps both honest.
class BeaconArchive {
 public:
  /// Append the next header; height must equal size() (beacons are dense).
  void push(BeaconHeader header);

  [[nodiscard]] std::int64_t size() const;
  /// Anchor of `shard` at beacon `height`, or nullopt when the height is not
  /// yet archived / the shard index is out of range.
  [[nodiscard]] std::optional<ShardAnchor> anchor(std::int64_t height,
                                                 std::uint32_t shard) const;
  /// Copy of the header at `height` (nullopt when absent).
  [[nodiscard]] std::optional<BeaconHeader> header_at(std::int64_t height) const;
  /// Hash of the newest archived header (zero digest when empty).
  [[nodiscard]] crypto::Digest tip_hash() const;

 private:
  mutable std::shared_mutex mu_;
  std::vector<BeaconHeader> headers_;
};

}  // namespace mv::ledger
