// Parallel block application: conflict-partitioned overlays with a
// deterministic merge.
//
// A block's transactions are grouped by their static conflict footprint
// (touched accounts and contract stores, closed under union-find), disjoint
// groups are applied concurrently on independent overlays stacked over the
// same base, and the resulting deltas are folded back in canonical (original
// block) order — so the final StateCommitment is byte-identical to serial
// application (DESIGN.md §"Parallel block validation" carries the argument).
//
// Static footprints cannot see everything: a contract call may read or move
// funds of accounts named only in its arguments or its store. Group execution
// therefore runs on access-tracking views that record every account and store
// key actually touched; if any group's reads or writes overlap another
// group's writes, the parallel result is discarded and the block is re-applied
// serially ("serial fallback"). The fallback decision depends only on the
// block and the base state — never on thread scheduling — so results are
// bit-identical across thread counts, schedules, and runs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/job_queue.h"
#include "common/thread_pool.h"
#include "crypto/digest_lru.h"
#include "ledger/state.h"
#include "ledger/transaction.h"

namespace mv::ledger {

/// Knobs for block application. threads == 1 preserves the serial path
/// exactly (no pool, no partitioning, no tracking overhead).
struct ValidationConfig {
  std::size_t threads = 1;           ///< worker threads; 1 = serial
  std::size_t min_parallel_txs = 8;  ///< below this, serial is cheaper
  /// Permutes the order in which conflict groups are handed to the pool.
  /// Results are independent of it by construction; the determinism tests
  /// sweep it to prove that. 0 = canonical order.
  std::uint64_t schedule_seed = 0;
  /// Verified-signature memo (crypto/digest_lru.h). When set, apply_block
  /// consults it before verifying each transaction's signature and remembers
  /// fresh verifications, so a tx checked at mempool admission is not
  /// re-verified at assembly and again at commit. Share one instance per
  /// replica (with its mempool); tampering changes the digest, so a hit is as
  /// strong as re-verifying. null = verify every time.
  std::shared_ptr<crypto::DigestLruSet> sig_cache;
  /// Prioritized executor (common/job_queue.h). When set it REPLACES the
  /// plain pool: signature pre-verification batches run as kValidation jobs
  /// and block-application units as kConsensus jobs, so ledger work competes
  /// with gossip/snapshot/client traffic under one scheduler instead of
  /// owning dedicated threads. The queue's worker count (not `threads`)
  /// decides serial-vs-parallel; a queue with workers()==0 executes inline —
  /// byte-identical to the historical serial path. Batches are never shed.
  /// Share one instance per process (replicas may share it with net-side
  /// users); results stay bit-identical either way (DESIGN.md §10).
  std::shared_ptr<JobQueue> job_queue;
};

/// One element of a transaction's static conflict footprint.
struct ConflictKey {
  enum class Kind : std::uint8_t {
    kAccount = 0,  ///< id = Address::value
    kStore = 1,    ///< id = 64-bit hash of the contract name
  };
  Kind kind = Kind::kAccount;
  std::uint64_t id = 0;

  friend constexpr auto operator<=>(const ConflictKey&, const ConflictKey&) = default;
};

/// Static conflict footprint of one transaction: the sender's account for
/// every kind, the recipient account for transfers, and the target contract's
/// store for contract calls. Dynamic touches (accounts a contract reaches via
/// CallContext) are intentionally absent — the tracked-execution interference
/// check covers them at run time.
[[nodiscard]] std::vector<ConflictKey> conflict_keys(const Transaction& tx);

/// Group txs (by index) so that any two transactions sharing a conflict key —
/// directly or transitively — land in the same group. Groups are ordered by
/// their smallest member and each group's indices are ascending, so the
/// partition is a canonical function of the transaction list.
[[nodiscard]] std::vector<std::vector<std::size_t>> partition_conflicts(
    const std::vector<Transaction>& txs);

enum class ApplyMode {
  kAllOrNothing,  ///< validation: first failure rejects the whole block
  kSkipFailures,  ///< assembly: failed candidates are dropped, rest proceed
};

/// Outcome of apply_block(). `status`/`failed_index` are meaningful in
/// kAllOrNothing mode; `applied` lists the indices applied (ascending), which
/// in kSkipFailures mode is the assembled block's content.
struct BlockApplyOutcome {
  Status status;
  std::size_t failed_index = 0;
  std::vector<std::size_t> applied;
  std::size_t groups = 1;        ///< conflict groups in the partition
  bool parallel = false;         ///< multi-group path ran to completion
  bool serial_fallback = false;  ///< group run discarded, block re-applied serially
  /// Dynamic conflict resolved by re-running only the conflicting units in
  /// block order (the non-conflicting units' overlays were kept) instead of
  /// discarding everything for a full serial replay.
  bool repaired = false;
  // Both zero when no sig_cache is configured (cacheless verification is
  // not counted).
  std::size_t sig_hits = 0;    ///< signatures vouched for by the sig cache
  std::size_t sig_misses = 0;  ///< cache misses verified afresh
};

/// Monotonic counters over apply_block() outcomes (diagnostics / tests).
struct ValidationStats {
  std::uint64_t applies = 0;           ///< apply_block invocations
  std::uint64_t parallel_applies = 0;  ///< completed via the parallel path
  std::uint64_t serial_fallbacks = 0;  ///< conflicts/failures forcing re-runs
  std::uint64_t repairs = 0;           ///< conflicts healed by partial re-run
  std::uint64_t conflict_groups = 0;   ///< summed partition sizes
  std::uint64_t sig_cache_hits = 0;    ///< signature checks skipped via cache
  std::uint64_t sig_cache_misses = 0;  ///< signature checks actually performed

  void record(const BlockApplyOutcome& outcome) {
    ++applies;
    if (outcome.parallel) ++parallel_applies;
    if (outcome.serial_fallback) ++serial_fallbacks;
    if (outcome.repaired) ++repairs;
    conflict_groups += outcome.groups;
    sig_cache_hits += outcome.sig_hits;
    sig_cache_misses += outcome.sig_misses;
  }
};

/// Apply `txs` onto `scratch` (an overlay the caller constructed over the
/// base state), equivalent to applying them one-by-one in order. With
/// config.threads > 1 and a pool, disjoint conflict groups run concurrently;
/// the commitment of `scratch` afterwards is byte-identical to the serial
/// result in every case. `scratch` must be freshly constructed (no prior
/// writes): group workers read through it concurrently, so it has to stay
/// untouched until the merge.
[[nodiscard]] BlockApplyOutcome apply_block(LedgerStateOverlay& scratch,
                                            const std::vector<Transaction>& txs,
                                            const ContractRegistry& contracts,
                                            Tick height,
                                            const ValidationConfig& config,
                                            ThreadPool* pool, ApplyMode mode);

}  // namespace mv::ledger
