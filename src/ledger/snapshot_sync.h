// Ledger glue for chunked snapshot transfer (net/snapshot_transfer.h).
//
// The transport layer is payload-agnostic; this module supplies the ledger
// semantics on both ends:
//
//   server — make_snapshot_source() adapts a Blockchain into the callbacks a
//            net::SnapshotServer serves from: manifests and chunks for any
//            height the retention ring covers, plus the block suffix. With a
//            SnapshotExportCache attached, an export is built once per
//            (height, chunk size) and pinned: the server keeps answering
//            chunk requests for that snapshot consistently even after the
//            chain has committed past the retention window.
//   client — SnapshotCatchup drives a net::SnapshotClient whose hooks bind
//            every served byte to a LightClient-verified header: the manifest
//            commitment root must equal header.state_root, each chunk must
//            match the manifest's digest, and the installed state must
//            reproduce the commitment byte-identically
//            (Blockchain::init_from_snapshot). The suffix is then replayed
//            through full block validation (import_blocks). start() accepts
//            a whole peer set — chunk fetches stripe across every replica
//            advertising the manifest — and set_diff_base() turns the sync
//            into a diff: chunks whose digests already match a locally-held
//            snapshot are reused instead of fetched.
//
// Trust chain details in DESIGN.md §9 and §13.
#pragma once

#include <list>
#include <mutex>
#include <utility>

#include "ledger/chain.h"
#include "ledger/light_client.h"
#include "net/snapshot_transfer.h"

namespace mv::ledger {

/// Pinned, LRU-bounded exports for a serving replica. export_snapshot() is
/// the expensive end of a sync (state clone + encode + chunk digests); a
/// server fielding a swarm of catch-up clients builds each export once and
/// serves every chunk request from the pinned copy. Because the entry is
/// immutable, a sync that started inside the retention window keeps being
/// served consistently while blocks commit past it. Thread-safe: chunk
/// serving may run on JobQueue workers.
class SnapshotExportCache {
 public:
  explicit SnapshotExportCache(std::size_t capacity = 4)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;  ///< exports actually built (and cached)
  };

  /// The pinned export for (height, chunk_size), building it on first use.
  /// nullptr when the chain cannot export that height (and nothing cached).
  [[nodiscard]] std::shared_ptr<const Snapshot> get_or_export(
      const Blockchain& chain, std::int64_t height, std::size_t chunk_size);

  [[nodiscard]] Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
  }

 private:
  using Key = std::pair<std::int64_t, std::size_t>;  // (height, chunk_size)

  mutable std::mutex mu_;
  std::size_t capacity_;
  /// Front = most recently used. Linear scans are fine: capacity is tiny
  /// (a handful of concurrently-served heights).
  std::list<std::pair<Key, std::shared_ptr<const Snapshot>>> lru_;
  Stats stats_;
};

/// Serve snapshots and block suffixes from `chain`. The references must
/// outlive the returned Source. Heights outside the retention window answer
/// with an empty payload (the transport's "unavailable" refusal). With a
/// `cache`, exports are built once and pinned (see SnapshotExportCache) —
/// without one, every chunk request re-exports, which keeps the server
/// stateless but is only sensible for tests.
[[nodiscard]] net::SnapshotServer::Source make_snapshot_source(
    const Blockchain& chain,
    std::size_t chunk_size = kSnapshotChunkSize,
    SnapshotExportCache* cache = nullptr);

/// A fresh replica's catch-up driver: fetch manifest + chunks for a header
/// the light client has verified, install via Blockchain::init_from_snapshot,
/// then replay only the block suffix. All references must outlive this.
class SnapshotCatchup {
 public:
  SnapshotCatchup(net::Network& network, Blockchain& chain,
                  const LightClient& light_client,
                  net::SnapshotTransferConfig config = {});

  /// Handlers run at delivery time; call once the replica's NodeId is known.
  void bind(NodeId self) { client_.bind(self); }

  /// Begin syncing the snapshot at `height`, striping chunk fetches across
  /// `peers`. The light client must already hold the header at `height` (it
  /// anchors every check).
  [[nodiscard]] Status start(std::vector<NodeId> peers, std::int64_t height);
  /// Single-peer convenience overload.
  [[nodiscard]] Status start(NodeId peer, std::int64_t height) {
    return start(std::vector<NodeId>{peer}, height);
  }

  /// Diff snapshot: before the next start(), hand over a snapshot this
  /// replica already holds (e.g. from a previous sync). Chunks of the target
  /// whose manifest digests match the base's — same chunk geometry, so a
  /// digest match pins identical payload bytes at the same offset — are
  /// installed from the base and never requested. The base is checked, not
  /// trusted: every reused chunk passes the same digest gate as a served
  /// one, and the commitment equality at install covers the whole state.
  void set_diff_base(Snapshot base) { diff_base_ = std::move(base); }

  /// Dispatch one delivered message; true when the topic was ours.
  bool handle(const net::Message& msg) { return client_.handle(msg); }
  /// Timeout scan; call once per simulation step.
  void tick() { client_.tick(); }

  [[nodiscard]] bool done() const { return client_.done(); }
  [[nodiscard]] bool failed() const { return client_.failed(); }
  [[nodiscard]] const std::optional<Error>& failure() const {
    return client_.failure();
  }
  [[nodiscard]] std::size_t chunks_received() const {
    return client_.chunks_received();
  }
  /// Per-peer striping/reputation state (tests, diagnostics).
  [[nodiscard]] const std::vector<net::SnapshotClient::PeerState>& peers()
      const {
    return client_.peers();
  }

 private:
  [[nodiscard]] net::SnapshotClient::Hooks make_hooks();

  Blockchain& chain_;
  const LightClient& light_client_;
  std::optional<SnapshotManifest> manifest_;  ///< accepted for the active sync
  std::optional<Snapshot> diff_base_;         ///< local chunks to reuse
  net::SnapshotClient client_;
};

}  // namespace mv::ledger
