// Ledger glue for chunked snapshot transfer (net/snapshot_transfer.h).
//
// The transport layer is payload-agnostic; this module supplies the ledger
// semantics on both ends:
//
//   server — make_snapshot_source() adapts a Blockchain into the callbacks a
//            net::SnapshotServer serves from: manifests and chunks for any
//            height the retention ring covers, plus the block suffix.
//   client — SnapshotCatchup drives a net::SnapshotClient whose hooks bind
//            every served byte to a LightClient-verified header: the manifest
//            commitment root must equal header.state_root, each chunk must
//            match the manifest's digest, and the installed state must
//            reproduce the commitment byte-identically
//            (Blockchain::init_from_snapshot). The suffix is then replayed
//            through full block validation (import_blocks).
//
// Trust chain details in DESIGN.md §9.
#pragma once

#include "ledger/chain.h"
#include "ledger/light_client.h"
#include "net/snapshot_transfer.h"

namespace mv::ledger {

/// Serve snapshots and block suffixes from `chain`. The reference must
/// outlive the returned Source. Heights outside the retention window answer
/// with an empty payload (the transport's "unavailable" refusal).
[[nodiscard]] net::SnapshotServer::Source make_snapshot_source(
    const Blockchain& chain,
    std::size_t chunk_size = kSnapshotChunkSize);

/// A fresh replica's catch-up driver: fetch manifest + chunks for a header
/// the light client has verified, install via Blockchain::init_from_snapshot,
/// then replay only the block suffix. All references must outlive this.
class SnapshotCatchup {
 public:
  SnapshotCatchup(net::Network& network, Blockchain& chain,
                  const LightClient& light_client,
                  net::SnapshotTransferConfig config = {});

  /// Handlers run at delivery time; call once the replica's NodeId is known.
  void bind(NodeId self) { client_.bind(self); }

  /// Begin syncing the snapshot at `height` from `peer`. The light client
  /// must already hold the header at `height` (it anchors every check).
  [[nodiscard]] Status start(NodeId peer, std::int64_t height);

  /// Dispatch one delivered message; true when the topic was ours.
  bool handle(const net::Message& msg) { return client_.handle(msg); }
  /// Timeout scan; call once per simulation step.
  void tick() { client_.tick(); }

  [[nodiscard]] bool done() const { return client_.done(); }
  [[nodiscard]] bool failed() const { return client_.failed(); }
  [[nodiscard]] const std::optional<Error>& failure() const {
    return client_.failure();
  }
  [[nodiscard]] std::size_t chunks_received() const {
    return client_.chunks_received();
  }

 private:
  [[nodiscard]] net::SnapshotClient::Hooks make_hooks();

  Blockchain& chain_;
  const LightClient& light_client_;
  std::optional<SnapshotManifest> manifest_;  ///< accepted for the active sync
  net::SnapshotClient client_;
};

}  // namespace mv::ledger
