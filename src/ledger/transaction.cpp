#include "ledger/transaction.h"

namespace mv::ledger {

Bytes TransferBody::encode() const {
  ByteWriter w;
  w.u64(to.value);
  w.u64(amount);
  return w.take();
}

Result<TransferBody> TransferBody::decode(const Bytes& bytes) {
  ByteReader r(bytes);
  auto to = r.u64();
  if (!to.ok()) return to.error();
  auto amount = r.u64();
  if (!amount.ok()) return amount.error();
  return TransferBody{crypto::Address{to.value()}, amount.value()};
}

Bytes AuditRecordBody::encode() const {
  ByteWriter w;
  w.str(data_category);
  w.str(purpose);
  w.u64(subject);
  w.str(pet_applied);
  return w.take();
}

Result<AuditRecordBody> AuditRecordBody::decode(const Bytes& bytes) {
  ByteReader r(bytes);
  auto category = r.str();
  if (!category.ok()) return category.error();
  auto purpose = r.str();
  if (!purpose.ok()) return purpose.error();
  auto subject = r.u64();
  if (!subject.ok()) return subject.error();
  auto pet = r.str();
  if (!pet.ok()) return pet.error();
  return AuditRecordBody{category.value(), purpose.value(), subject.value(),
                         pet.value()};
}

namespace {

/// Everything covered by the signature, in wire order. Works against any
/// writer with the ByteWriter field interface (ByteWriter, HashWriter).
template <typename Writer>
void write_signing_fields(Writer& w, const Transaction& tx) {
  w.u64(tx.sender_pub.y);
  w.u64(tx.nonce);
  w.u8(static_cast<std::uint8_t>(tx.kind));
  w.str(tx.contract);
  w.str(tx.method);
  w.bytes(tx.payload);
  w.u64(tx.fee);
}

std::size_t signing_fields_size(const Transaction& tx) {
  return 8 + 8 + 1 + (4 + tx.contract.size()) + (4 + tx.method.size()) +
         (4 + tx.payload.size()) + 8;
}

}  // namespace

Bytes Transaction::signing_bytes() const {
  ByteWriter w;
  w.reserve(signing_fields_size(*this));
  write_signing_fields(w, *this);
  return w.take();
}

Bytes Transaction::encode() const {
  ByteWriter w;
  w.reserve(signing_fields_size(*this) + 16);
  write_signing_fields(w, *this);
  w.u64(sig.e);
  w.u64(sig.s);
  return w.take();
}

Result<Transaction> Transaction::decode(const Bytes& bytes) {
  ByteReader r(bytes);
  Transaction tx;
  auto pub = r.u64();
  if (!pub.ok()) return pub.error();
  tx.sender_pub.y = pub.value();
  auto nonce = r.u64();
  if (!nonce.ok()) return nonce.error();
  tx.nonce = nonce.value();
  auto kind = r.u8();
  if (!kind.ok()) return kind.error();
  if (kind.value() > static_cast<std::uint8_t>(TxKind::kContractCall)) {
    return make_error("tx.bad_kind", "unknown transaction kind");
  }
  tx.kind = static_cast<TxKind>(kind.value());
  auto contract = r.str();
  if (!contract.ok()) return contract.error();
  tx.contract = contract.value();
  auto method = r.str();
  if (!method.ok()) return method.error();
  tx.method = method.value();
  auto payload = r.bytes();
  if (!payload.ok()) return payload.error();
  tx.payload = payload.value();
  auto fee = r.u64();
  if (!fee.ok()) return fee.error();
  tx.fee = fee.value();
  auto e = r.u64();
  if (!e.ok()) return e.error();
  auto s = r.u64();
  if (!s.ok()) return s.error();
  tx.sig = crypto::Signature{e.value(), s.value()};
  if (!r.exhausted()) {
    return make_error("tx.trailing_bytes", "unparsed trailing data");
  }
  return tx;
}

crypto::Digest Transaction::digest() const {
  // Streams the exact encode() byte sequence; no intermediate buffer.
  crypto::HashWriter w;
  write_signing_fields(w, *this);
  w.u64(sig.e);
  w.u64(sig.s);
  return w.digest();
}

bool Transaction::signature_valid() const {
  return crypto::verify(sender_pub, signing_bytes(), sig);
}

namespace {
Transaction sign_tx(Transaction tx, const crypto::Wallet& from, Rng& rng) {
  tx.sig = from.sign(tx.signing_bytes(), rng);
  return tx;
}
}  // namespace

Transaction make_transfer(const crypto::Wallet& from, std::uint64_t nonce,
                          crypto::Address to, std::uint64_t amount,
                          std::uint64_t fee, Rng& rng) {
  Transaction tx;
  tx.sender_pub = from.public_key();
  tx.nonce = nonce;
  tx.kind = TxKind::kTransfer;
  tx.payload = TransferBody{to, amount}.encode();
  tx.fee = fee;
  return sign_tx(std::move(tx), from, rng);
}

Transaction make_audit_record(const crypto::Wallet& from, std::uint64_t nonce,
                              AuditRecordBody body, std::uint64_t fee,
                              Rng& rng) {
  Transaction tx;
  tx.sender_pub = from.public_key();
  tx.nonce = nonce;
  tx.kind = TxKind::kAuditRecord;
  tx.payload = body.encode();
  tx.fee = fee;
  return sign_tx(std::move(tx), from, rng);
}

Transaction make_contract_call(const crypto::Wallet& from, std::uint64_t nonce,
                               std::string contract, std::string method,
                               Bytes args, std::uint64_t fee, Rng& rng) {
  Transaction tx;
  tx.sender_pub = from.public_key();
  tx.nonce = nonce;
  tx.kind = TxKind::kContractCall;
  tx.contract = std::move(contract);
  tx.method = std::move(method);
  tx.payload = std::move(args);
  tx.fee = fee;
  return sign_tx(std::move(tx), from, rng);
}

}  // namespace mv::ledger
