// On-chain audit registry for data-collection activities (§II-D).
//
// "A distributed ledger (Blockchain) can register any party's data collection
// and processing activities in the metaverse." AuditClient is the party-side
// helper that files records; AuditQuery is the regulator/user-side view that
// inspects the committed log and checks inclusion proofs, plus the
// data-monopoly check the paper calls for ("the metaverse should guarantee no
// data monopoly from any parties").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ledger/chain.h"
#include "ledger/transaction.h"

namespace mv::ledger {

/// Party-side: builds signed audit-record transactions with correct nonces.
class AuditClient {
 public:
  AuditClient(const crypto::Wallet& wallet, Rng& rng)
      : wallet_(wallet), rng_(rng) {}

  /// Build the next audit-record transaction for this collector against the
  /// current chain state. The nonce is the high-water mark of the committed
  /// nonce and the locally issued counter, so records keep sequencing
  /// correctly whether or not earlier ones have been committed yet.
  [[nodiscard]] Transaction record(const LedgerState& state,
                                   AuditRecordBody body, std::uint64_t fee = 0);

  /// Drop locally issued-but-uncommitted sequencing (e.g. after the mempool
  /// was flushed); the next record resumes from the committed nonce.
  void reset_pending() { next_nonce_ = 0; }

 private:
  const crypto::Wallet& wallet_;
  Rng& rng_;
  std::uint64_t next_nonce_ = 0;  ///< local issue counter (high-water mark)
};

/// Aggregated view per collector.
struct CollectorProfile {
  crypto::Address collector;
  std::uint64_t records = 0;
  std::map<std::string, std::uint64_t> by_category;
  std::uint64_t without_pet = 0;  ///< records with pet_applied == "none"
};

/// Regulator/user-side queries over the committed audit log.
class AuditQuery {
 public:
  explicit AuditQuery(const Blockchain& chain) : chain_(chain) {}

  [[nodiscard]] std::vector<StoredAuditRecord> by_subject(std::uint64_t subject) const;
  [[nodiscard]] std::vector<StoredAuditRecord> by_collector(crypto::Address collector) const;
  [[nodiscard]] std::vector<CollectorProfile> collector_profiles() const;

  /// Herfindahl-Hirschman index over collectors' record shares in [0,1]; the
  /// paper's "no data monopoly" guarantee is checked as HHI below a threshold.
  [[nodiscard]] double data_concentration_hhi() const;

  /// True when one collector holds more than `threshold` of all records.
  [[nodiscard]] bool has_data_monopoly(double threshold = 0.5) const;

 private:
  const Blockchain& chain_;
};

}  // namespace mv::ledger
