#include "ledger/chain.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>

namespace mv::ledger {

Blockchain::Blockchain(ChainConfig config,
                       std::shared_ptr<const ContractRegistry> contracts,
                       LedgerState genesis)
    : Blockchain(std::move(config), std::move(contracts),
                 std::make_shared<const LedgerState>(std::move(genesis))) {}

Blockchain::Blockchain(ChainConfig config,
                       std::shared_ptr<const ContractRegistry> contracts,
                       std::shared_ptr<const LedgerState> genesis)
    : config_(std::move(config)),
      contracts_(std::move(contracts)),
      genesis_(std::move(genesis)) {
  if (genesis_ == nullptr) {
    throw std::invalid_argument("Blockchain: null genesis state");
  }
  if (config_.validators.empty()) {
    throw std::invalid_argument("Blockchain: empty validator set");
  }
  // A configured job queue brings its own workers (shared, prioritized);
  // only the queue-less parallel configuration spawns a dedicated pool.
  if (config_.validation.job_queue == nullptr && config_.validation.threads > 1) {
    pool_ = std::make_shared<ThreadPool>(config_.validation.threads);
  }
  ByteWriter w;
  w.str("genesis");
  w.raw(genesis_->commitment().root);
  genesis_hash_ = crypto::sha256(w.data());
  base_hash_ = genesis_hash_;
}

LedgerState& Blockchain::mutable_state() {
  if (!state_.has_value()) state_ = *genesis_;
  return *state_;
}

crypto::Digest Blockchain::tip_hash() const {
  return blocks_.empty() ? base_hash_ : blocks_.back().header.hash();
}

const Block* Blockchain::block_at(std::int64_t height) const {
  if (height < base_height_ || height >= this->height()) return nullptr;
  return &blocks_[static_cast<std::size_t>(height - base_height_)];
}

const crypto::PublicKey& Blockchain::expected_proposer(std::int64_t height) const {
  return config_.validators[static_cast<std::size_t>(height) %
                            config_.validators.size()];
}

Block Blockchain::assemble(const crypto::Wallet& proposer,
                           const std::vector<Transaction>& candidates,
                           Tick timestamp, Rng& rng) const {
  Block block;
  block.header.height = height();
  block.header.prev_hash = tip_hash();
  block.header.timestamp = timestamp;
  block.header.proposer_pub = proposer.public_key();

  auto scratch = LedgerStateOverlay::reader(state());
  if (candidates.size() <= config_.max_txs_per_block) {
    const auto outcome =
        apply_block(scratch, candidates, *contracts_, block.header.height,
                    config_.validation, pool_.get(), ApplyMode::kSkipFailures);
    vstats_.record(outcome);
    for (const std::size_t i : outcome.applied) block.txs.push_back(candidates[i]);
  } else {
    // Over-full candidate lists keep the historical serial loop: the block
    // cap cuts off mid-list, and "first max_txs successes" is inherently
    // order-sequential.
    for (const auto& tx : candidates) {
      if (block.txs.size() >= config_.max_txs_per_block) break;
      if (scratch.apply(tx, *contracts_, block.header.height).ok()) {
        block.txs.push_back(tx);
      }
    }
  }
  block.header.tx_root = Block::compute_tx_root(block.txs);
  block.header.state_root = scratch.commitment().root;
  block.header.proposer_sig = proposer.sign(block.header.signing_bytes(), rng);
  return block;
}

Status Blockchain::check(const Block& block, LedgerStateOverlay& scratch) const {
  const auto& h = block.header;
  if (h.height != height()) {
    return Status::fail("block.bad_height",
                        "expected " + std::to_string(height()));
  }
  if (h.prev_hash != tip_hash()) {
    return Status::fail("block.bad_parent", "prev_hash does not match tip");
  }
  if (h.proposer_pub != expected_proposer(h.height)) {
    return Status::fail("block.wrong_proposer",
                        "not this round's proposer (PoA round-robin)");
  }
  if (!crypto::verify(h.proposer_pub, h.signing_bytes(), h.proposer_sig)) {
    return Status::fail("block.bad_proposer_sig", "header signature invalid");
  }
  if (block.txs.size() > config_.max_txs_per_block) {
    return Status::fail("block.too_many_txs", "exceeds max_txs_per_block");
  }
  if (h.tx_root != Block::compute_tx_root(block.txs)) {
    return Status::fail("block.bad_tx_root", "Merkle root mismatch");
  }
  const auto outcome =
      apply_block(scratch, block.txs, *contracts_, h.height, config_.validation,
                  pool_.get(), ApplyMode::kAllOrNothing);
  vstats_.record(outcome);
  if (!outcome.status.ok()) {
    return Status::fail("block.bad_tx",
                        "tx " + std::to_string(outcome.failed_index) + ": " +
                            outcome.status.error().to_string());
  }
  if (scratch.commitment().root != h.state_root) {
    return Status::fail("block.bad_state_root", "post-state mismatch");
  }
  return {};
}

Status Blockchain::validate(const Block& block) const {
  auto scratch = LedgerStateOverlay::reader(state());
  return check(block, scratch);
}

Status Blockchain::append(const Block& block) {
  // First committed block: materialize the working copy of the shared
  // genesis (a no-op on the copying constructor path).
  LedgerState& state = mutable_state();
  auto scratch = LedgerStateOverlay::writer(state);
  if (auto s = check(block, scratch); !s.ok()) return s;
  // The inverse delta must be read off the pre-commit base; it feeds the
  // retention ring that serves historical proofs and snapshot export, and
  // tells the commit hook which accounts/stores the block touched.
  StateUndo undo;
  const bool want_undo =
      config_.state_retention > 0 || static_cast<bool>(commit_hook_);
  if (want_undo) undo = scratch.capture_undo(state);
  scratch.commit();
  blocks_.push_back(block);
  if (commit_hook_) commit_hook_(block, undo);
  if (config_.state_retention > 0) {
    retained_.push_back(Retained{std::move(undo), state.commitment()});
    if (retained_.size() > config_.state_retention) retained_.pop_front();
  }
  return {};
}

bool Blockchain::retains(std::int64_t height) const {
  const std::int64_t tip = this->height() - 1;
  if (height > tip) return false;
  if (height == tip) return true;  // the tip state is state_ itself
  // Rolling back to `height` consumes the undos of blocks (height, tip].
  return tip - height <= static_cast<std::int64_t>(retained_.size());
}

const StateCommitment* Blockchain::commitment_at(std::int64_t height) const {
  const std::int64_t tip = this->height() - 1;
  const std::int64_t back = tip - height;  // slots behind the ring's back()
  if (height > tip || back >= static_cast<std::int64_t>(retained_.size())) {
    return nullptr;
  }
  return &retained_[retained_.size() - 1 - static_cast<std::size_t>(back)].commitment;
}

Result<LedgerState> Blockchain::state_at(std::int64_t height) const {
  const std::int64_t tip = this->height() - 1;
  LedgerState state = this->state();
  for (std::int64_t h = tip; h > height; --h) {
    const std::size_t slot =
        retained_.size() - 1 - static_cast<std::size_t>(tip - h);
    state.apply_undo(retained_[slot].undo);
  }
  // Sanity anchor: a retained commitment for `height` must be reproduced
  // exactly (absent only at the very edge of the window).
  if (const StateCommitment* expected = commitment_at(height);
      expected != nullptr && state.commitment() != *expected) {
    return make_error(errc::kChainRetentionCorrupt,
                      "rolled-back state does not match retained commitment");
  }
  return state;
}

Result<crypto::MerkleProof> Blockchain::prove_tx(std::int64_t block_height,
                                                 std::size_t tx_index) const {
  if (block_height < 0 || block_height >= height()) {
    return make_error(errc::kChainBadHeight, "no such block");
  }
  const Block* block = block_at(block_height);
  if (block == nullptr) {
    return make_error(errc::kChainPrunedHeight,
                      "block below the snapshot base is not held");
  }
  if (tx_index >= block->txs.size()) {
    return make_error(errc::kChainBadTxIndex, "no such transaction");
  }
  return block->tx_tree().prove(tx_index);
}

namespace {
/// Fill an AccountProof from any state that holds `addr`'s section.
AccountProof make_account_proof(const LedgerState& state, crypto::Address addr,
                                std::int64_t block_height) {
  AccountProof ap;
  ap.address = addr;
  ap.height = block_height;
  const auto bal = state.find_balance(addr);
  const std::uint64_t nonce = state.nonce(addr);
  ap.statement.has_balance = bal.has_value();
  ap.statement.balance = bal.value_or(0);
  ap.statement.nonce = nonce;
  ap.statement.exists = bal.has_value() || nonce != 0;
  ap.commitment = state.commitment();
  ap.proof = state.prove_account(addr);
  return ap;
}
}  // namespace

Result<AccountProof> Blockchain::prove_account(crypto::Address addr,
                                               std::int64_t block_height) const {
  // Client proof queries ride the lowest-priority lane of the job queue when
  // one is configured: under overload they are the first traffic shed, and a
  // shed query answers immediately with chain.overloaded instead of queueing
  // behind consensus work. Without a queue (or inline) behaviour is
  // unchanged.
  if (JobQueue* queue = config_.validation.job_queue.get(); queue != nullptr) {
    std::optional<Result<AccountProof>> out;
    const bool ran = queue->run(JobClass::kClientQuery, [&] {
      out = prove_account_now(addr, block_height);
    });
    if (!ran) {
      return make_error(errc::kChainOverloaded,
                        "client query shed by the job queue (class " +
                            std::string(job_class_name(JobClass::kClientQuery)) +
                            " over its ceiling)");
    }
    return std::move(*out);
  }
  return prove_account_now(addr, block_height);
}

Result<AccountProof> Blockchain::prove_account_now(
    crypto::Address addr, std::int64_t block_height) const {
  if (block_height < 0 || block_height >= height()) {
    return make_error(errc::kChainBadHeight, "no such block");
  }
  if (!retains(block_height)) {
    return make_error(errc::kChainStaleHeight,
                      "height " + std::to_string(block_height) +
                          " is beyond the retention window (tip " +
                          std::to_string(height() - 1) + ", retention " +
                          std::to_string(config_.state_retention) + ")");
  }
  if (block_height == height() - 1) {
    return make_account_proof(state(), addr, block_height);
  }
  auto state = state_at(block_height);
  if (!state.ok()) return state.error();
  return make_account_proof(state.value(), addr, block_height);
}

Result<Snapshot> Blockchain::export_snapshot(std::int64_t height,
                                             std::size_t chunk_size) const {
  if (height < 0 || height >= this->height()) {
    return make_error(errc::kChainBadHeight, "no such block");
  }
  if (!retains(height)) {
    return make_error(errc::kChainStaleHeight,
                      "height " + std::to_string(height) +
                          " is beyond the retention window");
  }
  if (height == this->height() - 1) {
    return build_snapshot(state(), height, chunk_size);
  }
  // Historical export fast path: roll the undo ring back over a content-only
  // copy (no O(state) Merkle-tree clone) and take the manifest commitment
  // from the retention ring, which holds the post-state commitment of every
  // retained height. The receiver's trust chain (header.state_root ==
  // manifest root → per-chunk digests → decoded-state commitment re-check)
  // verifies the result end to end, so a corrupt ring cannot produce an
  // installable-but-wrong snapshot — it produces one every receiver rejects.
  if (const StateCommitment* commitment = commitment_at(height);
      commitment != nullptr) {
    LedgerState content = state().content_clone();
    const std::int64_t tip = this->height() - 1;
    for (std::int64_t h = tip; h > height; --h) {
      const std::size_t slot =
          retained_.size() - 1 - static_cast<std::size_t>(tip - h);
      content.apply_undo(retained_[slot].undo);
    }
    return build_snapshot(content, height, *commitment, chunk_size);
  }
  // Edge of the window: the undo chain still reaches `height` but its own
  // commitment has left the ring — fall back to the verifying full copy.
  auto state = state_at(height);
  if (!state.ok()) return state.error();
  return build_snapshot(state.value(), height, chunk_size);
}

Status Blockchain::init_from_snapshot(const SnapshotManifest& manifest,
                                      const std::vector<Bytes>& chunks,
                                      const BlockHeader& anchor) {
  if (height() != 0) {
    return Status::fail(errc::kChainNotFresh,
                        "snapshot install requires a chain with no blocks");
  }
  // Defense in depth: the caller is expected to have walked the header chain
  // (LightClient), but the anchor is cheap to re-check against this chain's
  // own validator schedule before any state is installed.
  if (anchor.height != manifest.height || anchor.height < 0) {
    return Status::fail(errc::kChainBadAnchor,
                        "anchor header height does not match the manifest");
  }
  if (anchor.proposer_pub != expected_proposer(anchor.height)) {
    return Status::fail(errc::kChainBadAnchor, "anchor proposer not in schedule");
  }
  if (!crypto::verify(anchor.proposer_pub, anchor.signing_bytes(),
                      anchor.proposer_sig)) {
    return Status::fail(errc::kChainBadAnchor, "anchor header signature invalid");
  }
  if (anchor.state_root != manifest.commitment.root) {
    return Status::fail(errc::kChainBadAnchor,
                        "anchor state_root does not match the manifest");
  }
  auto state = assemble_snapshot(manifest, chunks);
  if (!state.ok()) {
    return Status::fail(state.error().code, state.error().message);
  }
  state_ = std::move(state).value();
  base_height_ = anchor.height + 1;
  base_hash_ = anchor.hash();
  retained_.clear();
  return {};
}

Bytes Blockchain::export_blocks() const { return export_blocks_from(base_height_); }

Bytes Blockchain::export_blocks_from(std::int64_t from_height) const {
  const std::int64_t start = std::clamp(from_height, base_height_, height());
  const auto begin = static_cast<std::size_t>(start - base_height_);
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(blocks_.size() - begin));
  for (std::size_t i = begin; i < blocks_.size(); ++i) {
    w.bytes(blocks_[i].encode());
  }
  return w.take();
}

Result<std::size_t> Blockchain::import_blocks(const Bytes& data) {
  ByteReader r(data);
  auto count = r.u32();
  if (!count.ok()) return count.error();
  if (count.value() > r.remaining() / 4) {
    return make_error(errc::kChainBadBlockCount, "count exceeds payload size");
  }
  std::size_t appended = 0;
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto block_bytes = r.bytes();
    if (!block_bytes.ok()) return block_bytes.error();
    auto block = Block::decode(block_bytes.value());
    if (!block.ok()) return block.error();
    // Skip blocks we already have (replaying a full archive onto a node
    // that is partially synced).
    if (block.value().header.height < height()) continue;
    if (auto s = append(block.value()); !s.ok()) {
      return make_error(s.error().code,
                        "import stopped at height " +
                            std::to_string(block.value().header.height) + ": " +
                            s.error().message);
    }
    ++appended;
  }
  return appended;
}

bool Blockchain::verify_tx_inclusion(std::int64_t block_height,
                                     const crypto::Digest& tx_digest,
                                     const crypto::MerkleProof& proof) const {
  const Block* block = block_at(block_height);
  if (block == nullptr) return false;
  return crypto::MerkleTree::verify(tx_digest, proof, block->header.tx_root);
}

}  // namespace mv::ledger
