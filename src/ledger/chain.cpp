#include "ledger/chain.h"

#include <stdexcept>

namespace mv::ledger {

Blockchain::Blockchain(ChainConfig config,
                       std::shared_ptr<const ContractRegistry> contracts,
                       LedgerState genesis)
    : config_(std::move(config)),
      contracts_(std::move(contracts)),
      state_(std::move(genesis)) {
  if (config_.validators.empty()) {
    throw std::invalid_argument("Blockchain: empty validator set");
  }
  if (config_.validation.threads > 1) {
    pool_ = std::make_shared<ThreadPool>(config_.validation.threads);
  }
  ByteWriter w;
  w.str("genesis");
  w.raw(state_.commitment().root);
  genesis_hash_ = crypto::sha256(w.data());
}

crypto::Digest Blockchain::tip_hash() const {
  return blocks_.empty() ? genesis_hash_ : blocks_.back().header.hash();
}

const crypto::PublicKey& Blockchain::expected_proposer(std::int64_t height) const {
  return config_.validators[static_cast<std::size_t>(height) %
                            config_.validators.size()];
}

Block Blockchain::assemble(const crypto::Wallet& proposer,
                           const std::vector<Transaction>& candidates,
                           Tick timestamp, Rng& rng) const {
  Block block;
  block.header.height = height();
  block.header.prev_hash = tip_hash();
  block.header.timestamp = timestamp;
  block.header.proposer_pub = proposer.public_key();

  auto scratch = LedgerStateOverlay::reader(state_);
  if (candidates.size() <= config_.max_txs_per_block) {
    const auto outcome =
        apply_block(scratch, candidates, *contracts_, block.header.height,
                    config_.validation, pool_.get(), ApplyMode::kSkipFailures);
    vstats_.record(outcome);
    for (const std::size_t i : outcome.applied) block.txs.push_back(candidates[i]);
  } else {
    // Over-full candidate lists keep the historical serial loop: the block
    // cap cuts off mid-list, and "first max_txs successes" is inherently
    // order-sequential.
    for (const auto& tx : candidates) {
      if (block.txs.size() >= config_.max_txs_per_block) break;
      if (scratch.apply(tx, *contracts_, block.header.height).ok()) {
        block.txs.push_back(tx);
      }
    }
  }
  block.header.tx_root = Block::compute_tx_root(block.txs);
  block.header.state_root = scratch.commitment().root;
  block.header.proposer_sig = proposer.sign(block.header.signing_bytes(), rng);
  return block;
}

Status Blockchain::check(const Block& block, LedgerStateOverlay& scratch) const {
  const auto& h = block.header;
  if (h.height != height()) {
    return Status::fail("block.bad_height",
                        "expected " + std::to_string(height()));
  }
  if (h.prev_hash != tip_hash()) {
    return Status::fail("block.bad_parent", "prev_hash does not match tip");
  }
  if (h.proposer_pub != expected_proposer(h.height)) {
    return Status::fail("block.wrong_proposer",
                        "not this round's proposer (PoA round-robin)");
  }
  if (!crypto::verify(h.proposer_pub, h.signing_bytes(), h.proposer_sig)) {
    return Status::fail("block.bad_proposer_sig", "header signature invalid");
  }
  if (block.txs.size() > config_.max_txs_per_block) {
    return Status::fail("block.too_many_txs", "exceeds max_txs_per_block");
  }
  if (h.tx_root != Block::compute_tx_root(block.txs)) {
    return Status::fail("block.bad_tx_root", "Merkle root mismatch");
  }
  const auto outcome =
      apply_block(scratch, block.txs, *contracts_, h.height, config_.validation,
                  pool_.get(), ApplyMode::kAllOrNothing);
  vstats_.record(outcome);
  if (!outcome.status.ok()) {
    return Status::fail("block.bad_tx",
                        "tx " + std::to_string(outcome.failed_index) + ": " +
                            outcome.status.error().to_string());
  }
  if (scratch.commitment().root != h.state_root) {
    return Status::fail("block.bad_state_root", "post-state mismatch");
  }
  return {};
}

Status Blockchain::validate(const Block& block) const {
  auto scratch = LedgerStateOverlay::reader(state_);
  return check(block, scratch);
}

Status Blockchain::append(const Block& block) {
  auto scratch = LedgerStateOverlay::writer(state_);
  if (auto s = check(block, scratch); !s.ok()) return s;
  scratch.commit();
  blocks_.push_back(block);
  return {};
}

Result<crypto::MerkleProof> Blockchain::prove_tx(std::int64_t block_height,
                                                 std::size_t tx_index) const {
  if (block_height < 0 || block_height >= height()) {
    return make_error("chain.bad_height", "no such block");
  }
  const Block& block = blocks_[static_cast<std::size_t>(block_height)];
  if (tx_index >= block.txs.size()) {
    return make_error("chain.bad_tx_index", "no such transaction");
  }
  return block.tx_tree().prove(tx_index);
}

Result<AccountProof> Blockchain::prove_account(crypto::Address addr,
                                               std::int64_t block_height) const {
  if (block_height < 0 || block_height >= height()) {
    return make_error("chain.bad_height", "no such block");
  }
  if (block_height != height() - 1) {
    return make_error("chain.stale_height",
                      "only the tip state is materialized; requested " +
                          std::to_string(block_height) + ", tip is " +
                          std::to_string(height() - 1));
  }
  AccountProof ap;
  ap.address = addr;
  ap.height = block_height;
  const auto bal = state_.find_balance(addr);
  const std::uint64_t nonce = state_.nonce(addr);
  ap.statement.has_balance = bal.has_value();
  ap.statement.balance = bal.value_or(0);
  ap.statement.nonce = nonce;
  ap.statement.exists = bal.has_value() || nonce != 0;
  ap.commitment = state_.commitment();
  ap.proof = state_.prove_account(addr);
  return ap;
}

Bytes Blockchain::export_blocks() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(blocks_.size()));
  for (const auto& block : blocks_) w.bytes(block.encode());
  return w.take();
}

Result<std::size_t> Blockchain::import_blocks(const Bytes& data) {
  ByteReader r(data);
  auto count = r.u32();
  if (!count.ok()) return count.error();
  if (count.value() > r.remaining() / 4) {
    return make_error("chain.bad_block_count", "count exceeds payload size");
  }
  std::size_t appended = 0;
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto block_bytes = r.bytes();
    if (!block_bytes.ok()) return block_bytes.error();
    auto block = Block::decode(block_bytes.value());
    if (!block.ok()) return block.error();
    // Skip blocks we already have (replaying a full archive onto a node
    // that is partially synced).
    if (block.value().header.height < height()) continue;
    if (auto s = append(block.value()); !s.ok()) {
      return make_error(s.error().code,
                        "import stopped at height " +
                            std::to_string(block.value().header.height) + ": " +
                            s.error().message);
    }
    ++appended;
  }
  return appended;
}

bool Blockchain::verify_tx_inclusion(std::int64_t block_height,
                                     const crypto::Digest& tx_digest,
                                     const crypto::MerkleProof& proof) const {
  if (block_height < 0 || block_height >= height()) return false;
  const auto& header = blocks_[static_cast<std::size_t>(block_height)].header;
  return crypto::MerkleTree::verify(tx_digest, proof, header.tx_root);
}

}  // namespace mv::ledger
