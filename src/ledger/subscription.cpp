#include "ledger/subscription.h"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>

namespace mv::ledger {

// ------------------------------------------------------------- CommitPush

Bytes CommitPush::encode() const {
  ByteWriter w;
  w.u32(kCommitPushVersion);
  w.bytes(header.encode());
  w.u32(static_cast<std::uint32_t>(proofs.size()));
  for (const auto& p : proofs) w.bytes(p.encode());
  w.u32(static_cast<std::uint32_t>(events.size()));
  for (const auto& e : events) {
    w.str(e.contract);
    w.str(e.key);
  }
  return w.take();
}

Result<CommitPush> CommitPush::decode(const Bytes& bytes) {
  ByteReader r(bytes);
  const auto version = r.u32();
  if (!version.ok()) return version.error();
  if (version.value() != kCommitPushVersion) {
    return make_error(errc::kSubBadVersion, "unknown CommitPush version " +
                                                std::to_string(version.value()));
  }
  CommitPush push;
  auto header_bytes = r.bytes();
  if (!header_bytes.ok()) return header_bytes.error();
  auto header = BlockHeader::decode(header_bytes.value());
  if (!header.ok()) return header.error();
  push.header = std::move(header).value();
  const auto n_proofs = r.u32();
  if (!n_proofs.ok()) return n_proofs.error();
  // Every element costs at least its 4-byte length prefix; a count beyond
  // that is forged and must not drive a huge reserve().
  if (n_proofs.value() > r.remaining() / 4) {
    return make_error(errc::kSubBadPush, "proof count exceeds payload size");
  }
  push.proofs.reserve(n_proofs.value());
  for (std::uint32_t i = 0; i < n_proofs.value(); ++i) {
    auto proof_bytes = r.bytes();
    if (!proof_bytes.ok()) return proof_bytes.error();
    auto proof = AccountProof::decode(proof_bytes.value());
    if (!proof.ok()) return proof.error();
    push.proofs.push_back(std::move(proof).value());
  }
  const auto n_events = r.u32();
  if (!n_events.ok()) return n_events.error();
  if (n_events.value() > r.remaining() / 4) {
    return make_error(errc::kSubBadPush, "event count exceeds payload size");
  }
  push.events.reserve(n_events.value());
  for (std::uint32_t i = 0; i < n_events.value(); ++i) {
    auto contract = r.str();
    if (!contract.ok()) return contract.error();
    auto key = r.str();
    if (!key.ok()) return key.error();
    push.events.push_back(
        StoreEvent{std::move(contract).value(), std::move(key).value()});
  }
  if (!r.exhausted()) {
    return make_error(errc::kSubBadPush, "unparsed trailing data");
  }
  return push;
}

// -------------------------------------------------- SubscriptionPublisher

SubscriptionPublisher::SubscriptionPublisher(Blockchain& chain,
                                             net::SubscriptionServer& server)
    : chain_(chain), server_(server) {
  chain_.set_commit_hook([this](const Block& block, const StateUndo& undo) {
    on_commit(block, undo);
  });
}

void SubscriptionPublisher::on_commit(const Block& block,
                                      const StateUndo& undo) {
  CommitPush push;
  push.header = block.header;

  // Touched = every account whose balance or nonce the block wrote (the undo
  // delta is exactly that set); proofs go out only for the ones someone
  // watches. The tip state IS the block's post-state here — the hook runs
  // inside append(), so proofs are built directly (public LedgerState API),
  // never through the chain's queue-routed query path.
  const auto interests = server_.account_interests();
  if (!interests.empty()) {
    std::set<std::uint64_t> touched;
    for (const auto& [addr, prior] : undo.balances) touched.insert(addr.value);
    for (const auto& [addr, prior] : undo.nonces) touched.insert(addr.value);
    const LedgerState& state = chain_.state();
    for (const auto key : interests) {
      if (touched.count(key) == 0) continue;
      const crypto::Address addr{key};
      AccountProof ap;
      ap.address = addr;
      ap.height = block.header.height;
      const auto bal = state.find_balance(addr);
      ap.statement.has_balance = bal.has_value();
      ap.statement.balance = bal.value_or(0);
      ap.statement.nonce = state.nonce(addr);
      ap.statement.exists = bal.has_value() || ap.statement.nonce != 0;
      ap.commitment = state.commitment();
      ap.proof = state.prove_account(addr);
      push.proofs.push_back(std::move(ap));
    }
  }

  const auto store_interests = server_.store_interests();
  for (const auto& name : store_interests) {
    const auto it = undo.stores.find(name);
    if (it == undo.stores.end()) continue;
    for (const auto& [key, prior] : it->second.entries) {
      push.events.push_back(StoreEvent{name, key});
    }
  }

  // Published even with zero subscribers: the retained ring must stay
  // height-contiguous so a later subscriber can resync through this commit.
  server_.publish(block.header.height,
                  std::make_shared<const Bytes>(push.encode()));
  ++published_;
}

// ------------------------------------------------------- SubscriptionFeed

void SubscriptionFeed::subscribe(NodeId server) {
  server_ = server;
  net::SubscriptionRequest req;
  req.from_height = lc_.height();
  req.headers = true;
  req.accounts.reserve(config_.accounts.size());
  for (const auto addr : config_.accounts) req.accounts.push_back(addr.value);
  req.stores = config_.stores;
  (void)network_.send(self_, server_, net::kSubSubscribeReq, req.encode());
}

bool SubscriptionFeed::handle(const net::Message& msg) {
  if (msg.topic == net::kSubPush) {
    on_push(msg);
    return true;
  }
  if (msg.topic == net::kSubSubscribeResp) {
    on_subscribe_resp(msg);
    return true;
  }
  return false;
}

void SubscriptionFeed::on_push(const net::Message& msg) {
  if (msg.from != server_) return;
  // Every delivered push is acked, consumed or not: the ack is a liveness
  // signal draining the server's per-client backlog, and a gap is resolved
  // by resubscribing (which resets that backlog), not by going silent.
  (void)network_.send(self_, server_, net::kSubAck,
                      net::encode_sub_ack(lc_.height()));
  auto push = CommitPush::decode(msg.payload());
  if (!push.ok()) {
    ++rejected_;
    return;
  }
  const std::int64_t expected = lc_.height();
  const std::int64_t h = push.value().header.height;
  if (h < expected) return;  // replayed duplicate; already consumed
  if (h > expected) {
    // Pushes were lost between expected and h (shed fan-out, partition,
    // eviction). The header chain must stay contiguous, so nothing from this
    // push is usable; re-sync from our own height out of the retained ring.
    ++gaps_;
    ++resubscribes_;
    subscribe(server_);
    return;
  }
  if (!lc_.accept_header(push.value().header).ok()) {
    ++rejected_;  // forged or corrupted header: push channel adds no trust
    return;
  }
  ++consumed_;
  stale_ = false;
  if (on_header) on_header(push.value().header);
  if (on_account) {
    for (const auto& ap : push.value().proofs) {
      const bool watched =
          std::find_if(config_.accounts.begin(), config_.accounts.end(),
                       [&](crypto::Address a) { return a == ap.address; }) !=
          config_.accounts.end();
      if (!watched) continue;
      auto statement = lc_.verify_account(ap);
      if (!statement.ok()) {
        ++rejected_;
        continue;
      }
      on_account(statement.value(), ap);
    }
  }
  if (on_store_event) {
    for (const auto& event : push.value().events) {
      const bool watched = std::find(config_.stores.begin(),
                                     config_.stores.end(),
                                     event.contract) != config_.stores.end();
      if (watched) on_store_event(event);
    }
  }
}

void SubscriptionFeed::on_subscribe_resp(const net::Message& msg) {
  if (msg.from != server_) return;
  const auto resp = net::SubscriptionResponse::decode(msg.payload());
  if (!resp.has_value()) return;
  server_earliest_ = resp->earliest;
  if (resp->code == errc::kSubStaleFrom) {
    // The ring moved past us; pushes cannot rebuild the missing headers.
    // The owner must bootstrap from a snapshot and construct a fresh feed
    // anchored there.
    stale_ = true;
  }
}

}  // namespace mv::ledger
