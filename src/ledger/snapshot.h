// Verified state snapshots: O(state) replica catch-up.
//
// A lagging replica historically replayed every block; with per-section
// commitments (DESIGN.md §6) a snapshot of the LedgerState can be verified
// directly instead. This module is the codec layer:
//
//   payload  — "mv.snapshot.v1" section stream (accounts, audit log,
//              contract stores, burned fees) in canonical order. Strict
//              decode in the ProofFuzz style: every byte is load-bearing,
//              non-canonical orderings and trailing bytes are rejected, and
//              re-encoding a decoded payload reproduces it byte-identically.
//   chunks   — the payload split at a fixed chunk size; each chunk is
//              addressed by index and committed by a domain-separated digest.
//   manifest — height, the state's commitment sections, chunk geometry, and
//              the per-chunk digest list. The commitment root is recombined
//              on decode (never transported), so a manifest binds to a block
//              header's state_root; chunk_root() folds the digest list into
//              one binding digest (a binary Merkle root).
//
// Trust chain (DESIGN.md §9): LightClient-verified header → header.state_root
// == manifest commitment root → per-chunk digests → payload → decoded state,
// whose commitment() must reproduce the manifest commitment byte-identically
// (full_rehash_commitment() is the differential oracle).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/merkle.h"
#include "ledger/state.h"

namespace mv::ledger {

/// Default chunk size for snapshot transfer (bytes). Small enough that a
/// dropped or corrupted chunk is cheap to re-request, large enough that the
/// per-chunk digest list stays tiny next to the payload.
inline constexpr std::size_t kSnapshotChunkSize = 64 * 1024;

/// Chunk commitment: sha256("mv.snapshot.chunk" || index || data). The index
/// is hashed in so a valid chunk replayed at another position is rejected.
[[nodiscard]] crypto::Digest snapshot_chunk_digest(
    std::uint32_t index, std::span<const std::uint8_t> data);

/// Manifest a serving replica publishes for one snapshot.
struct SnapshotManifest {
  std::int64_t height = 0;     ///< block height whose post-state this is
  StateCommitment commitment;  ///< sections; root recombined on decode
  std::uint32_t chunk_size = 0;
  std::uint64_t total_bytes = 0;  ///< payload length
  std::vector<crypto::Digest> chunk_digests;

  [[nodiscard]] std::uint32_t chunk_count() const {
    return static_cast<std::uint32_t>(chunk_digests.size());
  }
  /// Binary Merkle root over the chunk digest list — one digest binding the
  /// whole chunk set (derived, never transported).
  [[nodiscard]] crypto::Digest chunk_root() const;

  [[nodiscard]] Bytes encode() const;
  /// Strict decode: version byte, chunk geometry consistency
  /// (chunk_count == ceil(total_bytes / chunk_size), both nonzero), and no
  /// trailing bytes. commitment.root is recombined from the sections.
  [[nodiscard]] static Result<SnapshotManifest> decode(const Bytes& bytes);
};

/// Serialize `state` into the canonical "mv.snapshot.v1" payload.
[[nodiscard]] Bytes encode_snapshot_payload(const LedgerState& state);

/// Strict inverse of encode_snapshot_payload. Enforces canonical form: the
/// domain tag, strictly ascending account addresses / contract names / store
/// keys, account flags in {0,1}, no leafless account entries (flags == 0 and
/// nonce == 0), and full consumption of the buffer.
[[nodiscard]] Result<LedgerState> decode_snapshot_payload(const Bytes& bytes);

/// A manifest plus its chunk payloads, ready to serve.
struct Snapshot {
  SnapshotManifest manifest;
  std::vector<Bytes> chunks;
};

/// Encode, chunk, and digest `state` as of block `height`.
[[nodiscard]] Snapshot build_snapshot(const LedgerState& state,
                                      std::int64_t height,
                                      std::size_t chunk_size = kSnapshotChunkSize);

/// build_snapshot with a precomputed commitment — the export fast path: the
/// chain's retention ring already holds the post-state commitment of every
/// retained height, so a historical export can roll back a content-only copy
/// (LedgerState::content_clone) and skip the O(state) Merkle-tree clone that
/// state.commitment() would require. `commitment` must be the commitment of
/// `state`; the receiver's trust chain rejects the snapshot otherwise.
[[nodiscard]] Snapshot build_snapshot(const LedgerState& state,
                                      std::int64_t height,
                                      const StateCommitment& commitment,
                                      std::size_t chunk_size);

/// Verify `chunks` against the manifest (count, exact sizes, per-chunk
/// digests), reassemble and decode the payload, and check that the decoded
/// state's commitment reproduces manifest.commitment byte-identically.
[[nodiscard]] Result<LedgerState> assemble_snapshot(
    const SnapshotManifest& manifest, const std::vector<Bytes>& chunks);

}  // namespace mv::ledger
