// Light client: header-chain follower + account proof verification.
//
// The paper's audit registry (§II-D, §III-B) only delivers accountability if
// a user can check what the chain claims about them without trusting a full
// node. A light client holds just the block headers (32-byte state roots and
// proposer signatures) and verifies served account proofs against them — no
// transaction replay, no LedgerState.
//
// The trust chain, link by link:
//   header.height/prev_hash  — hash-chain linkage back to the known genesis
//   header.proposer_pub/sig  — round-robin PoA proposer actually signed it
//   proof.commitment         — section digests recombine to header.state_root
//   proof.proof              — Merkle path from the account leaf (or a
//                              non-membership path) to commitment.accounts_root
//
// Wire formats are specified in DESIGN.md §"Account proofs & light client".
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/merkle_map.h"
#include "crypto/wallet.h"
#include "ledger/block.h"
#include "ledger/state.h"

namespace mv::ledger {

/// What a full node asserts about one account at one height.
struct AccountStatement {
  bool exists = false;       ///< account leaf present in the accounts trie
  bool has_balance = false;  ///< balance entry present (nonce may still be set)
  std::uint64_t balance = 0;
  std::uint64_t nonce = 0;

  [[nodiscard]] bool operator==(const AccountStatement&) const = default;
};

/// Self-contained, serializable account proof served by a full node.
///
/// Carries the full StateCommitment section breakdown because block headers
/// commit only to the combined root: the verifier recombines the sections
/// (combine_commitment_root) to check them against header.state_root, then
/// walks the Merkle path under commitment.accounts_root.
struct AccountProof {
  crypto::Address address;
  std::int64_t height = 0;  ///< block height the proof is anchored at
  AccountStatement statement;
  StateCommitment commitment;
  crypto::MerkleMapProof proof;

  [[nodiscard]] Bytes encode() const;
  /// Strict decode: rejects trailing bytes and malformed embedded proofs.
  /// `commitment.root` is recombined from the sections, never read off the
  /// wire — a served root that disagrees with its sections cannot survive.
  [[nodiscard]] static Result<AccountProof> decode(const Bytes& bytes);
};

/// Verify `ap` against a trusted state root (e.g. a checked header's
/// state_root). Confirms the commitment sections recombine to `state_root`,
/// the statement is internally consistent, and the Merkle path proves the
/// claimed leaf (or non-membership) under commitment.accounts_root.
[[nodiscard]] Status verify_account_proof(const AccountProof& ap,
                                          const crypto::Digest& state_root);

struct LightClientConfig {
  std::vector<crypto::PublicKey> validators;  ///< round-robin proposer order
  crypto::Digest genesis_hash{};              ///< prev_hash of block 0
};

/// Follows the header chain and audits account statements against it.
/// Holds headers only — never a LedgerState.
class LightClient {
 public:
  explicit LightClient(LightClientConfig config) : config_(std::move(config)) {}

  /// Accept the next header: height must extend the chain, prev_hash must
  /// link (to genesis_hash for block 0), and the round-robin proposer for
  /// that height must have signed it.
  [[nodiscard]] Status accept_header(const BlockHeader& header);

  /// Number of accepted headers; the next accepted header has this height.
  [[nodiscard]] std::int64_t height() const {
    return static_cast<std::int64_t>(headers_.size());
  }
  [[nodiscard]] const BlockHeader* header_at(std::int64_t h) const;
  /// Hash of the newest accepted header (genesis_hash when empty).
  [[nodiscard]] crypto::Digest tip_hash() const;

  /// Verify an account proof against the accepted header at proof.height and
  /// return the now-trustworthy statement.
  [[nodiscard]] Result<AccountStatement> verify_account(
      const AccountProof& ap) const;

 private:
  LightClientConfig config_;
  std::vector<BlockHeader> headers_;
};

}  // namespace mv::ledger
