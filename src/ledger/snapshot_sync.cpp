#include "ledger/snapshot_sync.h"

namespace mv::ledger {

net::SnapshotServer::Source make_snapshot_source(const Blockchain& chain,
                                                 std::size_t chunk_size) {
  net::SnapshotServer::Source source;
  source.manifest = [&chain, chunk_size](std::int64_t height) -> Bytes {
    auto snap = chain.export_snapshot(height, chunk_size);
    if (!snap.ok()) return {};
    return snap.value().manifest.encode();
  };
  source.chunk = [&chain, chunk_size](std::int64_t height,
                                      std::uint32_t index) -> Bytes {
    // Re-exporting per chunk keeps the server stateless; a serving replica
    // that cares can wrap this in a cache keyed by height.
    auto snap = chain.export_snapshot(height, chunk_size);
    if (!snap.ok() || index >= snap.value().chunks.size()) return {};
    return std::move(snap.value().chunks[index]);
  };
  source.blocks = [&chain](std::int64_t from_height) -> Bytes {
    return chain.export_blocks_from(from_height);
  };
  return source;
}

SnapshotCatchup::SnapshotCatchup(net::Network& network, Blockchain& chain,
                                 const LightClient& light_client,
                                 net::SnapshotTransferConfig config)
    : chain_(chain),
      light_client_(light_client),
      client_(network, config, make_hooks()) {}

Status SnapshotCatchup::start(NodeId peer, std::int64_t height) {
  if (light_client_.header_at(height) == nullptr) {
    return Status::fail(errc::kSnapshotUnknownHeader,
                        "light client has no verified header at this height");
  }
  manifest_.reset();
  return client_.start(peer, height);
}

net::SnapshotClient::Hooks SnapshotCatchup::make_hooks() {
  net::SnapshotClient::Hooks hooks;
  hooks.accept_manifest =
      [this](std::int64_t height,
             const Bytes& bytes) -> Result<std::vector<crypto::Digest>> {
    auto manifest = SnapshotManifest::decode(bytes);
    if (!manifest.ok()) return std::move(manifest).error();
    if (manifest.value().height != height) {
      return make_error(errc::kSnapshotBadManifest,
                        "manifest height does not match the request");
    }
    const BlockHeader* header = light_client_.header_at(height);
    if (header == nullptr) {
      return make_error(errc::kSnapshotUnknownHeader,
                        "light client lost the anchoring header");
    }
    // The one binding that makes every later check meaningful: the served
    // commitment must recombine to the verified header's state root.
    if (manifest.value().commitment.root != header->state_root) {
      return make_error(errc::kSnapshotUntrustedManifest,
                        "manifest commitment does not match the verified "
                        "header's state root");
    }
    manifest_ = std::move(manifest).value();
    return manifest_->chunk_digests;
  };
  hooks.chunk_digest = [](std::uint32_t index,
                          const Bytes& chunk) -> crypto::Digest {
    return snapshot_chunk_digest(index, chunk);
  };
  hooks.install =
      [this](std::vector<Bytes> chunks) -> Result<std::int64_t> {
    if (!manifest_.has_value()) {
      return make_error(errc::kSnapshotNoManifest, "install without a manifest");
    }
    const BlockHeader* anchor = light_client_.header_at(manifest_->height);
    if (anchor == nullptr) {
      return make_error(errc::kSnapshotUnknownHeader,
                        "light client lost the anchoring header");
    }
    if (Status s = chain_.init_from_snapshot(*manifest_, chunks, *anchor);
        !s.ok()) {
      return std::move(s).error();
    }
    return chain_.height();
  };
  hooks.replay = [this](const Bytes& blocks) -> Status {
    auto applied = chain_.import_blocks(blocks);
    if (!applied.ok()) return applied.error();
    return {};
  };
  return hooks;
}

}  // namespace mv::ledger
