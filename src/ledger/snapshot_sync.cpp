#include "ledger/snapshot_sync.h"

#include <algorithm>

namespace mv::ledger {

std::shared_ptr<const Snapshot> SnapshotExportCache::get_or_export(
    const Blockchain& chain, std::int64_t height, std::size_t chunk_size) {
  const Key key{height, chunk_size};
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->first == key) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it);  // touch
      return lru_.front().second;
    }
  }
  // Built under the lock: concurrent requests for the same height would
  // otherwise race to duplicate the most expensive operation this module
  // performs. Serve workers serialize here only on a cold entry.
  auto exported = chain.export_snapshot(height, chunk_size);
  if (!exported.ok()) return nullptr;
  ++stats_.misses;
  auto pinned =
      std::make_shared<const Snapshot>(std::move(exported).value());
  lru_.emplace_front(key, pinned);
  while (lru_.size() > capacity_) lru_.pop_back();
  return pinned;
}

net::SnapshotServer::Source make_snapshot_source(const Blockchain& chain,
                                                 std::size_t chunk_size,
                                                 SnapshotExportCache* cache) {
  net::SnapshotServer::Source source;
  source.manifest = [&chain, chunk_size,
                     cache](std::int64_t height) -> Bytes {
    if (cache != nullptr) {
      auto snap = cache->get_or_export(chain, height, chunk_size);
      return snap == nullptr ? Bytes{} : snap->manifest.encode();
    }
    auto snap = chain.export_snapshot(height, chunk_size);
    if (!snap.ok()) return {};
    return snap.value().manifest.encode();
  };
  source.chunk = [&chain, chunk_size, cache](std::int64_t height,
                                             std::uint32_t index) -> Bytes {
    if (cache != nullptr) {
      // Served from the pinned export: consistent for the whole sync even
      // after the chain commits past the retention window.
      auto snap = cache->get_or_export(chain, height, chunk_size);
      if (snap == nullptr || index >= snap->chunks.size()) return {};
      return snap->chunks[index];
    }
    // Re-exporting per chunk keeps the server stateless; a serving replica
    // that cares wraps this in a SnapshotExportCache.
    auto snap = chain.export_snapshot(height, chunk_size);
    if (!snap.ok() || index >= snap.value().chunks.size()) return {};
    return std::move(snap.value().chunks[index]);
  };
  source.blocks = [&chain](std::int64_t from_height) -> Bytes {
    return chain.export_blocks_from(from_height);
  };
  return source;
}

SnapshotCatchup::SnapshotCatchup(net::Network& network, Blockchain& chain,
                                 const LightClient& light_client,
                                 net::SnapshotTransferConfig config)
    : chain_(chain),
      light_client_(light_client),
      client_(network, config, make_hooks()) {}

Status SnapshotCatchup::start(std::vector<NodeId> peers, std::int64_t height) {
  if (light_client_.header_at(height) == nullptr) {
    return Status::fail(errc::kSnapshotUnknownHeader,
                        "light client has no verified header at this height");
  }
  manifest_.reset();
  return client_.start(std::move(peers), height);
}

net::SnapshotClient::Hooks SnapshotCatchup::make_hooks() {
  net::SnapshotClient::Hooks hooks;
  hooks.accept_manifest =
      [this](std::int64_t height,
             const Bytes& bytes) -> Result<std::vector<crypto::Digest>> {
    auto manifest = SnapshotManifest::decode(bytes);
    if (!manifest.ok()) return std::move(manifest).error();
    if (manifest.value().height != height) {
      return make_error(errc::kSnapshotBadManifest,
                        "manifest height does not match the request");
    }
    const BlockHeader* header = light_client_.header_at(height);
    if (header == nullptr) {
      return make_error(errc::kSnapshotUnknownHeader,
                        "light client lost the anchoring header");
    }
    // The one binding that makes every later check meaningful: the served
    // commitment must recombine to the verified header's state root.
    if (manifest.value().commitment.root != header->state_root) {
      return make_error(errc::kSnapshotUntrustedManifest,
                        "manifest commitment does not match the verified "
                        "header's state root");
    }
    manifest_ = std::move(manifest).value();
    return manifest_->chunk_digests;
  };
  hooks.chunk_digest = [](std::uint32_t index,
                          const Bytes& chunk) -> crypto::Digest {
    return snapshot_chunk_digest(index, chunk);
  };
  hooks.prefill = [this]() -> std::vector<std::pair<std::uint32_t, Bytes>> {
    std::vector<std::pair<std::uint32_t, Bytes>> out;
    if (!diff_base_.has_value() || !manifest_.has_value()) return out;
    const SnapshotManifest& base = diff_base_->manifest;
    // The diff is anchored on the chunk geometry: digests commit to
    // (index, bytes) under the same chunk size, so an equal digest at an
    // equal index pins identical payload bytes at the same offset. A base
    // with another chunk size shares no digests and contributes nothing.
    if (base.chunk_size != manifest_->chunk_size) return out;
    const std::size_t overlap =
        std::min({base.chunk_digests.size(), diff_base_->chunks.size(),
                  manifest_->chunk_digests.size()});
    for (std::size_t i = 0; i < overlap; ++i) {
      if (base.chunk_digests[i] == manifest_->chunk_digests[i]) {
        out.emplace_back(static_cast<std::uint32_t>(i), diff_base_->chunks[i]);
      }
    }
    return out;
  };
  hooks.install =
      [this](std::vector<Bytes> chunks) -> Result<std::int64_t> {
    if (!manifest_.has_value()) {
      return make_error(errc::kSnapshotNoManifest, "install without a manifest");
    }
    const BlockHeader* anchor = light_client_.header_at(manifest_->height);
    if (anchor == nullptr) {
      return make_error(errc::kSnapshotUnknownHeader,
                        "light client lost the anchoring header");
    }
    if (Status s = chain_.init_from_snapshot(*manifest_, chunks, *anchor);
        !s.ok()) {
      return std::move(s).error();
    }
    return chain_.height();
  };
  hooks.replay = [this](const Bytes& blocks) -> Status {
    auto applied = chain_.import_blocks(blocks);
    if (!applied.ok()) return applied.error();
    return {};
  };
  return hooks;
}

}  // namespace mv::ledger
