#include "ledger/light_client.h"

#include <algorithm>
#include <string>

namespace mv::ledger {

// ------------------------------------------------------------ AccountProof

Bytes AccountProof::encode() const {
  ByteWriter w;
  w.u64(address.value);
  w.i64(height);
  w.u8(statement.exists ? 1 : 0);
  w.u8(statement.has_balance ? 1 : 0);
  w.u64(statement.balance);
  w.u64(statement.nonce);
  // Commitment sections only; the combined root is derived, not transported.
  w.raw(commitment.accounts_root);
  w.u64(commitment.account_count);
  w.raw(commitment.audit_digest);
  w.u64(commitment.audit_count);
  w.raw(commitment.stores_digest);
  w.u64(commitment.burned_fees);
  w.bytes(proof.encode());
  return w.take();
}

Result<AccountProof> AccountProof::decode(const Bytes& bytes) {
  ByteReader r(bytes);
  AccountProof ap;
  auto addr = r.u64();
  if (!addr.ok()) return addr.error();
  ap.address = crypto::Address{addr.value()};
  auto height = r.i64();
  if (!height.ok()) return height.error();
  ap.height = height.value();
  auto exists = r.u8();
  if (!exists.ok()) return exists.error();
  auto has_balance = r.u8();
  if (!has_balance.ok()) return has_balance.error();
  if (exists.value() > 1 || has_balance.value() > 1) {
    return make_error("proof.bad_statement", "flag byte is not 0 or 1");
  }
  ap.statement.exists = exists.value() == 1;
  ap.statement.has_balance = has_balance.value() == 1;
  auto balance = r.u64();
  if (!balance.ok()) return balance.error();
  ap.statement.balance = balance.value();
  auto nonce = r.u64();
  if (!nonce.ok()) return nonce.error();
  ap.statement.nonce = nonce.value();

  auto read_digest = [&r](crypto::Digest& out) -> Status {
    auto raw = r.raw(out.size());
    if (!raw.ok()) return raw.error();
    std::copy(raw.value().begin(), raw.value().end(), out.begin());
    return {};
  };
  if (Status s = read_digest(ap.commitment.accounts_root); !s.ok()) return s.error();
  auto account_count = r.u64();
  if (!account_count.ok()) return account_count.error();
  ap.commitment.account_count = account_count.value();
  if (Status s = read_digest(ap.commitment.audit_digest); !s.ok()) return s.error();
  auto audit_count = r.u64();
  if (!audit_count.ok()) return audit_count.error();
  ap.commitment.audit_count = audit_count.value();
  if (Status s = read_digest(ap.commitment.stores_digest); !s.ok()) return s.error();
  auto burned = r.u64();
  if (!burned.ok()) return burned.error();
  ap.commitment.burned_fees = burned.value();
  ap.commitment.root = combine_commitment_root(ap.commitment);

  auto proof_bytes = r.bytes();
  if (!proof_bytes.ok()) return proof_bytes.error();
  auto proof = crypto::MerkleMapProof::decode(proof_bytes.value());
  if (!proof.ok()) return proof.error();
  ap.proof = std::move(proof).value();
  if (!r.exhausted()) {
    return make_error("proof.trailing_bytes", "unconsumed bytes after proof");
  }
  return ap;
}

Status verify_account_proof(const AccountProof& ap,
                            const crypto::Digest& state_root) {
  // 1. The served section breakdown must recombine to the trusted root.
  if (combine_commitment_root(ap.commitment) != state_root) {
    return Status::fail("proof.bad_commitment",
                        "commitment sections do not match the header state root");
  }
  // 2. The statement must be internally consistent with leaf existence: a
  //    leaf is materialized iff a balance entry is present or the nonce is
  //    nonzero (LedgerState::refresh_account_leaf).
  const AccountStatement& st = ap.statement;
  if (!st.exists && (st.has_balance || st.balance != 0 || st.nonce != 0)) {
    return Status::fail("proof.bad_statement",
                        "absent account must have zero balance and nonce");
  }
  if (st.exists && !st.has_balance && st.nonce == 0) {
    return Status::fail("proof.bad_statement",
                        "present account must have a balance entry or a nonce");
  }
  if (!st.has_balance && st.balance != 0) {
    return Status::fail("proof.bad_statement", "balance value without entry");
  }
  // 3. The Merkle path must prove the claimed leaf (or its absence) under
  //    the accounts root.
  const std::optional<crypto::Digest> leaf =
      st.exists ? std::optional<crypto::Digest>(account_leaf_digest(
                      st.has_balance, st.balance, st.nonce))
                : std::nullopt;
  if (!crypto::MerkleMap::verify(ap.commitment.accounts_root, ap.address.value,
                                 leaf, ap.proof)) {
    return Status::fail("proof.bad_path",
                        "Merkle path does not verify against accounts root");
  }
  return {};
}

// ------------------------------------------------------------- LightClient

Status LightClient::accept_header(const BlockHeader& header) {
  if (header.height != height()) {
    return Status::fail("light.bad_height",
                        "expected height " + std::to_string(height()) + " got " +
                            std::to_string(header.height));
  }
  const crypto::Digest expected_prev =
      headers_.empty() ? config_.genesis_hash : headers_.back().hash();
  if (header.prev_hash != expected_prev) {
    return Status::fail("light.bad_parent", "prev_hash does not link to tip");
  }
  if (config_.validators.empty()) {
    return Status::fail("light.no_validators", "validator set is empty");
  }
  const auto idx = static_cast<std::size_t>(header.height) %
                   config_.validators.size();
  if (header.proposer_pub.y != config_.validators[idx].y) {
    return Status::fail("light.wrong_proposer",
                        "header not signed by the scheduled proposer");
  }
  const Bytes msg = header.signing_bytes();
  if (!crypto::verify(header.proposer_pub, msg, header.proposer_sig)) {
    return Status::fail("light.bad_proposer_sig", "proposer signature invalid");
  }
  headers_.push_back(header);
  return {};
}

const BlockHeader* LightClient::header_at(std::int64_t h) const {
  if (h < 0 || h >= height()) return nullptr;
  return &headers_[static_cast<std::size_t>(h)];
}

crypto::Digest LightClient::tip_hash() const {
  return headers_.empty() ? config_.genesis_hash : headers_.back().hash();
}

Result<AccountStatement> LightClient::verify_account(
    const AccountProof& ap) const {
  const BlockHeader* header = header_at(ap.height);
  if (header == nullptr) {
    return make_error("light.unknown_height",
                      "no accepted header at height " + std::to_string(ap.height));
  }
  if (Status s = verify_account_proof(ap, header->state_root); !s.ok()) {
    return s.error();
  }
  return ap.statement;
}

}  // namespace mv::ledger
