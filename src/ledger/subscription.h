// Ledger glue for the subscription read path (net/subscription.h).
//
// The transport hub is payload-agnostic; this module gives pushes their
// meaning. Every committed block becomes one CommitPush: the signed header,
// a prove_account proof for each *touched and subscribed* account, and a
// (contract, key) event for each write into a subscribed store. The
// publisher hangs off Blockchain's commit hook, serializes the push once,
// and hands it to the SubscriptionServer, which shares the one buffer across
// every subscriber.
//
// Trust argument (DESIGN.md §11): a push proves itself with the same chain
// as a one-shot query — the header carries the proposer signature and hash
// link the light client already checks, and each account proof verifies
// against that header's state_root exactly like a prove_account response
// (§8). The push channel adds reach, not trust: a lying server cannot forge
// a push a SubscriptionFeed would accept.
//
// SubscriptionFeed is the client: a LightClient that consumes pushes instead
// of polling. Contiguity does the loss detection — a push whose height is
// ahead of the next expected header means pushes were lost (shed fan-out,
// partition, eviction), and the feed resubscribes from its own height, which
// the server serves out of its retained ring; if the ring has moved past the
// feed's height, the feed is marked stale and must bootstrap from a snapshot
// (ledger/snapshot_sync.h) before resuming.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ledger/chain.h"
#include "ledger/light_client.h"
#include "net/subscription.h"

namespace mv::ledger {

/// One write into a subscribed contract store (e.g. a governance proposal
/// book): which contract, which key. Subscribers re-read the value through
/// a proof-carrying query if they need it verified; the event is a wake-up,
/// not an authenticated value.
struct StoreEvent {
  std::string contract;
  std::string key;

  [[nodiscard]] bool operator==(const StoreEvent&) const = default;
};

inline constexpr std::uint32_t kCommitPushVersion = 1;

/// The unit the chain pushes per commit. Serialized once per commit; the
/// server fans the same buffer out to every subscriber.
struct CommitPush {
  BlockHeader header;
  std::vector<AccountProof> proofs;  ///< touched ∩ subscribed accounts
  std::vector<StoreEvent> events;    ///< writes into subscribed stores

  [[nodiscard]] Bytes encode() const;
  /// Strict versioned decode (rejects unknown versions, trailing bytes).
  [[nodiscard]] static Result<CommitPush> decode(const Bytes& bytes);
};

/// Server side: bridges Blockchain commits into SubscriptionServer pushes.
/// Construction installs the commit hook; the publisher must outlive the
/// chain's use of it (or the hook be cleared first). Proof construction
/// reads the chain's tip state directly — it runs inside the commit, where
/// the tip is the just-committed block, and must not re-enter the chain's
/// queue-routed query path.
class SubscriptionPublisher {
 public:
  SubscriptionPublisher(Blockchain& chain, net::SubscriptionServer& server);

  /// Pushes built (== commits observed since construction).
  [[nodiscard]] std::uint64_t published() const { return published_; }

 private:
  void on_commit(const Block& block, const StateUndo& undo);

  Blockchain& chain_;
  net::SubscriptionServer& server_;
  std::uint64_t published_ = 0;
};

/// What a feed watches. Headers are always consumed (they are the trust
/// anchor); accounts/stores select which proof/event callbacks fire.
struct SubscriptionFeedConfig {
  LightClientConfig light_client;
  std::vector<crypto::Address> accounts;
  std::vector<std::string> stores;
};

/// Client side: a push-fed light client. Drive handle() from the node's
/// network handler; callbacks fire only for verified data (on_account's
/// proof has been checked against the accepted header).
class SubscriptionFeed {
 public:
  SubscriptionFeed(net::Network& network, SubscriptionFeedConfig config)
      : network_(network),
        config_(std::move(config)),
        lc_(config_.light_client) {}

  void bind(NodeId self) { self_ = self; }

  /// Subscribe (or resubscribe) to `server`, asking for a resync from this
  /// feed's own next height, so no header is ever skipped.
  void subscribe(NodeId server);

  /// Dispatch one delivered message; true when the topic was ours.
  bool handle(const net::Message& msg);

  [[nodiscard]] const LightClient& light_client() const { return lc_; }
  /// Next header height the feed needs.
  [[nodiscard]] std::int64_t next_height() const { return lc_.height(); }
  /// True when the server's ring moved past this feed: pushes cannot resume
  /// until the feed bootstraps from a snapshot and is rebuilt at that height.
  [[nodiscard]] bool stale() const { return stale_; }
  /// Earliest height the server still retains (valid once stale()).
  [[nodiscard]] std::int64_t server_earliest() const { return server_earliest_; }

  std::function<void(const BlockHeader&)> on_header;
  std::function<void(const AccountStatement&, const AccountProof&)> on_account;
  std::function<void(const StoreEvent&)> on_store_event;

  [[nodiscard]] std::uint64_t pushes_consumed() const { return consumed_; }
  [[nodiscard]] std::uint64_t gaps_detected() const { return gaps_; }
  [[nodiscard]] std::uint64_t resubscribes() const { return resubscribes_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

 private:
  void on_push(const net::Message& msg);
  void on_subscribe_resp(const net::Message& msg);

  net::Network& network_;
  SubscriptionFeedConfig config_;
  LightClient lc_;
  NodeId self_;
  NodeId server_;
  bool stale_ = false;
  std::int64_t server_earliest_ = -1;
  std::uint64_t consumed_ = 0;      ///< pushes applied at the expected height
  std::uint64_t gaps_ = 0;          ///< pushes ahead of it (loss detected)
  std::uint64_t resubscribes_ = 0;  ///< gap-triggered re-subscriptions
  std::uint64_t rejected_ = 0;      ///< malformed/unverifiable pushes
};

}  // namespace mv::ledger
