// The blockchain: validated, totally ordered blocks plus the current state.
//
// Consensus model is proof-of-authority: a fixed validator set takes turns
// proposing (round-robin); the BFT vote itself is simulated in consensus.h.
// Every replica runs this same validation, so a block accepted anywhere is
// accepted everywhere.
#pragma once

#include <memory>
#include <vector>

#include "ledger/block.h"
#include "ledger/light_client.h"
#include "ledger/parallel.h"
#include "ledger/state.h"

namespace mv::ledger {

struct ChainConfig {
  std::vector<crypto::PublicKey> validators;  ///< round-robin proposer order
  std::size_t max_txs_per_block = 256;
  /// Parallel block application (ledger/parallel.h). threads == 1 keeps the
  /// historical single-overlay path; > 1 spawns a per-chain worker pool.
  ValidationConfig validation;
};

class Blockchain {
 public:
  Blockchain(ChainConfig config, std::shared_ptr<const ContractRegistry> contracts,
             LedgerState genesis);

  [[nodiscard]] const LedgerState& state() const { return state_; }
  [[nodiscard]] const ChainConfig& config() const { return config_; }
  [[nodiscard]] const ContractRegistry& contracts() const { return *contracts_; }

  /// Number of committed blocks; the next block has this height.
  [[nodiscard]] std::int64_t height() const {
    return static_cast<std::int64_t>(blocks_.size());
  }
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }
  [[nodiscard]] crypto::Digest tip_hash() const;

  /// Expected proposer public key for a given height (round-robin PoA).
  [[nodiscard]] const crypto::PublicKey& expected_proposer(std::int64_t height) const;

  /// Proposer side: trial-apply candidates in order, drop any that fail, and
  /// build a signed block on top of the current tip.
  [[nodiscard]] Block assemble(const crypto::Wallet& proposer,
                               const std::vector<Transaction>& candidates,
                               Tick timestamp, Rng& rng) const;

  /// Full validation + commit. On any failure the chain is unchanged.
  [[nodiscard]] Status append(const Block& block);

  /// Validate without committing (votes in the BFT round use this).
  [[nodiscard]] Status validate(const Block& block) const;

  /// Merkle inclusion proof for tx `tx_index` of block `block_height`.
  [[nodiscard]] Result<crypto::MerkleProof> prove_tx(std::int64_t block_height,
                                                     std::size_t tx_index) const;

  /// Verify an inclusion proof against a committed header.
  [[nodiscard]] bool verify_tx_inclusion(std::int64_t block_height,
                                         const crypto::Digest& tx_digest,
                                         const crypto::MerkleProof& proof) const;

  /// Account proof (balance/nonce leaf + Merkle path to the accounts root)
  /// anchored at block `block_height`'s state commitment. Only the tip
  /// (height() - 1) can be served: historical account tries are not
  /// materialized ("chain.stale_height"; the ROADMAP snapshot-sync item
  /// lifts this). The result verifies against the tip header's state_root
  /// with verify_account_proof / LightClient::verify_account.
  [[nodiscard]] Result<AccountProof> prove_account(crypto::Address addr,
                                                   std::int64_t block_height) const;

  /// Hash-chain anchor for block 0 (derived from the genesis state root);
  /// light clients seed their header chain with this.
  [[nodiscard]] crypto::Digest genesis_hash() const { return genesis_hash_; }

  /// Counters over block applications (assemble/validate/append). Updated
  /// from const validation paths; not meaningful if one chain is driven from
  /// several threads at once (replicas are single-threaded by design).
  [[nodiscard]] const ValidationStats& validation_stats() const { return vstats_; }

  /// Serialize every committed block (bootstrap/archive format).
  [[nodiscard]] Bytes export_blocks() const;
  /// Replay an exported stream from this chain's current height, fully
  /// re-validating each block. Stops at the first invalid block (the valid
  /// prefix stays committed). Returns the number of blocks appended.
  [[nodiscard]] Result<std::size_t> import_blocks(const Bytes& data);

 private:
  /// Validate the block by trial-applying it onto `scratch` (an overlay over
  /// the current state). On success the overlay holds the block's delta.
  [[nodiscard]] Status check(const Block& block, LedgerStateOverlay& scratch) const;

  ChainConfig config_;
  std::shared_ptr<const ContractRegistry> contracts_;
  LedgerState state_;
  crypto::Digest genesis_hash_;
  std::vector<Block> blocks_;
  std::shared_ptr<ThreadPool> pool_;  ///< null when validation.threads <= 1
  mutable ValidationStats vstats_;
};

}  // namespace mv::ledger
