// The blockchain: validated, totally ordered blocks plus the current state.
//
// Consensus model is proof-of-authority: a fixed validator set takes turns
// proposing (round-robin); the BFT vote itself is simulated in consensus.h.
// Every replica runs this same validation, so a block accepted anywhere is
// accepted everywhere.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "ledger/block.h"
#include "ledger/light_client.h"
#include "ledger/parallel.h"
#include "ledger/snapshot.h"
#include "ledger/state.h"

namespace mv::ledger {

struct ChainConfig {
  std::vector<crypto::PublicKey> validators;  ///< round-robin proposer order
  std::size_t max_txs_per_block = 256;
  /// Parallel block application (ledger/parallel.h). threads == 1 keeps the
  /// historical single-overlay path; > 1 spawns a per-chain worker pool.
  /// Setting validation.job_queue instead routes validation units, signature
  /// batches, and prove_account queries through a shared prioritized
  /// JobQueue (common/job_queue.h) — no per-chain pool is spawned, and a
  /// queue with workers()==0 reproduces the inline path byte-identically.
  ValidationConfig validation;
  /// How many recent heights behind the tip stay reconstructible (a ring of
  /// per-block undo deltas + commitments): prove_account and export_snapshot
  /// serve heights in [tip - state_retention, tip]. Capture costs O(touched)
  /// per committed block; 0 disables retention (tip-only, the historical
  /// behaviour).
  std::size_t state_retention = 8;
};

class Blockchain {
 public:
  Blockchain(ChainConfig config, std::shared_ptr<const ContractRegistry> contracts,
             LedgerState genesis);
  /// Shares the genesis state instead of cloning it into the chain. The
  /// mutable working copy is materialized lazily when the first block
  /// commits, so a replica that bootstraps via init_from_snapshot() never
  /// pays the O(state) genesis clone (or its teardown) at all — the chain
  /// goes straight from empty to the decoded snapshot state. The caller must
  /// not mutate the shared state; computing its commitment writes cached
  /// hashes, so callers sharing one genesis across threads must call
  /// genesis->commitment() once up front.
  Blockchain(ChainConfig config, std::shared_ptr<const ContractRegistry> contracts,
             std::shared_ptr<const LedgerState> genesis);

  [[nodiscard]] const LedgerState& state() const {
    return state_.has_value() ? *state_ : *genesis_;
  }
  [[nodiscard]] const ChainConfig& config() const { return config_; }
  [[nodiscard]] const ContractRegistry& contracts() const { return *contracts_; }

  /// Next block height. Equals the number of committed blocks on a chain
  /// grown from genesis; on a snapshot-initialized chain it starts at
  /// base_height() (heights below it are not held).
  [[nodiscard]] std::int64_t height() const {
    return base_height_ + static_cast<std::int64_t>(blocks_.size());
  }
  /// First block height this chain holds (> 0 after init_from_snapshot).
  [[nodiscard]] std::int64_t base_height() const { return base_height_; }
  /// Blocks held, ascending from base_height(). Prefer block_at() — it
  /// resolves by height regardless of the base offset.
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }
  /// Block at `height`, or nullptr when out of range / below base_height().
  [[nodiscard]] const Block* block_at(std::int64_t height) const;
  [[nodiscard]] crypto::Digest tip_hash() const;

  /// Expected proposer public key for a given height (round-robin PoA).
  [[nodiscard]] const crypto::PublicKey& expected_proposer(std::int64_t height) const;

  /// Proposer side: trial-apply candidates in order, drop any that fail, and
  /// build a signed block on top of the current tip.
  [[nodiscard]] Block assemble(const crypto::Wallet& proposer,
                               const std::vector<Transaction>& candidates,
                               Tick timestamp, Rng& rng) const;

  /// Full validation + commit. On any failure the chain is unchanged.
  [[nodiscard]] Status append(const Block& block);

  /// Observer of successful commits: the block just appended plus the
  /// inverse delta of its state changes — i.e. exactly which accounts and
  /// stores it touched. Runs synchronously inside append() after the state
  /// is committed (height() already counts the block), so the hook sees a
  /// consistent tip and must stay cheap or dispatch elsewhere; it must not
  /// call back into this chain's mutating API. One hook; set empty to clear.
  /// The subscription publisher (ledger/subscription.h) hangs off this.
  using CommitHook = std::function<void(const Block&, const StateUndo&)>;
  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

  /// Validate without committing (votes in the BFT round use this).
  [[nodiscard]] Status validate(const Block& block) const;

  /// Merkle inclusion proof for tx `tx_index` of block `block_height`.
  [[nodiscard]] Result<crypto::MerkleProof> prove_tx(std::int64_t block_height,
                                                     std::size_t tx_index) const;

  /// Verify an inclusion proof against a committed header.
  [[nodiscard]] bool verify_tx_inclusion(std::int64_t block_height,
                                         const crypto::Digest& tx_digest,
                                         const crypto::MerkleProof& proof) const;

  /// Account proof (balance/nonce leaf + Merkle path to the accounts root)
  /// anchored at block `block_height`'s state commitment. Serves the tip and
  /// every height the retention ring covers (config.state_retention heights
  /// behind it); "chain.stale_height" fires only beyond that window. The
  /// result verifies against that header's state_root with
  /// verify_account_proof / LightClient::verify_account.
  ///
  /// When validation.job_queue is configured, the query runs as a
  /// JobClass::kClientQuery job — the first traffic shed under overload —
  /// and a shed query returns "chain.overloaded" immediately.
  [[nodiscard]] Result<AccountProof> prove_account(crypto::Address addr,
                                                   std::int64_t block_height) const;

  /// Post-state commitment of block `height`, when the retention ring still
  /// covers it (the tip always is). nullptr otherwise.
  [[nodiscard]] const StateCommitment* commitment_at(std::int64_t height) const;

  /// Build a verified snapshot of the state as of block `height` (the tip or
  /// any height the retention ring covers; "chain.stale_height" beyond).
  /// O(state) — historical heights additionally roll back through the ring.
  [[nodiscard]] Result<Snapshot> export_snapshot(
      std::int64_t height, std::size_t chunk_size = kSnapshotChunkSize) const;

  /// Install a verified snapshot into a fresh chain (no committed blocks).
  /// `anchor` must be the committed header at manifest.height: it is
  /// re-checked here (proposer schedule + signature + state_root binding) on
  /// top of whatever header-chain verification the caller already did, the
  /// chunks are verified and decoded (assemble_snapshot), and the chain
  /// resumes at base_height() == anchor.height + 1 with anchor.hash() as the
  /// parent for the next block. Catch-up then replays only the suffix.
  [[nodiscard]] Status init_from_snapshot(const SnapshotManifest& manifest,
                                          const std::vector<Bytes>& chunks,
                                          const BlockHeader& anchor);

  /// Hash-chain anchor for block 0 (derived from the genesis state root);
  /// light clients seed their header chain with this.
  [[nodiscard]] crypto::Digest genesis_hash() const { return genesis_hash_; }

  /// Counters over block applications (assemble/validate/append). Updated
  /// from const validation paths; not meaningful if one chain is driven from
  /// several threads at once (replicas are single-threaded by design).
  [[nodiscard]] const ValidationStats& validation_stats() const { return vstats_; }

  /// Serialize every committed block (bootstrap/archive format).
  [[nodiscard]] Bytes export_blocks() const;
  /// Serialize the suffix starting at `from_height` (snapshot catch-up
  /// serves this instead of the full archive). Heights below base_height()
  /// are not held; the stream starts at max(from_height, base_height()).
  [[nodiscard]] Bytes export_blocks_from(std::int64_t from_height) const;
  /// Replay an exported stream from this chain's current height, fully
  /// re-validating each block. Stops at the first invalid block (the valid
  /// prefix stays committed). Returns the number of blocks appended.
  [[nodiscard]] Result<std::size_t> import_blocks(const Bytes& data);

 private:
  /// Validate the block by trial-applying it onto `scratch` (an overlay over
  /// the current state). On success the overlay holds the block's delta.
  [[nodiscard]] Status check(const Block& block, LedgerStateOverlay& scratch) const;

  /// The proof construction itself (prove_account minus queue admission).
  [[nodiscard]] Result<AccountProof> prove_account_now(
      crypto::Address addr, std::int64_t block_height) const;

  /// One retention-ring slot: how to revert the block at its height, plus
  /// the post-block commitment (reconstruction sanity anchor).
  struct Retained {
    StateUndo undo;
    StateCommitment commitment;
  };
  /// True when the retention ring covers block `height`'s post-state.
  [[nodiscard]] bool retains(std::int64_t height) const;
  /// Reconstruct the post-state of block `height` by rolling the tip state
  /// back through the ring (O(state) copy + O(touched) per rolled-back
  /// block). `height` must be retained and strictly below the tip.
  [[nodiscard]] Result<LedgerState> state_at(std::int64_t height) const;

  /// The working state, or nullopt while the chain still *is* the genesis
  /// state (no committed blocks, no installed snapshot). state() reads
  /// through to *genesis_ in that case; mutable_state() materializes.
  [[nodiscard]] LedgerState& mutable_state();

  ChainConfig config_;
  std::shared_ptr<const ContractRegistry> contracts_;
  std::shared_ptr<const LedgerState> genesis_;
  std::optional<LedgerState> state_;
  crypto::Digest genesis_hash_;
  std::vector<Block> blocks_;
  std::int64_t base_height_ = 0;  ///< height of blocks_[0] (snapshot offset)
  crypto::Digest base_hash_;      ///< parent hash when blocks_ is empty
  /// Undo ring, oldest first; back() reverts the tip block. Capped at
  /// config.state_retention.
  std::deque<Retained> retained_;
  std::shared_ptr<ThreadPool> pool_;  ///< null when validation.threads <= 1
  mutable ValidationStats vstats_;
  CommitHook commit_hook_;
};

}  // namespace mv::ledger
