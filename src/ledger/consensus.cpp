#include "ledger/consensus.h"

#include "common/logging.h"

namespace mv::ledger {

namespace {

Bytes vote_signing_bytes(std::int64_t height, const crypto::Digest& block_hash) {
  ByteWriter w;
  w.str("vote");
  w.i64(height);
  w.raw(block_hash);
  return w.take();
}

struct VoteMsg {
  std::int64_t height = 0;
  crypto::Digest block_hash{};
  crypto::PublicKey voter;
  crypto::Signature sig;

  [[nodiscard]] Bytes encode() const {
    ByteWriter w;
    w.i64(height);
    w.raw(block_hash);
    w.u64(voter.y);
    w.u64(sig.e);
    w.u64(sig.s);
    return w.take();
  }

  [[nodiscard]] static Result<VoteMsg> decode(const Bytes& bytes) {
    ByteReader r(bytes);
    VoteMsg v;
    auto h = r.i64();
    if (!h.ok()) return h.error();
    v.height = h.value();
    auto hash = r.raw(32);
    if (!hash.ok()) return hash.error();
    std::copy(hash.value().begin(), hash.value().end(), v.block_hash.begin());
    auto pub = r.u64();
    if (!pub.ok()) return pub.error();
    v.voter.y = pub.value();
    auto e = r.u64();
    if (!e.ok()) return e.error();
    auto s = r.u64();
    if (!s.ok()) return s.error();
    v.sig = crypto::Signature{e.value(), s.value()};
    return v;
  }
};

}  // namespace

ValidatorCommittee::ValidatorCommittee(
    net::Network& network, std::size_t n,
    std::shared_ptr<const ContractRegistry> contracts,
    const LedgerState& genesis, std::size_t max_txs_per_block, Rng& rng,
    ValidationConfig validation)
    : network_(network) {
  // Wallets first: every replica needs the full proposer order.
  std::vector<crypto::Wallet> wallets;
  wallets.reserve(n);
  ChainConfig config;
  config.max_txs_per_block = max_txs_per_block;
  config.validation = validation;
  for (std::size_t i = 0; i < n; ++i) {
    wallets.emplace_back(rng);
    config.validators.push_back(wallets.back().public_key());
  }
  validators_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // One verified-signature memo per replica, shared between its mempool
    // and its chain: a tx verified at admission is vouched for at assembly
    // and commit (crypto/digest_lru.h).
    auto sig_cache = std::make_shared<crypto::DigestLruSet>();
    ChainConfig chain_config = config;
    chain_config.validation.sig_cache = sig_cache;
    MempoolConfig mempool_config;
    mempool_config.sig_cache = std::move(sig_cache);
    validators_.push_back(Validator{
        std::move(wallets[i]),
        Blockchain(std::move(chain_config), contracts, genesis),
        Mempool{mempool_config},
        NodeId::invalid(),
        rng.fork(),
        std::nullopt,
        {}});
    validators_.back().node = network_.add_node(
        [this, i](const net::Message& msg) { on_message(i, msg); });
  }
}

void ValidatorCommittee::submit(const Transaction& tx) {
  const Tick now = network_.clock().now();
  for (auto& v : validators_) {
    (void)v.mempool.add(tx, v.chain.state(), now);
  }
}

bool ValidatorCommittee::run_round(Tick timeout) {
  ++stats_.rounds;
  // Expire transactions that have lingered past their TTL (nonce-gapped or
  // priced out) before this round selects candidates.
  for (auto& v : validators_) {
    (void)v.mempool.sweep_expired(network_.clock().now());
  }
  // Rotation follows the committee's best height, so a lagging replica 0
  // cannot anchor leader election to a stale view.
  std::int64_t target_height = 0;
  for (const auto& v : validators_) {
    target_height = std::max(target_height, v.chain.height());
  }
  const std::size_t leader_index =
      static_cast<std::size_t>(target_height) % validators_.size();
  Validator& leader = validators_[leader_index];
  const Tick round_start = network_.clock().now();

  const auto candidates = leader.mempool.select(
      leader.chain.config().max_txs_per_block, leader.chain.state());
  const Block block = leader.chain.assemble(leader.wallet, candidates,
                                            round_start, leader.rng);
  // Encode the proposal once; the local delivery and every broadcast
  // recipient share the same buffer.
  const auto encoded = std::make_shared<const Bytes>(block.encode());
  net::Message self_propose;
  self_propose.from = leader.node;
  self_propose.to = leader.node;
  self_propose.topic = "propose";
  self_propose.payload_buf = encoded;
  handle_propose(leader, self_propose);
  network_.broadcast(leader.node, "propose", encoded);
  network_.run_until_idle(timeout);

  const bool committed = leader.chain.height() >= target_height + 1;
  if (committed) {
    ++stats_.committed_blocks;
    stats_.committed_txs += block.txs.size();
    stats_.total_commit_ticks +=
        static_cast<double>(network_.clock().now() - round_start);
  } else {
    ++stats_.failed_rounds;
  }
  return committed;
}

void ValidatorCommittee::on_message(std::size_t validator_index,
                                    const net::Message& msg) {
  Validator& v = validators_[validator_index];
  if (msg.topic == "propose") {
    handle_propose(v, msg);
  } else if (msg.topic == "vote") {
    handle_vote(v, msg.payload());
  } else if (msg.topic == "sync_req") {
    handle_sync_request(v, msg);
  } else if (msg.topic == "sync_resp") {
    handle_sync_response(v, msg.payload());
  }
}

void ValidatorCommittee::handle_propose(Validator& v, const net::Message& msg) {
  auto block = Block::decode(msg.payload());
  if (!block.ok()) return;
  if (block.value().header.height > v.chain.height()) {
    // We are behind (missed commits during a partition): pull the missing
    // blocks from whoever is ahead, starting at our own height.
    ByteWriter w;
    w.i64(v.chain.height());
    network_.broadcast(v.node, "sync_req", w.take());
    return;
  }
  if (block.value().header.height < v.chain.height()) {
    // The proposer itself is behind: ship it the blocks it missed so the
    // next round's leader rotation is computed from a caught-up replica.
    serve_blocks(v, msg.from, block.value().header.height);
    return;
  }
  if (!v.chain.validate(block.value()).ok()) {
    MV_LOG_DEBUG << "validator rejected proposal at height "
                 << block.value().header.height;
    return;
  }
  v.pending = std::move(block).value();
  broadcast_vote(v, *v.pending);
  try_commit(v);
}

void ValidatorCommittee::serve_blocks(Validator& v, NodeId to,
                                      std::int64_t from_height) {
  for (std::int64_t h = std::max(v.chain.base_height(), from_height);
       h < v.chain.height(); ++h) {
    network_.send(v.node, to, "sync_resp", v.chain.block_at(h)->encode());
  }
}

void ValidatorCommittee::handle_sync_request(Validator& v,
                                             const net::Message& msg) {
  ByteReader r(msg.payload());
  auto from_height = r.i64();
  if (!from_height.ok()) return;
  serve_blocks(v, msg.from, from_height.value());
}

void ValidatorCommittee::handle_sync_response(Validator& v, const Bytes& payload) {
  auto block = Block::decode(payload);
  if (!block.ok()) return;
  if (block.value().header.height != v.chain.height()) return;  // stale/dup
  if (v.chain.append(block.value()).ok()) {
    v.mempool.remove_included(block.value().txs);
    v.mempool.prune(v.chain.state());
  }
}

void ValidatorCommittee::broadcast_vote(Validator& v, const Block& block) {
  VoteMsg vote;
  vote.height = block.header.height;
  vote.block_hash = block.header.hash();
  vote.voter = v.wallet.public_key();
  vote.sig = v.wallet.sign(vote_signing_bytes(vote.height, vote.block_hash), v.rng);
  const auto encoded = std::make_shared<const Bytes>(vote.encode());
  // Count our own vote, then tell everyone else.
  handle_vote(v, *encoded);
  network_.broadcast(v.node, "vote", encoded);
}

void ValidatorCommittee::handle_vote(Validator& v, const Bytes& payload) {
  auto vote = VoteMsg::decode(payload);
  if (!vote.ok()) return;
  const VoteMsg& m = vote.value();
  // The voter must belong to the committee and the signature must verify.
  bool known = false;
  for (const auto& pub : v.chain.config().validators) {
    if (pub == m.voter) {
      known = true;
      break;
    }
  }
  if (!known) return;
  if (!crypto::verify(m.voter, vote_signing_bytes(m.height, m.block_hash), m.sig)) {
    return;
  }
  v.votes[{m.height, crypto::digest_prefix64(m.block_hash)}].insert(m.voter.y);
  try_commit(v);
}

void ValidatorCommittee::try_commit(Validator& v) {
  if (!v.pending.has_value()) return;
  const crypto::Digest hash = v.pending->header.hash();
  const auto key = std::make_pair(v.pending->header.height,
                                  crypto::digest_prefix64(hash));
  const auto it = v.votes.find(key);
  if (it == v.votes.end() || it->second.size() < quorum()) return;
  if (v.chain.append(*v.pending).ok()) {
    v.mempool.remove_included(v.pending->txs);
    v.mempool.prune(v.chain.state());
  }
  v.pending.reset();
  // Garbage-collect vote sets for heights now below the chain tip.
  std::erase_if(v.votes, [&](const auto& entry) {
    return entry.first.first < v.chain.height();
  });
}

bool ValidatorCommittee::replicas_consistent() const {
  for (std::size_t i = 1; i < validators_.size(); ++i) {
    if (validators_[i].chain.height() != validators_[0].chain.height()) return false;
    if (validators_[i].chain.tip_hash() != validators_[0].chain.tip_hash()) return false;
  }
  return true;
}

}  // namespace mv::ledger
