// Sharded world ledger: per-world shards with parallel commitment,
// beacon-anchored roots, and cross-shard transfer receipts.
//
// The single-chain pipeline serializes every world's traffic through one
// mempool -> assemble -> commit path. ShardedLedger statically partitions
// accounts by world id — a stable hash of the address picks the shard — and
// gives each shard its own Mempool, its own Blockchain (LedgerState +
// validator, reusing ValidationConfig), and its own per-shard
// StateCommitment. Shards commit their round blocks concurrently on the
// shared JobQueue's kConsensus lane, then the driver folds the per-shard
// anchors into a signed BeaconHeader (ledger/beacon.h), so end-to-end
// throughput scales with shard count instead of one pipeline.
//
// Cross-shard transfers use lock-and-mint receipts — no shared mutable
// state, no 2PC:
//   1. lock  (source shard): the xshard contract burns the amount from the
//      sender and appends a receipt under a reserved store key
//      ("receipt/<id>", ids dense per shard). The driver mirrors receipts
//      into a per-shard MerkleMap (id -> sha256(receipt bytes)) whose root
//      is the shard's receipts_root in the next beacon.
//   2. prove: anyone holding the source shard's receipt bytes asks for a
//      MerkleMapProof against the receipts_root anchored at a committed
//      beacon height (ShardedLedger::prove_receipt).
//   3. mint  (destination shard): the xshard contract verifies the proof
//      against the source shard's beacon-anchored receipts_root (resolved
//      through the shared read-only BeaconArchive), rejects spent receipt
//      ids ("spent/<shard>/<id>" set), and mints the amount to the
//      recipient.
// Conservation becomes a cross-shard sum: Σ balances + Σ burned_fees +
// Σ locked_total − Σ minted_total == total supply
// (scenario/invariants.h::check_sharded_invariants holds this).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "crypto/digest_lru.h"
#include "ledger/beacon.h"
#include "ledger/chain.h"
#include "ledger/mempool.h"

namespace mv::ledger {

/// Reserved contract name for the cross-shard lock-and-mint contract.
inline constexpr const char* kXShardContractName = "xshard";

/// Stable account -> shard partition: a splitmix64-style mix of the address
/// (itself a SHA-256 prefix) reduced mod num_shards. Part of the sharded
/// wire/trace format — changing it re-homes every account.
[[nodiscard]] std::uint32_t shard_of(crypto::Address addr,
                                     std::size_t num_shards);

/// Split a genesis state into per-shard genesis states: balances and nonces
/// are routed by shard_of; the audit log, contract stores, and burned fees
/// (normally empty at genesis) stay on shard 0.
[[nodiscard]] std::vector<LedgerState> partition_genesis(
    const LedgerState& genesis, std::size_t num_shards);

struct ShardConfig {
  std::size_t num_shards = 1;
  std::vector<crypto::PublicKey> validators;  ///< shared round-robin order
  std::size_t max_txs_per_block = 256;
  /// Per-shard validation knobs. The job_queue is lifted to the sharded
  /// level — commit_round fans the shards out as one kConsensus batch — and
  /// is NOT passed into the per-shard chains (a queue job must not call
  /// run_batch on its own queue). A non-null sig_cache requests per-shard
  /// verified-signature caches (the LRU is single-threaded; shards get one
  /// each instead of sharing the instance).
  ValidationConfig validation;
  std::size_t state_retention = 8;
  MempoolConfig mempool;
  /// Seed for the deterministic per-(round, shard) signing streams, so
  /// commit_round needs no caller-supplied Rng and block hashes are
  /// reproducible across runs and thread counts.
  std::uint64_t seed = 1;
};

/// One cross-shard transfer receipt, as stored under "receipt/<id>" on the
/// source shard and presented (with a proof) to the destination shard.
struct CrossShardReceipt {
  std::uint64_t id = 0;            ///< dense per-source-shard sequence
  std::uint32_t source_shard = 0;  ///< shard that locked the funds
  std::uint32_t dest_shard = 0;    ///< only this shard may mint
  crypto::Address from;            ///< locker (burned the amount + fee)
  crypto::Address to;              ///< mint recipient
  std::uint64_t amount = 0;

  [[nodiscard]] bool operator==(const CrossShardReceipt&) const = default;

  /// Strict versioned codec ("mv.xshard.receipt.v1"): every byte is load-
  /// bearing — the mint path hashes the exact wire bytes into the proof
  /// check, and decode rejects trailing bytes, bad magic, and zero amounts.
  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<CrossShardReceipt> decode(const Bytes& bytes);
};

/// Args for xshard "lock": burn `amount` from the caller on this shard and
/// emit a receipt mintable by `to` on `dest_shard`.
struct XShardLockArgs {
  std::uint32_t dest_shard = 0;
  crypto::Address to;
  std::uint64_t amount = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<XShardLockArgs> decode(const Bytes& bytes);
};

/// Args for xshard "mint": present source-shard receipt bytes plus a
/// MerkleMapProof of them against the source shard's receipts_root anchored
/// at `beacon_height`.
struct XShardMintArgs {
  std::int64_t beacon_height = 0;
  std::uint32_t source_shard = 0;  ///< explicit claim; must match the receipt
  Bytes receipt;                   ///< CrossShardReceipt wire bytes
  Bytes proof;                     ///< MerkleMapProof wire bytes

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<XShardMintArgs> decode(const Bytes& bytes);
};

/// Reserved xshard store keys (also read by the invariant checker).
[[nodiscard]] std::string xshard_receipt_key(std::uint64_t id);
[[nodiscard]] std::string xshard_spent_key(std::uint32_t source_shard,
                                           std::uint64_t id);
inline constexpr const char* kXShardNextIdKey = "next_id";
inline constexpr const char* kXShardLockedTotalKey = "locked_total";
inline constexpr const char* kXShardMintedTotalKey = "minted_total";

/// The lock-and-mint contract, installed per shard with that shard's
/// identity and a shared read-only view of finalized beacons. Stateless like
/// every Contract — all persistent data lives in the shard's "xshard" store.
class XShardContract final : public Contract {
 public:
  XShardContract(std::uint32_t shard_id, std::uint32_t num_shards,
                 std::shared_ptr<const BeaconArchive> archive)
      : shard_id_(shard_id), num_shards_(num_shards), archive_(std::move(archive)) {}

  [[nodiscard]] std::string name() const override { return kXShardContractName; }
  [[nodiscard]] Status call(CallContext& ctx, const std::string& method,
                            const Bytes& args) const override;

 private:
  [[nodiscard]] Status lock(CallContext& ctx, const Bytes& args) const;
  [[nodiscard]] Status mint(CallContext& ctx, const Bytes& args) const;

  std::uint32_t shard_id_;
  std::uint32_t num_shards_;
  std::shared_ptr<const BeaconArchive> archive_;
};

/// Everything a destination shard needs to mint: the receipt bytes, their
/// inclusion proof, and the beacon height anchoring the source root.
struct ReceiptProofBundle {
  std::int64_t beacon_height = 0;
  std::uint32_t source_shard = 0;
  Bytes receipt;
  crypto::MerkleMapProof proof;
};

/// Composed proof: account -> shard state root -> beacon root. Verifies with
/// only a trusted beacon root (e.g. from a signed BeaconHeader) in hand.
struct ShardedAccountProof {
  std::uint32_t shard = 0;
  std::int64_t beacon_height = 0;
  ShardAnchor anchor;
  crypto::MerkleMapProof anchor_proof;  ///< anchor under the beacon root
  AccountProof account;                 ///< account under anchor.state_root
};

/// Verify the composed chain: the anchor's inclusion under `beacon_root` at
/// the claimed shard index, then the account proof against the anchor's
/// state root (§8 machinery unchanged).
[[nodiscard]] Status verify_sharded_account_proof(
    const ShardedAccountProof& proof, const crypto::Digest& beacon_root);

class ShardedLedger {
 public:
  /// `extra_contracts` are installed into every shard's registry alongside
  /// the shard's own XShardContract (a multi-world scenario installs the
  /// nft/dao/... set here). num_shards == 0 is clamped to 1.
  ShardedLedger(ShardConfig config, const LedgerState& genesis,
                std::vector<std::shared_ptr<const Contract>> extra_contracts = {});

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] const ShardConfig& config() const { return config_; }
  [[nodiscard]] const Blockchain& shard(std::uint32_t s) const {
    return *shards_[s].chain;
  }
  [[nodiscard]] const Mempool& mempool(std::uint32_t s) const {
    return shards_[s].pool;
  }
  [[nodiscard]] std::shared_ptr<const BeaconArchive> archive() const {
    return archive_;
  }
  /// Beacons committed so far (the next commit_round produces this height).
  [[nodiscard]] std::int64_t beacon_height() const {
    return static_cast<std::int64_t>(beacons_.size());
  }
  [[nodiscard]] const BeaconHeader* beacon_at(std::int64_t height) const;
  /// Receipts the driver has folded into shard `s`'s receipt tree.
  [[nodiscard]] std::uint64_t receipt_count(std::uint32_t s) const {
    return shards_[s].receipts_indexed;
  }

  /// Route a transaction to its sender's shard mempool.
  [[nodiscard]] Status submit(Transaction tx, Tick now = 0);

  /// Commit one round: every shard selects, assembles, and appends a block
  /// (possibly empty — shard heights stay aligned with beacon heights),
  /// concurrently on the configured JobQueue's kConsensus lane when it has
  /// workers, serially otherwise; results are byte-identical either way.
  /// Then the receipt trees are refreshed and the round's BeaconHeader is
  /// built, signed by `proposer` (the round-robin validator for this
  /// height), archived, and returned. A shard failure fails the round
  /// ("shard.round_failed"); other shards' commits stand — shard chains are
  /// independent by design, and a failed round is a driver bug, not a state
  /// to recover from.
  [[nodiscard]] Result<BeaconHeader> commit_round(const crypto::Wallet& proposer,
                                                  Tick timestamp);

  /// Proof of receipt `id` on `source_shard` against the latest beacon's
  /// receipts_root. Requires the receipt's lock round (and thus a beacon
  /// covering it) to have committed.
  [[nodiscard]] Result<ReceiptProofBundle> prove_receipt(
      std::uint32_t source_shard, std::uint64_t id) const;

  /// Composed account proof for `addr` on its home shard, anchored at the
  /// latest beacon.
  [[nodiscard]] Result<ShardedAccountProof> prove_account(
      crypto::Address addr) const;

  /// Per-shard committed state, for invariant checks and tests.
  [[nodiscard]] const LedgerState& state(std::uint32_t s) const {
    return shards_[s].chain->state();
  }

 private:
  struct Shard {
    std::unique_ptr<Blockchain> chain;
    Mempool pool;
    std::shared_ptr<crypto::DigestLruSet> sig_cache;  ///< per-shard (LRU is 1-thread)
    /// Mirror of the shard's "receipt/<id>" store entries: id -> sha256 of
    /// the receipt bytes. Receipts are append-only with dense ids, so the
    /// refresh after each round folds exactly the new suffix.
    crypto::MerkleMap receipts;
    std::uint64_t receipts_indexed = 0;

    Shard() : pool(MempoolConfig{}) {}
  };

  /// Fold store receipts [receipts_indexed, next_id) into the receipt tree.
  void refresh_receipts(Shard& shard);

  ShardConfig config_;
  std::shared_ptr<BeaconArchive> archive_;
  std::vector<Shard> shards_;
  std::vector<BeaconHeader> beacons_;
  crypto::Digest beacon_genesis_hash_{};  ///< prev_hash of beacon 0
};

/// Build-and-sign helpers for the two xshard methods.
[[nodiscard]] Transaction make_xshard_lock(const crypto::Wallet& from,
                                           std::uint64_t nonce,
                                           std::uint32_t dest_shard,
                                           crypto::Address to,
                                           std::uint64_t amount,
                                           std::uint64_t fee, Rng& rng);
[[nodiscard]] Transaction make_xshard_mint(const crypto::Wallet& from,
                                           std::uint64_t nonce,
                                           const ReceiptProofBundle& bundle,
                                           std::uint64_t fee, Rng& rng);

}  // namespace mv::ledger
