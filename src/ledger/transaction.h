// Transactions: the unit of state change on the ledger.
//
// Three kinds matter to the paper's claims:
//  - kTransfer     — value movement (the NFT market and DAO deposits ride on it)
//  - kAuditRecord  — §II-D: "a distributed ledger can register any party's
//                    data collection and processing activities"; these records
//                    are first-class transactions
//  - kContractCall — invocations of hosted contracts (DAO, NFT, reputation)
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/sha256.h"
#include "crypto/wallet.h"

namespace mv::ledger {

enum class TxKind : std::uint8_t {
  kTransfer = 0,
  kAuditRecord = 1,
  kContractCall = 2,
};

/// Body of a kTransfer.
struct TransferBody {
  crypto::Address to;
  std::uint64_t amount = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<TransferBody> decode(const Bytes& bytes);
};

/// Body of a kAuditRecord: who collected what, from whom, why, and which
/// privacy-enhancing technology was applied before sharing.
struct AuditRecordBody {
  std::string data_category;  ///< e.g. "gaze", "spatial_map"
  std::string purpose;        ///< e.g. "avatar_animation"
  std::uint64_t subject = 0;  ///< pseudonymous data-subject id
  std::string pet_applied;    ///< e.g. "laplace(eps=1.0)", "none"

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<AuditRecordBody> decode(const Bytes& bytes);
};

struct Transaction {
  crypto::PublicKey sender_pub;
  std::uint64_t nonce = 0;
  TxKind kind = TxKind::kTransfer;
  std::string contract;  ///< target contract name (kContractCall only)
  std::string method;    ///< target method (kContractCall only)
  Bytes payload;         ///< kind-specific encoded body
  std::uint64_t fee = 0;
  crypto::Signature sig;

  /// Canonical bytes covered by the signature (everything except sig).
  [[nodiscard]] Bytes signing_bytes() const;
  /// Full wire encoding.
  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<Transaction> decode(const Bytes& bytes);

  /// Transaction id: SHA-256 over the full encoding.
  [[nodiscard]] crypto::Digest digest() const;
  [[nodiscard]] crypto::Address sender() const { return crypto::address_of(sender_pub); }

  /// Signature check against the embedded public key.
  [[nodiscard]] bool signature_valid() const;
};

/// Build-and-sign helpers.
[[nodiscard]] Transaction make_transfer(const crypto::Wallet& from,
                                        std::uint64_t nonce, crypto::Address to,
                                        std::uint64_t amount, std::uint64_t fee,
                                        Rng& rng);
[[nodiscard]] Transaction make_audit_record(const crypto::Wallet& from,
                                            std::uint64_t nonce,
                                            AuditRecordBody body,
                                            std::uint64_t fee, Rng& rng);
[[nodiscard]] Transaction make_contract_call(const crypto::Wallet& from,
                                             std::uint64_t nonce,
                                             std::string contract,
                                             std::string method, Bytes args,
                                             std::uint64_t fee, Rng& rng);

}  // namespace mv::ledger
