// Blocks: ordered batches of transactions committed by consensus.
//
// The header commits to the parent (hash chain), the transaction set (Merkle
// root), and the post-state (state root), and is signed by the proposer.
#pragma once

#include <vector>

#include "common/clock.h"
#include "crypto/merkle.h"
#include "crypto/wallet.h"
#include "ledger/transaction.h"

namespace mv::ledger {

struct BlockHeader {
  std::int64_t height = 0;
  crypto::Digest prev_hash{};
  crypto::Digest tx_root{};     ///< Merkle root over tx digests
  crypto::Digest state_root{};  ///< StateCommitment root after applying the block
  Tick timestamp = 0;
  crypto::PublicKey proposer_pub;
  crypto::Signature proposer_sig;

  /// Bytes covered by the proposer signature (everything except the sig).
  [[nodiscard]] Bytes signing_bytes() const;
  [[nodiscard]] Bytes encode() const;
  /// Strict inverse of encode(): the whole buffer must be one header.
  /// Subscription pushes and block decoding both parse headers through this.
  [[nodiscard]] static Result<BlockHeader> decode(const Bytes& bytes);
  [[nodiscard]] crypto::Digest hash() const;
  [[nodiscard]] crypto::Address proposer() const {
    return crypto::address_of(proposer_pub);
  }
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> txs;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<Block> decode(const Bytes& bytes);

  /// Merkle root over the digests of `txs` (order-sensitive).
  [[nodiscard]] static crypto::Digest compute_tx_root(
      const std::vector<Transaction>& txs);
  /// Merkle tree over the block's transactions, for inclusion proofs.
  [[nodiscard]] crypto::MerkleTree tx_tree() const;
};

}  // namespace mv::ledger
