#include "ledger/parallel.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/rng.h"

namespace mv::ledger {

namespace {

std::uint64_t store_conflict_id(const std::string& contract) {
  return crypto::digest_prefix64(crypto::sha256(std::string_view(contract)));
}

/// Union-find over transaction indices (path halving + union by size).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

/// Everything one execution unit actually touched. Reads and writes are
/// recorded at the granularity the interference check needs: account keys,
/// (contract, key) store entries, and store prefix scans.
struct AccessSet {
  std::unordered_set<std::uint64_t> account_reads;
  std::unordered_set<std::uint64_t> account_writes;
  std::map<std::string, std::set<std::string>> store_reads;
  std::map<std::string, std::set<std::string>> store_writes;
  std::vector<std::pair<std::string, std::string>> prefix_reads;  ///< (contract, prefix)
};

/// LedgerView that applies transactions on a private overlay while recording
/// the accessed keys. Audit appends are captured here (tagged with the block
/// index of the appending tx) instead of landing in the overlay, so the merge
/// can interleave them in canonical order across units.
class TrackedView final : public LedgerView {
 public:
  explicit TrackedView(LedgerStateOverlay& parent)
      : inner_(LedgerStateOverlay::nested(parent)) {}

  void begin_tx(std::size_t block_index) { tx_index_ = block_index; }
  [[nodiscard]] LedgerStateOverlay& overlay() { return inner_; }
  [[nodiscard]] const AccessSet& access() const { return access_; }
  [[nodiscard]] std::vector<std::pair<std::size_t, StoredAuditRecord>>&
  audit_records() {
    return audit_;
  }

  [[nodiscard]] std::optional<std::uint64_t> find_balance(
      crypto::Address a) const override {
    access_.account_reads.insert(a.value);
    return inner_.find_balance(a);
  }
  [[nodiscard]] std::uint64_t nonce(crypto::Address a) const override {
    access_.account_reads.insert(a.value);
    return inner_.nonce(a);
  }
  void set_balance(crypto::Address a, std::uint64_t value) override {
    access_.account_writes.insert(a.value);
    inner_.set_balance(a, value);
  }
  void set_nonce(crypto::Address a, std::uint64_t value) override {
    access_.account_writes.insert(a.value);
    inner_.set_nonce(a, value);
  }

  [[nodiscard]] std::uint64_t burned_fees() const override {
    return inner_.burned_fees();
  }
  void add_burned_fees(std::uint64_t amount) override {
    inner_.add_burned_fees(amount);
  }
  void append_audit(StoredAuditRecord record) override {
    audit_.emplace_back(tx_index_, std::move(record));
  }

  [[nodiscard]] const Bytes* store_get(const std::string& contract,
                                       const std::string& key) const override {
    access_.store_reads[contract].insert(key);
    return inner_.store_get(contract, key);
  }
  void store_put(const std::string& contract, const std::string& key,
                 Bytes value) override {
    access_.store_writes[contract].insert(key);
    inner_.store_put(contract, key, std::move(value));
  }
  void store_erase(const std::string& contract, const std::string& key) override {
    access_.store_writes[contract].insert(key);
    inner_.store_erase(contract, key);
  }
  [[nodiscard]] std::vector<std::string> store_keys_with_prefix(
      const std::string& contract, const std::string& prefix) const override {
    access_.prefix_reads.emplace_back(contract, prefix);
    return inner_.store_keys_with_prefix(contract, prefix);
  }

  /// Not used by the engine (commitments are computed on the merged scratch
  /// overlay); forwards for completeness. Captured audit records are absent
  /// from the inner overlay and thus from this commitment.
  [[nodiscard]] StateCommitment commitment_with(
      const CommitmentDelta& delta) const override {
    return inner_.commitment_with(delta);
  }

 private:
  LedgerStateOverlay inner_;
  mutable AccessSet access_;
  std::vector<std::pair<std::size_t, StoredAuditRecord>> audit_;
  std::size_t tx_index_ = 0;
};

/// One schedulable unit: a run of whole conflict groups, executed in
/// canonical (ascending block index) order on one tracked overlay. Merging
/// several disjoint groups into a unit keeps per-task overhead bounded when a
/// low-conflict block shatters into hundreds of singleton groups.
struct UnitRun {
  explicit UnitRun(LedgerStateOverlay& parent) : view(parent) {}
  std::vector<std::size_t> txs;  ///< ascending block indices
  TrackedView view;
  Status status;
  std::size_t failed_index = 0;
  bool failed = false;
  std::vector<std::size_t> applied;
};

/// Units whose reads or writes overlap another unit's writes — both parties
/// of every overlap, sorted ascending; empty means the units are mutually
/// independent. Conflicts the static partition already captured cannot
/// appear here (those transactions share a unit); anything a contract
/// reached dynamically can. Attribution (instead of a bare bool) is what
/// lets the repair path below re-run only the entangled units.
std::vector<std::size_t> interfering_units(const std::vector<UnitRun>& runs) {
  std::vector<bool> marked(runs.size(), false);
  const auto mark = [&](std::size_t a, std::size_t b) {
    marked[a] = true;
    marked[b] = true;
  };
  std::unordered_map<std::uint64_t, std::size_t> account_writer;
  std::map<std::string, std::map<std::string, std::size_t>> store_writer;
  for (std::size_t u = 0; u < runs.size(); ++u) {
    for (const std::uint64_t a : runs[u].view.access().account_writes) {
      const auto [it, inserted] = account_writer.emplace(a, u);
      if (!inserted && it->second != u) mark(u, it->second);
    }
    for (const auto& [contract, keys] : runs[u].view.access().store_writes) {
      auto& owner = store_writer[contract];
      for (const auto& key : keys) {
        const auto [it, inserted] = owner.emplace(key, u);
        if (!inserted && it->second != u) mark(u, it->second);
      }
    }
  }
  for (std::size_t u = 0; u < runs.size(); ++u) {
    const AccessSet& acc = runs[u].view.access();
    for (const std::uint64_t a : acc.account_reads) {
      const auto it = account_writer.find(a);
      if (it != account_writer.end() && it->second != u) mark(u, it->second);
    }
    for (const auto& [contract, keys] : acc.store_reads) {
      const auto sit = store_writer.find(contract);
      if (sit == store_writer.end()) continue;
      for (const auto& key : keys) {
        const auto it = sit->second.find(key);
        if (it != sit->second.end() && it->second != u) mark(u, it->second);
      }
    }
    for (const auto& [contract, prefix] : acc.prefix_reads) {
      const auto sit = store_writer.find(contract);
      if (sit == store_writer.end()) continue;
      for (auto it = sit->second.lower_bound(prefix); it != sit->second.end();
           ++it) {
        if (!it->first.starts_with(prefix)) break;
        if (it->second != u) mark(u, it->second);
      }
    }
  }
  std::vector<std::size_t> out;
  for (std::size_t u = 0; u < runs.size(); ++u) {
    if (marked[u]) out.push_back(u);
  }
  return out;
}

bool u64_sets_overlap(const std::unordered_set<std::uint64_t>& a,
                      const std::unordered_set<std::uint64_t>& b) {
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& big = a.size() <= b.size() ? b : a;
  for (const std::uint64_t v : small) {
    if (big.contains(v)) return true;
  }
  return false;
}

bool store_maps_overlap(const std::map<std::string, std::set<std::string>>& a,
                        const std::map<std::string, std::set<std::string>>& b) {
  for (const auto& [contract, keys] : a) {
    const auto it = b.find(contract);
    if (it == b.end()) continue;
    const auto& small = keys.size() <= it->second.size() ? keys : it->second;
    const auto& big = keys.size() <= it->second.size() ? it->second : keys;
    for (const auto& key : small) {
      if (big.contains(key)) return true;
    }
  }
  return false;
}

bool prefix_reads_hit_writes(
    const std::vector<std::pair<std::string, std::string>>& prefixes,
    const std::map<std::string, std::set<std::string>>& writes) {
  for (const auto& [contract, prefix] : prefixes) {
    const auto sit = writes.find(contract);
    if (sit == writes.end()) continue;
    const auto it = sit->second.lower_bound(prefix);
    if (it != sit->second.end() && it->starts_with(prefix)) return true;
  }
  return false;
}

/// Directional half of the interference predicate: does `w`'s write set
/// touch anything `r` read, wrote, or prefix-scanned?
bool writes_touch(const AccessSet& w, const AccessSet& r) {
  return u64_sets_overlap(w.account_writes, r.account_writes) ||
         u64_sets_overlap(w.account_writes, r.account_reads) ||
         store_maps_overlap(w.store_writes, r.store_writes) ||
         store_maps_overlap(w.store_writes, r.store_reads) ||
         prefix_reads_hit_writes(r.prefix_reads, w.store_writes);
}

/// Full symmetric check between two access sets (both read-vs-write
/// directions plus write-vs-write).
bool access_interferes(const AccessSet& a, const AccessSet& b) {
  return writes_touch(a, b) || writes_touch(b, a);
}

/// How apply_block fans out CPU-bound work: through the prioritized job
/// queue when one is configured (class-tagged, so ledger work competes with
/// gossip/snapshot/client traffic under one scheduler), else the plain pool,
/// else inline. Batch semantics are identical across all three — block until
/// every task ran, tasks write disjoint slots — so results do not depend on
/// which executor is wired in.
struct Dispatch {
  JobQueue* queue = nullptr;
  ThreadPool* pool = nullptr;

  void batch(JobClass cls, std::size_t tasks,
             const std::function<void(std::size_t)>& fn) const {
    if (queue != nullptr) {
      queue->run_batch(cls, tasks, fn);
    } else if (pool != nullptr) {
      pool->parallel(tasks, fn);
    } else {
      for (std::size_t i = 0; i < tasks; ++i) fn(i);
    }
  }

  [[nodiscard]] std::size_t workers() const {
    if (queue != nullptr) return queue->workers();
    return pool != nullptr ? pool->workers() : 0;
  }
};

/// The historical serial loop, shared by the threads==1 path and the
/// fallback. `sig_ok` (when present) carries pre-verified signature results
/// so the fallback does not re-verify.
BlockApplyOutcome serial_apply(LedgerStateOverlay& scratch,
                               const std::vector<Transaction>& txs,
                               const ContractRegistry& contracts, Tick height,
                               ApplyMode mode,
                               const std::vector<unsigned char>* sig_ok) {
  BlockApplyOutcome out;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const bool preverified = sig_ok != nullptr && (*sig_ok)[i] != 0;
    if (Status s = scratch.apply(txs[i], contracts, height, preverified); s.ok()) {
      out.applied.push_back(i);
    } else if (mode == ApplyMode::kAllOrNothing) {
      out.status = std::move(s);
      out.failed_index = i;
      return out;
    }
  }
  return out;
}

/// Resolve every transaction's signature through the verified-digest cache:
/// hits are vouched for, misses are verified (fanned out as kValidation work
/// on the dispatcher) and the valid ones remembered. Cache lookups and
/// inserts stay on the calling thread — only the pure verifications fan out.
/// An invalid signature leaves its sig_ok slot 0; apply() then re-verifies
/// and produces the authoritative error.
void consult_sig_cache(crypto::DigestLruSet& cache,
                       const std::vector<Transaction>& txs,
                       std::vector<unsigned char>& sig_ok,
                       const Dispatch& dispatch, std::size_t& hits,
                       std::size_t& misses) {
  std::vector<crypto::Digest> digests(txs.size());
  std::vector<std::size_t> miss_idx;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    digests[i] = txs[i].digest();
    if (cache.contains_and_touch(digests[i])) {
      sig_ok[i] = 1;
      ++hits;
    } else {
      miss_idx.push_back(i);
    }
  }
  misses = miss_idx.size();
  const auto verify = [&](std::size_t j) {
    const std::size_t i = miss_idx[j];
    sig_ok[i] = txs[i].signature_valid() ? 1 : 0;
  };
  dispatch.batch(JobClass::kValidation, miss_idx.size(), verify);
  for (const std::size_t i : miss_idx) {
    if (sig_ok[i] != 0) cache.insert(digests[i]);
  }
}

}  // namespace

std::vector<ConflictKey> conflict_keys(const Transaction& tx) {
  std::vector<ConflictKey> keys;
  keys.push_back({ConflictKey::Kind::kAccount, tx.sender().value});
  switch (tx.kind) {
    case TxKind::kTransfer: {
      // An undecodable payload fails in apply() before touching anything but
      // the sender, so the sender key alone is its footprint.
      if (const auto body = TransferBody::decode(tx.payload); body.ok()) {
        keys.push_back({ConflictKey::Kind::kAccount, body.value().to.value});
      }
      break;
    }
    case TxKind::kAuditRecord:
      break;  // audit appends are merged canonically; only the sender conflicts
    case TxKind::kContractCall:
      keys.push_back({ConflictKey::Kind::kStore, store_conflict_id(tx.contract)});
      break;
    default:
      break;
  }
  return keys;
}

std::vector<std::vector<std::size_t>> partition_conflicts(
    const std::vector<Transaction>& txs) {
  UnionFind uf(txs.size());
  std::map<ConflictKey, std::size_t> first_holder;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    for (const ConflictKey& key : conflict_keys(txs[i])) {
      const auto [it, inserted] = first_holder.emplace(key, i);
      if (!inserted) uf.unite(i, it->second);
    }
  }
  std::vector<std::vector<std::size_t>> groups;
  std::unordered_map<std::size_t, std::size_t> root_to_group;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const std::size_t root = uf.find(i);
    const auto [it, inserted] = root_to_group.emplace(root, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(i);
  }
  return groups;
}

BlockApplyOutcome apply_block(LedgerStateOverlay& scratch,
                              const std::vector<Transaction>& txs,
                              const ContractRegistry& contracts, Tick height,
                              const ValidationConfig& config, ThreadPool* pool,
                              ApplyMode mode) {
  const Dispatch dispatch{config.job_queue.get(), pool};
  // With a job queue, its worker count decides serial-vs-parallel (an inline
  // queue still routes work through the class lanes for telemetry, but the
  // execution order is exactly the historical serial path).
  const bool concurrent =
      (config.job_queue != nullptr ? config.job_queue->workers() > 1
                                   : (pool != nullptr && config.threads > 1)) &&
      txs.size() >= std::max<std::size_t>(config.min_parallel_txs, 2);
  if (!concurrent) {
    // With a queue, even the serial path runs as one kConsensus unit: the
    // application is scheduled (and accounted) against the other traffic
    // classes instead of bypassing the queue. run_batch blocks until done
    // and is never shed, and an inline queue executes it synchronously on
    // this thread, so the outcome is identical either way.
    const auto serial_unit =
        [&](const std::vector<unsigned char>* sig_ok_ptr) -> BlockApplyOutcome {
      BlockApplyOutcome out;
      if (JobQueue* queue = config.job_queue.get(); queue != nullptr) {
        queue->run_batch(JobClass::kConsensus, 1, [&](std::size_t) {
          out = serial_apply(scratch, txs, contracts, height, mode, sig_ok_ptr);
        });
      } else {
        out = serial_apply(scratch, txs, contracts, height, mode, sig_ok_ptr);
      }
      return out;
    };
    if (config.sig_cache == nullptr) {
      return serial_unit(nullptr);
    }
    std::vector<unsigned char> sig_ok(txs.size(), 0);
    std::size_t hits = 0;
    std::size_t misses = 0;
    consult_sig_cache(*config.sig_cache, txs, sig_ok, dispatch, hits, misses);
    auto out = serial_unit(&sig_ok);
    out.sig_hits = hits;
    out.sig_misses = misses;
    return out;
  }

  // Signature verification is pure and per-tx: always worth fanning out,
  // and the results stay valid for the serial fallback. The cache (when
  // configured) narrows the fan-out to the unverified remainder.
  std::vector<unsigned char> sig_ok(txs.size(), 0);
  std::size_t sig_hits = 0;
  std::size_t sig_misses = 0;
  if (config.sig_cache != nullptr) {
    consult_sig_cache(*config.sig_cache, txs, sig_ok, dispatch, sig_hits,
                      sig_misses);
  } else {
    dispatch.batch(JobClass::kValidation, txs.size(), [&](std::size_t i) {
      sig_ok[i] = txs[i].signature_valid() ? 1 : 0;
    });
  }

  const auto groups = partition_conflicts(txs);
  if (groups.size() <= 1) {
    auto out = serial_apply(scratch, txs, contracts, height, mode, &sig_ok);
    out.groups = groups.size();
    out.sig_hits = sig_hits;
    out.sig_misses = sig_misses;
    return out;
  }

  // Pack whole groups into at most ~4 units per worker (canonical packing:
  // groups in order, balanced by tx count). A unit executes its indices in
  // ascending block order, so intra-unit cross-group touches — which the
  // interference check cannot see — still replay the serial order exactly.
  const std::size_t width =
      config.job_queue != nullptr ? config.job_queue->workers() : config.threads;
  const std::size_t unit_target =
      std::min(groups.size(), std::max<std::size_t>(width * 4, 1));
  std::vector<UnitRun> runs;
  runs.reserve(unit_target);
  {
    const std::size_t per_unit = (txs.size() + unit_target - 1) / unit_target;
    for (const auto& group : groups) {
      if (runs.empty() || (runs.back().txs.size() >= per_unit &&
                           runs.size() < unit_target)) {
        runs.emplace_back(scratch);
      }
      runs.back().txs.insert(runs.back().txs.end(), group.begin(), group.end());
    }
    for (auto& run : runs) std::sort(run.txs.begin(), run.txs.end());
  }

  // Hand units to the pool in a (deterministically) permuted order when a
  // schedule seed is set; results must not depend on it.
  std::vector<std::size_t> order(runs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (config.schedule_seed != 0) {
    Rng rng(config.schedule_seed);
    rng.shuffle(order);
  }

  // Unit execution is the consensus-critical lane: under mixed load it must
  // win the cores over relays, chunk serving, and client queries.
  dispatch.batch(JobClass::kConsensus, runs.size(), [&](std::size_t t) {
    UnitRun& run = runs[order[t]];
    for (const std::size_t idx : run.txs) {
      run.view.begin_tx(idx);
      Status s = run.view.apply(txs[idx], contracts, height, sig_ok[idx] != 0);
      if (s.ok()) {
        run.applied.push_back(idx);
      } else if (mode == ApplyMode::kAllOrNothing) {
        run.status = std::move(s);
        run.failed = true;
        run.failed_index = idx;
        return;
      }
    }
  });

  // Any failure (all-or-nothing): discard the unit overlays (nothing reached
  // scratch) and replay serially — the serial result is authoritative,
  // including error text and skip decisions.
  const auto full_serial = [&]() {
    auto out = serial_apply(scratch, txs, contracts, height, mode, &sig_ok);
    out.groups = groups.size();
    out.serial_fallback = true;
    out.sig_hits = sig_hits;
    out.sig_misses = sig_misses;
    return out;
  };
  const bool any_failed =
      std::any_of(runs.begin(), runs.end(), [](const UnitRun& r) { return r.failed; });
  if (any_failed) return full_serial();

  // Dynamic cross-unit interference: instead of discarding every unit for a
  // full serial replay, re-run only the entangled units' transactions — in
  // ascending block order, on one fresh tracked overlay over the still-
  // pristine scratch — and keep the independent units' overlays. The repair
  // is sound iff the re-run's actual access set stays disjoint from every
  // kept unit's (checked in both directions below: the re-run may touch
  // different keys than the discarded unit runs did, since its transactions
  // now see each other's effects). Any entanglement with a kept unit, or an
  // all-or-nothing failure inside the re-run, falls back to the full serial
  // replay exactly as before.
  const std::vector<std::size_t> conflicted = interfering_units(runs);
  std::vector<bool> in_conflict(runs.size(), false);
  std::optional<TrackedView> rerun;
  std::vector<std::size_t> rerun_applied;
  if (!conflicted.empty()) {
    std::vector<std::size_t> rerun_txs;
    for (const std::size_t u : conflicted) {
      in_conflict[u] = true;
      rerun_txs.insert(rerun_txs.end(), runs[u].txs.begin(), runs[u].txs.end());
    }
    std::sort(rerun_txs.begin(), rerun_txs.end());
    rerun.emplace(scratch);
    for (const std::size_t idx : rerun_txs) {
      rerun->begin_tx(idx);
      Status s = rerun->apply(txs[idx], contracts, height, sig_ok[idx] != 0);
      if (s.ok()) {
        rerun_applied.push_back(idx);
      } else if (mode == ApplyMode::kAllOrNothing) {
        return full_serial();
      }
    }
    for (std::size_t u = 0; u < runs.size(); ++u) {
      if (!in_conflict[u] &&
          access_interferes(rerun->access(), runs[u].view.access())) {
        return full_serial();
      }
    }
  }

  // Deterministic merge: fold each kept unit's delta (and the repair
  // overlay, when one ran) into scratch in canonical order — the sets are
  // disjoint, so only the audit log is order-sensitive; its records
  // interleave by original block index.
  BlockApplyOutcome out;
  out.groups = groups.size();
  out.parallel = true;
  out.repaired = !conflicted.empty();
  out.sig_hits = sig_hits;
  out.sig_misses = sig_misses;
  std::vector<std::pair<std::size_t, StoredAuditRecord>> audits;
  for (std::size_t u = 0; u < runs.size(); ++u) {
    if (in_conflict[u]) continue;
    UnitRun& run = runs[u];
    run.view.overlay().commit();
    for (auto& tagged : run.view.audit_records()) {
      audits.push_back(std::move(tagged));
    }
    out.applied.insert(out.applied.end(), run.applied.begin(), run.applied.end());
  }
  if (rerun.has_value()) {
    rerun->overlay().commit();
    for (auto& tagged : rerun->audit_records()) {
      audits.push_back(std::move(tagged));
    }
    out.applied.insert(out.applied.end(), rerun_applied.begin(),
                       rerun_applied.end());
  }
  std::stable_sort(audits.begin(), audits.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [index, record] : audits) scratch.append_audit(std::move(record));
  std::sort(out.applied.begin(), out.applied.end());
  return out;
}

}  // namespace mv::ledger
