#include "ledger/client_api.h"

#include <string>
#include <utility>

namespace mv::ledger {

namespace {

Bytes encode_ok(const Bytes& payload) {
  ByteWriter w;
  w.u32(kClientApiVersion);
  w.u8(1);
  w.bytes(payload);
  return w.take();
}

Bytes encode_err(const Error& e) {
  ByteWriter w;
  w.u32(kClientApiVersion);
  w.u8(0);
  w.str(e.code);
  w.str(e.message);
  return w.take();
}

}  // namespace

Error ClientApi::to_api_error(Error e) {
  if (e.code == errc::kChainBadHeight) {
    e.code = errc::kApiBadHeight;
  } else if (e.code == errc::kChainPrunedHeight) {
    e.code = errc::kApiPrunedHeight;
  } else if (e.code == errc::kChainStaleHeight) {
    e.code = errc::kApiStaleHeight;
  } else if (e.code == errc::kChainOverloaded) {
    e.code = errc::kApiOverloaded;
  }
  return e;
}

Result<BlockHeader> ClientApi::header(std::int64_t height) const {
  if (height < 0 || height >= chain_.height()) {
    return make_error(errc::kApiBadHeight, "no such block");
  }
  const Block* block = chain_.block_at(height);
  if (block == nullptr) {
    return make_error(errc::kApiPrunedHeight,
                      "header below the snapshot base is not held");
  }
  return block->header;
}

Result<AccountProof> ClientApi::account_proof(crypto::Address address,
                                              std::int64_t height) const {
  auto proof = chain_.prove_account(address, height);
  if (!proof.ok()) return to_api_error(proof.error());
  return proof;
}

Result<Snapshot> ClientApi::snapshot_at(std::int64_t height) const {
  auto snapshot = chain_.export_snapshot(height);
  if (!snapshot.ok()) return to_api_error(snapshot.error());
  return snapshot;
}

Result<net::SubscriptionStats> ClientApi::subscription_stats() const {
  if (subscriptions_ == nullptr) {
    return make_error(errc::kApiNoSubscriptionService,
                      "node runs no subscription service");
  }
  return subscriptions_->stats();
}

Status ClientApi::drop_subscriber(NodeId node) {
  if (subscriptions_ == nullptr) {
    return Status::fail(errc::kApiNoSubscriptionService,
                        "node runs no subscription service");
  }
  if (Status s = subscriptions_->drop(node); !s.ok()) {
    return Status::fail(errc::kApiUnknownSubscription, s.error().message);
  }
  return {};
}

Bytes ClientApi::dispatch(const Bytes& request) const {
  ByteReader r(request);
  const auto version = r.u32();
  const auto kind = r.u8();
  if (!version.ok() || !kind.ok()) {
    return encode_err(
        Error{errc::kApiBadRequest, "truncated request envelope"});
  }
  if (version.value() != kClientApiVersion) {
    return encode_err(Error{errc::kApiBadVersion,
                            "client speaks version " +
                                std::to_string(version.value()) +
                                ", node speaks " +
                                std::to_string(kClientApiVersion)});
  }
  switch (static_cast<ClientRequest>(kind.value())) {
    case ClientRequest::kTip: {
      if (!r.exhausted()) {
        return encode_err(Error{errc::kApiBadRequest, "trailing bytes"});
      }
      ByteWriter w;
      w.i64(tip_height());
      return encode_ok(w.take());
    }
    case ClientRequest::kHeader: {
      const auto height = r.i64();
      if (!height.ok() || !r.exhausted()) {
        return encode_err(Error{errc::kApiBadRequest, "malformed header request"});
      }
      auto h = header(height.value());
      if (!h.ok()) return encode_err(h.error());
      return encode_ok(h.value().encode());
    }
    case ClientRequest::kAccountProof: {
      const auto address = r.u64();
      const auto height = r.i64();
      if (!address.ok() || !height.ok() || !r.exhausted()) {
        return encode_err(Error{errc::kApiBadRequest, "malformed proof request"});
      }
      auto proof = account_proof(crypto::Address{address.value()}, height.value());
      if (!proof.ok()) return encode_err(proof.error());
      return encode_ok(proof.value().encode());
    }
  }
  return encode_err(Error{errc::kApiBadRequest,
                          "unknown request kind " +
                              std::to_string(kind.value())});
}

}  // namespace mv::ledger
