#include "ledger/state.h"

namespace mv::ledger {

std::uint64_t LedgerState::balance(crypto::Address a) const {
  const auto it = balances_.find(a);
  return it == balances_.end() ? 0 : it->second;
}

std::uint64_t LedgerState::nonce(crypto::Address a) const {
  const auto it = nonces_.find(a);
  return it == nonces_.end() ? 0 : it->second;
}

void LedgerState::credit(crypto::Address a, std::uint64_t amount) {
  balances_[a] += amount;
}

Status LedgerState::debit(crypto::Address a, std::uint64_t amount) {
  const auto it = balances_.find(a);
  if (it == balances_.end() || it->second < amount) {
    return Status::fail("state.insufficient_funds",
                        "balance below " + std::to_string(amount));
  }
  it->second -= amount;
  return {};
}

const ContractStore* LedgerState::find_store(const std::string& contract) const {
  const auto it = contracts_.find(contract);
  return it == contracts_.end() ? nullptr : &it->second;
}

Status LedgerState::apply(const Transaction& tx,
                          const ContractRegistry& contracts, Tick height) {
  // apply() is atomic: any failure leaves the state exactly as it was, so
  // block assembly can trial-apply candidates in sequence and skip failures.
  if (!tx.signature_valid()) {
    return Status::fail("tx.bad_signature", "signature does not verify");
  }
  const crypto::Address sender = tx.sender();
  if (tx.nonce != nonce(sender)) {
    return Status::fail("tx.bad_nonce",
                        "expected " + std::to_string(nonce(sender)) + " got " +
                            std::to_string(tx.nonce));
  }
  switch (tx.kind) {
    case TxKind::kTransfer: {
      auto body = TransferBody::decode(tx.payload);
      if (!body.ok()) return Status::fail(body.error().code, body.error().message);
      if (!body.value().to.valid()) {
        return Status::fail("tx.bad_recipient", "null recipient");
      }
      // All checks before any mutation keeps this branch trivially atomic.
      if (balance(sender) < tx.fee + body.value().amount) {
        return Status::fail("state.insufficient_funds", "cannot cover amount + fee");
      }
      (void)debit(sender, tx.fee + body.value().amount);
      credit(body.value().to, body.value().amount);
      break;
    }
    case TxKind::kAuditRecord: {
      auto body = AuditRecordBody::decode(tx.payload);
      if (!body.ok()) return Status::fail(body.error().code, body.error().message);
      if (balance(sender) < tx.fee) {
        return Status::fail("state.insufficient_funds", "cannot cover fee");
      }
      (void)debit(sender, tx.fee);
      audit_log_.push_back(StoredAuditRecord{sender, std::move(body).value(), height});
      break;
    }
    case TxKind::kContractCall: {
      const Contract* contract = contracts.find(tx.contract);
      if (contract == nullptr) {
        return Status::fail("tx.unknown_contract", tx.contract);
      }
      if (balance(sender) < tx.fee) {
        return Status::fail("state.insufficient_funds", "cannot cover fee");
      }
      // Contract bodies may fail after arbitrary writes; snapshot-rollback
      // keeps the whole transaction atomic.
      LedgerState snapshot = *this;
      (void)debit(sender, tx.fee);
      CallContext ctx(*this, tx.contract, sender, height);
      if (Status status = contract->call(ctx, tx.method, tx.payload); !status.ok()) {
        *this = std::move(snapshot);
        return status;
      }
      break;
    }
    default:
      return Status::fail("tx.bad_kind", "unknown transaction kind");
  }
  nonces_[sender] = tx.nonce + 1;
  burned_fees_ += tx.fee;
  return {};
}

crypto::Digest LedgerState::state_root() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(balances_.size()));
  for (const auto& [addr, bal] : balances_) {
    w.u64(addr.value);
    w.u64(bal);
  }
  w.u32(static_cast<std::uint32_t>(nonces_.size()));
  for (const auto& [addr, n] : nonces_) {
    w.u64(addr.value);
    w.u64(n);
  }
  w.u32(static_cast<std::uint32_t>(audit_log_.size()));
  for (const auto& rec : audit_log_) {
    w.u64(rec.collector.value);
    w.raw(rec.body.encode());
    w.i64(rec.height);
  }
  w.u32(static_cast<std::uint32_t>(contracts_.size()));
  for (const auto& [name, store] : contracts_) {
    w.str(name);
    w.u32(static_cast<std::uint32_t>(store.size()));
    for (const auto& [key, value] : store) {
      w.str(key);
      w.bytes(value);
    }
  }
  w.u64(burned_fees_);
  return crypto::sha256(w.data());
}

const Bytes* CallContext::get(const std::string& key) const {
  const ContractStore* store = state_.find_store(contract_name_);
  if (store == nullptr) return nullptr;
  const auto it = store->find(key);
  return it == store->end() ? nullptr : &it->second;
}

void CallContext::put(const std::string& key, Bytes value) {
  state_.store(contract_name_)[key] = std::move(value);
}

void CallContext::erase(const std::string& key) {
  state_.store(contract_name_).erase(key);
}

std::vector<std::string> CallContext::keys_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  const ContractStore* store = state_.find_store(contract_name_);
  if (store == nullptr) return out;
  for (auto it = store->lower_bound(prefix); it != store->end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

Status CallContext::transfer(crypto::Address from, crypto::Address to,
                             std::uint64_t amount) {
  if (auto s = state_.debit(from, amount); !s.ok()) return s;
  state_.credit(to, amount);
  return {};
}

void ContractRegistry::install(std::shared_ptr<const Contract> contract) {
  contracts_[contract->name()] = std::move(contract);
}

const Contract* ContractRegistry::find(const std::string& name) const {
  const auto it = contracts_.find(name);
  return it == contracts_.end() ? nullptr : it->second.get();
}

}  // namespace mv::ledger
