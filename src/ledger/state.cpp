#include "ledger/state.h"

#include <cassert>

namespace mv::ledger {

namespace {

void hash_audit_record(crypto::HashWriter& w, const StoredAuditRecord& rec) {
  w.u64(rec.collector.value);
  w.raw(rec.body.encode());
  w.i64(rec.height);
}

/// Two-pointer merge of a base map and a delta map (delta wins on equal
/// keys), visiting entries in key order. `emit(key, base_value_or_null,
/// delta_value_or_null)` is called once per merged key.
template <typename BaseMap, typename DeltaMap, typename Emit>
void merge_maps(const BaseMap& base, const DeltaMap& delta, Emit emit) {
  auto bit = base.begin();
  auto dit = delta.begin();
  while (bit != base.end() || dit != delta.end()) {
    if (dit == delta.end() || (bit != base.end() && bit->first < dit->first)) {
      emit(bit->first, &bit->second, nullptr);
      ++bit;
    } else if (bit == base.end() || dit->first < bit->first) {
      emit(dit->first, nullptr, &dit->second);
      ++dit;
    } else {
      emit(bit->first, &bit->second, &dit->second);
      ++bit;
      ++dit;
    }
  }
}

void hash_merged_accounts(crypto::HashWriter& w,
                          const std::map<crypto::Address, std::uint64_t>& base,
                          const std::map<crypto::Address, std::uint64_t>& delta) {
  std::size_t count = base.size();
  for (const auto& [addr, value] : delta) {
    (void)value;
    if (!base.contains(addr)) ++count;
  }
  w.u32(static_cast<std::uint32_t>(count));
  merge_maps(base, delta,
             [&w](crypto::Address addr, const std::uint64_t* base_value,
                  const std::uint64_t* delta_value) {
               w.u64(addr.value);
               w.u64(delta_value != nullptr ? *delta_value : *base_value);
             });
}

using StoreDelta = std::map<std::string, std::optional<Bytes>>;

void hash_merged_store(crypto::HashWriter& w, const ContractStore& base,
                       const StoreDelta& delta) {
  std::size_t count = base.size();
  for (const auto& [key, value] : delta) {
    const bool in_base = base.contains(key);
    if (value.has_value() && !in_base) ++count;
    if (!value.has_value() && in_base) --count;
  }
  w.u32(static_cast<std::uint32_t>(count));
  merge_maps(base, delta,
             [&w](const std::string& key, const Bytes* base_value,
                  const std::optional<Bytes>* delta_value) {
               if (delta_value != nullptr) {
                 if (delta_value->has_value()) {
                   w.str(key);
                   w.bytes(**delta_value);
                 }  // tombstone: skip
               } else {
                 w.str(key);
                 w.bytes(*base_value);
               }
             });
}

}  // namespace

// ------------------------------------------------------------- LedgerView

void LedgerView::credit(crypto::Address a, std::uint64_t amount) {
  set_balance(a, find_balance(a).value_or(0) + amount);
}

Status LedgerView::debit(crypto::Address a, std::uint64_t amount) {
  const auto bal = find_balance(a);
  if (!bal.has_value() || *bal < amount) {
    return Status::fail("state.insufficient_funds",
                        "balance below " + std::to_string(amount));
  }
  set_balance(a, *bal - amount);
  return {};
}

Status LedgerView::apply(const Transaction& tx,
                         const ContractRegistry& contracts, Tick height) {
  // apply() is atomic: any failure leaves the view exactly as it was, so
  // block assembly can trial-apply candidates in sequence and skip failures.
  if (!tx.signature_valid()) {
    return Status::fail("tx.bad_signature", "signature does not verify");
  }
  const crypto::Address sender = tx.sender();
  if (tx.nonce != nonce(sender)) {
    return Status::fail("tx.bad_nonce",
                        "expected " + std::to_string(nonce(sender)) + " got " +
                            std::to_string(tx.nonce));
  }
  switch (tx.kind) {
    case TxKind::kTransfer: {
      auto body = TransferBody::decode(tx.payload);
      if (!body.ok()) return Status::fail(body.error().code, body.error().message);
      if (!body.value().to.valid()) {
        return Status::fail("tx.bad_recipient", "null recipient");
      }
      // All checks before any mutation keeps this branch trivially atomic.
      // One lookup serves the affordability check and the debit.
      const std::uint64_t need = tx.fee + body.value().amount;
      const auto bal = find_balance(sender);
      if (bal.value_or(0) < need) {
        return Status::fail("state.insufficient_funds", "cannot cover amount + fee");
      }
      if (bal.has_value()) set_balance(sender, *bal - need);
      credit(body.value().to, body.value().amount);
      break;
    }
    case TxKind::kAuditRecord: {
      auto body = AuditRecordBody::decode(tx.payload);
      if (!body.ok()) return Status::fail(body.error().code, body.error().message);
      const auto bal = find_balance(sender);
      if (bal.value_or(0) < tx.fee) {
        return Status::fail("state.insufficient_funds", "cannot cover fee");
      }
      if (bal.has_value()) set_balance(sender, *bal - tx.fee);
      append_audit(StoredAuditRecord{sender, std::move(body).value(), height});
      break;
    }
    case TxKind::kContractCall: {
      const Contract* contract = contracts.find(tx.contract);
      if (contract == nullptr) {
        return Status::fail("tx.unknown_contract", tx.contract);
      }
      if (balance(sender) < tx.fee) {
        return Status::fail("state.insufficient_funds", "cannot cover fee");
      }
      // Contract bodies may fail after arbitrary writes; running the call in
      // a nested overlay keeps the whole transaction atomic — discarding the
      // overlay on failure costs O(writes), not a full-state snapshot.
      LedgerStateOverlay scratch(static_cast<LedgerView&>(*this));
      (void)scratch.debit(sender, tx.fee);
      CallContext ctx(scratch, tx.contract, sender, height);
      if (Status status = contract->call(ctx, tx.method, tx.payload); !status.ok()) {
        return status;
      }
      scratch.commit();
      break;
    }
    default:
      return Status::fail("tx.bad_kind", "unknown transaction kind");
  }
  set_nonce(sender, tx.nonce + 1);
  add_burned_fees(tx.fee);
  return {};
}

// ------------------------------------------------------------ LedgerState

std::optional<std::uint64_t> LedgerState::find_balance(crypto::Address a) const {
  const auto it = balances_.find(a);
  if (it == balances_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t LedgerState::nonce(crypto::Address a) const {
  const auto it = nonces_.find(a);
  return it == nonces_.end() ? 0 : it->second;
}

void LedgerState::set_balance(crypto::Address a, std::uint64_t value) {
  balances_[a] = value;
}

void LedgerState::set_nonce(crypto::Address a, std::uint64_t value) {
  nonces_[a] = value;
}

void LedgerState::append_audit(StoredAuditRecord record) {
  audit_log_.push_back(std::move(record));
}

const ContractStore* LedgerState::find_store(const std::string& contract) const {
  const auto it = contracts_.find(contract);
  return it == contracts_.end() ? nullptr : &it->second;
}

const Bytes* LedgerState::store_get(const std::string& contract,
                                    const std::string& key) const {
  const ContractStore* store = find_store(contract);
  if (store == nullptr) return nullptr;
  const auto it = store->find(key);
  return it == store->end() ? nullptr : &it->second;
}

void LedgerState::store_put(const std::string& contract, const std::string& key,
                            Bytes value) {
  contracts_[contract][key] = std::move(value);
}

void LedgerState::store_erase(const std::string& contract,
                              const std::string& key) {
  // Deliberately creates the (empty) store if missing — matches the
  // historical CallContext::erase semantics that the state root covers.
  contracts_[contract].erase(key);
}

std::vector<std::string> LedgerState::store_keys_with_prefix(
    const std::string& contract, const std::string& prefix) const {
  std::vector<std::string> out;
  const ContractStore* store = find_store(contract);
  if (store == nullptr) return out;
  for (auto it = store->lower_bound(prefix); it != store->end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

crypto::Digest LedgerState::state_root() const {
  crypto::HashWriter w;
  w.u32(static_cast<std::uint32_t>(balances_.size()));
  for (const auto& [addr, bal] : balances_) {
    w.u64(addr.value);
    w.u64(bal);
  }
  w.u32(static_cast<std::uint32_t>(nonces_.size()));
  for (const auto& [addr, n] : nonces_) {
    w.u64(addr.value);
    w.u64(n);
  }
  w.u32(static_cast<std::uint32_t>(audit_log_.size()));
  for (const auto& rec : audit_log_) {
    hash_audit_record(w, rec);
  }
  w.u32(static_cast<std::uint32_t>(contracts_.size()));
  for (const auto& [name, store] : contracts_) {
    w.str(name);
    w.u32(static_cast<std::uint32_t>(store.size()));
    for (const auto& [key, value] : store) {
      w.str(key);
      w.bytes(value);
    }
  }
  w.u64(burned_fees_);
  return w.digest();
}

// ----------------------------------------------------- LedgerStateOverlay

std::optional<std::uint64_t> LedgerStateOverlay::find_balance(
    crypto::Address a) const {
  const auto it = balances_.find(a);
  if (it != balances_.end()) return it->second;
  return base_->find_balance(a);
}

std::uint64_t LedgerStateOverlay::nonce(crypto::Address a) const {
  const auto it = nonces_.find(a);
  return it != nonces_.end() ? it->second : base_->nonce(a);
}

void LedgerStateOverlay::set_balance(crypto::Address a, std::uint64_t value) {
  balances_[a] = value;
}

void LedgerStateOverlay::set_nonce(crypto::Address a, std::uint64_t value) {
  nonces_[a] = value;
}

std::uint64_t LedgerStateOverlay::burned_fees() const {
  return base_->burned_fees() + burned_delta_;
}

void LedgerStateOverlay::append_audit(StoredAuditRecord record) {
  audit_appended_.push_back(std::move(record));
}

const Bytes* LedgerStateOverlay::store_get(const std::string& contract,
                                           const std::string& key) const {
  const auto sit = stores_.find(contract);
  if (sit != stores_.end()) {
    const auto kit = sit->second.find(key);
    if (kit != sit->second.end()) {
      return kit->second.has_value() ? &*kit->second : nullptr;
    }
  }
  return base_->store_get(contract, key);
}

void LedgerStateOverlay::store_put(const std::string& contract,
                                   const std::string& key, Bytes value) {
  stores_[contract][key] = std::move(value);
}

void LedgerStateOverlay::store_erase(const std::string& contract,
                                     const std::string& key) {
  stores_[contract][key] = std::nullopt;
}

std::vector<std::string> LedgerStateOverlay::store_keys_with_prefix(
    const std::string& contract, const std::string& prefix) const {
  std::vector<std::string> out = base_->store_keys_with_prefix(contract, prefix);
  const auto sit = stores_.find(contract);
  if (sit == stores_.end()) return out;
  for (auto it = sit->second.lower_bound(prefix); it != sit->second.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    const auto pos = std::lower_bound(out.begin(), out.end(), it->first);
    const bool present = pos != out.end() && *pos == it->first;
    if (it->second.has_value()) {
      if (!present) out.insert(pos, it->first);
    } else if (present) {
      out.erase(pos);
    }
  }
  return out;
}

void LedgerStateOverlay::commit() {
  assert(writable_ != nullptr && "commit() on a read-only overlay");
  if (writable_ == nullptr) return;
  for (const auto& [addr, value] : balances_) writable_->set_balance(addr, value);
  for (const auto& [addr, value] : nonces_) writable_->set_nonce(addr, value);
  for (auto& rec : audit_appended_) writable_->append_audit(std::move(rec));
  for (auto& [contract, delta] : stores_) {
    for (auto& [key, value] : delta) {
      if (value.has_value()) {
        writable_->store_put(contract, key, std::move(*value));
      } else {
        writable_->store_erase(contract, key);
      }
    }
  }
  writable_->add_burned_fees(burned_delta_);
  balances_.clear();
  nonces_.clear();
  audit_appended_.clear();
  stores_.clear();
  burned_delta_ = 0;
}

std::size_t LedgerStateOverlay::touched() const {
  std::size_t n = balances_.size() + nonces_.size() + audit_appended_.size();
  for (const auto& [contract, delta] : stores_) n += delta.size();
  return n;
}

crypto::Digest LedgerStateOverlay::state_root() const {
  assert(base_state_ != nullptr &&
         "state_root() requires a LedgerState base (not a nested overlay)");
  const LedgerState& base = *base_state_;
  crypto::HashWriter w;
  hash_merged_accounts(w, base.balances_, balances_);
  hash_merged_accounts(w, base.nonces_, nonces_);
  w.u32(static_cast<std::uint32_t>(base.audit_log_.size() + audit_appended_.size()));
  for (const auto& rec : base.audit_log_) hash_audit_record(w, rec);
  for (const auto& rec : audit_appended_) hash_audit_record(w, rec);
  // Contract stores: union of base and overlay contract names, each store
  // merged entry-wise. A delta consisting solely of tombstones still names
  // the contract (store_erase materializes an empty store on commit).
  std::size_t contract_count = base.contracts_.size();
  for (const auto& [name, delta] : stores_) {
    (void)delta;
    if (!base.contracts_.contains(name)) ++contract_count;
  }
  w.u32(static_cast<std::uint32_t>(contract_count));
  static const ContractStore kEmptyStore;
  static const StoreDelta kEmptyDelta;
  merge_maps(base.contracts_, stores_,
             [&w](const std::string& name, const ContractStore* base_store,
                  const StoreDelta* delta) {
               w.str(name);
               hash_merged_store(w, base_store != nullptr ? *base_store : kEmptyStore,
                                 delta != nullptr ? *delta : kEmptyDelta);
             });
  w.u64(base.burned_fees_ + burned_delta_);
  return w.digest();
}

// ------------------------------------------------------------ CallContext

const Bytes* CallContext::get(const std::string& key) const {
  return state_.store_get(contract_name_, key);
}

void CallContext::put(const std::string& key, Bytes value) {
  state_.store_put(contract_name_, key, std::move(value));
}

void CallContext::erase(const std::string& key) {
  state_.store_erase(contract_name_, key);
}

std::vector<std::string> CallContext::keys_with_prefix(
    const std::string& prefix) const {
  return state_.store_keys_with_prefix(contract_name_, prefix);
}

Status CallContext::transfer(crypto::Address from, crypto::Address to,
                             std::uint64_t amount) {
  if (auto s = state_.debit(from, amount); !s.ok()) return s;
  state_.credit(to, amount);
  return {};
}

void ContractRegistry::install(std::shared_ptr<const Contract> contract) {
  contracts_[contract->name()] = std::move(contract);
}

const Contract* ContractRegistry::find(const std::string& name) const {
  const auto it = contracts_.find(name);
  return it == contracts_.end() ? nullptr : it->second.get();
}

}  // namespace mv::ledger
