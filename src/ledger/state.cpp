#include "ledger/state.h"

#include <cstdlib>

#include "common/logging.h"

namespace mv::ledger {

namespace {

void hash_audit_record(crypto::HashWriter& w, const StoredAuditRecord& rec) {
  w.u64(rec.collector.value);
  w.raw(rec.body.encode());
  w.i64(rec.height);
}

/// One link of the audit log's running hash: h' = H(h || record).
crypto::Digest chain_audit(const crypto::Digest& h, const StoredAuditRecord& rec) {
  crypto::HashWriter w;
  w.raw(h);
  hash_audit_record(w, rec);
  return w.digest();
}

/// Element digest of one contract-store entry for the multiset section hash.
crypto::Digest store_entry_hash(const std::string& key, const Bytes& value) {
  crypto::HashWriter w;
  w.str(key);
  w.bytes(value);
  return w.digest();
}

/// Two-pointer merge of a base map and a delta map (delta wins on equal
/// keys), visiting entries in key order. `emit(key, base_value_or_null,
/// delta_value_or_null)` is called once per merged key.
template <typename BaseMap, typename DeltaMap, typename Emit>
void merge_maps(const BaseMap& base, const DeltaMap& delta, Emit emit) {
  auto bit = base.begin();
  auto dit = delta.begin();
  while (bit != base.end() || dit != delta.end()) {
    if (dit == delta.end() || (bit != base.end() && bit->first < dit->first)) {
      emit(bit->first, &bit->second, nullptr);
      ++bit;
    } else if (bit == base.end() || dit->first < bit->first) {
      emit(dit->first, nullptr, &dit->second);
      ++dit;
    } else {
      emit(bit->first, &bit->second, &dit->second);
      ++bit;
      ++dit;
    }
  }
}

}  // namespace

// The key (address) is mixed in by MerkleMap's leaf hash; the payload
// commits to balance presence, balance, and nonce.
crypto::Digest account_leaf_digest(bool has_balance, std::uint64_t balance,
                                   std::uint64_t nonce) {
  crypto::HashWriter w;
  w.u8(has_balance ? 1 : 0);
  w.u64(balance);
  w.u64(nonce);
  return w.digest();
}

// Combine the root from the section digests (the commitment layout spec in
// DESIGN.md §"State commitment" documents this byte order).
crypto::Digest combine_commitment_root(const StateCommitment& c) {
  crypto::HashWriter w;
  w.str("mv.state.v2");
  w.raw(c.accounts_root);
  w.u64(c.account_count);
  w.raw(c.audit_digest);
  w.u64(c.audit_count);
  w.raw(c.stores_digest);
  w.u64(c.burned_fees);
  return w.digest();
}

// ------------------------------------------------------------- LedgerView

void LedgerView::credit(crypto::Address a, std::uint64_t amount) {
  set_balance(a, find_balance(a).value_or(0) + amount);
}

Status LedgerView::debit(crypto::Address a, std::uint64_t amount) {
  const auto bal = find_balance(a);
  if (!bal.has_value() || *bal < amount) {
    return Status::fail(errc::kStateInsufficientFunds,
                        "balance below " + std::to_string(amount));
  }
  set_balance(a, *bal - amount);
  return {};
}

Status LedgerView::apply(const Transaction& tx,
                         const ContractRegistry& contracts, Tick height,
                         bool signature_preverified) {
  // apply() is atomic: any failure leaves the view exactly as it was, so
  // block assembly can trial-apply candidates in sequence and skip failures.
  if (!signature_preverified && !tx.signature_valid()) {
    return Status::fail(errc::kTxBadSignature, "signature does not verify");
  }
  const crypto::Address sender = tx.sender();
  if (tx.nonce != nonce(sender)) {
    return Status::fail(errc::kTxBadNonce,
                        "expected " + std::to_string(nonce(sender)) + " got " +
                            std::to_string(tx.nonce));
  }
  switch (tx.kind) {
    case TxKind::kTransfer: {
      auto body = TransferBody::decode(tx.payload);
      if (!body.ok()) return Status::fail(body.error().code, body.error().message);
      if (!body.value().to.valid()) {
        return Status::fail(errc::kTxBadRecipient, "null recipient");
      }
      // All checks before any mutation keeps this branch trivially atomic.
      // One lookup serves the affordability check and the debit.
      const std::uint64_t need = tx.fee + body.value().amount;
      const auto bal = find_balance(sender);
      if (bal.value_or(0) < need) {
        return Status::fail(errc::kStateInsufficientFunds, "cannot cover amount + fee");
      }
      if (bal.has_value()) set_balance(sender, *bal - need);
      credit(body.value().to, body.value().amount);
      break;
    }
    case TxKind::kAuditRecord: {
      auto body = AuditRecordBody::decode(tx.payload);
      if (!body.ok()) return Status::fail(body.error().code, body.error().message);
      const auto bal = find_balance(sender);
      if (bal.value_or(0) < tx.fee) {
        return Status::fail(errc::kStateInsufficientFunds, "cannot cover fee");
      }
      if (bal.has_value()) set_balance(sender, *bal - tx.fee);
      append_audit(StoredAuditRecord{sender, std::move(body).value(), height});
      break;
    }
    case TxKind::kContractCall: {
      const Contract* contract = contracts.find(tx.contract);
      if (contract == nullptr) {
        return Status::fail(errc::kTxUnknownContract, tx.contract);
      }
      if (balance(sender) < tx.fee) {
        return Status::fail(errc::kStateInsufficientFunds, "cannot cover fee");
      }
      // Contract bodies may fail after arbitrary writes; running the call in
      // a nested overlay keeps the whole transaction atomic — discarding the
      // overlay on failure costs O(writes), not a full-state snapshot.
      auto scratch = LedgerStateOverlay::nested(*this);
      (void)scratch.debit(sender, tx.fee);
      CallContext ctx(scratch, tx.contract, sender, height);
      if (Status status = contract->call(ctx, tx.method, tx.payload); !status.ok()) {
        return status;
      }
      scratch.commit();
      break;
    }
    default:
      return Status::fail(errc::kTxBadKind, "unknown transaction kind");
  }
  set_nonce(sender, tx.nonce + 1);
  add_burned_fees(tx.fee);
  return {};
}

// ------------------------------------------------------------ LedgerState

std::optional<std::uint64_t> LedgerState::find_balance(crypto::Address a) const {
  const auto it = balances_.find(a);
  if (it == balances_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t LedgerState::nonce(crypto::Address a) const {
  const auto it = nonces_.find(a);
  return it == nonces_.end() ? 0 : it->second;
}

void LedgerState::refresh_account_leaf(crypto::Address a) {
  const auto bal = find_balance(a);
  const std::uint64_t n = nonce(a);
  if (bal.has_value() || n != 0) {
    accounts_.put(a.value, account_leaf_digest(bal.has_value(), bal.value_or(0), n));
  } else {
    accounts_.erase(a.value);
  }
}

void LedgerState::set_balance(crypto::Address a, std::uint64_t value) {
  balances_[a] = value;
  refresh_account_leaf(a);
}

void LedgerState::set_nonce(crypto::Address a, std::uint64_t value) {
  nonces_[a] = value;
  refresh_account_leaf(a);
}

void LedgerState::load_accounts(const std::vector<AccountSeed>& sorted) {
  std::vector<std::pair<const crypto::Address, std::uint64_t>> balances;
  std::vector<std::pair<const crypto::Address, std::uint64_t>> nonces;
  std::vector<std::pair<std::uint64_t, crypto::Digest>> leaves;
  balances.reserve(sorted.size());
  leaves.reserve(sorted.size());
  // Value digests in one batched pass: the preimage (flag || balance ||
  // nonce, 17 bytes — the exact byte stream account_leaf_digest hashes) fits
  // a single compression block, so pairs run in interleaved SHA lanes.
  constexpr std::size_t kPreimage = 1 + 8 + 8;
  std::vector<std::uint8_t> preimages(sorted.size() * kPreimage);
  std::vector<crypto::ShortInput> inputs(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const AccountSeed& s = sorted[i];
    std::uint8_t* p = preimages.data() + i * kPreimage;
    p[0] = s.balance.has_value() ? 1 : 0;
    const std::uint64_t bal = s.balance.value_or(0);
    for (int b = 0; b < 8; ++b) {
      p[1 + b] = static_cast<std::uint8_t>(bal >> (8 * b));
      p[9 + b] = static_cast<std::uint8_t>(s.nonce >> (8 * b));
    }
    inputs[i] = {p, kPreimage};
  }
  std::vector<crypto::Digest> digests(sorted.size());
  crypto::sha256_short_batch(inputs, digests.data());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const AccountSeed& s = sorted[i];
    if (s.balance.has_value()) balances.emplace_back(s.addr, *s.balance);
    if (s.nonce != 0) nonces.emplace_back(s.addr, s.nonce);
    leaves.emplace_back(s.addr.value, digests[i]);
  }
  // Range construction of a std::map from a sorted range is O(n).
  balances_ = std::map<crypto::Address, std::uint64_t>(balances.begin(),
                                                       balances.end());
  nonces_ = std::map<crypto::Address, std::uint64_t>(nonces.begin(),
                                                     nonces.end());
  accounts_ = crypto::MerkleMap::from_sorted_leaves(leaves);
}

void LedgerState::append_audit(StoredAuditRecord record) {
  audit_digest_ = chain_audit(audit_digest_, record);
  audit_log_.push_back(std::move(record));
}

const ContractStore* LedgerState::find_store(const std::string& contract) const {
  const auto it = contracts_.find(contract);
  return it == contracts_.end() ? nullptr : &it->second;
}

const Bytes* LedgerState::store_get(const std::string& contract,
                                    const std::string& key) const {
  const ContractStore* store = find_store(contract);
  if (store == nullptr) return nullptr;
  const auto it = store->find(key);
  return it == store->end() ? nullptr : &it->second;
}

void LedgerState::store_put(const std::string& contract, const std::string& key,
                            Bytes value) {
  ContractStore& store = contracts_[contract];
  StoreDigest& sd = store_digests_[contract];
  const auto it = store.find(key);
  if (it != store.end()) {
    sd.sum.remove(store_entry_hash(key, it->second));
    --sd.count;
  }
  sd.sum.add(store_entry_hash(key, value));
  ++sd.count;
  store[key] = std::move(value);
}

void LedgerState::store_erase(const std::string& contract,
                              const std::string& key) {
  // Deliberately creates the (empty) store if missing — matches the
  // historical CallContext::erase semantics that the commitment covers.
  ContractStore& store = contracts_[contract];
  StoreDigest& sd = store_digests_[contract];
  const auto it = store.find(key);
  if (it != store.end()) {
    sd.sum.remove(store_entry_hash(key, it->second));
    --sd.count;
    store.erase(it);
  }
}

void LedgerState::materialize_store(const std::string& contract) {
  contracts_[contract];
  store_digests_[contract];
}

LedgerState LedgerState::content_clone() const {
  LedgerState copy;
  copy.balances_ = balances_;
  copy.nonces_ = nonces_;
  copy.audit_log_ = audit_log_;
  copy.contracts_ = contracts_;
  copy.burned_fees_ = burned_fees_;
  copy.audit_digest_ = audit_digest_;
  copy.store_digests_ = store_digests_;
  return copy;
}

void LedgerState::apply_undo(const StateUndo& undo) {
  for (const auto& [contract, su] : undo.stores) {
    for (const auto& [key, prior] : su.entries) {
      if (prior.has_value()) {
        store_put(contract, key, *prior);
      } else {
        store_erase(contract, key);
      }
    }
    if (!su.existed) {
      // The block materialized this store; un-create it. All its entries
      // were prior-absent, so the erases above already emptied it.
      contracts_.erase(contract);
      store_digests_.erase(contract);
    }
  }
  for (const auto& [addr, prior] : undo.balances) {
    if (prior.has_value()) {
      set_balance(addr, *prior);
    } else {
      balances_.erase(addr);
      refresh_account_leaf(addr);
    }
  }
  for (const auto& [addr, prior] : undo.nonces) set_nonce(addr, prior);
  // The audit chain hash cannot be un-chained; restore the captured digest
  // and truncate the log back to its pre-block length.
  audit_log_.resize(undo.audit_count);
  audit_digest_ = undo.audit_digest;
  burned_fees_ -= undo.burned_delta;
}

std::vector<std::string> LedgerState::store_keys_with_prefix(
    const std::string& contract, const std::string& prefix) const {
  std::vector<std::string> out;
  const ContractStore* store = find_store(contract);
  if (store == nullptr) return out;
  for (auto it = store->lower_bound(prefix); it != store->end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

StateCommitment LedgerState::commitment_with(const CommitmentDelta& delta) const {
  StateCommitment c;

  // Accounts: cached Merkle tree plus the delta's touched leaves.
  if (delta.balances.empty() && delta.nonces.empty()) {
    c.accounts_root = accounts_.root();
    c.account_count = accounts_.size();
  } else {
    crypto::MerkleMap::Delta acc;
    merge_maps(delta.balances, delta.nonces,
               [&](crypto::Address addr, const std::uint64_t* dbal,
                   const std::uint64_t* dnon) {
                 bool has_bal = true;
                 std::uint64_t bal = 0;
                 if (dbal != nullptr) {
                   bal = *dbal;
                 } else {
                   const auto base_bal = find_balance(addr);
                   has_bal = base_bal.has_value();
                   bal = base_bal.value_or(0);
                 }
                 const std::uint64_t n = dnon != nullptr ? *dnon : nonce(addr);
                 if (has_bal || n != 0) {
                   acc[addr.value] = account_leaf_digest(has_bal, bal, n);
                 } else {
                   acc[addr.value] = std::nullopt;
                 }
               });
    c.accounts_root = accounts_.root_with(acc);
    c.account_count = accounts_.size_with(acc);
  }

  // Audit log: extend the running chain hash with the appended records.
  crypto::Digest h = audit_digest_;
  for (const StoredAuditRecord* rec : delta.audit) h = chain_audit(h, *rec);
  c.audit_digest = h;
  c.audit_count = audit_log_.size() + delta.audit.size();

  // Contract stores: adjust the touched contracts' multiset digests, then
  // combine all per-contract digests in name order. A delta consisting
  // solely of tombstones still names the contract (store_erase materializes
  // an empty store on commit).
  std::map<std::string, StoreDigest> adjusted;
  for (const auto& [contract, kv] : delta.stores) {
    const auto base_it = store_digests_.find(contract);
    StoreDigest sd = base_it != store_digests_.end() ? base_it->second : StoreDigest{};
    for (const auto& [key, pval] : kv) {
      const Bytes* old = store_get(contract, key);
      if (old != nullptr) {
        sd.sum.remove(store_entry_hash(key, *old));
        --sd.count;
      }
      if (pval != nullptr && pval->has_value()) {
        sd.sum.add(store_entry_hash(key, **pval));
        ++sd.count;
      }
    }
    adjusted[contract] = sd;
  }
  std::size_t contract_count = store_digests_.size();
  for (const auto& [name, sd] : adjusted) {
    (void)sd;
    if (!store_digests_.contains(name)) ++contract_count;
  }
  crypto::HashWriter stores_w;
  stores_w.u32(static_cast<std::uint32_t>(contract_count));
  merge_maps(store_digests_, adjusted,
             [&stores_w](const std::string& name, const StoreDigest* base_sd,
                         const StoreDigest* adj_sd) {
               const StoreDigest& sd = adj_sd != nullptr ? *adj_sd : *base_sd;
               stores_w.str(name);
               stores_w.u64(sd.count);
               stores_w.raw(sd.sum.bytes());
             });
  c.stores_digest = stores_w.digest();

  c.burned_fees = burned_fees_ + delta.burned;
  c.root = combine_commitment_root(c);
  return c;
}

StateCommitment LedgerState::full_rehash_commitment() const {
  StateCommitment c;

  // Accounts: independent structural recursion over an explicit leaf list
  // (no cached tree involved).
  std::vector<std::pair<std::uint64_t, crypto::Digest>> leaves;
  leaves.reserve(balances_.size() + nonces_.size());
  merge_maps(balances_, nonces_,
             [&leaves](crypto::Address addr, const std::uint64_t* bal,
                       const std::uint64_t* n) {
               const bool has_bal = bal != nullptr;
               const std::uint64_t nonce_value = n != nullptr ? *n : 0;
               if (has_bal || nonce_value != 0) {
                 leaves.emplace_back(
                     addr.value,
                     account_leaf_digest(has_bal, has_bal ? *bal : 0, nonce_value));
               }
             });
  c.account_count = leaves.size();
  c.accounts_root = crypto::merkle_map_reference_root(std::move(leaves));

  // Audit log: refold the whole chain from zero.
  crypto::Digest h{};
  for (const auto& rec : audit_log_) h = chain_audit(h, rec);
  c.audit_digest = h;
  c.audit_count = audit_log_.size();

  // Contract stores: rebuild every multiset digest from the raw maps.
  crypto::HashWriter stores_w;
  stores_w.u32(static_cast<std::uint32_t>(contracts_.size()));
  for (const auto& [name, store] : contracts_) {
    crypto::SetHash sum;
    for (const auto& [key, value] : store) sum.add(store_entry_hash(key, value));
    stores_w.str(name);
    stores_w.u64(store.size());
    stores_w.raw(sum.bytes());
  }
  c.stores_digest = stores_w.digest();

  c.burned_fees = burned_fees_;
  c.root = combine_commitment_root(c);
  return c;
}

// ----------------------------------------------------- LedgerStateOverlay

std::optional<std::uint64_t> LedgerStateOverlay::find_balance(
    crypto::Address a) const {
  const auto it = balances_.find(a);
  if (it != balances_.end()) return it->second;
  return base_->find_balance(a);
}

std::uint64_t LedgerStateOverlay::nonce(crypto::Address a) const {
  const auto it = nonces_.find(a);
  return it != nonces_.end() ? it->second : base_->nonce(a);
}

void LedgerStateOverlay::set_balance(crypto::Address a, std::uint64_t value) {
  balances_[a] = value;
}

void LedgerStateOverlay::set_nonce(crypto::Address a, std::uint64_t value) {
  nonces_[a] = value;
}

std::uint64_t LedgerStateOverlay::burned_fees() const {
  return base_->burned_fees() + burned_delta_;
}

void LedgerStateOverlay::append_audit(StoredAuditRecord record) {
  audit_appended_.push_back(std::move(record));
}

const Bytes* LedgerStateOverlay::store_get(const std::string& contract,
                                           const std::string& key) const {
  const auto sit = stores_.find(contract);
  if (sit != stores_.end()) {
    const auto kit = sit->second.find(key);
    if (kit != sit->second.end()) {
      return kit->second.has_value() ? &*kit->second : nullptr;
    }
  }
  return base_->store_get(contract, key);
}

void LedgerStateOverlay::store_put(const std::string& contract,
                                   const std::string& key, Bytes value) {
  stores_[contract][key] = std::move(value);
}

void LedgerStateOverlay::store_erase(const std::string& contract,
                                     const std::string& key) {
  stores_[contract][key] = std::nullopt;
}

std::vector<std::string> LedgerStateOverlay::store_keys_with_prefix(
    const std::string& contract, const std::string& prefix) const {
  std::vector<std::string> out = base_->store_keys_with_prefix(contract, prefix);
  const auto sit = stores_.find(contract);
  if (sit == stores_.end()) return out;
  for (auto it = sit->second.lower_bound(prefix); it != sit->second.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    const auto pos = std::lower_bound(out.begin(), out.end(), it->first);
    const bool present = pos != out.end() && *pos == it->first;
    if (it->second.has_value()) {
      if (!present) out.insert(pos, it->first);
    } else if (present) {
      out.erase(pos);
    }
  }
  return out;
}

StateCommitment LedgerStateOverlay::commitment_with(
    const CommitmentDelta& above) const {
  // Fold this overlay's delta under the layers stacked above it (above
  // wins on equal keys — it is newer) and recurse toward the materialized
  // base, which combines the flattened delta with its cached sections.
  CommitmentDelta merged;
  merged.balances = balances_;
  for (const auto& [addr, value] : above.balances) merged.balances[addr] = value;
  merged.nonces = nonces_;
  for (const auto& [addr, value] : above.nonces) merged.nonces[addr] = value;
  merged.audit.reserve(audit_appended_.size() + above.audit.size());
  for (const auto& rec : audit_appended_) merged.audit.push_back(&rec);
  merged.audit.insert(merged.audit.end(), above.audit.begin(), above.audit.end());
  for (const auto& [contract, kv] : stores_) {
    auto& dst = merged.stores[contract];
    for (const auto& [key, value] : kv) dst[key] = &value;
  }
  for (const auto& [contract, kv] : above.stores) {
    auto& dst = merged.stores[contract];
    for (const auto& [key, pval] : kv) dst[key] = pval;
  }
  merged.burned = burned_delta_ + above.burned;
  return base_->commitment_with(merged);
}

void LedgerStateOverlay::commit() {
  // Committing a reader() overlay would silently discard the whole delta, so
  // it is a hard failure in every build type — an assert compiles out in
  // release and turns the bug into state loss.
  if (writable_ == nullptr) {
    MV_LOG_ERROR << "LedgerStateOverlay::commit() on a read-only overlay ("
                 << touched() << " touched entries would be dropped)";
    std::clog.flush();  // abort() skips stream teardown; surface the message
    std::abort();
  }
  for (const auto& [addr, value] : balances_) writable_->set_balance(addr, value);
  for (const auto& [addr, value] : nonces_) writable_->set_nonce(addr, value);
  for (auto& rec : audit_appended_) writable_->append_audit(std::move(rec));
  for (auto& [contract, delta] : stores_) {
    for (auto& [key, value] : delta) {
      if (value.has_value()) {
        writable_->store_put(contract, key, std::move(*value));
      } else {
        writable_->store_erase(contract, key);
      }
    }
  }
  writable_->add_burned_fees(burned_delta_);
  balances_.clear();
  nonces_.clear();
  audit_appended_.clear();
  stores_.clear();
  burned_delta_ = 0;
}

StateUndo LedgerStateOverlay::capture_undo(const LedgerState& base) const {
  StateUndo undo;
  for (const auto& [addr, value] : balances_) {
    (void)value;
    undo.balances.emplace(addr, base.find_balance(addr));
  }
  for (const auto& [addr, value] : nonces_) {
    (void)value;
    undo.nonces.emplace(addr, base.nonce(addr));
  }
  for (const auto& [contract, delta] : stores_) {
    StateUndo::StoreUndo su;
    su.existed = base.find_store(contract) != nullptr;
    for (const auto& [key, value] : delta) {
      (void)value;
      const Bytes* prior = base.store_get(contract, key);
      su.entries.emplace(key, prior != nullptr ? std::optional<Bytes>(*prior)
                                               : std::nullopt);
    }
    undo.stores.emplace(contract, std::move(su));
  }
  undo.audit_count = base.audit_log().size();
  undo.audit_digest = base.audit_digest();
  undo.burned_delta = burned_delta_;
  return undo;
}

std::size_t LedgerStateOverlay::touched() const {
  std::size_t n = balances_.size() + nonces_.size() + audit_appended_.size();
  for (const auto& [contract, delta] : stores_) n += delta.size();
  return n;
}

// ------------------------------------------------------------ CallContext

const Bytes* CallContext::get(const std::string& key) const {
  return state_.store_get(contract_name_, key);
}

void CallContext::put(const std::string& key, Bytes value) {
  state_.store_put(contract_name_, key, std::move(value));
}

void CallContext::erase(const std::string& key) {
  state_.store_erase(contract_name_, key);
}

std::vector<std::string> CallContext::keys_with_prefix(
    const std::string& prefix) const {
  return state_.store_keys_with_prefix(contract_name_, prefix);
}

Status CallContext::transfer(crypto::Address from, crypto::Address to,
                             std::uint64_t amount) {
  if (auto s = state_.debit(from, amount); !s.ok()) return s;
  state_.credit(to, amount);
  return {};
}

Status CallContext::burn(crypto::Address from, std::uint64_t amount) {
  return state_.debit(from, amount);
}

void CallContext::mint(crypto::Address to, std::uint64_t amount) {
  state_.credit(to, amount);
}

void ContractRegistry::install(std::shared_ptr<const Contract> contract) {
  contracts_[contract->name()] = std::move(contract);
}

const Contract* ContractRegistry::find(const std::string& name) const {
  const auto it = contracts_.find(name);
  return it == contracts_.end() ? nullptr : it->second.get();
}

}  // namespace mv::ledger
