// Mempool: pending transactions awaiting inclusion, ordered fee-first.
#pragma once

#include <map>
#include <unordered_set>
#include <vector>

#include "ledger/state.h"
#include "ledger/transaction.h"

namespace mv::ledger {

class Mempool {
 public:
  /// Admit a transaction. Rejects duplicates, bad signatures, and nonces
  /// already consumed by `state`.
  [[nodiscard]] Status add(Transaction tx, const LedgerState& state);

  /// Select up to `max_txs` transactions for a block, highest fee first but
  /// respecting per-sender nonce order. Selected txs stay in the pool until
  /// `remove_included` is called (the block may still be rejected).
  [[nodiscard]] std::vector<Transaction> select(std::size_t max_txs,
                                                const LedgerState& state) const;

  /// Drop every transaction included in a committed block.
  void remove_included(const std::vector<Transaction>& txs);

  /// Drop transactions whose nonce has been consumed (stale after commits).
  void prune(const LedgerState& state);

  [[nodiscard]] std::size_t size() const { return by_digest_.size(); }
  [[nodiscard]] bool empty() const { return by_digest_.empty(); }

 private:
  struct Key {
    std::uint64_t fee;
    std::uint64_t seq;
    bool operator<(const Key& other) const {
      if (fee != other.fee) return fee > other.fee;  // higher fee first
      return seq < other.seq;                        // then FIFO
    }
  };

  std::map<Key, Transaction> ordered_;
  std::unordered_set<std::uint64_t> by_digest_;  // digest prefix as dedupe key
  std::uint64_t seq_ = 0;
};

}  // namespace mv::ledger
