// Mempool: pending transactions awaiting inclusion, ordered fee-first.
//
// Indexed two ways so every operation touches only the transactions involved:
//  - by_sender_: per-sender nonce-ordered queues (selection walks each
//    sender's runnable prefix in nonce order);
//  - by_digest_: cached dedupe key -> (sender, nonce) locator (duplicate
//    detection and eviction without re-hashing or scanning the pool).
// Admission, selection, and eviction are O(log n) per transaction; the
// historical implementation re-hashed every pending tx per selection pass and
// scanned the whole pool per eviction (O(n²) around every block).
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "ledger/state.h"
#include "ledger/transaction.h"

namespace mv::ledger {

class Mempool {
 public:
  /// Admit a transaction. Rejects duplicates, bad signatures, and nonces
  /// already consumed by `state`. A pending transaction with the same sender
  /// and nonce is replaced only by a strictly higher fee
  /// ("mempool.underpriced" otherwise).
  [[nodiscard]] Status add(Transaction tx, const LedgerState& state);

  /// Select up to `max_txs` transactions for a block, highest fee first but
  /// respecting per-sender nonce order. Selected txs stay in the pool until
  /// `remove_included` is called (the block may still be rejected).
  [[nodiscard]] std::vector<Transaction> select(std::size_t max_txs,
                                                const LedgerState& state) const;

  /// Drop every transaction included in a committed block.
  void remove_included(const std::vector<Transaction>& txs);

  /// Drop transactions whose nonce has been consumed (stale after commits).
  void prune(const LedgerState& state);

  [[nodiscard]] std::size_t size() const { return by_digest_.size(); }
  [[nodiscard]] bool empty() const { return by_digest_.empty(); }

 private:
  struct Entry {
    Transaction tx;
    std::uint64_t dedupe = 0;  ///< cached digest prefix (hashed once, at add)
    std::uint64_t seq = 0;     ///< admission order (FIFO fee tie-break)
  };
  /// nonce -> entry, ordered so the runnable prefix is a forward walk.
  using SenderQueue = std::map<std::uint64_t, Entry>;

  struct Locator {
    std::uint64_t sender = 0;
    std::uint64_t nonce = 0;
  };

  /// Erase one entry and its locator. Returns the iterator past the erased
  /// entry; drops the sender's queue when it empties.
  void erase_entry(std::uint64_t sender, SenderQueue::iterator it);

  std::unordered_map<std::uint64_t, SenderQueue> by_sender_;
  std::unordered_map<std::uint64_t, Locator> by_digest_;
  std::uint64_t seq_ = 0;
};

}  // namespace mv::ledger
