// Mempool: pending transactions awaiting inclusion, ordered fee-first.
//
// Indexed four ways so every operation touches only the transactions involved:
//  - by_sender_: per-sender nonce-ordered queues (selection walks each
//    sender's runnable prefix in nonce order);
//  - by_digest_: cached dedupe key -> (sender, nonce) locator (duplicate
//    detection and eviction without re-hashing or scanning the pool);
//  - by_fee_: (fee, seq) -> locator, so the lowest-fee victim for at-cap
//    eviction is begin();
//  - by_admission_: (admission tick, seq) -> locator, so expiry sweeps cost
//    O(expired · log n) instead of a full scan.
// Admission, selection, eviction, and expiry are O(log n) per transaction; the
// historical implementation re-hashed every pending tx per selection pass and
// scanned the whole pool per eviction (O(n²) around every block).
//
// Unselected transactions no longer pend forever: each entry is stamped with
// the network tick at admission and sweep_expired() drops entries older than
// the configured TTL (a nonce-gapped tx whose predecessor never arrives, a
// fee too low to ever win selection). The pool is also size-capped: at
// capacity a new transaction must strictly out-pay the cheapest pending one,
// which it evicts ("mempool.full" otherwise).
#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "crypto/digest_lru.h"
#include "ledger/state.h"
#include "ledger/transaction.h"

namespace mv::ledger {

struct MempoolConfig {
  /// Pending lifetime in ticks; entries with `now - admitted > ttl` are
  /// dropped by sweep_expired(). 0 disables expiry.
  Tick ttl = 600;
  /// Pool size cap; admission beyond it evicts the lowest-fee entry (or
  /// rejects the newcomer when it does not strictly out-pay it).
  std::size_t max_txs = 65536;
  /// Verified-signature memo shared with the replica's chain
  /// (ValidationConfig::sig_cache): a tx verified at admission is not
  /// re-verified when the block carrying it is assembled or validated.
  /// null = verify at every admission.
  std::shared_ptr<crypto::DigestLruSet> sig_cache;
};

/// Monotonic counters for pool churn (diagnostics / tests).
struct MempoolStats {
  std::uint64_t admitted = 0;          ///< entries accepted into the pool
  std::uint64_t replaced = 0;          ///< replace-by-fee substitutions
  std::uint64_t expired = 0;           ///< dropped by TTL sweep
  std::uint64_t evicted_low_fee = 0;   ///< displaced by a better-paying tx
  std::uint64_t rejected_full = 0;     ///< refused: pool full, fee too low
  std::uint64_t repaired = 0;          ///< dangling index records discarded
};

class Mempool {
 public:
  explicit Mempool(MempoolConfig config = {}) : config_(config) {}

  /// Admit a transaction, stamped with admission tick `now`. Rejects
  /// duplicates, bad signatures, and nonces already consumed by `state`. A
  /// pending transaction with the same sender and nonce is replaced only by a
  /// strictly higher fee ("mempool.underpriced" otherwise). At capacity the
  /// lowest-fee entry is evicted if the newcomer strictly out-pays it;
  /// otherwise the newcomer is rejected ("mempool.full").
  [[nodiscard]] Status add(Transaction tx, const LedgerState& state,
                           Tick now = 0);

  /// Drop entries admitted more than `ttl` ticks before `now`. Returns the
  /// number dropped. O(expired · log n); no-op when ttl == 0. Entries stamped
  /// in the future (a replica clock that regressed) are re-stamped to `now`
  /// so they expire normally instead of pending forever.
  std::size_t sweep_expired(Tick now);

  /// Select up to `max_txs` transactions for a block, highest fee first but
  /// respecting per-sender nonce order. Selected txs stay in the pool until
  /// `remove_included` is called (the block may still be rejected).
  [[nodiscard]] std::vector<Transaction> select(std::size_t max_txs,
                                                const LedgerState& state) const;

  /// Drop every transaction included in a committed block.
  void remove_included(const std::vector<Transaction>& txs);

  /// Drop transactions whose nonce has been consumed (stale after commits).
  void prune(const LedgerState& state);

  /// Invariant audit: every index record resolves to a live entry whose key
  /// fields match, all four indexes agree on the entry count, and no sender
  /// queue is empty. O(n log n); meant for tests and debug sweeps.
  [[nodiscard]] bool self_check() const;

  [[nodiscard]] std::size_t size() const { return by_digest_.size(); }
  [[nodiscard]] bool empty() const { return by_digest_.empty(); }
  [[nodiscard]] const MempoolConfig& config() const { return config_; }
  [[nodiscard]] const MempoolStats& stats() const { return stats_; }

 private:
  struct Entry {
    Transaction tx;
    std::uint64_t dedupe = 0;  ///< cached digest prefix (hashed once, at add)
    std::uint64_t seq = 0;     ///< admission order (FIFO fee tie-break)
    Tick admitted = 0;         ///< network tick at admission (TTL anchor)
  };
  /// nonce -> entry, ordered so the runnable prefix is a forward walk.
  using SenderQueue = std::map<std::uint64_t, Entry>;

  struct Locator {
    std::uint64_t sender = 0;
    std::uint64_t nonce = 0;
  };

  void index_entry(const Entry& entry, const Locator& loc);
  /// Erase one entry and every index record pointing at it; drops the
  /// sender's queue when it empties.
  void erase_entry(std::uint64_t sender, SenderQueue::iterator it);
  /// Resolve a locator defensively (find(), never operator[]) and erase the
  /// entry it names. Returns false — touching nothing — when the locator is
  /// stale (no such sender, or no such nonce in its queue); callers then
  /// discard the dangling index record instead of erasing through end().
  bool erase_located(const Locator& loc);
  /// Clock-regression repair: re-stamp every future-stamped entry
  /// (admitted > now) to `now` and re-key by_admission_ accordingly.
  void restamp_future_entries(Tick now);

  MempoolConfig config_;
  MempoolStats stats_;
  std::unordered_map<std::uint64_t, SenderQueue> by_sender_;
  std::unordered_map<std::uint64_t, Locator> by_digest_;
  /// (fee, seq) -> locator; begin() is the cheapest (oldest first among ties).
  std::map<std::pair<std::uint64_t, std::uint64_t>, Locator> by_fee_;
  /// (admission tick, seq) -> locator; begin() is the oldest entry.
  std::map<std::pair<Tick, std::uint64_t>, Locator> by_admission_;
  std::uint64_t seq_ = 0;
};

}  // namespace mv::ledger
