#include "ledger/shard.h"

#include <string_view>
#include <utility>

namespace mv::ledger {

namespace {

/// Wire magic of the receipt codec; the mint proof hashes these exact bytes.
constexpr std::string_view kReceiptMagic = "mv.xshard.receipt.v1";

/// Distinct multipliers keeping the per-(round, shard) signing streams and
/// the beacon signing stream decorrelated from one another and from the
/// configured base seed.
constexpr std::uint64_t kRoundSalt = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kShardSalt = 0xd1b54a32d192ed03ULL;
constexpr std::uint64_t kBeaconSalt = 0x6d762e626561636fULL;  // "mv.beaco"

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string hex_u64(std::uint64_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[v & 0xf];
    v >>= 4;
  }
  return out;
}

Bytes encode_u64(std::uint64_t v) {
  ByteWriter w;
  w.u64(v);
  return w.take();
}

std::uint64_t decode_u64(const Bytes* bytes) {
  if (bytes == nullptr) return 0;
  ByteReader r(*bytes);
  auto v = r.u64();
  return v.ok() ? v.value() : 0;
}

/// Read-modify-write of a u64 counter in the contract's own store.
void bump_counter(CallContext& ctx, const char* key, std::uint64_t delta) {
  ctx.put(key, encode_u64(decode_u64(ctx.get(key)) + delta));
}

}  // namespace

std::uint32_t shard_of(crypto::Address addr, std::size_t num_shards) {
  if (num_shards <= 1) return 0;
  return static_cast<std::uint32_t>(mix64(addr.value) % num_shards);
}

std::vector<LedgerState> partition_genesis(const LedgerState& genesis,
                                           std::size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  std::vector<LedgerState> out(num_shards);
  for (const auto& [addr, balance] : genesis.balances()) {
    out[shard_of(addr, num_shards)].set_balance(addr, balance);
  }
  for (const auto& [addr, nonce] : genesis.nonces()) {
    if (nonce != 0) out[shard_of(addr, num_shards)].set_nonce(addr, nonce);
  }
  // Non-account sections have no per-account home; they stay on shard 0.
  // A normal genesis carries none of them.
  for (const auto& record : genesis.audit_log()) out[0].append_audit(record);
  for (const auto& [contract, store] : genesis.stores()) {
    out[0].materialize_store(contract);
    for (const auto& [key, value] : store) out[0].store_put(contract, key, value);
  }
  out[0].add_burned_fees(genesis.burned_fees());
  return out;
}

// ---------------------------------------------------------------- codecs

Bytes CrossShardReceipt::encode() const {
  ByteWriter w;
  w.str(kReceiptMagic);
  w.u64(id);
  w.u32(source_shard);
  w.u32(dest_shard);
  w.u64(from.value);
  w.u64(to.value);
  w.u64(amount);
  return w.take();
}

Result<CrossShardReceipt> CrossShardReceipt::decode(const Bytes& bytes) {
  ByteReader r(bytes);
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != kReceiptMagic) {
    return make_error(errc::kXShardBadArgs, "bad receipt magic");
  }
  CrossShardReceipt rec;
  auto id = r.u64();
  if (!id.ok()) return id.error();
  rec.id = id.value();
  auto source = r.u32();
  if (!source.ok()) return source.error();
  rec.source_shard = source.value();
  auto dest = r.u32();
  if (!dest.ok()) return dest.error();
  rec.dest_shard = dest.value();
  auto from = r.u64();
  if (!from.ok()) return from.error();
  rec.from.value = from.value();
  auto to = r.u64();
  if (!to.ok()) return to.error();
  rec.to.value = to.value();
  auto amount = r.u64();
  if (!amount.ok()) return amount.error();
  rec.amount = amount.value();
  if (!r.exhausted()) {
    return make_error(errc::kXShardBadArgs, "trailing bytes after receipt");
  }
  if (rec.source_shard == rec.dest_shard || !rec.to.valid() || rec.amount == 0) {
    return make_error(errc::kXShardBadArgs, "receipt fields out of range");
  }
  return rec;
}

Bytes XShardLockArgs::encode() const {
  ByteWriter w;
  w.u32(dest_shard);
  w.u64(to.value);
  w.u64(amount);
  return w.take();
}

Result<XShardLockArgs> XShardLockArgs::decode(const Bytes& bytes) {
  ByteReader r(bytes);
  XShardLockArgs a;
  auto dest = r.u32();
  if (!dest.ok()) return dest.error();
  a.dest_shard = dest.value();
  auto to = r.u64();
  if (!to.ok()) return to.error();
  a.to.value = to.value();
  auto amount = r.u64();
  if (!amount.ok()) return amount.error();
  a.amount = amount.value();
  if (!r.exhausted()) {
    return make_error(errc::kXShardBadArgs, "trailing bytes after lock args");
  }
  return a;
}

Bytes XShardMintArgs::encode() const {
  ByteWriter w;
  w.i64(beacon_height);
  w.u32(source_shard);
  w.bytes(receipt);
  w.bytes(proof);
  return w.take();
}

Result<XShardMintArgs> XShardMintArgs::decode(const Bytes& bytes) {
  ByteReader r(bytes);
  XShardMintArgs a;
  auto height = r.i64();
  if (!height.ok()) return height.error();
  a.beacon_height = height.value();
  auto source = r.u32();
  if (!source.ok()) return source.error();
  a.source_shard = source.value();
  auto receipt = r.bytes();
  if (!receipt.ok()) return receipt.error();
  a.receipt = std::move(receipt).value();
  auto proof = r.bytes();
  if (!proof.ok()) return proof.error();
  a.proof = std::move(proof).value();
  if (!r.exhausted()) {
    return make_error(errc::kXShardBadArgs, "trailing bytes after mint args");
  }
  return a;
}

std::string xshard_receipt_key(std::uint64_t id) {
  return "receipt/" + hex_u64(id);
}

std::string xshard_spent_key(std::uint32_t source_shard, std::uint64_t id) {
  return "spent/" + hex_u64(source_shard) + "/" + hex_u64(id);
}

// ---------------------------------------------------------- XShardContract

Status XShardContract::call(CallContext& ctx, const std::string& method,
                            const Bytes& args) const {
  if (method == "lock") return lock(ctx, args);
  if (method == "mint") return mint(ctx, args);
  return Status::fail(errc::kXShardUnknownMethod, method);
}

Status XShardContract::lock(CallContext& ctx, const Bytes& raw) const {
  auto args = XShardLockArgs::decode(raw);
  if (!args.ok()) return Status::fail(args.error().code, args.error().message);
  const XShardLockArgs& a = args.value();
  if (a.dest_shard >= num_shards_ || a.dest_shard == shard_id_) {
    return Status::fail(errc::kXShardBadDest,
                        "dest shard " + std::to_string(a.dest_shard));
  }
  if (!a.to.valid() || a.amount == 0) {
    return Status::fail(errc::kXShardBadArgs, "null recipient or zero amount");
  }
  // Burn first: an uncovered amount rejects the lock before any store write
  // (the nested call overlay would discard them anyway; failing early keeps
  // the error authoritative).
  if (Status s = ctx.burn(ctx.caller(), a.amount); !s.ok()) return s;
  const std::uint64_t id = decode_u64(ctx.get(kXShardNextIdKey));
  const CrossShardReceipt receipt{id,          shard_id_, a.dest_shard,
                                  ctx.caller(), a.to,      a.amount};
  ctx.put(xshard_receipt_key(id), receipt.encode());
  ctx.put(kXShardNextIdKey, encode_u64(id + 1));
  bump_counter(ctx, kXShardLockedTotalKey, a.amount);
  return {};
}

Status XShardContract::mint(CallContext& ctx, const Bytes& raw) const {
  auto args = XShardMintArgs::decode(raw);
  if (!args.ok()) return Status::fail(args.error().code, args.error().message);
  const XShardMintArgs& a = args.value();
  auto receipt = CrossShardReceipt::decode(a.receipt);
  if (!receipt.ok()) {
    return Status::fail(receipt.error().code, receipt.error().message);
  }
  const CrossShardReceipt& rec = receipt.value();
  if (rec.source_shard != a.source_shard) {
    return Status::fail(errc::kXShardBadArgs, "claimed source shard mismatch");
  }
  if (rec.dest_shard != shard_id_) {
    return Status::fail(errc::kXShardWrongShard,
                        "receipt destined for shard " +
                            std::to_string(rec.dest_shard));
  }
  if (rec.source_shard >= num_shards_) {
    return Status::fail(errc::kXShardBadDest, "source shard out of range");
  }
  const auto anchor = archive_->anchor(a.beacon_height, rec.source_shard);
  if (!anchor.has_value()) {
    return Status::fail(errc::kXShardUnknownBeacon,
                        "no anchor at beacon height " +
                            std::to_string(a.beacon_height));
  }
  auto proof = crypto::MerkleMapProof::decode(a.proof);
  if (!proof.ok()) return Status::fail(proof.error().code, proof.error().message);
  // The proof binds the exact receipt wire bytes (their sha256 is the leaf
  // value) to the receipt id under the source shard's beacon-anchored
  // receipts root. A receipt proven against a stale root (the tree grew and
  // the presented proof's path digests no longer match) or against another
  // shard's root fails here.
  if (!crypto::MerkleMap::verify(anchor->receipts_root, rec.id,
                                 crypto::sha256(a.receipt), proof.value())) {
    return Status::fail(errc::kXShardBadProof,
                        "receipt proof does not verify against anchored root");
  }
  const std::string spent = xshard_spent_key(rec.source_shard, rec.id);
  if (ctx.get(spent) != nullptr) {
    return Status::fail(errc::kXShardReceiptSpent,
                        "receipt already minted on this shard");
  }
  ctx.mint(rec.to, rec.amount);
  // The spent marker stores the minted amount so the invariant checker can
  // reconstruct per-source minted sums without decoding receipts.
  ctx.put(spent, encode_u64(rec.amount));
  bump_counter(ctx, kXShardMintedTotalKey, rec.amount);
  return {};
}

// ------------------------------------------------------- composed proofs

Status verify_sharded_account_proof(const ShardedAccountProof& proof,
                                    const crypto::Digest& beacon_root) {
  if (!verify_shard_anchor(beacon_root, proof.shard, proof.anchor,
                           proof.anchor_proof)) {
    return Status::fail(errc::kXShardBadProof,
                        "shard anchor does not verify against beacon root");
  }
  return verify_account_proof(proof.account, proof.anchor.state_root);
}

// ----------------------------------------------------------- ShardedLedger

ShardedLedger::ShardedLedger(
    ShardConfig config, const LedgerState& genesis,
    std::vector<std::shared_ptr<const Contract>> extra_contracts)
    : config_(std::move(config)), archive_(std::make_shared<BeaconArchive>()) {
  if (config_.num_shards == 0) config_.num_shards = 1;
  auto genesis_states = partition_genesis(genesis, config_.num_shards);
  shards_.resize(config_.num_shards);

  ByteWriter genesis_tag;
  genesis_tag.str("mv.beacon.genesis.v1");
  for (std::uint32_t s = 0; s < config_.num_shards; ++s) {
    Shard& sh = shards_[s];

    auto registry = std::make_shared<ContractRegistry>();
    for (const auto& contract : extra_contracts) registry->install(contract);
    registry->install(std::make_shared<XShardContract>(
        s, static_cast<std::uint32_t>(config_.num_shards), archive_));

    ChainConfig chain_config;
    chain_config.validators = config_.validators;
    chain_config.max_txs_per_block = config_.max_txs_per_block;
    chain_config.state_retention = config_.state_retention;
    chain_config.validation = config_.validation;
    // The shared queue drives the cross-shard fan-out; a shard's own
    // apply_block must not re-enter it from a worker (self-wait deadlock).
    chain_config.validation.job_queue = nullptr;
    if (config_.validation.sig_cache != nullptr) {
      // The LRU is single-threaded; shards committing concurrently each get
      // their own instance instead of racing on the shared one.
      sh.sig_cache = std::make_shared<crypto::DigestLruSet>();
      chain_config.validation.sig_cache = sh.sig_cache;
    }

    sh.chain = std::make_unique<Blockchain>(std::move(chain_config), registry,
                                            std::move(genesis_states[s]));
    MempoolConfig pool_config = config_.mempool;
    pool_config.sig_cache = sh.sig_cache;
    sh.pool = Mempool(pool_config);

    genesis_tag.raw(sh.chain->genesis_hash());
  }
  beacon_genesis_hash_ = crypto::sha256(genesis_tag.data());
}

const BeaconHeader* ShardedLedger::beacon_at(std::int64_t height) const {
  if (height < 0 || height >= static_cast<std::int64_t>(beacons_.size())) {
    return nullptr;
  }
  return &beacons_[static_cast<std::size_t>(height)];
}

Status ShardedLedger::submit(Transaction tx, Tick now) {
  Shard& sh = shards_[shard_of(tx.sender(), shards_.size())];
  return sh.pool.add(std::move(tx), sh.chain->state(), now);
}

void ShardedLedger::refresh_receipts(Shard& shard) {
  const LedgerState& state = shard.chain->state();
  const std::uint64_t next =
      decode_u64(state.store_get(kXShardContractName, kXShardNextIdKey));
  for (std::uint64_t id = shard.receipts_indexed; id < next; ++id) {
    const Bytes* bytes =
        state.store_get(kXShardContractName, xshard_receipt_key(id));
    // Ids are dense by construction (the contract is the only writer); a
    // hole would mean store corruption, which the commitment already pins.
    if (bytes != nullptr) shard.receipts.put(id, crypto::sha256(*bytes));
  }
  shard.receipts_indexed = next;
}

Result<BeaconHeader> ShardedLedger::commit_round(const crypto::Wallet& proposer,
                                                 Tick timestamp) {
  const std::int64_t round = beacon_height();
  std::vector<Status> results(shards_.size());

  const auto commit_shard = [&](std::size_t s) {
    Shard& sh = shards_[s];
    const auto selected =
        sh.pool.select(config_.max_txs_per_block, sh.chain->state());
    // Deterministic per-(round, shard) signing stream: block hashes are
    // reproducible across runs, thread counts, and shard interleavings.
    Rng rng(config_.seed ^
            (kRoundSalt * (static_cast<std::uint64_t>(round) + 1)) ^
            (kShardSalt * (static_cast<std::uint64_t>(s) + 1)));
    const Block block = sh.chain->assemble(proposer, selected, timestamp, rng);
    if (Status s_append = sh.chain->append(block); !s_append.ok()) {
      results[s] = std::move(s_append);
      return;
    }
    sh.pool.remove_included(block.txs);
    sh.pool.prune(sh.chain->state());
  };

  // Shards validate concurrently on the shared queue's consensus lane; each
  // task touches only its own shard, and run_batch is a barrier, so the
  // driver-side beacon fold below sees every shard's committed tip.
  JobQueue* queue = config_.validation.job_queue.get();
  if (queue != nullptr && queue->workers() > 0) {
    queue->run_batch(JobClass::kConsensus, shards_.size(), commit_shard);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) commit_shard(s);
  }

  for (std::size_t s = 0; s < results.size(); ++s) {
    if (!results[s].ok()) {
      return make_error(errc::kShardRoundFailed,
                        "shard " + std::to_string(s) + " round " +
                            std::to_string(round) + ": " +
                            results[s].error().to_string());
    }
  }

  BeaconHeader header;
  header.height = round;
  header.prev_hash =
      beacons_.empty() ? beacon_genesis_hash_ : beacons_.back().hash();
  header.timestamp = timestamp;
  header.shards.reserve(shards_.size());
  for (Shard& sh : shards_) {
    refresh_receipts(sh);
    ShardAnchor anchor;
    anchor.state_root = sh.chain->commitment_at(sh.chain->height() - 1)->root;
    anchor.receipts_root = sh.receipts.root();
    header.shards.push_back(anchor);
  }
  header.beacon_root = combine_beacon_root(header.shards);
  header.proposer_pub = proposer.public_key();
  Rng sig_rng(config_.seed ^
              (kBeaconSalt * (static_cast<std::uint64_t>(round) + 1)));
  header.proposer_sig = proposer.sign(header.signing_bytes(), sig_rng);

  archive_->push(header);
  beacons_.push_back(header);
  return header;
}

Result<ReceiptProofBundle> ShardedLedger::prove_receipt(
    std::uint32_t source_shard, std::uint64_t id) const {
  if (source_shard >= shards_.size()) {
    return make_error(errc::kShardBadConfig, "source shard out of range");
  }
  if (beacons_.empty()) {
    return make_error(errc::kShardUnknownReceipt, "no beacon committed yet");
  }
  const Shard& sh = shards_[source_shard];
  if (id >= sh.receipts_indexed) {
    return make_error(errc::kShardUnknownReceipt,
                      "receipt " + std::to_string(id) +
                          " not covered by a beacon yet");
  }
  const Bytes* bytes =
      sh.chain->state().store_get(kXShardContractName, xshard_receipt_key(id));
  if (bytes == nullptr) {
    return make_error(errc::kShardUnknownReceipt, "receipt bytes missing");
  }
  ReceiptProofBundle bundle;
  bundle.beacon_height = beacon_height() - 1;
  bundle.source_shard = source_shard;
  bundle.receipt = *bytes;
  bundle.proof = sh.receipts.prove(id);
  return bundle;
}

Result<ShardedAccountProof> ShardedLedger::prove_account(
    crypto::Address addr) const {
  if (beacons_.empty()) {
    return make_error(errc::kChainBadHeight, "no beacon committed yet");
  }
  const std::uint32_t s = shard_of(addr, shards_.size());
  const Blockchain& chain = *shards_[s].chain;
  auto account = chain.prove_account(addr, chain.height() - 1);
  if (!account.ok()) return account.error();
  ShardedAccountProof proof;
  proof.shard = s;
  proof.beacon_height = beacon_height() - 1;
  proof.anchor = beacons_.back().shards[s];
  proof.anchor_proof = prove_shard_anchor(beacons_.back().shards, s);
  proof.account = std::move(account).value();
  return proof;
}

// ------------------------------------------------------------- tx helpers

Transaction make_xshard_lock(const crypto::Wallet& from, std::uint64_t nonce,
                             std::uint32_t dest_shard, crypto::Address to,
                             std::uint64_t amount, std::uint64_t fee, Rng& rng) {
  return make_contract_call(from, nonce, kXShardContractName, "lock",
                            XShardLockArgs{dest_shard, to, amount}.encode(),
                            fee, rng);
}

Transaction make_xshard_mint(const crypto::Wallet& from, std::uint64_t nonce,
                             const ReceiptProofBundle& bundle,
                             std::uint64_t fee, Rng& rng) {
  XShardMintArgs args;
  args.beacon_height = bundle.beacon_height;
  args.source_shard = bundle.source_shard;
  args.receipt = bundle.receipt;
  args.proof = bundle.proof.encode();
  return make_contract_call(from, nonce, kXShardContractName, "mint",
                            args.encode(), fee, rng);
}

}  // namespace mv::ledger
