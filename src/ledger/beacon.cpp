#include "ledger/beacon.h"

#include <algorithm>
#include <mutex>
#include <string_view>
#include <utility>

namespace mv::ledger {

namespace {

/// Domain tag for anchor leaf digests; part of the beacon wire format.
constexpr std::string_view kAnchorDomain = "mv.shard.anchor.v1";
/// Sanity bound on the shard count a decoded beacon may claim — far above
/// any deployment, low enough that a forged count cannot drive allocation.
constexpr std::uint32_t kMaxShards = 1u << 16;

crypto::Digest digest_from(const Bytes& raw) {
  crypto::Digest d{};
  std::copy(raw.begin(), raw.end(), d.begin());
  return d;
}

}  // namespace

crypto::Digest shard_anchor_digest(const ShardAnchor& anchor) {
  ByteWriter w;
  w.str(kAnchorDomain);
  w.raw(anchor.state_root);
  w.raw(anchor.receipts_root);
  return crypto::sha256(w.data());
}

crypto::Digest combine_beacon_root(const std::vector<ShardAnchor>& anchors) {
  crypto::MerkleMap map;
  for (std::uint32_t i = 0; i < anchors.size(); ++i) {
    map.put(i, shard_anchor_digest(anchors[i]));
  }
  return map.root();
}

crypto::MerkleMapProof prove_shard_anchor(
    const std::vector<ShardAnchor>& anchors, std::uint32_t index) {
  crypto::MerkleMap map;
  for (std::uint32_t i = 0; i < anchors.size(); ++i) {
    map.put(i, shard_anchor_digest(anchors[i]));
  }
  return map.prove(index);
}

bool verify_shard_anchor(const crypto::Digest& beacon_root, std::uint32_t index,
                         const ShardAnchor& anchor,
                         const crypto::MerkleMapProof& proof) {
  return crypto::MerkleMap::verify(beacon_root, index,
                                   shard_anchor_digest(anchor), proof);
}

Bytes BeaconHeader::signing_bytes() const {
  ByteWriter w;
  w.i64(height);
  w.raw(prev_hash);
  w.i64(timestamp);
  w.u32(static_cast<std::uint32_t>(shards.size()));
  for (const ShardAnchor& a : shards) {
    w.raw(a.state_root);
    w.raw(a.receipts_root);
  }
  // The derived root is signed too: a proposer attests to the combination,
  // not just the inputs, so a verifier holding only (root, signature) is
  // covered without re-deriving.
  w.raw(combine_beacon_root(shards));
  return w.take();
}

Bytes BeaconHeader::encode() const {
  ByteWriter w;
  w.raw(signing_bytes());
  w.u64(proposer_pub.y);
  w.u64(proposer_sig.e);
  w.u64(proposer_sig.s);
  return w.take();
}

Result<BeaconHeader> BeaconHeader::decode(const Bytes& bytes) {
  ByteReader r(bytes);
  BeaconHeader h;
  auto height = r.i64();
  if (!height.ok()) return height.error();
  h.height = height.value();
  auto prev = r.raw(32);
  if (!prev.ok()) return prev.error();
  h.prev_hash = digest_from(prev.value());
  auto ts = r.i64();
  if (!ts.ok()) return ts.error();
  h.timestamp = ts.value();
  auto count = r.u32();
  if (!count.ok()) return count.error();
  if (count.value() == 0 || count.value() > kMaxShards ||
      static_cast<std::size_t>(count.value()) * 64 > r.remaining()) {
    return make_error(errc::kBeaconBadCount, "shard count out of range");
  }
  h.shards.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    ShardAnchor a;
    auto state = r.raw(32);
    if (!state.ok()) return state.error();
    a.state_root = digest_from(state.value());
    auto receipts = r.raw(32);
    if (!receipts.ok()) return receipts.error();
    a.receipts_root = digest_from(receipts.value());
    h.shards.push_back(a);
  }
  auto root = r.raw(32);
  if (!root.ok()) return root.error();
  // The root is derived state: recompute it and refuse a stream whose
  // claimed root disagrees — no semantically inert bytes.
  h.beacon_root = combine_beacon_root(h.shards);
  if (digest_from(root.value()) != h.beacon_root) {
    return make_error(errc::kBeaconBadRoot, "beacon root does not recombine");
  }
  auto pub = r.u64();
  if (!pub.ok()) return pub.error();
  h.proposer_pub.y = pub.value();
  auto e = r.u64();
  if (!e.ok()) return e.error();
  auto s = r.u64();
  if (!s.ok()) return s.error();
  h.proposer_sig = crypto::Signature{e.value(), s.value()};
  if (!r.exhausted()) {
    return make_error(errc::kBeaconTrailing, "trailing bytes after header");
  }
  return h;
}

crypto::Digest BeaconHeader::hash() const { return crypto::sha256(encode()); }

void BeaconArchive::push(BeaconHeader header) {
  std::unique_lock lock(mu_);
  header.beacon_root = combine_beacon_root(header.shards);
  headers_.push_back(std::move(header));
}

std::int64_t BeaconArchive::size() const {
  std::shared_lock lock(mu_);
  return static_cast<std::int64_t>(headers_.size());
}

std::optional<ShardAnchor> BeaconArchive::anchor(std::int64_t height,
                                                 std::uint32_t shard) const {
  std::shared_lock lock(mu_);
  if (height < 0 || height >= static_cast<std::int64_t>(headers_.size())) {
    return std::nullopt;
  }
  const auto& shards = headers_[static_cast<std::size_t>(height)].shards;
  if (shard >= shards.size()) return std::nullopt;
  return shards[shard];
}

std::optional<BeaconHeader> BeaconArchive::header_at(std::int64_t height) const {
  std::shared_lock lock(mu_);
  if (height < 0 || height >= static_cast<std::int64_t>(headers_.size())) {
    return std::nullopt;
  }
  return headers_[static_cast<std::size_t>(height)];
}

crypto::Digest BeaconArchive::tip_hash() const {
  std::shared_lock lock(mu_);
  return headers_.empty() ? crypto::Digest{} : headers_.back().hash();
}

}  // namespace mv::ledger
