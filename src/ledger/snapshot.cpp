#include "ledger/snapshot.h"

#include <algorithm>

namespace mv::ledger {

namespace {

constexpr std::string_view kPayloadTag = "mv.snapshot.v1";
constexpr std::uint8_t kManifestVersion = 1;

// Per-entry minimum wire sizes, used to reject counts that could not
// possibly fit in the remaining buffer before allocating for them.
constexpr std::size_t kMinAccountEntry = 8 + 1 + 8;   // addr + flags + nonce
constexpr std::size_t kMinAuditEntry = 8 + 4 + 8;     // collector + body len + height
constexpr std::size_t kMinContractEntry = 4 + 8;      // name len + entry count
constexpr std::size_t kMinStoreEntry = 4 + 4;         // key len + value len

// Full-width on purpose: truncating this to uint32_t would let a huge
// total_bytes alias a small chunk count (2^34 + n truncates to n) and slip
// through the geometry check into an attacker-sized allocation.
std::uint64_t chunk_count_for(std::uint64_t total_bytes, std::uint32_t chunk_size) {
  return (total_bytes + chunk_size - 1) / chunk_size;
}

// The contiguous byte stream snapshot_chunk_digest's HashWriter hashes
// (tagged prefix, index, length-prefixed data), materialized so pairs of
// chunks can run through crypto::sha256_pair in interleaved SHA lanes.
// Equal-length messages (every chunk but the last) interleave end to end.
void chunk_digest_preimage(std::uint32_t index,
                           std::span<const std::uint8_t> data, Bytes& out) {
  constexpr std::string_view kTag = "mv.snapshot.chunk";
  out.clear();
  out.reserve(4 + kTag.size() + 8 + data.size());
  const auto u32le = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  u32le(static_cast<std::uint32_t>(kTag.size()));
  out.insert(out.end(), kTag.begin(), kTag.end());
  u32le(index);
  u32le(static_cast<std::uint32_t>(data.size()));
  out.insert(out.end(), data.begin(), data.end());
}

// Digest every chunk, two at a time through crypto::sha256_pair. All chunks
// but the last are exactly chunk_size bytes, so the two lanes stay in
// lockstep for the whole message and the pairing is maximally effective.
// Digests are bit-identical to per-chunk snapshot_chunk_digest().
std::vector<crypto::Digest> digest_chunks(const std::vector<Bytes>& chunks) {
  std::vector<crypto::Digest> digests(chunks.size());
  Bytes pre_a;
  Bytes pre_b;
  std::size_t i = 0;
  for (; i + 1 < chunks.size(); i += 2) {
    chunk_digest_preimage(static_cast<std::uint32_t>(i), chunks[i], pre_a);
    chunk_digest_preimage(static_cast<std::uint32_t>(i + 1), chunks[i + 1],
                          pre_b);
    crypto::sha256_pair(pre_a, pre_b, digests[i], digests[i + 1]);
  }
  if (i < chunks.size()) {
    digests[i] = snapshot_chunk_digest(static_cast<std::uint32_t>(i), chunks[i]);
  }
  return digests;
}

}  // namespace

crypto::Digest snapshot_chunk_digest(std::uint32_t index,
                                     std::span<const std::uint8_t> data) {
  crypto::HashWriter w;
  w.str("mv.snapshot.chunk");
  w.u32(index);
  w.bytes(data);
  return w.digest();
}

crypto::Digest SnapshotManifest::chunk_root() const {
  return crypto::MerkleTree(chunk_digests).root();
}

Bytes SnapshotManifest::encode() const {
  ByteWriter w;
  w.u8(kManifestVersion);
  w.i64(height);
  w.raw(commitment.accounts_root);
  w.u64(commitment.account_count);
  w.raw(commitment.audit_digest);
  w.u64(commitment.audit_count);
  w.raw(commitment.stores_digest);
  w.u64(commitment.burned_fees);
  w.u32(chunk_size);
  w.u64(total_bytes);
  w.u32(chunk_count());
  for (const auto& d : chunk_digests) w.raw(d);
  return w.take();
}

Result<SnapshotManifest> SnapshotManifest::decode(const Bytes& bytes) {
  ByteReader r(bytes);
  const auto version = r.u8();
  if (!version.ok()) return version.error();
  if (version.value() != kManifestVersion) {
    return make_error("snapshot.bad_version", "unknown manifest version");
  }
  SnapshotManifest m;
  const auto height = r.i64();
  if (!height.ok()) return height.error();
  m.height = height.value();
  if (m.height < 0) return make_error("snapshot.bad_height", "negative height");
  auto read_digest = [&r](crypto::Digest& out) -> Status {
    auto raw = r.raw(out.size());
    if (!raw.ok()) return Status::fail(raw.error().code, raw.error().message);
    std::copy(raw.value().begin(), raw.value().end(), out.begin());
    return {};
  };
  if (auto s = read_digest(m.commitment.accounts_root); !s.ok()) return s.error();
  const auto account_count = r.u64();
  if (!account_count.ok()) return account_count.error();
  m.commitment.account_count = account_count.value();
  if (auto s = read_digest(m.commitment.audit_digest); !s.ok()) return s.error();
  const auto audit_count = r.u64();
  if (!audit_count.ok()) return audit_count.error();
  m.commitment.audit_count = audit_count.value();
  if (auto s = read_digest(m.commitment.stores_digest); !s.ok()) return s.error();
  const auto burned = r.u64();
  if (!burned.ok()) return burned.error();
  m.commitment.burned_fees = burned.value();
  // The root is recombined, never transported: a manifest whose sections
  // disagree with its root cannot exist by construction.
  m.commitment.root = combine_commitment_root(m.commitment);

  const auto chunk_size = r.u32();
  if (!chunk_size.ok()) return chunk_size.error();
  m.chunk_size = chunk_size.value();
  const auto total = r.u64();
  if (!total.ok()) return total.error();
  m.total_bytes = total.value();
  const auto count = r.u32();
  if (!count.ok()) return count.error();
  if (m.chunk_size == 0 || m.total_bytes == 0 ||
      count.value() != chunk_count_for(m.total_bytes, m.chunk_size)) {
    return make_error("snapshot.bad_geometry",
                      "chunk count inconsistent with total_bytes/chunk_size");
  }
  if (count.value() > r.remaining() / crypto::Digest{}.size()) {
    return make_error("snapshot.bad_geometry", "chunk count exceeds payload");
  }
  m.chunk_digests.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    crypto::Digest d;
    if (auto s = read_digest(d); !s.ok()) return s.error();
    m.chunk_digests.push_back(d);
  }
  if (!r.exhausted()) {
    return make_error("snapshot.trailing_bytes", "manifest has trailing bytes");
  }
  return m;
}

Bytes encode_snapshot_payload(const LedgerState& state) {
  ByteWriter w;
  w.str(kPayloadTag);

  // Accounts, in strictly ascending address order. Only leaf-bearing entries
  // are emitted (a balance entry, or a nonzero nonce) — exactly the set the
  // accounts commitment covers — so encoding is canonical even when the raw
  // maps hold commitment-inert zero-nonce entries.
  struct AccountEntry {
    std::uint64_t addr;
    bool has_balance;
    std::uint64_t balance;
    std::uint64_t nonce;
  };
  std::vector<AccountEntry> entries;
  entries.reserve(state.balances().size() + state.nonces().size());
  auto bit = state.balances().begin();
  auto nit = state.nonces().begin();
  const auto bend = state.balances().end();
  const auto nend = state.nonces().end();
  while (bit != bend || nit != nend) {
    AccountEntry e{0, false, 0, 0};
    if (nit == nend || (bit != bend && bit->first < nit->first)) {
      e = {bit->first.value, true, bit->second, 0};
      ++bit;
    } else if (bit == bend || nit->first < bit->first) {
      e = {nit->first.value, false, 0, nit->second};
      ++nit;
    } else {
      e = {bit->first.value, true, bit->second, nit->second};
      ++bit;
      ++nit;
    }
    if (e.has_balance || e.nonce != 0) entries.push_back(e);
  }
  w.u64(entries.size());
  for (const auto& e : entries) {
    w.u64(e.addr);
    w.u8(e.has_balance ? 1 : 0);
    if (e.has_balance) w.u64(e.balance);
    w.u64(e.nonce);
  }

  // Audit log, oldest first (the order the chain hash folds in).
  w.u64(state.audit_log().size());
  for (const auto& rec : state.audit_log()) {
    w.u64(rec.collector.value);
    w.bytes(rec.body.encode());
    w.i64(rec.height);
  }

  // Contract stores, ascending by name then key. Empty stores are emitted:
  // store_erase materializes them and the stores commitment covers the
  // contract count and names.
  w.u32(static_cast<std::uint32_t>(state.stores().size()));
  for (const auto& [name, store] : state.stores()) {
    w.str(name);
    w.u64(store.size());
    for (const auto& [key, value] : store) {
      w.str(key);
      w.bytes(value);
    }
  }

  w.u64(state.burned_fees());
  return w.take();
}

Result<LedgerState> decode_snapshot_payload(const Bytes& bytes) {
  ByteReader r(bytes);
  const auto tag = r.str();
  if (!tag.ok()) return tag.error();
  if (tag.value() != kPayloadTag) {
    return make_error("snapshot.bad_tag", "unknown snapshot format");
  }
  LedgerState state;

  const auto account_count = r.u64();
  if (!account_count.ok()) return account_count.error();
  if (account_count.value() > r.remaining() / kMinAccountEntry) {
    return make_error("snapshot.bad_count", "account count exceeds payload");
  }
  std::uint64_t prev_addr = 0;
  // Entries are validated into a sorted seed list and bulk-loaded in one
  // pass (LedgerState::load_accounts) — per-entry set_balance/set_nonce
  // round trips through the Merkle tree made install O(state)-rehash-bound.
  std::vector<AccountSeed> seeds;
  seeds.reserve(std::min<std::uint64_t>(account_count.value(), 1u << 20));
  for (std::uint64_t i = 0; i < account_count.value(); ++i) {
    const auto addr = r.u64();
    if (!addr.ok()) return addr.error();
    if (i != 0 && addr.value() <= prev_addr) {
      return make_error("snapshot.bad_order", "account addresses not ascending");
    }
    prev_addr = addr.value();
    const auto flags = r.u8();
    if (!flags.ok()) return flags.error();
    if (flags.value() > 1) {
      return make_error("snapshot.bad_flags", "account flags not in {0,1}");
    }
    const bool has_balance = flags.value() == 1;
    std::uint64_t balance = 0;
    if (has_balance) {
      const auto bal = r.u64();
      if (!bal.ok()) return bal.error();
      balance = bal.value();
    }
    const auto nonce = r.u64();
    if (!nonce.ok()) return nonce.error();
    if (!has_balance && nonce.value() == 0) {
      // A leafless entry would be semantically inert — not canonical.
      return make_error("snapshot.bad_entry", "entry carries no account leaf");
    }
    seeds.push_back(AccountSeed{
        crypto::Address{addr.value()},
        has_balance ? std::optional(balance) : std::nullopt, nonce.value()});
  }
  state.load_accounts(seeds);

  const auto audit_count = r.u64();
  if (!audit_count.ok()) return audit_count.error();
  if (audit_count.value() > r.remaining() / kMinAuditEntry) {
    return make_error("snapshot.bad_count", "audit count exceeds payload");
  }
  for (std::uint64_t i = 0; i < audit_count.value(); ++i) {
    const auto collector = r.u64();
    if (!collector.ok()) return collector.error();
    const auto body_bytes = r.bytes();
    if (!body_bytes.ok()) return body_bytes.error();
    auto body = AuditRecordBody::decode(body_bytes.value());
    if (!body.ok()) return body.error();
    // AuditRecordBody::decode tolerates trailing bytes (it reads embedded
    // framings elsewhere); the snapshot's framing is strict, so require the
    // canonical re-encoding to reproduce the wire bytes exactly.
    if (body.value().encode() != body_bytes.value()) {
      return make_error("snapshot.bad_entry", "audit body not canonical");
    }
    const auto height = r.i64();
    if (!height.ok()) return height.error();
    state.append_audit(StoredAuditRecord{crypto::Address{collector.value()},
                                         std::move(body).value(),
                                         height.value()});
  }

  const auto contract_count = r.u32();
  if (!contract_count.ok()) return contract_count.error();
  if (contract_count.value() > r.remaining() / kMinContractEntry) {
    return make_error("snapshot.bad_count", "contract count exceeds payload");
  }
  std::string prev_name;
  for (std::uint32_t i = 0; i < contract_count.value(); ++i) {
    const auto name = r.str();
    if (!name.ok()) return name.error();
    if (i != 0 && name.value() <= prev_name) {
      return make_error("snapshot.bad_order", "contract names not ascending");
    }
    prev_name = name.value();
    state.materialize_store(name.value());
    const auto entry_count = r.u64();
    if (!entry_count.ok()) return entry_count.error();
    if (entry_count.value() > r.remaining() / kMinStoreEntry) {
      return make_error("snapshot.bad_count", "store entry count exceeds payload");
    }
    std::string prev_key;
    for (std::uint64_t k = 0; k < entry_count.value(); ++k) {
      const auto key = r.str();
      if (!key.ok()) return key.error();
      if (k != 0 && key.value() <= prev_key) {
        return make_error("snapshot.bad_order", "store keys not ascending");
      }
      prev_key = key.value();
      auto value = r.bytes();
      if (!value.ok()) return value.error();
      state.store_put(name.value(), key.value(), std::move(value).value());
    }
  }

  const auto burned = r.u64();
  if (!burned.ok()) return burned.error();
  state.add_burned_fees(burned.value());

  if (!r.exhausted()) {
    return make_error("snapshot.trailing_bytes", "payload has trailing bytes");
  }
  return state;
}

Snapshot build_snapshot(const LedgerState& state, std::int64_t height,
                        std::size_t chunk_size) {
  return build_snapshot(state, height, state.commitment(), chunk_size);
}

Snapshot build_snapshot(const LedgerState& state, std::int64_t height,
                        const StateCommitment& commitment,
                        std::size_t chunk_size) {
  Snapshot snap;
  const Bytes payload = encode_snapshot_payload(state);
  snap.manifest.height = height;
  snap.manifest.commitment = commitment;
  snap.manifest.chunk_size = static_cast<std::uint32_t>(chunk_size);
  snap.manifest.total_bytes = payload.size();
  const auto count = static_cast<std::uint32_t>(
      chunk_count_for(payload.size(), snap.manifest.chunk_size));
  snap.chunks.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t begin = static_cast<std::size_t>(i) * chunk_size;
    const std::size_t end = std::min(begin + chunk_size, payload.size());
    snap.chunks.emplace_back(payload.begin() + static_cast<std::ptrdiff_t>(begin),
                             payload.begin() + static_cast<std::ptrdiff_t>(end));
  }
  snap.manifest.chunk_digests = digest_chunks(snap.chunks);
  return snap;
}

Result<LedgerState> assemble_snapshot(const SnapshotManifest& manifest,
                                      const std::vector<Bytes>& chunks) {
  // Re-check the geometry even though a decoded manifest already passed it —
  // manifests can also be built programmatically.
  if (manifest.chunk_size == 0 || manifest.total_bytes == 0 ||
      manifest.chunk_count() !=
          chunk_count_for(manifest.total_bytes, manifest.chunk_size)) {
    return make_error("snapshot.bad_geometry",
                      "chunk count inconsistent with total_bytes/chunk_size");
  }
  if (chunks.size() != manifest.chunk_count()) {
    return make_error("snapshot.bad_chunk_count",
                      "expected " + std::to_string(manifest.chunk_count()) +
                          " chunks, got " + std::to_string(chunks.size()));
  }
  for (std::uint32_t i = 0; i < chunks.size(); ++i) {
    const std::size_t expected =
        i + 1 < chunks.size()
            ? manifest.chunk_size
            : static_cast<std::size_t>(manifest.total_bytes -
                                       std::uint64_t(i) * manifest.chunk_size);
    if (chunks[i].size() != expected) {
      return make_error("snapshot.bad_chunk_size",
                        "chunk " + std::to_string(i) + " has wrong length");
    }
  }
  const std::vector<crypto::Digest> digests = digest_chunks(chunks);
  Bytes payload;
  payload.reserve(manifest.total_bytes);
  for (std::uint32_t i = 0; i < chunks.size(); ++i) {
    if (digests[i] != manifest.chunk_digests[i]) {
      return make_error("snapshot.bad_chunk",
                        "chunk " + std::to_string(i) + " digest mismatch");
    }
    payload.insert(payload.end(), chunks[i].begin(), chunks[i].end());
  }
  auto state = decode_snapshot_payload(payload);
  if (!state.ok()) return state.error();
  // The decoded state must reproduce the manifest's commitment sections
  // byte-identically — the manifest (and through it the block header's
  // state_root) is the trust anchor for everything decoded above.
  if (state.value().commitment() != manifest.commitment) {
    return make_error("snapshot.commitment_mismatch",
                      "decoded state does not reproduce the manifest commitment");
  }
  return state;
}

}  // namespace mv::ledger
