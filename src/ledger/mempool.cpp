#include "ledger/mempool.h"

#include <unordered_map>

namespace mv::ledger {

namespace {
std::uint64_t dedupe_key(const Transaction& tx) {
  return crypto::digest_prefix64(tx.digest());
}
}  // namespace

Status Mempool::add(Transaction tx, const LedgerState& state) {
  if (!tx.signature_valid()) {
    return Status::fail("mempool.bad_signature", "rejected at admission");
  }
  const std::uint64_t key = dedupe_key(tx);
  if (by_digest_.contains(key)) {
    return Status::fail("mempool.duplicate", "transaction already pending");
  }
  if (tx.nonce < state.nonce(tx.sender())) {
    return Status::fail("mempool.stale_nonce", "nonce already consumed");
  }
  by_digest_.insert(key);
  ordered_.emplace(Key{tx.fee, seq_++}, std::move(tx));
  return {};
}

std::vector<Transaction> Mempool::select(std::size_t max_txs,
                                         const LedgerState& state) const {
  std::vector<Transaction> out;
  out.reserve(std::min(max_txs, ordered_.size()));
  // Track the next expected nonce per sender as we pick.
  std::unordered_map<std::uint64_t, std::uint64_t> next_nonce;
  // Fee-ordered greedy pass; a tx whose nonce is not yet due is skipped this
  // round (its predecessor may be cheaper and appear later in fee order, so
  // we loop until a pass adds nothing).
  std::unordered_set<std::uint64_t> taken;
  bool progress = true;
  while (out.size() < max_txs && progress) {
    progress = false;
    for (const auto& [key, tx] : ordered_) {
      if (out.size() >= max_txs) break;
      const std::uint64_t dk = dedupe_key(tx);
      if (taken.contains(dk)) continue;
      const std::uint64_t sender = tx.sender().value;
      const auto it = next_nonce.find(sender);
      const std::uint64_t expected =
          it != next_nonce.end() ? it->second : state.nonce(tx.sender());
      if (tx.nonce != expected) continue;
      out.push_back(tx);
      taken.insert(dk);
      next_nonce[sender] = expected + 1;
      progress = true;
    }
  }
  return out;
}

void Mempool::remove_included(const std::vector<Transaction>& txs) {
  for (const auto& tx : txs) {
    const std::uint64_t key = dedupe_key(tx);
    if (!by_digest_.erase(key)) continue;
    for (auto it = ordered_.begin(); it != ordered_.end(); ++it) {
      if (dedupe_key(it->second) == key) {
        ordered_.erase(it);
        break;
      }
    }
  }
}

void Mempool::prune(const LedgerState& state) {
  for (auto it = ordered_.begin(); it != ordered_.end();) {
    if (it->second.nonce < state.nonce(it->second.sender())) {
      by_digest_.erase(dedupe_key(it->second));
      it = ordered_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace mv::ledger
