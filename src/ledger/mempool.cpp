#include "ledger/mempool.h"

#include <queue>

namespace mv::ledger {

namespace {
std::uint64_t dedupe_key(const Transaction& tx) {
  return crypto::digest_prefix64(tx.digest());
}
}  // namespace


void Mempool::index_entry(const Entry& entry, const Locator& loc) {
  by_digest_.emplace(entry.dedupe, loc);
  by_fee_.emplace(std::pair{entry.tx.fee, entry.seq}, loc);
  by_admission_.emplace(std::pair{entry.admitted, entry.seq}, loc);
}

Status Mempool::add(Transaction tx, const LedgerState& state, Tick now) {
  // One digest serves both the dedupe key and the sig-cache key. A cache hit
  // skips verification (the digest covers the signature bytes); a verified
  // miss is remembered so block validation will not re-verify this tx.
  const crypto::Digest digest = tx.digest();
  if (config_.sig_cache != nullptr &&
      config_.sig_cache->contains_and_touch(digest)) {
    // vouched for
  } else if (!tx.signature_valid()) {
    return Status::fail(errc::kMempoolBadSignature, "rejected at admission");
  } else if (config_.sig_cache != nullptr) {
    config_.sig_cache->insert(digest);
  }
  const std::uint64_t dk = crypto::digest_prefix64(digest);
  if (by_digest_.contains(dk)) {
    return Status::fail(errc::kMempoolDuplicate, "transaction already pending");
  }
  const crypto::Address sender = tx.sender();
  if (tx.nonce < state.nonce(sender)) {
    return Status::fail(errc::kMempoolStaleNonce, "nonce already consumed");
  }
  const std::uint64_t nonce = tx.nonce;
  if (const auto sit = by_sender_.find(sender.value); sit != by_sender_.end()) {
    if (const auto it = sit->second.find(nonce); it != sit->second.end()) {
      // Same sender+nonce already pending: replace-by-fee, strictly higher.
      if (tx.fee <= it->second.tx.fee) {
        return Status::fail(
            errc::kMempoolUnderpriced,
            "pending tx with this nonce pays an equal or higher fee");
      }
      by_digest_.erase(it->second.dedupe);
      by_fee_.erase({it->second.tx.fee, it->second.seq});
      by_admission_.erase({it->second.admitted, it->second.seq});
      it->second = Entry{std::move(tx), dk, seq_++, now};
      index_entry(it->second, Locator{sender.value, nonce});
      ++stats_.replaced;
      return {};
    }
  }
  if (config_.max_txs != 0 && by_digest_.size() >= config_.max_txs) {
    // Full: the newcomer must strictly out-pay the cheapest pending entry,
    // which it displaces. (Evicting before inserting keeps the queue
    // reference below valid — the victim may be the newcomer's own sender.)
    // A stale fee record (defensive: the indexes are maintained together,
    // but a dangling locator must not turn into erase(end())) is discarded
    // and the next-cheapest entry tried.
    while (true) {
      const auto cheapest = by_fee_.begin();
      if (cheapest == by_fee_.end()) break;
      if (cheapest->first.first >= tx.fee) {
        ++stats_.rejected_full;
        return Status::fail(errc::kMempoolFull,
                            "pool at capacity and fee does not beat the floor");
      }
      const Locator victim = cheapest->second;
      if (!erase_located(victim)) {
        by_fee_.erase(cheapest);
        ++stats_.repaired;
        continue;
      }
      ++stats_.evicted_low_fee;
      break;
    }
  }
  auto& queue = by_sender_[sender.value];
  const auto [it, inserted] =
      queue.emplace(nonce, Entry{std::move(tx), dk, seq_++, now});
  index_entry(it->second, Locator{sender.value, nonce});
  ++stats_.admitted;
  (void)inserted;
  return {};
}

std::size_t Mempool::sweep_expired(Tick now) {
  if (config_.ttl == 0) return 0;
  std::size_t dropped = 0;
  while (!by_admission_.empty()) {
    const auto oldest = by_admission_.begin();
    const Tick admitted = oldest->first.first;
    if (admitted > now) {
      // The clock regressed past the oldest stamp — and by_admission_ is
      // ordered, so *every* entry is future-stamped. The historical code
      // broke here, which left such entries unexpirable forever; re-stamp
      // them all to `now` so the TTL applies from the regressed clock.
      restamp_future_entries(now);
      break;
    }
    if (now - admitted <= config_.ttl) break;
    const Locator loc = oldest->second;
    if (!erase_located(loc)) {
      // Stale admission record: the entry it names is gone. Discard the
      // record instead of erasing through an end() iterator.
      by_admission_.erase(oldest);
      ++stats_.repaired;
      continue;
    }
    ++dropped;
  }
  stats_.expired += dropped;
  return dropped;
}

void Mempool::restamp_future_entries(Tick now) {
  std::vector<std::pair<Tick, std::uint64_t>> stale_keys;
  std::vector<std::pair<std::uint64_t, Locator>> restamped;  // seq, locator
  for (auto it = by_admission_.rbegin();
       it != by_admission_.rend() && it->first.first > now; ++it) {
    stale_keys.push_back(it->first);
    const Locator loc = it->second;
    const auto sit = by_sender_.find(loc.sender);
    if (sit == by_sender_.end()) {
      ++stats_.repaired;
      continue;
    }
    const auto eit = sit->second.find(loc.nonce);
    if (eit == sit->second.end()) {
      ++stats_.repaired;
      continue;
    }
    eit->second.admitted = now;
    restamped.emplace_back(eit->second.seq, loc);
  }
  for (const auto& key : stale_keys) by_admission_.erase(key);
  for (const auto& [seq, loc] : restamped) {
    by_admission_.emplace(std::pair{now, seq}, loc);
  }
}

std::vector<Transaction> Mempool::select(std::size_t max_txs,
                                         const LedgerState& state) const {
  // Heap of per-sender heads: each sender contributes its next runnable tx
  // (nonce exactly the one the ledger expects); picking a head advances that
  // sender's queue iterator when the following nonce is contiguous. Cost is
  // O(senders + picked · log senders) — no repeated full-pool passes and no
  // re-hashing (the fee/seq ordering key lives in the entry).
  struct Head {
    std::uint64_t fee = 0;
    std::uint64_t seq = 0;
    const SenderQueue* queue = nullptr;
    SenderQueue::const_iterator it;
    bool operator<(const Head& other) const {
      if (fee != other.fee) return fee < other.fee;  // max-heap: higher fee first
      return seq > other.seq;                        // then FIFO
    }
  };
  std::priority_queue<Head> heads;
  for (const auto& [sender, queue] : by_sender_) {
    const std::uint64_t expected = state.nonce(crypto::Address{sender});
    const auto it = queue.lower_bound(expected);
    if (it == queue.end() || it->first != expected) continue;  // gap: not runnable
    heads.push(Head{it->second.tx.fee, it->second.seq, &queue, it});
  }
  std::vector<Transaction> out;
  out.reserve(std::min(max_txs, by_digest_.size()));
  while (!heads.empty() && out.size() < max_txs) {
    const Head head = heads.top();
    heads.pop();
    out.push_back(head.it->second.tx);
    const auto next = std::next(head.it);
    if (next != head.queue->end() && next->first == head.it->first + 1) {
      heads.push(Head{next->second.tx.fee, next->second.seq, head.queue, next});
    }
  }
  return out;
}

void Mempool::erase_entry(std::uint64_t sender, SenderQueue::iterator it) {
  const auto sit = by_sender_.find(sender);
  by_digest_.erase(it->second.dedupe);
  by_fee_.erase({it->second.tx.fee, it->second.seq});
  by_admission_.erase({it->second.admitted, it->second.seq});
  sit->second.erase(it);
  if (sit->second.empty()) by_sender_.erase(sit);
}

bool Mempool::erase_located(const Locator& loc) {
  const auto sit = by_sender_.find(loc.sender);
  if (sit == by_sender_.end()) return false;
  const auto it = sit->second.find(loc.nonce);
  if (it == sit->second.end()) return false;
  erase_entry(loc.sender, it);
  return true;
}

void Mempool::remove_included(const std::vector<Transaction>& txs) {
  for (const auto& tx : txs) {
    const auto dit = by_digest_.find(dedupe_key(tx));
    if (dit == by_digest_.end()) continue;
    if (!erase_located(dit->second)) {
      // Stale digest record; erase_entry would have removed it with the
      // entry, so drop it here instead.
      by_digest_.erase(dit);
      ++stats_.repaired;
    }
  }
}

bool Mempool::self_check() const {
  std::size_t total = 0;
  for (const auto& [sender, queue] : by_sender_) {
    if (queue.empty()) return false;  // empty queues are erased eagerly
    total += queue.size();
  }
  if (by_digest_.size() != total || by_fee_.size() != total ||
      by_admission_.size() != total) {
    return false;
  }
  const auto resolve = [this](const Locator& loc) -> const Entry* {
    const auto sit = by_sender_.find(loc.sender);
    if (sit == by_sender_.end()) return nullptr;
    const auto it = sit->second.find(loc.nonce);
    return it == sit->second.end() ? nullptr : &it->second;
  };
  for (const auto& [dk, loc] : by_digest_) {
    const Entry* e = resolve(loc);
    if (e == nullptr || e->dedupe != dk) return false;
  }
  for (const auto& [key, loc] : by_fee_) {
    const Entry* e = resolve(loc);
    if (e == nullptr || e->tx.fee != key.first || e->seq != key.second) return false;
  }
  for (const auto& [key, loc] : by_admission_) {
    const Entry* e = resolve(loc);
    if (e == nullptr || e->admitted != key.first || e->seq != key.second) return false;
  }
  return true;
}

void Mempool::prune(const LedgerState& state) {
  for (auto sit = by_sender_.begin(); sit != by_sender_.end();) {
    auto& queue = sit->second;
    const std::uint64_t expected = state.nonce(crypto::Address{sit->first});
    const auto keep_from = queue.lower_bound(expected);
    for (auto it = queue.begin(); it != keep_from; ++it) {
      by_digest_.erase(it->second.dedupe);
      by_fee_.erase({it->second.tx.fee, it->second.seq});
      by_admission_.erase({it->second.admitted, it->second.seq});
    }
    queue.erase(queue.begin(), keep_from);
    sit = queue.empty() ? by_sender_.erase(sit) : std::next(sit);
  }
}

}  // namespace mv::ledger
