#include "ledger/mempool.h"

#include <queue>

namespace mv::ledger {

namespace {
std::uint64_t dedupe_key(const Transaction& tx) {
  return crypto::digest_prefix64(tx.digest());
}
}  // namespace

void Mempool::index_entry(const Entry& entry, const Locator& loc) {
  by_digest_.emplace(entry.dedupe, loc);
  by_fee_.emplace(std::pair{entry.tx.fee, entry.seq}, loc);
  by_admission_.emplace(std::pair{entry.admitted, entry.seq}, loc);
}

Status Mempool::add(Transaction tx, const LedgerState& state, Tick now) {
  if (!tx.signature_valid()) {
    return Status::fail("mempool.bad_signature", "rejected at admission");
  }
  const std::uint64_t dk = dedupe_key(tx);
  if (by_digest_.contains(dk)) {
    return Status::fail("mempool.duplicate", "transaction already pending");
  }
  const crypto::Address sender = tx.sender();
  if (tx.nonce < state.nonce(sender)) {
    return Status::fail("mempool.stale_nonce", "nonce already consumed");
  }
  const std::uint64_t nonce = tx.nonce;
  if (const auto sit = by_sender_.find(sender.value); sit != by_sender_.end()) {
    if (const auto it = sit->second.find(nonce); it != sit->second.end()) {
      // Same sender+nonce already pending: replace-by-fee, strictly higher.
      if (tx.fee <= it->second.tx.fee) {
        return Status::fail(
            "mempool.underpriced",
            "pending tx with this nonce pays an equal or higher fee");
      }
      by_digest_.erase(it->second.dedupe);
      by_fee_.erase({it->second.tx.fee, it->second.seq});
      by_admission_.erase({it->second.admitted, it->second.seq});
      it->second = Entry{std::move(tx), dk, seq_++, now};
      index_entry(it->second, Locator{sender.value, nonce});
      ++stats_.replaced;
      return {};
    }
  }
  if (config_.max_txs != 0 && by_digest_.size() >= config_.max_txs) {
    // Full: the newcomer must strictly out-pay the cheapest pending entry,
    // which it displaces. (Evicting before inserting keeps the queue
    // reference below valid — the victim may be the newcomer's own sender.)
    const auto cheapest = by_fee_.begin();
    if (cheapest->first.first >= tx.fee) {
      ++stats_.rejected_full;
      return Status::fail("mempool.full",
                          "pool at capacity and fee does not beat the floor");
    }
    const Locator victim = cheapest->second;
    erase_entry(victim.sender, by_sender_[victim.sender].find(victim.nonce));
    ++stats_.evicted_low_fee;
  }
  auto& queue = by_sender_[sender.value];
  const auto [it, inserted] =
      queue.emplace(nonce, Entry{std::move(tx), dk, seq_++, now});
  index_entry(it->second, Locator{sender.value, nonce});
  ++stats_.admitted;
  (void)inserted;
  return {};
}

std::size_t Mempool::sweep_expired(Tick now) {
  if (config_.ttl == 0) return 0;
  std::size_t dropped = 0;
  while (!by_admission_.empty()) {
    const auto oldest = by_admission_.begin();
    const Tick admitted = oldest->first.first;
    if (now <= admitted || now - admitted <= config_.ttl) break;
    const Locator loc = oldest->second;
    erase_entry(loc.sender, by_sender_[loc.sender].find(loc.nonce));
    ++dropped;
  }
  stats_.expired += dropped;
  return dropped;
}

std::vector<Transaction> Mempool::select(std::size_t max_txs,
                                         const LedgerState& state) const {
  // Heap of per-sender heads: each sender contributes its next runnable tx
  // (nonce exactly the one the ledger expects); picking a head advances that
  // sender's queue iterator when the following nonce is contiguous. Cost is
  // O(senders + picked · log senders) — no repeated full-pool passes and no
  // re-hashing (the fee/seq ordering key lives in the entry).
  struct Head {
    std::uint64_t fee = 0;
    std::uint64_t seq = 0;
    const SenderQueue* queue = nullptr;
    SenderQueue::const_iterator it;
    bool operator<(const Head& other) const {
      if (fee != other.fee) return fee < other.fee;  // max-heap: higher fee first
      return seq > other.seq;                        // then FIFO
    }
  };
  std::priority_queue<Head> heads;
  for (const auto& [sender, queue] : by_sender_) {
    const std::uint64_t expected = state.nonce(crypto::Address{sender});
    const auto it = queue.lower_bound(expected);
    if (it == queue.end() || it->first != expected) continue;  // gap: not runnable
    heads.push(Head{it->second.tx.fee, it->second.seq, &queue, it});
  }
  std::vector<Transaction> out;
  out.reserve(std::min(max_txs, by_digest_.size()));
  while (!heads.empty() && out.size() < max_txs) {
    const Head head = heads.top();
    heads.pop();
    out.push_back(head.it->second.tx);
    const auto next = std::next(head.it);
    if (next != head.queue->end() && next->first == head.it->first + 1) {
      heads.push(Head{next->second.tx.fee, next->second.seq, head.queue, next});
    }
  }
  return out;
}

void Mempool::erase_entry(std::uint64_t sender, SenderQueue::iterator it) {
  const auto sit = by_sender_.find(sender);
  by_digest_.erase(it->second.dedupe);
  by_fee_.erase({it->second.tx.fee, it->second.seq});
  by_admission_.erase({it->second.admitted, it->second.seq});
  sit->second.erase(it);
  if (sit->second.empty()) by_sender_.erase(sit);
}

void Mempool::remove_included(const std::vector<Transaction>& txs) {
  for (const auto& tx : txs) {
    const auto dit = by_digest_.find(dedupe_key(tx));
    if (dit == by_digest_.end()) continue;
    const Locator loc = dit->second;
    auto& queue = by_sender_[loc.sender];
    erase_entry(loc.sender, queue.find(loc.nonce));
  }
}

void Mempool::prune(const LedgerState& state) {
  for (auto sit = by_sender_.begin(); sit != by_sender_.end();) {
    auto& queue = sit->second;
    const std::uint64_t expected = state.nonce(crypto::Address{sit->first});
    const auto keep_from = queue.lower_bound(expected);
    for (auto it = queue.begin(); it != keep_from; ++it) {
      by_digest_.erase(it->second.dedupe);
      by_fee_.erase({it->second.tx.fee, it->second.seq});
      by_admission_.erase({it->second.admitted, it->second.seq});
    }
    queue.erase(queue.begin(), keep_from);
    sit = queue.empty() ? by_sender_.erase(sit) : std::next(sit);
  }
}

}  // namespace mv::ledger
