// Ledger state: balances, nonces, the on-chain audit log, and per-contract
// key-value stores.
//
// The state is a plain value type (copyable): block assembly trial-applies
// transactions on a copy and commits only when the whole block validates, so
// replicas never observe partially applied blocks.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/result.h"
#include "crypto/sha256.h"
#include "ledger/transaction.h"

namespace mv::ledger {

class ContractRegistry;

/// Audit record as stored on-chain (body + provenance).
struct StoredAuditRecord {
  crypto::Address collector;
  AuditRecordBody body;
  Tick height = 0;
};

/// Per-contract ordered KV store. Ordered so the state root is canonical.
using ContractStore = std::map<std::string, Bytes>;

class LedgerState {
 public:
  // ---- accounts ----
  [[nodiscard]] std::uint64_t balance(crypto::Address a) const;
  [[nodiscard]] std::uint64_t nonce(crypto::Address a) const;
  void credit(crypto::Address a, std::uint64_t amount);
  /// Debit; fails if the balance is insufficient.
  [[nodiscard]] Status debit(crypto::Address a, std::uint64_t amount);

  // ---- audit log (§II-D) ----
  [[nodiscard]] const std::vector<StoredAuditRecord>& audit_log() const {
    return audit_log_;
  }

  // ---- contract stores ----
  [[nodiscard]] ContractStore& store(const std::string& contract) {
    return contracts_[contract];
  }
  [[nodiscard]] const ContractStore* find_store(const std::string& contract) const;

  /// Validate and apply one transaction at the given height.
  /// Checks: signature, nonce equality, fee affordability, kind-specific body.
  [[nodiscard]] Status apply(const Transaction& tx, const ContractRegistry& contracts,
                             Tick height);

  /// Canonical digest over the entire state.
  [[nodiscard]] crypto::Digest state_root() const;

  [[nodiscard]] std::uint64_t burned_fees() const { return burned_fees_; }
  [[nodiscard]] std::size_t account_count() const { return balances_.size(); }

 private:
  std::map<crypto::Address, std::uint64_t> balances_;
  std::map<crypto::Address, std::uint64_t> nonces_;
  std::vector<StoredAuditRecord> audit_log_;
  std::map<std::string, ContractStore> contracts_;
  std::uint64_t burned_fees_ = 0;
};

/// Execution context handed to contracts. Contracts touch the ledger only
/// through this interface; their own store is pre-resolved.
class CallContext {
 public:
  CallContext(LedgerState& state, std::string contract_name,
              crypto::Address caller, Tick height)
      : state_(state),
        contract_name_(std::move(contract_name)),
        caller_(caller),
        height_(height) {}

  [[nodiscard]] crypto::Address caller() const { return caller_; }
  [[nodiscard]] Tick height() const { return height_; }

  // KV on the contract's own store.
  [[nodiscard]] const Bytes* get(const std::string& key) const;
  void put(const std::string& key, Bytes value);
  void erase(const std::string& key);
  /// Iterate keys with a given prefix (ordered).
  [[nodiscard]] std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  // Funds held by accounts (escrow flows in the NFT market).
  [[nodiscard]] std::uint64_t balance(crypto::Address a) const { return state_.balance(a); }
  [[nodiscard]] Status transfer(crypto::Address from, crypto::Address to,
                                std::uint64_t amount);

 private:
  LedgerState& state_;
  std::string contract_name_;
  crypto::Address caller_;
  Tick height_;
};

/// Contract logic. Stateless — all persistent data lives in the LedgerState
/// store so that state copies stay consistent.
class Contract {
 public:
  virtual ~Contract() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual Status call(CallContext& ctx, const std::string& method,
                                    const Bytes& args) const = 0;
};

class ContractRegistry {
 public:
  void install(std::shared_ptr<const Contract> contract);
  [[nodiscard]] const Contract* find(const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return contracts_.size(); }

 private:
  std::map<std::string, std::shared_ptr<const Contract>> contracts_;
};

}  // namespace mv::ledger
